#!/usr/bin/env python3
"""Performance-regression gate over daop_cli --profile-out reports.

Compares the `aggregate` section of a fresh critical-path profile
(`daop_cli ... --profile-out fresh.json`) against a checked-in baseline
(bench/baselines/*.json) with per-metric tolerances, and fails (exit 1)
on drift in either direction — a slowdown OR an unexplained speedup both
mean the baseline no longer describes the code.

Usage:
  perf_gate.py --baseline bench/baselines/speed_c4.json --fresh /tmp/p.json
  perf_gate.py --baseline ... --fresh ... --update   # refresh the baseline
  perf_gate.py --self-test                           # gate the gate

Baseline schema (daop-perf-baseline/1):
  {
    "schema": "daop-perf-baseline/1",
    "command": "<how to regenerate the fresh profile>",
    "tolerances": {
      "default": {"rel": 0.02, "abs": 1e-9},
      "overrides": {"counters.*": {"rel": 0.0, "abs": 0.0}, ...}
    },
    "metrics": { "<dotted.metric.path>": <number>, ... }
  }

Metrics are the flattened numeric leaves of the profile's `aggregate`
object (e.g. `attribution.categories.cpu_expert.exposed_s`,
`counters.gpu_expert_execs`). A metric passes when
|fresh - base| <= max(abs, rel * |base|). Overrides are fnmatch glob
patterns over the dotted path; the most specific (longest) matching
pattern wins. Counters are integers from a deterministic simulation, so
the stock baselines pin them exactly; hazard_stall_s (a float ride-along
in the counters block) keeps the default float tolerance.

An override may additionally set `"ratchet": "up"` for metrics where
bigger is better and wall-clock noise makes two-sided pinning wrong
(throughput like `sim_requests_per_sec`): the gate then fails only when
fresh < base - max(abs, rel * |base|). Improvements of any size pass —
refresh the baseline with --update when one sticks, which ratchets the
floor up for good.
"""

import argparse
import fnmatch
import json
import math
import os
import sys
import tempfile

BASELINE_SCHEMA = "daop-perf-baseline/1"
PROFILE_SCHEMA = "daop-profile/1"

DEFAULT_TOLERANCES = {
    "default": {"rel": 0.02, "abs": 1e-9},
    "overrides": {
        "runs": {"rel": 0.0, "abs": 0.0},
        "counters.*": {"rel": 0.0, "abs": 0.0},
        "counters.hazard_stall_s": {"rel": 0.02, "abs": 1e-9},
    },
}


def flatten(obj, prefix=""):
    """Flattens nested dicts to {dotted.path: number}; skips non-numbers."""
    out = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(value, path))
    elif isinstance(obj, bool):
        pass  # bool is an int subclass; not a perf metric
    elif isinstance(obj, (int, float)):
        out[prefix] = obj
    return out


def extract_metrics(profile):
    """Pulls the flattened aggregate metrics out of a daop-profile report."""
    if profile.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"not a {PROFILE_SCHEMA} report (schema="
            f"{profile.get('schema')!r}); pass daop_cli --profile-out output"
        )
    if "aggregate" not in profile:
        raise ValueError("profile has no 'aggregate' section")
    return flatten(profile["aggregate"])


def tolerance_for(metric, tolerances):
    """Returns the (rel, abs, ratchet) tolerance for a dotted metric path."""
    default = tolerances.get("default", DEFAULT_TOLERANCES["default"])
    best, best_len = default, -1
    for pattern, tol in tolerances.get("overrides", {}).items():
        if fnmatch.fnmatchcase(metric, pattern) and len(pattern) > best_len:
            best, best_len = tol, len(pattern)
    return (float(best.get("rel", 0.0)), float(best.get("abs", 0.0)),
            best.get("ratchet"))


def compare_metrics(base_metrics, fresh_metrics, tolerances):
    """Returns a list of human-readable failure strings (empty = pass)."""
    failures = []
    for metric in sorted(base_metrics):
        base = base_metrics[metric]
        if metric not in fresh_metrics:
            failures.append(f"{metric}: missing from fresh profile")
            continue
        fresh = fresh_metrics[metric]
        rel, abs_tol, ratchet = tolerance_for(metric, tolerances)
        allowed = max(abs_tol, rel * abs(base))
        delta = fresh - base
        if ratchet == "up":
            # One-sided floor: regressions fail, improvements of any size
            # pass (refresh with --update to ratchet the floor up).
            bad = math.isnan(fresh) or delta < -allowed
        else:
            bad = math.isnan(fresh) or abs(delta) > allowed
        if bad:
            pct = (delta / base * 100.0) if base != 0 else float("inf")
            bound = (f"allowed -{allowed:.3g} (ratchet up)"
                     if ratchet == "up" else f"allowed +/-{allowed:.3g}")
            failures.append(
                f"{metric}: baseline {base:.12g}, fresh {fresh:.12g} "
                f"(delta {delta:+.3g} / {pct:+.2f}%, {bound})"
            )
    for metric in sorted(fresh_metrics):
        if metric not in base_metrics:
            failures.append(
                f"{metric}: new metric not in baseline (run --update)"
            )
    return failures


def load_json(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def write_baseline(path, command, metrics, tolerances):
    doc = {
        "schema": BASELINE_SCHEMA,
        "command": command,
        "tolerances": tolerances,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")


def run_gate(args):
    fresh_metrics = extract_metrics(load_json(args.fresh))

    if args.update:
        command, tolerances = args.command or "", DEFAULT_TOLERANCES
        if os.path.exists(args.baseline):
            old = load_json(args.baseline)
            command = args.command or old.get("command", "")
            tolerances = old.get("tolerances", DEFAULT_TOLERANCES)
        write_baseline(args.baseline, command, fresh_metrics, tolerances)
        print(
            f"baseline updated: {args.baseline} "
            f"({len(fresh_metrics)} metrics)"
        )
        return 0

    base = load_json(args.baseline)
    if base.get("schema") != BASELINE_SCHEMA:
        print(
            f"error: {args.baseline} is not a {BASELINE_SCHEMA} file",
            file=sys.stderr,
        )
        return 2
    tolerances = base.get("tolerances", DEFAULT_TOLERANCES)
    failures = compare_metrics(base.get("metrics", {}), fresh_metrics,
                               tolerances)
    if failures:
        print(f"PERF GATE FAILED: {args.baseline} ({len(failures)} metrics)")
        for line in failures:
            print(f"  {line}")
        if base.get("command"):
            print(f"regenerate with: {base['command']}")
        print(f"then refresh via: perf_gate.py --baseline {args.baseline} "
              f"--fresh <fresh.json> --update")
        return 1
    print(
        f"perf gate OK: {args.baseline} "
        f"({len(base.get('metrics', {}))} metrics within tolerance)"
    )
    return 0


def self_test():
    """Unit-tests the gate, including that it demonstrably fails on drift."""
    profile = {
        "schema": PROFILE_SCHEMA,
        "runs": [{"ignored": True}],
        "aggregate": {
            "runs": 2,
            "makespan_s": 1.25,
            "attribution": {
                "idle_s": 0.05,
                "categories": {
                    "gpu_expert": {"busy_s": 0.4, "exposed_s": 0.4,
                                   "hidden_s": 0.0},
                    "cpu_expert": {"busy_s": 0.6, "exposed_s": 0.2,
                                   "hidden_s": 0.4},
                },
            },
            "counters": {"gpu_expert_execs": 128, "hazard_stall_s": 0.001},
        },
    }
    metrics = extract_metrics(profile)
    assert metrics["makespan_s"] == 1.25
    assert metrics["attribution.categories.cpu_expert.hidden_s"] == 0.4
    assert metrics["counters.gpu_expert_execs"] == 128
    assert "runs" in metrics  # aggregate.runs counts profiled runs

    tol = DEFAULT_TOLERANCES
    # Identical metrics pass.
    assert compare_metrics(metrics, dict(metrics), tol) == []
    # Drift within the default 2% relative tolerance passes for floats...
    drift_ok = dict(metrics)
    drift_ok["makespan_s"] *= 1.019
    assert compare_metrics(metrics, drift_ok, tol) == []
    # ...but a 3% makespan regression FAILS (the gate's whole point).
    drift_bad = dict(metrics)
    drift_bad["makespan_s"] *= 1.03
    failures = compare_metrics(metrics, drift_bad, tol)
    assert len(failures) == 1 and failures[0].startswith("makespan_s:"), \
        failures
    # An unexplained speedup fails too — the baseline is stale either way.
    drift_fast = dict(metrics)
    drift_fast["attribution.categories.cpu_expert.exposed_s"] *= 0.9
    assert len(compare_metrics(metrics, drift_fast, tol)) == 1
    # Counters are gated exactly: off-by-one fails.
    drift_counter = dict(metrics)
    drift_counter["counters.gpu_expert_execs"] += 1
    failures = compare_metrics(metrics, drift_counter, tol)
    assert len(failures) == 1 and "gpu_expert_execs" in failures[0]
    # ...while hazard_stall_s keeps the float tolerance (override precedence).
    drift_stall = dict(metrics)
    drift_stall["counters.hazard_stall_s"] *= 1.01
    assert compare_metrics(metrics, drift_stall, tol) == []
    # Missing and novel metrics both fail.
    assert any("missing" in f for f in
               compare_metrics(metrics, {}, tol))
    extra = dict(metrics)
    extra["counters.new_counter"] = 1
    assert any("not in baseline" in f for f in
               compare_metrics(metrics, extra, tol))
    # NaN never passes.
    drift_nan = dict(metrics)
    drift_nan["makespan_s"] = float("nan")
    assert len(compare_metrics(metrics, drift_nan, tol)) == 1

    # Ratchet-up metrics: throughput regressions beyond tolerance fail,
    # improvements of any size pass, NaN still fails.
    rtol = {
        "default": {"rel": 0.02, "abs": 1e-9},
        "overrides": {
            "sim_requests_per_sec": {"rel": 0.5, "abs": 0.0,
                                     "ratchet": "up"},
        },
    }
    rbase = {"sim_requests_per_sec": 100.0}
    assert tolerance_for("sim_requests_per_sec", rtol) == (0.5, 0.0, "up")
    assert compare_metrics(rbase, {"sim_requests_per_sec": 51.0}, rtol) == []
    assert compare_metrics(rbase, {"sim_requests_per_sec": 1000.0},
                           rtol) == []
    failures = compare_metrics(rbase, {"sim_requests_per_sec": 40.0}, rtol)
    assert len(failures) == 1 and "ratchet up" in failures[0], failures
    assert len(compare_metrics(rbase, {"sim_requests_per_sec": float("nan")},
                               rtol)) == 1

    # End-to-end through temp files: update writes a baseline the same
    # profile then passes against, and a drifted profile fails against.
    with tempfile.TemporaryDirectory() as tmp:
        fresh_path = os.path.join(tmp, "fresh.json")
        base_path = os.path.join(tmp, "base.json")
        with open(fresh_path, "w", encoding="utf-8") as f:
            json.dump(profile, f)
        args = argparse.Namespace(baseline=base_path, fresh=fresh_path,
                                  update=True, command="demo cmd")
        assert run_gate(args) == 0
        saved = load_json(base_path)
        assert saved["schema"] == BASELINE_SCHEMA
        assert saved["command"] == "demo cmd"
        args.update = False
        assert run_gate(args) == 0
        drifted = json.loads(json.dumps(profile))
        drifted["aggregate"]["makespan_s"] *= 1.5
        with open(fresh_path, "w", encoding="utf-8") as f:
            json.dump(drifted, f)
        assert run_gate(args) == 1

    print("perf_gate.py self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="baseline JSON path")
    parser.add_argument("--fresh",
                        help="fresh daop_cli --profile-out JSON path")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the fresh profile")
    parser.add_argument("--command", default=None,
                        help="with --update: record how to regenerate")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own unit tests and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        parser.error("--baseline and --fresh are required (or --self-test)")
    try:
        return run_gate(args)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
