#!/usr/bin/env sh
# Builds everything, runs the full test suite and every paper-reproduction
# bench, and leaves test_output.txt / bench_output.txt in the repo root.
set -e
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/bench_*; do
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo "done: see test_output.txt and bench_output.txt"
