// Shared test helpers: small model/platform setups and hand-built routing
// traces with fully controlled expert selections and predictions.
#pragma once

#include <vector>

#include "cache/placement.hpp"
#include "data/routing_trace.hpp"
#include "model/config.hpp"
#include "model/op_costs.hpp"
#include "sim/device.hpp"

namespace daop::testing {

/// Mixtral-shaped config shrunk to 4 layers for fast engine tests (per-op
/// costs stay full-scale Mixtral).
inline model::ModelConfig small_mixtral(int n_layers = 4) {
  model::ModelConfig c = model::mixtral_8x7b();
  c.n_layers = n_layers;
  return c;
}

/// A trace where every token at every layer selects exactly `experts`
/// (descending preference) and predictions point at `predicted`
/// (empty => same as experts) for layers >= 1.
inline data::SequenceTrace fixed_trace(const model::ModelConfig& cfg,
                                       int prompt_len, int gen_len,
                                       std::vector<int> experts,
                                       std::vector<int> predicted = {}) {
  if (predicted.empty()) predicted = experts;
  data::SequenceTrace tr;
  tr.n_experts = cfg.n_experts;
  tr.top_k = cfg.top_k;
  tr.prompt_len = prompt_len;
  tr.gen_len = gen_len;
  tr.prefill.resize(static_cast<std::size_t>(cfg.n_layers));
  tr.decode.resize(static_cast<std::size_t>(cfg.n_layers));

  auto scores_for = [&](const std::vector<int>& sel) {
    std::vector<float> s(static_cast<std::size_t>(cfg.n_experts), 0.0F);
    float v = 10.0F;
    for (int e : sel) {
      s[static_cast<std::size_t>(e)] = v;
      v -= 1.0F;
    }
    return s;
  };

  for (int l = 0; l < cfg.n_layers; ++l) {
    auto& pf = tr.prefill[static_cast<std::size_t>(l)].tokens;
    pf.resize(static_cast<std::size_t>(prompt_len));
    for (auto& tok : pf) tok.scores = scores_for(experts);

    auto& dc = tr.decode[static_cast<std::size_t>(l)].tokens;
    dc.resize(static_cast<std::size_t>(gen_len));
    for (auto& tok : dc) {
      tok.scores = scores_for(experts);
      if (l >= 1) tok.pred_scores = scores_for(predicted);
    }
  }
  return tr;
}

/// Like fixed_trace, but decode tokens alternate between expert sets `a`
/// (even steps) and `b` (odd steps); predictions are perfect. With a cache
/// too small for both sets this forces sustained decode-phase churn.
inline data::SequenceTrace alternating_trace(const model::ModelConfig& cfg,
                                             int prompt_len, int gen_len,
                                             const std::vector<int>& a,
                                             const std::vector<int>& b) {
  data::SequenceTrace tr = fixed_trace(cfg, prompt_len, gen_len, a);
  auto scores_for = [&](const std::vector<int>& sel) {
    std::vector<float> s(static_cast<std::size_t>(cfg.n_experts), 0.0F);
    float v = 10.0F;
    for (int e : sel) {
      s[static_cast<std::size_t>(e)] = v;
      v -= 1.0F;
    }
    return s;
  };
  for (int l = 0; l < cfg.n_layers; ++l) {
    auto& dc = tr.decode[static_cast<std::size_t>(l)].tokens;
    for (int t = 0; t < gen_len; ++t) {
      const auto& sel = (t % 2 == 0) ? a : b;
      dc[static_cast<std::size_t>(t)].scores = scores_for(sel);
      if (l >= 1) dc[static_cast<std::size_t>(t)].pred_scores = scores_for(sel);
    }
  }
  return tr;
}

/// Placement with uniform capacity `cap` per layer holding experts 0..cap-1.
inline cache::Placement prefix_placement(const model::ModelConfig& cfg,
                                         int cap) {
  cache::Placement p(cfg.n_layers, cfg.n_experts);
  for (int l = 0; l < cfg.n_layers; ++l) {
    p.set_capacity(l, cap);
    for (int e = 0; e < cap; ++e) p.move_to_gpu(l, e);
  }
  return p;
}

}  // namespace daop::testing
