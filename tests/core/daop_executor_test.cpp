#include "core/daop_executor.hpp"

#include <gtest/gtest.h>

#include "cache/placement.hpp"
#include "data/gate_bias.hpp"
#include "data/workload.hpp"
#include "eval/accuracy.hpp"
#include "model/config.hpp"

namespace daop::core {
namespace {

class DaopExecutorTest : public ::testing::Test {
 protected:
  DaopExecutorTest() : model_(model::tiny_mixtral(), 7) {}

  cache::Placement placement_with_ecr(double ecr) const {
    const auto& cfg = model_.config();
    const auto calib = eval::calibrate_functional_counts(
        model_, data::sharegpt_calibration(), 4, 12, 12, 99);
    return cache::init_placement_calibrated(cfg.n_layers, cfg.n_experts, ecr,
                                            calib);
  }

  model::GateBias bias_for(int prompt_len, int gen_len, int seq = 0) const {
    const auto& cfg = model_.config();
    return data::make_gate_bias(data::c4(), cfg.n_layers, cfg.n_experts, 21,
                                seq, prompt_len,
                                prompt_len + gen_len + 1);
  }

  model::FunctionalModel model_;
};

TEST_F(DaopExecutorTest, FullEcrMatchesOfficialExactly) {
  const auto prompt = data::make_prompt(model_.config().vocab_size, 12, 3, 0);
  const auto bias = bias_for(12, 16);
  const model::OfficialDecoder official(model_);
  const auto ref = official.generate(prompt, 16, bias);

  DaopFunctionalExecutor daop(model_);
  FunctionalRunStats stats;
  const auto got =
      daop.generate(prompt, 16, placement_with_ecr(1.0), bias, &stats);
  EXPECT_EQ(ref, got);
  EXPECT_EQ(stats.stale_input_execs, 0);
  EXPECT_EQ(stats.degradations, 0);
  EXPECT_EQ(stats.mispredict_fallbacks, 0);
}

TEST_F(DaopExecutorTest, ApproximationsOffIsExactAtAnyEcr) {
  // With pre-calculation and degradation disabled every execution is exact
  // (CPU execution changes time, never math), so outputs must equal the
  // official model even at the smallest cache.
  const auto prompt = data::make_prompt(model_.config().vocab_size, 12, 3, 1);
  const auto bias = bias_for(12, 16, 1);
  const model::OfficialDecoder official(model_);
  const auto ref = official.generate(prompt, 16, bias);

  DaopConfig dc;
  dc.enable_precalc = false;
  dc.enable_degradation = false;
  dc.mispredict_policy = MispredictPolicy::RecomputeExact;
  DaopFunctionalExecutor daop(model_, dc);
  const auto got = daop.generate(prompt, 16, placement_with_ecr(0.25), bias);
  EXPECT_EQ(ref, got);
}

TEST_F(DaopExecutorTest, FirstTokenExactAtAnyEcr) {
  // Table V's mechanism: prefill is numerically exact regardless of ECR.
  const auto prompt = data::make_prompt(model_.config().vocab_size, 16, 3, 2);
  const auto bias = bias_for(16, 1, 2);
  const model::OfficialDecoder official(model_);
  const auto ref = official.generate(prompt, 1, bias);
  for (double ecr : {0.125, 0.25, 0.5}) {
    DaopFunctionalExecutor daop(model_);
    const auto got = daop.generate(prompt, 1, placement_with_ecr(ecr), bias);
    EXPECT_EQ(ref, got) << "ecr=" << ecr;
  }
}

TEST_F(DaopExecutorTest, Deterministic) {
  const auto prompt = data::make_prompt(model_.config().vocab_size, 10, 3, 3);
  const auto bias = bias_for(10, 12, 3);
  const auto placement = placement_with_ecr(0.375);
  DaopFunctionalExecutor daop(model_);
  EXPECT_EQ(daop.generate(prompt, 12, placement, bias),
            daop.generate(prompt, 12, placement, bias));
}

TEST_F(DaopExecutorTest, StatsAccounting) {
  const auto prompt = data::make_prompt(model_.config().vocab_size, 10, 3, 4);
  const auto bias = bias_for(10, 9, 4);
  DaopFunctionalExecutor daop(model_);
  FunctionalRunStats stats;
  daop.generate(prompt, 9, placement_with_ecr(0.375), bias, &stats);
  const auto& cfg = model_.config();
  // n_gen - 1 decode steps actually execute (the first output token comes
  // from prefill); each fills top_k expert slots per layer.
  EXPECT_EQ(stats.decode_expert_uses,
            static_cast<long long>(9 - 1) * cfg.n_layers * cfg.top_k);
  EXPECT_EQ(stats.decode_expert_uses,
            stats.exact_execs + stats.stale_input_execs + stats.degradations +
                stats.mispredict_fallbacks + stats.mispredict_recomputes);
  EXPECT_GT(stats.prefill_swaps, 0);
}

TEST_F(DaopExecutorTest, SmallerCacheMeansMoreApproximation) {
  const auto prompt = data::make_prompt(model_.config().vocab_size, 10, 3, 5);
  const auto bias = bias_for(10, 12, 5);
  DaopFunctionalExecutor daop(model_);
  FunctionalRunStats big;
  FunctionalRunStats small;
  daop.generate(prompt, 12, placement_with_ecr(0.75), bias, &big);
  daop.generate(prompt, 12, placement_with_ecr(0.25), bias, &small);
  const auto approx = [](const FunctionalRunStats& s) {
    return s.stale_input_execs + s.degradations + s.mispredict_fallbacks +
           s.mispredict_recomputes;
  };
  EXPECT_GT(approx(small), approx(big));
}

TEST_F(DaopExecutorTest, TeacherForcingReturnsPerStepPredictions) {
  const auto prompt = data::make_prompt(model_.config().vocab_size, 10, 3, 6);
  const auto bias = bias_for(10, 12, 6);
  const model::OfficialDecoder official(model_);
  const auto ref = official.generate(prompt, 12, bias);

  // At full ECR the teacher-forced run is exact: predictions == teacher.
  DaopFunctionalExecutor daop(model_);
  const auto forced =
      daop.generate(prompt, 12, placement_with_ecr(1.0), bias, nullptr, ref);
  EXPECT_EQ(forced, ref);

  // At a small ECR, teacher-forced agreement upper-bounds free-running
  // agreement in count of early matches (same first token by construction).
  const auto placement = placement_with_ecr(0.25);
  const auto tf =
      daop.generate(prompt, 12, placement, bias, nullptr, ref);
  EXPECT_EQ(tf[0], ref[0]);
  EXPECT_EQ(tf.size(), ref.size());
}

TEST_F(DaopExecutorTest, ZeroGenReturnsEmpty) {
  const auto prompt = data::make_prompt(model_.config().vocab_size, 8, 3, 7);
  DaopFunctionalExecutor daop(model_);
  EXPECT_TRUE(
      daop.generate(prompt, 0, placement_with_ecr(0.5), nullptr).empty());
}

TEST_F(DaopExecutorTest, DegradationChangesExecutedExperts) {
  // With very small cache + degradation the executor must sometimes run a
  // substitute expert; outputs may legitimately differ from official.
  const auto prompt = data::make_prompt(model_.config().vocab_size, 10, 3, 8);
  const auto bias = bias_for(10, 20, 8);
  DaopFunctionalExecutor daop(model_);
  FunctionalRunStats stats;
  daop.generate(prompt, 20, placement_with_ecr(0.125), bias, &stats);
  EXPECT_GT(stats.degradations + stats.mispredict_fallbacks +
                stats.mispredict_recomputes + stats.stale_input_execs,
            0);
}

}  // namespace
}  // namespace daop::core
