// Unit tests for Algorithm 1 (sequence-specific expert allocation).
#include "core/allocation.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace daop::core {
namespace {

cache::Placement placement_with_gpu(int n_experts,
                                    const std::vector<int>& gpu) {
  cache::Placement p(1, n_experts);
  p.set_capacity(0, static_cast<int>(gpu.size()));
  for (int e : gpu) p.move_to_gpu(0, e);
  return p;
}

TEST(Allocation, SwapsHotCpuForColdGpu) {
  // GPU: {0,1}; CPU: {2,3}. Expert 2 very hot, expert 1 cold.
  const auto p = placement_with_gpu(4, {0, 1});
  const std::vector<double> counts = {10.0, 1.0, 20.0, 0.0};
  const auto swaps = sequence_specific_swaps(counts, p, 0, 1.05);
  ASSERT_EQ(swaps.size(), 1U);
  EXPECT_EQ(swaps[0].expert_in, 2);
  EXPECT_EQ(swaps[0].expert_out, 1);
}

TEST(Allocation, ThresholdSuppressesMarginalSwaps) {
  const auto p = placement_with_gpu(4, {0, 1});
  // Hot CPU expert barely above the cold GPU expert: 10 vs 10 -> no swap at
  // threshold 1.05; swap at threshold 1.0.
  const std::vector<double> counts = {20.0, 10.0, 10.0, 0.0};
  EXPECT_TRUE(sequence_specific_swaps(counts, p, 0, 1.05).empty());
  ASSERT_EQ(sequence_specific_swaps(counts, p, 0, 1.0).size(), 1U);
}

TEST(Allocation, ExactThresholdBoundaryCounts) {
  const auto p = placement_with_gpu(4, {0, 1});
  // 10.5 >= 1.05 * 10 exactly -> swap fires (Algorithm 1 line 11 uses >=).
  const std::vector<double> counts = {20.0, 10.0, 10.5, 0.0};
  EXPECT_EQ(sequence_specific_swaps(counts, p, 0, 1.05).size(), 1U);
}

TEST(Allocation, PairsHottestWithColdest) {
  // GPU: {0,1,2,3} counts {9, 1, 8, 2}; CPU: {4,5,6,7} counts {7, 30, 0, 6}.
  // SwapNum = 4, pairs limited by min(|CPU|, |GPU|, 4) = 4.
  // Hot order: 5(30), 4(7), 7(6), 6(0); cold order: 1(1), 3(2), 2(8), 0(9).
  // Pairs: (5,1): 30>=1.05 -> swap; (4,3): 7>=2.1 -> swap; (7,2): 6 < 8.4
  // -> no; (6,0): 0 -> no.
  const auto p = placement_with_gpu(8, {0, 1, 2, 3});
  const std::vector<double> counts = {9, 1, 8, 2, 7, 30, 0, 6};
  const auto swaps = sequence_specific_swaps(counts, p, 0, 1.05);
  ASSERT_EQ(swaps.size(), 2U);
  EXPECT_EQ(swaps[0].expert_in, 5);
  EXPECT_EQ(swaps[0].expert_out, 1);
  EXPECT_EQ(swaps[1].expert_in, 4);
  EXPECT_EQ(swaps[1].expert_out, 3);
}

TEST(Allocation, SwapNumLimitsPairs) {
  // 8 experts -> SwapNum = 4 even if more CPU experts are hot.
  const auto p = placement_with_gpu(8, {0, 1, 2});
  const std::vector<double> counts = {0, 0, 0, 50, 50, 50, 50, 50};
  const auto swaps = sequence_specific_swaps(counts, p, 0, 1.05);
  // Limited by |GPU| = 3 pairs here.
  EXPECT_EQ(swaps.size(), 3U);
}

TEST(Allocation, ZeroCountHotExpertNeverSwapsIn) {
  const auto p = placement_with_gpu(4, {0, 1});
  const std::vector<double> counts = {0.0, 0.0, 0.0, 0.0};
  EXPECT_TRUE(sequence_specific_swaps(counts, p, 0, 1.05).empty());
}

TEST(Allocation, EmptyGpuOrCpuSideNoSwaps) {
  const auto all_gpu = placement_with_gpu(4, {0, 1, 2, 3});
  const std::vector<double> counts = {1, 2, 3, 4};
  EXPECT_TRUE(sequence_specific_swaps(counts, all_gpu, 0, 1.05).empty());

  cache::Placement none(1, 4);
  EXPECT_TRUE(sequence_specific_swaps(counts, none, 0, 1.05).empty());
}

TEST(Allocation, ApplySwapsUpdatesPlacement) {
  auto p = placement_with_gpu(4, {0, 1});
  // Pairs: (2,1): 20 >= 1.05*1 -> swap; (3,0): 15 >= 1.05*10 -> swap.
  const std::vector<double> counts = {10.0, 1.0, 20.0, 15.0};
  const auto swaps = sequence_specific_swaps(counts, p, 0, 1.05);
  ASSERT_EQ(swaps.size(), 2U);
  apply_swaps(p, 0, swaps);
  EXPECT_TRUE(p.on_gpu(0, 2));
  EXPECT_TRUE(p.on_gpu(0, 3));
  EXPECT_FALSE(p.on_gpu(0, 0));
  EXPECT_FALSE(p.on_gpu(0, 1));
  EXPECT_EQ(p.gpu_count(0), 2);  // capacity invariant preserved
}

TEST(Allocation, SwapsPreserveGpuCount) {
  auto p = placement_with_gpu(8, {0, 1, 2, 3});
  const std::vector<double> counts = {0, 0, 0, 0, 9, 9, 9, 9};
  const auto swaps = sequence_specific_swaps(counts, p, 0, 1.05);
  apply_swaps(p, 0, swaps);
  EXPECT_EQ(p.gpu_count(0), 4);
}

TEST(Allocation, RejectsBadInputs) {
  const auto p = placement_with_gpu(4, {0});
  const std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_THROW(sequence_specific_swaps(wrong_size, p, 0, 1.05), CheckError);
  const std::vector<double> counts = {1, 2, 3, 4};
  EXPECT_THROW(sequence_specific_swaps(counts, p, 0, 0.9), CheckError);
}

}  // namespace
}  // namespace daop::core
