// Tests for the DAOP extensions beyond the paper: quantized CPU expert
// execution (cpu_quant_bits) and decode-phase re-allocation
// (decode_realloc_interval), in both execution planes.
#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "cache/placement.hpp"
#include "core/daop_engine.hpp"
#include "core/daop_executor.hpp"
#include "data/gate_bias.hpp"
#include "eval/accuracy.hpp"
#include "model/config.hpp"
#include "sim/device.hpp"

namespace daop::core {
namespace {

using daop::testing::alternating_trace;
using daop::testing::fixed_trace;
using daop::testing::prefix_placement;
using daop::testing::small_mixtral;

// ---- Performance plane ----

class DaopExtensionsPerfTest : public ::testing::Test {
 protected:
  DaopExtensionsPerfTest()
      : cfg_(small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_F(DaopExtensionsPerfTest, QuantizedCpuPathIsFaster) {
  const auto tr = fixed_trace(cfg_, 2, 8, {0, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopConfig fp;
  fp.enable_seq_allocation = false;
  fp.min_predict_layer = 1;
  DaopConfig q4 = fp;
  q4.cpu_quant_bits = 4;
  const auto rf = DaopEngine(costs_, fp).run(tr, placement);
  const auto rq = DaopEngine(costs_, q4).run(tr, placement);
  EXPECT_LT(rq.decode_s, rf.decode_s);
  // The CPU path is ~memory-bound: 4-bit cuts its time by roughly the byte
  // ratio, which shows up whenever CPU experts execute.
  EXPECT_GT(rf.decode_s / rq.decode_s, 1.1);
}

TEST_F(DaopExtensionsPerfTest, DecodeReallocFollowsDrift) {
  // Decode alternates between {4,5} and {6,7} every token, so a frozen
  // prefill placement misses half the steps forever. With re-allocation
  // every 4 tokens the cache converges to... still churn (alternation is
  // adversarial), but with a LONG phase the cache adapts:
  model::ModelConfig cfg = small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);

  // Build a phase-change trace: decode starts on {4,5} (matching prefill),
  // then permanently moves to {6,7}. The post-change horizon must be long
  // enough for the ~40 ms swap migrations to amortize — re-allocation is a
  // long-drift optimization, not a churn optimization.
  const int gen = 48;
  const int change_at = 12;
  auto tr = fixed_trace(cfg, 4, gen, {4, 5});
  const auto late = fixed_trace(cfg, 4, gen, {6, 7});
  for (int l = 0; l < cfg.n_layers; ++l) {
    for (int t = change_at; t < gen; ++t) {
      tr.decode[static_cast<std::size_t>(l)].tokens[static_cast<std::size_t>(t)] =
          late.decode[static_cast<std::size_t>(l)].tokens[static_cast<std::size_t>(t)];
    }
  }
  const auto placement = prefix_placement(cfg, 2);

  DaopConfig frozen;
  frozen.min_predict_layer = 1;
  DaopConfig realloc = frozen;
  realloc.decode_realloc_interval = 6;

  const auto rf = DaopEngine(costs, frozen).run(tr, placement);
  const auto rr = DaopEngine(costs, realloc).run(tr, placement);
  EXPECT_EQ(rf.counters.decode_swaps, 0);
  EXPECT_GT(rr.counters.decode_swaps, 0);
  // After the phase change the re-allocating engine serves {6,7} from the
  // GPU; the frozen one pays the CPU path for the rest of the sequence.
  EXPECT_LT(rr.decode_s, rf.decode_s);
}

TEST_F(DaopExtensionsPerfTest, ReallocOffMatchesBaselineExactly) {
  const auto tr = fixed_trace(cfg_, 2, 6, {0, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopConfig a;
  a.min_predict_layer = 1;
  DaopConfig b = a;
  b.decode_realloc_interval = 0;  // explicit off == default
  const auto ra = DaopEngine(costs_, a).run(tr, placement);
  const auto rb = DaopEngine(costs_, b).run(tr, placement);
  EXPECT_DOUBLE_EQ(ra.total_s, rb.total_s);
}

TEST_F(DaopExtensionsPerfTest, AdaptiveSkippingReducesWork) {
  // All tokens have a decisive top-1 (fixed_trace scores: 10 vs 9 -> top-1
  // weight ~0.73); margin 0.7 skips the second expert everywhere, margin
  // 0.9 never does.
  const auto tr = fixed_trace(cfg_, 2, 6, {0, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopConfig base;
  base.enable_seq_allocation = false;
  base.min_predict_layer = 1;

  DaopConfig skip = base;
  skip.skip_top1_margin = 0.70;
  const auto rs = DaopEngine(costs_, skip).run(tr, placement);
  EXPECT_GT(rs.counters.skipped_experts, 0);
  // Expert 5 (the CPU one, ranked second) is skipped throughout decode; the
  // only CPU executions left are its prefill runs (one per layer).
  EXPECT_EQ(rs.counters.cpu_expert_execs, cfg_.n_layers);

  DaopConfig no_skip = base;
  no_skip.skip_top1_margin = 0.90;
  const auto rn = DaopEngine(costs_, no_skip).run(tr, placement);
  EXPECT_EQ(rn.counters.skipped_experts, 0);
  EXPECT_LT(rs.decode_s, rn.decode_s);
}

// ---- Functional plane ----

class DaopExtensionsFuncTest : public ::testing::Test {
 protected:
  DaopExtensionsFuncTest() : model_(model::tiny_mixtral(), 17) {}

  cache::Placement placement_with_ecr(double ecr) const {
    const auto& cfg = model_.config();
    const auto calib = eval::calibrate_functional_counts(
        model_, data::sharegpt_calibration(), 4, 12, 12, 5);
    return cache::init_placement_calibrated(cfg.n_layers, cfg.n_experts, ecr,
                                            calib);
  }

  model::FunctionalModel model_;
};

TEST_F(DaopExtensionsFuncTest, QuantizedCpuExecsAreCountedAndApproximate) {
  const auto& cfg = model_.config();
  const auto prompt = data::make_prompt(cfg.vocab_size, 12, 9, 0);
  const auto bias = data::make_gate_bias(data::c4(), cfg.n_layers,
                                         cfg.n_experts, 9, 0, 12, 12 + 17);
  const auto placement = placement_with_ecr(0.25);

  DaopConfig q8;
  q8.cpu_quant_bits = 8;
  DaopFunctionalExecutor daop_q(model_, q8);
  FunctionalRunStats stats;
  const auto got_q = daop_q.generate(prompt, 16, placement, bias, &stats);
  EXPECT_GT(stats.quantized_execs, 0);

  DaopFunctionalExecutor daop_fp(model_);
  FunctionalRunStats stats_fp;
  const auto got_fp = daop_fp.generate(prompt, 16, placement, bias, &stats_fp);
  EXPECT_EQ(stats_fp.quantized_execs, 0);
  // int8 grouped quantization should track full precision closely: the two
  // runs agree on most tokens (identical routing decisions up to tiny logit
  // perturbations).
  int agree = 0;
  for (std::size_t i = 0; i < got_q.size(); ++i) {
    if (got_q[i] == got_fp[i]) ++agree;
  }
  EXPECT_GT(agree, static_cast<int>(got_q.size()) / 2);
}

TEST_F(DaopExtensionsFuncTest, QuantizationDoesNotTouchGpuResidentMath) {
  // At ECR 100% there are no CPU executions, so enabling quantization must
  // not change a single token.
  const auto& cfg = model_.config();
  const auto prompt = data::make_prompt(cfg.vocab_size, 12, 9, 1);
  const auto bias = data::make_gate_bias(data::c4(), cfg.n_layers,
                                         cfg.n_experts, 9, 1, 12, 12 + 13);
  const auto placement = placement_with_ecr(1.0);
  DaopConfig q4;
  q4.cpu_quant_bits = 4;
  DaopFunctionalExecutor daop_q(model_, q4);
  DaopFunctionalExecutor daop_fp(model_);
  FunctionalRunStats stats;
  EXPECT_EQ(daop_q.generate(prompt, 12, placement, bias, &stats),
            daop_fp.generate(prompt, 12, placement, bias));
  EXPECT_EQ(stats.quantized_execs, 0);
}

TEST_F(DaopExtensionsFuncTest, DecodeReallocSwapsAndStaysExactWhenApproxOff) {
  // Re-allocation only relocates weights; with precalc/degradation off the
  // output must still equal the official model.
  const auto& cfg = model_.config();
  const auto prompt = data::make_prompt(cfg.vocab_size, 12, 9, 2);
  const auto bias = data::make_gate_bias(data::gsm8k(), cfg.n_layers,
                                         cfg.n_experts, 9, 2, 12, 12 + 21);
  const model::OfficialDecoder official(model_);
  const auto ref = official.generate(prompt, 20, bias);

  DaopConfig dc;
  dc.enable_precalc = false;
  dc.enable_degradation = false;
  dc.mispredict_policy = MispredictPolicy::RecomputeExact;
  dc.decode_realloc_interval = 5;
  DaopFunctionalExecutor daop(model_, dc);
  FunctionalRunStats stats;
  const auto got =
      daop.generate(prompt, 20, placement_with_ecr(0.375), bias, &stats);
  EXPECT_EQ(ref, got);
  EXPECT_GT(stats.decode_swaps, 0);
}

TEST_F(DaopExtensionsFuncTest, ReallocReducesApproximationUnderDrift) {
  // GSM8K-style drift: re-allocation should raise the exact-execution
  // fraction relative to the frozen placement (the §VI-B fix).
  const auto& cfg = model_.config();
  const auto placement = placement_with_ecr(0.375);

  auto run = [&](int interval) {
    FunctionalRunStats total;
    DaopConfig dc;
    dc.decode_realloc_interval = interval;
    DaopFunctionalExecutor daop(model_, dc);
    for (int s = 0; s < 6; ++s) {
      const auto prompt = data::make_prompt(cfg.vocab_size, 12, 31, s);
      const auto bias = data::make_gate_bias(data::gsm8k(), cfg.n_layers,
                                             cfg.n_experts, 31, s, 12,
                                             12 + 41);
      FunctionalRunStats st;
      daop.generate(prompt, 40, placement, bias, &st);
      total.decode_expert_uses += st.decode_expert_uses;
      total.exact_execs += st.exact_execs;
    }
    return static_cast<double>(total.exact_execs) /
           static_cast<double>(total.decode_expert_uses);
  };

  const double frozen = run(0);
  const double realloc = run(8);
  EXPECT_GT(realloc, frozen);
}

}  // namespace
}  // namespace daop::core
