#include "core/daop_engine.hpp"

#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "data/trace_generator.hpp"
#include "engines/fiddler.hpp"
#include "sim/device.hpp"

namespace daop::core {
namespace {

using daop::testing::fixed_trace;
using daop::testing::prefix_placement;
using daop::testing::small_mixtral;

class DaopEngineTest : public ::testing::Test {
 protected:
  DaopEngineTest()
      : cfg_(small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  DaopConfig no_alloc_predict_all() const {
    DaopConfig dc;
    dc.enable_seq_allocation = false;
    dc.min_predict_layer = 1;
    return dc;
  }

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_F(DaopEngineTest, FullEcrRunsEntirelyOnGpu) {
  const auto tr = fixed_trace(cfg_, 4, 6, {3, 6});
  const auto placement = prefix_placement(cfg_, cfg_.n_experts);
  DaopEngine engine(costs_);
  const auto r = engine.run(tr, placement);
  EXPECT_EQ(r.counters.cpu_expert_execs, 0);
  EXPECT_EQ(r.counters.expert_migrations, 0);
  EXPECT_EQ(r.counters.cache_misses, 0);
  EXPECT_EQ(r.counters.degradations, 0);
}

TEST_F(DaopEngineTest, Algorithm1SwapsHotExpertInDuringPrefill) {
  // Selected experts {4,5} live on the CPU; Algorithm 1 must swap them in
  // during prefill so the decode phase hits.
  const auto tr = fixed_trace(cfg_, 8, 4, {4, 5});
  const auto placement = prefix_placement(cfg_, 2);  // residents {0,1}
  DaopConfig dc;
  dc.min_predict_layer = 1;
  DaopEngine engine(costs_, dc);
  const auto r = engine.run(tr, placement);
  EXPECT_EQ(r.counters.prefill_swaps, 2 * cfg_.n_layers);
  EXPECT_EQ(r.counters.expert_migrations, 2 * cfg_.n_layers);
  // Decode: all selected experts now resident.
  EXPECT_EQ(r.counters.mispredictions, 0);
  EXPECT_EQ(r.counters.cpu_expert_execs,
            2 * cfg_.n_layers);  // prefill executed at old locations
}

TEST_F(DaopEngineTest, PrecalcRunsPredictedCpuExperts) {
  // No allocation; expert 5 stays on CPU and is predicted correctly.
  const auto tr = fixed_trace(cfg_, 2, 4, {0, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopEngine engine(costs_, no_alloc_predict_all());
  const auto r = engine.run(tr, placement);
  EXPECT_GT(r.counters.predictions, 0);
  EXPECT_EQ(r.counters.mispredictions, 0);
  EXPECT_GT(r.counters.cpu_expert_execs, 0);
}

TEST_F(DaopEngineTest, PrecalcOverlapBeatsFiddler) {
  const auto tr = fixed_trace(cfg_, 2, 8, {0, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopEngine daop(costs_, no_alloc_predict_all());
  engines::FiddlerEngine fiddler(costs_);
  const auto rd = daop.run(tr, placement);
  const auto rf = fiddler.run(tr, placement);
  EXPECT_LT(rd.decode_s, rf.decode_s);
}

TEST_F(DaopEngineTest, GracefulDegradationSubstitutesSecondCpuExpert) {
  // Both selected experts on CPU; degradation replaces the lower-scored one
  // with a GPU-resident expert.
  const auto tr = fixed_trace(cfg_, 2, 4, {4, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopEngine engine(costs_, no_alloc_predict_all());
  const auto r = engine.run(tr, placement);
  EXPECT_GT(r.counters.degradations, 0);

  DaopConfig no_degrade = no_alloc_predict_all();
  no_degrade.enable_degradation = false;
  DaopEngine engine2(costs_, no_degrade);
  const auto r2 = engine2.run(tr, placement);
  EXPECT_EQ(r2.counters.degradations, 0);
  // Without degradation, both CPU experts execute on the CPU every step.
  EXPECT_GT(r2.counters.cpu_expert_execs, r.counters.cpu_expert_execs);
  EXPECT_GE(r2.decode_s, r.decode_s);
}

TEST_F(DaopEngineTest, MispredictionDetectedAndHandled) {
  // Predictions point at {6,7} but the true selection is {0,5}: expert 5 is
  // a CPU-resident mispredict every step (layers >= 1).
  const auto tr = fixed_trace(cfg_, 2, 4, {0, 5}, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);

  DaopConfig recompute = no_alloc_predict_all();
  recompute.mispredict_policy = MispredictPolicy::RecomputeExact;
  DaopEngine engine(costs_, recompute);
  const auto r = engine.run(tr, placement);
  EXPECT_GT(r.counters.mispredictions, 0);

  DaopConfig fallback = no_alloc_predict_all();
  fallback.mispredict_policy = MispredictPolicy::GracefulFallback;
  DaopEngine engine2(costs_, fallback);
  const auto r2 = engine2.run(tr, placement);
  EXPECT_EQ(r2.counters.mispredictions, r.counters.mispredictions);
  // The fallback substitutes GPU execution for the stalled CPU recompute.
  EXPECT_LT(r2.decode_s, r.decode_s);
  EXPECT_GT(r2.counters.degradations, 0);
}

TEST_F(DaopEngineTest, EarlyLayersUseInPlaceExecution) {
  // min_predict_layer = 5 on a 4-layer model: no predictions at all, decode
  // behaves like Fiddler (synchronous CPU execution).
  const auto tr = fixed_trace(cfg_, 2, 4, {0, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopConfig dc;
  dc.enable_seq_allocation = false;
  dc.min_predict_layer = 5;
  DaopEngine engine(costs_, dc);
  const auto r = engine.run(tr, placement);
  EXPECT_EQ(r.counters.predictions, 0);
  EXPECT_EQ(r.counters.degradations, 0);
  engines::FiddlerEngine fiddler(costs_);
  const auto rf = fiddler.run(tr, placement);
  EXPECT_NEAR(r.decode_s, rf.decode_s, rf.decode_s * 0.01);
}

TEST_F(DaopEngineTest, DecodeWaitsForPrefillSwapTransfers) {
  // With a long swap queue and a trivially short prefill, decode must not
  // start before the swapped weights have arrived.
  const auto tr = fixed_trace(cfg_, 1, 1, {4, 5});
  const auto placement = prefix_placement(cfg_, 2);
  DaopConfig dc;
  dc.min_predict_layer = 1;
  DaopEngine engine(costs_, dc);
  const auto r = engine.run(tr, placement);
  EXPECT_EQ(r.counters.prefill_swaps, 2 * cfg_.n_layers);
  // 2 swaps x L layers serialized on PCIe.
  EXPECT_GE(r.prefill_s + r.decode_s,
            2 * cfg_.n_layers * costs_.expert_migration() * 0.95);
}

TEST_F(DaopEngineTest, DeterministicAcrossRuns) {
  const data::TraceGenerator gen(data::c4(), cfg_.n_layers, cfg_.n_experts,
                                 cfg_.top_k, 5);
  const auto tr = gen.generate(0, 16, 16);
  const auto calib = cache::calibrate_activation_counts(
      data::TraceGenerator(data::sharegpt_calibration(), cfg_.n_layers,
                           cfg_.n_experts, cfg_.top_k, 6),
      8);
  const auto placement =
      cache::init_placement_calibrated(cfg_.n_layers, cfg_.n_experts, 0.5,
                                       calib);
  DaopEngine e1(costs_);
  DaopEngine e2(costs_);
  const auto r1 = e1.run(tr, placement);
  const auto r2 = e2.run(tr, placement);
  EXPECT_DOUBLE_EQ(r1.total_s, r2.total_s);
  EXPECT_EQ(r1.counters.prefill_swaps, r2.counters.prefill_swaps);
  EXPECT_EQ(r1.counters.cpu_expert_execs, r2.counters.cpu_expert_execs);
}

TEST_F(DaopEngineTest, NameReflectsAblationState) {
  DaopEngine full(costs_);
  EXPECT_EQ(full.name(), "DAOP");
  DaopConfig dc;
  dc.enable_precalc = false;
  DaopEngine ablated(costs_, dc);
  EXPECT_NE(ablated.name(), "DAOP");
  EXPECT_NE(ablated.name().find("-precalc"), std::string::npos);
}

TEST_F(DaopEngineTest, HigherEcrNeverSlower) {
  const data::TraceGenerator gen(data::c4(), cfg_.n_layers, cfg_.n_experts,
                                 cfg_.top_k, 11);
  const auto calib_gen =
      data::TraceGenerator(data::sharegpt_calibration(), cfg_.n_layers,
                           cfg_.n_experts, cfg_.top_k, 12);
  const auto calib = cache::calibrate_activation_counts(calib_gen, 8);
  double prev = 0.0;
  for (double ecr : {0.25, 0.5, 1.0}) {
    const auto placement = cache::init_placement_calibrated(
        cfg_.n_layers, cfg_.n_experts, ecr, calib);
    DaopEngine engine(costs_);
    double total = 0.0;
    for (int s = 0; s < 3; ++s) {
      total += engine.run(gen.generate(s, 32, 32), placement).total_s;
    }
    if (prev > 0.0) {
      EXPECT_LT(total, prev * 1.02);
    }
    prev = total;
  }
}

}  // namespace
}  // namespace daop::core
