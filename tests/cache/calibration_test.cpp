#include "cache/calibration.hpp"

#include <gtest/gtest.h>

#include "cache/placement.hpp"
#include "common/check.hpp"
#include "data/workload.hpp"

namespace daop::cache {
namespace {

data::TraceGenerator make_gen() {
  return data::TraceGenerator(data::sharegpt_calibration(), 8, 8, 2, 77);
}

TEST(Calibration, ShapeAndMass) {
  const auto gen = make_gen();
  const auto counts = calibrate_activation_counts(gen, 4);
  ASSERT_EQ(counts.size(), 8U);
  for (const auto& layer : counts) {
    ASSERT_EQ(layer.size(), 8U);
    double sum = 0.0;
    for (double v : layer) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    // 4 sequences x default gen_len tokens x top-2 routes per layer.
    EXPECT_DOUBLE_EQ(sum, 4.0 * 2.0 * data::sharegpt_calibration().gen_len);
  }
}

TEST(Calibration, Deterministic) {
  const auto a = calibrate_activation_counts(make_gen(), 3);
  const auto b = calibrate_activation_counts(make_gen(), 3);
  EXPECT_EQ(a, b);
}

TEST(Calibration, MoreSequencesMoreMass) {
  const auto gen = make_gen();
  const auto small = calibrate_activation_counts(gen, 2);
  const auto large = calibrate_activation_counts(gen, 4);
  double ssum = 0.0;
  double lsum = 0.0;
  for (std::size_t l = 0; l < small.size(); ++l) {
    for (std::size_t e = 0; e < small[l].size(); ++e) {
      ssum += small[l][e];
      lsum += large[l][e];
    }
  }
  EXPECT_DOUBLE_EQ(lsum, 2.0 * ssum);
}

TEST(Calibration, FeedsPlacementInit) {
  const auto counts = calibrate_activation_counts(make_gen(), 4);
  const Placement p = init_placement_calibrated(8, 8, 0.5, counts);
  EXPECT_EQ(p.total_gpu_count(), 32);
}

TEST(Calibration, RejectsZeroSequences) {
  EXPECT_THROW(calibrate_activation_counts(make_gen(), 0), daop::CheckError);
}

}  // namespace
}  // namespace daop::cache
