// PlacementArbiter semantics: pin-refused swaps/evictions, ref-counted
// nesting, session cleanup and the monotonic weight-arrival gate. These are
// the rules that make continuous batching safe — one session's migration
// must never evict an expert a concurrent session is computing with.
#include "cache/arbiter.hpp"

#include <gtest/gtest.h>

namespace daop::cache {
namespace {

// 2 layers x 4 experts, 2 GPU slots per layer holding experts {0, 1}.
Placement small_placement() {
  Placement pl(2, 4);
  for (int l = 0; l < 2; ++l) {
    pl.set_capacity(l, 2);
    pl.move_to_gpu(l, 0);
    pl.move_to_gpu(l, 1);
  }
  return pl;
}

TEST(PlacementArbiter, PinsBlockOtherSessionsSwaps) {
  PlacementArbiter arb(small_placement());
  arb.pin(0, 1, /*session=*/1);

  // Session 2 cannot swap out the expert session 1 is computing with.
  EXPECT_FALSE(arb.try_swap(0, /*expert_in=*/3, /*expert_out=*/1,
                            /*session=*/2));
  EXPECT_TRUE(arb.placement().on_gpu(0, 1));
  EXPECT_FALSE(arb.placement().on_gpu(0, 3));

  // A session's own pins never block its request.
  EXPECT_TRUE(arb.try_swap(0, 3, 1, /*session=*/1));
  EXPECT_FALSE(arb.placement().on_gpu(0, 1));
  EXPECT_TRUE(arb.placement().on_gpu(0, 3));

  // Pins are per (layer, expert): the same expert in another layer is free.
  arb.pin(0, 0, /*session=*/1);
  EXPECT_TRUE(arb.try_swap(1, 2, 0, /*session=*/2));
}

TEST(PlacementArbiter, PinsAreRefCounted) {
  PlacementArbiter arb(small_placement());
  arb.pin(0, 0, 1);
  arb.pin(0, 0, 1);
  EXPECT_EQ(arb.pin_count(0, 0), 2);

  arb.unpin(0, 0, 1);
  EXPECT_EQ(arb.pin_count(0, 0), 1);
  EXPECT_TRUE(arb.pinned_by_other(0, 0, /*session=*/2));
  EXPECT_FALSE(arb.try_swap(0, 2, 0, /*session=*/2));

  arb.unpin(0, 0, 1);
  EXPECT_EQ(arb.pin_count(0, 0), 0);
  EXPECT_FALSE(arb.pinned_by_other(0, 0, 2));
  EXPECT_TRUE(arb.try_swap(0, 2, 0, /*session=*/2));
}

TEST(PlacementArbiter, PinnedByOtherIgnoresOwnPins) {
  PlacementArbiter arb(small_placement());
  arb.pin(0, 0, 7);
  EXPECT_FALSE(arb.pinned_by_other(0, 0, 7));
  EXPECT_TRUE(arb.pinned_by_other(0, 0, 8));
  // Two sessions pinning: now even the first holder sees "other".
  arb.pin(0, 0, 8);
  EXPECT_TRUE(arb.pinned_by_other(0, 0, 7));
  EXPECT_EQ(arb.pin_count(0, 0), 2);
}

TEST(PlacementArbiter, UnpinSessionDropsAllItsPins) {
  PlacementArbiter arb(small_placement());
  arb.pin(0, 0, 1);
  arb.pin(0, 0, 1);
  arb.pin(0, 1, 1);
  arb.pin(1, 0, 2);

  arb.unpin_session(1);
  EXPECT_EQ(arb.pin_count(0, 0), 0);
  EXPECT_EQ(arb.pin_count(0, 1), 0);
  // Other sessions' pins survive.
  EXPECT_EQ(arb.pin_count(1, 0), 1);
  EXPECT_TRUE(arb.try_swap(0, 3, 0, /*session=*/2));
  EXPECT_FALSE(arb.try_swap(1, 3, 0, /*session=*/1));
}

TEST(PlacementArbiter, TryEvictRespectsPins) {
  PlacementArbiter arb(small_placement());
  arb.pin(0, 1, 1);
  EXPECT_FALSE(arb.try_evict(0, 1, /*session=*/2));
  EXPECT_TRUE(arb.placement().on_gpu(0, 1));

  EXPECT_TRUE(arb.try_evict(0, 1, /*session=*/1));
  EXPECT_FALSE(arb.placement().on_gpu(0, 1));
  EXPECT_TRUE(arb.try_evict(0, 0, /*session=*/2));
  EXPECT_EQ(arb.placement().gpu_count(0), 0);
}

TEST(PlacementArbiter, PerExpertPinCountSumsAcrossLayers) {
  PlacementArbiter arb(small_placement());
  EXPECT_EQ(arb.pin_count(/*expert=*/0), 0);
  arb.pin(0, 0, 1);
  arb.pin(0, 0, 2);
  arb.pin(1, 0, 3);
  // The single-argument overload aggregates expert 0 across both layers.
  EXPECT_EQ(arb.pin_count(0), 3);
  EXPECT_EQ(arb.pin_count(/*expert=*/1), 0);
  arb.unpin_session(1);
  EXPECT_EQ(arb.pin_count(0), 2);
  arb.unpin_session(2);
  arb.unpin_session(3);
  EXPECT_EQ(arb.pin_count(0), 0);
}

TEST(PlacementArbiter, PinningSessionsNamesHoldersSorted) {
  PlacementArbiter arb(small_placement());
  EXPECT_TRUE(arb.pinning_sessions(0, 0).empty());
  arb.pin(0, 0, 42);
  arb.pin(0, 0, 7);
  arb.pin(0, 0, 7);  // ref-counted, still one holder entry
  const auto holders = arb.pinning_sessions(0, 0);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0], 7);
  EXPECT_EQ(holders[1], 42);
  // Fully released holders drop out.
  arb.unpin(0, 0, 7);
  arb.unpin(0, 0, 7);
  const auto rest = arb.pinning_sessions(0, 0);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], 42);
}

TEST(PlacementArbiter, WeightReadyGateIsMonotonic) {
  PlacementArbiter arb(small_placement());
  // Never-in-flight experts gate at 0 (usable immediately).
  EXPECT_DOUBLE_EQ(arb.weight_ready(0, 2), 0.0);

  arb.set_weight_ready(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(arb.weight_ready(0, 2), 5.0);
  // Publishing an earlier arrival never rolls the gate back.
  arb.set_weight_ready(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(arb.weight_ready(0, 2), 5.0);
  arb.set_weight_ready(0, 2, 7.5);
  EXPECT_DOUBLE_EQ(arb.weight_ready(0, 2), 7.5);
  // Gates are per (layer, expert).
  EXPECT_DOUBLE_EQ(arb.weight_ready(1, 2), 0.0);
}

}  // namespace
}  // namespace daop::cache
