// Golden lockdown for `--cache-policy frozen` (ISSUE 7): the default cache
// policy must leave every engine byte-identical to the pre-cache goldens.
// Frozen constructs no ExpertCache anywhere, so the snapshot here runs the
// exact same code as tests/engines/session_determinism_test.cpp — and this
// test proves it by (1) comparing against its own committed golden and
// (2) byte-comparing that golden with session_runs.golden. Any wiring change
// that makes frozen consult the cache — a stray note_use, an unconditional
// plan() call, an extra metric family — diverges one of the 48 snapshot
// blocks (8 engines x 2 workloads x 3 seeds) and fails here.
//
// Regenerate (only after an INTENTIONAL scheduling/tracing change, together
// with session_runs.golden) with:
//   DAOP_UPDATE_GOLDENS=1 ./cache_frozen_golden_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "cache/expert_cache.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"
#include "obs/span_tracer.hpp"
#include "sim/trace_export.hpp"

#ifndef DAOP_GOLDEN_DIR
#error "DAOP_GOLDEN_DIR must be defined by the build"
#endif

namespace daop::engines {
namespace {

std::string hexf(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// One snapshot block, formatted exactly like session_determinism_test.cpp
/// so cache_frozen.golden and session_runs.golden are byte-comparable.
std::string run_snapshot(eval::EngineKind kind, const data::WorkloadSpec& wl,
                         std::uint64_t seed) {
  // The policy under lockdown: frozen is the default and constructs nothing.
  const cache::ExpertCacheOptions frozen;
  EXPECT_FALSE(frozen.enabled());

  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);

  const data::TraceGenerator gen(wl, cfg.n_layers, cfg.n_experts, cfg.top_k,
                                 seed);
  const auto trace = gen.generate(0, 24, 12);
  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, seed ^ 0xCA11Bu);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 6));

  core::DaopConfig dcfg;
  dcfg.min_predict_layer = 1;
  auto engine = eval::make_engine(kind, costs, dcfg);
  obs::SpanTracer tracer;
  engine->set_tracer(&tracer);
  sim::Timeline tl;
  tl.set_record_intervals(true);
  const RunResult r = engine->run(trace, placement, &tl);
  const std::string json = sim::to_chrome_trace_json(tl, &tracer);

  std::ostringstream os;
  os << "[" << engine_kind_name(kind) << " | " << wl.name << " | seed "
     << seed << "]\n";
  os << "tokens=" << r.prompt_tokens << "+" << r.generated_tokens << "\n";
  os << "prefill_s=" << hexf(r.prefill_s) << "\n";
  os << "decode_s=" << hexf(r.decode_s) << "\n";
  os << "total_s=" << hexf(r.total_s) << "\n";
  os << "tokens_per_s=" << hexf(r.tokens_per_s) << "\n";
  os << "decode_tokens_per_s=" << hexf(r.decode_tokens_per_s) << "\n";
  os << "energy=" << hexf(r.energy.gpu_j) << " " << hexf(r.energy.cpu_j)
     << " " << hexf(r.energy.pcie_j) << " " << hexf(r.energy.base_j) << " "
     << hexf(r.energy.total_j) << " " << hexf(r.energy.avg_power_w) << "\n";
  os << "tokens_per_kj=" << hexf(r.tokens_per_kj) << "\n";
  const EngineCounters& c = r.counters;
  os << "counters=" << c.expert_migrations << "," << c.gpu_expert_execs << ","
     << c.cpu_expert_execs << "," << c.cache_hits << "," << c.cache_misses
     << "," << c.prefetch_hits << "," << c.predictions << ","
     << c.mispredictions << "," << c.degradations << "," << c.prefill_swaps
     << "," << c.decode_swaps << "," << c.skipped_experts << ","
     << c.migration_retries << "," << c.migration_aborts << ","
     << c.stale_precalcs << "," << hexf(c.hazard_stall_s) << "\n";
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(fnv1a(json)));
  os << "chrome_trace_fnv1a=" << hash << "\n";
  return os.str();
}

std::string all_snapshots() {
  const std::vector<eval::EngineKind> kinds = eval::extended_baseline_engines();
  const std::vector<data::WorkloadSpec> workloads = {data::c4(),
                                                     data::gsm8k()};
  const std::uint64_t seeds[] = {7, 23, 123};
  std::string out;
  for (const auto kind : kinds) {
    for (const auto& wl : workloads) {
      for (const auto seed : seeds) {
        out += run_snapshot(kind, wl, seed);
        out += "\n";
      }
    }
  }
  return out;
}

const char* kGoldenPath = DAOP_GOLDEN_DIR "/cache_frozen.golden";
const char* kSessionGoldenPath = DAOP_GOLDEN_DIR "/session_runs.golden";

std::string read_file(const char* path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "missing golden file " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(CacheFrozenGolden, MatchesCommittedGolden) {
  const std::string actual = all_snapshots();
  if (std::getenv("DAOP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream f(kGoldenPath);
    ASSERT_TRUE(f.good()) << "cannot write " << kGoldenPath;
    f << actual;
    GTEST_SKIP() << "goldens regenerated at " << kGoldenPath;
  }
  const std::string expected = read_file(kGoldenPath);
  // Compare block by block so a failure names the first diverging run.
  std::istringstream ea(expected);
  std::istringstream aa(actual);
  std::string eline;
  std::string aline;
  std::string block = "<header>";
  while (std::getline(ea, eline)) {
    if (!eline.empty() && eline.front() == '[') block = eline;
    ASSERT_TRUE(static_cast<bool>(std::getline(aa, aline)))
        << "snapshot truncated in " << block;
    ASSERT_EQ(eline, aline) << "first divergence in " << block;
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(aa, aline)))
      << "snapshot has extra content after " << block;
}

TEST(CacheFrozenGolden, ByteIdenticalToPreCacheSessionGolden) {
  // The actual lockdown: frozen's golden IS the pre-cache golden, byte for
  // byte. If the cache PR had perturbed any frozen-path behaviour, the two
  // files could not both pass their own tests and this comparison.
  EXPECT_EQ(read_file(kGoldenPath), read_file(kSessionGoldenPath));
}

TEST(CacheFrozenGolden, FrozenSpeedEvalKeepsTheEngineRunPath) {
  // Contract test for eval/speed.cpp: policy frozen must keep using
  // Engine::run() (no arbiter, no session driver), producing bit-identical
  // results to a direct run. Routing frozen through the dynamic-session
  // path — even if numerically equal today — would silently decouple the
  // frozen CLI mode from the goldens above.
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  eval::SpeedEvalOptions opt;
  opt.n_seqs = 2;
  opt.prompt_len = 24;
  opt.gen_len = 12;
  opt.ecr = 0.469;
  opt.calibration_seqs = 6;
  EXPECT_FALSE(opt.cache.enabled());  // frozen is the default
  const auto results = eval::run_speed_eval_per_sequence(
      eval::EngineKind::Daop, cfg, sim::a6000_i9_platform(), data::gsm8k(),
      opt);

  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k,
                                   opt.seed ^ 0xCA11Bu);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, opt.ecr,
      cache::calibrate_activation_counts(calib, opt.calibration_seqs));
  const data::TraceGenerator gen(data::gsm8k(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, opt.seed);
  auto engine = eval::make_engine(eval::EngineKind::Daop, costs,
                                  opt.daop_config);
  for (int s = 0; s < opt.n_seqs; ++s) {
    const auto trace = gen.generate(s, opt.prompt_len, opt.gen_len);
    const RunResult direct = engine->run(trace, placement);
    EXPECT_EQ(results[static_cast<std::size_t>(s)].total_s, direct.total_s);
    EXPECT_EQ(results[static_cast<std::size_t>(s)].decode_s, direct.decode_s);
    EXPECT_EQ(results[static_cast<std::size_t>(s)].counters.decode_swaps,
              direct.counters.decode_swaps);
    EXPECT_EQ(results[static_cast<std::size_t>(s)].counters.cache_hits,
              direct.counters.cache_hits);
  }
}

}  // namespace
}  // namespace daop::engines
