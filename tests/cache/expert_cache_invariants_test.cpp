// Property/invariant harness for the dynamic expert cache (ISSUE 7).
//
// Across every dynamic policy x seed x hazard scenario, a continuous-batching
// run with cache reallocation enabled must uphold the placement invariants
// the arbiter and ledger are designed around:
//   (a) pinned experts are never evicted (victim_other_pins == 0 on every
//       committed eviction),
//   (b) a layer's GPU-resident count never exceeds its slot capacity,
//   (c) every committed swap appears exactly once in the migration ledger
//       (an evict/fill pair, and the fill total matches the engines'
//       decode_swaps counter byte for byte),
//   (d) the arbiter's pin counts return to zero at shutdown.
// Plus scale-free plan() semantics and refusal diagnostics that name the
// contending sessions.
#include "cache/expert_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cache/arbiter.hpp"
#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "data/trace_generator.hpp"
#include "eval/continuous_batching.hpp"
#include "eval/speed.hpp"
#include "sim/fault_model.hpp"

namespace daop::cache {
namespace {

TEST(ExpertCacheOptions, ValidateRejectsBadKnobs) {
  ExpertCacheOptions o;
  o.policy = CachePolicy::kLru;
  o.realloc_interval = 0;
  EXPECT_THROW(o.validate(), CheckError);
  o = {};
  o.policy = CachePolicy::kLru;
  o.max_swaps_per_step = 0;
  EXPECT_THROW(o.validate(), CheckError);
  o = {};
  o.policy = CachePolicy::kLru;
  o.decay = 0.0;
  EXPECT_THROW(o.validate(), CheckError);
  o = {};
  o.policy = CachePolicy::kLru;
  o.hysteresis = -0.1;
  EXPECT_THROW(o.validate(), CheckError);
}

TEST(ExpertCacheOptions, FrozenConstructsNoCache) {
  // The byte-identity contract: frozen means no ExpertCache exists anywhere,
  // so constructing one under frozen is a programming error.
  ExpertCacheOptions o;
  EXPECT_FALSE(o.enabled());
  EXPECT_THROW(ExpertCache(o, 2, 4), CheckError);
}

TEST(ExpertCachePolicy, ParseRoundTripsAndRejectsTypos) {
  for (const CachePolicy p : all_cache_policies()) {
    EXPECT_EQ(parse_cache_policy(cache_policy_name(p)), p);
  }
  EXPECT_EQ(dynamic_cache_policies().size(), all_cache_policies().size() - 1);
  EXPECT_THROW(parse_cache_policy("least-recently-used"), CheckError);
}

TEST(ExpertCachePlan, PromotesHotCpuExpertOverColdGpuVictim) {
  ExpertCacheOptions o;
  o.policy = CachePolicy::kLfu;
  ExpertCache cache(o, /*n_layers=*/1, /*n_experts=*/4);
  // 2 GPU slots holding {0, 1}; {2, 3} on CPU.
  Placement pl(1, 4);
  pl.set_capacity(0, 2);
  pl.move_to_gpu(0, 0);
  pl.move_to_gpu(0, 1);
  // Expert 2 (CPU) is hot, expert 1 (GPU) never used.
  for (int i = 0; i < 10; ++i) cache.note_use(0, 2, /*session=*/0, 0.1 * i);
  cache.note_use(0, 0, 0, 1.0);

  const auto swaps = cache.plan(pl, nullptr, /*session=*/0);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].layer, 0);
  EXPECT_EQ(swaps[0].expert_in, 2);
  EXPECT_EQ(swaps[0].expert_out, 1);
}

TEST(ExpertCachePlan, SkipsVictimsPinnedByOtherSessions) {
  ExpertCacheOptions o;
  o.policy = CachePolicy::kLfu;
  ExpertCache cache(o, 1, 4);
  Placement pl(1, 4);
  pl.set_capacity(0, 2);
  pl.move_to_gpu(0, 0);
  pl.move_to_gpu(0, 1);
  for (int i = 0; i < 10; ++i) cache.note_use(0, 2, 0, 0.1 * i);

  PlacementArbiter arb(pl);
  // Session 7 is computing with both GPU residents: nothing to evict.
  arb.pin(0, 0, 7);
  arb.pin(0, 1, 7);
  EXPECT_TRUE(cache.plan(arb.placement(), &arb, /*session=*/0).empty());
  // Releasing one pin re-exposes that slot as a victim.
  arb.unpin(0, 1, 7);
  const auto swaps = cache.plan(arb.placement(), &arb, 0);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].expert_out, 1);
}

TEST(ExpertCachePlan, HysteresisSuppressesNearTiedSwaps) {
  ExpertCacheOptions o;
  o.policy = CachePolicy::kLfu;
  o.hysteresis = 0.5;  // candidate must clear half the layer's score spread
  ExpertCache cache(o, 1, 4);
  Placement pl(1, 4);
  pl.set_capacity(0, 2);
  pl.move_to_gpu(0, 0);
  pl.move_to_gpu(0, 1);
  // Spread is 10 (expert 0); candidate 2 beats victim 1 by only 2 < 5.
  for (int i = 0; i < 10; ++i) cache.note_use(0, 0, 0, 0.0);
  for (int i = 0; i < 3; ++i) cache.note_use(0, 2, 0, 0.0);
  cache.note_use(0, 1, 0, 0.0);
  EXPECT_TRUE(cache.plan(pl, nullptr, 0).empty());
  // Widen the gap past the margin and the swap goes through.
  for (int i = 0; i < 5; ++i) cache.note_use(0, 2, 0, 0.0);
  EXPECT_EQ(cache.plan(pl, nullptr, 0).size(), 1u);
}

TEST(ExpertCacheRefusal, DiagnosticsNameContendingSessions) {
  ExpertCacheOptions o;
  o.policy = CachePolicy::kLru;
  ExpertCache cache(o, 1, 4);
  PlannedSwap s{0, 2, 1};
  cache.record_refusal(s, /*session=*/9, /*time=*/1.5, {31, 4});
  ASSERT_EQ(cache.refusals().size(), 1u);
  const std::string msg = cache.refusals()[0].describe();
  // Holders are sorted and named, and the requester is identified.
  EXPECT_NE(msg.find("sessions 4, 31"), std::string::npos) << msg;
  EXPECT_NE(msg.find("requested by session 9"), std::string::npos) << msg;
  EXPECT_NE(msg.find("layer 0"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// Property harness: full continuous-batching runs, every dynamic policy x
// seed x hazard scenario, auditing the ledger and arbiter afterwards.

struct HarnessRun {
  long long fills = 0;
  long long evictions = 0;
  long long refusals = 0;
  long long aborts = 0;
  long long decode_swaps = 0;
  double last_end = 0.0;
};

HarnessRun run_cb_harness(CachePolicy policy, std::uint64_t seed,
                          const std::string& hazard) {
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);

  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, seed ^ 0xCA11Bu);
  const cache::Placement initial = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.35,
      cache::calibrate_activation_counts(calib, 4));
  const data::TraceGenerator gen(data::gsm8k(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, seed);

  auto engine = eval::make_engine(eval::EngineKind::Daop, costs);
  sim::FaultModel fault(sim::make_hazard_scenario(hazard, 0.6),
                        seed ^ 0xFA017ULL);
  if (fault.enabled()) engine->set_fault_model(&fault);

  eval::ContinuousBatchingScheduler::Options opt;
  opt.max_concurrent = 3;
  opt.cache.policy = policy;
  opt.cache.realloc_interval = 2;
  sim::Timeline tl;
  eval::ContinuousBatchingScheduler sched(*engine, tl, initial, opt);
  for (int i = 0; i < 8; ++i) {
    eval::ContinuousBatchingScheduler::Request req;
    req.id = i;
    req.arrival = 0.05 * i;
    req.trace = gen.generate(i, /*prompt=*/16, /*gen=*/24);
    sched.enqueue(std::move(req));
  }
  const auto outcomes = sched.run();

  HarnessRun out;
  const ExpertCache* ec = sched.expert_cache();
  EXPECT_NE(ec, nullptr);
  // Invariant (d): every pin released at shutdown.
  EXPECT_EQ(sched.arbiter().total_pin_count(), 0);
  // Invariant (c) part 1: totals are evict/fill pairs, each counted once.
  EXPECT_EQ(ec->fills(), ec->evictions());
  EXPECT_EQ(ec->ledger().size(),
            static_cast<std::size_t>(ec->fills() + ec->evictions()));
  for (std::size_t i = 0; i < ec->ledger().size(); i += 2) {
    const CacheEvent& evict = ec->ledger()[i];
    const CacheEvent& fill = ec->ledger()[i + 1];
    EXPECT_EQ(static_cast<int>(evict.kind),
              static_cast<int>(CacheEvent::Kind::kEvict));
    EXPECT_EQ(static_cast<int>(fill.kind),
              static_cast<int>(CacheEvent::Kind::kFill));
    // The pair describes one swap: each half names the other as its peer,
    // committed by the same session at the same instant.
    EXPECT_EQ(evict.peer, fill.expert);
    EXPECT_EQ(fill.peer, evict.expert);
    EXPECT_EQ(evict.layer, fill.layer);
    EXPECT_EQ(evict.session, fill.session);
    EXPECT_EQ(evict.time, fill.time);
    // Invariant (a): the evicted expert was never pinned by another session.
    EXPECT_EQ(evict.victim_other_pins, 0);
    // Invariant (b): capacity was respected after both halves.
    EXPECT_LE(evict.gpu_count_after, evict.capacity);
    EXPECT_LE(fill.gpu_count_after, fill.capacity);
    EXPECT_GT(fill.time, 0.0);
  }
  out.fills = ec->fills();
  out.evictions = ec->evictions();
  out.refusals = static_cast<long long>(ec->refusals().size());
  out.aborts = ec->aborts();
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.served);
    out.decode_swaps += o.result.counters.decode_swaps;
    out.last_end = std::max(out.last_end, o.end);
  }
  // Invariant (c) part 2: in shared (continuous-batching) mode DAOP's own
  // decode realloc is off, so every decode swap is a cache fill and the
  // ledger accounts for each exactly once.
  EXPECT_EQ(out.decode_swaps, out.fills);
  return out;
}

TEST(ExpertCacheInvariants, HoldAcrossPoliciesSeedsAndHazards) {
  long long total_fills = 0;
  for (const CachePolicy policy : dynamic_cache_policies()) {
    for (const std::uint64_t seed : {7ull, 23ull, 123ull}) {
      for (const char* hazard : {"none", "all"}) {
        SCOPED_TRACE(std::string(cache_policy_name(policy)) + " seed " +
                     std::to_string(seed) + " hazard " + hazard);
        const HarnessRun r = run_cb_harness(policy, seed, hazard);
        total_fills += r.fills;
      }
    }
  }
  // The property sweep is vacuous if no configuration ever commits a swap.
  EXPECT_GT(total_fills, 0);
}

TEST(ExpertCacheInvariants, DynamicPoliciesAreDeterministic) {
  for (const CachePolicy policy :
       {CachePolicy::kLru, CachePolicy::kReusePredictor}) {
    SCOPED_TRACE(cache_policy_name(policy));
    const HarnessRun a = run_cb_harness(policy, 7, "all");
    const HarnessRun b = run_cb_harness(policy, 7, "all");
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.refusals, b.refusals);
    EXPECT_EQ(a.aborts, b.aborts);
    EXPECT_EQ(a.decode_swaps, b.decode_swaps);
    // Bit-identity, not tolerance.
    EXPECT_EQ(a.last_end, b.last_end);
  }
}

}  // namespace
}  // namespace daop::cache
