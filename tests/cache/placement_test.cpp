#include "cache/placement.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace daop::cache {
namespace {

TEST(Placement, StartsAllOnCpu) {
  Placement p(4, 8);
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(p.gpu_count(l), 0);
    EXPECT_EQ(p.capacity(l), 0);
    for (int e = 0; e < 8; ++e) EXPECT_FALSE(p.on_gpu(l, e));
  }
  EXPECT_DOUBLE_EQ(p.ecr(), 0.0);
}

TEST(Placement, MoveRespectsCapacity) {
  Placement p(2, 4);
  p.set_capacity(0, 2);
  EXPECT_TRUE(p.move_to_gpu(0, 1));
  EXPECT_TRUE(p.move_to_gpu(0, 3));
  EXPECT_THROW(p.move_to_gpu(0, 0), CheckError);  // full
  EXPECT_EQ(p.gpu_count(0), 2);
}

TEST(Placement, MoveIsIdempotent) {
  Placement p(1, 4);
  p.set_capacity(0, 2);
  EXPECT_TRUE(p.move_to_gpu(0, 1));
  EXPECT_FALSE(p.move_to_gpu(0, 1));  // already there
  EXPECT_EQ(p.gpu_count(0), 1);
  EXPECT_TRUE(p.move_to_cpu(0, 1));
  EXPECT_FALSE(p.move_to_cpu(0, 1));
  EXPECT_EQ(p.gpu_count(0), 0);
}

TEST(Placement, SwapExchangesDevices) {
  Placement p(1, 4);
  p.set_capacity(0, 1);
  p.move_to_gpu(0, 2);
  p.swap(0, /*expert_in=*/3, /*expert_out=*/2);
  EXPECT_TRUE(p.on_gpu(0, 3));
  EXPECT_FALSE(p.on_gpu(0, 2));
  EXPECT_EQ(p.gpu_count(0), 1);
}

TEST(Placement, SwapValidatesDirections) {
  Placement p(1, 4);
  p.set_capacity(0, 1);
  p.move_to_gpu(0, 2);
  EXPECT_THROW(p.swap(0, 3, 1), CheckError);  // 1 not on GPU
  EXPECT_THROW(p.swap(0, 2, 2), CheckError);  // 2 not on CPU
}

TEST(Placement, CapacityCannotDropBelowOccupancy) {
  Placement p(1, 4);
  p.set_capacity(0, 2);
  p.move_to_gpu(0, 0);
  p.move_to_gpu(0, 1);
  EXPECT_THROW(p.set_capacity(0, 1), CheckError);
}

TEST(Placement, ExpertListsPartition) {
  Placement p(1, 6);
  p.set_capacity(0, 3);
  p.move_to_gpu(0, 0);
  p.move_to_gpu(0, 4);
  EXPECT_EQ(p.gpu_experts(0), (std::vector<int>{0, 4}));
  EXPECT_EQ(p.cpu_experts(0), (std::vector<int>{1, 2, 3, 5}));
}

TEST(Placement, EcrCountsAllLayers) {
  Placement p(2, 4);
  p.set_capacity(0, 4);
  p.set_capacity(1, 4);
  p.move_to_gpu(0, 0);
  p.move_to_gpu(1, 1);
  EXPECT_DOUBLE_EQ(p.ecr(), 2.0 / 8.0);
  EXPECT_EQ(p.total_gpu_count(), 2);
}

TEST(TotalSlots, RoundsToNearest) {
  EXPECT_EQ(total_slots_for_ecr(32, 8, 0.469), 120);
  EXPECT_EQ(total_slots_for_ecr(32, 8, 1.0), 256);
  EXPECT_EQ(total_slots_for_ecr(32, 8, 0.0), 0);
  EXPECT_THROW(total_slots_for_ecr(32, 8, 1.5), CheckError);
}

class CalibratedInit : public ::testing::TestWithParam<double> {};

TEST_P(CalibratedInit, SlotsMatchEcrAndTopExpertsChosen) {
  const double ecr = GetParam();
  const int L = 8;
  const int E = 8;
  // Calibration: expert e has count E - e in every layer (0 hottest).
  std::vector<std::vector<double>> counts(
      L, std::vector<double>(static_cast<std::size_t>(E)));
  for (auto& layer : counts) {
    for (int e = 0; e < E; ++e) layer[static_cast<std::size_t>(e)] = E - e;
  }
  const Placement p = init_placement_calibrated(L, E, ecr, counts);

  EXPECT_EQ(p.total_gpu_count(), total_slots_for_ecr(L, E, ecr));
  // Per-layer caches hold a prefix of the hottest experts.
  const int base = total_slots_for_ecr(L, E, ecr) / L;
  for (int l = 0; l < L; ++l) {
    EXPECT_GE(p.gpu_count(l), base);
    EXPECT_LE(p.gpu_count(l), base + 1);
    for (int e = 0; e < base; ++e) {
      EXPECT_TRUE(p.on_gpu(l, e)) << "layer " << l << " expert " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EcrSweep, CalibratedInit,
                         ::testing::Values(0.125, 0.25, 0.375, 0.469, 0.5,
                                           0.625, 0.875, 1.0));

TEST(CalibratedInit, RemainderGoesToHottestUncached) {
  const int L = 4;
  const int E = 4;
  // 6 slots for 4 layers: base 1 each + 2 remainder.
  std::vector<std::vector<double>> counts(
      L, std::vector<double>(static_cast<std::size_t>(E), 1.0));
  // Make layer 2's second expert globally hottest uncached candidate, then
  // layer 0's.
  counts[2][1] = 50.0;
  counts[2][0] = 60.0;  // cached by the per-layer fill
  counts[0][1] = 40.0;
  counts[0][0] = 45.0;
  const double ecr = 6.0 / 16.0;
  const Placement p = init_placement_calibrated(L, E, ecr, counts);
  EXPECT_EQ(p.total_gpu_count(), 6);
  EXPECT_TRUE(p.on_gpu(2, 0));
  EXPECT_TRUE(p.on_gpu(2, 1));  // remainder slot 1
  EXPECT_TRUE(p.on_gpu(0, 0));
  EXPECT_TRUE(p.on_gpu(0, 1));  // remainder slot 2
  EXPECT_EQ(p.gpu_count(1), 1);
  EXPECT_EQ(p.gpu_count(3), 1);
}

TEST(CalibratedInit, FullEcrPlacesEverything) {
  const int L = 3;
  const int E = 4;
  std::vector<std::vector<double>> counts(
      L, std::vector<double>(static_cast<std::size_t>(E), 1.0));
  const Placement p = init_placement_calibrated(L, E, 1.0, counts);
  for (int l = 0; l < L; ++l) {
    for (int e = 0; e < E; ++e) EXPECT_TRUE(p.on_gpu(l, e));
  }
}

TEST(CalibratedInit, RejectsMismatchedCalibration) {
  std::vector<std::vector<double>> counts(2, std::vector<double>(4, 1.0));
  EXPECT_THROW(init_placement_calibrated(3, 4, 0.5, counts), CheckError);
}

TEST(GlobalGreedyInit, TotalSlotsMatchAndHottestWin) {
  const int L = 4;
  const int E = 4;
  std::vector<std::vector<double>> counts(
      L, std::vector<double>(static_cast<std::size_t>(E), 0.0));
  // All activation mass sits in layer 1.
  for (int e = 0; e < E; ++e) counts[1][static_cast<std::size_t>(e)] = 10.0 + e;
  const Placement p = init_placement_global_greedy(L, E, 0.25, counts);
  EXPECT_EQ(p.total_gpu_count(), 4);
  // Greedy gives every slot to layer 1 and starves the rest.
  EXPECT_EQ(p.gpu_count(1), 4);
  EXPECT_EQ(p.gpu_count(0), 0);
  EXPECT_EQ(p.gpu_count(2), 0);
  EXPECT_EQ(p.gpu_count(3), 0);
}

TEST(GlobalGreedyInit, MatchesCalibratedWhenCountsUniformPerLayer) {
  const int L = 2;
  const int E = 4;
  std::vector<std::vector<double>> counts = {{4.0, 3.0, 2.0, 1.0},
                                             {4.0, 3.0, 2.0, 1.0}};
  const Placement greedy = init_placement_global_greedy(L, E, 0.5, counts);
  const Placement calibrated = init_placement_calibrated(L, E, 0.5, counts);
  for (int l = 0; l < L; ++l) {
    for (int e = 0; e < E; ++e) {
      EXPECT_EQ(greedy.on_gpu(l, e), calibrated.on_gpu(l, e));
    }
  }
}

TEST(Placement, IndexBoundsChecked) {
  Placement p(2, 3);
  EXPECT_THROW(p.device(2, 0), CheckError);
  EXPECT_THROW(p.device(0, 3), CheckError);
  EXPECT_THROW(p.set_capacity(0, 4), CheckError);
}

}  // namespace
}  // namespace daop::cache
