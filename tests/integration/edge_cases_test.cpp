// Edge cases across the stack: degenerate capacities, top-1 routing,
// zero-generation sequences, single-layer models — configurations a
// downstream user will eventually feed in.
#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "core/daop_engine.hpp"
#include "core/daop_executor.hpp"
#include "data/gate_bias.hpp"
#include "data/trace_generator.hpp"
#include "engines/fetch_engine.hpp"
#include "engines/fiddler.hpp"
#include "eval/speed.hpp"

namespace daop {
namespace {

using daop::testing::fixed_trace;
using daop::testing::prefix_placement;
using daop::testing::small_mixtral;

class EdgeCases : public ::testing::Test {
 protected:
  EdgeCases()
      : cfg_(small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_F(EdgeCases, ZeroCapacityCacheEverythingOnCpu) {
  // ECR 0: no GPU expert slots at all. Fiddler/DAOP must run everything on
  // the CPU; fetch engines must stream per use without residency.
  const auto tr = fixed_trace(cfg_, 2, 3, {0, 1});
  const cache::Placement placement(cfg_.n_layers, cfg_.n_experts);

  engines::FiddlerEngine fiddler(costs_);
  const auto rf = fiddler.run(tr, placement);
  EXPECT_EQ(rf.counters.gpu_expert_execs, 0);
  EXPECT_GT(rf.counters.cpu_expert_execs, 0);

  core::DaopEngine daop(costs_);
  const auto rd = daop.run(tr, placement);
  EXPECT_EQ(rd.counters.prefill_swaps, 0);  // nothing to swap into
  EXPECT_EQ(rd.counters.degradations, 0);   // no GPU substitutes exist
  EXPECT_GT(rd.counters.cpu_expert_execs, 0);

  auto ondemand = engines::make_moe_ondemand(costs_);
  const auto ro = ondemand->run(tr, placement);
  EXPECT_EQ(ro.counters.cache_hits, 0);
  EXPECT_GT(ro.counters.expert_migrations, 0);
}

TEST_F(EdgeCases, ZeroGenerationSequences) {
  const auto tr = fixed_trace(cfg_, 4, 0, {0, 1});
  const auto placement = prefix_placement(cfg_, 4);
  for (auto kind : eval::paper_baseline_engines()) {
    auto engine = eval::make_engine(kind, costs_);
    const auto r = engine->run(tr, placement);
    EXPECT_EQ(r.generated_tokens, 0) << engine->name();
    EXPECT_GT(r.prefill_s, 0.0) << engine->name();
    EXPECT_DOUBLE_EQ(r.decode_s, 0.0) << engine->name();
  }
}

TEST_F(EdgeCases, TopOneRouting) {
  model::ModelConfig cfg = small_mixtral();
  cfg.top_k = 1;
  const model::OpCosts costs(cfg, cm_);
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 3);
  const auto tr = gen.generate(0, 8, 8);
  const auto placement = prefix_placement(cfg, 4);
  for (auto kind : {eval::EngineKind::Fiddler, eval::EngineKind::Daop,
                    eval::EngineKind::MoEOnDemand}) {
    auto engine = eval::make_engine(kind, costs);
    const auto r = engine->run(tr, placement);
    EXPECT_GT(r.tokens_per_s, 0.0) << engine->name();
    // With top-1 routing, graceful degradation's "both on CPU" case never
    // arises in DAOP's plan stage.
    if (kind == eval::EngineKind::Daop) {
      EXPECT_EQ(r.counters.degradations, 0);
    }
  }
}

TEST_F(EdgeCases, SingleLayerModel) {
  model::ModelConfig cfg = small_mixtral(1);
  const model::OpCosts costs(cfg, cm_);
  const data::TraceGenerator gen(data::c4(), 1, cfg.n_experts, cfg.top_k, 4);
  const auto tr = gen.generate(0, 4, 4);
  cache::Placement placement(1, cfg.n_experts);
  placement.set_capacity(0, 4);
  for (int e = 0; e < 4; ++e) placement.move_to_gpu(0, e);
  // No "next layer" exists: DAOP must never plan a pre-calculation.
  core::DaopConfig dc;
  dc.min_predict_layer = 1;
  core::DaopEngine daop(costs, dc);
  const auto r = daop.run(tr, placement);
  EXPECT_EQ(r.counters.predictions, 0);
  EXPECT_GT(r.tokens_per_s, 0.0);
}

TEST_F(EdgeCases, FunctionalTopOneModel) {
  model::ModelConfig cfg = model::tiny_mixtral();
  cfg.top_k = 1;
  const model::FunctionalModel fm(cfg, 5);
  const auto prompt = data::make_prompt(cfg.vocab_size, 8, 6, 0);
  const model::OfficialDecoder official(fm);
  const auto ref = official.generate(prompt, 8);
  EXPECT_EQ(ref.size(), 8U);

  cache::Placement placement(cfg.n_layers, cfg.n_experts);
  for (int l = 0; l < cfg.n_layers; ++l) {
    placement.set_capacity(l, 2);
    placement.move_to_gpu(l, 0);
    placement.move_to_gpu(l, 1);
  }
  core::DaopFunctionalExecutor daop(fm);
  const auto got = daop.generate(prompt, 8, placement);
  EXPECT_EQ(got.size(), 8U);
}

TEST_F(EdgeCases, PromptOfLengthOne) {
  const data::TraceGenerator gen(data::c4(), cfg_.n_layers, cfg_.n_experts,
                                 cfg_.top_k, 6);
  const auto tr = gen.generate(0, 1, 4);
  const auto placement = prefix_placement(cfg_, 4);
  core::DaopEngine daop(costs_);
  const auto r = daop.run(tr, placement);
  EXPECT_EQ(r.prompt_tokens, 1);
  EXPECT_GT(r.tokens_per_s, 0.0);
}

TEST_F(EdgeCases, SkipMarginWithTopOneIsNoop) {
  model::ModelConfig cfg = small_mixtral();
  cfg.top_k = 1;
  const model::OpCosts costs(cfg, cm_);
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts, 1, 8);
  const auto tr = gen.generate(0, 4, 6);
  const auto placement = prefix_placement(cfg, 4);
  core::DaopConfig dc;
  dc.skip_top1_margin = 0.5;
  core::DaopEngine daop(costs, dc);
  const auto r = daop.run(tr, placement);
  EXPECT_EQ(r.counters.skipped_experts, 0);
}

TEST_F(EdgeCases, EngineHandlesEveryExpertColdAfterDrift) {
  // A trace whose decode selections avoid every resident expert entirely.
  const auto tr = daop::testing::alternating_trace(cfg_, 2, 6, {4, 5}, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);
  for (auto kind : eval::paper_baseline_engines()) {
    auto engine = eval::make_engine(kind, costs_);
    const auto r = engine->run(tr, placement);
    EXPECT_GT(r.total_s, 0.0) << engine->name();
  }
}

}  // namespace
}  // namespace daop
