// Integration tests: paper-shape assertions across the whole pipeline at
// reduced scale. These are the repository's acceptance criteria (DESIGN.md
// §6) in executable form — smaller sample counts than the benches, but the
// same code paths end to end.
#include <gtest/gtest.h>

#include "cache/calibration.hpp"
#include "core/daop_engine.hpp"
#include "data/trace_generator.hpp"
#include "eval/accuracy.hpp"
#include "eval/similarity.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"
#include "model/op_costs.hpp"

namespace daop {
namespace {

eval::SpeedEvalOptions medium_options() {
  eval::SpeedEvalOptions opt;
  opt.n_seqs = 2;
  opt.prompt_len = 64;
  opt.gen_len = 64;
  opt.ecr = 0.469;
  opt.calibration_seqs = 8;
  return opt;
}

engines::RunResult run(eval::EngineKind kind) {
  return eval::run_speed_eval(kind, model::mixtral_8x7b(),
                              sim::a6000_i9_platform(), data::c4(),
                              medium_options());
}

// Fig. 9 shape: DAOP > Fiddler >> fetch-based baselines; DeepSpeed worst.
TEST(PaperShape, EngineRankingMatchesFig9) {
  const auto daop = run(eval::EngineKind::Daop);
  const auto fiddler = run(eval::EngineKind::Fiddler);
  const auto ondemand = run(eval::EngineKind::MoEOnDemand);
  const auto deepspeed = run(eval::EngineKind::DeepSpeedMII);

  EXPECT_GT(daop.tokens_per_s, fiddler.tokens_per_s);
  EXPECT_GT(fiddler.tokens_per_s, 2.0 * ondemand.tokens_per_s);
  EXPECT_GT(ondemand.tokens_per_s, deepspeed.tokens_per_s);
}

// Fig. 9 / Fig. 10 shape: DAOP beats Fiddler by a factor in the paper's
// neighbourhood (paper: +35-40%; accept 15-80% at this reduced sample size).
TEST(PaperShape, DaopOverFiddlerFactor) {
  const double ratio =
      run(eval::EngineKind::Daop).tokens_per_s /
      run(eval::EngineKind::Fiddler).tokens_per_s;
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 1.80);
}

// Table IV shape: hybrid CPU-GPU engines are far more energy-efficient than
// migration-bound engines, and DAOP beats Fiddler.
TEST(PaperShape, EnergyRankingMatchesTableIV) {
  const auto daop = run(eval::EngineKind::Daop);
  const auto fiddler = run(eval::EngineKind::Fiddler);
  const auto ondemand = run(eval::EngineKind::MoEOnDemand);
  EXPECT_GT(daop.tokens_per_kj, fiddler.tokens_per_kj);
  EXPECT_GT(fiddler.tokens_per_kj, 2.0 * ondemand.tokens_per_kj);
}

// Fig. 10 shape: DAOP's advantage holds across the ECR range.
TEST(PaperShape, DaopBeatsFiddlerAtEveryEcr) {
  for (double ecr : {0.25, 0.469, 0.625}) {
    auto opt = medium_options();
    opt.ecr = ecr;
    const auto daop = eval::run_speed_eval(eval::EngineKind::Daop,
                                           model::mixtral_8x7b(),
                                           sim::a6000_i9_platform(),
                                           data::c4(), opt);
    const auto fiddler = eval::run_speed_eval(eval::EngineKind::Fiddler,
                                              model::mixtral_8x7b(),
                                              sim::a6000_i9_platform(),
                                              data::c4(), opt);
    EXPECT_GT(daop.tokens_per_s, fiddler.tokens_per_s) << "ecr=" << ecr;
  }
}

// Table II shape at integration scale.
TEST(PaperShape, PrefillDecodeSimilarityNear90) {
  const model::ModelConfig cfg = model::mixtral_8x7b();
  for (const auto& spec : {data::c4(), data::gsm8k()}) {
    const data::TraceGenerator gen(spec, cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, 2);
    const double sim = eval::avg_prefill_decode_similarity(gen, 24);
    EXPECT_GT(sim, 0.86) << spec.name;
    EXPECT_LT(sim, 0.96) << spec.name;
  }
}

// Fig. 5 shape at integration scale.
TEST(PaperShape, PredictionAccuracyNear84) {
  const model::ModelConfig cfg = model::mixtral_8x7b();
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 2);
  const double acc = eval::avg_prediction_accuracy(gen, 24);
  EXPECT_GT(acc, 0.76);
  EXPECT_LT(acc, 0.92);
}

// Tables V/VI shape on the functional plane: exact at full cache, graceful
// under shrinking cache, monotone-ish approximation growth.
TEST(PaperShape, FunctionalAccuracyDegradesGracefully) {
  const model::FunctionalModel fm(model::tiny_mixtral(), 9);
  const auto calib = eval::calibrate_functional_counts(
      fm, data::sharegpt_calibration(), 4, 16, 12, 5);
  eval::AccuracyEvalOptions opt;
  opt.n_episodes = 6;
  opt.prompt_len = 16;
  opt.gen_len = 16;
  opt.calib_counts = &calib;

  const auto full = eval::evaluate_daop_accuracy(fm, data::c4(),
                                                 core::DaopConfig{}, 1.0, opt);
  const auto half = eval::evaluate_daop_accuracy(fm, data::c4(),
                                                 core::DaopConfig{}, 0.5, opt);
  const auto quarter = eval::evaluate_daop_accuracy(
      fm, data::c4(), core::DaopConfig{}, 0.25, opt);

  EXPECT_DOUBLE_EQ(full.token_agreement, 1.0);
  EXPECT_GE(half.token_agreement, quarter.token_agreement - 0.03);
  EXPECT_GT(quarter.token_agreement, 0.6);  // still "minimal impact"
}

// Table I shape: the calibrated cost model's headline ratios.
TEST(PaperShape, TableIRatiosHold) {
  const model::OpCosts costs(model::mixtral_8x7b(),
                             sim::CostModel(sim::a100_xeon_platform()));
  EXPECT_GT(costs.expert_migration(), 25.0 * costs.full_block_gpu(256));
  EXPECT_GT(costs.full_block_cpu(256), 5.0 * costs.full_block_gpu(256));
  EXPECT_LT(costs.activations_h2d(1), 0.001 * costs.expert_migration());
}

}  // namespace
}  // namespace daop
