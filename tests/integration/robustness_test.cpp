// Robustness-plane integration tests: seed stability of hazard runs, the
// strict no-op contract of a disabled fault plane, engine behaviour on
// degenerate inputs under hazards, the graceful-degradation policies
// (deadline aborts, stale pre-calc discards), serving timeout/SLO
// accounting, and DaopConfig construction-time validation.
#include <gtest/gtest.h>

#include <cmath>

#include "../testing/helpers.hpp"
#include "common/check.hpp"
#include "core/daop_engine.hpp"
#include "data/trace_generator.hpp"
#include "eval/serving.hpp"
#include "eval/speed.hpp"
#include "sim/fault_model.hpp"

namespace daop {
namespace {

using daop::testing::fixed_trace;
using daop::testing::prefix_placement;
using daop::testing::small_mixtral;

void expect_same_result(const engines::RunResult& a,
                        const engines::RunResult& b, const char* what) {
  EXPECT_EQ(a.engine, b.engine) << what;
  EXPECT_EQ(a.generated_tokens, b.generated_tokens) << what;
  EXPECT_EQ(a.prefill_s, b.prefill_s) << what;
  EXPECT_EQ(a.decode_s, b.decode_s) << what;
  EXPECT_EQ(a.total_s, b.total_s) << what;
  EXPECT_EQ(a.tokens_per_s, b.tokens_per_s) << what;
  EXPECT_EQ(a.tokens_per_kj, b.tokens_per_kj) << what;
  EXPECT_EQ(a.counters.expert_migrations, b.counters.expert_migrations)
      << what;
  EXPECT_EQ(a.counters.migration_retries, b.counters.migration_retries)
      << what;
  EXPECT_EQ(a.counters.migration_aborts, b.counters.migration_aborts) << what;
  EXPECT_EQ(a.counters.stale_precalcs, b.counters.stale_precalcs) << what;
  EXPECT_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s) << what;
  EXPECT_EQ(a.counters.degradations, b.counters.degradations) << what;
  EXPECT_EQ(a.counters.cache_hits, b.counters.cache_hits) << what;
}

class Robustness : public ::testing::Test {
 protected:
  Robustness()
      : cfg_(small_mixtral()),
        platform_(sim::a6000_i9_platform()),
        cm_(platform_),
        costs_(cfg_, cm_) {}

  model::ModelConfig cfg_;
  sim::PlatformSpec platform_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

// ---- Satellite 3: seed stability with hazards on and off ----

TEST_F(Robustness, SpeedEvalIsSeedStableWithHazardsOnAndOff) {
  for (const char* kind : {"none", "all"}) {
    eval::SpeedEvalOptions opt;
    opt.n_seqs = 2;
    opt.prompt_len = 16;
    opt.gen_len = 12;
    opt.seed = 77;
    opt.hazards = sim::make_hazard_scenario(kind, 0.8);
    for (auto engine : eval::extended_baseline_engines()) {
      const auto a =
          eval::run_speed_eval(engine, cfg_, platform_, data::c4(), opt);
      const auto b =
          eval::run_speed_eval(engine, cfg_, platform_, data::c4(), opt);
      expect_same_result(a, b, kind);
    }
  }
}

TEST_F(Robustness, ServingEvalIsSeedStableWithHazardsOnAndOff) {
  for (const char* kind : {"none", "all"}) {
    eval::ServingOptions opt;
    opt.n_requests = 6;
    opt.arrival_rate_rps = 0.1;
    opt.min_prompt = 8;
    opt.max_prompt = 24;
    opt.min_gen = 4;
    opt.max_gen = 16;
    opt.seed = 31;
    opt.hazards = sim::make_hazard_scenario(kind, 0.8);
    opt.request_timeout_s = 30.0;
    opt.max_request_retries = 1;
    const auto a = eval::run_serving_eval(eval::EngineKind::Daop, cfg_,
                                          platform_, data::c4(), opt);
    const auto b = eval::run_serving_eval(eval::EngineKind::Daop, cfg_,
                                          platform_, data::c4(), opt);
    EXPECT_EQ(a.throughput_tps, b.throughput_tps) << kind;
    EXPECT_EQ(a.makespan_s, b.makespan_s) << kind;
    EXPECT_EQ(a.served, b.served) << kind;
    EXPECT_EQ(a.dropped, b.dropped) << kind;
    EXPECT_EQ(a.request_retries, b.request_retries) << kind;
    EXPECT_EQ(a.slo_violations, b.slo_violations) << kind;
    EXPECT_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s) << kind;
    EXPECT_EQ(a.latency_s.mean, b.latency_s.mean) << kind;
  }
}

// ---- Strict no-op: a disabled fault plane changes nothing ----

TEST_F(Robustness, DisabledFaultModelIsBitIdenticalToNoFaultModel) {
  const data::TraceGenerator gen(data::c4(), cfg_.n_layers, cfg_.n_experts,
                                 cfg_.top_k, 5);
  const auto tr = gen.generate(0, 24, 16);
  const auto placement = prefix_placement(cfg_, 4);
  sim::FaultModel disabled(sim::HazardScenario{}, 99);
  ASSERT_FALSE(disabled.enabled());
  for (auto kind : eval::extended_baseline_engines()) {
    auto plain = eval::make_engine(kind, costs_);
    auto faulty = eval::make_engine(kind, costs_);
    faulty->set_fault_model(&disabled);
    expect_same_result(plain->run(tr, placement), faulty->run(tr, placement),
                       plain->name().c_str());
  }
}

// ---- Satellite 4: degenerate inputs under active hazards ----

TEST_F(Robustness, ZeroGenerationUnderHazards) {
  const auto tr = fixed_trace(cfg_, 4, 0, {0, 1});
  const auto placement = prefix_placement(cfg_, 4);
  sim::FaultModel fault(sim::make_hazard_scenario("all", 1.0), 7);
  for (auto kind : eval::extended_baseline_engines()) {
    auto engine = eval::make_engine(kind, costs_);
    engine->set_fault_model(&fault);
    const auto r = engine->run(tr, placement);
    EXPECT_EQ(r.generated_tokens, 0) << engine->name();
    EXPECT_TRUE(std::isfinite(r.total_s)) << engine->name();
    EXPECT_GT(r.prefill_s, 0.0) << engine->name();
    EXPECT_GE(r.counters.hazard_stall_s, 0.0) << engine->name();
  }
}

TEST_F(Robustness, SingleLayerModelUnderHazards) {
  const model::ModelConfig cfg = small_mixtral(1);
  const model::OpCosts costs(cfg, cm_);
  const data::TraceGenerator gen(data::c4(), 1, cfg.n_experts, cfg.top_k, 4);
  const auto tr = gen.generate(0, 6, 6);
  const auto placement = prefix_placement(cfg, 4);
  sim::FaultModel fault(sim::make_hazard_scenario("all", 1.0), 11);
  for (auto kind : eval::extended_baseline_engines()) {
    auto engine = eval::make_engine(kind, costs);
    engine->set_fault_model(&fault);
    const auto r = engine->run(tr, placement);
    EXPECT_GT(r.tokens_per_s, 0.0) << engine->name();
    EXPECT_TRUE(std::isfinite(r.tokens_per_s)) << engine->name();
    EXPECT_TRUE(std::isfinite(r.tokens_per_kj)) << engine->name();
  }
}

TEST_F(Robustness, AllExpertsOnCpuUnderHazards) {
  const auto tr = fixed_trace(cfg_, 4, 6, {0, 1});
  const cache::Placement placement(cfg_.n_layers, cfg_.n_experts);  // ECR 0
  sim::FaultModel fault(sim::make_hazard_scenario("all", 1.0), 13);
  for (auto kind : eval::extended_baseline_engines()) {
    auto engine = eval::make_engine(kind, costs_);
    engine->set_fault_model(&fault);
    const auto r = engine->run(tr, placement);
    EXPECT_GT(r.total_s, 0.0) << engine->name();
    EXPECT_TRUE(std::isfinite(r.total_s)) << engine->name();
    EXPECT_TRUE(std::isfinite(r.tokens_per_s)) << engine->name();
  }
}

// ---- Tentpole: graceful-degradation policies fire under hazards ----

TEST_F(Robustness, DeadlineAndRetryPolicyAbortsMigrationsUnderLoadFailures) {
  const data::TraceGenerator gen(data::c4(), cfg_.n_layers, cfg_.n_experts,
                                 cfg_.top_k, 21);
  const auto tr = gen.generate(0, 48, 24);
  const auto placement = prefix_placement(cfg_, 2);  // tight cache: swaps

  sim::HazardScenario s;
  s.expert_load_fail_prob = 0.9;
  sim::FaultModel fault(s, 3);

  core::DaopConfig dc;
  dc.migration_deadline_factor = 1.5;
  dc.max_migration_retries = 1;
  core::DaopEngine engine(costs_, dc);
  engine.set_fault_model(&fault);
  const auto r = engine.run(tr, placement);
  EXPECT_GT(r.counters.migration_retries, 0);
  EXPECT_GT(r.counters.migration_aborts, 0);
  EXPECT_TRUE(std::isfinite(r.total_s));

  // Without the fault model there are no transient failures to retry, and
  // with the deadline disabled nothing can abort.
  core::DaopConfig calm_dc;
  calm_dc.migration_deadline_factor = 0.0;
  core::DaopEngine calm(costs_, calm_dc);
  const auto rc = calm.run(tr, placement);
  EXPECT_EQ(rc.counters.migration_retries, 0);
  EXPECT_EQ(rc.counters.migration_aborts, 0);
}

TEST_F(Robustness, StalePrecalcPolicyDiscardsLateResults) {
  const data::TraceGenerator gen(data::c4(), cfg_.n_layers, cfg_.n_experts,
                                 cfg_.top_k, 22);
  const auto tr = gen.generate(0, 32, 32);
  const auto placement = prefix_placement(cfg_, 4);

  core::DaopConfig dc;
  dc.min_predict_layer = 1;        // 4-layer test model: pre-calc everywhere
  dc.stale_precalc_factor = 0.01;  // nearly everything counts as stale
  core::DaopEngine engine(costs_, dc);
  const auto r = engine.run(tr, placement);
  EXPECT_GT(r.counters.stale_precalcs, 0);
  // Each discarded pre-calc is re-run as a degraded GPU substitution.
  EXPECT_GE(r.counters.degradations, r.counters.stale_precalcs);
  EXPECT_TRUE(std::isfinite(r.tokens_per_s));
}

// ---- Serving timeouts, retries, SLO accounting ----

TEST_F(Robustness, ServingTimeoutsDropAndRetryDeterministically) {
  eval::ServingOptions opt;
  opt.n_requests = 10;
  opt.arrival_rate_rps = 50.0;  // slam the queue so waits explode
  opt.min_prompt = 32;
  opt.max_prompt = 64;
  opt.min_gen = 16;
  opt.max_gen = 32;
  opt.seed = 41;
  opt.request_timeout_s = 0.5;
  opt.max_request_retries = 1;
  opt.retry_backoff_s = 0.1;
  const auto r = eval::run_serving_eval(eval::EngineKind::MoEOnDemand, cfg_,
                                        platform_, data::c4(), opt);
  EXPECT_EQ(r.served + r.dropped, opt.n_requests);
  EXPECT_GT(r.dropped, 0);
  EXPECT_GT(r.request_retries, 0);
  // Dropped requests always count against the SLO.
  EXPECT_GE(r.slo_violations, r.dropped);
  EXPECT_NEAR(r.slo_violation_rate,
              static_cast<double>(r.slo_violations) / opt.n_requests, 1e-12);
}

TEST_F(Robustness, ServingSloThresholdsCountViolations) {
  eval::ServingOptions opt;
  opt.n_requests = 8;
  opt.arrival_rate_rps = 0.5;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 8;
  opt.max_gen = 16;
  opt.seed = 43;
  opt.slo_ttft_s = 1e-6;  // impossible SLO: every served request violates
  const auto r = eval::run_serving_eval(eval::EngineKind::Daop, cfg_,
                                        platform_, data::c4(), opt);
  EXPECT_EQ(r.served, opt.n_requests);
  EXPECT_EQ(r.slo_violations, opt.n_requests);
  EXPECT_EQ(r.slo_violation_rate, 1.0);
}

// ---- Satellite 1: DaopConfig validation at construction ----

TEST_F(Robustness, ConfigValidationRejectsBadValues) {
  {
    core::DaopConfig dc;
    dc.swap_in_out = 0.5;  // would swap in less than it swaps out
    EXPECT_THROW(core::DaopEngine(costs_, dc), CheckError);
  }
  {
    core::DaopConfig dc;
    dc.min_predict_layer = -1;
    EXPECT_THROW(core::DaopEngine(costs_, dc), CheckError);
  }
  {
    core::DaopConfig dc;
    dc.cpu_quant_bits = 3;  // only {0, 2, 4, 8} are implemented
    EXPECT_THROW(core::DaopEngine(costs_, dc), CheckError);
  }
  {
    core::DaopConfig dc;
    dc.migration_deadline_factor = -1.0;
    EXPECT_THROW(core::DaopEngine(costs_, dc), CheckError);
  }
  {
    core::DaopConfig dc;
    dc.max_migration_retries = -2;
    EXPECT_THROW(core::DaopEngine(costs_, dc), CheckError);
  }
  {
    core::DaopConfig dc;
    dc.stale_precalc_factor = -0.5;
    EXPECT_THROW(core::DaopEngine(costs_, dc), CheckError);
  }
  core::validate_config(core::DaopConfig{});  // defaults are valid
}

}  // namespace
}  // namespace daop
