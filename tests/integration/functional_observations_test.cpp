// Cross-plane validation: the paper's observations ②/③ are statements
// about REAL model routing. The synthetic trace generator is calibrated to
// them, but the functional model must exhibit the same phenomena natively —
// gathered here from actual gate evaluations on real hidden states.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/gate_bias.hpp"
#include "eval/similarity.hpp"
#include "model/functional_model.hpp"
#include "tensor/ops.hpp"

namespace daop {
namespace {

class FunctionalObservations : public ::testing::Test {
 protected:
  FunctionalObservations() : model_(model::tiny_mixtral(), 23) {}

  model::FunctionalModel model_;
};

// Observation ②: prefill and decode activation matrices of one sequence are
// highly similar — measured on the functional model's own routing.
TEST_F(FunctionalObservations, PrefillDecodeSimilarityIsHigh) {
  const auto& cfg = model_.config();
  const int prompt_len = 32;
  const int gen_len = 32;
  double total = 0.0;
  const int n_seqs = 6;
  for (int s = 0; s < n_seqs; ++s) {
    const auto prompt = data::make_prompt(cfg.vocab_size, prompt_len, 77, s);
    const auto bias =
        data::make_gate_bias(data::c4(), cfg.n_layers, cfg.n_experts, 77, s,
                             prompt_len, prompt_len + gen_len + 1);
    std::vector<std::vector<double>> prefill(
        static_cast<std::size_t>(cfg.n_layers),
        std::vector<double>(static_cast<std::size_t>(cfg.n_experts), 0.0));
    auto decode = prefill;
    const model::RouteObserver obs =
        [&](int layer, int, bool is_prefill, std::span<const float>,
            const model::RouteDecision& d) {
          auto& m = is_prefill ? prefill : decode;
          for (int e : d.experts) {
            m[static_cast<std::size_t>(layer)][static_cast<std::size_t>(e)] += 1.0;
          }
        };
    model::OfficialDecoder(model_).generate(prompt, gen_len, bias, obs);
    total += eval::matrix_similarity(prefill, decode);
  }
  // The tiny model's real router under C4-like conditioning reproduces the
  // high-similarity regime (paper: ~90% at 46B scale).
  EXPECT_GT(total / n_seqs, 0.80);
}

// Observation ③: applying layer l+1's gate to layer l's hidden state
// predicts layer l+1's expert selection far above chance — the residual
// stream carries the signal, with no calibration knob involved.
TEST_F(FunctionalObservations, GateAheadPredictionBeatsChance) {
  const auto& cfg = model_.config();
  const int prompt_len = 16;
  const int total_pos = 48;

  long long correct = 0;
  long long total = 0;
  for (int s = 0; s < 4; ++s) {
    const auto prompt = data::make_prompt(cfg.vocab_size, prompt_len, 91, s);
    const auto bias = data::make_gate_bias(data::c4(), cfg.n_layers,
                                           cfg.n_experts, 91, s, prompt_len,
                                           total_pos + 1);
    model::KvCache kv(cfg, total_pos + 1);
    std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
    std::vector<float> h(static_cast<std::size_t>(cfg.d_model));
    std::vector<float> logits(static_cast<std::size_t>(cfg.n_experts));
    std::vector<float> vlogits(static_cast<std::size_t>(cfg.vocab_size));

    int token = prompt[0];
    for (int pos = 0; pos < total_pos; ++pos) {
      model_.embed(token, x);
      std::vector<std::vector<int>> predicted(
          static_cast<std::size_t>(cfg.n_layers));
      for (int l = 0; l < cfg.n_layers; ++l) {
        model_.attention_block(l, x, kv, pos);
        model_.ffn_input(l, x, h);

        // Gate-ahead prediction for the next layer from THIS hidden state.
        if (l + 1 < cfg.n_layers) {
          model_.gate(l + 1, h, logits);
          if (bias) bias(l + 1, pos, logits);
          predicted[static_cast<std::size_t>(l + 1)] =
              topk_indices(logits, cfg.top_k);
        }

        // True selection for this layer.
        model_.gate(l, h, logits);
        if (bias) bias(l, pos, logits);
        const auto truth = topk_indices(logits, cfg.top_k);
        if (pos >= prompt_len && l >= 1) {
          for (int e : truth) {
            ++total;
            const auto& pred = predicted[static_cast<std::size_t>(l)];
            if (std::find(pred.begin(), pred.end(), e) != pred.end()) {
              ++correct;
            }
          }
        }

        // Execute the layer exactly to keep the stream honest.
        std::vector<float> out(static_cast<std::size_t>(cfg.d_model));
        std::vector<float> w(truth.size());
        softmax_subset(logits, truth, w);
        for (std::size_t i = 0; i < truth.size(); ++i) {
          model_.expert_forward(l, truth[i], h, out);
          axpy_inplace(x, w[i], out);
        }
      }
      kv.advance();
      model_.lm_logits(x, vlogits);
      token = pos + 1 < prompt_len ? prompt[static_cast<std::size_t>(pos + 1)]
                                   : argmax(vlogits);
    }
  }
  const double accuracy = static_cast<double>(correct) / total;
  // Chance for top-2 of 8 is 0.25; the residual stream must do much better.
  EXPECT_GT(accuracy, 0.55);
  EXPECT_LE(accuracy, 1.0);
}

// NOTE: predicted[l] is filled at layer l-1 of the SAME position loop before
// layer l reads it — the two-layer pipeline the paper exploits.

}  // namespace
}  // namespace daop
