// Statistical contracts of the workload presets: these pin the calibration
// against the paper's published routing statistics, so a preset change that
// silently breaks an observation fails here rather than in a bench.
#include <gtest/gtest.h>

#include "data/trace_generator.hpp"
#include "data/workload.hpp"
#include "eval/similarity.hpp"
#include "model/config.hpp"

namespace daop::data {
namespace {

constexpr int kSeqs = 48;  // enough for +-1.5% precision at test speed

model::ModelConfig cfg() { return model::mixtral_8x7b(); }

TraceGenerator gen_for(const WorkloadSpec& spec, std::uint64_t seed = 99) {
  const auto c = cfg();
  return TraceGenerator(spec, c.n_layers, c.n_experts, c.top_k, seed);
}

// Observation ② / Table II: prefill-decode similarity ~90% (87..94 here).
class SimilarityBand : public ::testing::TestWithParam<WorkloadSpec> {};

TEST_P(SimilarityBand, Near90Percent) {
  const double sim =
      eval::avg_prefill_decode_similarity(gen_for(GetParam()), kSeqs);
  EXPECT_GT(sim, 0.87) << GetParam().name;
  EXPECT_LT(sim, 0.95) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, SimilarityBand,
    ::testing::Values(c4(), math_ds(), gsm8k(), triviaqa(), alpaca()),
    [](const ::testing::TestParamInfo<WorkloadSpec>& info) {
      std::string n = info.param.name;
      for (auto& ch : n) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return n;
    });

// Observation ③ / Fig. 5: average one-layer-ahead prediction accuracy ~84%,
// with early layers notably weaker.
TEST(WorkloadStats, PredictionAccuracyMatchesFig5) {
  for (const auto& spec : {alpaca(), math_ds(), c4()}) {
    const auto acc = eval::prediction_accuracy_by_layer(gen_for(spec), kSeqs);
    const double avg = eval::avg_prediction_accuracy(gen_for(spec), kSeqs);
    EXPECT_GT(avg, 0.78) << spec.name;
    EXPECT_LT(avg, 0.90) << spec.name;
    // Early layers below the stable region (paper starts predicting at 4).
    const double early = (acc[1] + acc[2] + acc[3]) / 3.0;
    const double late = (acc[10] + acc[20] + acc[30]) / 3.0;
    EXPECT_LT(early + 0.05, late) << spec.name;
    EXPECT_GT(late, 0.80) << spec.name;
  }
}

// Observation ① / Fig. 4: dataset-level marginals near uniform.
TEST(WorkloadStats, MarginalActivationNearUniform) {
  const auto marg = eval::marginal_activation(gen_for(c4()), kSeqs);
  const double uniform = 1.0 / cfg().n_experts;
  for (const auto& layer : marg) {
    for (double p : layer) {
      EXPECT_GT(p, uniform * 0.55);
      EXPECT_LT(p, uniform * 1.6);
    }
  }
}

// Observation ①: individual sequences ARE skewed even though the dataset
// marginal is flat.
TEST(WorkloadStats, SequencesAreIndividuallySkewed) {
  const auto gen = gen_for(c4());
  double ratio_sum = 0.0;
  for (int s = 0; s < 16; ++s) {
    const auto counts = gen.generate(s).activation_counts(Phase::Decode);
    for (const auto& layer : counts) {
      const double mx = *std::max_element(layer.begin(), layer.end());
      const double mn =
          std::max(1.0, *std::min_element(layer.begin(), layer.end()));
      ratio_sum += mx / mn;
    }
  }
  // Per-layer max/min activation within one sequence is far from 1.
  EXPECT_GT(ratio_sum / (16.0 * cfg().n_layers), 2.0);
}

// §VI-B: GSM8K's windowed decode similarity sits measurably below the
// stable datasets' (paper: 3.43% below TriviaQA).
TEST(WorkloadStats, Gsm8kDriftsMoreThanStableDatasets) {
  const double gsm =
      eval::avg_decode_window_similarity(gen_for(gsm8k()), kSeqs, 15);
  const double trivia =
      eval::avg_decode_window_similarity(gen_for(triviaqa()), kSeqs, 15);
  EXPECT_LT(gsm + 0.02, trivia);
  EXPECT_GT(trivia - gsm, 0.02);
  EXPECT_LT(trivia - gsm, 0.09);
}

TEST(WorkloadStats, AllEvalWorkloadsListed) {
  const auto all = all_eval_workloads();
  EXPECT_EQ(all.size(), 7U);
  for (const auto& w : all) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_GT(w.prompt_len, 0);
    EXPECT_GT(w.gen_len, 0);
  }
}

TEST(WorkloadStats, CalibrationSetIsDistinctFromEvalSets) {
  const auto cal = sharegpt_calibration();
  for (const auto& w : all_eval_workloads()) {
    EXPECT_NE(w.name, cal.name);
  }
}

}  // namespace
}  // namespace daop::data
