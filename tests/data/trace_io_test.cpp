#include "data/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/check.hpp"
#include "data/trace_generator.hpp"

namespace daop::data {
namespace {

SequenceTrace sample_trace() {
  const TraceGenerator gen(c4(), 4, 8, 2, 123);
  return gen.generate(1, 5, 7);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const SequenceTrace original = sample_trace();
  std::stringstream ss;
  save_trace(original, ss);
  const SequenceTrace loaded = load_trace(ss);

  EXPECT_EQ(loaded.n_layers(), original.n_layers());
  EXPECT_EQ(loaded.n_experts, original.n_experts);
  EXPECT_EQ(loaded.top_k, original.top_k);
  EXPECT_EQ(loaded.prompt_len, original.prompt_len);
  EXPECT_EQ(loaded.gen_len, original.gen_len);
  for (int l = 0; l < original.n_layers(); ++l) {
    for (int t = 0; t < original.prompt_len; ++t) {
      EXPECT_EQ(loaded.at(Phase::Prefill, l, t).scores,
                original.at(Phase::Prefill, l, t).scores);
    }
    for (int t = 0; t < original.gen_len; ++t) {
      EXPECT_EQ(loaded.at(Phase::Decode, l, t).scores,
                original.at(Phase::Decode, l, t).scores);
      EXPECT_EQ(loaded.at(Phase::Decode, l, t).pred_scores,
                original.at(Phase::Decode, l, t).pred_scores);
    }
  }
}

TEST(TraceIo, RoundTripPreservesEngineDecisions) {
  const SequenceTrace original = sample_trace();
  std::stringstream ss;
  save_trace(original, ss);
  const SequenceTrace loaded = load_trace(ss);
  // The quantities engines consume must survive the float round-trip.
  EXPECT_EQ(loaded.selected(Phase::Decode, 2, 3),
            original.selected(Phase::Decode, 2, 3));
  EXPECT_EQ(loaded.predicted(3, 1), original.predicted(3, 1));
  EXPECT_EQ(loaded.activation_counts(Phase::Prefill),
            original.activation_counts(Phase::Prefill));
}

TEST(TraceIo, ZeroGenLenRoundTrips) {
  const TraceGenerator gen(c4(), 3, 4, 2, 5);
  const SequenceTrace original = gen.generate(0, 4, 0);
  std::stringstream ss;
  save_trace(original, ss);
  const SequenceTrace loaded = load_trace(ss);
  EXPECT_EQ(loaded.gen_len, 0);
  EXPECT_EQ(loaded.prompt_len, 4);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const SequenceTrace original = sample_trace();
  std::stringstream ss;
  save_trace(original, ss);
  std::string text = ss.str();
  const auto pos = text.find('\n');
  text.insert(pos + 1, "# a comment\n\n");
  std::stringstream in(text);
  EXPECT_EQ(load_trace(in).prompt_len, original.prompt_len);
}

TEST(TraceIo, RejectsMissingMagic) {
  std::stringstream in("header 2 4 2 1 1\n");
  EXPECT_THROW(load_trace(in), CheckError);
}

TEST(TraceIo, RejectsMissingCells) {
  std::stringstream in(
      "daop-trace v1\n"
      "header 1 2 1 2 0\n"
      "P 0 0 1.0 2.0\n");  // P 0 1 missing
  EXPECT_THROW(load_trace(in), CheckError);
}

TEST(TraceIo, RejectsDuplicateCells) {
  std::stringstream in(
      "daop-trace v1\n"
      "header 1 2 1 1 0\n"
      "P 0 0 1.0 2.0\n"
      "P 0 0 1.0 2.0\n");
  EXPECT_THROW(load_trace(in), CheckError);
}

TEST(TraceIo, RejectsOutOfRangeIndices) {
  std::stringstream in(
      "daop-trace v1\n"
      "header 1 2 1 1 0\n"
      "P 5 0 1.0 2.0\n");
  EXPECT_THROW(load_trace(in), CheckError);
}

TEST(TraceIo, RejectsTruncatedScores) {
  std::stringstream in(
      "daop-trace v1\n"
      "header 1 4 2 1 0\n"
      "P 0 0 1.0 2.0\n");  // needs 4 scores
  EXPECT_THROW(load_trace(in), CheckError);
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream in(
      "daop-trace v1\n"
      "header 0 4 2 1 0\n");
  EXPECT_THROW(load_trace(in), CheckError);
  std::stringstream in2(
      "daop-trace v1\n"
      "header 1 4 5 1 0\n");  // top_k > experts
  EXPECT_THROW(load_trace(in2), CheckError);
}

// Round-trip property sweep across trace shapes (including degenerate ones).
class TraceIoRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(TraceIoRoundTrip, Exact) {
  const auto [layers, experts, topk, prompt, gen] = GetParam();
  WorkloadSpec spec = gsm8k();  // exercises drift + predictions
  const TraceGenerator g(spec, layers, experts, topk, 777);
  const SequenceTrace original = g.generate(2, prompt, gen);
  std::stringstream ss;
  save_trace(original, ss);
  const SequenceTrace loaded = load_trace(ss);
  for (int l = 0; l < layers; ++l) {
    for (int t = 0; t < prompt; ++t) {
      ASSERT_EQ(loaded.at(Phase::Prefill, l, t).scores,
                original.at(Phase::Prefill, l, t).scores);
    }
    for (int t = 0; t < gen; ++t) {
      ASSERT_EQ(loaded.at(Phase::Decode, l, t).scores,
                original.at(Phase::Decode, l, t).scores);
      ASSERT_EQ(loaded.at(Phase::Decode, l, t).pred_scores,
                original.at(Phase::Decode, l, t).pred_scores);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TraceIoRoundTrip,
    ::testing::Values(std::make_tuple(1, 2, 1, 1, 0),
                      std::make_tuple(2, 4, 2, 3, 1),
                      std::make_tuple(8, 8, 2, 16, 16),
                      std::make_tuple(4, 16, 2, 7, 9),
                      std::make_tuple(3, 3, 3, 2, 5)));

TEST(TraceIo, FileRoundTrip) {
  const SequenceTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "daop_trace_io_test.trace";
  save_trace_file(original, path);
  const SequenceTrace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.gen_len, original.gen_len);
  std::remove(path.c_str());
  EXPECT_THROW(load_trace_file("/nonexistent-dir-xyz/x.trace"), CheckError);
}

}  // namespace
}  // namespace daop::data
