#include "data/trace_generator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace daop::data {
namespace {

TraceGenerator make_gen(std::uint64_t seed = 7) {
  return TraceGenerator(c4(), /*n_layers=*/8, /*n_experts=*/8, /*top_k=*/2,
                        seed);
}

TEST(TraceGenerator, ShapeMatchesRequest) {
  const auto tr = make_gen().generate(0, 12, 20);
  EXPECT_EQ(tr.n_layers(), 8);
  EXPECT_EQ(tr.prompt_len, 12);
  EXPECT_EQ(tr.gen_len, 20);
  ASSERT_EQ(tr.prefill.size(), 8U);
  ASSERT_EQ(tr.decode.size(), 8U);
  for (const auto& lt : tr.prefill) EXPECT_EQ(lt.tokens.size(), 12U);
  for (const auto& lt : tr.decode) EXPECT_EQ(lt.tokens.size(), 20U);
  EXPECT_EQ(tr.at(Phase::Decode, 3, 5).scores.size(), 8U);
}

TEST(TraceGenerator, DeterministicPerSequenceIndex) {
  const auto a = make_gen().generate(4);
  const auto b = make_gen().generate(4);
  EXPECT_EQ(a.at(Phase::Decode, 2, 7).scores, b.at(Phase::Decode, 2, 7).scores);
  EXPECT_EQ(a.at(Phase::Prefill, 5, 3).scores,
            b.at(Phase::Prefill, 5, 3).scores);
}

TEST(TraceGenerator, DifferentSequencesDiffer) {
  const auto gen = make_gen();
  const auto a = gen.generate(0);
  const auto b = gen.generate(1);
  EXPECT_NE(a.at(Phase::Decode, 0, 0).scores, b.at(Phase::Decode, 0, 0).scores);
}

TEST(TraceGenerator, PredictionsOnlyForLayersAboveZero) {
  const auto tr = make_gen().generate(0, 4, 6);
  for (int t = 0; t < 6; ++t) {
    EXPECT_TRUE(tr.at(Phase::Decode, 0, t).pred_scores.empty());
    for (int l = 1; l < 8; ++l) {
      EXPECT_EQ(tr.at(Phase::Decode, l, t).pred_scores.size(), 8U);
    }
  }
  EXPECT_TRUE(tr.predicted(0, 0).empty());
  EXPECT_EQ(tr.predicted(3, 0).size(), 2U);
}

TEST(TraceGenerator, PrefillHasNoPredictions) {
  const auto tr = make_gen().generate(0, 4, 4);
  for (int l = 0; l < 8; ++l) {
    for (int t = 0; t < 4; ++t) {
      EXPECT_TRUE(tr.at(Phase::Prefill, l, t).pred_scores.empty());
    }
  }
}

TEST(TraceGenerator, SelectedReturnsTopKDescending) {
  const auto tr = make_gen().generate(2, 4, 4);
  const auto& scores = tr.at(Phase::Decode, 1, 1).scores;
  const auto sel = tr.selected(Phase::Decode, 1, 1);
  ASSERT_EQ(sel.size(), 2U);
  EXPECT_GE(scores[static_cast<std::size_t>(sel[0])],
            scores[static_cast<std::size_t>(sel[1])]);
  for (std::size_t e = 0; e < scores.size(); ++e) {
    if (static_cast<int>(e) != sel[0] && static_cast<int>(e) != sel[1]) {
      EXPECT_LE(scores[e], scores[static_cast<std::size_t>(sel[0])]);
    }
  }
}

TEST(TraceGenerator, ActivationCountsSumToTopKTimesTokens) {
  const auto tr = make_gen().generate(0, 10, 14);
  const auto pc = tr.activation_counts(Phase::Prefill);
  const auto dc = tr.activation_counts(Phase::Decode);
  for (const auto& layer : pc) {
    double sum = 0.0;
    for (double v : layer) sum += v;
    EXPECT_DOUBLE_EQ(sum, 2.0 * 10);
  }
  for (const auto& layer : dc) {
    double sum = 0.0;
    for (double v : layer) sum += v;
    EXPECT_DOUBLE_EQ(sum, 2.0 * 14);
  }
}

TEST(TraceGenerator, DecodeWindowCountsRespectBounds) {
  const auto tr = make_gen().generate(0, 4, 10);
  const auto w = tr.decode_window_counts(5, 100);  // clamped to gen_len
  double sum = 0.0;
  for (const auto& layer : w) {
    for (double v : layer) sum += v;
  }
  EXPECT_DOUBLE_EQ(sum, 8.0 * 2.0 * 5);  // layers x top_k x 5 tokens
  EXPECT_THROW(tr.decode_window_counts(5, 2), CheckError);
}

TEST(TraceGenerator, ZeroGenLenSupported) {
  const auto tr = make_gen().generate(0, 4, 0);
  EXPECT_EQ(tr.gen_len, 0);
  const auto dc = tr.activation_counts(Phase::Decode);
  for (const auto& layer : dc) {
    for (double v : layer) EXPECT_EQ(v, 0.0);
  }
}

TEST(TraceGenerator, RejectsBadConstruction) {
  EXPECT_THROW(TraceGenerator(c4(), 0, 8, 2, 1), CheckError);
  EXPECT_THROW(TraceGenerator(c4(), 8, 8, 9, 1), CheckError);
  WorkloadSpec bad = c4();
  bad.layer_rho = 1.0;
  EXPECT_THROW(TraceGenerator(bad, 8, 8, 2, 1), CheckError);
}

TEST(TraceGenerator, OutOfRangeAccessChecked) {
  const auto tr = make_gen().generate(0, 4, 4);
  EXPECT_THROW(tr.at(Phase::Decode, 8, 0), CheckError);
  EXPECT_THROW(tr.at(Phase::Decode, 0, 4), CheckError);
  EXPECT_THROW(tr.at(Phase::Prefill, 0, 4), CheckError);
}

}  // namespace
}  // namespace daop::data
