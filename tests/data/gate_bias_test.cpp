#include "data/gate_bias.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "data/workload.hpp"

namespace daop::data {
namespace {

constexpr int kLayers = 8;
constexpr int kExperts = 8;
constexpr int kPrompt = 8;
constexpr int kMaxPos = 24;

model::GateBias make(std::uint64_t seed = 5, int seq = 0) {
  return make_gate_bias(c4(), kLayers, kExperts, seed, seq, kPrompt, kMaxPos);
}

std::vector<float> bias_at(const model::GateBias& b, int layer, int pos) {
  std::vector<float> logits(kExperts, 0.0F);
  b(layer, pos, logits);
  return logits;
}

TEST(GateBias, PureFunctionOfLayerAndPos) {
  const auto b = make();
  // Query out of order; results must not depend on call order.
  const auto v1 = bias_at(b, 3, 10);
  bias_at(b, 0, 0);
  bias_at(b, 7, 23);
  const auto v2 = bias_at(b, 3, 10);
  EXPECT_EQ(v1, v2);
}

TEST(GateBias, DeterministicAcrossConstructions) {
  const auto a = make(5, 2);
  const auto b = make(5, 2);
  EXPECT_EQ(bias_at(a, 4, 12), bias_at(b, 4, 12));
}

TEST(GateBias, SequencesDiffer) {
  const auto a = make(5, 0);
  const auto b = make(5, 1);
  EXPECT_NE(bias_at(a, 0, 0), bias_at(b, 0, 0));
}

TEST(GateBias, AddsRatherThanOverwrites) {
  const auto b = make();
  std::vector<float> logits(kExperts, 1.0F);
  b(0, 0, logits);
  const auto pure = bias_at(b, 0, 0);
  for (int e = 0; e < kExperts; ++e) {
    EXPECT_NEAR(logits[static_cast<std::size_t>(e)],
                1.0F + pure[static_cast<std::size_t>(e)], 1e-6F);
  }
}

TEST(GateBias, PrefillPositionsShareTheLayerField) {
  const auto b = make();
  EXPECT_EQ(bias_at(b, 2, 0), bias_at(b, 2, kPrompt - 1));
}

TEST(GateBias, DecodeDiffersFromPrefill) {
  const auto b = make();
  EXPECT_NE(bias_at(b, 2, 0), bias_at(b, 2, kPrompt));
}

TEST(GateBias, DecodeDriftEvolvesOverPositions) {
  WorkloadSpec drifty = gsm8k();
  const auto b = make_gate_bias(drifty, kLayers, kExperts, 5, 0, kPrompt,
                                kMaxPos);
  EXPECT_NE(bias_at(b, 2, kPrompt), bias_at(b, 2, kMaxPos - 1));
}

TEST(GateBias, BoundsChecked) {
  const auto b = make();
  std::vector<float> logits(kExperts, 0.0F);
  EXPECT_THROW(b(kLayers, 0, logits), CheckError);
  EXPECT_THROW(b(0, kMaxPos, logits), CheckError);
  std::vector<float> wrong(kExperts + 1, 0.0F);
  EXPECT_THROW(b(0, 0, wrong), CheckError);
}

TEST(MakePrompt, DeterministicAndInRange) {
  const auto a = make_prompt(256, 16, 9, 3);
  const auto b = make_prompt(256, 16, 9, 3);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 16U);
  for (int t : a) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 256);
  }
  EXPECT_NE(a, make_prompt(256, 16, 9, 4));
}

}  // namespace
}  // namespace daop::data
