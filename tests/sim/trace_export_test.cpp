#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace daop::sim {
namespace {

TEST(TraceExport, EmptyTimelineIsValidSkeleton) {
  Timeline tl;
  const std::string json = to_chrome_trace_json(tl);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
}

TEST(TraceExport, EmitsOneEventPerInterval) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 0.001, "non-MoE");
  tl.schedule(Res::CpuPool, 0.0, 0.002, "CPU expert");
  tl.schedule(Res::PcieH2D, 0.0, 0.003, "fetch");
  const std::string json = to_chrome_trace_json(tl);
  EXPECT_NE(json.find("\"name\":\"non-MoE\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"CPU expert\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fetch\""), std::string::npos);
  // Microsecond timestamps: the CPU op lasts 2000 us.
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);
  // Three complete events.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++count;
    pos += 8;
  }
  EXPECT_EQ(count, 3U);
}

TEST(TraceExport, EscapesTagCharacters) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 0.001, "op \"quoted\"\\slash");
  const std::string json = to_chrome_trace_json(tl);
  EXPECT_NE(json.find("op \\\"quoted\\\"\\\\slash"), std::string::npos);
}

TEST(TraceExport, UnnamedIntervalsUseResourceName) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::PcieD2H, 0.0, 0.001);
  const std::string json = to_chrome_trace_json(tl);
  EXPECT_NE(json.find("\"name\":\"PCIe D2H\""), std::string::npos);
}

TEST(TraceExport, WritesFile) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 0.001, "x");
  const std::string path = ::testing::TempDir() + "daop_trace_test.json";
  ASSERT_TRUE(write_chrome_trace(tl, path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, to_chrome_trace_json(tl));
  std::remove(path.c_str());
}

TEST(TraceExport, FailsOnUnwritablePath) {
  Timeline tl;
  EXPECT_FALSE(write_chrome_trace(tl, "/nonexistent-dir-xyz/trace.json"));
}

}  // namespace
}  // namespace daop::sim
