#include "sim/timeline.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/check.hpp"

namespace daop::sim {
namespace {

TEST(Timeline, StartsEmpty) {
  Timeline tl;
  EXPECT_EQ(tl.span(), 0.0);
  for (int r = 0; r < kNumRes; ++r) {
    EXPECT_EQ(tl.busy_until(static_cast<Res>(r)), 0.0);
    EXPECT_EQ(tl.busy_time(static_cast<Res>(r)), 0.0);
  }
}

TEST(Timeline, SerializesWorkOnOneResource) {
  Timeline tl;
  const double e1 = tl.schedule(Res::GpuStream, 0.0, 1.0);
  const double e2 = tl.schedule(Res::GpuStream, 0.0, 2.0);  // must queue
  EXPECT_EQ(e1, 1.0);
  EXPECT_EQ(e2, 3.0);
  EXPECT_EQ(tl.busy_time(Res::GpuStream), 3.0);
}

TEST(Timeline, ParallelAcrossResources) {
  Timeline tl;
  const double g = tl.schedule(Res::GpuStream, 0.0, 1.0);
  const double c = tl.schedule(Res::CpuPool, 0.0, 2.0);
  EXPECT_EQ(g, 1.0);
  EXPECT_EQ(c, 2.0);
  EXPECT_EQ(tl.span(), 2.0);
}

TEST(Timeline, RespectsReadyTime) {
  Timeline tl;
  const double end = tl.schedule(Res::CpuPool, 5.0, 1.0);
  EXPECT_EQ(end, 6.0);
  // Busy time counts only the work, not the idle gap.
  EXPECT_EQ(tl.busy_time(Res::CpuPool), 1.0);
}

TEST(Timeline, DependencyChainAcrossResources) {
  Timeline tl;
  const double t1 = tl.schedule(Res::GpuStream, 0.0, 1.0);   // compute
  const double t2 = tl.schedule(Res::PcieD2H, t1, 0.5);      // ship out
  const double t3 = tl.schedule(Res::CpuPool, t2, 2.0);      // CPU work
  const double t4 = tl.schedule(Res::PcieH2D, t3, 0.5);      // ship back
  EXPECT_EQ(t4, 4.0);
  EXPECT_EQ(tl.span(), 4.0);
}

TEST(Timeline, ZeroDurationAdvancesNothing) {
  Timeline tl;
  const double end = tl.schedule(Res::GpuStream, 2.0, 0.0);
  EXPECT_EQ(end, 2.0);
  EXPECT_EQ(tl.busy_time(Res::GpuStream), 0.0);
}

TEST(Timeline, BlockUntilAdvancesAvailabilityWithoutBusy) {
  Timeline tl;
  tl.block_until(Res::GpuStream, 3.0);
  EXPECT_EQ(tl.busy_until(Res::GpuStream), 3.0);
  EXPECT_EQ(tl.busy_time(Res::GpuStream), 0.0);
  const double end = tl.schedule(Res::GpuStream, 0.0, 1.0);
  EXPECT_EQ(end, 4.0);
}

TEST(Timeline, RecordsIntervalsOnlyWhenEnabled) {
  Timeline tl;
  tl.schedule(Res::GpuStream, 0.0, 1.0, "hidden");
  EXPECT_TRUE(tl.intervals().empty());
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 1.0, "visible");
  ASSERT_EQ(tl.intervals().size(), 1U);
  EXPECT_EQ(tl.intervals()[0].tag, "visible");
  EXPECT_EQ(tl.intervals()[0].start, 1.0);
  EXPECT_EQ(tl.intervals()[0].end, 2.0);
}

TEST(Timeline, ResetClearsEverything) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::CpuPool, 0.0, 5.0, "x");
  tl.reset();
  EXPECT_EQ(tl.span(), 0.0);
  EXPECT_EQ(tl.busy_time(Res::CpuPool), 0.0);
  EXPECT_TRUE(tl.intervals().empty());
}

TEST(Timeline, RejectsNegativeInputs) {
  Timeline tl;
  EXPECT_THROW(tl.schedule(Res::GpuStream, -1.0, 1.0), CheckError);
  EXPECT_THROW(tl.schedule(Res::GpuStream, 0.0, -1.0), CheckError);
}

TEST(Timeline, RejectsNonFiniteInputs) {
  Timeline tl;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(tl.schedule(Res::GpuStream, nan, 1.0), CheckError);
  EXPECT_THROW(tl.schedule(Res::GpuStream, 0.0, nan), CheckError);
  EXPECT_THROW(tl.schedule(Res::GpuStream, inf, 1.0), CheckError);
  EXPECT_THROW(tl.schedule(Res::GpuStream, 0.0, inf), CheckError);
}

TEST(Timeline, BlockUntilRejectsBadTimes) {
  Timeline tl;
  EXPECT_THROW(tl.block_until(Res::CpuPool, -1.0), CheckError);
  EXPECT_THROW(
      tl.block_until(Res::CpuPool, std::numeric_limits<double>::quiet_NaN()),
      CheckError);
  EXPECT_THROW(
      tl.block_until(Res::CpuPool, std::numeric_limits<double>::infinity()),
      CheckError);
}

TEST(Timeline, BlockUntilNeverMovesTimeBackwards) {
  Timeline tl;
  tl.block_until(Res::GpuStream, 5.0);
  tl.block_until(Res::GpuStream, 2.0);  // earlier sync point: no-op
  EXPECT_EQ(tl.busy_until(Res::GpuStream), 5.0);
}

TEST(Timeline, IntervalsNeverOverlapPerResource) {
  Timeline tl;
  tl.set_record_intervals(true);
  // Schedule with deliberately overlapping ready times.
  for (int i = 0; i < 50; ++i) {
    tl.schedule(Res::GpuStream, static_cast<double>(i % 3), 0.7);
  }
  double prev_end = 0.0;
  for (const auto& iv : tl.intervals()) {
    EXPECT_GE(iv.start, prev_end);
    prev_end = iv.end;
  }
}

TEST(Gantt, RendersLanesAndLegend) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 0.001, "op-a");
  tl.schedule(Res::CpuPool, 0.0, 0.002, "op-b");
  const std::string g = render_gantt(tl, 0.0, 0.002, 40);
  EXPECT_NE(g.find("GPU"), std::string::npos);
  EXPECT_NE(g.find("CPU"), std::string::npos);
  EXPECT_NE(g.find("op-a"), std::string::npos);
  EXPECT_NE(g.find("op-b"), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);
}

TEST(Gantt, RejectsEmptyWindow) {
  Timeline tl;
  EXPECT_THROW(render_gantt(tl, 1.0, 1.0, 10), CheckError);
}

TEST(TagPool, InternsAndRoundTrips) {
  TagPool pool;
  EXPECT_EQ(pool.intern(""), kNoTag);
  const TagId a = pool.intern("fetch L0 E3");
  const TagId b = pool.intern("attn fwd");
  EXPECT_NE(a, kNoTag);
  EXPECT_NE(b, a);
  EXPECT_EQ(pool.intern("fetch L0 E3"), a);  // dedup: same id back
  EXPECT_EQ(pool.view(a), "fetch L0 E3");
  EXPECT_EQ(pool.view(b), "attn fwd");
  EXPECT_EQ(pool.view(kNoTag), "");
  EXPECT_EQ(pool.size(), 3U);  // "", plus two distinct tags
}

TEST(TagPool, ClearResetsToEmptyStringOnly) {
  TagPool pool;
  pool.intern("x");
  pool.clear();
  EXPECT_EQ(pool.size(), 1U);
  EXPECT_EQ(pool.intern(""), kNoTag);
}

TEST(TimelineSoA, CompatViewMatchesColumns) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 0.5, "a");
  tl.schedule(Res::CpuPool, 0.1, 0.25, "b");
  tl.schedule(Res::PcieH2D, 0.0, 0.75, "a");
  tl.schedule(Res::GpuStream, 0.0, 0.5);  // untagged

  const IntervalSoA& soa = tl.intervals_soa();
  const std::vector<Interval>& compat = tl.intervals();
  ASSERT_EQ(compat.size(), soa.size());
  ASSERT_EQ(tl.interval_count(), soa.size());
  for (std::size_t i = 0; i < soa.size(); ++i) {
    EXPECT_EQ(compat[i].res, soa.res[i]);
    EXPECT_EQ(compat[i].start, soa.start[i]);
    EXPECT_EQ(compat[i].end, soa.end[i]);
    EXPECT_EQ(compat[i].tag, tl.tag_pool().view(soa.tag[i]));
  }
  EXPECT_EQ(compat.back().tag, "");
}

TEST(TimelineSoA, CompatViewRefreshesAfterMoreScheduling) {
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 1.0, "first");
  EXPECT_EQ(tl.intervals().size(), 1U);
  tl.schedule(Res::GpuStream, 0.0, 1.0, "second");
  ASSERT_EQ(tl.intervals().size(), 2U);
  EXPECT_EQ(tl.intervals()[1].tag, "second");
}

TEST(TimelineSoA, PreInternedTagMatchesStringTag) {
  Timeline a;
  Timeline b;
  a.set_record_intervals(true);
  b.set_record_intervals(true);
  const TagId tid = b.intern_tag("op");
  for (int i = 0; i < 100; ++i) {
    const double ea = a.schedule(Res::GpuStream, 0.0, 0.001, "op");
    const double eb = b.schedule(Res::GpuStream, 0.0, 0.001, tid);
    EXPECT_EQ(ea, eb);
  }
  ASSERT_EQ(a.intervals().size(), b.intervals().size());
  for (std::size_t i = 0; i < a.intervals().size(); ++i) {
    EXPECT_EQ(a.intervals()[i].tag, b.intervals()[i].tag);
  }
}

TEST(TimelineSoA, RecordingOffNeverInterns) {
  Timeline tl;
  const std::size_t before = tl.tag_pool().size();
  for (int i = 0; i < 100; ++i) {
    tl.schedule(Res::GpuStream, 0.0, 0.001, "never-interned");
  }
  EXPECT_EQ(tl.tag_pool().size(), before);
  EXPECT_EQ(tl.interval_count(), 0U);
}

TEST(TimelineSoA, ArenaGrowthPreservesOrderPastReserveFloor) {
  Timeline tl;
  tl.set_record_intervals(true);
  const int n = 5000;  // crosses the 1024-interval chunk floor several times
  for (int i = 0; i < n; ++i) {
    tl.schedule(Res::GpuStream, 0.0, 1e-4, i % 2 ? "odd" : "even");
  }
  const auto& ivs = tl.intervals();
  ASSERT_EQ(ivs.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(ivs[static_cast<std::size_t>(i)].tag, i % 2 ? "odd" : "even");
    if (i > 0) {
      EXPECT_GE(ivs[static_cast<std::size_t>(i)].start,
                ivs[static_cast<std::size_t>(i - 1)].end);
    }
  }
}

TEST(TimelineSoA, ResetKeepsTagVocabularyAndClearsIntervals) {
  Timeline tl;
  tl.set_record_intervals(true);
  const TagId tid = tl.intern_tag("sticky");
  tl.schedule(Res::GpuStream, 0.0, 1.0, tid);
  tl.reset();
  EXPECT_EQ(tl.interval_count(), 0U);
  EXPECT_EQ(tl.span(), 0.0);
  EXPECT_EQ(tl.tag_pool().view(tid), "sticky");  // ids stay valid across reset
  tl.set_record_intervals(true);
  tl.schedule(Res::CpuPool, 0.0, 0.5, tid);
  ASSERT_EQ(tl.intervals().size(), 1U);
  EXPECT_EQ(tl.intervals()[0].tag, "sticky");
}

}  // namespace
}  // namespace daop::sim
