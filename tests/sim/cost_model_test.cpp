#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/device.hpp"

namespace daop::sim {
namespace {

TEST(CostModel, ComputeBoundVsMemoryBound) {
  DeviceSpec dev;
  dev.flops_peak = 100.0;  // 100 flop/s
  dev.flops_efficiency = 1.0;
  dev.mem_bw_bytes_per_s = 10.0;  // 10 B/s
  dev.mem_bw_efficiency = 1.0;
  dev.kernel_overhead_s = 0.0;
  PlatformSpec p = a6000_i9_platform();
  const CostModel cm(p);

  // compute-bound: 1000 flops, 1 byte -> 10 s on the toy device
  EXPECT_DOUBLE_EQ(cm.dense_op_time(dev, 1000.0, 1.0), 10.0);
  // memory-bound: 1 flop, 1000 bytes -> 100 s
  EXPECT_DOUBLE_EQ(cm.dense_op_time(dev, 1.0, 1000.0), 100.0);
}

TEST(CostModel, KernelOverheadAdds) {
  PlatformSpec p = a6000_i9_platform();
  const CostModel cm(p);
  const double base = cm.gpu_op_time(0.0, 0.0, 0);
  const double with4 = cm.gpu_op_time(0.0, 0.0, 4);
  EXPECT_DOUBLE_EQ(base, 0.0);
  EXPECT_DOUBLE_EQ(with4, 4.0 * p.gpu.kernel_overhead_s);
}

TEST(CostModel, TransferIncludesLatency) {
  PlatformSpec p = a6000_i9_platform();
  const CostModel cm(p);
  EXPECT_DOUBLE_EQ(cm.h2d_time(0.0), p.pcie_h2d.latency_s);
  const double big = cm.h2d_time(1e9);
  EXPECT_NEAR(big, p.pcie_h2d.latency_s + 1e9 / p.pcie_h2d.bw(), 1e-12);
}

TEST(CostModel, TimeMonotoneInWork) {
  const CostModel cm(a6000_i9_platform());
  EXPECT_LE(cm.gpu_op_time(1e9, 1e6), cm.gpu_op_time(2e9, 1e6));
  EXPECT_LE(cm.gpu_op_time(1e9, 1e6), cm.gpu_op_time(1e9, 2e6));
  EXPECT_LE(cm.h2d_time(1e6), cm.h2d_time(2e6));
}

TEST(CostModel, GpuFasterThanCpuOnPresets) {
  for (const auto& p : {a6000_i9_platform(), a100_xeon_platform(),
                        rtx4090_desktop_platform(), laptop_platform()}) {
    const CostModel cm(p);
    // Same large op must be faster on the GPU (paper §VI-A assumption 2).
    EXPECT_LT(cm.gpu_op_time(1e12, 1e9), cm.cpu_op_time(1e12, 1e9))
        << p.name;
  }
}

TEST(CostModel, RejectsNegativeWork) {
  const CostModel cm(a6000_i9_platform());
  EXPECT_THROW(cm.gpu_op_time(-1.0, 0.0), CheckError);
  EXPECT_THROW(cm.h2d_time(-1.0), CheckError);
}

TEST(CostModel, PresetsAreInternallyConsistent) {
  for (const auto& p : {a6000_i9_platform(), a100_xeon_platform(),
                        rtx4090_desktop_platform(), laptop_platform()}) {
    EXPECT_GT(p.gpu.flops(), p.cpu.flops()) << p.name;
    EXPECT_GT(p.gpu.mem_bw(), p.cpu.mem_bw()) << p.name;
    EXPECT_GT(p.gpu.active_power_w, p.gpu.idle_power_w) << p.name;
    EXPECT_GT(p.cpu.active_power_w, p.cpu.idle_power_w) << p.name;
    EXPECT_GT(p.cpu.mem_capacity_bytes, p.gpu.mem_capacity_bytes) << p.name;
    // PCIe effective bandwidth below CPU memory bandwidth (assumption 3's
    // precondition: transfers are the slow path).
    EXPECT_LT(p.pcie_h2d.bw(), p.cpu.mem_bw()) << p.name;
  }
}

}  // namespace
}  // namespace daop::sim
