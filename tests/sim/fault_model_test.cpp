#include "sim/fault_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "sim/timeline.hpp"

namespace daop::sim {
namespace {

TEST(HazardScenario, DefaultIsDisabled) {
  HazardScenario s;
  EXPECT_FALSE(s.enabled());
  s.validate();  // defaults are valid
}

TEST(HazardScenario, EnabledWhenAnyHazardCanFire) {
  HazardScenario s;
  s.pcie_stall_prob = 0.1;
  s.pcie_stall_mean_s = 1e-3;
  EXPECT_TRUE(s.enabled());

  HazardScenario t;
  t.expert_load_fail_prob = 0.5;
  EXPECT_TRUE(t.enabled());

  HazardScenario c;
  c.cpu_contention_period_s = 0.1;
  c.cpu_contention_window_s = 0.05;
  c.cpu_contention_slowdown = 2.0;
  EXPECT_TRUE(c.enabled());

  // A contention window with slowdown 1.0 perturbs nothing.
  c.cpu_contention_slowdown = 1.0;
  EXPECT_FALSE(c.enabled());
}

TEST(HazardScenario, ValidateRejectsBadRanges) {
  {
    HazardScenario s;
    s.pcie_stall_prob = 1.5;
    EXPECT_THROW(s.validate(), CheckError);
  }
  {
    HazardScenario s;
    s.pcie_fail_prob = -0.1;
    EXPECT_THROW(s.validate(), CheckError);
  }
  {
    HazardScenario s;
    s.pcie_stall_mean_s = -1.0;
    EXPECT_THROW(s.validate(), CheckError);
  }
  {
    HazardScenario s;
    s.max_transfer_retries = -1;
    EXPECT_THROW(s.validate(), CheckError);
  }
  {
    HazardScenario s;
    s.cpu_contention_period_s = 0.1;
    s.cpu_contention_window_s = 0.2;  // window longer than its period
    EXPECT_THROW(s.validate(), CheckError);
  }
  {
    HazardScenario s;
    s.cpu_contention_slowdown = 0.5;  // would speed ops up
    EXPECT_THROW(s.validate(), CheckError);
  }
  {
    HazardScenario s;
    s.gpu_throttle_slowdown = 0.0;
    EXPECT_THROW(s.validate(), CheckError);
  }
  {
    HazardScenario s;
    s.expert_load_fail_prob = 2.0;
    EXPECT_THROW(s.validate(), CheckError);
  }
}

TEST(HazardScenario, PresetKindsAreValidAndEnabled) {
  for (const auto& kind : hazard_scenario_kinds()) {
    const HazardScenario s = make_hazard_scenario(kind, 0.5);
    s.validate();
    if (kind == "none") {
      EXPECT_FALSE(s.enabled());
    } else {
      EXPECT_TRUE(s.enabled()) << kind;
    }
  }
}

TEST(HazardScenario, ZeroIntensityDisablesEveryPreset) {
  for (const auto& kind : hazard_scenario_kinds()) {
    EXPECT_FALSE(make_hazard_scenario(kind, 0.0).enabled()) << kind;
  }
}

TEST(HazardScenario, UnknownKindAndBadIntensityThrow) {
  EXPECT_THROW(make_hazard_scenario("meteor-strike", 0.5), CheckError);
  EXPECT_THROW(make_hazard_scenario("pcie", -0.1), CheckError);
  EXPECT_THROW(make_hazard_scenario("pcie", 1.5), CheckError);
  // A typo'd kind must be rejected even at intensity 0 (the calm early
  // return must not mask it into a silent no-hazard run).
  EXPECT_THROW(make_hazard_scenario("meteor-strike", 0.0), CheckError);
}

TEST(HazardScenario, UnknownKindErrorListsValidKinds) {
  try {
    make_hazard_scenario("meteor-strike", 0.5);
    FAIL() << "expected CheckError for unknown hazard kind";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("meteor-strike"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid kinds"), std::string::npos) << msg;
    for (const auto& kind : hazard_scenario_kinds()) {
      EXPECT_NE(msg.find(kind), std::string::npos)
          << "missing kind '" << kind << "' in: " << msg;
    }
  }
}

TEST(FaultModel, SameSeedSamePerturbationSequence) {
  const HazardScenario s = make_hazard_scenario("all", 1.0);
  FaultModel a(s, 42);
  FaultModel b(s, 42);
  for (int i = 0; i < 200; ++i) {
    const Res r = static_cast<Res>(i % kNumRes);
    const double start = 0.01 * i;
    const auto pa = a.perturb(r, start, 0.002);
    const auto pb = b.perturb(r, start, 0.002);
    EXPECT_EQ(pa.extra_s, pb.extra_s);
    EXPECT_EQ(pa.retries, pb.retries);
    EXPECT_EQ(a.expert_load_fails(), b.expert_load_fails());
  }
}

TEST(FaultModel, DifferentSeedsDiverge) {
  const HazardScenario s = make_hazard_scenario("pcie", 1.0);
  FaultModel a(s, 1);
  FaultModel b(s, 2);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.perturb(Res::PcieH2D, 0.0, 0.002).extra_s !=
               b.perturb(Res::PcieH2D, 0.0, 0.002).extra_s;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultModel, DisabledScenarioNeverPerturbs) {
  FaultModel fm(HazardScenario{}, 7);
  EXPECT_FALSE(fm.enabled());
  for (int i = 0; i < 50; ++i) {
    const auto p = fm.perturb(static_cast<Res>(i % kNumRes), 0.01 * i, 0.002);
    EXPECT_EQ(p.extra_s, 0.0);
    EXPECT_EQ(p.retries, 0);
    EXPECT_FALSE(fm.expert_load_fails());
  }
}

TEST(FaultModel, PerturbationsAreNonNegative) {
  const HazardScenario s = make_hazard_scenario("all", 1.0);
  FaultModel fm(s, 3);
  for (int i = 0; i < 500; ++i) {
    const auto p = fm.perturb(static_cast<Res>(i % kNumRes), 0.003 * i, 0.001);
    EXPECT_GE(p.extra_s, 0.0);
    EXPECT_GE(p.retries, 0);
    EXPECT_LE(p.retries, s.max_transfer_retries);
  }
}

TEST(FaultModel, CertainTransferFailureStopsAtRetryCap) {
  HazardScenario s;
  s.pcie_fail_prob = 1.0;  // every attempt fails until the cap
  s.max_transfer_retries = 3;
  FaultModel fm(s, 9);
  const auto p = fm.perturb(Res::PcieH2D, 0.0, 0.002);
  EXPECT_EQ(p.retries, 3);
  // Each retry re-pays the transfer plus a backoff.
  EXPECT_GE(p.extra_s, 3 * 0.002);
}

TEST(FaultModel, GpuThrottleSlowsOpsInsideWindowOnly) {
  HazardScenario s;
  s.gpu_throttle_period_s = 1.0;
  s.gpu_throttle_window_s = 1.0;  // always inside the window
  s.gpu_throttle_slowdown = 3.0;
  FaultModel fm(s, 11);
  const auto p = fm.perturb(Res::GpuStream, 0.25, 0.01);
  EXPECT_NEAR(p.extra_s, 0.02, 1e-12);  // duration * (slowdown - 1)
  // CPU ops are untouched by a GPU-only scenario.
  EXPECT_EQ(fm.perturb(Res::CpuPool, 0.25, 0.01).extra_s, 0.0);
}

TEST(FaultModel, ExpertLoadFailureRateTracksProbability) {
  HazardScenario s;
  s.expert_load_fail_prob = 0.3;
  FaultModel fm(s, 123);
  int fails = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) fails += fm.expert_load_fails() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.3, 0.02);
}

TEST(TimelineFaults, AccumulatesHazardTelemetry) {
  HazardScenario s;
  s.pcie_fail_prob = 1.0;
  s.max_transfer_retries = 2;
  FaultModel fm(s, 5);
  Timeline tl;
  tl.set_fault_model(&fm);
  const double end = tl.schedule(Res::PcieH2D, 0.0, 0.01);
  EXPECT_GT(end, 0.01);  // retries stretched the op
  EXPECT_GT(tl.hazard_stall_s(), 0.0);
  EXPECT_EQ(tl.hazard_transfer_retries(), 2);
  // GPU ops pass through untouched under a PCIe-only scenario.
  const double g = tl.schedule(Res::GpuStream, 0.0, 0.01);
  EXPECT_EQ(g, 0.01);
}

TEST(TimelineFaults, ResetClearsTelemetryButKeepsModel) {
  HazardScenario s;
  s.pcie_fail_prob = 1.0;
  FaultModel fm(s, 5);
  Timeline tl;
  tl.set_fault_model(&fm);
  tl.schedule(Res::PcieH2D, 0.0, 0.01);
  EXPECT_GT(tl.hazard_stall_s(), 0.0);
  tl.reset();
  EXPECT_EQ(tl.hazard_stall_s(), 0.0);
  EXPECT_EQ(tl.hazard_transfer_retries(), 0);
  EXPECT_EQ(tl.fault_model(), &fm);
}

TEST(TimelineFaults, DisabledModelIsStrictNoOp) {
  FaultModel fm(HazardScenario{}, 5);
  Timeline with, without;
  with.set_fault_model(&fm);
  for (int i = 0; i < 20; ++i) {
    const Res r = static_cast<Res>(i % kNumRes);
    const double a = with.schedule(r, 0.001 * i, 0.002);
    const double b = without.schedule(r, 0.001 * i, 0.002);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(with.hazard_stall_s(), 0.0);
  EXPECT_EQ(with.span(), without.span());
}

}  // namespace
}  // namespace daop::sim
