#include "sim/energy.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace daop::sim {
namespace {

PlatformSpec toy_platform() {
  PlatformSpec p;
  p.gpu.active_power_w = 100.0;
  p.gpu.idle_power_w = 10.0;
  p.gpu.flops_peak = 1.0;
  p.gpu.mem_bw_bytes_per_s = 1.0;
  p.cpu.active_power_w = 50.0;
  p.cpu.idle_power_w = 5.0;
  p.cpu.flops_peak = 1.0;
  p.cpu.mem_bw_bytes_per_s = 1.0;
  p.base_power_w = 20.0;
  return p;
}

TEST(Energy, IdlePlatformDrawsIdlePower) {
  Timeline tl;
  const auto e = compute_energy(toy_platform(), tl, 10.0);
  EXPECT_DOUBLE_EQ(e.gpu_j, 100.0);   // 10 W idle x 10 s
  EXPECT_DOUBLE_EQ(e.cpu_j, 50.0);
  EXPECT_DOUBLE_EQ(e.base_j, 200.0);
  EXPECT_DOUBLE_EQ(e.total_j, 350.0);
  EXPECT_DOUBLE_EQ(e.avg_power_w, 35.0);
}

TEST(Energy, BusyTimeBilledAtActivePower) {
  Timeline tl;
  tl.schedule(Res::GpuStream, 0.0, 4.0);
  const auto e = compute_energy(toy_platform(), tl, 10.0);
  // 4 s active + 6 s idle.
  EXPECT_DOUBLE_EQ(e.gpu_j, 4.0 * 100.0 + 6.0 * 10.0);
}

TEST(Energy, PcieTransfersBillCpuStaging) {
  // Host-side pageable DMA keeps the CPU busy (see energy.cpp), so a
  // transfer-heavy run draws near-active CPU power.
  Timeline tl;
  tl.schedule(Res::PcieH2D, 0.0, 10.0);
  const auto e = compute_energy(toy_platform(), tl, 10.0);
  EXPECT_DOUBLE_EQ(e.cpu_j, 10.0 * 50.0);
  EXPECT_DOUBLE_EQ(e.pcie_j, 150.0);  // 15 W x 10 s
}

TEST(Energy, EnergyScalesWithDuration) {
  Timeline tl;
  const auto e1 = compute_energy(toy_platform(), tl, 1.0);
  const auto e2 = compute_energy(toy_platform(), tl, 2.0);
  EXPECT_NEAR(e2.total_j, 2.0 * e1.total_j, 1e-9);
}

TEST(Energy, RejectsDurationShorterThanSpan) {
  Timeline tl;
  tl.schedule(Res::GpuStream, 0.0, 5.0);
  EXPECT_THROW(compute_energy(toy_platform(), tl, 4.0), CheckError);
}

TEST(Energy, BusyEnergyExceedsIdleEnergy) {
  Timeline busy;
  busy.schedule(Res::GpuStream, 0.0, 10.0);
  busy.schedule(Res::CpuPool, 0.0, 10.0);
  Timeline idle;
  const auto eb = compute_energy(toy_platform(), busy, 10.0);
  const auto ei = compute_energy(toy_platform(), idle, 10.0);
  EXPECT_GT(eb.total_j, ei.total_j);
}

}  // namespace
}  // namespace daop::sim
