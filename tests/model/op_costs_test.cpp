#include "model/op_costs.hpp"

#include <gtest/gtest.h>

#include "model/config.hpp"
#include "sim/device.hpp"

namespace daop::model {
namespace {

class TableICalibration : public ::testing::Test {
 protected:
  TableICalibration()
      : cfg_(mixtral_8x7b()),
        cm_(sim::a100_xeon_platform()),
        costs_(cfg_, cm_) {}

  ModelConfig cfg_;
  sim::CostModel cm_;
  OpCosts costs_;
};

// The simulator's central calibration contract: Mixtral-8x7B per-op times on
// the A100+Xeon platform must match the paper's own Table I measurements
// within 15%. Every speed/energy experiment rests on these four numbers.
TEST_F(TableICalibration, BlockOnCpuNear8ms) {
  EXPECT_NEAR(costs_.full_block_cpu(256) * 1e3, 8.02, 8.02 * 0.15);
}

TEST_F(TableICalibration, BlockOnGpuNear1_24ms) {
  EXPECT_NEAR(costs_.full_block_gpu(256) * 1e3, 1.24, 1.24 * 0.15);
}

TEST_F(TableICalibration, ExpertMigrationNear40ms) {
  EXPECT_NEAR(costs_.expert_migration() * 1e3, 39.87, 39.87 * 0.15);
}

TEST_F(TableICalibration, ActivationTransitionNear20us) {
  EXPECT_NEAR(costs_.activations_h2d(1) * 1e3, 0.02, 0.02 * 0.5);
  EXPECT_NEAR(costs_.activations_d2h(1) * 1e3, 0.02, 0.02 * 0.5);
}

TEST_F(TableICalibration, MigrationDwarfsGpuBlock) {
  // Paper §I: migrating one expert ~32x slower than running a whole block
  // on the GPU — the observation motivating CPU-side execution.
  const double ratio = costs_.expert_migration() / costs_.full_block_gpu(256);
  EXPECT_GT(ratio, 25.0);
  EXPECT_LT(ratio, 45.0);
}

TEST_F(TableICalibration, ActivationTransferDwarfedByWeights) {
  // Paper §I: expert I/O activations are ~1/10000 the expert weight size.
  EXPECT_LT(cfg_.hidden_state_bytes() / cfg_.expert_bytes(), 1e-3);
}

TEST(OpCosts, PrefillScalesWithTokens) {
  const ModelConfig cfg = mixtral_8x7b();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const OpCosts costs(cfg, cm);
  EXPECT_GT(costs.expert_gpu_prefill(256), costs.expert_gpu_prefill(16));
  EXPECT_GT(costs.expert_cpu_prefill(256), costs.expert_cpu_prefill(16));
  EXPECT_GT(costs.nonmoe_gpu_prefill(256), costs.nonmoe_gpu_prefill(16));
}

TEST(OpCosts, CpuPrefillComputeBound) {
  // Multi-token expert execution on the CPU scales ~linearly with tokens
  // (compute-bound), which is why Algorithm 1 wants hot experts on the GPU.
  const ModelConfig cfg = mixtral_8x7b();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const OpCosts costs(cfg, cm);
  const double t64 = costs.expert_cpu_prefill(64);
  const double t128 = costs.expert_cpu_prefill(128);
  EXPECT_NEAR(t128 / t64, 2.0, 0.3);
  // While on the GPU the same growth is much cheaper in relative terms.
  EXPECT_LT(costs.expert_gpu_prefill(128) / costs.expert_gpu_prefill(64), 1.9);
}

TEST(OpCosts, DecodeContextAffectsNonMoe) {
  const ModelConfig cfg = mixtral_8x7b();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const OpCosts costs(cfg, cm);
  EXPECT_GT(costs.nonmoe_gpu(4096), costs.nonmoe_gpu(16));
}

TEST(OpCosts, GpuExpertFasterThanCpuExpert) {
  for (const auto& p : {sim::a6000_i9_platform(), sim::a100_xeon_platform()}) {
    const sim::CostModel cm(p);
    const OpCosts costs(mixtral_8x7b(), cm);
    EXPECT_LT(costs.expert_gpu(), costs.expert_cpu());
    // §VI-A assumption 3: migration costs more than CPU execution.
    EXPECT_GT(costs.expert_migration(), costs.expert_cpu());
  }
}

TEST(MaxEcr, MixtralOnA6000MatchesPaperSetup) {
  // Paper Fig. 9: full GPU memory utilization == ECR 46.9% for Mixtral on
  // the 48 GB A6000.
  const double ecr =
      max_expert_cache_ratio(mixtral_8x7b(), sim::a6000_i9_platform());
  EXPECT_NEAR(ecr, 0.469, 0.06);
}

TEST(MaxEcr, MonotoneInGpuMemory) {
  const ModelConfig cfg = mixtral_8x7b();
  sim::PlatformSpec small = sim::a6000_i9_platform();
  small.gpu.mem_capacity_bytes /= 2.0;
  EXPECT_LT(max_expert_cache_ratio(cfg, small),
            max_expert_cache_ratio(cfg, sim::a6000_i9_platform()));
}

TEST(MaxEcr, CappedAtOne) {
  sim::PlatformSpec huge = sim::a6000_i9_platform();
  huge.gpu.mem_capacity_bytes = 1e15;
  EXPECT_DOUBLE_EQ(max_expert_cache_ratio(mixtral_8x7b(), huge), 1.0);
}

TEST(MaxEcr, ZeroWhenNothingFits) {
  sim::PlatformSpec tiny = sim::a6000_i9_platform();
  tiny.gpu.mem_capacity_bytes = 1e9;  // smaller than non-MoE weights
  EXPECT_DOUBLE_EQ(max_expert_cache_ratio(mixtral_8x7b(), tiny), 0.0);
}

}  // namespace
}  // namespace daop::model
