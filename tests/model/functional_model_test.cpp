#include "model/functional_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "model/config.hpp"
#include "tensor/ops.hpp"

namespace daop::model {
namespace {

class FunctionalModelTest : public ::testing::Test {
 protected:
  FunctionalModelTest() : model_(tiny_mixtral(), 42) {}
  FunctionalModel model_;
};

TEST_F(FunctionalModelTest, DeterministicAcrossInstances) {
  FunctionalModel other(tiny_mixtral(), 42);
  const OfficialDecoder a(model_);
  const OfficialDecoder b(other);
  const std::vector<int> prompt = {1, 2, 3, 4};
  EXPECT_EQ(a.generate(prompt, 8), b.generate(prompt, 8));
}

TEST_F(FunctionalModelTest, DifferentSeedsGiveDifferentModels) {
  FunctionalModel other(tiny_mixtral(), 43);
  const OfficialDecoder a(model_);
  const OfficialDecoder b(other);
  const std::vector<int> prompt = {1, 2, 3, 4};
  EXPECT_NE(a.generate(prompt, 8), b.generate(prompt, 8));
}

TEST_F(FunctionalModelTest, EmbedLooksUpRow) {
  const auto& cfg = model_.config();
  std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
  model_.embed(7, x);
  const auto row = model_.weights().embedding.row(7);
  for (int i = 0; i < cfg.d_model; ++i) {
    EXPECT_EQ(x[static_cast<std::size_t>(i)], row[static_cast<std::size_t>(i)]);
  }
}

TEST_F(FunctionalModelTest, RouteSelectsTopKWithNormalizedWeights) {
  std::vector<float> logits = {0.1F, 2.0F, -1.0F, 1.5F,
                               0.0F, 0.0F, 0.0F, 0.0F};
  const RouteDecision d = model_.route(logits);
  ASSERT_EQ(d.experts.size(), 2U);
  EXPECT_EQ(d.experts[0], 1);
  EXPECT_EQ(d.experts[1], 3);
  EXPECT_NEAR(d.weights[0] + d.weights[1], 1.0F, 1e-6F);
  EXPECT_GT(d.weights[0], d.weights[1]);
}

TEST_F(FunctionalModelTest, ExpertsDiffer) {
  const auto& cfg = model_.config();
  std::vector<float> h(static_cast<std::size_t>(cfg.d_model), 0.3F);
  std::vector<float> o0(static_cast<std::size_t>(cfg.d_model));
  std::vector<float> o1(static_cast<std::size_t>(cfg.d_model));
  model_.expert_forward(0, 0, h, o0);
  model_.expert_forward(0, 1, h, o1);
  EXPECT_NE(o0, o1);
}

TEST_F(FunctionalModelTest, AttentionIsCausalIncrementalConsistent) {
  // Processing [t0, t1] then decoding t2 must equal processing all three in
  // one sweep — the KV cache is exact.
  const auto& cfg = model_.config();
  const std::vector<int> tokens = {5, 9, 11};

  auto run_through_layer0 = [&](int upto) {
    KvCache kv(cfg, 8);
    std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
    std::vector<float> last;
    for (int p = 0; p <= upto; ++p) {
      model_.embed(tokens[static_cast<std::size_t>(p)], x);
      model_.attention_block(0, x, kv, p);
      kv.advance();
      last = x;
    }
    return last;
  };
  // Both paths end processing token 2 at position 2 with the same history.
  const auto full = run_through_layer0(2);
  const auto again = run_through_layer0(2);
  EXPECT_EQ(full, again);
}

TEST_F(FunctionalModelTest, ResidualStreamStaysBounded) {
  // The init scaling must keep activations finite through all layers.
  const auto& cfg = model_.config();
  KvCache kv(cfg, 4);
  std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
  model_.embed(3, x);
  for (int l = 0; l < cfg.n_layers; ++l) {
    model_.official_block(l, x, kv, 0, nullptr);
  }
  const float norm = l2_norm(x);
  EXPECT_TRUE(std::isfinite(norm));
  EXPECT_LT(norm, 1e4F);
  EXPECT_GT(norm, 1e-4F);
}

TEST_F(FunctionalModelTest, GateBiasChangesRouting) {
  const auto& cfg = model_.config();
  int biased_first_expert = -1;
  int plain_first_expert = -1;
  {
    KvCache kv(cfg, 2);
    std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
    model_.embed(3, x);
    const auto d = model_.official_block(0, x, kv, 0, nullptr);
    plain_first_expert = d.experts[0];
  }
  {
    KvCache kv(cfg, 2);
    std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
    model_.embed(3, x);
    const int forced = (plain_first_expert + 1) % cfg.n_experts;
    const GateBias bias = [&](int, int, std::span<float> logits) {
      logits[static_cast<std::size_t>(forced)] += 100.0F;
    };
    const auto d = model_.official_block(0, x, kv, 0, bias);
    biased_first_expert = d.experts[0];
    EXPECT_EQ(biased_first_expert, forced);
  }
}

TEST_F(FunctionalModelTest, OfficialBlockReportsGateLogits) {
  const auto& cfg = model_.config();
  KvCache kv(cfg, 2);
  std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
  model_.embed(1, x);
  std::vector<float> logits;
  const auto d = model_.official_block(0, x, kv, 0, nullptr, &logits);
  ASSERT_EQ(static_cast<int>(logits.size()), cfg.n_experts);
  EXPECT_EQ(topk_indices(logits, cfg.top_k), d.experts);
}

TEST_F(FunctionalModelTest, GenerateProducesRequestedCount) {
  const OfficialDecoder dec(model_);
  const std::vector<int> prompt = {1, 2, 3};
  EXPECT_EQ(dec.generate(prompt, 0).size(), 0U);
  EXPECT_EQ(dec.generate(prompt, 5).size(), 5U);
  for (int t : dec.generate(prompt, 5)) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, model_.config().vocab_size);
  }
}

TEST_F(FunctionalModelTest, ObserverSeesAllRoutingEvents) {
  const OfficialDecoder dec(model_);
  const std::vector<int> prompt = {1, 2};
  int prefill_events = 0;
  int decode_events = 0;
  const RouteObserver obs = [&](int layer, int pos, bool is_prefill,
                                std::span<const float> logits,
                                const RouteDecision& d) {
    EXPECT_GE(layer, 0);
    EXPECT_LT(layer, model_.config().n_layers);
    EXPECT_EQ(static_cast<int>(logits.size()), model_.config().n_experts);
    EXPECT_EQ(static_cast<int>(d.experts.size()), model_.config().top_k);
    (void)pos;
    if (is_prefill) {
      ++prefill_events;
    } else {
      ++decode_events;
    }
  };
  dec.generate(prompt, 3, nullptr, obs);
  const int L = model_.config().n_layers;
  EXPECT_EQ(prefill_events, 2 * L);
  EXPECT_EQ(decode_events, 3 * L);
}

TEST_F(FunctionalModelTest, GreedyGenerationIsPrefixConsistent) {
  // Greedy decoding is deterministic: generating 4 tokens then 8 tokens
  // from the same prompt must agree on the shared prefix.
  const OfficialDecoder dec(model_);
  const std::vector<int> prompt = {7, 3, 1};
  const auto short_gen = dec.generate(prompt, 4);
  const auto long_gen = dec.generate(prompt, 8);
  ASSERT_EQ(long_gen.size(), 8U);
  for (std::size_t i = 0; i < short_gen.size(); ++i) {
    EXPECT_EQ(short_gen[i], long_gen[i]) << "position " << i;
  }
}

TEST_F(FunctionalModelTest, KvTruncateReplayMatches) {
  // Processing [a, b] then truncating to 1 and reprocessing b must give the
  // same post-attention state as the original pass over b.
  const auto& cfg = model_.config();
  KvCache kv(cfg, 4);
  std::vector<float> x1(static_cast<std::size_t>(cfg.d_model));
  std::vector<float> x2(static_cast<std::size_t>(cfg.d_model));

  model_.embed(3, x1);
  model_.attention_block(0, x1, kv, 0);
  kv.advance();
  model_.embed(9, x2);
  std::vector<float> x2_first = x2;
  model_.attention_block(0, x2_first, kv, 1);
  kv.advance();

  kv.truncate(1);
  std::vector<float> x2_replay = x2;
  model_.attention_block(0, x2_replay, kv, 1);
  EXPECT_EQ(x2_first, x2_replay);
}

TEST_F(FunctionalModelTest, TopKGreaterThanOneUsed) {
  // Ensure the MoE mixes at least two experts (weights strictly between 0,1).
  const auto& cfg = model_.config();
  KvCache kv(cfg, 2);
  std::vector<float> x(static_cast<std::size_t>(cfg.d_model));
  model_.embed(9, x);
  const auto d = model_.official_block(0, x, kv, 0, nullptr);
  ASSERT_EQ(d.weights.size(), 2U);
  EXPECT_GT(d.weights[1], 0.0F);
  EXPECT_LT(d.weights[0], 1.0F);
}

}  // namespace
}  // namespace daop::model
