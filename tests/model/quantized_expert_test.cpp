#include "model/quantized_expert.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "model/config.hpp"
#include "tensor/ops.hpp"

namespace daop::model {
namespace {

class QuantizedExpertTest : public ::testing::Test {
 protected:
  QuantizedExpertTest() : model_(tiny_mixtral(), 11) {}
  FunctionalModel model_;
};

TEST_F(QuantizedExpertTest, Int8TracksFullPrecisionClosely) {
  const auto& cfg = model_.config();
  const QuantizedExpertSet qset(model_, QuantSpec{8, 32});
  std::vector<float> h(static_cast<std::size_t>(cfg.d_model));
  for (int i = 0; i < cfg.d_model; ++i) {
    h[static_cast<std::size_t>(i)] = 0.05F * static_cast<float>(i % 7 - 3);
  }
  std::vector<float> exact(static_cast<std::size_t>(cfg.d_model));
  std::vector<float> quant(static_cast<std::size_t>(cfg.d_model));
  model_.expert_forward(0, 3, h, exact);
  qset.forward(0, 3, h, quant);
  const double cos = cosine_similarity(std::span<const float>(exact), quant);
  EXPECT_GT(cos, 0.999);
}

TEST_F(QuantizedExpertTest, LowerBitsDriftFurther) {
  const auto& cfg = model_.config();
  std::vector<float> h(static_cast<std::size_t>(cfg.d_model), 0.1F);
  std::vector<float> exact(static_cast<std::size_t>(cfg.d_model));
  model_.expert_forward(2, 1, h, exact);

  double prev_cos = 1.0;
  for (int bits : {8, 4, 2}) {
    const QuantizedExpertSet qset(model_, QuantSpec{bits, 32});
    std::vector<float> quant(static_cast<std::size_t>(cfg.d_model));
    qset.forward(2, 1, h, quant);
    const double cos = cosine_similarity(std::span<const float>(exact), quant);
    EXPECT_LT(cos, prev_cos + 1e-9) << bits;
    prev_cos = cos;
  }
  EXPECT_LT(prev_cos, 0.999);  // 2-bit visibly diverges
}

TEST_F(QuantizedExpertTest, CoversAllLayersAndExperts) {
  const auto& cfg = model_.config();
  const QuantizedExpertSet qset(model_, QuantSpec{4, 64});
  std::vector<float> h(static_cast<std::size_t>(cfg.d_model), 0.2F);
  std::vector<float> out(static_cast<std::size_t>(cfg.d_model));
  for (int l = 0; l < cfg.n_layers; ++l) {
    for (int e = 0; e < cfg.n_experts; ++e) {
      qset.forward(l, e, h, out);  // must not throw
    }
  }
  EXPECT_THROW(qset.get(cfg.n_layers, 0), CheckError);
  EXPECT_THROW(qset.get(0, cfg.n_experts), CheckError);
}

TEST_F(QuantizedExpertTest, DifferentExpertsStayDifferent) {
  const auto& cfg = model_.config();
  const QuantizedExpertSet qset(model_, QuantSpec{8, 64});
  std::vector<float> h(static_cast<std::size_t>(cfg.d_model), 0.3F);
  std::vector<float> a(static_cast<std::size_t>(cfg.d_model));
  std::vector<float> b(static_cast<std::size_t>(cfg.d_model));
  qset.forward(0, 0, h, a);
  qset.forward(0, 1, h, b);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace daop::model
