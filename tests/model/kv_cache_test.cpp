#include "model/kv_cache.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "model/config.hpp"

namespace daop::model {
namespace {

class KvCacheTest : public ::testing::Test {
 protected:
  KvCacheTest() : cfg_(tiny_mixtral()), kv_(cfg_, 8) {}
  ModelConfig cfg_;
  KvCache kv_;
};

TEST_F(KvCacheTest, StartsEmpty) {
  EXPECT_EQ(kv_.size(), 0);
  EXPECT_EQ(kv_.max_seq(), 8);
}

TEST_F(KvCacheTest, SlotHasKvDimension) {
  const auto k = kv_.k_slot(0, 0);
  EXPECT_EQ(static_cast<int>(k.size()), cfg_.n_kv_heads * cfg_.head_dim);
}

TEST_F(KvCacheTest, WriteReadRoundTrip) {
  auto k = kv_.k_slot(2, 0);
  k[0] = 1.5F;
  k[5] = -2.0F;
  kv_.advance();
  const auto kr = kv_.k_at(2, 0);
  EXPECT_EQ(kr[0], 1.5F);
  EXPECT_EQ(kr[5], -2.0F);
}

TEST_F(KvCacheTest, LayersAreIndependent) {
  kv_.k_slot(0, 0)[0] = 1.0F;
  kv_.k_slot(1, 0)[0] = 2.0F;
  kv_.v_slot(0, 0)[0] = 3.0F;
  kv_.advance();
  EXPECT_EQ(kv_.k_at(0, 0)[0], 1.0F);
  EXPECT_EQ(kv_.k_at(1, 0)[0], 2.0F);
  EXPECT_EQ(kv_.v_at(0, 0)[0], 3.0F);
  EXPECT_EQ(kv_.v_at(1, 0)[0], 0.0F);
}

TEST_F(KvCacheTest, AdvanceGrowsUntilCapacity) {
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(kv_.size(), i);
    kv_.advance();
  }
  EXPECT_THROW(kv_.advance(), CheckError);
}

TEST_F(KvCacheTest, CannotWriteBeyondFrontier) {
  EXPECT_THROW(kv_.k_slot(0, 3), CheckError);  // frontier is 0
  kv_.advance();
  (void)kv_.k_slot(0, 1);  // frontier now 1: OK
  EXPECT_THROW(kv_.k_slot(0, 2), CheckError);
}

TEST_F(KvCacheTest, TruncateReplaysPrefix) {
  kv_.k_slot(0, 0)[0] = 1.0F;
  kv_.advance();
  kv_.advance();
  kv_.truncate(1);
  EXPECT_EQ(kv_.size(), 1);
  EXPECT_EQ(kv_.k_at(0, 0)[0], 1.0F);  // prefix survives
  EXPECT_THROW(kv_.truncate(5), CheckError);
}

TEST_F(KvCacheTest, ClearResets) {
  kv_.advance();
  kv_.clear();
  EXPECT_EQ(kv_.size(), 0);
}

TEST_F(KvCacheTest, LayerBoundsChecked) {
  EXPECT_THROW(kv_.k_slot(cfg_.n_layers, 0), CheckError);
  EXPECT_THROW(kv_.k_at(-1, 0), CheckError);
}

}  // namespace
}  // namespace daop::model
