#include "model/config.hpp"

#include <gtest/gtest.h>

namespace daop::model {
namespace {

TEST(Config, MixtralMatchesPaperTableIII) {
  const ModelConfig c = mixtral_8x7b();
  EXPECT_EQ(c.n_layers, 32);
  EXPECT_EQ(c.n_experts, 8);
  EXPECT_EQ(c.top_k, 2);
  // Paper Table III: 45.1B expert params, 46.6B total.
  EXPECT_NEAR(c.expert_params_total() / 1e9, 45.1, 0.2);
  EXPECT_NEAR(c.total_params() / 1e9, 46.6, 0.3);
}

TEST(Config, PhiMatchesPaperTableIII) {
  const ModelConfig c = phi35_moe();
  EXPECT_EQ(c.n_layers, 32);
  EXPECT_EQ(c.n_experts, 16);
  EXPECT_EQ(c.top_k, 2);
  // Paper Table III: 40.3B expert params, 41.7B total.
  EXPECT_NEAR(c.expert_params_total() / 1e9, 40.3, 0.3);
  EXPECT_NEAR(c.total_params() / 1e9, 41.7, 0.4);
}

TEST(Config, MixtralExpertSizeIsAboutThreeHundredMiB) {
  const ModelConfig c = mixtral_8x7b();
  // 3 x 4096 x 14336 fp16 = 336 MiB: the object whose migration costs
  // ~40 ms in Table I.
  EXPECT_NEAR(c.expert_bytes() / (1024.0 * 1024.0), 336.0, 1.0);
}

TEST(Config, SparseActivationFractionMatchesFig1) {
  const ModelConfig c = mixtral_8x7b();
  // Fig. 1: ~27.4% of parameters activated per sequence (non-MoE + 2 of 8
  // experts per layer).
  const double activated =
      c.total_params() - c.expert_params_total() +
      static_cast<double>(c.n_layers) * c.top_k * c.expert_params();
  EXPECT_NEAR(activated / c.total_params(), 0.274, 0.02);
}

TEST(Config, DerivedByteSizes) {
  const ModelConfig c = mixtral_8x7b();
  EXPECT_DOUBLE_EQ(c.hidden_state_bytes(), 4096 * 2.0);
  EXPECT_DOUBLE_EQ(c.kv_bytes_per_token_per_layer(), 2.0 * 8 * 128 * 2.0);
  EXPECT_EQ(c.total_experts(), 256);
}

TEST(Config, TinyConfigsShareArchitectureShape) {
  for (const ModelConfig& c : {tiny_mixtral(), tiny_phi()}) {
    EXPECT_EQ(c.top_k, 2);
    EXPECT_GE(c.n_layers, 6);  // enough layers to exercise min_predict_layer
    EXPECT_EQ(c.n_heads % c.n_kv_heads, 0);
    EXPECT_GT(c.vocab_size, 0);
  }
  EXPECT_EQ(tiny_mixtral().n_experts, 8);
  EXPECT_EQ(tiny_phi().n_experts, 16);
}

TEST(Config, GateParamsAreTiny) {
  const ModelConfig c = mixtral_8x7b();
  EXPECT_LT(c.gate_params(), c.expert_params() / 1000);
}

}  // namespace
}  // namespace daop::model
