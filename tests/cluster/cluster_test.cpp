// Fault-tolerant cluster serving: health-checked routing, session failover
// under chaos, hedged dispatch, and the cluster-aware conservation
// invariant (served + shed == requests, each request resolved exactly once
// no matter how many copies or failover attempts it consumed).
#include "cluster/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "cluster/health.hpp"
#include "cluster/serving.hpp"
#include "common/check.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"

namespace daop::cluster {
namespace {

// ---------------------------------------------------------------------------
// HealthChecker unit behaviour

TEST(HealthChecker, DisabledNeverEjectsAndNeverSchedulesProbes) {
  HealthOptions opt;  // enabled = false
  const HealthChecker hc(opt, 3);
  EXPECT_FALSE(hc.enabled());
  EXPECT_TRUE(hc.in_service(0));
  EXPECT_TRUE(hc.in_service(2));
  EXPECT_EQ(hc.next_probe_time(), std::numeric_limits<double>::infinity());
}

TEST(HealthChecker, EjectsAfterConsecutiveMissesAndReadmitsAfterRecovery) {
  HealthOptions opt;
  opt.enabled = true;
  opt.probe_interval_s = 1.0;
  opt.eject_after = 2;
  opt.readmit_after = 3;
  HealthChecker hc(opt, 2);
  EXPECT_DOUBLE_EQ(hc.next_probe_time(), 1.0);

  std::vector<HealthChecker::Probe> probes(2);
  probes[1].responsive = false;
  hc.observe(1.0, probes);  // miss #1: not yet ejected
  EXPECT_TRUE(hc.in_service(1));
  EXPECT_DOUBLE_EQ(hc.next_probe_time(), 2.0);
  hc.observe(2.0, probes);  // miss #2: ejected
  EXPECT_FALSE(hc.in_service(1));
  EXPECT_TRUE(hc.in_service(0));
  ASSERT_EQ(hc.events().size(), 1u);
  EXPECT_TRUE(hc.events()[0].ejected);
  EXPECT_EQ(hc.events()[0].node, 1);
  EXPECT_STREQ(hc.events()[0].reason, "unresponsive");

  probes[1].responsive = true;
  hc.observe(3.0, probes);
  hc.observe(4.0, probes);
  EXPECT_FALSE(hc.in_service(1)) << "readmission needs 3 good probes";
  hc.observe(5.0, probes);
  EXPECT_TRUE(hc.in_service(1));
  EXPECT_EQ(hc.ejections(), 1);
  EXPECT_EQ(hc.readmissions(), 1);
}

TEST(HealthChecker, OneGoodProbeResetsTheBadStreak) {
  HealthOptions opt;
  opt.enabled = true;
  opt.eject_after = 2;
  HealthChecker hc(opt, 1);
  std::vector<HealthChecker::Probe> bad(1), good(1);
  bad[0].slow = true;
  hc.observe(0.25, bad);
  hc.observe(0.50, good);
  hc.observe(0.75, bad);  // streak restarted: still only 1 consecutive
  EXPECT_TRUE(hc.in_service(0));
  hc.observe(1.00, bad);
  EXPECT_FALSE(hc.in_service(0));
  EXPECT_STREQ(hc.events()[0].reason, "slow");
}

// ---------------------------------------------------------------------------
// Options

TEST(ClusterOptions, DispatchPolicyNamesRoundTrip) {
  for (const auto p :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastLoaded,
        DispatchPolicy::kExpertAffinity}) {
    EXPECT_EQ(parse_dispatch_policy(dispatch_policy_name(p)), p);
  }
  EXPECT_THROW(parse_dispatch_policy("fastest"), CheckError);
}

TEST(ClusterOptions, ValidateRejectsInconsistentKnobs) {
  {
    ClusterOptions o;
    o.failover_backoff_s = 0.0;  // retry loops must advance time
    EXPECT_THROW(o.validate(), CheckError);
  }
  {
    ClusterOptions o;
    o.hedge_ttft_threshold_s = 0.5;  // hedging needs a service estimate
    EXPECT_THROW(o.validate(), CheckError);
  }
  {
    ClusterOptions o;
    o.max_concurrent_per_node = 0;
    EXPECT_THROW(o.validate(), CheckError);
  }
}

// ---------------------------------------------------------------------------
// Cluster serving harness

ClusterServingOptions cl_options(int nodes) {
  ClusterServingOptions opt;
  opt.n_nodes = nodes;
  opt.base.arrival_rate_rps = 2.0;
  opt.base.n_requests = 16;
  opt.base.min_prompt = 16;
  opt.base.max_prompt = 32;
  opt.base.min_gen = 16;
  opt.base.max_gen = 32;
  opt.base.calibration_seqs = 4;
  opt.cluster.max_concurrent_per_node = 2;
  return opt;
}

ClusterServingResult crun(eval::EngineKind kind,
                          const ClusterServingOptions& opt) {
  return run_cluster_serving_eval(kind, daop::testing::small_mixtral(),
                                  sim::a6000_i9_platform(),
                                  data::sharegpt_calibration(), opt);
}

TEST(ClusterServing, CalmRoundRobinServesEverythingOnEveryNode) {
  const auto opt = cl_options(4);
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served, 16);
  EXPECT_EQ(r.shed, 0);
  EXPECT_EQ(r.cluster.crashes, 0);
  EXPECT_EQ(r.cluster.failovers_total(), 0);
  EXPECT_EQ(r.cluster.dispatches, 16);
  for (int i = 0; i < 4; ++i) {
    // 16 requests over 4 calm nodes: perfect rotation.
    EXPECT_EQ(r.cluster.node_dispatched[static_cast<std::size_t>(i)], 4);
    EXPECT_EQ(r.cluster.node_final_state[static_cast<std::size_t>(i)], 2);
  }
  EXPECT_EQ(r.request_log.size(), 16u);
  for (const auto& e : r.request_log) EXPECT_EQ(e.outcome, "served");
}

TEST(ClusterServing, ChaosRunIsDeterministicAcrossReruns) {
  auto opt = cl_options(4);
  opt.base.seed = 1234;
  opt.node_hazards = sim::make_hazard_scenario("cluster", 0.8);
  opt.cluster.health.enabled = true;
  opt.cluster.health.probe_interval_s = 0.5;
  opt.cluster.health.eject_after = 1;
  opt.cluster.service_estimate_s = 2.0;
  opt.cluster.failover_budget = 2;
  opt.cluster.crash_node = 1;
  opt.cluster.crash_time_s = 2.0;
  const auto a = crun(eval::EngineKind::Daop, opt);
  const auto b = crun(eval::EngineKind::Daop, opt);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.shed_node_lost, b.shed_node_lost);
  EXPECT_EQ(a.makespan_s, b.makespan_s);  // bit-identical, not approximate
  EXPECT_EQ(a.ttft_s.mean, b.ttft_s.mean);
  EXPECT_EQ(a.latency_s.p99, b.latency_s.p99);
  EXPECT_EQ(a.cluster.failovers_node_crash, b.cluster.failovers_node_crash);
  EXPECT_EQ(a.cluster.failovers_dead_dispatch,
            b.cluster.failovers_dead_dispatch);
  EXPECT_EQ(a.cluster.replayed_tokens, b.cluster.replayed_tokens);
  EXPECT_EQ(a.cluster.ejections, b.cluster.ejections);
  EXPECT_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s);
  ASSERT_EQ(a.request_log.size(), b.request_log.size());
  for (std::size_t i = 0; i < a.request_log.size(); ++i) {
    EXPECT_EQ(a.request_log[i].outcome, b.request_log[i].outcome);
    EXPECT_EQ(a.request_log[i].retries, b.request_log[i].retries);
  }
}

TEST(ClusterServing, NodeCrashFailsOverAndCrashedNodeLeaksNoPins) {
  auto opt = cl_options(3);
  opt.base.arrival_rate_rps = 4.0;  // keep every node busy at crash time
  opt.cluster.health.enabled = true;
  opt.cluster.health.probe_interval_s = 0.5;
  opt.cluster.health.eject_after = 1;
  opt.cluster.failover_budget = 3;
  opt.cluster.failover_backoff_s = 0.05;
  opt.cluster.crash_node = 0;
  opt.cluster.crash_time_s = 2.0;
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  // Conservation under chaos: every request resolves exactly once. The
  // leaked-pin invariant (crashed node included) is DAOP_CHECKed inside
  // run(); reaching here means it held.
  EXPECT_EQ(r.served + r.shed, 16);
  EXPECT_EQ(static_cast<long long>(r.shed), r.shed_node_lost);
  EXPECT_EQ(r.cluster.crashes, 1);
  EXPECT_EQ(r.cluster.node_final_state[0], 0) << "node 0 must end crashed";
  EXPECT_GE(r.cluster.failovers_total(), 1)
      << "a crash at 2s with 4 rps must strand at least one request";
  EXPECT_GT(r.served, 0);
  // The surviving replicas carried the failed-over load.
  EXPECT_GT(r.cluster.node_served[1] + r.cluster.node_served[2], 0);
  const long long node_sum = std::accumulate(
      r.cluster.node_served.begin(), r.cluster.node_served.end(), 0LL);
  EXPECT_EQ(node_sum, r.served);
}

TEST(ClusterServing, FailoverRetriesRerunPrefillAndAccountReplayedTokens) {
  auto opt = cl_options(3);
  opt.base.arrival_rate_rps = 4.0;
  opt.cluster.health.enabled = true;
  opt.cluster.health.probe_interval_s = 0.5;
  opt.cluster.health.eject_after = 1;
  opt.cluster.failover_budget = 3;
  opt.cluster.failover_backoff_s = 0.05;
  opt.cluster.crash_node = 0;
  // Crash late enough that node 0 has sessions mid-decode: their generated
  // tokens are lost and must be accounted as replayed by the re-dispatch.
  opt.cluster.crash_time_s = 6.0;
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served + r.shed, 16);
  EXPECT_GE(r.cluster.failovers_node_crash, 1);
  EXPECT_GT(r.cluster.replayed_tokens, 0)
      << "mid-decode crash must lose generated tokens to replay";
  // Replayed tokens are attributed to the requests that failed over.
  long long per_request_replayed = 0;
  for (const auto& e : r.request_log) {
    if (e.retries > 0) per_request_replayed += 1;
  }
  EXPECT_GE(per_request_replayed, 1);
}

TEST(ClusterServing, ZeroFailoverBudgetShedsCrashedWork) {
  auto opt = cl_options(2);
  opt.base.arrival_rate_rps = 4.0;
  opt.cluster.failover_budget = 0;
  opt.cluster.crash_node = 0;
  opt.cluster.crash_time_s = 2.0;
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served + r.shed, 16);
  EXPECT_GE(r.shed_node_lost, 1)
      << "budget 0 turns every lost copy into a shed";
  bool saw_shed_outcome = false;
  for (const auto& e : r.request_log) {
    if (e.outcome == "shed:node_lost") saw_shed_outcome = true;
  }
  EXPECT_TRUE(saw_shed_outcome);
}

TEST(ClusterServing, WithoutHealthCheckingDeadDispatchesKeepHappening) {
  auto opt = cl_options(3);
  opt.base.arrival_rate_rps = 1.0;  // arrivals continue long after the crash
  opt.cluster.failover_budget = 4;
  opt.cluster.crash_node = 1;
  opt.cluster.crash_time_s = 1.0;
  ASSERT_FALSE(opt.cluster.health.enabled);
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served + r.shed, 16);
  // Naive round-robin keeps targeting the dead replica forever; each such
  // dispatch costs a detection delay and a failover.
  EXPECT_GE(r.cluster.failovers_dead_dispatch, 2);
  EXPECT_EQ(r.cluster.ejections, 0);
}

TEST(ClusterServing, HealthCheckingStopsRoutingToTheCrashedNode) {
  auto naive = cl_options(3);
  naive.base.arrival_rate_rps = 1.0;
  naive.cluster.failover_budget = 4;
  naive.cluster.crash_node = 1;
  naive.cluster.crash_time_s = 1.0;
  auto checked = naive;
  checked.cluster.health.enabled = true;
  checked.cluster.health.probe_interval_s = 0.25;
  checked.cluster.health.eject_after = 2;
  const auto rn = crun(eval::EngineKind::Fiddler, naive);
  const auto rc = crun(eval::EngineKind::Fiddler, checked);
  EXPECT_GE(rc.cluster.ejections, 1);
  EXPECT_EQ(rc.cluster.node_final_state[1], 0);
  EXPECT_LT(rc.cluster.failovers_dead_dispatch,
            rn.cluster.failovers_dead_dispatch)
      << "ejecting the dead node must cut dead dispatches";
  EXPECT_GE(rc.served, rn.served);
}

TEST(ClusterServing, SingleNodeClusterCrashShedsTheRemainingWork) {
  auto opt = cl_options(1);
  opt.base.arrival_rate_rps = 4.0;
  opt.cluster.failover_budget = 5;
  opt.cluster.crash_node = 0;
  opt.cluster.crash_time_s = 2.0;
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served + r.shed, 16);
  EXPECT_GE(r.shed, 1) << "no replica left: unserved work must shed";
  EXPECT_EQ(static_cast<long long>(r.shed), r.shed_node_lost);
}

TEST(ClusterServing, HedgedDispatchDuplicatesWinsAndCancelsCleanly) {
  auto opt = cl_options(2);
  opt.cluster.dispatch = DispatchPolicy::kLeastLoaded;
  opt.cluster.service_estimate_s = 1.0;
  opt.cluster.hedge_ttft_threshold_s = 1e-6;  // hedge every request
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served, 16);
  EXPECT_EQ(r.shed, 0);
  EXPECT_EQ(r.cluster.hedges, 16);
  // Exactly one copy wins per hedged request; the loser is cancelled with
  // its pins released (leaked-pin invariant DAOP_CHECKed inside run()).
  EXPECT_EQ(r.cluster.hedge_cancels, 16);
  EXPECT_EQ(r.cluster.dispatches, 32);
  EXPECT_LE(r.cluster.hedge_wins, 16);
}

TEST(ClusterServing, ConservationHoldsAcrossSeedsUnderFullChaos) {
  for (const std::uint64_t seed : {11ull, 222ull, 3333ull}) {
    auto opt = cl_options(4);
    opt.base.seed = seed;
    opt.node_hazards = sim::make_hazard_scenario("cluster", 0.9);
    opt.cluster.health.enabled = true;
    opt.cluster.health.probe_interval_s = 0.5;
    opt.cluster.health.eject_after = 1;
    opt.cluster.health.slow_probe_s = 30.0;
    opt.cluster.service_estimate_s = 2.0;
    opt.cluster.deadline_s = 120.0;
    opt.cluster.failover_budget = 2;
    const auto r = crun(eval::EngineKind::Daop, opt);
    EXPECT_EQ(r.served + r.shed, 16) << "seed " << seed;
    EXPECT_EQ(r.shed_node_lost + r.shed_deadline + r.shed_degraded,
              static_cast<long long>(r.shed))
        << "seed " << seed;
    // Failover re-dispatches are counted once per request in the log.
    long long log_failovers = 0;
    for (const auto& e : r.request_log) log_failovers += e.retries;
    EXPECT_EQ(log_failovers, r.cluster.failovers_total()) << "seed " << seed;
  }
}

TEST(ClusterServing, ConservationAndDeterminismHoldWithDynamicCache) {
  // The full-chaos conservation sweep again, with a per-node dynamic expert
  // cache re-migrating during decode. Node failover replays sessions on a
  // different node's cache; conservation and double-run bit-identity must
  // survive that. `frozen` is the control axis: zero cache activity,
  // identical plumbing.
  for (const cache::CachePolicy policy :
       {cache::CachePolicy::kFrozen, cache::CachePolicy::kLru,
        cache::CachePolicy::kReusePredictor}) {
    for (const std::uint64_t seed : {11ull, 222ull, 3333ull}) {
      auto opt = cl_options(4);
      opt.base.seed = seed;
      opt.node_hazards = sim::make_hazard_scenario("cluster", 0.9);
      opt.cluster.health.enabled = true;
      opt.cluster.health.probe_interval_s = 0.5;
      opt.cluster.health.eject_after = 1;
      opt.cluster.health.slow_probe_s = 30.0;
      opt.cluster.service_estimate_s = 2.0;
      opt.cluster.deadline_s = 120.0;
      opt.cluster.failover_budget = 2;
      opt.cluster.cache.policy = policy;
      opt.cluster.cache.realloc_interval = 2;
      SCOPED_TRACE(std::string(cache::cache_policy_name(policy)) + " seed " +
                   std::to_string(seed));
      const auto a = crun(eval::EngineKind::Daop, opt);
      const auto b = crun(eval::EngineKind::Daop, opt);

      EXPECT_EQ(a.served + a.shed, 16);
      EXPECT_EQ(a.shed_node_lost + a.shed_deadline + a.shed_degraded,
                static_cast<long long>(a.shed));
      // Bit-identity across repeats, cache ledger totals included.
      EXPECT_EQ(a.served, b.served);
      EXPECT_EQ(a.makespan_s, b.makespan_s);
      EXPECT_EQ(a.throughput_tps, b.throughput_tps);
      EXPECT_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s);
      EXPECT_EQ(a.cache_fills, b.cache_fills);
      EXPECT_EQ(a.cache_evictions, b.cache_evictions);
      EXPECT_EQ(a.cache_refusals, b.cache_refusals);
      EXPECT_EQ(a.cache_aborts, b.cache_aborts);
      EXPECT_EQ(a.cluster.failovers_total(), b.cluster.failovers_total());
      ASSERT_EQ(a.request_log.size(), b.request_log.size());
      for (std::size_t i = 0; i < a.request_log.size(); ++i) {
        EXPECT_EQ(a.request_log[i].outcome, b.request_log[i].outcome)
            << "request " << i;
      }
      if (policy == cache::CachePolicy::kFrozen) {
        EXPECT_EQ(a.cache_fills, 0);
        EXPECT_EQ(a.cache_evictions, 0);
      } else {
        // Paired ledger totals survive aggregation across nodes.
        EXPECT_EQ(a.cache_fills, a.cache_evictions);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Direct router harness: expert-affinity dispatch

TEST(ClusterRouterDirect, ExpertAffinityRoutesToTheWarmReplica) {
  const auto cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);

  // Node 0 holds experts {0,1}, node 1 holds experts {6,7} on every layer.
  auto placement_with = [&](std::vector<int> experts) {
    cache::Placement p(cfg.n_layers, cfg.n_experts);
    for (int l = 0; l < cfg.n_layers; ++l) {
      p.set_capacity(l, static_cast<int>(experts.size()));
      for (int e : experts) p.move_to_gpu(l, e);
    }
    return p;
  };
  std::vector<ClusterRouter::NodeSeat> seats(2);
  seats[0].engine = eval::make_engine(eval::EngineKind::Fiddler, costs);
  seats[0].initial = placement_with({0, 1});
  seats[1].engine = eval::make_engine(eval::EngineKind::Fiddler, costs);
  seats[1].initial = placement_with({6, 7});

  ClusterOptions opt;
  opt.dispatch = DispatchPolicy::kExpertAffinity;
  ClusterRouter router(std::move(seats), opt);

  // Requests alternate between the two expert neighbourhoods; affinity must
  // sticky-route each to its warm replica regardless of arrival order.
  for (int i = 0; i < 6; ++i) {
    ClusterRouter::Request req;
    req.id = i;
    req.arrival = 0.1 * i;
    req.trace = daop::testing::fixed_trace(cfg, 8, 4,
                                           i % 2 == 0 ? std::vector<int>{0, 1}
                                                      : std::vector<int>{6, 7});
    router.enqueue(std::move(req));
  }
  const auto outcomes = router.run();
  ASSERT_EQ(outcomes.size(), 6u);
  for (const auto& o : outcomes) {
    ASSERT_TRUE(o.served);
    EXPECT_EQ(o.node, o.id % 2 == 0 ? 0 : 1)
        << "request " << o.id << " routed cold";
  }
  EXPECT_EQ(router.total_leaked_pins(), 0);
}

TEST(ClusterRouterDirect, RunTwiceIsRejected) {
  const auto cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  std::vector<ClusterRouter::NodeSeat> seats(1);
  seats[0].engine = eval::make_engine(eval::EngineKind::Fiddler, costs);
  seats[0].initial = cache::Placement(cfg.n_layers, cfg.n_experts);
  ClusterRouter router(std::move(seats), ClusterOptions{});
  ClusterRouter::Request req;
  req.trace = daop::testing::fixed_trace(cfg, 4, 2, {0});
  router.enqueue(std::move(req));
  (void)router.run();
  EXPECT_THROW(router.enqueue(ClusterRouter::Request{}), CheckError);
  EXPECT_THROW(router.run(), CheckError);
}

}  // namespace
}  // namespace daop::cluster
