// Acceptance for the fleet-scale observability plane: a chaos cluster run
// with a time-series recorder attached fires at least one SLO burn-rate
// alert whose correlated incident names the injected crash, a calm run
// fires zero, the recorder is strictly passive (identical cluster results
// and byte-identical exports with it attached), and the daop-tseries/1
// export is bit-identical across re-runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cluster/serving.hpp"
#include "obs/alerting.hpp"
#include "obs/timeseries.hpp"

namespace daop::cluster {
namespace {

ClusterServingOptions chaos_options() {
  // Mirror of the CI alerting smoke scenario: three nodes, a crash that
  // strands in-flight work, and failover_budget 0 so the stranded request
  // sheds with reason node_lost — the shed-burn SLO's bad event.
  ClusterServingOptions opt;
  opt.n_nodes = 3;
  opt.base.arrival_rate_rps = 2.0;
  opt.base.n_requests = 20;
  opt.base.min_prompt = 16;
  opt.base.max_prompt = 32;
  opt.base.min_gen = 16;
  opt.base.max_gen = 32;
  opt.base.calibration_seqs = 4;
  opt.base.seed = 7;
  opt.cluster.max_concurrent_per_node = 2;
  opt.cluster.failover_budget = 0;
  opt.cluster.health.enabled = true;
  opt.cluster.crash_node = 1;
  opt.cluster.crash_time_s = 3.0;
  return opt;
}

ClusterServingOptions calm_options() {
  ClusterServingOptions opt = chaos_options();
  opt.cluster.crash_node = -1;
  opt.cluster.health.enabled = false;
  return opt;
}

obs::TimeSeriesRecorder make_cluster_recorder(int n_nodes, double w) {
  obs::TimeSeriesOptions o;
  o.window_s = w;
  std::vector<std::string> channels;
  for (int i = 0; i < n_nodes; ++i) {
    channels.push_back("node" + std::to_string(i));
  }
  channels.push_back("cluster");
  return obs::TimeSeriesRecorder(o, std::move(channels));
}

ClusterServingResult crun(const ClusterServingOptions& opt) {
  return run_cluster_serving_eval(eval::EngineKind::Fiddler,
                                  daop::testing::small_mixtral(),
                                  sim::a6000_i9_platform(),
                                  data::sharegpt_calibration(), opt);
}

std::string export_json(const obs::TimeSeriesRecorder& rec) {
  const obs::AlertReport rep =
      obs::evaluate_slo_rules(obs::default_slo_rules(), rec);
  const auto incidents =
      obs::correlate_incidents(rep, rec, 2.0 * rec.window_s());
  return obs::to_tseries_json(rec, rep, incidents);
}

TEST(ClusterAlerting, ChaosRunFiresAnAlertWhoseIncidentNamesTheCrash) {
  auto opt = chaos_options();
  auto rec = make_cluster_recorder(opt.n_nodes, 5.0);
  opt.base.tseries = &rec;
  const auto r = crun(opt);
  ASSERT_TRUE(rec.finalized());
  EXPECT_EQ(r.cluster.crashes, 1);
  ASSERT_GE(r.shed_node_lost, 1)
      << "scenario must strand in-flight work on the crashed node";

  const obs::AlertReport rep =
      obs::evaluate_slo_rules(obs::default_slo_rules(), rec);
  ASSERT_GE(rep.episodes.size(), 1u)
      << "a crash-induced shed must breach the shed-burn SLO";
  for (const auto& ep : rep.episodes) {
    // Detection happens within the multiwindow horizon of the slowest rule.
    EXPECT_LE(ep.detection_latency_s, 6.0 * rec.window_s())
        << ep.rule << " detection latency unbounded";
  }

  const auto incidents =
      obs::correlate_incidents(rep, rec, 2.0 * rec.window_s());
  ASSERT_EQ(incidents.size(), rep.episodes.size());
  bool crash_blamed = false;
  for (const auto& inc : incidents) {
    for (const std::string& cause : inc.causes) {
      if (cause.find("crash") != std::string::npos) crash_blamed = true;
    }
  }
  EXPECT_TRUE(crash_blamed)
      << "at least one incident must trace back to the injected crash";
}

TEST(ClusterAlerting, CalmRunFiresZeroAlerts) {
  auto opt = calm_options();
  auto rec = make_cluster_recorder(opt.n_nodes, 5.0);
  opt.base.tseries = &rec;
  const auto r = crun(opt);
  EXPECT_EQ(r.shed, 0);
  const obs::AlertReport rep =
      obs::evaluate_slo_rules(obs::default_slo_rules(), rec);
  EXPECT_TRUE(rep.episodes.empty())
      << "stock rules must stay silent on an in-budget run";
  EXPECT_TRUE(obs::correlate_incidents(rep, rec, 10.0).empty());
}

TEST(ClusterAlerting, RecorderIsPassiveOnClusterResults) {
  // The same chaos scenario with and without the recorder attached must
  // produce bit-identical simulated outcomes.
  const auto r_off = crun(chaos_options());

  auto opt = chaos_options();
  auto rec = make_cluster_recorder(opt.n_nodes, 5.0);
  opt.base.tseries = &rec;
  const auto r_on = crun(opt);

  EXPECT_EQ(r_off.makespan_s, r_on.makespan_s);
  EXPECT_EQ(r_off.served, r_on.served);
  EXPECT_EQ(r_off.shed, r_on.shed);
  EXPECT_EQ(r_off.ttft_s.mean, r_on.ttft_s.mean);
  EXPECT_EQ(r_off.latency_s.p99, r_on.latency_s.p99);
  EXPECT_EQ(r_off.cluster.failovers_node_crash,
            r_on.cluster.failovers_node_crash);
  ASSERT_EQ(r_off.request_log.size(), r_on.request_log.size());
  for (std::size_t i = 0; i < r_off.request_log.size(); ++i) {
    EXPECT_EQ(r_off.request_log[i].outcome, r_on.request_log[i].outcome);
  }
}

TEST(ClusterAlerting, ExportIsBitIdenticalAcrossReRuns) {
  auto run_once = [] {
    auto opt = chaos_options();
    auto rec = make_cluster_recorder(opt.n_nodes, 5.0);
    opt.base.tseries = &rec;
    crun(opt);
    return export_json(rec);
  };
  const std::string a = run_once();
  const std::string b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"daop-tseries/1\""), std::string::npos);
}

TEST(ClusterAlerting, PerNodeChannelsCarryTheCrashedNodesSeries) {
  auto opt = chaos_options();
  auto rec = make_cluster_recorder(opt.n_nodes, 5.0);
  opt.base.tseries = &rec;
  crun(opt);

  // The crashed node's channel stops early but still carries dispatches.
  double node1_dispatches = 0.0;
  for (const auto& w : rec.windows(1)) {
    const auto it = w.delta.families.find("daop_cluster_dispatches_total");
    if (it == w.delta.families.end()) continue;
    for (const auto& [key, v] : it->second.values) node1_dispatches += v;
  }
  EXPECT_GE(node1_dispatches, 1.0);

  // The cluster channel saw the crash in the causal event log.
  bool crash_event = false;
  for (const auto& e : rec.events()) {
    if (e.kind == "crash") crash_event = true;
  }
  EXPECT_TRUE(crash_event);
}

}  // namespace
}  // namespace daop::cluster
