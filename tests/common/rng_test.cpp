#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace daop {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBothEnds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(0, 7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(10);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaling) {
  Rng rng(12);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sq += (v - 3.0) * (v - 3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.06);
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(Rng, GammaMeanEqualsAlpha) {
  Rng rng(13);
  for (double alpha : {0.3, 1.0, 2.5, 10.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.gamma(alpha);
    EXPECT_NEAR(sum / n, alpha, alpha * 0.08) << "alpha=" << alpha;
  }
}

TEST(Rng, GammaRejectsNonPositiveAlpha) {
  Rng rng(14);
  EXPECT_THROW(rng.gamma(0.0), CheckError);
  EXPECT_THROW(rng.gamma(-1.0), CheckError);
}

TEST(Rng, DirichletSumsToOne) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.dirichlet_symmetric(0.5, 8);
    ASSERT_EQ(v.size(), 8U);
    double sum = 0.0;
    for (double x : v) {
      ASSERT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Rng, DirichletConcentrationControlsSkew) {
  Rng rng(16);
  auto max_mass = [&](double alpha) {
    double total = 0.0;
    for (int i = 0; i < 200; ++i) {
      const auto v = rng.dirichlet_symmetric(alpha, 8);
      total += *std::max_element(v.begin(), v.end());
    }
    return total / 200.0;
  };
  // Lower concentration => more skewed draws.
  EXPECT_GT(max_mass(0.1), max_mass(10.0));
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(17);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(18);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), CheckError);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.categorical(negative), CheckError);
}

TEST(Rng, ForkIsConsumptionIndependent) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) b.next_u64();  // consume b only
  Rng fa = a.fork(5);
  Rng fb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng root(42);
  Rng f0 = root.fork(0);
  Rng f1 = root.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f0.next_u64() == f1.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace daop
