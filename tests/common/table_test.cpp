#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace daop {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22    |"), std::string::npos);
}

TEST(TextTable, ColumnWidthFollowsWidestCell) {
  TextTable t({"h"});
  t.add_row({"very-long-cell"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| very-long-cell |"), std::string::npos);
  EXPECT_NE(s.find("| h              |"), std::string::npos);
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.render();
  // header rule + top + bottom + explicit = 4 separator lines
  int rules = 0;
  std::size_t pos = 0;
  while ((pos = s.find("+---", pos)) != std::string::npos) {
    ++rules;
    pos += 4;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(BarChart, ScalesToMax) {
  const std::string s =
      render_bar_chart({"x", "y"}, {1.0, 2.0}, "u", 10);
  // y gets the full width, x half.
  EXPECT_NE(s.find("y | ##########"), std::string::npos);
  EXPECT_NE(s.find("x | #####"), std::string::npos);
  EXPECT_NE(s.find("u"), std::string::npos);
}

TEST(BarChart, AllZeroValuesRenderEmptyBars) {
  const std::string s = render_bar_chart({"x"}, {0.0}, "", 10);
  EXPECT_EQ(s.find('#'), std::string::npos);
}

TEST(BarChart, RejectsMismatchedSizes) {
  EXPECT_THROW(render_bar_chart({"x"}, {1.0, 2.0}, ""), CheckError);
}

}  // namespace
}  // namespace daop
