#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace daop {
namespace {

FlagParser parse(std::vector<const char*> args) {
  args.insert(args.begin(), "daop_cli");
  return FlagParser(static_cast<int>(args.size()), args.data());
}

TEST(Cli, CommandAndPositionals) {
  const auto p = parse({"speed", "extra1", "extra2"});
  EXPECT_EQ(p.command(), "speed");
  ASSERT_EQ(p.positional().size(), 2U);
  EXPECT_EQ(p.positional()[0], "extra1");
}

TEST(Cli, SpaceAndEqualsForms) {
  const auto p = parse({"speed", "--ecr", "0.25", "--model=phi"});
  EXPECT_DOUBLE_EQ(p.get_double("ecr", 0.0), 0.25);
  EXPECT_EQ(p.get("model", ""), "phi");
}

TEST(Cli, BooleanFlags) {
  const auto p = parse({"speed", "--no-alloc", "--verbose=false"});
  EXPECT_TRUE(p.get_bool("no-alloc"));
  EXPECT_FALSE(p.get_bool("verbose", true));
  EXPECT_FALSE(p.get_bool("absent"));
  EXPECT_TRUE(p.get_bool("absent", true));
}

TEST(Cli, IntParsingAndValidation) {
  const auto p = parse({"speed", "--seqs", "12", "--bad", "12x"});
  EXPECT_EQ(p.get_int("seqs", 0), 12);
  EXPECT_EQ(p.get_int("absent", 7), 7);
  EXPECT_THROW(p.get_int("bad", 0), CheckError);
}

TEST(Cli, DoubleValidation) {
  const auto p = parse({"speed", "--rate", "0.5e-1", "--bad", "abc"});
  EXPECT_DOUBLE_EQ(p.get_double("rate", 0.0), 0.05);
  EXPECT_THROW(p.get_double("bad", 0.0), CheckError);
}

TEST(Cli, BooleanValidation) {
  const auto p = parse({"speed", "--flag", "maybe"});
  EXPECT_THROW(p.get_bool("flag"), CheckError);
}

TEST(Cli, DuplicateFlagRejected) {
  EXPECT_THROW(parse({"speed", "--x", "1", "--x", "2"}), CheckError);
}

TEST(Cli, UnusedFlagsReported) {
  const auto p = parse({"speed", "--used", "1", "--typo", "2"});
  EXPECT_EQ(p.get_int("used", 0), 1);
  const auto unused = p.unused();
  ASSERT_EQ(unused.size(), 1U);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, HasMarksUsed) {
  const auto p = parse({"speed", "--present"});
  EXPECT_TRUE(p.has("present"));
  EXPECT_FALSE(p.has("absent"));
  EXPECT_TRUE(p.unused().empty());
}

TEST(Cli, FlagValueFollowedByFlag) {
  // "--a" followed by "--b": a is boolean, b captures "x".
  const auto p = parse({"cmd", "--a", "--b", "x"});
  EXPECT_TRUE(p.get_bool("a"));
  EXPECT_EQ(p.get("b", ""), "x");
}

TEST(Cli, NoCommandIsEmpty) {
  const auto p = parse({});
  EXPECT_TRUE(p.command().empty());
}

// ---------------------------------------------------------------------------
// Output-flag support matrix: every report flag must be available in every
// reporting mode. This is the regression net for the historical asymmetry
// where serve-cluster silently lacked --profile-out — the write helpers in
// daop_cli CHECK against this matrix at runtime, and this test pins the
// matrix itself to "all flags, all modes".

TEST(CliOutputMatrix, EveryOutputFlagIsSupportedInEveryMode) {
  ASSERT_FALSE(cli_output_flag_matrix().empty());
  ASSERT_FALSE(cli_output_modes().empty());
  for (const CliOutputFlagSpec& spec : cli_output_flag_matrix()) {
    for (const std::string& mode : cli_output_modes()) {
      EXPECT_TRUE(cli_output_flag_supported(spec.flag, mode))
          << "--" << spec.flag << " missing from mode '" << mode << "'";
    }
  }
}

TEST(CliOutputMatrix, CoversTheThreeReportFamilies) {
  bool metrics = false, profile = false, tseries = false;
  for (const CliOutputFlagSpec& spec : cli_output_flag_matrix()) {
    if (spec.flag == "metrics-out") metrics = true;
    if (spec.flag == "profile-out") profile = true;
    if (spec.flag == "tseries-out") tseries = true;
  }
  EXPECT_TRUE(metrics);
  EXPECT_TRUE(profile);
  EXPECT_TRUE(tseries);
}

TEST(CliOutputMatrix, UnknownFlagsAndModesAreUnsupported) {
  EXPECT_FALSE(cli_output_flag_supported("metrics-out", "sweep"));
  EXPECT_FALSE(cli_output_flag_supported("bogus-out", "serve"));
}

TEST(CliOutputMatrix, CompanionFlagsRideWithTheirPrimary) {
  for (const CliOutputFlagSpec& spec : cli_output_flag_matrix()) {
    if (spec.flag != "tseries-out") continue;
    bool window = false, rules = false;
    for (const std::string& c : spec.companions) {
      if (c == "tseries-window") window = true;
      if (c == "slo-rules") rules = true;
    }
    EXPECT_TRUE(window) << "--tseries-window must ride with --tseries-out";
    EXPECT_TRUE(rules) << "--slo-rules must ride with --tseries-out";
  }
}

}  // namespace
}  // namespace daop
