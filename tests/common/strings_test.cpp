#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace daop {
namespace {

TEST(Strings, FmtF) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(3.14159, 0), "3");
  EXPECT_EQ(fmt_f(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt_f(2.0, 3), "2.000");
}

TEST(Strings, FmtPct) {
  EXPECT_EQ(fmt_pct(0.469), "46.9%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(fmt_pct(0.05, 2), "5.00%");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, PadLeftAlign) {
  EXPECT_EQ(pad("ab", 5), "ab   ");
  EXPECT_EQ(pad("ab", 5, false), "   ab");
  EXPECT_EQ(pad("abcdef", 3), "abcdef");  // never truncates
}

TEST(Strings, FmtBytes) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt_bytes(352.0 * 1024 * 1024), "352.0 MiB");
  EXPECT_EQ(fmt_bytes(48.0 * 1024 * 1024 * 1024), "48.0 GiB");
}

}  // namespace
}  // namespace daop
