#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace daop {
namespace {

TEST(Stats, SummaryKnownValues) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev
  EXPECT_NEAR(s.ci95, 1.96 * s.stddev / std::sqrt(8.0), 1e-12);
}

TEST(Stats, SingleValueHasNoDispersion) {
  const std::vector<double> v = {3.5};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Stats, SummarizeRejectsEmpty) {
  const std::vector<double> v;
  EXPECT_THROW(summarize(v), CheckError);
}

TEST(Stats, PercentileEndpointsAndMedian) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};  // unsorted input
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.35), 3.5);
}

TEST(Stats, PercentileSingleValueIsThatValue) {
  const std::vector<double> v = {7.25};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.25);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 7.25);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 7.25);
}

TEST(Stats, PercentileWithDuplicates) {
  // A run of duplicates pins every interior percentile to that value.
  const std::vector<double> v = {1.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Stats, SummaryFillsExactPercentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.p50, percentile(v, 0.50));
  EXPECT_DOUBLE_EQ(s.p90, percentile(v, 0.90));
  EXPECT_DOUBLE_EQ(s.p99, percentile(v, 0.99));
  // Order statistics of 1..100 with linear interpolation.
  EXPECT_DOUBLE_EQ(s.p50, 50.5);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_GE(s.p99, s.p90);
  EXPECT_GE(s.p90, s.p50);
}

TEST(Stats, PearsonPerfectAndAnti) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSideIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

}  // namespace
}  // namespace daop
