#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace daop {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0U);  // inline mode spawns no threads
  long long sum = 0;
  pool.parallel_for(100, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResultIndependentOfThreadCount) {
  auto compute = [](unsigned threads) {
    ThreadPool pool(threads);
    std::vector<double> out(500);
    pool.parallel_for(500, [&](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 1.5;
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(4));
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::int64_t i) {
                                   if (i == 37) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(3);
  try {
    pool.parallel_for(10, [](std::int64_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(50, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, ManyIterationsFewThreads) {
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  pool.parallel_for(100000, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 100000LL * 99999 / 2);
}

TEST(ThreadPool, EmptyAndNegativeRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](std::int64_t) { count.fetch_add(1); });
  pool.parallel_for(-5, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ShutdownJoinsWorkersAndIsIdempotent) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
  pool.shutdown();
  pool.shutdown();  // second call must be a safe no-op
}

TEST(ThreadPool, RunsInlineAfterShutdown) {
  // Lifetime hygiene for ThreadPool::global(): code running during static
  // teardown may still hit the pool after an explicit shutdown(), and must
  // get correct (inline) execution rather than a hang or a crash.
  ThreadPool pool(3);
  pool.shutdown();
  std::atomic<long long> sum{0};
  pool.parallel_for(1000, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 1000LL * 999 / 2);
}

TEST(ThreadPool, PropagatesExceptionsAfterShutdown) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](std::int64_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

}  // namespace
}  // namespace daop
