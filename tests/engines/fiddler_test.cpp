#include "engines/fiddler.hpp"

#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "engines/fetch_engine.hpp"
#include "sim/device.hpp"

namespace daop::engines {
namespace {

using daop::testing::fixed_trace;
using daop::testing::prefix_placement;
using daop::testing::small_mixtral;

class FiddlerTest : public ::testing::Test {
 protected:
  FiddlerTest()
      : cfg_(small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_F(FiddlerTest, NeverMigratesExpertWeights) {
  const auto tr = fixed_trace(cfg_, 4, 6, {4, 5});
  const auto placement = prefix_placement(cfg_, 2);
  FiddlerEngine engine(costs_);
  const auto r = engine.run(tr, placement);
  EXPECT_EQ(r.counters.expert_migrations, 0);
  EXPECT_EQ(r.counters.prefill_swaps, 0);
}

TEST_F(FiddlerTest, MissingExpertsExecuteOnCpu) {
  const auto tr = fixed_trace(cfg_, 2, 3, {0, 5});  // 0 resident, 5 not
  const auto placement = prefix_placement(cfg_, 2);
  FiddlerEngine engine(costs_);
  const auto r = engine.run(tr, placement);
  // Expert 5: once per layer in prefill + per decode step per layer.
  EXPECT_EQ(r.counters.cpu_expert_execs, cfg_.n_layers + 3 * cfg_.n_layers);
  EXPECT_EQ(r.counters.gpu_expert_execs, cfg_.n_layers + 3 * cfg_.n_layers);
}

TEST_F(FiddlerTest, AllResidentRunsEntirelyOnGpu) {
  const auto tr = fixed_trace(cfg_, 2, 3, {0, 1});
  const auto placement = prefix_placement(cfg_, 2);
  FiddlerEngine engine(costs_);
  const auto r = engine.run(tr, placement);
  EXPECT_EQ(r.counters.cpu_expert_execs, 0);
  EXPECT_EQ(r.counters.cache_misses, 0);
}

TEST_F(FiddlerTest, CpuExecutionBeatsMigrationBoundFetching) {
  // The paper's core claim for Fiddler (§II-B / Fig. 8): executing a missing
  // expert on the CPU beats fetching its weights. Use alternating selections
  // so the fetch baseline cannot amortize via its LRU cache.
  const auto tr = daop::testing::alternating_trace(cfg_, 2, 6, {4, 5}, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);
  FiddlerEngine fiddler(costs_);
  auto ondemand = make_moe_ondemand(costs_);
  const auto rf = fiddler.run(tr, placement);
  const auto ro = ondemand->run(tr, placement);
  EXPECT_LT(rf.decode_s, ro.decode_s);
}

TEST_F(FiddlerTest, GpuAndCpuExpertsOverlapWithinLayer) {
  // One resident + one CPU expert per layer: layer time should be close to
  // the CPU path alone (GPU expert hides under it), far below the sum.
  const auto tr = fixed_trace(cfg_, 1, 4, {0, 5});
  const auto placement = prefix_placement(cfg_, 2);
  FiddlerEngine engine(costs_);
  const auto r = engine.run(tr, placement);
  const double cpu_path = costs_.activations_d2h(1) + costs_.expert_cpu() +
                          costs_.activations_h2d(1);
  const double per_layer = r.decode_s / (4.0 * cfg_.n_layers);
  EXPECT_LT(per_layer, costs_.nonmoe_gpu(5) + cpu_path * 1.10);
}

TEST_F(FiddlerTest, StaticPlacementUnchangedByRun) {
  const auto tr = fixed_trace(cfg_, 2, 4, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);
  FiddlerEngine engine(costs_);
  engine.run(tr, placement);
  // Fiddler never reallocates: residents still 0..1 in every layer.
  for (int l = 0; l < cfg_.n_layers; ++l) {
    EXPECT_TRUE(placement.on_gpu(l, 0));
    EXPECT_TRUE(placement.on_gpu(l, 1));
    EXPECT_FALSE(placement.on_gpu(l, 6));
  }
}

TEST_F(FiddlerTest, DecodeSlowerWhenMoreExpertsMiss) {
  const auto placement = prefix_placement(cfg_, 2);
  FiddlerEngine engine(costs_);
  const auto one_miss = engine.run(fixed_trace(cfg_, 1, 4, {0, 5}), placement);
  const auto two_miss = engine.run(fixed_trace(cfg_, 1, 4, {4, 5}), placement);
  EXPECT_LT(one_miss.decode_s, two_miss.decode_s);
}

}  // namespace
}  // namespace daop::engines
