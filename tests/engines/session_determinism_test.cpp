// Single-sequence determinism regression for the session refactor: every
// engine driven through Engine::run() must produce bit-identical RunResults
// (times, energy, all counters) and byte-identical Chrome-trace exports
// versus the committed golden snapshots, which were captured from the
// pre-session monolithic run() loops. Any scheduling-order change — however
// plausible-looking — fails this test.
//
// Regenerate (only after an INTENTIONAL scheduling/tracing change) with:
//   DAOP_UPDATE_GOLDENS=1 ./session_determinism_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"
#include "obs/span_tracer.hpp"
#include "sim/trace_export.hpp"

#ifndef DAOP_GOLDEN_DIR
#error "DAOP_GOLDEN_DIR must be defined by the build"
#endif

namespace daop::engines {
namespace {

/// Hexfloat rendering: two doubles render identically iff they are
/// bit-identical (modulo -0.0/NaN, which the engines never produce here).
std::string hexf(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string run_snapshot(eval::EngineKind kind, const data::WorkloadSpec& wl,
                         std::uint64_t seed) {
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);

  const data::TraceGenerator gen(wl, cfg.n_layers, cfg.n_experts, cfg.top_k,
                                 seed);
  const auto trace = gen.generate(0, 24, 12);
  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, seed ^ 0xCA11Bu);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 6));

  // small_mixtral has 4 layers; lower min_predict_layer so DAOP's
  // prediction/pre-calc path is actually exercised by the snapshot.
  core::DaopConfig dcfg;
  dcfg.min_predict_layer = 1;
  auto engine = eval::make_engine(kind, costs, dcfg);
  obs::SpanTracer tracer;
  engine->set_tracer(&tracer);
  sim::Timeline tl;
  tl.set_record_intervals(true);
  const RunResult r = engine->run(trace, placement, &tl);
  const std::string json = sim::to_chrome_trace_json(tl, &tracer);

  std::ostringstream os;
  os << "[" << engine_kind_name(kind) << " | " << wl.name << " | seed "
     << seed << "]\n";
  os << "tokens=" << r.prompt_tokens << "+" << r.generated_tokens << "\n";
  os << "prefill_s=" << hexf(r.prefill_s) << "\n";
  os << "decode_s=" << hexf(r.decode_s) << "\n";
  os << "total_s=" << hexf(r.total_s) << "\n";
  os << "tokens_per_s=" << hexf(r.tokens_per_s) << "\n";
  os << "decode_tokens_per_s=" << hexf(r.decode_tokens_per_s) << "\n";
  os << "energy=" << hexf(r.energy.gpu_j) << " " << hexf(r.energy.cpu_j)
     << " " << hexf(r.energy.pcie_j) << " " << hexf(r.energy.base_j) << " "
     << hexf(r.energy.total_j) << " " << hexf(r.energy.avg_power_w) << "\n";
  os << "tokens_per_kj=" << hexf(r.tokens_per_kj) << "\n";
  const EngineCounters& c = r.counters;
  os << "counters=" << c.expert_migrations << "," << c.gpu_expert_execs << ","
     << c.cpu_expert_execs << "," << c.cache_hits << "," << c.cache_misses
     << "," << c.prefetch_hits << "," << c.predictions << ","
     << c.mispredictions << "," << c.degradations << "," << c.prefill_swaps
     << "," << c.decode_swaps << "," << c.skipped_experts << ","
     << c.migration_retries << "," << c.migration_aborts << ","
     << c.stale_precalcs << "," << hexf(c.hazard_stall_s) << "\n";
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(fnv1a(json)));
  os << "chrome_trace_fnv1a=" << hash << "\n";
  return os.str();
}

std::string all_snapshots() {
  const std::vector<eval::EngineKind> kinds = eval::extended_baseline_engines();
  const std::vector<data::WorkloadSpec> workloads = {data::c4(),
                                                     data::gsm8k()};
  const std::uint64_t seeds[] = {7, 23, 123};
  std::string out;
  for (const auto kind : kinds) {
    for (const auto& wl : workloads) {
      for (const auto seed : seeds) {
        out += run_snapshot(kind, wl, seed);
        out += "\n";
      }
    }
  }
  return out;
}

const char* kGoldenPath = DAOP_GOLDEN_DIR "/session_runs.golden";

TEST(SessionDeterminism, MatchesPreRefactorGoldens) {
  const std::string actual = all_snapshots();
  if (std::getenv("DAOP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream f(kGoldenPath);
    ASSERT_TRUE(f.good()) << "cannot write " << kGoldenPath;
    f << actual;
    GTEST_SKIP() << "goldens regenerated at " << kGoldenPath;
  }
  std::ifstream f(kGoldenPath);
  ASSERT_TRUE(f.good()) << "missing golden file " << kGoldenPath
                        << " (regenerate with DAOP_UPDATE_GOLDENS=1)";
  std::ostringstream expected;
  expected << f.rdbuf();
  // Compare block by block so a failure names the first diverging run
  // instead of dumping the whole 48-run snapshot.
  std::istringstream ea(expected.str());
  std::istringstream aa(actual);
  std::string eline;
  std::string aline;
  std::string block = "<header>";
  int line_no = 0;
  while (std::getline(ea, eline)) {
    ++line_no;
    if (!eline.empty() && eline.front() == '[') block = eline;
    ASSERT_TRUE(static_cast<bool>(std::getline(aa, aline)))
        << "snapshot truncated in " << block;
    ASSERT_EQ(eline, aline) << "first divergence in " << block << " (line "
                            << line_no << ")";
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(aa, aline)))
      << "snapshot has extra content after " << block;
}

/// Same engine, same inputs, twice in a row: engines must not carry hidden
/// state across runs (a session leak would show up here).
TEST(SessionDeterminism, RepeatedRunsAreBitIdentical) {
  for (const auto kind : eval::extended_baseline_engines()) {
    const std::string a = run_snapshot(kind, data::c4(), 7);
    const std::string b = run_snapshot(kind, data::c4(), 7);
    EXPECT_EQ(a, b) << engine_kind_name(kind);
  }
}

}  // namespace
}  // namespace daop::engines
