// Tests for the related-work engines beyond the paper's Fig. 9 set:
// EdgeMoE (quantized predictive preloading) and MoE-Infinity
// (activation-aware sequence-pattern prefetching).
#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "engines/fetch_engine.hpp"
#include "eval/speed.hpp"
#include "sim/device.hpp"

namespace daop::engines {
namespace {

using daop::testing::alternating_trace;
using daop::testing::fixed_trace;
using daop::testing::prefix_placement;
using daop::testing::small_mixtral;

class ExtendedEnginesTest : public ::testing::Test {
 protected:
  ExtendedEnginesTest()
      : cfg_(small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_F(ExtendedEnginesTest, EdgeMoeTransfersQuantizedWeights) {
  // Same churn workload: EdgeMoE's ~4-bit transfers must beat both the fp16
  // on-demand fetcher and the half-size Mixtral-Offloading.
  const auto tr = alternating_trace(cfg_, 2, 6, {4, 5}, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);
  const auto re = make_edgemoe(costs_)->run(tr, placement);
  const auto ro = make_moe_ondemand(costs_)->run(tr, placement);
  const auto rm = make_mixtral_offloading(costs_)->run(tr, placement);
  EXPECT_LT(re.total_s, ro.total_s);
  EXPECT_LT(re.total_s, rm.total_s);
  EXPECT_EQ(re.counters.cpu_expert_execs, 0);
}

TEST_F(ExtendedEnginesTest, MoeInfinityPrefetchesSequenceDominantExperts) {
  // The sequence's dominant experts are {4,5} (seen in prefill); decode
  // keeps using them. MoE-Infinity prefetches them ahead of each layer.
  const auto tr = fixed_trace(cfg_, 8, 4, {4, 5});
  const auto placement = prefix_placement(cfg_, 2);
  const auto r = make_moe_infinity(costs_)->run(tr, placement);
  // After prefill warms the cache, decode is all hits.
  EXPECT_EQ(r.counters.cpu_expert_execs, 0);
  EXPECT_GT(r.counters.cache_hits, 0);
}

TEST_F(ExtendedEnginesTest, MoeInfinityHelpsWhenPatternHoldsNotWhenItChurns) {
  const auto placement = prefix_placement(cfg_, 2);
  // Pattern-stable workload: sequence-pattern prefetch ≈ on-demand or
  // better.
  const auto stable = fixed_trace(cfg_, 4, 6, {6, 7});
  const auto mi_stable = make_moe_infinity(costs_)->run(stable, placement);
  const auto od_stable = make_moe_ondemand(costs_)->run(stable, placement);
  EXPECT_LE(mi_stable.total_s, od_stable.total_s * 1.001);

  // Churning workload (decode alternates away from the prefill pattern):
  // sequence-pattern prefetch cannot help the off-pattern half.
  const auto churn = alternating_trace(cfg_, 4, 6, {6, 7}, {2, 3});
  const auto mi_churn = make_moe_infinity(costs_)->run(churn, placement);
  EXPECT_GT(mi_churn.decode_s, mi_stable.decode_s);
}

TEST_F(ExtendedEnginesTest, RegisteredInEvalHarness) {
  EXPECT_STREQ(eval::engine_kind_name(eval::EngineKind::EdgeMoE), "EdgeMoE");
  EXPECT_STREQ(eval::engine_kind_name(eval::EngineKind::MoEInfinity),
               "MoE-Infinity");
  const auto extended = eval::extended_baseline_engines();
  EXPECT_EQ(extended.size(), 8U);
  // The extended list is a superset of the paper's Fig. 9 list.
  for (auto kind : eval::paper_baseline_engines()) {
    EXPECT_NE(std::find(extended.begin(), extended.end(), kind),
              extended.end());
  }
  const auto engine = eval::make_engine(eval::EngineKind::MoEInfinity, costs_);
  EXPECT_EQ(engine->name(), "MoE-Infinity");
}

TEST_F(ExtendedEnginesTest, AllFetchEnginesStillMigrationBoundVsDaopStory) {
  // Sanity: even the smartest prefetcher cannot mask a 40 ms migration
  // under ~1 ms blocks (paper Table I insight). Quantized EdgeMoE gets
  // within ~4x of block time; none reach hit-level latency.
  const auto tr = alternating_trace(cfg_, 2, 6, {4, 5}, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);
  const double all_hit_layer =
      costs_.nonmoe_gpu(8) + 2 * costs_.expert_gpu();
  for (auto make : {make_pregated_moe, make_edgemoe, make_moe_infinity}) {
    const auto r = make(costs_)->run(tr, placement);
    const double per_layer = r.decode_s / (6.0 * cfg_.n_layers);
    EXPECT_GT(per_layer, 2.0 * all_hit_layer) << make(costs_)->name();
  }
}

}  // namespace
}  // namespace daop::engines
