#include "engines/batch.hpp"

#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "core/daop_engine.hpp"
#include "data/trace_generator.hpp"
#include "engines/fiddler.hpp"
#include "sim/device.hpp"

namespace daop::engines {
namespace {

using daop::testing::prefix_placement;
using daop::testing::small_mixtral;

class BatchTest : public ::testing::Test {
 protected:
  BatchTest()
      : cfg_(small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  // Generations must be long enough for DAOP's prefill swap migrations to
  // amortize (the same condition the paper's in/out-256 setting satisfies).
  std::vector<data::SequenceTrace> make_batch(int b, int prompt = 16,
                                              int gen = 96) {
    const data::TraceGenerator gen_obj(data::c4(), cfg_.n_layers,
                                       cfg_.n_experts, cfg_.top_k, 47);
    std::vector<data::SequenceTrace> traces;
    for (int i = 0; i < b; ++i) traces.push_back(gen_obj.generate(i, prompt, gen));
    return traces;
  }

  cache::Placement calibrated(double ecr) {
    const data::TraceGenerator calib(data::sharegpt_calibration(),
                                     cfg_.n_layers, cfg_.n_experts, cfg_.top_k,
                                     13);
    return cache::init_placement_calibrated(
        cfg_.n_layers, cfg_.n_experts, ecr,
        cache::calibrate_activation_counts(calib, 6));
  }

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_F(BatchTest, BatchOfOneMatchesSingleSequenceFiddlerClosely) {
  const auto traces = make_batch(1);
  const auto placement = calibrated(0.469);
  const auto rb = run_fiddler_batch(costs_, traces, placement);
  FiddlerEngine single(costs_);
  const auto rs = single.run(traces[0], placement);
  // The batched path merges per-layer CPU experts into one transfer pair,
  // so times agree only approximately.
  EXPECT_NEAR(rb.total_s, rs.total_s, rs.total_s * 0.05);
  EXPECT_EQ(rb.tokens_generated, rs.generated_tokens);
}

TEST_F(BatchTest, AggregateThroughputGrowsWithBatch) {
  const auto placement = calibrated(0.469);
  double prev_agg = 0.0;
  for (int b : {1, 2, 4, 8}) {
    const auto traces = make_batch(b);
    const auto rf = run_fiddler_batch(costs_, traces, placement);
    EXPECT_GT(rf.tokens_per_s, prev_agg) << "batch " << b;
    prev_agg = rf.tokens_per_s;
  }
}

TEST_F(BatchTest, PerSequenceRateDegradesWithBatch) {
  const auto placement = calibrated(0.469);
  const auto r1 = run_fiddler_batch(costs_, make_batch(1), placement);
  const auto r8 = run_fiddler_batch(costs_, make_batch(8), placement);
  EXPECT_LT(r8.per_seq_tokens_per_s, r1.per_seq_tokens_per_s);
  // But batching is worth it in aggregate.
  EXPECT_GT(r8.tokens_per_s, r1.tokens_per_s);
}

TEST_F(BatchTest, DaopBeatsFiddlerAtBatchOne) {
  // Enable prediction from layer 1 (the 4-layer test model sits below the
  // paper's min_predict_layer of 5, which would disable pre-calculation).
  // DAOP's mechanisms are batch-1 optimizations: at larger batches the
  // serialized CPU pre-calculation of batch tokens stops amortizing (see
  // bench_ext_batching), so the win is asserted where the paper claims it.
  core::DaopConfig dc;
  dc.min_predict_layer = 1;
  const auto placement = calibrated(0.469);
  const auto traces = make_batch(1);
  const auto rf = run_fiddler_batch(costs_, traces, placement);
  const auto rd = run_daop_batch(costs_, dc, traces, placement);
  EXPECT_GT(rd.tokens_per_s, rf.tokens_per_s);
}

TEST_F(BatchTest, DaopAdvantageDilutesAsBatchGrows) {
  // One shared cache cannot be sequence-specific for everyone: DAOP's edge
  // over Fiddler shrinks as the batch unions more activation patterns.
  core::DaopConfig dc;
  dc.min_predict_layer = 1;
  const auto placement = calibrated(0.469);
  auto edge = [&](int b) {
    const auto traces = make_batch(b);
    const auto rf = run_fiddler_batch(costs_, traces, placement);
    const auto rd = run_daop_batch(costs_, dc, traces, placement);
    return rd.tokens_per_s / rf.tokens_per_s;
  };
  EXPECT_GT(edge(1), edge(8));
}

TEST_F(BatchTest, Deterministic) {
  const auto placement = calibrated(0.5);
  const auto traces = make_batch(3);
  const auto a = run_daop_batch(costs_, core::DaopConfig{}, traces, placement);
  const auto b = run_daop_batch(costs_, core::DaopConfig{}, traces, placement);
  EXPECT_DOUBLE_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.counters.cpu_expert_execs, b.counters.cpu_expert_execs);
}

TEST_F(BatchTest, RejectsHeterogeneousBatch) {
  auto traces = make_batch(2);
  traces[1] = make_batch(1, 16, 20)[0];  // different gen_len
  const auto placement = calibrated(0.5);
  EXPECT_THROW(run_fiddler_batch(costs_, traces, placement), CheckError);
  EXPECT_THROW(run_daop_batch(costs_, core::DaopConfig{}, traces, placement),
               CheckError);
}

TEST_F(BatchTest, EnergyWithinPhysicalBounds) {
  const auto placement = calibrated(0.469);
  for (int b : {1, 4}) {
    const auto traces = make_batch(b);
    for (const auto& r :
         {run_fiddler_batch(costs_, traces, placement),
          run_daop_batch(costs_, core::DaopConfig{}, traces, placement)}) {
      const auto& p = cm_.platform();
      const double min_power =
          p.gpu.idle_power_w + p.cpu.idle_power_w + p.base_power_w;
      const double max_power = p.gpu.active_power_w + p.cpu.active_power_w +
                               p.base_power_w + 15.0;
      EXPECT_GE(r.energy.avg_power_w, min_power * 0.999) << r.engine;
      EXPECT_LE(r.energy.avg_power_w, max_power * 1.001) << r.engine;
      EXPECT_GT(r.tokens_per_kj, 0.0) << r.engine;
    }
  }
}

TEST_F(BatchTest, TimeAccountingConsistent) {
  const auto placement = calibrated(0.469);
  const auto traces = make_batch(3);
  const auto r = run_daop_batch(costs_, core::DaopConfig{}, traces, placement);
  EXPECT_GT(r.prefill_s, 0.0);
  EXPECT_GT(r.total_s, r.prefill_s);
  EXPECT_EQ(r.batch, 3);
  EXPECT_EQ(r.tokens_generated, 3 * traces[0].gen_len);
  EXPECT_NEAR(r.per_seq_tokens_per_s * 3.0, r.tokens_per_s, 1e-9);
}

TEST_F(BatchTest, CountersConsistent) {
  const auto placement = calibrated(0.469);
  const auto traces = make_batch(4);
  const auto r = run_fiddler_batch(costs_, traces, placement);
  // Decode hit/miss counts every (sequence, layer, selection).
  const auto prefill_counts = traces[0].activation_counts(data::Phase::Prefill);
  long long decode_uses =
      4LL * traces[0].gen_len * cfg_.n_layers * cfg_.top_k;
  EXPECT_GE(r.counters.cache_hits + r.counters.cache_misses, decode_uses);
  EXPECT_EQ(r.counters.expert_migrations, 0);  // Fiddler never migrates
}

}  // namespace
}  // namespace daop::engines
