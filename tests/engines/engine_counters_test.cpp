// EngineCounters::add must aggregate EVERY field — a counter silently
// dropped by the aggregation path would corrupt serving / multi-sequence
// totals without failing any behavioural test. Each field gets a distinct
// sentinel so a swapped pair is also caught, and a sizeof guard forces this
// test to be revisited whenever a field is added.
//
// counter_profile_metrics (the profiler's flat view of the counters, and the
// metric names perf-gate baselines pin) gets the same treatment: every field
// present exactly once, mapped to the right name, in declaration order.
#include <gtest/gtest.h>

#include <set>

#include "engines/engine.hpp"
#include "engines/run_metrics.hpp"

namespace daop::engines {
namespace {

EngineCounters distinct_sentinels(long long base) {
  EngineCounters c;
  c.expert_migrations = base + 1;
  c.gpu_expert_execs = base + 2;
  c.cpu_expert_execs = base + 3;
  c.cache_hits = base + 4;
  c.cache_misses = base + 5;
  c.prefetch_hits = base + 6;
  c.predictions = base + 7;
  c.mispredictions = base + 8;
  c.degradations = base + 9;
  c.prefill_swaps = base + 10;
  c.decode_swaps = base + 11;
  c.skipped_experts = base + 12;
  c.migration_retries = base + 13;
  c.migration_aborts = base + 14;
  c.stale_precalcs = base + 15;
  c.pin_refusals = base + 16;
  c.preemptions = base + 17;
  c.preempt_resumes = base + 18;
  c.degraded_sessions = base + 19;
  c.hazard_stall_s = static_cast<double>(base) + 19.5;
  return c;
}

// If this fails a field was added to EngineCounters: extend
// distinct_sentinels() and the per-field checks below, then bump the size.
static_assert(sizeof(EngineCounters) == 19 * sizeof(long long) +
                                            sizeof(double),
              "EngineCounters changed shape; update this test");

TEST(EngineCounters, AddAggregatesEveryField) {
  EngineCounters acc = distinct_sentinels(1000);
  const EngineCounters other = distinct_sentinels(2000);
  acc.add(other);
  EXPECT_EQ(acc.expert_migrations, 3002);
  EXPECT_EQ(acc.gpu_expert_execs, 3004);
  EXPECT_EQ(acc.cpu_expert_execs, 3006);
  EXPECT_EQ(acc.cache_hits, 3008);
  EXPECT_EQ(acc.cache_misses, 3010);
  EXPECT_EQ(acc.prefetch_hits, 3012);
  EXPECT_EQ(acc.predictions, 3014);
  EXPECT_EQ(acc.mispredictions, 3016);
  EXPECT_EQ(acc.degradations, 3018);
  EXPECT_EQ(acc.prefill_swaps, 3020);
  EXPECT_EQ(acc.decode_swaps, 3022);
  EXPECT_EQ(acc.skipped_experts, 3024);
  EXPECT_EQ(acc.migration_retries, 3026);
  EXPECT_EQ(acc.migration_aborts, 3028);
  EXPECT_EQ(acc.stale_precalcs, 3030);
  EXPECT_EQ(acc.pin_refusals, 3032);
  EXPECT_EQ(acc.preemptions, 3034);
  EXPECT_EQ(acc.preempt_resumes, 3036);
  EXPECT_EQ(acc.degraded_sessions, 3038);
  EXPECT_DOUBLE_EQ(acc.hazard_stall_s, 3039.0);
}

TEST(EngineCounters, ProfileMetricsCoverEveryFieldExactlyOnce) {
  // The same sizeof guard as above protects this list: adding a field to
  // EngineCounters must extend counter_profile_metrics too, or the profiler
  // and the perf gate would silently stop seeing it.
  const EngineCounters c = distinct_sentinels(1000);
  const auto metrics = counter_profile_metrics(c);
  ASSERT_EQ(metrics.size(), 20u);
  std::set<std::string> names;
  for (const auto& [name, value] : metrics) {
    EXPECT_TRUE(names.insert(name).second) << "duplicate metric " << name;
  }
  // Distinct sentinels prove each name maps to ITS field, not a neighbour.
  auto value_of = [&](const std::string& name) {
    for (const auto& [n, v] : metrics) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "metric " << name << " missing";
    return -1.0;
  };
  EXPECT_EQ(value_of("expert_migrations"), 1001.0);
  EXPECT_EQ(value_of("gpu_expert_execs"), 1002.0);
  EXPECT_EQ(value_of("cpu_expert_execs"), 1003.0);
  EXPECT_EQ(value_of("cache_hits"), 1004.0);
  EXPECT_EQ(value_of("cache_misses"), 1005.0);
  EXPECT_EQ(value_of("prefetch_hits"), 1006.0);
  EXPECT_EQ(value_of("predictions"), 1007.0);
  EXPECT_EQ(value_of("mispredictions"), 1008.0);
  EXPECT_EQ(value_of("degradations"), 1009.0);
  EXPECT_EQ(value_of("prefill_swaps"), 1010.0);
  EXPECT_EQ(value_of("decode_swaps"), 1011.0);
  EXPECT_EQ(value_of("skipped_experts"), 1012.0);
  EXPECT_EQ(value_of("migration_retries"), 1013.0);
  EXPECT_EQ(value_of("migration_aborts"), 1014.0);
  EXPECT_EQ(value_of("stale_precalcs"), 1015.0);
  EXPECT_EQ(value_of("pin_refusals"), 1016.0);
  EXPECT_EQ(value_of("preemptions"), 1017.0);
  EXPECT_EQ(value_of("preempt_resumes"), 1018.0);
  EXPECT_EQ(value_of("degraded_sessions"), 1019.0);
  EXPECT_DOUBLE_EQ(value_of("hazard_stall_s"), 1019.5);
  // Declaration order, so profile reports and baselines are stable.
  EXPECT_EQ(metrics.front().first, "expert_migrations");
  EXPECT_EQ(metrics.back().first, "hazard_stall_s");
}

TEST(EngineCounters, ProfileMetricsAreAdditiveLikeAdd) {
  // Summing two flattened views elementwise must agree with flattening the
  // add()-aggregated counters — the identity serving aggregation relies on.
  EngineCounters a = distinct_sentinels(1000);
  const EngineCounters b = distinct_sentinels(2000);
  const auto ma = counter_profile_metrics(a);
  const auto mb = counter_profile_metrics(b);
  a.add(b);
  const auto sum = counter_profile_metrics(a);
  ASSERT_EQ(ma.size(), sum.size());
  for (std::size_t i = 0; i < sum.size(); ++i) {
    EXPECT_EQ(sum[i].first, ma[i].first);
    EXPECT_DOUBLE_EQ(sum[i].second, ma[i].second + mb[i].second)
        << sum[i].first;
  }
}

TEST(EngineCounters, AddOntoDefaultIsIdentity) {
  EngineCounters acc;
  const EngineCounters other = distinct_sentinels(5000);
  acc.add(other);
  EXPECT_EQ(acc.expert_migrations, other.expert_migrations);
  EXPECT_EQ(acc.pin_refusals, other.pin_refusals);
  EXPECT_EQ(acc.preemptions, other.preemptions);
  EXPECT_EQ(acc.degraded_sessions, other.degraded_sessions);
  EXPECT_DOUBLE_EQ(acc.hazard_stall_s, other.hazard_stall_s);
}

}  // namespace
}  // namespace daop::engines
