// EngineCounters::add must aggregate EVERY field — a counter silently
// dropped by the aggregation path would corrupt serving / multi-sequence
// totals without failing any behavioural test. Each field gets a distinct
// sentinel so a swapped pair is also caught, and a sizeof guard forces this
// test to be revisited whenever a field is added.
#include <gtest/gtest.h>

#include "engines/engine.hpp"

namespace daop::engines {
namespace {

EngineCounters distinct_sentinels(long long base) {
  EngineCounters c;
  c.expert_migrations = base + 1;
  c.gpu_expert_execs = base + 2;
  c.cpu_expert_execs = base + 3;
  c.cache_hits = base + 4;
  c.cache_misses = base + 5;
  c.prefetch_hits = base + 6;
  c.predictions = base + 7;
  c.mispredictions = base + 8;
  c.degradations = base + 9;
  c.prefill_swaps = base + 10;
  c.decode_swaps = base + 11;
  c.skipped_experts = base + 12;
  c.migration_retries = base + 13;
  c.migration_aborts = base + 14;
  c.stale_precalcs = base + 15;
  c.pin_refusals = base + 16;
  c.preemptions = base + 17;
  c.preempt_resumes = base + 18;
  c.degraded_sessions = base + 19;
  c.hazard_stall_s = static_cast<double>(base) + 19.5;
  return c;
}

// If this fails a field was added to EngineCounters: extend
// distinct_sentinels() and the per-field checks below, then bump the size.
static_assert(sizeof(EngineCounters) == 19 * sizeof(long long) +
                                            sizeof(double),
              "EngineCounters changed shape; update this test");

TEST(EngineCounters, AddAggregatesEveryField) {
  EngineCounters acc = distinct_sentinels(1000);
  const EngineCounters other = distinct_sentinels(2000);
  acc.add(other);
  EXPECT_EQ(acc.expert_migrations, 3002);
  EXPECT_EQ(acc.gpu_expert_execs, 3004);
  EXPECT_EQ(acc.cpu_expert_execs, 3006);
  EXPECT_EQ(acc.cache_hits, 3008);
  EXPECT_EQ(acc.cache_misses, 3010);
  EXPECT_EQ(acc.prefetch_hits, 3012);
  EXPECT_EQ(acc.predictions, 3014);
  EXPECT_EQ(acc.mispredictions, 3016);
  EXPECT_EQ(acc.degradations, 3018);
  EXPECT_EQ(acc.prefill_swaps, 3020);
  EXPECT_EQ(acc.decode_swaps, 3022);
  EXPECT_EQ(acc.skipped_experts, 3024);
  EXPECT_EQ(acc.migration_retries, 3026);
  EXPECT_EQ(acc.migration_aborts, 3028);
  EXPECT_EQ(acc.stale_precalcs, 3030);
  EXPECT_EQ(acc.pin_refusals, 3032);
  EXPECT_EQ(acc.preemptions, 3034);
  EXPECT_EQ(acc.preempt_resumes, 3036);
  EXPECT_EQ(acc.degraded_sessions, 3038);
  EXPECT_DOUBLE_EQ(acc.hazard_stall_s, 3039.0);
}

TEST(EngineCounters, AddOntoDefaultIsIdentity) {
  EngineCounters acc;
  const EngineCounters other = distinct_sentinels(5000);
  acc.add(other);
  EXPECT_EQ(acc.expert_migrations, other.expert_migrations);
  EXPECT_EQ(acc.pin_refusals, other.pin_refusals);
  EXPECT_EQ(acc.preemptions, other.preemptions);
  EXPECT_EQ(acc.degraded_sessions, other.degraded_sessions);
  EXPECT_DOUBLE_EQ(acc.hazard_stall_s, other.hazard_stall_s);
}

}  // namespace
}  // namespace daop::engines
