// Property sweep: invariants every engine must satisfy on randomized
// workloads, parameterized over all eight engines.
#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"

namespace daop::engines {
namespace {

class EngineProperty : public ::testing::TestWithParam<eval::EngineKind> {
 protected:
  EngineProperty()
      : cfg_(daop::testing::small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  data::SequenceTrace random_trace(int seq, int prompt = 12, int gen = 10) {
    const data::TraceGenerator gen_obj(data::c4(), cfg_.n_layers,
                                       cfg_.n_experts, cfg_.top_k, 321);
    return gen_obj.generate(seq, prompt, gen);
  }

  cache::Placement calibrated_placement(double ecr) {
    const data::TraceGenerator calib(data::sharegpt_calibration(),
                                     cfg_.n_layers, cfg_.n_experts, cfg_.top_k,
                                     99);
    return cache::init_placement_calibrated(
        cfg_.n_layers, cfg_.n_experts, ecr,
        cache::calibrate_activation_counts(calib, 6));
  }

  std::unique_ptr<Engine> engine() {
    return eval::make_engine(GetParam(), costs_);
  }

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_P(EngineProperty, DeterministicAcrossRunsAndInstances) {
  const auto tr = random_trace(0);
  const auto placement = calibrated_placement(0.5);
  const auto r1 = engine()->run(tr, placement);
  const auto r2 = engine()->run(tr, placement);
  EXPECT_DOUBLE_EQ(r1.total_s, r2.total_s);
  EXPECT_DOUBLE_EQ(r1.energy.total_j, r2.energy.total_j);
  EXPECT_EQ(r1.counters.expert_migrations, r2.counters.expert_migrations);
  EXPECT_EQ(r1.counters.cpu_expert_execs, r2.counters.cpu_expert_execs);
}

TEST_P(EngineProperty, TimeAccountingConsistent) {
  for (int seq = 0; seq < 3; ++seq) {
    const auto tr = random_trace(seq);
    const auto r = engine()->run(tr, calibrated_placement(0.469));
    EXPECT_GT(r.prefill_s, 0.0);
    EXPECT_GT(r.decode_s, 0.0);
    EXPECT_NEAR(r.total_s, r.prefill_s + r.decode_s, 1e-12);
    EXPECT_GT(r.tokens_per_s, 0.0);
    EXPECT_GT(r.decode_tokens_per_s, r.tokens_per_s * 0.999);
  }
}

TEST_P(EngineProperty, EveryDecodeSelectionAccounted) {
  const auto tr = random_trace(1);
  const auto r = engine()->run(tr, calibrated_placement(0.469));
  // Every selected expert use is either a hit or a miss. Prefill contributes
  // per-(layer, active expert) lookups, decode per-(token, layer, selection).
  const auto prefill_counts = tr.activation_counts(data::Phase::Prefill);
  long long prefill_uses = 0;
  for (const auto& layer : prefill_counts) {
    for (double c : layer) {
      if (c > 0.0) ++prefill_uses;
    }
  }
  const long long decode_uses =
      static_cast<long long>(tr.gen_len) * cfg_.n_layers * cfg_.top_k;
  EXPECT_EQ(r.counters.cache_hits + r.counters.cache_misses,
            prefill_uses + decode_uses);
}

TEST_P(EngineProperty, EnergyWithinPhysicalBounds) {
  const auto tr = random_trace(2);
  const auto r = engine()->run(tr, calibrated_placement(0.5));
  const auto& p = cm_.platform();
  const double min_power =
      p.gpu.idle_power_w + p.cpu.idle_power_w + p.base_power_w;
  const double max_power = p.gpu.active_power_w + p.cpu.active_power_w +
                           p.base_power_w + 15.0 /* PCIe */;
  EXPECT_GE(r.energy.avg_power_w, min_power * 0.999);
  EXPECT_LE(r.energy.avg_power_w, max_power * 1.001);
  EXPECT_GT(r.energy.total_j, 0.0);
}

TEST_P(EngineProperty, FullCacheIsFastest) {
  const auto tr = random_trace(3);
  const auto full = engine()->run(tr, calibrated_placement(1.0));
  const auto half = engine()->run(tr, calibrated_placement(0.5));
  const auto quarter = engine()->run(tr, calibrated_placement(0.25));
  EXPECT_LE(full.total_s, half.total_s * 1.0001);
  EXPECT_LE(full.total_s, quarter.total_s * 1.0001);
  // At ECR 1.0 nothing can miss — except for DeepSpeed-MII, which has no
  // expert cache management at all and streams regardless.
  if (GetParam() != eval::EngineKind::DeepSpeedMII) {
    EXPECT_EQ(full.counters.cache_misses, 0);
    EXPECT_EQ(full.counters.expert_migrations, 0);
    EXPECT_EQ(full.counters.cpu_expert_execs, 0);
  }
}

TEST_P(EngineProperty, InputPlacementNeverMutated) {
  const auto tr = random_trace(4);
  const auto placement = calibrated_placement(0.469);
  const auto gpu_before = placement.total_gpu_count();
  std::vector<bool> residency;
  for (int l = 0; l < cfg_.n_layers; ++l) {
    for (int e = 0; e < cfg_.n_experts; ++e) {
      residency.push_back(placement.on_gpu(l, e));
    }
  }
  engine()->run(tr, placement);
  EXPECT_EQ(placement.total_gpu_count(), gpu_before);
  std::size_t i = 0;
  for (int l = 0; l < cfg_.n_layers; ++l) {
    for (int e = 0; e < cfg_.n_experts; ++e) {
      EXPECT_EQ(placement.on_gpu(l, e), static_cast<bool>(residency[i++]));
    }
  }
}

TEST_P(EngineProperty, LongerGenerationTakesLonger) {
  const auto placement = calibrated_placement(0.469);
  const auto small = engine()->run(random_trace(5, 12, 6), placement);
  const auto large = engine()->run(random_trace(5, 12, 24), placement);
  EXPECT_GT(large.total_s, small.total_s);
}

TEST_P(EngineProperty, MispredictionsBoundedByPredictions) {
  // Predictions deliberately point at the wrong expert: the gate selects
  // the off-GPU expert 3 while predictions claim the GPU-resident expert 1.
  // An engine may count at most one misprediction per issued prediction.
  // small_mixtral has fewer layers than the default min_predict_layer, so
  // lower it so DAOP's prediction path actually runs on this model. Prefill
  // sticks to the already-cached expert 0 so prefill-time reallocation does
  // not pull expert 3 onto the GPU before decode gets to miss on it.
  auto tr = daop::testing::fixed_trace(cfg_, 8, 8, {3}, {1});
  tr.prefill = daop::testing::fixed_trace(cfg_, 8, 8, {0}, {1}).prefill;
  core::DaopConfig dcfg;
  dcfg.min_predict_layer = 1;
  const auto r = eval::make_engine(GetParam(), costs_, dcfg)
                     ->run(tr, daop::testing::prefix_placement(cfg_, 2));
  EXPECT_LE(r.counters.mispredictions, r.counters.predictions);
  if (GetParam() == eval::EngineKind::Daop) {
    EXPECT_GT(r.counters.mispredictions, 0);
  }
}

TEST_P(EngineProperty, AttachedTracerIsTimingNeutral) {
  // Observability must be passive: a run with a span tracer attached lands
  // on the bit-identical schedule of an untraced run.
  const auto tr = random_trace(6);
  const auto placement = calibrated_placement(0.469);
  const auto plain = engine()->run(tr, placement);
  auto traced_engine = engine();
  obs::SpanTracer tracer;
  traced_engine->set_tracer(&tracer);
  const auto traced = traced_engine->run(tr, placement);
  EXPECT_EQ(plain.total_s, traced.total_s);
  EXPECT_EQ(plain.energy.total_j, traced.energy.total_j);
  EXPECT_EQ(plain.counters.cache_hits, traced.counters.cache_hits);
  EXPECT_FALSE(tracer.spans().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineProperty,
    ::testing::Values(eval::EngineKind::MoEOnDemand,
                      eval::EngineKind::DeepSpeedMII,
                      eval::EngineKind::MixtralOffloading,
                      eval::EngineKind::PreGatedMoE,
                      eval::EngineKind::EdgeMoE,
                      eval::EngineKind::MoEInfinity,
                      eval::EngineKind::Fiddler, eval::EngineKind::Daop),
    [](const ::testing::TestParamInfo<eval::EngineKind>& info) {
      std::string n = eval::engine_kind_name(info.param);
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace daop::engines
