// RAII pin guard: a SequenceSession destroyed without close() — crashed
// node teardown, exception unwind, scheduler bug — must release every
// arbiter pin it holds, and abandon() must do the same for cancelled hedge
// copies. A leaked pin would freeze the shared expert cache for every
// other session forever.
#include "engines/session.hpp"

#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "cache/arbiter.hpp"
#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"
#include "sim/timeline.hpp"

namespace daop::engines {
namespace {

struct SessionRig {
  model::ModelConfig cfg = daop::testing::small_mixtral();
  sim::CostModel cm{sim::a6000_i9_platform()};
  model::OpCosts costs{cfg, cm};
  std::unique_ptr<Engine> engine =
      eval::make_engine(eval::EngineKind::Fiddler, costs);
  cache::PlacementArbiter arbiter;
  sim::Timeline tl;

  SessionRig()
      : arbiter([this] {
          const data::TraceGenerator calib(data::sharegpt_calibration(),
                                           cfg.n_layers, cfg.n_experts,
                                           cfg.top_k, 99);
          return cache::init_placement_calibrated(
              cfg.n_layers, cfg.n_experts, 0.469,
              cache::calibrate_activation_counts(calib, 4));
        }()) {}

  std::unique_ptr<SequenceSession> open(long long id,
                                        int replay_tokens = 0) {
    SessionEnv env;
    env.timeline = &tl;
    env.arbiter = &arbiter;
    env.shared = true;
    env.request_id = id;
    env.failover_replay_tokens = replay_tokens;
    return engine->open_session(daop::testing::fixed_trace(cfg, 8, 4, {0, 1}),
                                arbiter.placement(), env);
  }
};

TEST(SessionPinGuard, DestructionWithoutCloseReleasesAllPins) {
  SessionRig rig;
  auto s = rig.open(7);
  s->prefill();
  ASSERT_TRUE(s->decode_step());
  ASSERT_GT(rig.arbiter.total_pin_count(), 0)
      << "mid-decode the session must hold working-set pins";
  s.reset();  // no close(): crashed-node teardown path
  EXPECT_EQ(rig.arbiter.total_pin_count(), 0);
}

TEST(SessionPinGuard, NormalCloseStillReleasesAndGuardStaysIdle) {
  SessionRig rig;
  auto s = rig.open(8);
  s->prefill();
  while (s->decode_step()) {
  }
  (void)s->close();
  EXPECT_EQ(rig.arbiter.total_pin_count(), 0);
  s.reset();  // guard after close(): must not double-release or throw
  EXPECT_EQ(rig.arbiter.total_pin_count(), 0);
}

TEST(SessionPinGuard, AbandonReleasesPinsAndClosesForGood) {
  SessionRig rig;
  auto s = rig.open(9);
  s->prefill();
  ASSERT_TRUE(s->decode_step());
  ASSERT_GT(rig.arbiter.total_pin_count(), 0);
  s->abandon(s->ready_time());  // cancelled hedge copy
  EXPECT_EQ(rig.arbiter.total_pin_count(), 0);
  EXPECT_THROW((void)s->close(), CheckError) << "abandon excludes close";
  EXPECT_THROW((void)s->decode_step(), CheckError);
}

TEST(SessionPinGuard, AbandonBeforePrefillIsRejected) {
  SessionRig rig;
  auto s = rig.open(10);
  EXPECT_THROW(s->abandon(0.0), CheckError);
}

TEST(SessionPinGuard, FailoverReplayTokensAreObservationalOnly) {
  SessionRig rig;
  auto plain = rig.open(11);
  plain->prefill();
  while (plain->decode_step()) {
  }
  const RunResult a = plain->close();

  SessionRig rig2;
  auto replayed = rig2.open(11, /*replay_tokens=*/37);
  EXPECT_EQ(replayed->failover_replay_tokens(), 37);
  replayed->prefill();
  while (replayed->decode_step()) {
  }
  const RunResult b = replayed->close();
  // Purely observational: the replay count never changes scheduling.
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.prefill_s, b.prefill_s);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
}

}  // namespace
}  // namespace daop::engines
