#include "engines/fetch_engine.hpp"

#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "common/check.hpp"
#include "sim/device.hpp"

namespace daop::engines {
namespace {

using testing::fixed_trace;
using testing::prefix_placement;
using testing::small_mixtral;

class FetchEngineTest : public ::testing::Test {
 protected:
  FetchEngineTest()
      : cfg_(small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_F(FetchEngineTest, GpuCentricEnginesNeverUseCpu) {
  const auto tr = fixed_trace(cfg_, 4, 4, {0, 1});
  const auto placement = prefix_placement(cfg_, 4);
  for (auto make : {make_moe_ondemand, make_deepspeed_mii,
                    make_mixtral_offloading, make_pregated_moe}) {
    auto engine = make(costs_);
    const auto r = engine->run(tr, placement);
    EXPECT_EQ(r.counters.cpu_expert_execs, 0) << engine->name();
  }
}

TEST_F(FetchEngineTest, AllHitsWhenSelectedExpertsResident) {
  const auto tr = fixed_trace(cfg_, 4, 6, {0, 1});
  const auto placement = prefix_placement(cfg_, 4);
  auto engine = make_moe_ondemand(costs_);
  const auto r = engine->run(tr, placement);
  EXPECT_EQ(r.counters.cache_misses, 0);
  EXPECT_EQ(r.counters.expert_migrations, 0);
  // prefill: L layers x 2 experts; decode: gen x L x 2.
  EXPECT_EQ(r.counters.gpu_expert_execs,
            cfg_.n_layers * 2 + 6 * cfg_.n_layers * 2);
}

TEST_F(FetchEngineTest, MissTriggersMigrationThenLruHit) {
  // Experts {4,5} are NOT resident; capacity 4 allows them to be cached
  // after the first decode step, so later steps hit.
  const auto tr = fixed_trace(cfg_, 1, 5, {4, 5});
  const auto placement = prefix_placement(cfg_, 4);
  auto engine = make_moe_ondemand(costs_);
  const auto r = engine->run(tr, placement);
  // Misses only on the first use per layer (prefill) — afterwards LRU keeps
  // them resident.
  EXPECT_EQ(r.counters.cache_misses, 2 * cfg_.n_layers);
  EXPECT_EQ(r.counters.expert_migrations, 2 * cfg_.n_layers);
  EXPECT_GT(r.counters.cache_hits, 0);
}

TEST_F(FetchEngineTest, DeepSpeedNeverCaches) {
  const auto tr = fixed_trace(cfg_, 1, 5, {0, 1});
  const auto placement = prefix_placement(cfg_, 4);
  auto engine = make_deepspeed_mii(costs_);
  const auto r = engine->run(tr, placement);
  // ignore_initial_cache + reuse_cache=false: EVERY expert use is a miss.
  EXPECT_EQ(r.counters.cache_hits, 0);
  EXPECT_EQ(r.counters.expert_migrations,
            2 * cfg_.n_layers + 5 * 2 * cfg_.n_layers);
}

TEST_F(FetchEngineTest, MigrationDominatedDecodeIsSlow) {
  // Decode alternates {4,5} / {6,7} with capacity 2: every step misses both
  // experts in every layer, so decode is migration-bound.
  const auto tr = testing::alternating_trace(cfg_, 1, 4, {4, 5}, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);
  auto engine = make_moe_ondemand(costs_);
  const auto r = engine->run(tr, placement);
  const double per_layer_floor = costs_.expert_migration();
  EXPECT_GT(r.decode_s, 4 * cfg_.n_layers * per_layer_floor * 0.5);
}

TEST_F(FetchEngineTest, QuantizedTransfersAreFaster) {
  const auto tr = fixed_trace(cfg_, 4, 4, {4, 5});
  const auto placement = prefix_placement(cfg_, 2);
  auto ondemand = make_moe_ondemand(costs_);
  auto quantized = make_mixtral_offloading(costs_);
  const auto rd = ondemand->run(tr, placement);
  const auto rq = quantized->run(tr, placement);
  EXPECT_LT(rq.total_s, rd.total_s);
}

TEST_F(FetchEngineTest, PredictivePrefetchBeatsOnDemand) {
  // Alternating expert pairs with perfect predictions: Pre-gated overlaps
  // the next layer's fetch with the current layer's compute.
  const auto tr = testing::alternating_trace(cfg_, 1, 6, {4, 5}, {6, 7});
  const auto placement = prefix_placement(cfg_, 2);
  auto ondemand = make_moe_ondemand(costs_);
  auto pregated = make_pregated_moe(costs_);
  const auto rd = ondemand->run(tr, placement);
  const auto rp = pregated->run(tr, placement);
  EXPECT_LE(rp.decode_s, rd.decode_s);
  EXPECT_GT(rp.counters.prefetch_hits, 0);
}

TEST_F(FetchEngineTest, DeterministicAcrossRuns) {
  const auto tr = fixed_trace(cfg_, 2, 3, {1, 5});
  const auto placement = prefix_placement(cfg_, 3);
  auto e1 = make_moe_ondemand(costs_);
  auto e2 = make_moe_ondemand(costs_);
  const auto r1 = e1->run(tr, placement);
  const auto r2 = e2->run(tr, placement);
  EXPECT_DOUBLE_EQ(r1.total_s, r2.total_s);
  EXPECT_EQ(r1.counters.expert_migrations, r2.counters.expert_migrations);
}

TEST_F(FetchEngineTest, ResultAccountingConsistent) {
  const auto tr = fixed_trace(cfg_, 3, 4, {2, 6});
  const auto placement = prefix_placement(cfg_, 4);
  auto engine = make_moe_ondemand(costs_);
  const auto r = engine->run(tr, placement);
  EXPECT_EQ(r.prompt_tokens, 3);
  EXPECT_EQ(r.generated_tokens, 4);
  EXPECT_NEAR(r.total_s, r.prefill_s + r.decode_s, 1e-12);
  EXPECT_NEAR(r.tokens_per_s, 4.0 / r.total_s, 1e-9);
  EXPECT_GT(r.energy.total_j, 0.0);
  EXPECT_GT(r.tokens_per_kj, 0.0);
  // hits + misses covers every expert use.
  EXPECT_EQ(r.counters.cache_hits + r.counters.cache_misses,
            cfg_.n_layers * 2 + 4 * cfg_.n_layers * 2);
}

TEST_F(FetchEngineTest, AggregateRejectsEmptyInput) {
  EXPECT_THROW(aggregate_results("x", {}), CheckError);
}

TEST_F(FetchEngineTest, AggregateRecomputesRates) {
  const auto tr = fixed_trace(cfg_, 2, 4, {0, 1});
  const auto placement = prefix_placement(cfg_, 4);
  auto engine = make_moe_ondemand(costs_);
  const auto r1 = engine->run(tr, placement);
  const auto agg = aggregate_results("agg", {r1, r1, r1});
  EXPECT_EQ(agg.generated_tokens, 12);
  EXPECT_NEAR(agg.total_s, 3.0 * r1.total_s, 1e-9);
  EXPECT_NEAR(agg.tokens_per_s, r1.tokens_per_s, 1e-9);
  EXPECT_NEAR(agg.tokens_per_kj, r1.tokens_per_kj, 1e-9);
}

}  // namespace
}  // namespace daop::engines
