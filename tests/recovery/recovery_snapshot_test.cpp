// Checkpoint round-trip property harness (`daop-ckpt/1`).
//
// Three layers of guarantees, bottom-up:
//  - FRAME: seal/unseal round-trips byte-exactly; EVERY single-byte flip,
//    every truncation length, and any appended byte is rejected — torn
//    writes by the length field, bit corruption by the FNV-1a checksum.
//  - STORE: cadence triggers anchor per request, durability gates restores
//    (a write still in flight at the crash never restores), generations trim
//    and fall back oldest-last, and injected torn/corrupt writes are always
//    caught at scan time by unseal() alone.
//  - SESSION: checkpoint() is byte-stable, restoring a snapshot into a
//    fresh identical environment reproduces the snapshot byte-for-byte on
//    re-checkpoint (across engines x seeds x hazard scenarios), and every
//    single-byte corruption makes restore() reject while leaving the
//    session usable for the prefill-replay fallback.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cache/arbiter.hpp"
#include "cache/calibration.hpp"
#include "data/trace_generator.hpp"
#include "engines/session.hpp"
#include "eval/speed.hpp"
#include "recovery/checkpoint_store.hpp"
#include "recovery/reconcile.hpp"
#include "recovery/snapshot.hpp"
#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace daop::recovery {
namespace {

// ---------------------------------------------------------------------------
// Frame: seal/unseal

std::vector<std::uint8_t> varied_payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xFF);
  }
  return p;
}

TEST(SnapshotFrame, SealUnsealRoundTrips) {
  const auto payload = varied_payload(237);
  const auto blob = seal(payload);
  ASSERT_GT(blob.size(), payload.size()) << "frame header missing";
  const auto back = unseal(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(SnapshotFrame, EmptyPayloadRoundTrips) {
  const auto blob = seal({});
  const auto back = unseal(blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(SnapshotFrame, EverySingleByteFlipIsRejected) {
  const auto blob = seal(varied_payload(199));
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (const std::uint8_t mask : {0x01, 0x80, 0xFF}) {
      auto bad = blob;
      bad[i] ^= mask;
      EXPECT_FALSE(unseal(bad).has_value())
          << "byte " << i << " xor " << int(mask) << " accepted";
    }
  }
}

TEST(SnapshotFrame, EveryTruncationAndAnyExtensionIsRejected) {
  const auto blob = seal(varied_payload(64));
  for (std::size_t n = 0; n < blob.size(); ++n) {
    const std::vector<std::uint8_t> torn(blob.begin(),
                                         blob.begin() + static_cast<long>(n));
    EXPECT_FALSE(unseal(torn).has_value()) << "torn prefix of " << n;
  }
  auto grown = blob;
  grown.push_back(0);
  EXPECT_FALSE(unseal(grown).has_value()) << "trailing garbage accepted";
}

TEST(SnapshotFrame, ByteCodecRoundTripsAndReaderIsBoundsSafe) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-7);
  w.i64(-1234567891234LL);
  w.f64(-0.4375);
  w.str("daop-ckpt");
  const auto buf = w.data();

  ByteReader r(buf.data(), buf.size());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -1234567891234LL);
  EXPECT_EQ(r.f64(), -0.4375);
  EXPECT_EQ(r.str(), "daop-ckpt");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  // Reading past the end fails the stream instead of reading out of bounds.
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(SnapshotFrame, PlacementImageRoundTrips) {
  PlacementImage img;
  img.n_layers = 3;
  img.n_experts = 4;
  img.capacity = {2, 1, 2};
  img.on_gpu = {1, 0, 1, 0, 0, 0, 0, 1, 1, 1, 0, 0};
  ByteWriter w;
  write_placement_image(w, img);
  const auto buf = w.data();
  ByteReader r(buf.data(), buf.size());
  PlacementImage back;
  ASSERT_TRUE(read_placement_image(r, &back));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(back.n_layers, img.n_layers);
  EXPECT_EQ(back.n_experts, img.n_experts);
  EXPECT_EQ(back.capacity, img.capacity);
  EXPECT_EQ(back.on_gpu, img.on_gpu);
  EXPECT_TRUE(back.gpu(0, 0));
  EXPECT_FALSE(back.gpu(0, 1));
}

// ---------------------------------------------------------------------------
// Checkpoint hazards (sim::FaultModel presets)

TEST(CheckpointHazards, PresetsScaleWithIntensity) {
  const auto torn = sim::make_hazard_scenario("ckpt-torn", 0.8);
  EXPECT_DOUBLE_EQ(torn.ckpt_torn_write_prob, 0.4);
  EXPECT_DOUBLE_EQ(torn.ckpt_corrupt_prob, 0.0);
  const auto corrupt = sim::make_hazard_scenario("ckpt-corrupt", 0.8);
  EXPECT_DOUBLE_EQ(corrupt.ckpt_torn_write_prob, 0.0);
  EXPECT_DOUBLE_EQ(corrupt.ckpt_corrupt_prob, 0.2);
  const auto both = sim::make_hazard_scenario("ckpt", 1.0);
  EXPECT_DOUBLE_EQ(both.ckpt_torn_write_prob, 0.5);
  EXPECT_DOUBLE_EQ(both.ckpt_corrupt_prob, 0.25);
  // "all" predates the recovery plane and must never grow checkpoint
  // hazards (pre-cluster chaos goldens depend on it).
  const auto all = sim::make_hazard_scenario("all", 1.0);
  EXPECT_DOUBLE_EQ(all.ckpt_torn_write_prob, 0.0);
  EXPECT_DOUBLE_EQ(all.ckpt_corrupt_prob, 0.0);
}

TEST(CheckpointHazards, DrawSequenceIsDeterministicPerSeed) {
  const auto sc = sim::make_hazard_scenario("ckpt", 1.0);
  sim::FaultModel a(sc, 77);
  sim::FaultModel b(sc, 77);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.checkpoint_write_torn(), b.checkpoint_write_torn());
    EXPECT_EQ(a.checkpoint_corrupted(), b.checkpoint_corrupted());
    EXPECT_EQ(a.checkpoint_entropy(), b.checkpoint_entropy());
  }
}

// ---------------------------------------------------------------------------
// CheckpointStore

CheckpointOptions store_options(int every_steps, double every_s = 0.0) {
  CheckpointOptions o;
  o.every_steps = every_steps;
  o.every_s = every_s;
  o.keep_generations = 2;
  return o;
}

TEST(CheckpointStore, DisabledIsNeverDue) {
  sim::Timeline tl;
  CheckpointStore st(store_options(0, 0.0), &tl, nullptr);
  EXPECT_FALSE(st.options().enabled());
  EXPECT_FALSE(st.due(1, 1000, 99.0));
}

TEST(CheckpointStore, StepCadenceCountsFromTheLastWrite) {
  sim::Timeline tl;
  CheckpointStore st(store_options(4), &tl, nullptr);
  EXPECT_FALSE(st.due(7, 1, 0.1));
  EXPECT_FALSE(st.due(7, 3, 0.3));
  EXPECT_TRUE(st.due(7, 4, 0.4));
  st.write(7, 4, 0.4, seal(varied_payload(32)));
  EXPECT_FALSE(st.due(7, 6, 0.6)) << "cadence must reset at the write";
  EXPECT_TRUE(st.due(7, 8, 0.8));
}

TEST(CheckpointStore, TimeCadenceAnchorsAtFirstSighting) {
  sim::Timeline tl;
  CheckpointStore st(store_options(0, 1.0), &tl, nullptr);
  // First sighting at t=5 anchors the trigger there — NOT at t=0, so a
  // session admitted late is not immediately due.
  EXPECT_FALSE(st.due(3, 1, 5.0));
  EXPECT_FALSE(st.due(3, 2, 5.9));
  EXPECT_TRUE(st.due(3, 3, 6.0));
}

TEST(CheckpointStore, WritesAreDurableOnlyAfterTheSimulatedWriteLands) {
  sim::Timeline tl;
  CheckpointStore st(store_options(1), &tl, nullptr);
  const double durable = st.write(9, 5, 1.0, seal(varied_payload(4096)));
  EXPECT_GT(durable, 1.0) << "durable write must cost simulated time";
  EXPECT_EQ(st.latest_valid(9, 1.0), nullptr) << "still in flight";
  const CheckpointRecord* rec = st.latest_valid(9, durable);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->step, 5);
  EXPECT_EQ(st.stats().writes, 1);
  EXPECT_GT(st.stats().bytes_written, 4096);
}

TEST(CheckpointStore, KeepsOnlyTheConfiguredGenerations) {
  sim::Timeline tl;
  CheckpointStore st(store_options(1), &tl, nullptr);
  for (int s = 1; s <= 5; ++s) {
    st.write(2, s, static_cast<double>(s), seal(varied_payload(64)));
  }
  const auto* gens = st.generations(2);
  ASSERT_NE(gens, nullptr);
  ASSERT_EQ(gens->size(), 2u);
  EXPECT_EQ(gens->front().step, 4);
  EXPECT_EQ(gens->back().step, 5);
  st.drop(2);
  EXPECT_EQ(st.generations(2), nullptr);
  EXPECT_EQ(st.latest_valid(2, 100.0), nullptr);
}

TEST(CheckpointStore, CertainTornWritesNeverRestoreAndAreCounted) {
  sim::Timeline tl;
  sim::HazardScenario sc;
  sc.ckpt_torn_write_prob = 1.0;
  sim::FaultModel fm(sc, 5);
  CheckpointStore st(store_options(1), &tl, &fm);
  for (int s = 1; s <= 3; ++s) {
    st.write(4, s, static_cast<double>(s), seal(varied_payload(256)));
  }
  EXPECT_EQ(st.stats().torn_writes, 3);
  EXPECT_EQ(st.latest_valid(4, 100.0), nullptr);
  EXPECT_EQ(st.stats().torn_rejected, 2)
      << "both retained generations must be scanned and rejected";
}

TEST(CheckpointStore, CertainCorruptionIsRejectedByTheChecksum) {
  sim::Timeline tl;
  sim::HazardScenario sc;
  sc.ckpt_corrupt_prob = 1.0;
  sim::FaultModel fm(sc, 5);
  CheckpointStore st(store_options(1), &tl, &fm);
  st.write(4, 1, 1.0, seal(varied_payload(256)));
  EXPECT_EQ(st.stats().corrupt_writes, 1);
  const auto* gens = st.generations(4);
  ASSERT_NE(gens, nullptr);
  EXPECT_TRUE(gens->front().corrupted);
  EXPECT_EQ(st.latest_valid(4, 100.0), nullptr);
  EXPECT_EQ(st.stats().torn_rejected, 1);
}

TEST(CheckpointStore, FallsBackGenerationByGenerationUsingUnsealOnly) {
  // Mixed torn/valid writes from a deterministic hazard stream: latest_valid
  // must agree with the per-record fault bookkeeping while trusting ONLY
  // unseal() — the newest un-torn generation wins and every torn generation
  // newer than it is counted as rejected.
  // Scan seeds for the interesting draw pattern (newest generation torn,
  // an older one intact) instead of hard-coding one — robust to any future
  // change in the fault stream derivation.
  bool exercised = false;
  for (std::uint64_t seed = 1; seed <= 64 && !exercised; ++seed) {
    sim::Timeline tl;
    sim::HazardScenario sc;
    sc.ckpt_torn_write_prob = 0.5;
    sim::FaultModel fm(sc, seed);
    CheckpointOptions opt = store_options(1);
    opt.keep_generations = 8;
    CheckpointStore st(opt, &tl, &fm);
    for (int s = 1; s <= 8; ++s) {
      st.write(6, s, static_cast<double>(s), seal(varied_payload(512)));
    }
    const auto* gens = st.generations(6);
    ASSERT_NE(gens, nullptr);
    ASSERT_EQ(gens->size(), 8u);
    long long expect_step = -1;
    long long newer_torn = 0;
    for (auto it = gens->rbegin(); it != gens->rend(); ++it) {
      if (!it->torn) {
        expect_step = it->step;
        break;
      }
      ++newer_torn;
    }
    if (newer_torn == 0 || expect_step == -1) continue;  // dull pattern
    exercised = true;
    const CheckpointRecord* rec = st.latest_valid(6, 100.0);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->step, expect_step);
    EXPECT_EQ(st.stats().torn_rejected, newer_torn);
  }
  EXPECT_TRUE(exercised)
      << "no seed in 1..64 tore the newest generation while leaving an "
         "older one intact (astronomically unlikely unless the stream broke)";
}

TEST(CheckpointStore, DiscardInFlightModelsCrashConsistency) {
  sim::Timeline tl;
  CheckpointStore st(store_options(1), &tl, nullptr);
  const double d1 = st.write(8, 1, 0.0, seal(varied_payload(64)));
  // Second write issued later; still in flight at the crash instant.
  const double d2 = st.write(8, 2, d1, seal(varied_payload(64)));
  ASSERT_GT(d2, d1);
  const double crash = (d1 + d2) / 2.0;
  st.discard_in_flight(crash);
  EXPECT_EQ(st.stats().torn_writes, 1) << "in-flight write died with the node";
  const CheckpointRecord* rec = st.latest_valid(8, crash);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->step, 1) << "only the durable generation survives";
}

// ---------------------------------------------------------------------------
// Placement reconciliation

TEST(Reconcile, CaptureAndApplyRoundTripAPlacement) {
  cache::Placement p(2, 4);
  p.set_capacity(0, 2);
  p.set_capacity(1, 1);
  p.move_to_gpu(0, 1);
  p.move_to_gpu(0, 3);
  p.move_to_gpu(1, 2);
  const PlacementImage img = capture_placement(p);
  EXPECT_EQ(img.n_layers, 2);
  EXPECT_EQ(img.n_experts, 4);
  EXPECT_TRUE(img.gpu(0, 1));
  EXPECT_TRUE(img.gpu(0, 3));
  EXPECT_FALSE(img.gpu(0, 0));
  cache::Placement q(2, 4);
  q.set_capacity(0, 4);
  q.set_capacity(1, 4);
  q.move_to_gpu(0, 0);
  ASSERT_TRUE(apply_placement_image(img, q));
  for (int l = 0; l < 2; ++l) {
    EXPECT_EQ(q.capacity(l), p.capacity(l));
    for (int e = 0; e < 4; ++e) EXPECT_EQ(q.on_gpu(l, e), p.on_gpu(l, e));
  }
}

TEST(Reconcile, ApplyRejectsMismatchedDimensionsUntouched) {
  cache::Placement p(2, 4);
  p.set_capacity(0, 1);
  p.move_to_gpu(0, 0);
  const PlacementImage img = capture_placement(p);
  cache::Placement other(3, 4);
  other.set_capacity(0, 2);
  other.move_to_gpu(0, 2);
  EXPECT_FALSE(apply_placement_image(img, other));
  EXPECT_TRUE(other.on_gpu(0, 2)) << "rejected apply must not mutate";
  EXPECT_EQ(other.capacity(0), 2);
}

TEST(Reconcile, MigratesEvictsAndPublishesWeightGates) {
  cache::Placement p(2, 4);
  for (int l = 0; l < 2; ++l) {
    p.set_capacity(l, 2);
    p.move_to_gpu(l, 0);
    p.move_to_gpu(l, 1);
  }
  cache::PlacementArbiter arb(p);
  cache::Placement want(2, 4);
  for (int l = 0; l < 2; ++l) {
    want.set_capacity(l, 2);
    want.move_to_gpu(l, 2);
    want.move_to_gpu(l, 3);
  }
  sim::Timeline tl;
  const ReconcileResult r = reconcile_placement(capture_placement(want), arb,
                                                tl, 1.0, 0.002, /*session=*/7);
  EXPECT_EQ(r.migrated, 4);
  EXPECT_EQ(r.evicted, 4);
  EXPECT_EQ(r.refused, 0);
  EXPECT_GT(r.ready, 1.0);
  for (int l = 0; l < 2; ++l) {
    EXPECT_TRUE(arb.placement().on_gpu(l, 2));
    EXPECT_TRUE(arb.placement().on_gpu(l, 3));
    EXPECT_FALSE(arb.placement().on_gpu(l, 0));
    EXPECT_GT(arb.weight_ready(l, 2), 1.0)
        << "migrated weights must publish their arrival";
  }
}

TEST(Reconcile, PinnedResidentsAreRefusedNotEvicted) {
  cache::Placement p(1, 4);
  p.set_capacity(0, 2);
  p.move_to_gpu(0, 0);
  p.move_to_gpu(0, 1);
  cache::PlacementArbiter arb(p);
  arb.pin(0, 0, /*session=*/99);  // a concurrent session computes with 0
  cache::Placement want(1, 4);
  want.set_capacity(0, 2);
  want.move_to_gpu(0, 2);
  want.move_to_gpu(0, 3);
  sim::Timeline tl;
  const ReconcileResult r = reconcile_placement(capture_placement(want), arb,
                                                tl, 0.0, 0.002, /*session=*/7);
  // Expert 1 evicts, expert 0 stays pinned; one wanted expert fits in the
  // freed slot, the other is refused (the restored session runs it from the
  // CPU like any refused migration).
  EXPECT_EQ(r.evicted, 1);
  EXPECT_EQ(r.migrated, 1);
  EXPECT_EQ(r.refused, 1);
  EXPECT_TRUE(arb.placement().on_gpu(0, 0));
  arb.unpin(0, 0, 99);
}

// ---------------------------------------------------------------------------
// Session snapshot round trip: engines x seeds x hazards

struct SessionFixture {
  model::ModelConfig cfg = daop::testing::small_mixtral();
  sim::CostModel cm{sim::a6000_i9_platform()};
  model::OpCosts costs{cfg, cm};
  data::SequenceTrace trace;
  cache::Placement placement{1, 1};
  core::DaopConfig dcfg;

  explicit SessionFixture(std::uint64_t seed) {
    const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, seed);
    trace = gen.generate(0, 20, 10);
    const data::TraceGenerator calib(data::sharegpt_calibration(),
                                     cfg.n_layers, cfg.n_experts, cfg.top_k,
                                     seed ^ 0xCA11Bu);
    placement = cache::init_placement_calibrated(
        cfg.n_layers, cfg.n_experts, 0.469,
        cache::calibrate_activation_counts(calib, 6));
    dcfg.min_predict_layer = 1;
  }
};

struct LiveSession {
  std::unique_ptr<engines::Engine> engine;
  std::unique_ptr<sim::FaultModel> fault;
  sim::Timeline tl;
  std::unique_ptr<engines::SequenceSession> session;
};

LiveSession open_live(const SessionFixture& fx, eval::EngineKind kind,
                      const sim::HazardScenario& hz, std::uint64_t seed) {
  LiveSession ls;
  ls.engine = eval::make_engine(kind, fx.costs, fx.dcfg);
  ls.fault = std::make_unique<sim::FaultModel>(hz, seed ^ 0xFA017ULL);
  if (ls.fault->enabled()) ls.engine->set_fault_model(ls.fault.get());
  engines::SessionEnv env;
  env.timeline = &ls.tl;
  env.request_id = 42;
  ls.session = ls.engine->open_session(fx.trace, fx.placement, env);
  return ls;
}

TEST(SessionSnapshot, RoundTripIsByteStableAcrossEnginesSeedsAndHazards) {
  const eval::EngineKind kinds[] = {eval::EngineKind::Daop,
                                    eval::EngineKind::Fiddler,
                                    eval::EngineKind::MoEInfinity};
  const std::uint64_t seeds[] = {7, 23};
  const sim::HazardScenario hazards[] = {
      sim::HazardScenario{}, sim::make_hazard_scenario("all", 0.5),
      sim::make_hazard_scenario("expert-load", 0.8)};
  for (const auto kind : kinds) {
    for (const auto seed : seeds) {
      const SessionFixture fx(seed);
      for (const auto& hz : hazards) {
        SCOPED_TRACE(std::string(eval::engine_kind_name(kind)) + " seed " +
                     std::to_string(seed));
        LiveSession a = open_live(fx, kind, hz, seed);
        a.session->prefill();
        for (int t = 0; t < 5; ++t) ASSERT_TRUE(a.session->decode_step());
        const std::vector<std::uint8_t> snap = a.session->checkpoint();
        ASSERT_FALSE(snap.empty()) << "engine must support checkpointing";
        EXPECT_EQ(a.session->checkpoint(), snap)
            << "checkpoint() must be pure (byte-stable)";

        // Header peek agrees with the session without needing one.
        const auto info = engines::SequenceSession::peek(snap);
        ASSERT_TRUE(info.has_value());
        EXPECT_EQ(info->engine, a.session->engine_name());
        EXPECT_EQ(info->request_id, 42);
        EXPECT_EQ(info->step, 5);
        EXPECT_EQ(info->prompt_len, fx.trace.prompt_len);
        EXPECT_EQ(info->gen_len, fx.trace.gen_len);

        // Restoring into a FRESH identical environment reproduces the
        // snapshot byte-for-byte on re-checkpoint.
        LiveSession b = open_live(fx, kind, hz, seed);
        engines::RestoreOptions ro;
        ro.resume_floor = 0.0;
        ro.apply_rng_cursor = true;
        ASSERT_TRUE(b.session->restore(snap, ro));
        EXPECT_EQ(b.session->tokens_generated(), 5);
        EXPECT_EQ(b.session->checkpoint(), snap)
            << "restore must reconstruct the exact serialized state";

        // Both sessions continue to completion without tripping invariants.
        while (a.session->decode_step()) {
        }
        while (b.session->decode_step()) {
        }
        const engines::RunResult ra = a.session->close();
        const engines::RunResult rb = b.session->close();
        EXPECT_EQ(ra.generated_tokens, rb.generated_tokens);
      }
    }
  }
}

TEST(SessionSnapshot, EverySingleByteCorruptionIsRejectedAndSessionSurvives) {
  const eval::EngineKind kinds[] = {eval::EngineKind::Daop,
                                    eval::EngineKind::Fiddler,
                                    eval::EngineKind::MoEInfinity};
  for (const auto kind : kinds) {
    SCOPED_TRACE(eval::engine_kind_name(kind));
    const SessionFixture fx(7);
    const sim::HazardScenario calm;
    LiveSession a = open_live(fx, kind, calm, 7);
    a.session->prefill();
    for (int t = 0; t < 4; ++t) ASSERT_TRUE(a.session->decode_step());
    const std::vector<std::uint8_t> snap = a.session->checkpoint();
    ASSERT_FALSE(snap.empty());

    LiveSession b = open_live(fx, kind, calm, 7);
    engines::RestoreOptions ro;
    std::vector<std::uint8_t> bad = snap;
    for (std::size_t i = 0; i < snap.size(); ++i) {
      bad[i] ^= 0x01;
      EXPECT_FALSE(b.session->restore(bad, ro))
          << "corrupted byte " << i << " accepted";
      bad[i] = snap[i];
    }
    // After every rejection the session is untouched and the ordinary
    // prefill-replay fallback still works end to end.
    EXPECT_EQ(b.session->tokens_generated(), 0);
    b.session->prefill();
    while (b.session->decode_step()) {
    }
    const engines::RunResult r = b.session->close();
    EXPECT_EQ(r.generated_tokens, fx.trace.gen_len);
  }
}

TEST(SessionSnapshot, RestoreValidatesSessionIdentity) {
  const SessionFixture fx(7);
  const sim::HazardScenario calm;
  LiveSession a = open_live(fx, eval::EngineKind::Fiddler, calm, 7);
  a.session->prefill();
  ASSERT_TRUE(a.session->decode_step());
  const auto snap = a.session->checkpoint();
  ASSERT_FALSE(snap.empty());

  {
    // Wrong engine: a Fiddler snapshot cannot restore into a DAOP session.
    LiveSession b = open_live(fx, eval::EngineKind::Daop, calm, 7);
    EXPECT_FALSE(b.session->restore(snap, {}));
  }
  {
    // Wrong request id.
    LiveSession b;
    b.engine = eval::make_engine(eval::EngineKind::Fiddler, fx.costs, fx.dcfg);
    engines::SessionEnv env;
    env.timeline = &b.tl;
    env.request_id = 43;
    b.session = b.engine->open_session(fx.trace, fx.placement, env);
    EXPECT_FALSE(b.session->restore(snap, {}));
  }
}

TEST(SessionSnapshot, ResumeFloorShiftsTheRestoredFrontier) {
  const SessionFixture fx(23);
  const sim::HazardScenario calm;
  LiveSession a = open_live(fx, eval::EngineKind::Fiddler, calm, 23);
  a.session->prefill();
  for (int t = 0; t < 3; ++t) ASSERT_TRUE(a.session->decode_step());
  const double frontier = a.session->ready_time();
  const auto snap = a.session->checkpoint();
  ASSERT_FALSE(snap.empty());

  LiveSession b = open_live(fx, eval::EngineKind::Fiddler, calm, 23);
  engines::RestoreOptions ro;
  ro.resume_floor = frontier + 5.0;  // restore on a peer, later in time
  ASSERT_TRUE(b.session->restore(snap, ro));
  EXPECT_DOUBLE_EQ(b.session->ready_time(), frontier + 5.0);
  EXPECT_GE(b.session->start_time(), 5.0)
      << "session clock must shift with the frontier";
  while (b.session->decode_step()) {
  }
  const engines::RunResult r = b.session->close();
  EXPECT_EQ(r.generated_tokens, fx.trace.gen_len);
}

}  // namespace
}  // namespace daop::recovery
