// Warm-restart recovery: kill-and-recover bit-identity plus the cluster
// router's crash-consistent failover plane.
//
//  - TENTPOLE bit-identity: a session crashed mid-decode and restored from
//    its checkpoint (same environment) finishes with a RunResult that is
//    BIT-identical to an uninterrupted golden run — every time, energy and
//    counter field, across engines and hazard scenarios.
//  - Cross-environment continuation (Fiddler): restoring onto a fresh
//    timeline reproduces the golden run's per-step decode frontier and
//    final times exactly from the restore point onward.
//  - Router kill-and-recover: crash a node mid-decode under chaos; the
//    router warm-restarts lost sessions from peer-visible checkpoints,
//    conservation holds (lost == restored + replayed + shed), reruns are
//    bit-deterministic, and warm restore beats prefill replay on both
//    replayed-token count and recovery latency.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "cluster/serving.hpp"
#include "data/trace_generator.hpp"
#include "engines/session.hpp"
#include "eval/speed.hpp"
#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace daop::cluster {
namespace {

// ---------------------------------------------------------------------------
// Single-session kill-and-recover bit-identity

struct Fixture {
  model::ModelConfig cfg = daop::testing::small_mixtral();
  sim::CostModel cm{sim::a6000_i9_platform()};
  model::OpCosts costs{cfg, cm};
  data::SequenceTrace trace;
  cache::Placement placement{1, 1};
  core::DaopConfig dcfg;

  explicit Fixture(std::uint64_t seed) {
    const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, seed);
    trace = gen.generate(0, 24, 12);
    const data::TraceGenerator calib(data::sharegpt_calibration(),
                                     cfg.n_layers, cfg.n_experts, cfg.top_k,
                                     seed ^ 0xCA11Bu);
    placement = cache::init_placement_calibrated(
        cfg.n_layers, cfg.n_experts, 0.469,
        cache::calibrate_activation_counts(calib, 6));
    dcfg.min_predict_layer = 1;
  }
};

void expect_bit_identical(const engines::RunResult& a,
                          const engines::RunResult& b) {
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens);
  EXPECT_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_EQ(a.prefill_s, b.prefill_s);
  EXPECT_EQ(a.decode_s, b.decode_s);
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.tokens_per_s, b.tokens_per_s);
  EXPECT_EQ(a.decode_tokens_per_s, b.decode_tokens_per_s);
  EXPECT_EQ(a.energy.gpu_j, b.energy.gpu_j);
  EXPECT_EQ(a.energy.cpu_j, b.energy.cpu_j);
  EXPECT_EQ(a.energy.pcie_j, b.energy.pcie_j);
  EXPECT_EQ(a.energy.total_j, b.energy.total_j);
  EXPECT_EQ(a.tokens_per_kj, b.tokens_per_kj);
  EXPECT_EQ(a.counters.expert_migrations, b.counters.expert_migrations);
  EXPECT_EQ(a.counters.gpu_expert_execs, b.counters.gpu_expert_execs);
  EXPECT_EQ(a.counters.cpu_expert_execs, b.counters.cpu_expert_execs);
  EXPECT_EQ(a.counters.cache_hits, b.counters.cache_hits);
  EXPECT_EQ(a.counters.cache_misses, b.counters.cache_misses);
  EXPECT_EQ(a.counters.prefetch_hits, b.counters.prefetch_hits);
  EXPECT_EQ(a.counters.predictions, b.counters.predictions);
  EXPECT_EQ(a.counters.mispredictions, b.counters.mispredictions);
  EXPECT_EQ(a.counters.prefill_swaps, b.counters.prefill_swaps);
  EXPECT_EQ(a.counters.decode_swaps, b.counters.decode_swaps);
  EXPECT_EQ(a.counters.skipped_experts, b.counters.skipped_experts);
  EXPECT_EQ(a.counters.migration_retries, b.counters.migration_retries);
  EXPECT_EQ(a.counters.migration_aborts, b.counters.migration_aborts);
  EXPECT_EQ(a.counters.stale_precalcs, b.counters.stale_precalcs);
  EXPECT_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s);
}

/// Uninterrupted golden run of one session on its own environment.
engines::RunResult golden_run(const Fixture& fx, eval::EngineKind kind,
                              const sim::HazardScenario& hz,
                              std::uint64_t seed) {
  auto engine = eval::make_engine(kind, fx.costs, fx.dcfg);
  sim::FaultModel fm(hz, seed ^ 0xFA017ULL);
  if (fm.enabled()) engine->set_fault_model(&fm);
  sim::Timeline tl;
  engines::SessionEnv env;
  env.timeline = &tl;
  env.request_id = 7;
  auto s = engine->open_session(fx.trace, fx.placement, env);
  s->prefill();
  while (s->decode_step()) {
  }
  return s->close();
}

/// Crash the session exactly at a checkpoint, then restore a NEW session on
/// the same environment and drive it to completion.
engines::RunResult killed_and_recovered_run(const Fixture& fx,
                                            eval::EngineKind kind,
                                            const sim::HazardScenario& hz,
                                            std::uint64_t seed,
                                            int crash_step) {
  auto engine = eval::make_engine(kind, fx.costs, fx.dcfg);
  sim::FaultModel fm(hz, seed ^ 0xFA017ULL);
  if (fm.enabled()) engine->set_fault_model(&fm);
  sim::Timeline tl;
  engines::SessionEnv env;
  env.timeline = &tl;
  env.request_id = 7;
  std::vector<std::uint8_t> snap;
  {
    auto s = engine->open_session(fx.trace, fx.placement, env);
    s->prefill();
    for (int t = 0; t < crash_step; ++t) EXPECT_TRUE(s->decode_step());
    snap = s->checkpoint();
    EXPECT_FALSE(snap.empty());
    // The "crash": the session object dies without close(), exactly like a
    // node loss destroys in-flight sessions.
  }
  auto s = engine->open_session(fx.trace, fx.placement, env);
  engines::RestoreOptions ro;
  ro.resume_floor = 0.0;       // at/before the frontier: zero shift
  ro.apply_rng_cursor = true;  // same environment, same hazard streams
  EXPECT_TRUE(s->restore(snap, ro));
  EXPECT_EQ(s->tokens_generated(), crash_step);
  while (s->decode_step()) {
  }
  return s->close();
}

TEST(WarmRestart, KilledAndRecoveredRunIsBitIdenticalToGolden) {
  const eval::EngineKind kinds[] = {eval::EngineKind::Daop,
                                    eval::EngineKind::Fiddler,
                                    eval::EngineKind::MoEInfinity};
  const sim::HazardScenario hazards[] = {
      sim::HazardScenario{}, sim::make_hazard_scenario("all", 0.6)};
  for (const auto kind : kinds) {
    for (const auto& hz : hazards) {
      SCOPED_TRACE(std::string(eval::engine_kind_name(kind)) +
                   (hz.enabled() ? " under hazards" : " calm"));
      const Fixture fx(7);
      const engines::RunResult g = golden_run(fx, kind, hz, 7);
      for (const int crash_step : {1, 6, 11}) {
        SCOPED_TRACE("crash at decode step " + std::to_string(crash_step));
        const engines::RunResult r =
            killed_and_recovered_run(fx, kind, hz, 7, crash_step);
        expect_bit_identical(g, r);
      }
    }
  }
}

TEST(WarmRestart, CrossEnvironmentRestoreContinuesTheExactFrontier) {
  // Fiddler schedules no speculative work past the decode frontier, so a
  // snapshot restored onto a FRESH timeline (a cold peer) must continue the
  // golden run's per-step frontier exactly.
  const Fixture fx(23);
  const sim::HazardScenario hz = sim::make_hazard_scenario("expert-load", 0.7);
  const int crash_step = 5;

  // Golden: record the frontier after every decode step.
  std::vector<double> golden_frontier;
  engines::RunResult g;
  {
    auto engine = eval::make_engine(eval::EngineKind::Fiddler, fx.costs,
                                    fx.dcfg);
    sim::FaultModel fm(hz, 23 ^ 0xFA017ULL);
    engine->set_fault_model(&fm);
    sim::Timeline tl;
    engines::SessionEnv env;
    env.timeline = &tl;
    env.request_id = 7;
    auto s = engine->open_session(fx.trace, fx.placement, env);
    s->prefill();
    while (s->decode_step()) golden_frontier.push_back(s->ready_time());
    g = s->close();
  }

  // Take the snapshot at the crash step on one environment...
  std::vector<std::uint8_t> snap;
  {
    auto engine = eval::make_engine(eval::EngineKind::Fiddler, fx.costs,
                                    fx.dcfg);
    sim::FaultModel fm(hz, 23 ^ 0xFA017ULL);
    engine->set_fault_model(&fm);
    sim::Timeline tl;
    engines::SessionEnv env;
    env.timeline = &tl;
    env.request_id = 7;
    auto s = engine->open_session(fx.trace, fx.placement, env);
    s->prefill();
    for (int t = 0; t < crash_step; ++t) ASSERT_TRUE(s->decode_step());
    snap = s->checkpoint();
    ASSERT_FALSE(snap.empty());
  }

  // ...and resume on a brand-new one (fresh timeline, fresh fault model of
  // the same scenario/seed — the peer replays the suspended hazard streams
  // via the snapshot's RNG cursor).
  auto engine = eval::make_engine(eval::EngineKind::Fiddler, fx.costs,
                                  fx.dcfg);
  sim::FaultModel fm(hz, 23 ^ 0xFA017ULL);
  engine->set_fault_model(&fm);
  sim::Timeline tl;
  engines::SessionEnv env;
  env.timeline = &tl;
  env.request_id = 7;
  auto s = engine->open_session(fx.trace, fx.placement, env);
  engines::RestoreOptions ro;
  ro.resume_floor = 0.0;
  ro.apply_rng_cursor = true;
  ASSERT_TRUE(s->restore(snap, ro));
  EXPECT_EQ(s->ready_time(),
            golden_frontier[static_cast<std::size_t>(crash_step - 1)]);
  int step = crash_step;
  while (s->decode_step()) {
    ASSERT_LT(static_cast<std::size_t>(step), golden_frontier.size());
    EXPECT_EQ(s->ready_time(),
              golden_frontier[static_cast<std::size_t>(step)])
        << "decode step " << step << " diverged from the golden frontier";
    ++step;
  }
  EXPECT_EQ(step, fx.trace.gen_len);
  const engines::RunResult r = s->close();
  EXPECT_EQ(r.prefill_s, g.prefill_s);
  EXPECT_EQ(r.decode_s, g.decode_s);
  EXPECT_EQ(r.total_s, g.total_s);
  EXPECT_EQ(r.tokens_per_s, g.tokens_per_s);
  EXPECT_EQ(r.counters.expert_migrations, g.counters.expert_migrations);
  EXPECT_EQ(r.counters.cpu_expert_execs, g.counters.cpu_expert_execs);
  EXPECT_EQ(r.counters.migration_retries, g.counters.migration_retries);
}

// ---------------------------------------------------------------------------
// Router kill-and-recover

ClusterServingOptions chaos_options(int nodes) {
  ClusterServingOptions opt;
  opt.n_nodes = nodes;
  opt.base.arrival_rate_rps = 4.0;  // keep nodes busy at crash time
  opt.base.n_requests = 16;
  opt.base.min_prompt = 48;
  opt.base.max_prompt = 64;
  opt.base.min_gen = 16;
  opt.base.max_gen = 32;
  opt.base.calibration_seqs = 4;
  opt.cluster.max_concurrent_per_node = 2;
  opt.cluster.health.enabled = true;
  opt.cluster.health.probe_interval_s = 0.5;
  opt.cluster.health.eject_after = 1;
  opt.cluster.failover_budget = 3;
  opt.cluster.failover_backoff_s = 0.05;
  opt.cluster.crash_node = 1;
  opt.cluster.crash_time_s = 2.0;
  opt.cluster.checkpoint.every_steps = 2;
  return opt;
}

ClusterServingResult crun(eval::EngineKind kind,
                          const ClusterServingOptions& opt) {
  return run_cluster_serving_eval(kind, daop::testing::small_mixtral(),
                                  sim::a6000_i9_platform(),
                                  data::sharegpt_calibration(), opt);
}

double p99(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(v.size()))) - 1;
  return v[std::min(i, v.size() - 1)];
}

TEST(ClusterWarmRestart, KillAndRecoverConservesEverySessionAcrossSeeds) {
  long long total_restores = 0;
  for (const std::uint64_t seed : {3u, 11u, 29u}) {
    auto opt = chaos_options(4);
    opt.base.seed = seed;
    opt.node_hazards = sim::make_hazard_scenario("cluster", 0.6);
    const auto r = crun(eval::EngineKind::Daop, opt);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(r.served + r.shed, 16);
    // Loss-episode conservation: every lost session resolves exactly once.
    // (Also DAOP_CHECKed inside run(); this re-checks the exported stats.)
    EXPECT_EQ(r.recovery.lost_sessions, r.recovery.recovered_restored +
                                            r.recovery.recovered_replayed +
                                            r.recovery.recovered_shed);
    EXPECT_EQ(r.recovery.restores, r.recovery.recovered_restored);
    EXPECT_EQ(static_cast<long long>(r.recovery.events.size()),
              r.recovery.recovered_restored + r.recovery.recovered_replayed);
    EXPECT_EQ(r.recovery.recovery_latency_s.size(), r.recovery.events.size());
    EXPECT_GE(r.recovery.lost_sessions, 1)
        << "a crash at 2s under 4 rps must lose at least one session";
    for (const auto& ev : r.recovery.events) {
      EXPECT_GE(ev.latency_s, 0.0);
      EXPECT_GE(ev.admit_time, ev.loss_time);
      if (ev.restored) {
        EXPECT_GT(ev.step, 0);
      }
    }
    total_restores += r.recovery.restores;
  }
  EXPECT_GE(total_restores, 1)
      << "at least one seed must recover via warm restore";
}

TEST(ClusterWarmRestart, KillAndRecoverIsDeterministicAcrossReruns) {
  auto opt = chaos_options(4);
  opt.base.seed = 11;
  opt.node_hazards = sim::make_hazard_scenario("cluster", 0.6);
  const auto a = crun(eval::EngineKind::Daop, opt);
  const auto b = crun(eval::EngineKind::Daop, opt);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);  // bit-identical, not approximate
  EXPECT_EQ(a.recovery.checkpoints_written, b.recovery.checkpoints_written);
  EXPECT_EQ(a.recovery.checkpoint_bytes, b.recovery.checkpoint_bytes);
  EXPECT_EQ(a.recovery.torn_writes, b.recovery.torn_writes);
  EXPECT_EQ(a.recovery.restores, b.recovery.restores);
  EXPECT_EQ(a.recovery.restored_tokens, b.recovery.restored_tokens);
  EXPECT_EQ(a.recovery.lost_sessions, b.recovery.lost_sessions);
  EXPECT_EQ(a.recovery.recovered_restored, b.recovery.recovered_restored);
  EXPECT_EQ(a.recovery.recovered_replayed, b.recovery.recovered_replayed);
  EXPECT_EQ(a.recovery.recovered_shed, b.recovery.recovered_shed);
  EXPECT_EQ(a.recovery.reconcile_migrations, b.recovery.reconcile_migrations);
  ASSERT_EQ(a.recovery.events.size(), b.recovery.events.size());
  for (std::size_t i = 0; i < a.recovery.events.size(); ++i) {
    EXPECT_EQ(a.recovery.events[i].request_id, b.recovery.events[i].request_id);
    EXPECT_EQ(a.recovery.events[i].node, b.recovery.events[i].node);
    EXPECT_EQ(a.recovery.events[i].restored, b.recovery.events[i].restored);
    EXPECT_EQ(a.recovery.events[i].step, b.recovery.events[i].step);
    EXPECT_EQ(a.recovery.events[i].latency_s, b.recovery.events[i].latency_s);
  }
  ASSERT_EQ(a.request_log.size(), b.request_log.size());
  for (std::size_t i = 0; i < a.request_log.size(); ++i) {
    EXPECT_EQ(a.request_log[i].outcome, b.request_log[i].outcome);
    EXPECT_EQ(a.request_log[i].restores, b.request_log[i].restores);
    EXPECT_EQ(a.request_log[i].recovery, b.request_log[i].recovery);
  }
}

TEST(ClusterWarmRestart, WarmRestoreBeatsPrefillReplay) {
  auto on = chaos_options(4);
  on.base.seed = 11;
  on.base.min_gen = 24;  // sessions deep into decode when the node dies
  on.cluster.crash_time_s = 2.5;
  on.cluster.checkpoint.every_steps = 1;
  auto off = on;
  off.cluster.checkpoint.every_steps = 0;  // prefill replay only

  const auto r_on = crun(eval::EngineKind::Daop, on);
  const auto r_off = crun(eval::EngineKind::Daop, off);

  ASSERT_GE(r_on.recovery.restores, 1)
      << "scenario must actually exercise warm restore";
  EXPECT_EQ(r_off.recovery.restores, 0);
  EXPECT_EQ(r_off.recovery.checkpoints_written, 0);
  ASSERT_GE(r_off.recovery.lost_sessions, 1);

  // The whole point of the checkpoint plane: fewer regenerated tokens and
  // faster recovery than replaying prefill from scratch.
  EXPECT_LT(r_on.cluster.replayed_tokens, r_off.cluster.replayed_tokens);
  ASSERT_FALSE(r_on.recovery.recovery_latency_s.empty());
  ASSERT_FALSE(r_off.recovery.recovery_latency_s.empty());
  EXPECT_LT(p99(r_on.recovery.recovery_latency_s),
            p99(r_off.recovery.recovery_latency_s));
}

TEST(ClusterWarmRestart, TornAndCorruptCheckpointChaosNeverCrashes) {
  auto opt = chaos_options(4);
  opt.base.seed = 29;
  opt.cluster.checkpoint.every_steps = 1;  // maximum write pressure
  // Node chaos plus certain-rate checkpoint damage: every restore path must
  // validate, fall back, and keep conservation — never resume corrupt state.
  opt.node_hazards = sim::make_hazard_scenario("cluster", 0.6);
  opt.node_hazards.ckpt_torn_write_prob = 0.5;
  opt.node_hazards.ckpt_corrupt_prob = 0.25;
  opt.node_hazards.validate();
  const auto r = crun(eval::EngineKind::Daop, opt);
  EXPECT_EQ(r.served + r.shed, 16);
  EXPECT_EQ(r.recovery.lost_sessions, r.recovery.recovered_restored +
                                          r.recovery.recovered_replayed +
                                          r.recovery.recovered_shed);
  EXPECT_GT(r.recovery.checkpoints_written, 0);
  EXPECT_GT(r.recovery.torn_writes + r.recovery.corrupt_writes, 0)
      << "certain-rate hazards must damage at least one write";
}

TEST(ClusterWarmRestart, DisabledCheckpointingKeepsRecoveryPlaneInert) {
  auto opt = chaos_options(4);
  opt.base.seed = 3;
  opt.cluster.checkpoint.every_steps = 0;
  opt.node_hazards = sim::make_hazard_scenario("cluster", 0.6);
  const auto r = crun(eval::EngineKind::Fiddler, opt);
  EXPECT_EQ(r.recovery.checkpoints_written, 0);
  EXPECT_EQ(r.recovery.checkpoint_bytes, 0);
  EXPECT_EQ(r.recovery.restores, 0);
  EXPECT_EQ(r.recovery.recovered_restored, 0);
  // Loss episodes are still conserved — they just all resolve by replay or
  // shed.
  EXPECT_EQ(r.recovery.lost_sessions,
            r.recovery.recovered_replayed + r.recovery.recovered_shed);
  for (const auto& e : r.request_log) {
    EXPECT_NE(e.recovery, "restored");
    EXPECT_EQ(e.restores, 0);
  }
}

TEST(ClusterWarmRestart, RequestLogCarriesTheRecoveryPath) {
  auto opt = chaos_options(4);
  opt.base.seed = 11;
  opt.node_hazards = sim::make_hazard_scenario("cluster", 0.6);
  const auto r = crun(eval::EngineKind::Daop, opt);
  long long restored_entries = 0;
  for (const auto& e : r.request_log) {
    if (e.restores > 0) {
      EXPECT_EQ(e.recovery, "restored")
          << "request " << e.id << " restored but labeled " << e.recovery;
      ++restored_entries;
    }
    if (e.recovery == "none") {
      EXPECT_EQ(e.restores, 0);
    }
    if (e.recovery == "shed") {
      EXPECT_NE(e.outcome, "served");
    }
  }
  // Every request whose LAST episode warm-restored counts at least one
  // restore; chained episodes can restore more than once per request.
  long long restored_last = 0;
  for (const auto& e : r.request_log) {
    if (e.recovery == "restored") ++restored_last;
  }
  EXPECT_LE(restored_last, restored_entries);
  EXPECT_GE(restored_entries, 1) << "seed 11 must warm-restore something";
}

}  // namespace
}  // namespace daop::cluster
