// Determinism regression: observability must be invisible to the simulation
// and itself reproducible. Two identical runs with metrics + tracing attached
// export byte-identical Prometheus text; a run WITH observability finishes at
// the bit-identical simulated times of a run without it; and concurrent
// recording through the ThreadPool cannot change an integer-valued export.
#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "common/thread_pool.hpp"
#include "data/trace_generator.hpp"
#include "eval/serving.hpp"
#include "eval/speed.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span_tracer.hpp"
#include "sim/trace_export.hpp"

namespace daop::eval {
namespace {

SpeedEvalOptions fast_speed_options() {
  SpeedEvalOptions opt;
  opt.n_seqs = 2;
  opt.prompt_len = 16;
  opt.gen_len = 12;
  opt.calibration_seqs = 4;
  return opt;
}

TEST(ObsDeterminism, PrometheusExportByteIdenticalAcrossRuns) {
  for (auto kind : {EngineKind::Fiddler, EngineKind::Daop,
                    EngineKind::MixtralOffloading}) {
    obs::MetricsRegistry reg_a;
    obs::MetricsRegistry reg_b;
    auto opt = fast_speed_options();
    opt.metrics = &reg_a;
    run_speed_eval(kind, daop::testing::small_mixtral(),
                   sim::a6000_i9_platform(), data::c4(), opt);
    opt.metrics = &reg_b;
    run_speed_eval(kind, daop::testing::small_mixtral(),
                   sim::a6000_i9_platform(), data::c4(), opt);
    EXPECT_EQ(reg_a.to_prometheus(), reg_b.to_prometheus());
    EXPECT_EQ(reg_a.to_json(), reg_b.to_json());
    EXPECT_FALSE(reg_a.empty());
  }
}

TEST(ObsDeterminism, TracingNeverPerturbsEngineTimelines) {
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 7);
  const auto trace = gen.generate(0, 16, 12);
  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, 99);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 6));

  for (auto kind :
       {EngineKind::MoEOnDemand, EngineKind::DeepSpeedMII,
        EngineKind::MixtralOffloading, EngineKind::PreGatedMoE,
        EngineKind::EdgeMoE, EngineKind::MoEInfinity, EngineKind::Fiddler,
        EngineKind::Daop}) {
    SCOPED_TRACE(engine_kind_name(kind));
    auto plain = make_engine(kind, costs);
    const auto r_plain = plain->run(trace, placement);

    auto traced = make_engine(kind, costs);
    obs::SpanTracer tracer;
    traced->set_tracer(&tracer);
    sim::Timeline tl;
    tl.set_record_intervals(true);
    const auto r_traced = traced->run(trace, placement, &tl);

    // Bit-identical simulated times, not merely close: tracing is passive.
    EXPECT_EQ(r_plain.total_s, r_traced.total_s);
    EXPECT_EQ(r_plain.prefill_s, r_traced.prefill_s);
    EXPECT_EQ(r_plain.decode_s, r_traced.decode_s);
    EXPECT_EQ(r_plain.energy.total_j, r_traced.energy.total_j);
    EXPECT_EQ(r_plain.counters.cache_hits, r_traced.counters.cache_hits);
    EXPECT_EQ(r_plain.counters.expert_migrations,
              r_traced.counters.expert_migrations);
    // The tracer actually saw the run (every engine records Token spans).
    EXPECT_FALSE(tracer.spans().empty());
  }
}

TEST(ObsDeterminism, ProfilerNeverPerturbsEngineRuns) {
  // A profiled run must be bit-identical to an unprofiled one: simulated
  // times, energy, counters AND the exported trace bytes. The profiler only
  // reads already-recorded state at teardown.
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 7);
  const auto trace = gen.generate(0, 16, 12);
  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, 99);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 6));

  for (auto kind :
       {EngineKind::MoEOnDemand, EngineKind::DeepSpeedMII,
        EngineKind::MixtralOffloading, EngineKind::PreGatedMoE,
        EngineKind::EdgeMoE, EngineKind::MoEInfinity, EngineKind::Fiddler,
        EngineKind::Daop}) {
    SCOPED_TRACE(engine_kind_name(kind));
    auto run_once = [&](obs::Profiler* prof, std::string* trace_json) {
      auto engine = make_engine(kind, costs);
      obs::SpanTracer tracer;
      engine->set_tracer(&tracer);
      if (prof != nullptr) engine->set_profiler(prof);
      sim::Timeline tl;
      tl.set_record_intervals(true);
      const auto r = engine->run(trace, placement, &tl);
      *trace_json = sim::to_chrome_trace_json(tl, &tracer);
      return r;
    };
    std::string plain_trace, profiled_trace;
    const auto r_plain = run_once(nullptr, &plain_trace);
    obs::Profiler prof;
    const auto r_prof = run_once(&prof, &profiled_trace);

    EXPECT_EQ(r_plain.total_s, r_prof.total_s);
    EXPECT_EQ(r_plain.prefill_s, r_prof.prefill_s);
    EXPECT_EQ(r_plain.decode_s, r_prof.decode_s);
    EXPECT_EQ(r_plain.energy.total_j, r_prof.energy.total_j);
    EXPECT_EQ(r_plain.counters.cache_hits, r_prof.counters.cache_hits);
    EXPECT_EQ(r_plain.counters.gpu_expert_execs,
              r_prof.counters.gpu_expert_execs);
    EXPECT_EQ(r_plain.counters.cpu_expert_execs,
              r_prof.counters.cpu_expert_execs);
    EXPECT_EQ(r_plain.counters.expert_migrations,
              r_prof.counters.expert_migrations);
    EXPECT_EQ(r_plain.counters.hazard_stall_s, r_prof.counters.hazard_stall_s);
    // Trace bytes identical: profiling adds no tags, spans or intervals.
    EXPECT_EQ(plain_trace, profiled_trace);
    // ...and the profiler actually recorded the run.
    EXPECT_EQ(prof.runs().size(), 1u);
  }
}

TEST(ObsDeterminism, ProfiledServingMatchesUnprofiledBitExact) {
  for (int max_concurrent : {1, 3}) {
    SCOPED_TRACE(max_concurrent == 1 ? "sequential" : "continuous batching");
    ServingOptions base;
    base.arrival_rate_rps = 0.05;
    base.n_requests = 5;
    base.min_prompt = 16;
    base.max_prompt = 24;
    base.min_gen = 12;
    base.max_gen = 16;
    base.calibration_seqs = 4;
    base.max_concurrent = max_concurrent;
    const auto plain = run_serving_eval(
        EngineKind::Daop, daop::testing::small_mixtral(),
        sim::a6000_i9_platform(), data::sharegpt_calibration(), base);

    obs::Profiler prof;
    auto profiled = base;
    profiled.profiler = &prof;
    const auto observed = run_serving_eval(
        EngineKind::Daop, daop::testing::small_mixtral(),
        sim::a6000_i9_platform(), data::sharegpt_calibration(), profiled);
    EXPECT_EQ(plain.makespan_s, observed.makespan_s);
    EXPECT_EQ(plain.latency_s.mean, observed.latency_s.mean);
    EXPECT_EQ(plain.ttft_s.p99, observed.ttft_s.p99);
    EXPECT_EQ(plain.throughput_tps, observed.throughput_tps);
    EXPECT_EQ(plain.counters.hazard_stall_s, observed.counters.hazard_stall_s);
    EXPECT_FALSE(prof.empty());
  }
}

TEST(ObsDeterminism, TracerSpansStayWithinRunSpan) {
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 7);
  const auto trace = gen.generate(0, 16, 12);
  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, 99);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 6));
  auto engine = make_engine(EngineKind::Daop, costs);
  obs::SpanTracer tracer;
  engine->set_tracer(&tracer);
  const auto r = engine->run(trace, placement);
  ASSERT_FALSE(tracer.spans().empty());
  for (const auto& sp : tracer.spans()) {
    EXPECT_GE(sp.start, 0.0);
    EXPECT_LE(sp.end, r.total_s + 1e-9);
    EXPECT_LE(sp.start, sp.end);
  }
}

TEST(ObsDeterminism, ServingUnaffectedByObservability) {
  ServingOptions base;
  base.arrival_rate_rps = 0.05;
  base.n_requests = 5;
  base.min_prompt = 16;
  base.max_prompt = 24;
  base.min_gen = 12;
  base.max_gen = 16;
  base.calibration_seqs = 4;

  const auto plain = run_serving_eval(
      EngineKind::Daop, daop::testing::small_mixtral(),
      sim::a6000_i9_platform(), data::sharegpt_calibration(), base);

  obs::MetricsRegistry reg;
  obs::SpanTracer tracer;
  auto instrumented = base;
  instrumented.metrics = &reg;
  instrumented.tracer = &tracer;
  const auto observed = run_serving_eval(
      EngineKind::Daop, daop::testing::small_mixtral(),
      sim::a6000_i9_platform(), data::sharegpt_calibration(), instrumented);

  EXPECT_EQ(plain.makespan_s, observed.makespan_s);
  EXPECT_EQ(plain.latency_s.mean, observed.latency_s.mean);
  EXPECT_EQ(plain.ttft_s.p99, observed.ttft_s.p99);
  EXPECT_EQ(plain.throughput_tps, observed.throughput_tps);
  EXPECT_FALSE(reg.empty());
  EXPECT_FALSE(tracer.spans().empty());
}

TEST(ObsDeterminism, ChromeTraceByteIdenticalAcrossRuns) {
  auto render = [] {
    const model::ModelConfig cfg = daop::testing::small_mixtral();
    const sim::CostModel cm(sim::a6000_i9_platform());
    const model::OpCosts costs(cfg, cm);
    const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, 7);
    const data::TraceGenerator calib(data::sharegpt_calibration(),
                                     cfg.n_layers, cfg.n_experts, cfg.top_k,
                                     99);
    const auto placement = cache::init_placement_calibrated(
        cfg.n_layers, cfg.n_experts, 0.469,
        cache::calibrate_activation_counts(calib, 6));
    auto engine = make_engine(EngineKind::Daop, costs);
    obs::SpanTracer tracer;
    engine->set_tracer(&tracer);
    sim::Timeline tl;
    tl.set_record_intervals(true);
    engine->run(gen.generate(0, 16, 12), placement, &tl);
    return sim::to_chrome_trace_json(tl, &tracer);
  };
  EXPECT_EQ(render(), render());
}

TEST(ObsDeterminism, ThreadPoolRecordingKeepsExportExact) {
  // Recording from the global ThreadPool (the same pool the functional plane
  // uses) must not lose or double any integer increment, so the export is
  // byte-identical to a serial recording regardless of interleaving.
  constexpr std::int64_t kN = 5000;
  obs::MetricsRegistry parallel_reg;
  ThreadPool::global().parallel_for(kN, [&](std::int64_t i) {
    parallel_reg
        .counter("daop_tp_total", "h", {{"mod", i % 2 == 0 ? "0" : "1"}})
        .inc();
    parallel_reg.histogram("daop_tp_seconds", "h", {0.5, 1.0})
        .observe(i % 2 == 0 ? 0.25 : 0.75);
  });

  obs::MetricsRegistry serial_reg;
  for (std::int64_t i = 0; i < kN; ++i) {
    serial_reg
        .counter("daop_tp_total", "h", {{"mod", i % 2 == 0 ? "0" : "1"}})
        .inc();
    serial_reg.histogram("daop_tp_seconds", "h", {0.5, 1.0})
        .observe(i % 2 == 0 ? 0.25 : 0.75);
  }
  EXPECT_EQ(parallel_reg.to_prometheus(), serial_reg.to_prometheus());
}

}  // namespace
}  // namespace daop::eval
