// Golden-trace snapshot: a fixed seed/workload/engine run exported through
// to_chrome_trace_json must keep a stable shape — per-track event counts,
// monotonic timestamps within each lane, and flow arrows whose endpoints
// anchor to real spans. The committed expectation is a compact summary (not
// the raw JSON) so cosmetic format changes don't churn the test, but any
// change to WHAT is traced does.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"
#include "obs/span_tracer.hpp"
#include "sim/trace_export.hpp"

namespace daop::sim {
namespace {

// ---------------------------------------------------------------------------
// Minimal scanner for the exporter's one-event-per-line JSON.

struct Event {
  std::string ph;    // "X", "i", "s", "f"
  int tid = -1;
  double ts = 0.0;
  double dur = 0.0;  // "X" only
  long long id = -1; // flow events only
};

std::string find_string_field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return "";
  const auto end = line.find('"', pos + pat.size());
  return line.substr(pos + pat.size(), end - pos - pat.size());
}

double find_number_field(const std::string& line, const std::string& key,
                         double def = -1.0) {
  const std::string pat = "\"" + key + "\":";
  const auto pos = line.find(pat);
  if (pos == std::string::npos) return def;
  return std::stod(line.substr(pos + pat.size()));
}

std::vector<Event> parse_events(const std::string& json) {
  const auto begin = json.find("\"traceEvents\":[\n");
  const auto end = json.find("\n],");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  std::istringstream body(
      json.substr(begin + 16, end - begin - 16));
  std::vector<Event> events;
  std::string line;
  while (std::getline(body, line)) {
    if (line.empty()) continue;
    Event ev;
    ev.ph = find_string_field(line, "ph");
    ev.tid = static_cast<int>(find_number_field(line, "tid"));
    ev.ts = find_number_field(line, "ts");
    ev.dur = find_number_field(line, "dur", 0.0);
    ev.id = static_cast<long long>(find_number_field(line, "id"));
    EXPECT_FALSE(ev.ph.empty()) << "unparsable event line: " << line;
    events.push_back(ev);
  }
  return events;
}

std::map<int, std::string> parse_thread_names(const std::string& json) {
  std::map<int, std::string> names;
  std::size_t pos = 0;
  const std::string pat = "\"thread_name_";
  while ((pos = json.find(pat, pos)) != std::string::npos) {
    pos += pat.size();
    const int tid = std::stoi(json.substr(pos));
    const auto vstart = json.find(":\"", pos) + 2;
    const auto vend = json.find('"', vstart);
    names[tid] = json.substr(vstart, vend - vstart);
    pos = vend;
  }
  return names;
}

// ---------------------------------------------------------------------------

std::string traced_daop_json() {
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 7);
  const auto trace = gen.generate(0, 12, 8);
  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, 99);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 6));

  // small_mixtral has 4 layers; the default min_predict_layer (5) would gate
  // the prediction/pre-calc path off entirely. Lower it so the golden trace
  // exercises prediction instants, pre-calc spans, and flow arrows.
  core::DaopConfig dcfg;
  dcfg.min_predict_layer = 1;
  auto engine = eval::make_engine(eval::EngineKind::Daop, costs, dcfg);
  obs::SpanTracer tracer;
  engine->set_tracer(&tracer);
  Timeline tl;
  tl.set_record_intervals(true);
  engine->run(trace, placement, &tl);
  return to_chrome_trace_json(tl, &tracer);
}

/// The committed golden shape of the fixed DAOP run: slices (X) and
/// instants (i) per named lane, plus the flow-arrow count. Regenerate by
/// running this test and copying the "actual" from the failure output after
/// an intentional tracing change.
constexpr const char* kExpectedSummary =
    "CPU: X=50 i=0\n"
    "Expert CPU: X=30 i=0\n"
    "Expert GPU: X=48 i=0\n"
    "GPU: X=84 i=0\n"
    "Gate: X=0 i=32\n"
    "Migration: X=8 i=0\n"
    "PCIe D2H: X=50 i=0\n"
    "PCIe H2D: X=58 i=0\n"
    "Pre-calc: X=20 i=14\n"
    "Prediction: X=0 i=24\n"
    "Token: X=9 i=0\n"
    "flows: 34\n";

TEST(TraceSnapshot, GoldenEventCountsPerTrack) {
  const std::string json = traced_daop_json();
  const auto events = parse_events(json);
  const auto names = parse_thread_names(json);

  std::map<std::string, std::pair<int, int>> counts;  // name -> (X, i)
  int flows = 0;
  for (const auto& ev : events) {
    if (ev.ph == "s") {
      ++flows;
      continue;
    }
    if (ev.ph == "f") continue;
    ASSERT_TRUE(names.count(ev.tid)) << "event on unnamed tid " << ev.tid;
    auto& c = counts[names.at(ev.tid)];
    if (ev.ph == "X") ++c.first;
    if (ev.ph == "i") ++c.second;
  }
  // Resource lanes first (insertion by tid would interleave; report sorted
  // by name inside each group for stability).
  std::string summary;
  for (const auto& [name, c] : counts) {
    summary += name + ": X=" + std::to_string(c.first) +
               " i=" + std::to_string(c.second) + "\n";
  }
  summary += "flows: " + std::to_string(flows) + "\n";
  EXPECT_EQ(summary, kExpectedSummary);
}

TEST(TraceSnapshot, TimestampsNonNegativeAndResourceLanesMonotonic) {
  const std::string json = traced_daop_json();
  const auto events = parse_events(json);
  std::map<int, double> last_start;
  for (const auto& ev : events) {
    EXPECT_GE(ev.ts, 0.0);
    EXPECT_GE(ev.dur, 0.0);
    // Each timeline resource serializes its ops, so slice starts within a
    // resource lane (tid 0..3) appear in non-decreasing order.
    if (ev.ph == "X" && ev.tid < kNumRes) {
      auto [it, inserted] = last_start.try_emplace(ev.tid, ev.ts);
      if (!inserted) {
        EXPECT_GE(ev.ts, it->second) << "lane " << ev.tid << " went backwards";
        it->second = ev.ts;
      }
    }
  }
}

TEST(TraceSnapshot, FlowArrowsAnchorToRealSpans) {
  const std::string json = traced_daop_json();
  const auto events = parse_events(json);

  // Collect span boundaries per tid.
  std::map<int, std::vector<std::pair<double, double>>> spans;
  std::map<long long, const Event*> flow_starts;
  std::map<long long, const Event*> flow_finishes;
  for (const auto& ev : events) {
    if (ev.ph == "X" || ev.ph == "i") {
      spans[ev.tid].emplace_back(ev.ts, ev.ts + ev.dur);
    } else if (ev.ph == "s") {
      EXPECT_FALSE(flow_starts.count(ev.id)) << "duplicate flow id " << ev.id;
      flow_starts[ev.id] = &ev;
    } else if (ev.ph == "f") {
      EXPECT_FALSE(flow_finishes.count(ev.id));
      flow_finishes[ev.id] = &ev;
    }
  }
  ASSERT_FALSE(flow_starts.empty());
  // Every flow is a matched s/f pair whose endpoints coincide with a span
  // end (producer) and a span start (consumer) on their respective lanes.
  EXPECT_EQ(flow_starts.size(), flow_finishes.size());
  auto touches = [&](int tid, double ts, bool at_end) {
    for (const auto& [s, e] : spans[tid]) {
      if (std::abs((at_end ? e : s) - ts) < 1e-6) return true;
    }
    return false;
  };
  for (const auto& [id, s] : flow_starts) {
    ASSERT_TRUE(flow_finishes.count(id)) << "unterminated flow " << id;
    const Event* f = flow_finishes.at(id);
    EXPECT_TRUE(touches(s->tid, s->ts, true))
        << "flow " << id << " start not at a span end (tid " << s->tid << ")";
    EXPECT_TRUE(touches(f->tid, f->ts, false))
        << "flow " << id << " finish not at a span start (tid " << f->tid
        << ")";
    // Causality: an effect cannot precede its cause.
    EXPECT_LE(s->ts, f->ts + 1e-6) << "flow " << id << " goes backwards";
  }
}

TEST(TraceSnapshot, NullTracerOutputIdenticalToSeedFormat) {
  // With no tracer and no hazards the export must not mention span lanes or
  // the hazard track at all — byte-compatible with the pre-observability
  // format the seed's tooling parses.
  Timeline tl;
  tl.set_record_intervals(true);
  tl.schedule(Res::GpuStream, 0.0, 0.001, "op");
  const std::string json = to_chrome_trace_json(tl);
  EXPECT_EQ(json.find("thread_name_90"), std::string::npos);
  EXPECT_EQ(json.find("thread_name_100"), std::string::npos);
  EXPECT_EQ(json.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_EQ(json, to_chrome_trace_json(tl, nullptr));
}

}  // namespace
}  // namespace daop::sim
