// Time-series recorder: snapshot/delta windowing semantics, grid sealing,
// cumulative-total feeds, cross-channel aggregation, the passivity contract
// (attaching a recorder never changes simulated results or the metrics
// export), and a windowed-quantile audit against exact percentiles.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "../testing/helpers.hpp"
#include "common/check.hpp"
#include "eval/serving.hpp"
#include "eval/speed.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_model.hpp"

namespace daop::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsSnapshot delta semantics (the windowing primitive)

TEST(MetricsSnapshot, DeltaSubtractsCountersAndKeepsGaugeLastValue) {
  MetricsRegistry reg;
  reg.counter("c_total", "help").inc(3.0);
  reg.gauge("g", "help").set(7.0);
  const MetricsSnapshot a = reg.snapshot();

  reg.counter("c_total", "help").inc(2.0);
  reg.gauge("g", "help").set(1.5);
  const MetricsSnapshot b = reg.snapshot();

  const MetricsSnapshot d = b.delta(a);
  EXPECT_DOUBLE_EQ(d.families.at("c_total").values.at(""), 2.0);
  // Gauges report the window's last value, not a difference.
  EXPECT_DOUBLE_EQ(d.families.at("g").values.at(""), 1.5);
}

TEST(MetricsSnapshot, DeltaSubtractsHistogramBucketwise) {
  MetricsRegistry reg;
  reg.histogram("h_seconds", "help", {1.0, 2.0}).observe(0.5);
  const MetricsSnapshot a = reg.snapshot();
  reg.histogram("h_seconds", "help", {1.0, 2.0}).observe(1.5);
  reg.histogram("h_seconds", "help", {1.0, 2.0}).observe(9.0);
  const MetricsSnapshot d = reg.snapshot().delta(a);

  const HistogramData& h = d.families.at("h_seconds").histograms.at("");
  EXPECT_EQ(h.total, 2);  // only the in-window observations remain
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 0);  // the 0.5 from before the window is gone
  EXPECT_EQ(h.counts[1], 1);
  EXPECT_EQ(h.counts[2], 1);  // +Inf overflow
}

TEST(MetricsSnapshot, SeriesBornInsideWindowDeltaAgainstZero) {
  MetricsRegistry reg;
  const MetricsSnapshot empty = reg.snapshot();
  reg.counter("fresh_total", "help", {{"k", "v"}}).inc(4.0);
  const MetricsSnapshot d = reg.snapshot().delta(empty);
  EXPECT_DOUBLE_EQ(d.families.at("fresh_total").values.begin()->second, 4.0);
  EXPECT_FALSE(d.zero());
  EXPECT_TRUE(empty.delta(empty).zero());
}

// ---------------------------------------------------------------------------
// Recorder windowing

TimeSeriesOptions window(double w) {
  TimeSeriesOptions o;
  o.window_s = w;
  return o;
}

TEST(TimeSeries, DisabledRecorderIsInertAndAllocationFree) {
  TimeSeriesRecorder rec(TimeSeriesOptions{}, {});
  EXPECT_FALSE(rec.enabled());
  rec.count(0, "c_total", "h");  // all no-ops, channel range unchecked
  rec.observe(3, "h_seconds", "h", 1.0);
  rec.advance(0, 100.0);
  rec.finalize(100.0);
  EXPECT_EQ(rec.n_channels(), 0);
  EXPECT_EQ(rec.n_windows(), 0);
  EXPECT_TRUE(rec.aggregate().empty());
}

TEST(TimeSeries, SealsConsecutiveGridWindowsWithDeltas) {
  TimeSeriesRecorder rec(window(5.0), {"n0"});
  rec.advance(0, 1.0);
  rec.count(0, "req_total", "h", 2.0);
  rec.advance(0, 6.0);  // seals [0,5)
  rec.count(0, "req_total", "h", 3.0);
  rec.advance(0, 17.0);  // seals [5,10) and [10,15)
  rec.count(0, "req_total", "h", 1.0);
  rec.finalize(17.5);  // partial [15,17.5)

  const auto& ws = rec.windows(0);
  ASSERT_EQ(ws.size(), 4u);
  EXPECT_EQ(ws[0].index, 0);
  EXPECT_DOUBLE_EQ(ws[0].start, 0.0);
  EXPECT_DOUBLE_EQ(ws[0].end, 5.0);
  EXPECT_DOUBLE_EQ(ws[3].start, 15.0);
  EXPECT_DOUBLE_EQ(ws[3].end, 17.5);

  auto req = [&](int i) {
    const auto it = ws[static_cast<std::size_t>(i)].delta.families.find(
        "req_total");
    if (it == ws[static_cast<std::size_t>(i)].delta.families.end()) return 0.0;
    return it->second.values.at("");
  };
  EXPECT_DOUBLE_EQ(req(0), 2.0);
  EXPECT_DOUBLE_EQ(req(1), 3.0);  // recorded at t=6 -> window [5,10)
  EXPECT_DOUBLE_EQ(req(2), 0.0);  // empty middle window still sealed
  EXPECT_DOUBLE_EQ(req(3), 1.0);
}

TEST(TimeSeries, CountTotalFeedsDeltasOfCumulativeExternals) {
  TimeSeriesRecorder rec(window(1.0), {"n0"});
  rec.advance(0, 0.5);
  rec.count_total(0, "stall_seconds_total", "h", 2.0);
  rec.advance(0, 1.5);
  rec.count_total(0, "stall_seconds_total", "h", 2.0);  // no change: no delta
  rec.advance(0, 2.5);
  rec.count_total(0, "stall_seconds_total", "h", 3.25);
  rec.finalize(2.5);

  const auto& ws = rec.windows(0);
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_DOUBLE_EQ(
      ws[0].delta.families.at("stall_seconds_total").values.at(""), 2.0);
  // The family persists once created, but the unchanged total contributes
  // a zero delta to the middle window.
  EXPECT_DOUBLE_EQ(
      ws[1].delta.families.at("stall_seconds_total").values.at(""), 0.0);
  EXPECT_DOUBLE_EQ(
      ws[2].delta.families.at("stall_seconds_total").values.at(""), 1.25);
}

TEST(TimeSeries, CountTotalRejectsBackwardsTotals) {
  TimeSeriesRecorder rec(window(1.0), {"n0"});
  rec.count_total(0, "t_total", "h", 5.0);
  EXPECT_THROW(rec.count_total(0, "t_total", "h", 4.0), CheckError);
}

TEST(TimeSeries, FinalizeIsIdempotentAndFreezesTheRecorder) {
  TimeSeriesRecorder rec(window(2.0), {"n0"});
  rec.count(0, "c_total", "h");
  rec.finalize(3.0);
  const auto n = rec.windows(0).size();
  rec.finalize(50.0);  // no-op: no new windows appear
  EXPECT_EQ(rec.windows(0).size(), n);
  EXPECT_TRUE(rec.finalized());
  EXPECT_THROW(rec.count(0, "c_total", "h"), CheckError);
}

TEST(TimeSeries, FinalizeSealsZeroWidthBoundaryWindowOnlyWhenNonEmpty) {
  // Content recorded exactly at a grid boundary needs a home even when the
  // clock never passes the boundary.
  TimeSeriesRecorder rec(window(5.0), {"n0"});
  rec.advance(0, 5.0);  // seals [0,5); clock sits exactly on the boundary
  rec.count(0, "c_total", "h");
  rec.finalize(5.0);
  ASSERT_EQ(rec.windows(0).size(), 2u);
  EXPECT_DOUBLE_EQ(rec.windows(0)[1].start, 5.0);
  EXPECT_DOUBLE_EQ(rec.windows(0)[1].end, 5.0);

  TimeSeriesRecorder empty(window(5.0), {"n0"});
  empty.advance(0, 5.0);
  empty.finalize(5.0);  // nothing at the boundary: no zero-width window
  EXPECT_EQ(empty.windows(0).size(), 1u);
}

TEST(TimeSeries, AggregateSumsCountersAndMergesHistogramsAcrossChannels) {
  TimeSeriesRecorder rec(window(10.0), {"n0", "n1", "cluster"});
  rec.count(0, "req_total", "h", 2.0);
  rec.count(1, "req_total", "h", 3.0);
  rec.gauge_set(0, "depth", "h", 1.0);
  rec.gauge_set(1, "depth", "h", 4.0);
  rec.observe(0, "lat_seconds", "h", 0.1);
  rec.observe(2, "lat_seconds", "h", 0.2);
  rec.finalize(7.0);

  const auto agg = rec.aggregate();
  ASSERT_EQ(agg.size(), 1u);
  EXPECT_DOUBLE_EQ(agg[0].delta.families.at("req_total").values.at(""), 5.0);
  EXPECT_DOUBLE_EQ(agg[0].delta.families.at("depth").values.at(""), 5.0);
  EXPECT_EQ(agg[0].delta.families.at("lat_seconds").histograms.at("").total,
            2);
}

TEST(TimeSeries, RecordRegistryTotalsReplaysAnEndOfRunRegistry) {
  MetricsRegistry reg;
  reg.counter("c_total", "h", {{"k", "v"}}).inc(6.0);
  reg.gauge("g", "h").set(2.5);
  reg.histogram("h_seconds", "h", {1.0}).observe(0.5);

  TimeSeriesRecorder rec(window(5.0), {"run"});
  rec.record_registry_totals(0, reg, 3.0);
  rec.finalize(3.0);

  ASSERT_EQ(rec.windows(0).size(), 1u);
  const MetricsSnapshot& d = rec.windows(0)[0].delta;
  EXPECT_DOUBLE_EQ(d.families.at("c_total").values.begin()->second, 6.0);
  EXPECT_DOUBLE_EQ(d.families.at("g").values.at(""), 2.5);
  EXPECT_EQ(d.families.at("h_seconds").histograms.at("").total, 1);
}

// ---------------------------------------------------------------------------
// Passivity + determinism through the serving harness

eval::ServingOptions serve_options(std::uint64_t seed, bool chaos) {
  eval::ServingOptions opt;
  opt.arrival_rate_rps = 2.0;
  opt.n_requests = 10;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 16;
  opt.max_gen = 32;
  opt.calibration_seqs = 4;
  opt.max_concurrent = 2;
  opt.seed = seed;
  if (chaos) {
    opt.hazards = sim::make_hazard_scenario("all", 0.8);
  }
  return opt;
}

eval::ServingResult serve(const eval::ServingOptions& opt) {
  return eval::run_serving_eval(eval::EngineKind::Daop,
                                daop::testing::small_mixtral(),
                                sim::a6000_i9_platform(),
                                data::sharegpt_calibration(), opt);
}

TEST(TimeSeries, AttachingARecorderNeverPerturbsServingResults) {
  for (const bool chaos : {false, true}) {
    SCOPED_TRACE(chaos ? "chaos" : "calm");
    MetricsRegistry reg_off;
    auto opt = serve_options(7, chaos);
    opt.metrics = &reg_off;
    const auto r_off = serve(opt);

    MetricsRegistry reg_on;
    TimeSeriesRecorder rec(window(2.0), {"serving"});
    opt.metrics = &reg_on;
    opt.tseries = &rec;
    const auto r_on = serve(opt);

    // Bit-identical simulated outcomes AND byte-identical metrics export:
    // the recorder is invisible to everything but its own windows.
    EXPECT_EQ(r_off.makespan_s, r_on.makespan_s);
    EXPECT_EQ(r_off.ttft_s.mean, r_on.ttft_s.mean);
    EXPECT_EQ(r_off.latency_s.p99, r_on.latency_s.p99);
    EXPECT_EQ(r_off.served, r_on.served);
    EXPECT_EQ(reg_off.to_prometheus(), reg_on.to_prometheus());
    EXPECT_TRUE(rec.finalized());
    EXPECT_GE(rec.n_windows(), 1);
  }
}

TEST(TimeSeries, WindowsAreDeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::vector<SeriesWindow>* out) {
    TimeSeriesRecorder rec(window(2.0), {"serving"});
    auto opt = serve_options(11, true);
    opt.tseries = &rec;
    serve(opt);
    *out = rec.aggregate();
  };
  std::vector<SeriesWindow> a;
  std::vector<SeriesWindow> b;
  run_once(&a);
  run_once(&b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].end, b[i].end);
    ASSERT_EQ(a[i].delta.families.size(), b[i].delta.families.size());
    for (const auto& [name, f] : a[i].delta.families) {
      const auto& g = b[i].delta.families.at(name);
      for (const auto& [key, v] : f.values) {
        EXPECT_EQ(v, g.values.at(key)) << name << key << " window " << i;
      }
      for (const auto& [key, h] : f.histograms) {
        EXPECT_EQ(h.counts, g.histograms.at(key).counts)
            << name << key << " window " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Windowed-quantile audit: per-window histogram quantiles must track exact
// percentiles of the same windows' raw observations within one bucket width
// (the histogram's intrinsic resolution).

double exact_quantile(std::vector<double> v, double q) {
  DAOP_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

TEST(TimeSeries, WindowedQuantilesTrackExactPercentilesWithinBucketWidth) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    for (const bool chaos : {false, true}) {
      SCOPED_TRACE((chaos ? "chaos seed " : "calm seed ") +
                   std::to_string(seed));
      // Deterministic synthetic latency stream: calm is a narrow band,
      // chaos adds heavy bursts — both from a simple LCG so the test has no
      // platform dependence.
      std::uint64_t s = seed * 2654435761u + 1;
      auto next = [&s]() {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>((s >> 33) & 0xFFFFFF) / 16777216.0;
      };

      TimeSeriesRecorder rec(window(10.0), {"n0"});
      std::vector<std::vector<double>> per_window(4);
      for (int w = 0; w < 4; ++w) {
        const double t0 = 10.0 * w;
        rec.advance(0, t0 + 0.5);
        const int n = 40 + static_cast<int>(next() * 20);
        for (int i = 0; i < n; ++i) {
          double v = 0.05 + 0.4 * next();
          if (chaos && next() < 0.25) v += 2.0 + 6.0 * next();
          per_window[static_cast<std::size_t>(w)].push_back(v);
          rec.observe(0, "lat_seconds", "h", v);
        }
      }
      rec.finalize(40.0);

      const auto& ws = rec.windows(0);
      ASSERT_EQ(ws.size(), 4u);
      for (int w = 0; w < 4; ++w) {
        const HistogramData& h = ws[static_cast<std::size_t>(w)]
                                     .delta.families.at("lat_seconds")
                                     .histograms.at("");
        const auto& raw = per_window[static_cast<std::size_t>(w)];
        EXPECT_EQ(h.total, static_cast<long long>(raw.size()));
        for (const double q : {0.5, 0.9, 0.99}) {
          const double est = histogram_quantile(h, q);
          const double exact = exact_quantile(raw, q);
          // Tolerance: the width of the bucket the estimate landed in.
          EXPECT_NEAR(est, exact, h.bucket_width(est) + 1e-12)
              << "q=" << q << " window " << w;
        }
      }
    }
  }
}

}  // namespace
}  // namespace daop::obs
