// Unit tests for the critical-path attribution sweep (obs/attribution.hpp)
// over hand-built interval sets where the correct answer is computable by
// inspection: conservation, winner priority, hazard-tail reassignment,
// window clipping, and classification.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "obs/attribution.hpp"
#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace daop::obs {
namespace {

sim::Interval iv(sim::Res r, double start, double end, std::string tag) {
  sim::Interval out;
  out.res = r;
  out.start = start;
  out.end = end;
  out.tag = std::move(tag);
  return out;
}

constexpr double kEps = 1e-12;

void expect_conservation(const AttrBreakdown& b) {
  EXPECT_NEAR(b.exposed_total_s() + b.idle_s, b.window_s, 1e-9);
  for (int c = 0; c < kNumAttrCategories; ++c) {
    const auto cat = static_cast<AttrCategory>(c);
    EXPECT_GE(b.hidden(cat), -kEps) << attr_category_name(cat);
    EXPECT_GE(b.busy(cat), -kEps) << attr_category_name(cat);
    EXPECT_GE(b.exposed(cat), -kEps) << attr_category_name(cat);
  }
}

TEST(AttributeCategory, ClassifiesByResourceAndTag) {
  EXPECT_EQ(attribute_category(iv(sim::Res::GpuStream, 0, 1, "L3 expert2")),
            AttrCategory::GpuExpert);
  EXPECT_EQ(attribute_category(
                iv(sim::Res::GpuStream, 0, 1, "L1 fallback expert4")),
            AttrCategory::GpuExpert);
  EXPECT_EQ(attribute_category(iv(sim::Res::GpuStream, 0, 1, "non-MoE")),
            AttrCategory::GateAttn);
  EXPECT_EQ(attribute_category(
                iv(sim::Res::GpuStream, 0, 1, "prefill non-MoE")),
            AttrCategory::GateAttn);
  EXPECT_EQ(attribute_category(iv(sim::Res::CpuPool, 0, 1, "anything")),
            AttrCategory::CpuExpert);
  EXPECT_EQ(attribute_category(iv(sim::Res::PcieH2D, 0, 1, "migrate")),
            AttrCategory::PcieMigration);
  EXPECT_EQ(attribute_category(iv(sim::Res::PcieD2H, 0, 1, "result")),
            AttrCategory::PcieMigration);
}

TEST(AttributeWindow, EmptyTimelineIsAllIdle) {
  const AttrBreakdown b = attribute_window({}, {}, 0.0, 2.5);
  EXPECT_DOUBLE_EQ(b.window_s, 2.5);
  EXPECT_DOUBLE_EQ(b.idle_s, 2.5);
  EXPECT_DOUBLE_EQ(b.exposed_total_s(), 0.0);
  EXPECT_DOUBLE_EQ(b.serialized_s(), 0.0);
  expect_conservation(b);
}

TEST(AttributeWindow, EmptyWindowIsZero) {
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 0.0, 1.0, "expert")};
  const AttrBreakdown b = attribute_window(ivs, {}, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(b.window_s, 0.0);
  EXPECT_DOUBLE_EQ(b.idle_s, 0.0);
  EXPECT_DOUBLE_EQ(b.serialized_s(), 0.0);
}

TEST(AttributeWindow, SingleIntervalFullyExposed) {
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 1.0, 3.0, "L0 expert1")};
  const AttrBreakdown b = attribute_window(ivs, {}, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::GpuExpert), 2.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GpuExpert), 2.0);
  EXPECT_DOUBLE_EQ(b.hidden(AttrCategory::GpuExpert), 0.0);
  EXPECT_DOUBLE_EQ(b.idle_s, 2.0);
  expect_conservation(b);
}

TEST(AttributeWindow, OverlappedCpuWorkIsHiddenUnderGpu) {
  // GPU busy [0,2); CPU busy [1,3). In [1,2) both are busy: the GPU (more
  // upstream) wins exposure, the CPU second is hidden. [2,3) exposes CPU.
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 0.0, 2.0, "L0 expert0"),
      iv(sim::Res::CpuPool, 1.0, 3.0, "L0 expert5 (cpu)")};
  const AttrBreakdown b = attribute_window(ivs, {}, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::GpuExpert), 2.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GpuExpert), 2.0);
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::CpuExpert), 2.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::CpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(b.hidden(AttrCategory::CpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(b.idle_s, 0.0);
  // Overlap ledger: the serialized bound is 4 s, the critical path 3 s.
  EXPECT_DOUBLE_EQ(b.serialized_s(), 4.0);
  EXPECT_DOUBLE_EQ(b.exposed_total_s(), 3.0);
  EXPECT_DOUBLE_EQ(b.hidden_total_s(), 1.0);
  expect_conservation(b);
}

TEST(AttributeWindow, WinnerFollowsUpstreamResourceOrder) {
  // All four resources busy on [0,1): only the GPU is exposed. Then each
  // less-upstream resource is exposed exactly when everything above is idle.
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 0.0, 1.0, "non-MoE"),
      iv(sim::Res::CpuPool, 0.0, 2.0, "cpu expert"),
      iv(sim::Res::PcieH2D, 0.0, 3.0, "migrate in"),
      iv(sim::Res::PcieD2H, 0.0, 4.0, "result out")};
  const AttrBreakdown b = attribute_window(ivs, {}, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GateAttn), 1.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::CpuExpert), 1.0);  // [1,2)
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::PcieMigration), 2.0);  // [2,4)
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::PcieMigration), 7.0);
  EXPECT_DOUBLE_EQ(b.idle_s, 0.0);
  expect_conservation(b);
}

TEST(AttributeWindow, HazardTailChargedToHazardStall) {
  // A GPU op [0,2) whose second half is a fault-injected stall: the hazard
  // sub-interval reassigns that exposure (and busy) to HazardStall.
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 0.0, 2.0, "L0 expert0")};
  const std::vector<sim::Interval> hz = {
      iv(sim::Res::GpuStream, 1.0, 2.0, "hazard")};
  const AttrBreakdown b = attribute_window(ivs, hz, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::GpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::HazardStall), 1.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::HazardStall), 1.0);
  expect_conservation(b);
}

TEST(AttributeWindow, HazardOnHiddenResourceStaysHidden) {
  // The CPU stalls under a busy GPU: the stall is busy-HazardStall but not
  // exposed — the GPU still owns the critical path.
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 0.0, 2.0, "non-MoE"),
      iv(sim::Res::CpuPool, 0.0, 2.0, "cpu expert")};
  const std::vector<sim::Interval> hz = {
      iv(sim::Res::CpuPool, 1.0, 2.0, "hazard")};
  const AttrBreakdown b = attribute_window(ivs, hz, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GateAttn), 2.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::HazardStall), 0.0);
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::HazardStall), 1.0);
  EXPECT_DOUBLE_EQ(b.hidden(AttrCategory::HazardStall), 1.0);
  expect_conservation(b);
}

TEST(AttributeWindow, IntervalsClippedToWindow) {
  // Only [1,2) of this op lies inside the window.
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 0.0, 5.0, "L0 expert0")};
  const AttrBreakdown b = attribute_window(ivs, {}, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(b.window_s, 1.0);
  EXPECT_DOUBLE_EQ(b.busy(AttrCategory::GpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(b.idle_s, 0.0);
  expect_conservation(b);
}

TEST(AttributeWindow, AdjacentIntervalsDoNotDoubleCount) {
  const std::vector<sim::Interval> ivs = {
      iv(sim::Res::GpuStream, 0.0, 1.0, "non-MoE"),
      iv(sim::Res::GpuStream, 1.0, 2.0, "L0 expert0")};
  const AttrBreakdown b = attribute_window(ivs, {}, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GateAttn), 1.0);
  EXPECT_DOUBLE_EQ(b.exposed(AttrCategory::GpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(b.serialized_s(), 2.0);
  expect_conservation(b);
}

TEST(AttributeWindow, AddAccumulatesBreakdowns) {
  const std::vector<sim::Interval> a = {
      iv(sim::Res::GpuStream, 0.0, 1.0, "L0 expert0")};
  const std::vector<sim::Interval> b = {
      iv(sim::Res::CpuPool, 0.0, 2.0, "cpu expert")};
  AttrBreakdown acc = attribute_window(a, {}, 0.0, 1.0);
  acc.add(attribute_window(b, {}, 0.0, 3.0));
  EXPECT_DOUBLE_EQ(acc.window_s, 4.0);
  EXPECT_DOUBLE_EQ(acc.busy(AttrCategory::GpuExpert), 1.0);
  EXPECT_DOUBLE_EQ(acc.busy(AttrCategory::CpuExpert), 2.0);
  EXPECT_DOUBLE_EQ(acc.idle_s, 1.0);
  expect_conservation(acc);
}

TEST(AttributeWindow, RejectsInvertedWindow) {
  EXPECT_THROW(attribute_window({}, {}, 2.0, 1.0), daop::CheckError);
}

TEST(AttributeWindow, RealTimelineConservesExactly) {
  // Drive a real Timeline through a mix of overlapping ops and verify
  // conservation against the timeline's own busy accounting.
  sim::Timeline tl;
  tl.set_record_intervals(true);
  double g = 0.0;
  for (int i = 0; i < 16; ++i) {
    g = tl.schedule(sim::Res::GpuStream, g, 0.003, "non-MoE");
    g = tl.schedule(sim::Res::GpuStream, g, 0.002, "L0 expert0");
    tl.schedule(sim::Res::CpuPool, g - 0.004, 0.005, "L0 expert5 (cpu)");
    if (i % 3 == 0) {
      tl.schedule(sim::Res::PcieH2D, g - 0.002, 0.004, "migrate");
    }
  }
  const AttrBreakdown b =
      attribute_window(tl.intervals(), tl.hazard_intervals(), 0.0, tl.span());
  EXPECT_NEAR(b.exposed_total_s() + b.idle_s, b.window_s, 1e-9);
  double busy_total = 0.0;
  for (int r = 0; r < sim::kNumRes; ++r) {
    busy_total += tl.busy_time(static_cast<sim::Res>(r));
  }
  EXPECT_NEAR(b.serialized_s(), busy_total, 1e-9);
  expect_conservation(b);
}

// Hand-materializes the SoA columns into Interval structs, bypassing the
// Timeline's cached compat view.
std::vector<sim::Interval> materialize(const sim::IntervalSoA& soa,
                                       const sim::TagPool& tags) {
  std::vector<sim::Interval> out;
  out.reserve(soa.size());
  for (std::size_t i = 0; i < soa.size(); ++i) {
    out.push_back(iv(soa.res[i], soa.start[i], soa.end[i],
                     tags.view(soa.tag[i])));
  }
  return out;
}

TEST(Attribution, SoAAndCompatViewAttributeIdentically) {
  // The SoA columns and the compat view are two encodings of the same
  // recorded intervals: attribution over either must be bit-identical,
  // and conservation must hold on both — hazards included.
  sim::FaultModel fm(sim::make_hazard_scenario("all", 1.0), 99);
  sim::Timeline tl;
  tl.set_fault_model(&fm);
  tl.set_record_intervals(true);
  double ready = 0.0;
  for (int i = 0; i < 200; ++i) {
    ready = tl.schedule(sim::Res::GpuStream, ready, 1e-3, "attn fwd");
    tl.schedule(sim::Res::CpuPool, ready, 2e-3, "expert cpu");
    if (i % 3 == 0) tl.schedule(sim::Res::PcieH2D, ready, 5e-4, "fetch");
  }

  const std::vector<sim::Interval> from_soa =
      materialize(tl.intervals_soa(), tl.tag_pool());
  const std::vector<sim::Interval> from_soa_hz =
      materialize(tl.hazard_intervals_soa(), tl.tag_pool());
  ASSERT_EQ(from_soa.size(), tl.intervals().size());
  ASSERT_EQ(from_soa_hz.size(), tl.hazard_intervals().size());

  const AttrBreakdown via_compat =
      attribute_window(tl.intervals(), tl.hazard_intervals(), 0.0, tl.span());
  const AttrBreakdown via_soa =
      attribute_window(from_soa, from_soa_hz, 0.0, tl.span());

  EXPECT_EQ(via_compat.window_s, via_soa.window_s);
  EXPECT_EQ(via_compat.idle_s, via_soa.idle_s);
  for (int c = 0; c < kNumAttrCategories; ++c) {
    const auto cat = static_cast<AttrCategory>(c);
    EXPECT_EQ(via_compat.busy(cat), via_soa.busy(cat));
    EXPECT_EQ(via_compat.exposed(cat), via_soa.exposed(cat));
  }
  expect_conservation(via_compat);
  expect_conservation(via_soa);
}

}  // namespace
}  // namespace daop::obs
