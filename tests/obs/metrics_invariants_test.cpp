// Counter-invariant suite: algebraic identities every engine's counters
// must satisfy, swept across engines x seeds x workloads. These lock down
// the accounting semantics the observability plane exports — an engine that
// double-counts a prefetch hit or leaks hazard stalls across runs fails
// here even though its timing stays plausible.
#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "data/trace_generator.hpp"
#include "engines/run_metrics.hpp"
#include "eval/speed.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_model.hpp"

namespace daop::engines {
namespace {

const std::vector<std::uint64_t> kSeeds = {7, 21, 1234};

struct Workload {
  const char* name;
  data::WorkloadSpec spec;
};

std::vector<Workload> workloads() {
  return {{"c4", data::c4()}, {"sharegpt", data::sharegpt_calibration()}};
}

class CounterInvariants : public ::testing::TestWithParam<eval::EngineKind> {
 protected:
  CounterInvariants()
      : cfg_(daop::testing::small_mixtral()),
        cm_(sim::a6000_i9_platform()),
        costs_(cfg_, cm_) {}

  data::SequenceTrace trace(const data::WorkloadSpec& spec, std::uint64_t seed,
                            int seq = 0, int prompt = 12, int gen = 10) const {
    const data::TraceGenerator gen_obj(spec, cfg_.n_layers, cfg_.n_experts,
                                       cfg_.top_k, seed);
    return gen_obj.generate(seq, prompt, gen);
  }

  cache::Placement placement(double ecr = 0.469) const {
    const data::TraceGenerator calib(data::sharegpt_calibration(),
                                     cfg_.n_layers, cfg_.n_experts, cfg_.top_k,
                                     99);
    return cache::init_placement_calibrated(
        cfg_.n_layers, cfg_.n_experts, ecr,
        cache::calibrate_activation_counts(calib, 6));
  }

  std::unique_ptr<Engine> engine() const {
    return eval::make_engine(GetParam(), costs_);
  }

  static long long selection_count(const data::SequenceTrace& tr,
                                   const model::ModelConfig& cfg) {
    const auto prefill_counts = tr.activation_counts(data::Phase::Prefill);
    long long uses = 0;
    for (const auto& layer : prefill_counts) {
      for (double c : layer) {
        if (c > 0.0) ++uses;
      }
    }
    return uses +
           static_cast<long long>(tr.gen_len) * cfg.n_layers * cfg.top_k;
  }

  static void check_invariants(const EngineCounters& c, long long selections) {
    // Non-negativity of every counter.
    EXPECT_GE(c.expert_migrations, 0);
    EXPECT_GE(c.gpu_expert_execs, 0);
    EXPECT_GE(c.cpu_expert_execs, 0);
    EXPECT_GE(c.cache_hits, 0);
    EXPECT_GE(c.cache_misses, 0);
    EXPECT_GE(c.prefetch_hits, 0);
    EXPECT_GE(c.predictions, 0);
    EXPECT_GE(c.mispredictions, 0);
    EXPECT_GE(c.degradations, 0);
    EXPECT_GE(c.prefill_swaps, 0);
    EXPECT_GE(c.decode_swaps, 0);
    EXPECT_GE(c.skipped_experts, 0);
    EXPECT_GE(c.migration_retries, 0);
    EXPECT_GE(c.migration_aborts, 0);
    EXPECT_GE(c.stale_precalcs, 0);
    EXPECT_GE(c.hazard_stall_s, 0.0);

    // Cache partition identity: every selected-expert lookup is exactly one
    // of hit or miss, and together they cover every selection.
    EXPECT_EQ(c.cache_hits + c.cache_misses, selections);

    // An expert is executed somewhere; work is conserved.
    EXPECT_GT(c.gpu_expert_execs + c.cpu_expert_execs, 0);

    // A misprediction is a prediction that went wrong — there can never be
    // more of them than predictions issued (at most one per issued plan).
    EXPECT_LE(c.mispredictions, c.predictions);

    // Every credited prefetch hit consumed a weight transfer; a prefetch can
    // be credited at most once, so hits can never exceed migrations.
    EXPECT_LE(c.prefetch_hits, c.expert_migrations);
  }

  model::ModelConfig cfg_;
  sim::CostModel cm_;
  model::OpCosts costs_;
};

TEST_P(CounterInvariants, HoldAcrossSeedsAndWorkloads) {
  const auto pl = placement();
  for (const auto& w : workloads()) {
    for (std::uint64_t seed : kSeeds) {
      SCOPED_TRACE(std::string(w.name) + " seed=" + std::to_string(seed));
      const auto tr = trace(w.spec, seed);
      const auto r = engine()->run(tr, pl);
      check_invariants(r.counters, selection_count(tr, cfg_));
    }
  }
}

TEST_P(CounterInvariants, CalmRunsReportNoHazardTelemetry) {
  // Without a FaultModel nothing can stall, retry or go stale.
  const auto r = engine()->run(trace(data::c4(), 7), placement());
  EXPECT_EQ(r.counters.migration_retries, 0);
  EXPECT_EQ(r.counters.migration_aborts, 0);
  EXPECT_EQ(r.counters.stale_precalcs, 0);
  EXPECT_DOUBLE_EQ(r.counters.hazard_stall_s, 0.0);
}

TEST_P(CounterInvariants, CountersResetBetweenRunsOfOneInstance) {
  // Reusing an engine instance must not leak counters from the previous
  // sequence: the third run of identical input reports identical counters.
  const auto tr = trace(data::c4(), 21);
  const auto pl = placement();
  auto e = engine();
  const auto r1 = e->run(tr, pl);
  e->run(trace(data::sharegpt_calibration(), 9), pl);  // different sequence
  const auto r3 = e->run(tr, pl);
  EXPECT_EQ(r1.counters.cache_hits, r3.counters.cache_hits);
  EXPECT_EQ(r1.counters.cache_misses, r3.counters.cache_misses);
  EXPECT_EQ(r1.counters.expert_migrations, r3.counters.expert_migrations);
  EXPECT_EQ(r1.counters.prefetch_hits, r3.counters.prefetch_hits);
  EXPECT_EQ(r1.counters.predictions, r3.counters.predictions);
  EXPECT_EQ(r1.counters.mispredictions, r3.counters.mispredictions);
  EXPECT_EQ(r1.counters.gpu_expert_execs, r3.counters.gpu_expert_execs);
  EXPECT_EQ(r1.counters.cpu_expert_execs, r3.counters.cpu_expert_execs);
  EXPECT_DOUBLE_EQ(r1.counters.hazard_stall_s, r3.counters.hazard_stall_s);
}

TEST_P(CounterInvariants, HazardStallDoesNotLeakAcrossSharedTimeline) {
  // A fault model shared across sequential runs on one external timeline
  // must attribute each run only its own stall (baseline subtraction).
  sim::FaultModel fault(sim::make_hazard_scenario("all", 0.8), 0xFA017ULL);
  auto e = engine();
  e->set_fault_model(&fault);
  const auto tr = trace(data::c4(), 7);
  const auto pl = placement();
  sim::Timeline tl;
  const auto r1 = e->run(tr, pl, &tl);
  const auto r2 = e->run(tr, pl, &tl);
  EXPECT_GE(r1.counters.hazard_stall_s, 0.0);
  EXPECT_GE(r2.counters.hazard_stall_s, 0.0);
  // The per-run stalls partition the timeline's cumulative stall.
  EXPECT_NEAR(r1.counters.hazard_stall_s + r2.counters.hazard_stall_s,
              tl.hazard_stall_s(), 1e-9);
  // Sanity: cumulative stall would dwarf a single run's if it leaked.
  EXPECT_LE(r2.counters.hazard_stall_s, tl.hazard_stall_s() + 1e-12);
}

TEST_P(CounterInvariants, AggregationPreservesEveryCounter) {
  const auto pl = placement();
  auto e = engine();
  std::vector<RunResult> results;
  EngineCounters expect;
  for (std::uint64_t seed : kSeeds) {
    results.push_back(e->run(trace(data::c4(), seed), pl));
    expect.add(results.back().counters);
  }
  const RunResult agg = aggregate_results("agg", results);
  EXPECT_EQ(agg.counters.cache_hits, expect.cache_hits);
  EXPECT_EQ(agg.counters.cache_misses, expect.cache_misses);
  EXPECT_EQ(agg.counters.expert_migrations, expect.expert_migrations);
  EXPECT_EQ(agg.counters.gpu_expert_execs, expect.gpu_expert_execs);
  EXPECT_EQ(agg.counters.cpu_expert_execs, expect.cpu_expert_execs);
  EXPECT_EQ(agg.counters.prefetch_hits, expect.prefetch_hits);
  EXPECT_EQ(agg.counters.predictions, expect.predictions);
  EXPECT_EQ(agg.counters.mispredictions, expect.mispredictions);
  EXPECT_EQ(agg.counters.degradations, expect.degradations);
  EXPECT_EQ(agg.counters.prefill_swaps, expect.prefill_swaps);
  EXPECT_EQ(agg.counters.decode_swaps, expect.decode_swaps);
  EXPECT_EQ(agg.counters.skipped_experts, expect.skipped_experts);
  EXPECT_EQ(agg.counters.migration_retries, expect.migration_retries);
  EXPECT_EQ(agg.counters.migration_aborts, expect.migration_aborts);
  EXPECT_EQ(agg.counters.stale_precalcs, expect.stale_precalcs);
  EXPECT_EQ(agg.counters.pin_refusals, expect.pin_refusals);
  EXPECT_DOUBLE_EQ(agg.counters.hazard_stall_s, expect.hazard_stall_s);
}

TEST_P(CounterInvariants, RecordedMetricsMatchCounters) {
  const auto r = engine()->run(trace(data::c4(), 7), placement());
  obs::MetricsRegistry reg;
  record_run_metrics(reg, r);
  // The bridge must cover engine-level families (>= 12 acceptance floor).
  EXPECT_GE(reg.family_count(), 12U);
  const std::string out = reg.to_prometheus();
  const std::string eng = "{engine=\"" + r.engine + "\"";
  auto series = [&](const std::string& fam, const std::string& extra,
                    long long v) {
    const std::string line =
        fam + eng + extra + "} " + std::to_string(v) + "\n";
    EXPECT_NE(out.find(line), std::string::npos)
        << "missing series: " << line << "in:\n"
        << out;
  };
  series("daop_expert_execs_total", ",device=\"gpu\"",
         r.counters.gpu_expert_execs);
  series("daop_expert_execs_total", ",device=\"cpu\"",
         r.counters.cpu_expert_execs);
  series("daop_expert_cache_lookups_total", ",result=\"hit\"",
         r.counters.cache_hits);
  series("daop_expert_cache_lookups_total", ",result=\"miss\"",
         r.counters.cache_misses);
  series("daop_expert_migrations_total", "", r.counters.expert_migrations);
  series("daop_prefetch_hits_total", "", r.counters.prefetch_hits);
  series("daop_predictions_total", "", r.counters.predictions);
  series("daop_mispredictions_total", "", r.counters.mispredictions);
  series("daop_engine_generated_tokens_total", "",
         static_cast<long long>(r.generated_tokens));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, CounterInvariants,
    ::testing::Values(eval::EngineKind::MoEOnDemand,
                      eval::EngineKind::DeepSpeedMII,
                      eval::EngineKind::MixtralOffloading,
                      eval::EngineKind::PreGatedMoE,
                      eval::EngineKind::EdgeMoE,
                      eval::EngineKind::MoEInfinity,
                      eval::EngineKind::Fiddler, eval::EngineKind::Daop),
    [](const ::testing::TestParamInfo<eval::EngineKind>& info) {
      std::string n = eval::engine_kind_name(info.param);
      for (auto& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace daop::engines
