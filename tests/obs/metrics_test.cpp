// Unit tests for the observability-plane metrics registry: instruments,
// histogram bucketing/quantiles, and the Prometheus / JSON exporters.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace daop::obs {
namespace {

TEST(Counter, AccumulatesAndRejectsNegative) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.inc(-1.0), CheckError);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(4.0);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(HistogramData, BucketsObservationsCorrectly) {
  HistogramData h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket le=1
  h.observe(1.0);   // boundary lands in le=1 (Prometheus: upper-inclusive)
  h.observe(1.5);   // le=2
  h.observe(3.0);   // le=4
  h.observe(100.0); // +Inf
  EXPECT_EQ(h.counts, (std::vector<long long>{2, 1, 1, 1}));
  EXPECT_EQ(h.total, 5);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 1.5 + 3.0 + 100.0);
}

TEST(HistogramData, RejectsUnsortedBounds) {
  EXPECT_THROW(HistogramData({2.0, 1.0}), CheckError);
}

TEST(HistogramData, MergeAddsCountsAndRejectsMismatchedBuckets) {
  HistogramData a({1.0, 2.0});
  HistogramData b({1.0, 2.0});
  a.observe(0.5);
  b.observe(1.5);
  b.observe(9.0);
  a.merge(b);
  EXPECT_EQ(a.counts, (std::vector<long long>{1, 1, 1}));
  EXPECT_EQ(a.total, 3);

  HistogramData c({1.0, 3.0});
  EXPECT_THROW(a.merge(c), CheckError);
}

TEST(HistogramData, MergeIntoUnconfiguredAdoptsOther) {
  HistogramData a;
  HistogramData b({1.0});
  b.observe(0.5);
  a.merge(b);
  EXPECT_EQ(a.total, 1);
  EXPECT_EQ(a.upper_bounds, b.upper_bounds);
}

TEST(HistogramData, BucketWidthCoversAllRegions) {
  const HistogramData h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.bucket_width(0.5), 1.0);   // first bucket: [0, 1]
  EXPECT_DOUBLE_EQ(h.bucket_width(1.5), 1.0);   // (1, 2]
  EXPECT_DOUBLE_EQ(h.bucket_width(3.0), 2.0);   // (2, 4]
  EXPECT_DOUBLE_EQ(h.bucket_width(99.0), 2.0);  // +Inf reuses last width
}

TEST(HistogramQuantile, InterpolatesInsideBucket) {
  HistogramData h({10.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  // All 10 observations live in (0, 10]; the q-th observation interpolates
  // linearly across the bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 10.0);
}

TEST(HistogramQuantile, ClampsOverflowToLastFiniteBound) {
  HistogramData h({1.0, 2.0});
  h.observe(50.0);  // +Inf bucket
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 2.0);
}

TEST(HistogramQuantile, EmptyHistogramIsNaNNotGarbage) {
  // Zero observations mean there is no order statistic to estimate: the
  // defined behavior is NaN (PromQL convention), never a garbage number
  // and never UB — for a configured-but-empty histogram AND for a
  // default-constructed (unconfigured) one.
  HistogramData configured({1.0, 2.0});
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_TRUE(std::isnan(histogram_quantile(configured, q))) << q;
  }
  const HistogramData unconfigured;
  EXPECT_TRUE(std::isnan(histogram_quantile(unconfigured, 0.5)));
  // One observation makes it finite again.
  configured.observe(0.5);
  EXPECT_TRUE(std::isfinite(histogram_quantile(configured, 0.5)));
}

TEST(HistogramQuantile, RejectsOutOfRangeQ) {
  HistogramData h({1.0});
  h.observe(0.5);
  EXPECT_THROW(histogram_quantile(h, 1.5), CheckError);
  EXPECT_THROW(histogram_quantile(h, -0.1), CheckError);
}

TEST(DefaultLatencyBuckets, CoversMillisecondsToKiloseconds) {
  const auto b = default_latency_buckets();
  ASSERT_FALSE(b.empty());
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  EXPECT_DOUBLE_EQ(b.front(), 0.001);
  EXPECT_DOUBLE_EQ(b.back(), 5000.0);
  EXPECT_EQ(b.size(), 21U);  // 7 decades x {1, 2.5, 5}
}

TEST(MetricsRegistry, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("daop_test_total", "help", {{"k", "v"}});
  Counter& b = reg.counter("daop_test_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
  // A different label set is a different series in the same family.
  Counter& c = reg.counter("daop_test_total", "help", {{"k", "w"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.family_count(), 1U);
}

TEST(MetricsRegistry, RejectsTypeAndBucketConflicts) {
  MetricsRegistry reg;
  reg.counter("daop_x_total", "h");
  EXPECT_THROW(reg.gauge("daop_x_total", "h"), CheckError);
  reg.histogram("daop_h_seconds", "h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("daop_h_seconds", "h", {1.0, 3.0}), CheckError);
}

TEST(MetricsRegistry, RejectsInvalidNames) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("", "h"), CheckError);
  EXPECT_THROW(reg.counter("9starts_with_digit", "h"), CheckError);
  EXPECT_THROW(reg.counter("has space", "h"), CheckError);
}

TEST(MetricsRegistry, PrometheusExportFormat) {
  MetricsRegistry reg;
  reg.counter("daop_runs_total", "Runs.", {{"engine", "DAOP"}}).inc(3.0);
  reg.gauge("daop_busy_fraction", "Busy.").set(0.25);
  Histogram& h = reg.histogram("daop_lat_seconds", "Latency.", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string out = reg.to_prometheus();
  EXPECT_NE(out.find("# HELP daop_runs_total Runs.\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE daop_runs_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("daop_runs_total{engine=\"DAOP\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE daop_busy_fraction gauge\n"), std::string::npos);
  EXPECT_NE(out.find("daop_busy_fraction 0.25\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE daop_lat_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: 1, 2, 3 across le=1, le=2, le=+Inf.
  EXPECT_NE(out.find("daop_lat_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("daop_lat_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("daop_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("daop_lat_seconds_sum 11\n"), std::string::npos);
  EXPECT_NE(out.find("daop_lat_seconds_count 3\n"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("daop_esc_total", "h", {{"v", "a\"b\\c\nd"}}).inc();
  const std::string out = reg.to_prometheus();
  EXPECT_NE(out.find("{v=\"a\\\"b\\\\c\\nd\"}"), std::string::npos);
}

TEST(MetricsRegistry, ExportOrderIndependentOfInsertionOrder) {
  MetricsRegistry a;
  a.counter("daop_b_total", "h", {{"x", "1"}}).inc();
  a.counter("daop_a_total", "h").inc(2.0);
  a.counter("daop_b_total", "h", {{"x", "0"}}).inc();

  MetricsRegistry b;
  b.counter("daop_b_total", "h", {{"x", "0"}}).inc();
  b.counter("daop_a_total", "h").inc(2.0);
  b.counter("daop_b_total", "h", {{"x", "1"}}).inc();

  EXPECT_EQ(a.to_prometheus(), b.to_prometheus());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(MetricsRegistry, JsonExportIsStructurallySound) {
  MetricsRegistry reg;
  reg.counter("daop_runs_total", "Runs.", {{"engine", "DAOP (ours)"}}).inc();
  reg.histogram("daop_lat_seconds", "L.", {1.0}).observe(0.5);
  const std::string out = reg.to_json();
  EXPECT_NE(out.find("{\"families\":["), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"daop_runs_total\""), std::string::npos);
  EXPECT_NE(out.find("\"labels\":{\"engine\":\"DAOP (ours)\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"le\":\"+Inf\""), std::string::npos);
  long long depth = 0;
  for (char c : out) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistry, JsonEscapesHostileLabelValues) {
  // Lock down string escaping so the JSON export stays parseable no matter
  // what ends up in a label value: quotes, backslashes, all control
  // characters, and non-ASCII UTF-8 (which passes through byte-for-byte).
  MetricsRegistry reg;
  reg.counter("daop_esc_total", "h",
              {{"quote", "say \"hi\""},
               {"backslash", "C:\\temp\\x"},
               {"ctl", std::string("a\nb\tc\rd\x01" "e")},
               {"utf8", "ü→日本"}})
      .inc();
  const std::string out = reg.to_json();
  EXPECT_NE(out.find("\"quote\":\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"backslash\":\"C:\\\\temp\\\\x\""), std::string::npos);
  EXPECT_NE(out.find("\"ctl\":\"a\\nb\\tc\\rd\\u0001e\""), std::string::npos);
  // Non-ASCII is NOT escaped: JSON strings are UTF-8.
  EXPECT_NE(out.find("\"utf8\":\"ü→日本\""), std::string::npos);
  // No raw control characters may survive anywhere in the document, and it
  // must still be structurally balanced.
  for (char c : out) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control char in export";
  }
  long long depth = 0;
  for (char c : out) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistry, ClearEmptiesRegistry) {
  MetricsRegistry reg;
  reg.counter("daop_x_total", "h").inc();
  EXPECT_FALSE(reg.empty());
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.to_prometheus(), "");
}

TEST(MetricsRegistry, ConcurrentIntegerIncrementsStayExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncs = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < kIncs; ++i) {
        reg.counter("daop_conc_total", "h",
                    {{"shard", t % 2 == 0 ? "even" : "odd"}})
            .inc();
        reg.histogram("daop_conc_seconds", "h", {1.0, 2.0}).observe(1.5);
      }
    });
  }
  for (auto& w : workers) w.join();
  const std::string out = reg.to_prometheus();
  const std::string half = std::to_string(kThreads / 2 * kIncs);
  EXPECT_NE(out.find("daop_conc_total{shard=\"even\"} " + half + "\n"),
            std::string::npos);
  EXPECT_NE(out.find("daop_conc_total{shard=\"odd\"} " + half + "\n"),
            std::string::npos);
  EXPECT_NE(out.find("daop_conc_seconds_count " +
                     std::to_string(kThreads * kIncs) + "\n"),
            std::string::npos);
}

}  // namespace
}  // namespace daop::obs
