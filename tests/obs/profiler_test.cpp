// End-to-end profiler tests over real engine runs (obs/profiler.hpp):
// attribution conservation across every engine × workload × seed, per-step
// conservation, heatmap-vs-counter consistency, report determinism, and the
// acceptance invariants of the critical-path profiler.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "data/trace_generator.hpp"
#include "eval/serving.hpp"
#include "eval/speed.hpp"
#include "obs/profiler.hpp"

namespace daop::eval {
namespace {

using obs::AttrBreakdown;
using obs::AttrCategory;

constexpr double kTol = 1e-9;

double counter_value(const obs::RunProfile& run, const std::string& name) {
  for (const auto& [k, v] : run.counters) {
    if (k == name) return v;
  }
  ADD_FAILURE() << "counter " << name << " missing from profile";
  return -1.0;
}

void expect_breakdown_invariants(const AttrBreakdown& b) {
  // Conservation: exposed category seconds plus idle tile the window.
  EXPECT_NEAR(b.exposed_total_s() + b.idle_s, b.window_s, kTol);
  EXPECT_GE(b.idle_s, -kTol);
  EXPECT_GE(b.hidden_total_s(), -kTol);
  for (int c = 0; c < obs::kNumAttrCategories; ++c) {
    const auto cat = static_cast<AttrCategory>(c);
    EXPECT_GE(b.hidden(cat), -kTol) << obs::attr_category_name(cat);
  }
}

TEST(Profiler, ConservationHoldsForEveryEngineWorkloadSeed) {
  // The issue's acceptance bar: for all engines × {c4, gsm8k} × 3 seeds,
  // attributed category seconds sum to the critical-path makespan within
  // 1e-9 and hidden overlap is never negative.
  for (auto kind :
       {EngineKind::MoEOnDemand, EngineKind::DeepSpeedMII,
        EngineKind::MixtralOffloading, EngineKind::PreGatedMoE,
        EngineKind::EdgeMoE, EngineKind::MoEInfinity, EngineKind::Fiddler,
        EngineKind::Daop}) {
    for (const auto& workload : {data::c4(), data::gsm8k()}) {
      for (std::uint64_t seed : {7ULL, 19ULL, 1234ULL}) {
        SCOPED_TRACE(std::string(engine_kind_name(kind)) + " / " +
                     workload.name + " / seed " + std::to_string(seed));
        obs::Profiler prof;
        SpeedEvalOptions opt;
        opt.n_seqs = 2;
        opt.prompt_len = 12;
        opt.gen_len = 10;
        opt.calibration_seqs = 4;
        opt.seed = seed;
        opt.profiler = &prof;
        run_speed_eval(kind, daop::testing::small_mixtral(),
                       sim::a6000_i9_platform(), workload, opt);
        ASSERT_EQ(prof.runs().size(), 2u);
        for (const auto& run : prof.runs()) {
          EXPECT_TRUE(run.has_phases);
          expect_breakdown_invariants(run.total);
          expect_breakdown_invariants(run.prefill);
          expect_breakdown_invariants(run.decode);
          // Phases partition the run window.
          EXPECT_NEAR(run.prefill.window_s + run.decode.window_s,
                      run.total.window_s, kTol);
          for (const auto& step : run.steps) {
            expect_breakdown_invariants(step.attr);
          }
        }
        expect_breakdown_invariants(prof.aggregate());
      }
    }
  }
}

TEST(Profiler, StepWindowsCoverDecodeInOrder) {
  obs::Profiler prof;
  SpeedEvalOptions opt;
  opt.n_seqs = 1;
  opt.prompt_len = 12;
  opt.gen_len = 10;
  opt.calibration_seqs = 4;
  opt.profiler = &prof;
  run_speed_eval(EngineKind::Daop, daop::testing::small_mixtral(),
                 sim::a6000_i9_platform(), data::c4(), opt);
  ASSERT_EQ(prof.runs().size(), 1u);
  const auto& run = prof.runs().front();
  ASSERT_FALSE(run.steps.empty());
  EXPECT_EQ(run.steps_omitted, 0);
  double prev_end = run.prefill_end_s;
  double steps_window = 0.0;
  for (const auto& step : run.steps) {
    EXPECT_GE(step.start_s, prev_end - kTol);
    EXPECT_GE(step.end_s, step.start_s);
    prev_end = step.end_s;
    steps_window += step.attr.window_s;
  }
  // Decode steps tile the decode phase window.
  EXPECT_NEAR(steps_window, run.decode.window_s, kTol);
  EXPECT_NEAR(run.steps.back().end_s, run.end_s, kTol);
}

TEST(Profiler, StepCapOmitsButStillAttributes) {
  obs::Profiler::Options po;
  po.max_steps_per_run = 3;
  obs::Profiler prof(po);
  SpeedEvalOptions opt;
  opt.n_seqs = 1;
  opt.prompt_len = 12;
  opt.gen_len = 10;
  opt.calibration_seqs = 4;
  opt.profiler = &prof;
  run_speed_eval(EngineKind::Fiddler, daop::testing::small_mixtral(),
                 sim::a6000_i9_platform(), data::c4(), opt);
  ASSERT_EQ(prof.runs().size(), 1u);
  const auto& run = prof.runs().front();
  EXPECT_EQ(static_cast<int>(run.steps.size()), 3);
  EXPECT_EQ(run.steps_omitted, 10 - 3);
  // Phase attribution is computed from the full window, not the kept steps.
  expect_breakdown_invariants(run.decode);
}

TEST(Profiler, HeatmapExecsMatchEngineCounters) {
  // Every GPU/CPU expert execution site is instrumented, so the heatmap's
  // exec totals must equal the engine's own counters.
  for (auto kind : {EngineKind::Fiddler, EngineKind::Daop,
                    EngineKind::MoEOnDemand, EngineKind::PreGatedMoE}) {
    SCOPED_TRACE(engine_kind_name(kind));
    obs::Profiler prof;
    SpeedEvalOptions opt;
    opt.n_seqs = 1;
    opt.prompt_len = 12;
    opt.gen_len = 10;
    opt.calibration_seqs = 4;
    opt.profiler = &prof;
    run_speed_eval(kind, daop::testing::small_mixtral(),
                   sim::a6000_i9_platform(), data::c4(), opt);
    ASSERT_EQ(prof.runs().size(), 1u);
    const auto& run = prof.runs().front();
    long long gpu_execs = 0;
    long long cpu_execs = 0;
    int prev_layer = -1, prev_expert = -1;
    bool prev_gpu = true;
    for (const auto& cell : run.heatmap) {
      EXPECT_GT(cell.execs, 0);
      EXPECT_GT(cell.busy_s, 0.0);
      // Sorted by (layer, expert, gpu-before-cpu), no duplicate cells.
      const bool advanced =
          cell.layer > prev_layer ||
          (cell.layer == prev_layer && cell.expert > prev_expert) ||
          (cell.layer == prev_layer && cell.expert == prev_expert &&
           prev_gpu && !cell.on_gpu);
      EXPECT_TRUE(advanced) << "heatmap out of order at L" << cell.layer
                            << " E" << cell.expert;
      prev_layer = cell.layer;
      prev_expert = cell.expert;
      prev_gpu = cell.on_gpu;
      (cell.on_gpu ? gpu_execs : cpu_execs) += cell.execs;
    }
    EXPECT_EQ(static_cast<double>(gpu_execs),
              counter_value(run, "gpu_expert_execs"));
    EXPECT_EQ(static_cast<double>(cpu_execs),
              counter_value(run, "cpu_expert_execs"));
  }
}

TEST(Profiler, ReportsAreDeterministic) {
  auto render = [](std::string& json, std::string& text) {
    obs::Profiler prof;
    SpeedEvalOptions opt;
    opt.n_seqs = 2;
    opt.prompt_len = 12;
    opt.gen_len = 8;
    opt.calibration_seqs = 4;
    opt.profiler = &prof;
    run_speed_eval(EngineKind::Daop, daop::testing::small_mixtral(),
                   sim::a6000_i9_platform(), data::c4(), opt);
    json = prof.to_json();
    text = prof.to_text();
  };
  std::string json_a, text_a, json_b, text_b;
  render(json_a, text_a);
  render(json_b, text_b);
  EXPECT_EQ(json_a, json_b);
  EXPECT_EQ(text_a, text_b);
  EXPECT_NE(json_a.find("\"schema\":\"daop-profile/1\""), std::string::npos);
  EXPECT_NE(json_a.find("\"aggregate\":"), std::string::npos);
  EXPECT_NE(json_a.find("\"heatmap\":"), std::string::npos);
  EXPECT_NE(text_a.find("critical path"), std::string::npos);
  EXPECT_NE(text_a.find("overlap saved"), std::string::npos);
}

TEST(Profiler, ServingSequentialProfilesEveryServedRequest) {
  obs::Profiler prof;
  ServingOptions opt;
  opt.arrival_rate_rps = 0.05;
  opt.n_requests = 4;
  opt.min_prompt = 12;
  opt.max_prompt = 16;
  opt.min_gen = 8;
  opt.max_gen = 10;
  opt.calibration_seqs = 4;
  opt.profiler = &prof;
  const auto r = run_serving_eval(
      EngineKind::Daop, daop::testing::small_mixtral(),
      sim::a6000_i9_platform(), data::sharegpt_calibration(), opt);
  EXPECT_EQ(static_cast<int>(prof.runs().size()), r.served);
  for (const auto& run : prof.runs()) {
    EXPECT_GE(run.request, 0);
    EXPECT_TRUE(run.has_phases);
    expect_breakdown_invariants(run.total);
  }
}

TEST(Profiler, ServingContinuousBatchingProfilesSharedWindowOnce) {
  obs::Profiler prof;
  ServingOptions opt;
  opt.arrival_rate_rps = 0.05;
  opt.n_requests = 4;
  opt.min_prompt = 12;
  opt.max_prompt = 16;
  opt.min_gen = 8;
  opt.max_gen = 10;
  opt.calibration_seqs = 4;
  opt.max_concurrent = 3;
  opt.profiler = &prof;
  const auto r = run_serving_eval(
      EngineKind::Daop, daop::testing::small_mixtral(),
      sim::a6000_i9_platform(), data::sharegpt_calibration(), opt);
  ASSERT_EQ(prof.runs().size(), 1u);
  const auto& run = prof.runs().front();
  EXPECT_FALSE(run.has_phases);
  EXPECT_NE(run.label.find("[continuous batching]"), std::string::npos);
  EXPECT_GE(run.total.window_s, r.makespan_s - kTol);
  expect_breakdown_invariants(run.total);
}

TEST(Profiler, RecordWindowHandlesEmptyTimeline) {
  obs::Profiler prof;
  prof.record_window("empty", {}, {}, 0.0, 1.0);
  ASSERT_EQ(prof.runs().size(), 1u);
  EXPECT_DOUBLE_EQ(prof.runs().front().total.idle_s, 1.0);
  // Reports render without runs too.
  prof.clear();
  EXPECT_TRUE(prof.empty());
  EXPECT_FALSE(prof.to_json().empty());
  EXPECT_FALSE(prof.to_text().empty());
}

}  // namespace
}  // namespace daop::eval
