// SLO burn-rate alerting: rule parsing, multiwindow burn math, episode
// open/close semantics, detection latency on the simulated clock, incident
// correlation against the causal event log, and the sealed daop-tseries/1
// export's determinism.
#include "obs/alerting.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace daop::obs {
namespace {

// ---------------------------------------------------------------------------
// Rule parsing

TEST(SloRules, ParsesInlineSpecWithEveryKey) {
  const auto rules = parse_slo_rules(
      "name=ttft,kind=latency,signal=daop_serving_ttft_seconds,target=2.5,"
      "objective=0.9,fast=2,slow=6,fast-burn=4,slow-burn=2;"
      "name=shed,kind=ratio,signal=daop_requests_shed_total,"
      "total=daop_serving_requests_total,objective=0.99,fast=1,slow=4,"
      "fast-burn=10,slow-burn=5");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "ttft");
  EXPECT_EQ(rules[0].kind, SloRule::Kind::kLatency);
  EXPECT_DOUBLE_EQ(rules[0].target_s, 2.5);
  EXPECT_DOUBLE_EQ(rules[0].objective, 0.9);
  EXPECT_EQ(rules[0].fast_windows, 2);
  EXPECT_EQ(rules[0].slow_windows, 6);
  EXPECT_DOUBLE_EQ(rules[0].fast_burn, 4.0);
  EXPECT_DOUBLE_EQ(rules[0].slow_burn, 2.0);
  EXPECT_EQ(rules[1].kind, SloRule::Kind::kRatio);
  EXPECT_EQ(rules[1].total, "daop_serving_requests_total");
}

TEST(SloRules, SkipsEmptySegmentsSoNewlineSeparatedFilesParse) {
  // Files are loaded by replacing newlines with ';' — blank lines and a
  // trailing separator must be harmless.
  const auto rules = parse_slo_rules(
      ";name=a,kind=latency,signal=s_seconds,target=1,objective=0.9;;"
      "name=b,kind=ratio,signal=bad_total,total=all_total,objective=0.99;");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "a");
  EXPECT_EQ(rules[1].name, "b");
}

TEST(SloRules, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_slo_rules("name=x,kind=latency"), CheckError);  // no signal
  EXPECT_THROW(parse_slo_rules("name=x,kind=banana,signal=s"), CheckError);
  EXPECT_THROW(parse_slo_rules("name=x,kind=ratio,signal=s"), CheckError);
  EXPECT_THROW(parse_slo_rules("nonsense"), CheckError);
}

TEST(SloRules, DefaultRulesValidateAndStaySilentOnZeroTraffic) {
  const auto rules = default_slo_rules();
  ASSERT_GE(rules.size(), 2u);
  for (const auto& r : rules) r.validate();

  // An idle recorder (windows sealed, nothing recorded) must never page.
  TimeSeriesOptions o;
  o.window_s = 5.0;
  TimeSeriesRecorder rec(o, {"cluster"});
  rec.advance(0, 60.0);
  rec.finalize(60.0);
  const AlertReport rep = evaluate_slo_rules(rules, rec);
  EXPECT_TRUE(rep.episodes.empty());
  EXPECT_TRUE(rep.events.empty());
}

// ---------------------------------------------------------------------------
// Burn math and episode lifecycle on hand-built windows

TimeSeriesRecorder make_recorder(double w) {
  TimeSeriesOptions o;
  o.window_s = w;
  return TimeSeriesRecorder(o, {"cluster"});
}

SloRule shed_rule() {
  SloRule r;
  r.name = "shed";
  r.kind = SloRule::Kind::kRatio;
  r.signal = "bad_total";
  r.total = "all_total";
  r.objective = 0.9;  // error budget 10%
  r.fast_windows = 1;
  r.slow_windows = 2;
  r.fast_burn = 4.0;  // >= 40% bad in the last window
  r.slow_burn = 2.0;  // >= 20% bad over the last two
  return r;
}

// Feeds one window of traffic: `bad` bad events out of `total`.
void feed_window(TimeSeriesRecorder& rec, int idx, double w, double total,
                 double bad) {
  rec.advance(0, idx * w + 0.5 * w);
  if (total > 0) rec.count(0, "all_total", "h", total);
  if (bad > 0) rec.count(0, "bad_total", "h", bad);
}

TEST(Alerting, OpensOnlyWhenFastAndSlowBurnBothExceedThresholds) {
  const double w = 10.0;
  auto rec = make_recorder(w);
  feed_window(rec, 0, w, 10, 0);  // healthy
  feed_window(rec, 1, w, 10, 5);  // 50% bad: fast burn 5, but slow burn 2.5
  feed_window(rec, 2, w, 10, 5);  // sustained: both thresholds clear
  feed_window(rec, 3, w, 10, 0);  // fast window clears -> close
  rec.finalize(4 * w);

  const AlertReport rep = evaluate_slo_rules({shed_rule()}, rec);
  ASSERT_EQ(rep.episodes.size(), 1u);
  const AlertEpisode& ep = rep.episodes[0];
  EXPECT_EQ(ep.rule, "shed");
  // Window 1 alone already satisfies fast (5 >= 4) AND slow over the last
  // two windows ((0+5)/(0+10+10)... but burn math is bad/total) — assert
  // the open decision happened at window 1's or window 2's end and closed
  // at window 3's end.
  EXPECT_GE(ep.open_time, 2 * w - 1e-9);
  EXPECT_LE(ep.open_time, 3 * w + 1e-9);
  EXPECT_TRUE(ep.closed);
  EXPECT_DOUBLE_EQ(ep.close_time, 4 * w);
  EXPECT_GE(ep.peak_fast_burn, 4.0);
}

TEST(Alerting, BlipBelowSlowBurnNeverPages) {
  const double w = 10.0;
  auto rec = make_recorder(w);
  feed_window(rec, 0, w, 10, 0);
  feed_window(rec, 1, w, 10, 0);
  feed_window(rec, 2, w, 10, 0);
  feed_window(rec, 3, w, 10, 5);  // one bad window after healthy history
  feed_window(rec, 4, w, 10, 0);  // immediately healthy again
  rec.finalize(5 * w);

  SloRule r = shed_rule();
  r.slow_windows = 4;  // slow burn over 4 windows: 5/40 = 12.5% -> burn 1.25
  const AlertReport rep = evaluate_slo_rules({r}, rec);
  EXPECT_TRUE(rep.episodes.empty());
}

TEST(Alerting, ZeroTrafficWindowsBurnNothing) {
  const double w = 10.0;
  auto rec = make_recorder(w);
  feed_window(rec, 0, w, 10, 6);  // bad start
  feed_window(rec, 1, w, 0, 0);   // idle
  feed_window(rec, 2, w, 0, 0);   // idle: must not keep the alert alive
  rec.finalize(3 * w);

  const AlertReport rep = evaluate_slo_rules({shed_rule()}, rec);
  ASSERT_EQ(rep.episodes.size(), 1u);
  EXPECT_TRUE(rep.episodes[0].closed);
}

TEST(Alerting, LatencyRuleCountsObservationsAboveTargetAsBad) {
  const double w = 10.0;
  auto rec = make_recorder(w);
  // Window 0: all fast. Windows 1-2: mostly slow.
  rec.advance(0, 5.0);
  for (int i = 0; i < 10; ++i) rec.observe(0, "lat_seconds", "h", 0.5);
  rec.advance(0, 15.0);
  for (int i = 0; i < 10; ++i) rec.observe(0, "lat_seconds", "h", 60.0);
  rec.advance(0, 25.0);
  for (int i = 0; i < 10; ++i) rec.observe(0, "lat_seconds", "h", 60.0);
  rec.finalize(3 * w);

  SloRule r;
  r.name = "lat";
  r.kind = SloRule::Kind::kLatency;
  r.signal = "lat_seconds";
  r.target_s = 10.0;
  r.objective = 0.9;
  r.fast_windows = 1;
  r.slow_windows = 2;
  r.fast_burn = 4.0;
  r.slow_burn = 2.0;
  const AlertReport rep = evaluate_slo_rules({r}, rec);
  ASSERT_EQ(rep.episodes.size(), 1u);
  EXPECT_FALSE(rep.episodes[0].closed);  // still bad at end of run
  EXPECT_DOUBLE_EQ(rep.episodes[0].close_time, 3 * w);
}

TEST(Alerting, DetectionLatencyMeasuresBackToFirstBurningWindow) {
  const double w = 10.0;
  auto rec = make_recorder(w);
  SloRule r = shed_rule();
  r.fast_windows = 1;
  r.slow_windows = 3;
  r.fast_burn = 4.0;
  r.slow_burn = 2.0;
  feed_window(rec, 0, w, 10, 0);
  feed_window(rec, 1, w, 10, 0);
  feed_window(rec, 2, w, 10, 5);  // burning (burn 5 >= 1) but slow gate
                                  // holds: 5/30 -> burn 1.67 < 2
  feed_window(rec, 3, w, 10, 5);  // slow burn now 10/30 / 0.1 = 3.33 -> open
  rec.finalize(4 * w);

  const AlertReport rep = evaluate_slo_rules({r}, rec);
  ASSERT_EQ(rep.episodes.size(), 1u);
  const AlertEpisode& ep = rep.episodes[0];
  // Opened at the end of window 3; the consecutive budget-burning run
  // started at window 2's start -> detection latency spans both windows.
  EXPECT_DOUBLE_EQ(ep.open_time, 4 * w);
  EXPECT_DOUBLE_EQ(ep.detection_latency_s, 2 * w);
}

// ---------------------------------------------------------------------------
// Incident correlation

TEST(Incidents, JoinCausalEventsInsideTheLookback) {
  const double w = 10.0;
  auto rec = make_recorder(w);
  feed_window(rec, 0, w, 10, 0);
  rec.record_event(12.0, 0, "crash", "node 1 crashed");
  rec.record_event(12.5, 0, "shed", "req 4 (node_lost)");
  feed_window(rec, 1, w, 10, 5);
  feed_window(rec, 2, w, 10, 5);
  feed_window(rec, 3, w, 10, 0);
  rec.finalize(4 * w);

  const AlertReport rep = evaluate_slo_rules({shed_rule()}, rec);
  ASSERT_FALSE(rep.episodes.empty());
  const auto incidents = correlate_incidents(rep, rec, 2.0 * w);
  ASSERT_EQ(incidents.size(), rep.episodes.size());
  const Incident& inc = incidents[0];
  EXPECT_EQ(inc.rule, "shed");
  ASSERT_FALSE(inc.causes.empty());
  bool saw_crash = false;
  for (const std::string& c : inc.causes) {
    if (c.find("crash") != std::string::npos) saw_crash = true;
  }
  EXPECT_TRUE(saw_crash) << "crash event inside the lookback must be joined";
  EXPECT_NE(inc.chain.find("crash"), std::string::npos);
}

TEST(Incidents, EventsOutsideTheLookbackAreNotBlamed) {
  const double w = 10.0;
  auto rec = make_recorder(w);
  rec.record_event(1.0, 0, "crash", "ancient history");
  for (int i = 0; i < 20; ++i) feed_window(rec, i, w, 10, 0);
  rec.record_event(205.0, 0, "shed", "req 9 (node_lost)");
  feed_window(rec, 20, w, 10, 5);
  feed_window(rec, 21, w, 10, 5);
  feed_window(rec, 22, w, 10, 0);
  rec.finalize(23 * w);

  const AlertReport rep = evaluate_slo_rules({shed_rule()}, rec);
  ASSERT_FALSE(rep.episodes.empty());
  const auto incidents = correlate_incidents(rep, rec, 2.0 * w);
  for (const std::string& c : incidents[0].causes) {
    EXPECT_EQ(c.find("ancient"), std::string::npos)
        << "t=1 crash is far outside the lookback: " << c;
  }
}

// ---------------------------------------------------------------------------
// Export determinism

TEST(TseriesExport, JsonIsSealedSchemaAndByteDeterministic) {
  auto build = [] {
    auto rec = make_recorder(10.0);
    feed_window(rec, 0, 10.0, 10, 0);
    rec.record_event(12.0, 0, "crash", "node 1 crashed");
    feed_window(rec, 1, 10.0, 10, 5);
    feed_window(rec, 2, 10.0, 10, 5);
    rec.finalize(30.0);
    const AlertReport rep = evaluate_slo_rules({shed_rule()}, rec);
    const auto incidents = correlate_incidents(rep, rec, 20.0);
    return to_tseries_json(rec, rep, incidents);
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"daop-tseries/1\""), std::string::npos);
  EXPECT_NE(a.find("\"episode_count\":"), std::string::npos);
  EXPECT_NE(a.find("\"incidents\":"), std::string::npos);

  auto rec = make_recorder(10.0);
  feed_window(rec, 0, 10.0, 10, 0);
  rec.finalize(10.0);
  const std::string text =
      to_tseries_text(rec, AlertReport{}, std::vector<Incident>{});
  EXPECT_FALSE(text.empty());
}

}  // namespace
}  // namespace daop::obs
