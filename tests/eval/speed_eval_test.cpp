#include "eval/speed.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../testing/helpers.hpp"

namespace daop::eval {
namespace {

SpeedEvalOptions fast_options() {
  SpeedEvalOptions opt;
  opt.n_seqs = 2;
  opt.prompt_len = 16;
  opt.gen_len = 16;
  opt.ecr = 0.469;
  opt.calibration_seqs = 4;
  return opt;
}

TEST(SpeedEval, EngineNamesResolve) {
  for (EngineKind k : {EngineKind::MoEOnDemand, EngineKind::DeepSpeedMII,
                       EngineKind::MixtralOffloading, EngineKind::PreGatedMoE,
                       EngineKind::Fiddler, EngineKind::Daop}) {
    EXPECT_STRNE(engine_kind_name(k), "?");
  }
}

TEST(SpeedEval, PaperBaselinesAreTheFigure9Set) {
  const auto engines = paper_baseline_engines();
  ASSERT_EQ(engines.size(), 5U);
  EXPECT_EQ(engines.front(), EngineKind::MoEOnDemand);
  EXPECT_EQ(engines.back(), EngineKind::Daop);
}

TEST(SpeedEval, MakeEngineProducesNamedEngines) {
  const auto cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  EXPECT_EQ(make_engine(EngineKind::Fiddler, costs)->name(), "Fiddler");
  EXPECT_EQ(make_engine(EngineKind::Daop, costs)->name(), "DAOP");
  EXPECT_EQ(make_engine(EngineKind::DeepSpeedMII, costs)->name(),
            "DeepSpeed-MII");
}

TEST(SpeedEval, RunProducesPositiveRates) {
  const auto cfg = daop::testing::small_mixtral();
  const auto r = run_speed_eval(EngineKind::Daop, cfg,
                                sim::a6000_i9_platform(), data::c4(),
                                fast_options());
  EXPECT_GT(r.tokens_per_s, 0.0);
  EXPECT_GT(r.tokens_per_kj, 0.0);
  EXPECT_EQ(r.generated_tokens, 2 * 16);
  EXPECT_GT(r.total_s, 0.0);
}

TEST(SpeedEval, DeterministicAcrossCalls) {
  const auto cfg = daop::testing::small_mixtral();
  const auto a = run_speed_eval(EngineKind::Fiddler, cfg,
                                sim::a6000_i9_platform(), data::c4(),
                                fast_options());
  const auto b = run_speed_eval(EngineKind::Fiddler, cfg,
                                sim::a6000_i9_platform(), data::c4(),
                                fast_options());
  EXPECT_DOUBLE_EQ(a.tokens_per_s, b.tokens_per_s);
  EXPECT_DOUBLE_EQ(a.energy.total_j, b.energy.total_j);
}

TEST(SpeedEval, SeedChangesWorkload) {
  const auto cfg = daop::testing::small_mixtral();
  auto opt = fast_options();
  const auto a = run_speed_eval(EngineKind::Fiddler, cfg,
                                sim::a6000_i9_platform(), data::c4(), opt);
  opt.seed = 1234;
  const auto b = run_speed_eval(EngineKind::Fiddler, cfg,
                                sim::a6000_i9_platform(), data::c4(), opt);
  EXPECT_NE(a.total_s, b.total_s);
}

TEST(SpeedEval, DaopConfigIsHonored) {
  const auto cfg = daop::testing::small_mixtral(8);
  auto opt = fast_options();
  opt.daop_config.enable_seq_allocation = false;
  const auto no_alloc = run_speed_eval(EngineKind::Daop, cfg,
                                       sim::a6000_i9_platform(), data::c4(),
                                       opt);
  EXPECT_EQ(no_alloc.counters.prefill_swaps, 0);
  opt.daop_config.enable_seq_allocation = true;
  const auto with_alloc = run_speed_eval(EngineKind::Daop, cfg,
                                         sim::a6000_i9_platform(), data::c4(),
                                         opt);
  EXPECT_GT(with_alloc.counters.prefill_swaps, 0);
}

TEST(SpeedEval, EngineNamesAreUnique) {
  std::vector<std::string> names;
  for (auto kind : extended_baseline_engines()) {
    names.emplace_back(engine_kind_name(kind));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(SpeedEval, PerSequenceResultsAggregateToSummary) {
  const auto cfg = daop::testing::small_mixtral();
  const auto opt = fast_options();
  const auto per_seq = run_speed_eval_per_sequence(
      EngineKind::Daop, cfg, sim::a6000_i9_platform(), data::c4(), opt);
  ASSERT_EQ(static_cast<int>(per_seq.size()), opt.n_seqs);
  const auto agg = run_speed_eval(EngineKind::Daop, cfg,
                                  sim::a6000_i9_platform(), data::c4(), opt);
  double total_s = 0.0;
  for (const auto& r : per_seq) total_s += r.total_s;
  EXPECT_NEAR(agg.total_s, total_s, 1e-9);
}

TEST(SpeedEval, FasterPlatformIsFaster) {
  const auto cfg = daop::testing::small_mixtral();
  const auto a6000 = run_speed_eval(EngineKind::Daop, cfg,
                                    sim::a6000_i9_platform(), data::c4(),
                                    fast_options());
  const auto a100 = run_speed_eval(EngineKind::Daop, cfg,
                                   sim::a100_xeon_platform(), data::c4(),
                                   fast_options());
  EXPECT_GT(a100.tokens_per_s, a6000.tokens_per_s);
}

}  // namespace
}  // namespace daop::eval
