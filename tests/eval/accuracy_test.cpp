#include "eval/accuracy.hpp"

#include <gtest/gtest.h>

#include "model/config.hpp"

namespace daop::eval {
namespace {

TEST(Rouge, IdenticalSequences) {
  const std::vector<int> a = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(rouge_n(a, a, 1), 1.0);
  EXPECT_DOUBLE_EQ(rouge_n(a, a, 2), 1.0);
}

TEST(Rouge, DisjointSequences) {
  const std::vector<int> a = {1, 2, 3};
  const std::vector<int> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(rouge_n(a, b, 1), 0.0);
  EXPECT_DOUBLE_EQ(rouge_n(a, b, 2), 0.0);
}

TEST(Rouge, PartialUnigramOverlap) {
  const std::vector<int> ref = {1, 2, 3, 4};
  const std::vector<int> cand = {1, 2, 9, 9};
  // overlap 2, both lengths 4 -> P = R = 0.5 -> F1 = 0.5.
  EXPECT_NEAR(rouge_n(ref, cand, 1), 0.5, 1e-12);
}

TEST(Rouge, BigramOrderMatters) {
  const std::vector<int> ref = {1, 2, 3};
  const std::vector<int> reversed = {3, 2, 1};
  EXPECT_DOUBLE_EQ(rouge_n(ref, reversed, 1), 1.0);  // same unigrams
  EXPECT_DOUBLE_EQ(rouge_n(ref, reversed, 2), 0.0);  // no shared bigrams
}

TEST(Rouge, RepeatedNgramsClipped) {
  const std::vector<int> ref = {7, 7, 7};          // "7" x3
  const std::vector<int> cand = {7, 1, 2, 3, 4, 5};  // "7" x1
  // overlap = min(3,1) = 1; P = 1/6, R = 1/3.
  const double p = 1.0 / 6.0;
  const double r = 1.0 / 3.0;
  EXPECT_NEAR(rouge_n(ref, cand, 1), 2 * p * r / (p + r), 1e-12);
}

TEST(Rouge, ShortSequencesForHighN) {
  const std::vector<int> one = {5};
  const std::vector<int> two = {5, 6};
  EXPECT_DOUBLE_EQ(rouge_n(one, one, 2), 1.0);  // both empty bigram sets
  EXPECT_DOUBLE_EQ(rouge_n(one, two, 2), 0.0);  // one empty, one not
}

TEST(CalibrateFunctional, ShapeAndDeterminism) {
  const model::FunctionalModel fm(model::tiny_mixtral(), 3);
  const auto a = calibrate_functional_counts(fm, data::sharegpt_calibration(),
                                             2, 8, 6, 11);
  const auto b = calibrate_functional_counts(fm, data::sharegpt_calibration(),
                                             2, 8, 6, 11);
  EXPECT_EQ(a, b);
  ASSERT_EQ(static_cast<int>(a.size()), fm.config().n_layers);
  for (const auto& layer : a) {
    double sum = 0.0;
    for (double v : layer) sum += v;
    // 2 sequences x 6 decode tokens x top-2 (observer sees decode only).
    EXPECT_DOUBLE_EQ(sum, 2.0 * 6.0 * 2.0);
  }
}

TEST(EvaluateAccuracy, ExactAtFullEcr) {
  const model::FunctionalModel fm(model::tiny_mixtral(), 3);
  AccuracyEvalOptions opt;
  opt.n_episodes = 3;
  opt.prompt_len = 10;
  opt.gen_len = 8;
  opt.calibration_seqs = 2;
  const auto m =
      evaluate_daop_accuracy(fm, data::c4(), core::DaopConfig{}, 1.0, opt);
  EXPECT_DOUBLE_EQ(m.exact_match, 1.0);
  EXPECT_DOUBLE_EQ(m.token_agreement, 1.0);
  EXPECT_DOUBLE_EQ(m.rouge1, 1.0);
  EXPECT_DOUBLE_EQ(m.rouge2, 1.0);
  EXPECT_EQ(m.episodes, 3);
}

TEST(EvaluateAccuracy, MetricsBoundedAndConsistent) {
  const model::FunctionalModel fm(model::tiny_mixtral(), 3);
  AccuracyEvalOptions opt;
  opt.n_episodes = 4;
  opt.prompt_len = 10;
  opt.gen_len = 10;
  opt.calibration_seqs = 2;
  const auto m =
      evaluate_daop_accuracy(fm, data::gsm8k(), core::DaopConfig{}, 0.25, opt);
  EXPECT_GE(m.token_agreement, 0.0);
  EXPECT_LE(m.token_agreement, 1.0);
  EXPECT_GE(m.rouge1, m.rouge2);  // bigram overlap never exceeds unigram
  EXPECT_GT(m.stats.decode_expert_uses, 0);
}

TEST(EvaluateAccuracy, ReusesProvidedCalibration) {
  const model::FunctionalModel fm(model::tiny_mixtral(), 3);
  const auto calib = calibrate_functional_counts(
      fm, data::sharegpt_calibration(), 2, 10, 8, 0x5ca1ab1eULL ^ 42ULL);
  AccuracyEvalOptions opt;
  opt.n_episodes = 2;
  opt.prompt_len = 10;
  opt.gen_len = 8;
  opt.calibration_seqs = 2;
  AccuracyEvalOptions opt2 = opt;
  opt2.calib_counts = &calib;
  // Same calibration distribution -> same placement -> same metrics.
  const auto a =
      evaluate_daop_accuracy(fm, data::c4(), core::DaopConfig{}, 0.5, opt);
  const auto b =
      evaluate_daop_accuracy(fm, data::c4(), core::DaopConfig{}, 0.5, opt2);
  EXPECT_DOUBLE_EQ(a.token_agreement, b.token_agreement);
  EXPECT_DOUBLE_EQ(a.exact_match, b.exact_match);
}

}  // namespace
}  // namespace daop::eval
