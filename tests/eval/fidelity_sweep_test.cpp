// Parameterized fidelity sweep: DAOP's functional-plane guarantees must
// hold for every (model architecture, workload) combination — tiny-mixtral
// (8 experts) and tiny-phi (16 experts) across stable and drift-heavy
// datasets. This is the Tables V/VI contract as a property test.
#include <gtest/gtest.h>

#include "eval/accuracy.hpp"
#include "model/config.hpp"

namespace daop::eval {
namespace {

struct Case {
  const char* model;
  const char* dataset;
};

class FidelitySweep : public ::testing::TestWithParam<Case> {
 protected:
  static model::ModelConfig config_for(const std::string& name) {
    return name == "phi" ? model::tiny_phi() : model::tiny_mixtral();
  }
  static data::WorkloadSpec workload_for(const std::string& name) {
    for (const auto& w : data::all_eval_workloads()) {
      if (w.name == name) return w;
    }
    return data::c4();
  }
};

TEST_P(FidelitySweep, ExactAtFullCacheGracefulAtQuarter) {
  const model::FunctionalModel fm(config_for(GetParam().model), 0xFEEDULL);
  const auto spec = workload_for(GetParam().dataset);

  AccuracyEvalOptions opt;
  opt.n_episodes = 4;
  opt.prompt_len = 12;
  opt.gen_len = 12;
  opt.calibration_seqs = 3;

  const auto full =
      evaluate_daop_accuracy(fm, spec, core::DaopConfig{}, 1.0, opt);
  EXPECT_DOUBLE_EQ(full.token_agreement, 1.0) << GetParam().dataset;
  EXPECT_DOUBLE_EQ(full.exact_match, 1.0) << GetParam().dataset;

  const auto quarter =
      evaluate_daop_accuracy(fm, spec, core::DaopConfig{}, 0.25, opt);
  // "Minimal impact on accuracy": teacher-forced agreement stays high even
  // at a quarter-size cache, for every architecture and workload.
  EXPECT_GT(quarter.token_agreement, 0.75) << GetParam().dataset;
  EXPECT_LE(quarter.token_agreement, 1.0) << GetParam().dataset;
  // And the approximation machinery was genuinely exercised.
  EXPECT_GT(quarter.stats.stale_input_execs + quarter.stats.degradations +
                quarter.stats.mispredict_recomputes,
            0)
      << GetParam().dataset;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndDatasets, FidelitySweep,
    ::testing::Values(Case{"mixtral", "C4"}, Case{"mixtral", "GSM8K"},
                      Case{"mixtral", "TriviaQA"}, Case{"mixtral", "BBH"},
                      Case{"phi", "C4"}, Case{"phi", "GSM8K"},
                      Case{"phi", "TriviaQA"}, Case{"phi", "TruthfulQA"}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(info.param.model) + "_" + info.param.dataset;
    });

}  // namespace
}  // namespace daop::eval
