// Overload-control plane: admission policies, bounded-queue and deadline
// shedding, session preemption, and the hazard-adaptive degradation ladder.
//
// The acceptance criterion from the PR issue is tested end-to-end here: at
// an arrival rate >= 2x the measured (hazard-degraded) saturation point,
// `deadline-edf` admission with shedding keeps the p99 TTFT of *served*
// requests below the configured deadline and beats the no-shedding FIFO
// baseline on SLO violation rate, while conservation
// (enqueued == served + dropped + shed) holds.
#include "eval/overload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "data/trace_generator.hpp"
#include "eval/continuous_batching.hpp"
#include "eval/serving.hpp"
#include "sim/fault_model.hpp"

namespace daop::eval {
namespace {

using Signals = DegradationController::Signals;

// ---------------------------------------------------------------------------
// Options / parsing

TEST(OverloadOptions, DefaultIsDisabledNoOp) {
  OverloadOptions opt;
  EXPECT_FALSE(opt.enabled());
  opt.validate();  // defaults are valid
}

TEST(OverloadOptions, AnyNonDefaultKnobEnables) {
  {
    OverloadOptions o;
    o.admission = AdmissionPolicy::kLifoShed;
    EXPECT_TRUE(o.enabled());
  }
  {
    OverloadOptions o;
    o.queue_capacity = 4;
    EXPECT_TRUE(o.enabled());
  }
  {
    OverloadOptions o;
    o.deadline_s = 1.0;
    EXPECT_TRUE(o.enabled());
  }
  {
    OverloadOptions o;
    o.degrade.enabled = true;
    EXPECT_TRUE(o.enabled());
  }
}

TEST(OverloadOptions, ValidateRejectsInconsistentKnobs) {
  {
    // Preemption needs deadline-edf ordering to pick a victim.
    OverloadOptions o;
    o.preempt = true;
    o.deadline_s = 1.0;
    EXPECT_THROW(o.validate(), CheckError);
  }
  {
    // ...and a deadline budget to define "deadline-critical".
    OverloadOptions o;
    o.preempt = true;
    o.admission = AdmissionPolicy::kDeadlineEdf;
    EXPECT_THROW(o.validate(), CheckError);
  }
  {
    // A service estimate is meaningless without a deadline to project onto.
    OverloadOptions o;
    o.service_estimate_s = 0.5;
    EXPECT_THROW(o.validate(), CheckError);
  }
}

TEST(AdmissionPolicy, NamesRoundTrip) {
  for (AdmissionPolicy p : {AdmissionPolicy::kFifo, AdmissionPolicy::kLifoShed,
                            AdmissionPolicy::kDeadlineEdf}) {
    EXPECT_EQ(parse_admission_policy(admission_policy_name(p)), p);
  }
}

TEST(AdmissionPolicy, ParseRejectsUnknownListingValidNames) {
  try {
    parse_admission_policy("round-robin");
    FAIL() << "expected CheckError for unknown admission policy";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("round-robin"), std::string::npos) << msg;
    for (const char* name : {"fifo", "lifo-shed", "deadline-edf"}) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "missing policy '" << name << "' in: " << msg;
    }
  }
}

TEST(ShedReason, NamesAreStable) {
  EXPECT_STREQ(shed_reason_name(ShedReason::kQueueFull), "queue_full");
  EXPECT_STREQ(shed_reason_name(ShedReason::kDeadline), "deadline");
  EXPECT_STREQ(shed_reason_name(ShedReason::kDegraded), "degraded");
}

// ---------------------------------------------------------------------------
// DegradationController

DegradationOptions fast_ladder() {
  DegradationOptions o;
  o.enabled = true;
  o.window_s = 1.0;
  o.stall_trip_fraction = 0.10;  // > 0.1s stall inside the 1s window trips
  o.abort_trip = 4;
  o.min_dwell_s = 0.1;
  o.calm_window_s = 0.5;
  return o;
}

TEST(DegradationController, DisabledControllerNeverMoves) {
  DegradationController c{DegradationOptions{}};
  c.observe(0.0, Signals{0.0, 0, 0});
  c.observe(1.0, Signals{100.0, 100, 100});
  EXPECT_EQ(c.level(), 0);
  EXPECT_EQ(c.peak_level(), 0);
  EXPECT_TRUE(c.events().empty());
  EXPECT_FALSE(c.no_speculation());
}

TEST(DegradationController, StallTripStepsDownAndCalmRecovers) {
  DegradationController c(fast_ladder());
  c.observe(0.0, Signals{0.0, 0, 0});
  EXPECT_EQ(c.level(), 0);

  // 0.2s of stall landed within the window: trip -> L1.
  c.observe(0.5, Signals{0.2, 0, 0});
  EXPECT_EQ(c.level(), 1);
  EXPECT_TRUE(c.no_speculation());
  EXPECT_FALSE(c.no_migrations());

  // Another 0.3s of stall: trip -> L2.
  c.observe(1.0, Signals{0.5, 0, 0});
  EXPECT_EQ(c.level(), 2);
  EXPECT_TRUE(c.no_migrations());
  EXPECT_EQ(c.peak_level(), 2);

  // Calm but not calm for long enough: holds the level.
  c.observe(1.2, Signals{0.5, 0, 0});
  EXPECT_EQ(c.level(), 2);

  // Calm for >= calm_window_s since the last hot sample: recover one level
  // at a time.
  c.observe(1.6, Signals{0.5, 0, 0});
  EXPECT_EQ(c.level(), 1);
  c.observe(2.2, Signals{0.5, 0, 0});
  EXPECT_EQ(c.level(), 0);

  EXPECT_EQ(c.steps_down(), 2);
  EXPECT_EQ(c.steps_up(), 2);
  EXPECT_EQ(c.peak_level(), 2);
  ASSERT_EQ(c.events().size(), 4U);
  EXPECT_TRUE(c.events()[0].down);
  EXPECT_EQ(c.events()[0].level, 1);
  EXPECT_TRUE(c.events()[1].down);
  EXPECT_EQ(c.events()[1].level, 2);
  EXPECT_FALSE(c.events()[2].down);
  EXPECT_EQ(c.events()[2].level, 1);
  EXPECT_FALSE(c.events()[3].down);
  EXPECT_EQ(c.events()[3].level, 0);
}

TEST(DegradationController, MigrationAbortsTripTheLadderToo) {
  DegradationController c(fast_ladder());
  c.observe(0.0, Signals{0.0, 0, 0});
  c.observe(0.5, Signals{0.0, 4, 0});  // abort_trip aborts in the window
  EXPECT_EQ(c.level(), 1);
}

TEST(DegradationController, DwellHysteresisRateLimitsSteps) {
  auto opt = fast_ladder();
  opt.min_dwell_s = 1.0;
  DegradationController c(opt);
  c.observe(0.0, Signals{0.0, 0, 0});
  c.observe(1.0, Signals{0.5, 0, 0});  // hot -> L1
  EXPECT_EQ(c.level(), 1);
  // Still hot, but inside the dwell window: the controller must not race
  // down the ladder in one burst.
  c.observe(1.2, Signals{1.0, 0, 0});
  c.observe(1.5, Signals{1.5, 0, 0});
  EXPECT_EQ(c.level(), 1);
  // Past the dwell, the persistent storm may deepen the response.
  c.observe(2.1, Signals{2.0, 0, 0});
  EXPECT_EQ(c.level(), 2);
}

TEST(DegradationController, MaxLevelCapsTheLadder) {
  auto opt = fast_ladder();
  opt.max_level = 1;
  DegradationController c(opt);
  c.observe(0.0, Signals{0.0, 0, 0});
  for (int i = 1; i <= 10; ++i) {
    c.observe(0.5 * i, Signals{0.5 * i, 0, 0});  // permanently hot
  }
  EXPECT_EQ(c.level(), 1);
  EXPECT_EQ(c.peak_level(), 1);
}

// ---------------------------------------------------------------------------
// Serving-level end-to-end

ServingOptions cb_options() {
  ServingOptions opt;
  opt.arrival_rate_rps = 2.0;
  opt.n_requests = 16;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 16;
  opt.max_gen = 32;
  opt.calibration_seqs = 4;
  opt.max_concurrent = 4;
  return opt;
}

ServingResult run(EngineKind kind, const ServingOptions& opt) {
  return run_serving_eval(kind, daop::testing::small_mixtral(),
                          sim::a6000_i9_platform(),
                          data::sharegpt_calibration(), opt);
}

TEST(Overload, BoundedQueueShedsOverflowOnBurst) {
  auto opt = cb_options();
  opt.arrival_rate_rps = 50.0;  // everything arrives nearly at once
  opt.overload.queue_capacity = 2;
  const auto r = run(EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served + r.dropped + r.shed, opt.n_requests);
  EXPECT_GT(r.shed_queue_full, 0);
  EXPECT_EQ(r.shed, static_cast<int>(r.shed_queue_full + r.shed_deadline +
                                     r.shed_degraded));
  // Every shed request appears in the per-request log with its reason.
  int log_served = 0, log_shed = 0;
  for (const auto& e : r.request_log) {
    if (e.outcome == "served") ++log_served;
    if (e.outcome.rfind("shed:", 0) == 0) ++log_shed;
  }
  EXPECT_EQ(log_served, r.served);
  EXPECT_EQ(log_shed, r.shed);
  EXPECT_EQ(static_cast<int>(r.request_log.size()), opt.n_requests);
}

TEST(Overload, LifoShedPrefersFreshRequests) {
  auto opt = cb_options();
  opt.arrival_rate_rps = 50.0;
  opt.overload.admission = AdmissionPolicy::kLifoShed;
  opt.overload.queue_capacity = 2;
  const auto r = run(EngineKind::Fiddler, opt);
  EXPECT_EQ(r.served + r.dropped + r.shed, opt.n_requests);
  ASSERT_GT(r.shed, 0);
  // Under lifo-shed the stalest waiting request is shed on overflow, so the
  // last arrival must survive to service and the first shed must predate the
  // last served arrival.
  const auto& last = r.request_log.back();
  EXPECT_EQ(last.outcome, "served") << "freshest request was not served";
  double first_shed = -1.0, last_served = -1.0;
  for (const auto& e : r.request_log) {
    if (e.outcome.rfind("shed:", 0) == 0 && first_shed < 0.0) {
      first_shed = e.arrival;
    }
    if (e.outcome == "served") last_served = std::max(last_served, e.arrival);
  }
  ASSERT_GE(first_shed, 0.0);
  EXPECT_LT(first_shed, last_served);
}

TEST(Overload, EmitsShedAndDegradeMetrics) {
  obs::MetricsRegistry reg;
  auto opt = cb_options();
  opt.arrival_rate_rps = 50.0;
  opt.overload.queue_capacity = 2;
  opt.overload.degrade.enabled = true;
  opt.metrics = &reg;
  const auto r = run(EngineKind::Fiddler, opt);
  ASSERT_GT(r.shed, 0);
  const std::string out = reg.to_prometheus();
  for (const char* fam :
       {"daop_requests_shed_total", "reason=\"queue_full\"",
        "daop_session_preemptions_total", "daop_session_preempt_resumes_total",
        "daop_degrade_steps_total", "daop_degrade_level",
        "daop_degrade_peak_level"}) {
    EXPECT_NE(out.find(fam), std::string::npos) << "missing " << fam;
  }
}

TEST(Overload, HazardStormStepsDownTheDegradationLadder) {
  auto opt = cb_options();
  opt.hazards = sim::make_hazard_scenario("all", 0.5);
  opt.overload.degrade.enabled = true;
  opt.overload.degrade.window_s = 2.0;
  opt.overload.degrade.stall_trip_fraction = 0.05;
  opt.overload.degrade.min_dwell_s = 0.2;
  opt.overload.degrade.calm_window_s = 1.0;
  const auto r = run(EngineKind::Daop, opt);
  EXPECT_EQ(r.served + r.dropped + r.shed, opt.n_requests);
  EXPECT_GT(r.degrade_steps_down, 0)
      << "an 'all' 0.5 hazard storm must trip the ladder";
  EXPECT_GE(r.degrade_peak_level, 1);
  EXPECT_GE(r.degrade_steps_down, r.degrade_steps_up);
  // Sessions opened while degraded carry the degrade directives.
  EXPECT_GT(r.counters.degraded_sessions, 0);
}

// Satellite: hazards x continuous batching stays deterministic — the same
// seed yields bit-identical outcomes, with and without the overload plane.
TEST(Overload, HazardsWithContinuousBatchingDeterministic) {
  auto opt = cb_options();
  opt.hazards = sim::make_hazard_scenario("all", 0.5);
  {
    const auto a = run(EngineKind::Daop, opt);
    const auto b = run(EngineKind::Daop, opt);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
    EXPECT_DOUBLE_EQ(a.latency_s.mean, b.latency_s.mean);
    EXPECT_DOUBLE_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s);
    EXPECT_EQ(a.counters.migration_retries, b.counters.migration_retries);
  }
  {
    auto ovl = opt;
    ovl.overload.admission = AdmissionPolicy::kDeadlineEdf;
    ovl.overload.deadline_s = 30.0;
    ovl.overload.degrade.enabled = true;
    const auto a = run(EngineKind::Daop, ovl);
    const auto b = run(EngineKind::Daop, ovl);
    EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.degrade_steps_down, b.degrade_steps_down);
    EXPECT_EQ(a.degrade_peak_level, b.degrade_peak_level);
    ASSERT_EQ(a.request_log.size(), b.request_log.size());
    for (std::size_t i = 0; i < a.request_log.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(a.request_log[i].id, b.request_log[i].id);
      EXPECT_DOUBLE_EQ(a.request_log[i].arrival, b.request_log[i].arrival);
      EXPECT_EQ(a.request_log[i].outcome, b.request_log[i].outcome);
      EXPECT_EQ(a.request_log[i].preempted, b.request_log[i].preempted);
    }
  }
}

// The PR's acceptance criterion, self-calibrating against the measured
// hazard-degraded saturation point of this model/platform pair.
TEST(Overload, DeadlineEdfSheddingBeatsFifoAtTwiceSaturation) {
  auto base = cb_options();
  base.n_requests = 24;
  base.hazards = sim::make_hazard_scenario("all", 0.5);

  // Capacity probe: a burst arrival measures the full-concurrency drain
  // rate under the hazard storm.
  auto probe = base;
  probe.arrival_rate_rps = 1000.0;
  const auto cap = run(EngineKind::Daop, probe);
  ASSERT_EQ(cap.served, probe.n_requests);
  const double sat_rps = probe.n_requests / cap.makespan_s;

  // Lightly-loaded probe: p99 TTFT with empty queues calibrates the
  // admission-to-first-token service estimate (with contention headroom).
  auto solo = base;
  solo.arrival_rate_rps = sat_rps / 8.0;
  const auto calm = run(EngineKind::Daop, solo);
  ASSERT_EQ(calm.served, solo.n_requests);
  const double service_est = 4.0 * calm.ttft_s.p99;
  const double deadline = 2.0 * service_est;

  // No-shedding FIFO baseline at 2x saturation: everyone is eventually
  // served, but the queue grows without bound and late requests blow
  // through the first-token SLO.
  auto fifo = base;
  fifo.arrival_rate_rps = 2.0 * sat_rps;
  fifo.slo_ttft_s = deadline;
  const auto fifo_r = run(EngineKind::Daop, fifo);
  EXPECT_EQ(fifo_r.served + fifo_r.dropped, fifo.n_requests);
  EXPECT_EQ(fifo_r.shed, 0);

  // deadline-edf + deadline shedding on the identical request plan.
  auto edf = fifo;
  edf.overload.admission = AdmissionPolicy::kDeadlineEdf;
  edf.overload.deadline_s = deadline;
  edf.overload.service_estimate_s = service_est;
  const auto edf_r = run(EngineKind::Daop, edf);

  // Conservation: enqueued == served + dropped + shed (also DAOP_CHECKed
  // inside the harness).
  EXPECT_EQ(edf_r.served + edf_r.dropped + edf_r.shed, edf.n_requests);
  ASSERT_GT(edf_r.served, 0);
  EXPECT_GT(edf_r.shed, 0) << "2x saturation must force shedding";
  EXPECT_GT(edf_r.shed_deadline, 0);

  // Served requests meet their first-token deadline at the tail...
  EXPECT_LE(edf_r.ttft_s.p99, deadline)
      << "served p99 TTFT " << edf_r.ttft_s.p99 << "s vs deadline "
      << deadline << "s";
  // ...and shedding the hopeless requests beats serving everyone late.
  EXPECT_LT(edf_r.slo_violation_rate, fifo_r.slo_violation_rate)
      << "edf+shed " << edf_r.slo_violation_rate << " vs fifo "
      << fifo_r.slo_violation_rate;
}

// ---------------------------------------------------------------------------
// Preemption (direct scheduler harness)

TEST(Overload, DeadlineCriticalArrivalPreemptsAndVictimCompletes) {
  const auto cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  auto engine = make_engine(EngineKind::Fiddler, costs);

  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, 99);
  const cache::Placement initial = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 4));
  const data::TraceGenerator gen(data::sharegpt_calibration(), cfg.n_layers,
                                 cfg.n_experts, cfg.top_k, 7);

  sim::Timeline tl;
  ContinuousBatchingScheduler::Options sopt;
  sopt.max_concurrent = 2;
  sopt.overload.admission = AdmissionPolicy::kDeadlineEdf;
  sopt.overload.deadline_s = 1e6;  // background requests: effectively no SLO
  sopt.overload.preempt = true;
  ContinuousBatchingScheduler sched(*engine, tl, initial, sopt);

  // Two long background requests fill both slots at t=0...
  for (int i = 0; i < 2; ++i) {
    ContinuousBatchingScheduler::Request req;
    req.id = i;
    req.arrival = 0.0;
    req.trace = gen.generate(i, 16, 64);
    sched.enqueue(std::move(req));
  }
  // ...then a deadline-critical request arrives with a tight first-token
  // budget: it must not wait for a background completion.
  ContinuousBatchingScheduler::Request crit;
  crit.id = 2;
  crit.arrival = 0.05;
  crit.deadline_s = 0.5;
  crit.trace = gen.generate(2, 8, 4);
  sched.enqueue(std::move(crit));

  const auto outcomes = sched.run();
  ASSERT_EQ(outcomes.size(), 3U);

  // Preemption invariant: the victim was parked exactly once, resumed, and
  // completed — nobody is lost and nothing stays parked.
  long long total_preemptions = 0;
  for (const auto& o : outcomes) {
    SCOPED_TRACE(o.id);
    EXPECT_TRUE(o.served);
    total_preemptions += o.preemptions;
  }
  EXPECT_EQ(total_preemptions, 1);
  EXPECT_EQ(outcomes[2].preemptions, 0) << "the preemptor is never a victim";
  // The critical request met its first-token budget: it started within the
  // deadline window instead of waiting out a background request.
  EXPECT_LE(outcomes[2].start, crit.arrival + crit.deadline_s);
  EXPECT_LT(outcomes[2].start, std::min(outcomes[0].end, outcomes[1].end));

  const auto& stats = sched.overload_stats();
  EXPECT_EQ(stats.preemptions, 1);
  EXPECT_EQ(stats.preempt_resumes, 1);
  // Parked sessions released their pins and every session closed: the
  // shared placement must end the run unpinned.
  EXPECT_EQ(sched.arbiter().total_pin_count(), 0);
}

// End-to-end preemption through the serving harness: every Nth request is
// deadline-critical and the run stays conserved and deterministic.
TEST(Overload, PriorityMixPreemptsThroughServingHarness) {
  auto opt = cb_options();
  opt.arrival_rate_rps = 4.0;
  opt.overload.admission = AdmissionPolicy::kDeadlineEdf;
  opt.overload.deadline_s = 1e6;
  opt.overload.preempt = true;
  opt.priority_every = 4;
  opt.priority_deadline_s = 25.0;
  const auto a = run(EngineKind::Daop, opt);
  EXPECT_EQ(a.served + a.dropped + a.shed, opt.n_requests);
  EXPECT_GT(a.preemptions, 0)
      << "the deadline-critical mix was meant to force preemption";
  long long log_preempted = 0;
  for (const auto& e : a.request_log) log_preempted += e.preempted;
  EXPECT_EQ(log_preempted, a.preemptions);
  const auto b = run(EngineKind::Daop, opt);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

}  // namespace
}  // namespace daop::eval
