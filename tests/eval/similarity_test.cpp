#include "eval/similarity.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "data/trace_generator.hpp"

namespace daop::eval {
namespace {

TEST(MatrixSimilarity, IdenticalMatricesGiveOne) {
  const std::vector<std::vector<double>> m = {{1.0, 2.0, 3.0}, {4.0, 0.0, 1.0}};
  EXPECT_NEAR(matrix_similarity(m, m), 1.0, 1e-12);
}

TEST(MatrixSimilarity, OrthogonalRowsGiveZero) {
  const std::vector<std::vector<double>> p = {{1.0, 0.0}, {0.0, 1.0}};
  const std::vector<std::vector<double>> d = {{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(matrix_similarity(p, d), 0.0, 1e-12);
}

TEST(MatrixSimilarity, AveragesAcrossLayers) {
  // One identical row (cos 1), one orthogonal row (cos 0) -> 0.5.
  const std::vector<std::vector<double>> p = {{1.0, 0.0}, {1.0, 0.0}};
  const std::vector<std::vector<double>> d = {{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_NEAR(matrix_similarity(p, d), 0.5, 1e-12);
}

TEST(MatrixSimilarity, ScaleInvariant) {
  const std::vector<std::vector<double>> p = {{1.0, 2.0}};
  const std::vector<std::vector<double>> d = {{10.0, 20.0}};
  EXPECT_NEAR(matrix_similarity(p, d), 1.0, 1e-12);
}

TEST(MatrixSimilarity, RejectsShapeMismatch) {
  const std::vector<std::vector<double>> p = {{1.0, 2.0}};
  const std::vector<std::vector<double>> d = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_THROW(matrix_similarity(p, d), CheckError);
}

TEST(PredictionAccuracy, PerfectPredictionsScoreOne) {
  data::WorkloadSpec spec = data::c4();
  spec.pred_noise_early = 0.0;
  spec.pred_noise_late = 0.0;
  const data::TraceGenerator gen(spec, 6, 8, 2, 3);
  const auto acc = prediction_accuracy_by_layer(gen, 4);
  ASSERT_EQ(acc.size(), 6U);
  EXPECT_EQ(acc[0], 0.0);  // layer 0 has no predictions
  for (std::size_t l = 1; l < acc.size(); ++l) EXPECT_DOUBLE_EQ(acc[l], 1.0);
  EXPECT_DOUBLE_EQ(avg_prediction_accuracy(gen, 4), 1.0);
}

TEST(PredictionAccuracy, NoisePushesBelowPerfect) {
  data::WorkloadSpec noisy = data::c4();
  noisy.pred_noise_early = 5.0;
  noisy.pred_noise_late = 5.0;
  const data::TraceGenerator gen(noisy, 6, 8, 2, 3);
  const double avg = avg_prediction_accuracy(gen, 8);
  EXPECT_LT(avg, 0.7);
  // Chance level for top-2 of 8 is 0.25; heavy noise approaches it.
  EXPECT_GT(avg, 0.15);
}

TEST(WindowSimilarity, ShortSequencesDegenerateToOne) {
  const data::TraceGenerator gen(data::c4(), 4, 8, 2, 3);
  const auto tr = gen.generate(0, 4, 10);  // < 2 windows of 15
  EXPECT_DOUBLE_EQ(decode_window_similarity(tr, 15), 1.0);
}

TEST(WindowSimilarity, DriftLowersWindowSimilarity) {
  data::WorkloadSpec stable = data::c4();
  stable.drift_sigma = 0.0;
  data::WorkloadSpec drifty = data::c4();
  drifty.drift_sigma = 0.5;
  drifty.drift_rho = 0.95;
  const data::TraceGenerator gs(stable, 8, 8, 2, 3);
  const data::TraceGenerator gd(drifty, 8, 8, 2, 3);
  EXPECT_GT(avg_decode_window_similarity(gs, 16, 15),
            avg_decode_window_similarity(gd, 16, 15));
}

TEST(MarginalActivation, RowsAreNormalized) {
  const data::TraceGenerator gen(data::c4(), 4, 8, 2, 3);
  const auto marg = marginal_activation(gen, 8);
  for (const auto& layer : marg) {
    double sum = 0.0;
    for (double v : layer) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(PhaseSimilarity, PerfectWhenNoShiftNoDriftLowNoise) {
  data::WorkloadSpec spec = data::c4();
  spec.phase_shift_sigma = 0.0;
  spec.drift_sigma = 0.0;
  spec.token_noise_sigma = 0.05;
  const data::TraceGenerator gen(spec, 6, 8, 2, 3);
  EXPECT_GT(avg_prefill_decode_similarity(gen, 8), 0.99);
}

TEST(PhaseSimilarity, ShiftLowersSimilarity) {
  data::WorkloadSpec lo = data::c4();
  lo.phase_shift_sigma = 0.1;
  data::WorkloadSpec hi = data::c4();
  hi.phase_shift_sigma = 0.95;
  const data::TraceGenerator gl(lo, 6, 8, 2, 3);
  const data::TraceGenerator gh(hi, 6, 8, 2, 3);
  EXPECT_GT(avg_prefill_decode_similarity(gl, 16),
            avg_prefill_decode_similarity(gh, 16));
}

}  // namespace
}  // namespace daop::eval
