// Determinism harness for eval::ParallelSweepRunner: the parallel sweep's
// results, metrics snapshots, and trace bytes must be byte-identical to a
// serial loop over the same cells, at every thread count, seeds and
// full-chaos hazards included. This is the contract that lets the benches
// fan out without touching their goldens.
#include "eval/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../testing/helpers.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "data/workload.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_model.hpp"
#include "sim/trace_export.hpp"

namespace daop::eval {
namespace {

SpeedEvalOptions fast_options(std::uint64_t seed) {
  SpeedEvalOptions opt;
  opt.n_seqs = 2;
  opt.prompt_len = 16;
  opt.gen_len = 16;
  opt.calibration_seqs = 4;
  opt.seed = seed;
  return opt;
}

// A small grid mixing engines, seeds, and hazard environments, including
// the full-chaos scenario ("all" hazards at full intensity).
std::vector<SpeedGridCell> make_grid(std::uint64_t seed) {
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  std::vector<SpeedGridCell> cells;
  for (EngineKind kind : {EngineKind::MixtralOffloading, EngineKind::Fiddler,
                          EngineKind::Daop}) {
    for (int hazard = 0; hazard < 2; ++hazard) {
      SpeedGridCell cell;
      cell.kind = kind;
      cell.model = cfg;
      cell.platform = platform;
      cell.workload = data::c4();
      cell.options = fast_options(seed);
      if (hazard) {
        cell.options.hazards = sim::make_hazard_scenario("all", 1.0);
        cell.label = "chaos";
      } else {
        cell.label = "calm";
      }
      cells.push_back(cell);
    }
  }
  return cells;
}

// Exact-bit serialization of a RunResult: any drift in any field shows up
// as a string mismatch with a readable diff.
std::string result_bytes(const engines::RunResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.engine << '|' << r.prompt_tokens << '|' << r.generated_tokens << '|'
     << r.prefill_s << '|' << r.decode_s << '|' << r.total_s << '|'
     << r.tokens_per_s << '|' << r.decode_tokens_per_s << '|'
     << r.tokens_per_kj << '|' << r.energy.total_j << '|'
     << r.counters.migration_retries << '|' << r.counters.migration_aborts
     << '|' << r.counters.stale_precalcs << '|' << r.counters.degradations
     << '|' << r.counters.hazard_stall_s;
  return os.str();
}

std::string grid_bytes(const std::vector<SpeedGridCellResult>& grid) {
  std::string out;
  for (const auto& cell : grid) {
    for (const auto& r : cell.per_sequence) out += result_bytes(r) + '\n';
    out += "agg " + result_bytes(cell.aggregate) + '\n';
  }
  return out;
}

// The serial reference: what the pre-refactor benches did — run each cell
// in index order with the registry attached, no sharing, no pool.
std::string serial_reference(const std::vector<SpeedGridCell>& cells,
                             std::string* metrics_json,
                             std::string* metrics_prom) {
  obs::MetricsRegistry reg;
  std::string out;
  for (const auto& cell : cells) {
    SpeedEvalOptions opt = cell.options;
    opt.metrics = &reg;
    const auto per_seq = run_speed_eval_per_sequence(
        cell.kind, cell.model, cell.platform, cell.workload, opt);
    for (const auto& r : per_seq) out += result_bytes(r) + '\n';
    out += "agg " +
           result_bytes(engines::aggregate_results(per_seq[0].engine,
                                                   per_seq)) +
           '\n';
  }
  *metrics_json = reg.to_json();
  *metrics_prom = reg.to_prometheus();
  return out;
}

TEST(ParallelSweep, ByteIdenticalToSerialAcrossThreadCountsAndSeeds) {
  for (std::uint64_t seed : {7ULL, 11ULL, 23ULL}) {
    const auto cells = make_grid(seed);
    std::string serial_json;
    std::string serial_prom;
    const std::string serial = serial_reference(cells, &serial_json,
                                                &serial_prom);
    for (unsigned threads : {1U, 2U, 8U}) {
      const ParallelSweepRunner runner(threads);
      obs::MetricsRegistry reg;
      const auto grid = runner.run_speed_grid(cells, &reg);
      EXPECT_EQ(grid_bytes(grid), serial)
          << "results diverged at seed=" << seed << " threads=" << threads;
      EXPECT_EQ(reg.to_json(), serial_json)
          << "metrics JSON diverged at seed=" << seed
          << " threads=" << threads;
      EXPECT_EQ(reg.to_prometheus(), serial_prom)
          << "metrics text diverged at seed=" << seed
          << " threads=" << threads;
    }
  }
}

TEST(ParallelSweep, SharedPrecomputationIsValueIdentical) {
  // Supplying the hoisted placement/traces must be bit-identical to the
  // default in-eval computation — the property the grid runner relies on.
  const auto cells = make_grid(7);
  const auto& cell = cells.back();  // Daop under full chaos
  const auto baseline = run_speed_eval_per_sequence(
      cell.kind, cell.model, cell.platform, cell.workload, cell.options);

  const cache::Placement placement =
      calibrated_initial_placement(cell.model, cell.options);
  const std::vector<data::SequenceTrace> traces =
      generate_eval_traces(cell.model, cell.workload, cell.options);
  SpeedEvalOptions hoisted = cell.options;
  hoisted.initial_placement = &placement;
  hoisted.traces = &traces;
  const auto with_hoisting = run_speed_eval_per_sequence(
      cell.kind, cell.model, cell.platform, cell.workload, hoisted);

  ASSERT_EQ(with_hoisting.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(result_bytes(with_hoisting[i]), result_bytes(baseline[i]));
  }
}

TEST(ParallelSweep, TraceBytesAreThreadInvariant) {
  // An engine run recording into a timeline, exported as Chrome-trace JSON,
  // must produce identical bytes whether it executes on the calling thread
  // or inside a pool worker (pooled session buffers are thread-local; tag
  // interning is per-timeline).
  const model::ModelConfig cfg = daop::testing::small_mixtral();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  SpeedEvalOptions opt = fast_options(7);
  opt.hazards = sim::make_hazard_scenario("all", 1.0);
  const cache::Placement placement = calibrated_initial_placement(cfg, opt);
  const std::vector<data::SequenceTrace> traces =
      generate_eval_traces(cfg, data::c4(), opt);

  auto run_traced = [&]() {
    const sim::CostModel cm(platform);
    const model::OpCosts costs(cfg, cm);
    auto engine = make_engine(EngineKind::Daop, costs, opt.daop_config);
    sim::FaultModel fm(opt.hazards, opt.seed ^ 0xFA017ULL);
    sim::Timeline tl;
    tl.set_fault_model(&fm);
    tl.set_record_intervals(true);
    engine->run(traces.front(), placement, &tl);
    return sim::to_chrome_trace_json(tl);
  };

  const std::string serial = run_traced();
  EXPECT_FALSE(serial.empty());
  ThreadPool pool(4);
  std::vector<std::string> from_workers(8);
  pool.parallel_for(static_cast<std::int64_t>(from_workers.size()),
                    [&](std::int64_t i) {
                      from_workers[static_cast<std::size_t>(i)] = run_traced();
                    });
  for (const auto& bytes : from_workers) EXPECT_EQ(bytes, serial);
}

TEST(ParallelSweep, RunCellsCoversEveryIndexOnce) {
  const ParallelSweepRunner runner(4);
  std::vector<int> hits(257, 0);
  runner.run_cells(static_cast<std::int64_t>(hits.size()),
                   [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelSweep, RejectsCellsWithAttachedSinks) {
  auto cells = make_grid(7);
  obs::MetricsRegistry reg;
  cells[0].options.metrics = &reg;
  const ParallelSweepRunner runner(2);
  EXPECT_THROW(runner.run_speed_grid(cells), CheckError);
}

}  // namespace
}  // namespace daop::eval