// Strict-passivity regression for the serving harness: with every
// overload-control option at its default, run_serving_eval must produce
// bit-identical output — request times, counters, the Prometheus metrics
// text, and the exported request-span trace bytes — versus the committed
// golden snapshots captured from the pre-overload (PR 3) serving code, for
// both the sequential and the continuous-batching scheduler. Any
// scheduling-order or metric-emission change — however plausible-looking —
// fails this test.
//
// Regenerate (only after an INTENTIONAL serving-behaviour change) with:
//   DAOP_UPDATE_GOLDENS=1 ./serving_golden_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "../testing/helpers.hpp"
#include "eval/serving.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "sim/trace_export.hpp"

#ifndef DAOP_GOLDEN_DIR
#error "DAOP_GOLDEN_DIR must be defined by the build"
#endif

namespace daop::eval {
namespace {

/// Hexfloat rendering: two doubles render identically iff they are
/// bit-identical (modulo -0.0/NaN, which serving never produces here).
std::string hexf(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hash_str(const std::string& s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(s)));
  return buf;
}

std::string serving_snapshot(EngineKind kind, int max_concurrent,
                             std::uint64_t seed) {
  ServingOptions opt;
  opt.arrival_rate_rps = 1.0;
  opt.n_requests = 8;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 12;
  opt.max_gen = 24;
  opt.calibration_seqs = 4;
  opt.seed = seed;
  opt.max_concurrent = max_concurrent;
  obs::MetricsRegistry reg;
  opt.metrics = &reg;
  obs::SpanTracer tracer;
  opt.tracer = &tracer;

  const ServingResult r = run_serving_eval(
      kind, daop::testing::small_mixtral(), sim::a6000_i9_platform(),
      data::sharegpt_calibration(), opt);

  std::ostringstream os;
  os << "[" << engine_kind_name(kind) << " | max_concurrent "
     << max_concurrent << " | seed " << seed << "]\n";
  os << "served=" << r.served << " dropped=" << r.dropped
     << " retries=" << r.request_retries << "\n";
  os << "ttft=" << hexf(r.ttft_s.mean) << " " << hexf(r.ttft_s.p99) << "\n";
  os << "latency=" << hexf(r.latency_s.mean) << " " << hexf(r.latency_s.p99)
     << "\n";
  os << "queue_wait=" << hexf(r.queue_wait_s.mean) << "\n";
  os << "tpot=" << hexf(r.tpot_s.mean) << "\n";
  os << "throughput=" << hexf(r.throughput_tps) << "\n";
  os << "makespan=" << hexf(r.makespan_s) << "\n";
  os << "busy=" << hexf(r.busy_fraction) << "\n";
  const engines::EngineCounters& c = r.counters;
  os << "counters=" << c.expert_migrations << "," << c.gpu_expert_execs << ","
     << c.cpu_expert_execs << "," << c.cache_hits << "," << c.cache_misses
     << "," << c.prefetch_hits << "," << c.predictions << ","
     << c.mispredictions << "," << c.degradations << "," << c.prefill_swaps
     << "," << c.decode_swaps << "," << c.skipped_experts << ","
     << c.migration_retries << "," << c.migration_aborts << ","
     << c.stale_precalcs << "," << c.pin_refusals << ","
     << hexf(c.hazard_stall_s) << "\n";
  // The serving trace has no recorded timeline; the export is exactly what
  // `daop_cli serve --out-json` writes (tracer tracks only).
  const sim::Timeline no_timeline;
  os << "trace_fnv1a="
     << hash_str(sim::to_chrome_trace_json(no_timeline, &tracer)) << "\n";
  os << "metrics_fnv1a=" << hash_str(reg.to_prometheus()) << "\n";
  return os.str();
}

std::string all_snapshots() {
  std::string out;
  for (const EngineKind kind : {EngineKind::Daop, EngineKind::Fiddler}) {
    for (const int mc : {1, 4}) {
      out += serving_snapshot(kind, mc, 99);
      out += "\n";
    }
  }
  return out;
}

const char* kGoldenPath = DAOP_GOLDEN_DIR "/serving_runs.golden";

TEST(ServingGolden, DefaultOptionsMatchPreOverloadGoldens) {
  const std::string actual = all_snapshots();
  if (std::getenv("DAOP_UPDATE_GOLDENS") != nullptr) {
    std::ofstream f(kGoldenPath);
    ASSERT_TRUE(f.good()) << "cannot write " << kGoldenPath;
    f << actual;
    GTEST_SKIP() << "goldens regenerated at " << kGoldenPath;
  }
  std::ifstream f(kGoldenPath);
  ASSERT_TRUE(f.good()) << "missing golden file " << kGoldenPath
                        << " (regenerate with DAOP_UPDATE_GOLDENS=1)";
  std::ostringstream expected;
  expected << f.rdbuf();
  // Compare block by block so a failure names the first diverging run.
  std::istringstream ea(expected.str());
  std::istringstream aa(actual);
  std::string eline;
  std::string aline;
  std::string block = "<header>";
  int line_no = 0;
  while (std::getline(ea, eline)) {
    ++line_no;
    if (!eline.empty() && eline.front() == '[') block = eline;
    ASSERT_TRUE(static_cast<bool>(std::getline(aa, aline)))
        << "snapshot truncated in " << block;
    ASSERT_EQ(eline, aline) << "first divergence in " << block << " (line "
                            << line_no << ")";
  }
  EXPECT_FALSE(static_cast<bool>(std::getline(aa, aline)))
      << "snapshot has extra content after " << block;
}

}  // namespace
}  // namespace daop::eval
