#include "eval/serving.hpp"

#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "common/check.hpp"

namespace daop::eval {
namespace {

ServingOptions fast_options() {
  ServingOptions opt;
  opt.arrival_rate_rps = 0.05;
  opt.n_requests = 6;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 16;
  opt.max_gen = 32;
  opt.calibration_seqs = 4;
  return opt;
}

ServingResult run(EngineKind kind, const ServingOptions& opt) {
  return run_serving_eval(kind, daop::testing::small_mixtral(),
                          sim::a6000_i9_platform(),
                          data::sharegpt_calibration(), opt);
}

TEST(Serving, ProducesConsistentMetrics) {
  const auto r = run(EngineKind::Daop, fast_options());
  EXPECT_EQ(r.requests, 6);
  EXPECT_GT(r.throughput_tps, 0.0);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GE(r.busy_fraction, 0.0);
  EXPECT_LE(r.busy_fraction, 1.0);
  // Latency includes queueing + service, so it dominates both components.
  EXPECT_GE(r.latency_s.mean, r.queue_wait_s.mean);
  EXPECT_GE(r.latency_s.mean, r.ttft_s.mean);
  EXPECT_GE(r.ttft_s.mean, r.queue_wait_s.mean);
}

TEST(Serving, Deterministic) {
  const auto a = run(EngineKind::Fiddler, fast_options());
  const auto b = run(EngineKind::Fiddler, fast_options());
  EXPECT_DOUBLE_EQ(a.latency_s.mean, b.latency_s.mean);
  EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
}

TEST(Serving, HigherLoadMeansMoreQueueing) {
  auto light = fast_options();
  light.arrival_rate_rps = 0.001;  // essentially idle server
  auto heavy = fast_options();
  heavy.arrival_rate_rps = 10.0;  // everything arrives at once
  const auto rl = run(EngineKind::Daop, light);
  const auto rh = run(EngineKind::Daop, heavy);
  EXPECT_GT(rh.queue_wait_s.mean, rl.queue_wait_s.mean);
  EXPECT_GT(rh.busy_fraction, rl.busy_fraction);
}

TEST(Serving, FasterEngineServesSameLoadWithLowerLatency) {
  auto opt = fast_options();
  opt.arrival_rate_rps = 0.05;
  const auto daop = run(EngineKind::Daop, opt);
  const auto ondemand = run(EngineKind::MoEOnDemand, opt);
  EXPECT_LT(daop.latency_s.mean, ondemand.latency_s.mean);
  EXPECT_GT(daop.throughput_tps, ondemand.throughput_tps);
}

TEST(Serving, RejectsBadOptions) {
  auto opt = fast_options();
  opt.arrival_rate_rps = 0.0;
  EXPECT_THROW(run(EngineKind::Daop, opt), CheckError);
  opt = fast_options();
  opt.min_prompt = 64;
  opt.max_prompt = 32;
  EXPECT_THROW(run(EngineKind::Daop, opt), CheckError);
}

}  // namespace
}  // namespace daop::eval
