#include "eval/serving.hpp"

#include <gtest/gtest.h>

#include "../testing/helpers.hpp"
#include "common/check.hpp"

namespace daop::eval {
namespace {

ServingOptions fast_options() {
  ServingOptions opt;
  opt.arrival_rate_rps = 0.05;
  opt.n_requests = 6;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 16;
  opt.max_gen = 32;
  opt.calibration_seqs = 4;
  return opt;
}

ServingResult run(EngineKind kind, const ServingOptions& opt) {
  return run_serving_eval(kind, daop::testing::small_mixtral(),
                          sim::a6000_i9_platform(),
                          data::sharegpt_calibration(), opt);
}

TEST(Serving, ProducesConsistentMetrics) {
  const auto r = run(EngineKind::Daop, fast_options());
  EXPECT_EQ(r.requests, 6);
  EXPECT_GT(r.throughput_tps, 0.0);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GE(r.busy_fraction, 0.0);
  EXPECT_LE(r.busy_fraction, 1.0);
  // Latency includes queueing + service, so it dominates both components.
  EXPECT_GE(r.latency_s.mean, r.queue_wait_s.mean);
  EXPECT_GE(r.latency_s.mean, r.ttft_s.mean);
  EXPECT_GE(r.ttft_s.mean, r.queue_wait_s.mean);
}

TEST(Serving, Deterministic) {
  const auto a = run(EngineKind::Fiddler, fast_options());
  const auto b = run(EngineKind::Fiddler, fast_options());
  EXPECT_DOUBLE_EQ(a.latency_s.mean, b.latency_s.mean);
  EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
}

TEST(Serving, HigherLoadMeansMoreQueueing) {
  auto light = fast_options();
  light.arrival_rate_rps = 0.001;  // essentially idle server
  auto heavy = fast_options();
  heavy.arrival_rate_rps = 10.0;  // everything arrives at once
  const auto rl = run(EngineKind::Daop, light);
  const auto rh = run(EngineKind::Daop, heavy);
  EXPECT_GT(rh.queue_wait_s.mean, rl.queue_wait_s.mean);
  EXPECT_GT(rh.busy_fraction, rl.busy_fraction);
}

TEST(Serving, FasterEngineServesSameLoadWithLowerLatency) {
  auto opt = fast_options();
  opt.arrival_rate_rps = 0.05;
  const auto daop = run(EngineKind::Daop, opt);
  const auto ondemand = run(EngineKind::MoEOnDemand, opt);
  EXPECT_LT(daop.latency_s.mean, ondemand.latency_s.mean);
  EXPECT_GT(daop.throughput_tps, ondemand.throughput_tps);
}

TEST(Serving, HistogramPercentilesAgreeWithExactWithinOneBucket) {
  // The bucketed TTFT/TPOT/latency histograms are estimates; the Summary
  // percentiles are exact order statistics. The histogram_quantile estimate
  // can be off by at most the width of the bucket the exact value falls in.
  auto opt = fast_options();
  opt.n_requests = 16;
  const auto r = run(EngineKind::Daop, opt);
  ASSERT_EQ(r.ttft_hist.total, r.served);
  ASSERT_EQ(r.tpot_hist.total, r.served);
  ASSERT_EQ(r.latency_hist.total, r.served);
  struct Case {
    const char* name;
    const obs::HistogramData* hist;
    const Summary* exact;
  };
  const Case cases[] = {{"ttft", &r.ttft_hist, &r.ttft_s},
                        {"tpot", &r.tpot_hist, &r.tpot_s},
                        {"latency", &r.latency_hist, &r.latency_s}};
  const struct {
    double q;
    double Summary::*field;
  } quantiles[] = {{0.50, &Summary::p50},
                   {0.90, &Summary::p90},
                   {0.99, &Summary::p99}};
  for (const Case& c : cases) {
    for (const auto& [q, field] : quantiles) {
      const double exact = c.exact->*field;
      const double est = obs::histogram_quantile(*c.hist, q);
      EXPECT_NEAR(est, exact, c.hist->bucket_width(exact) + 1e-12)
          << c.name << " q=" << q;
    }
  }
}

TEST(Serving, TpotSummaryMatchesPerRequestRates) {
  const auto r = run(EngineKind::Fiddler, fast_options());
  EXPECT_EQ(r.tpot_s.n, r.served);
  EXPECT_GT(r.tpot_s.mean, 0.0);
  // Per-token time is a fraction of a full request's latency.
  EXPECT_LT(r.tpot_s.max, r.latency_s.max);
}

TEST(Serving, RejectsBadOptions) {
  auto opt = fast_options();
  opt.arrival_rate_rps = 0.0;
  EXPECT_THROW(run(EngineKind::Daop, opt), CheckError);
  opt = fast_options();
  opt.min_prompt = 64;
  opt.max_prompt = 32;
  EXPECT_THROW(run(EngineKind::Daop, opt), CheckError);
}

}  // namespace
}  // namespace daop::eval
