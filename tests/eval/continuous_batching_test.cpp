// Continuous-batching serving scheduler: the iteration-level interleaved
// server must beat the sequential FCFS server on the same request plan
// (the PR's acceptance criterion), conserve requests under timeouts, stay
// deterministic, and keep feeding the existing serving metrics.
#include "eval/continuous_batching.hpp"

#include <gtest/gtest.h>

#include <string>

#include "../testing/helpers.hpp"
#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "data/trace_generator.hpp"
#include "eval/serving.hpp"

namespace daop::eval {
namespace {

// A load heavy enough that the sequential server queues: requests arrive
// faster than one-at-a-time service can drain them.
ServingOptions saturating_options() {
  ServingOptions opt;
  opt.arrival_rate_rps = 2.0;
  opt.n_requests = 12;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 16;
  opt.max_gen = 32;
  opt.calibration_seqs = 4;
  return opt;
}

ServingResult run(EngineKind kind, const ServingOptions& opt) {
  return run_serving_eval(kind, daop::testing::small_mixtral(),
                          sim::a6000_i9_platform(),
                          data::sharegpt_calibration(), opt);
}

TEST(ContinuousBatching, ThroughputAndWaitBeatSequentialServer) {
  // Acceptance criterion: on the same seed and request plan, interleaving
  // up to 4 in-flight sessions on one shared timeline yields strictly
  // higher token throughput and strictly lower mean queue wait than the
  // sequential server, with every request accounted for in both modes.
  for (EngineKind kind : {EngineKind::Daop, EngineKind::Fiddler}) {
    SCOPED_TRACE(engine_kind_name(kind));
    const auto opt = saturating_options();
    const auto seq = run(kind, opt);
    auto cb_opt = opt;
    cb_opt.max_concurrent = 4;
    const auto cb = run(kind, cb_opt);

    EXPECT_GT(cb.throughput_tps, seq.throughput_tps);
    EXPECT_LT(cb.queue_wait_s.mean, seq.queue_wait_s.mean);
    EXPECT_EQ(seq.served + seq.dropped, opt.n_requests);
    EXPECT_EQ(cb.served + cb.dropped, opt.n_requests);
    // Both modes serve the same request plan, so token totals agree.
    EXPECT_EQ(cb.counters.cache_hits + cb.counters.cache_misses,
              seq.counters.cache_hits + seq.counters.cache_misses);
  }
}

TEST(ContinuousBatching, ConservesRequestsUnderTimeouts) {
  auto opt = saturating_options();
  opt.max_concurrent = 4;
  opt.arrival_rate_rps = 20.0;  // everything arrives nearly at once
  opt.n_requests = 16;
  opt.request_timeout_s = 0.5;
  opt.max_request_retries = 1;
  opt.retry_backoff_s = 0.25;
  const auto r = run(EngineKind::Daop, opt);
  EXPECT_EQ(r.served + r.dropped, opt.n_requests);
  EXPECT_GT(r.dropped, 0) << "load was meant to overwhelm the timeout";
  // Every drop burned its retry budget first.
  EXPECT_GE(r.request_retries, r.dropped);
  // Dropped requests count as SLO violations.
  EXPECT_GE(r.slo_violations, r.dropped);
}

TEST(ContinuousBatching, DeterministicAcrossRepeats) {
  auto opt = saturating_options();
  opt.max_concurrent = 4;
  const auto a = run(EngineKind::Daop, opt);
  const auto b = run(EngineKind::Daop, opt);
  EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.latency_s.mean, b.latency_s.mean);
  EXPECT_DOUBLE_EQ(a.queue_wait_s.mean, b.queue_wait_s.mean);
  EXPECT_DOUBLE_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s);
  EXPECT_EQ(a.counters.cache_hits, b.counters.cache_hits);
  EXPECT_EQ(a.counters.pin_refusals, b.counters.pin_refusals);
}

TEST(ContinuousBatching, EmitsServingMetrics) {
  // Switching the scheduler must not lose any serving telemetry: the same
  // metric families appear, and the inline queue-wait histogram matches the
  // served count.
  obs::MetricsRegistry reg;
  auto opt = saturating_options();
  opt.max_concurrent = 4;
  opt.metrics = &reg;
  const auto r = run(EngineKind::Daop, opt);
  const std::string out = reg.to_prometheus();
  for (const char* fam :
       {"daop_serving_requests_total", "daop_serving_ttft_seconds",
        "daop_serving_tpot_seconds", "daop_serving_latency_seconds",
        "daop_serving_queue_wait_seconds",
        "daop_serving_throughput_tokens_per_second",
        "daop_serving_makespan_seconds", "daop_serving_busy_fraction",
        "daop_expert_execs_total", "daop_pin_refusals_total"}) {
    EXPECT_NE(out.find(fam), std::string::npos) << "missing family " << fam;
  }
  const std::string wait_count = "daop_serving_queue_wait_seconds_count{";
  const auto pos = out.find(wait_count);
  ASSERT_NE(pos, std::string::npos);
  const auto line_end = out.find('\n', pos);
  const std::string line = out.substr(pos, line_end - pos);
  EXPECT_NE(line.find("} " + std::to_string(r.served)), std::string::npos)
      << line;
}

TEST(ContinuousBatching, SchedulerConservesAndOrdersOutcomes) {
  // Direct scheduler-level check: every enqueued request produces exactly
  // one outcome, outcomes come back sorted by id, and in-flight count never
  // exceeds max_concurrent (free slots + active partition the capacity).
  const auto cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  auto engine = make_engine(EngineKind::Fiddler, costs);

  const data::TraceGenerator calib(data::sharegpt_calibration(), cfg.n_layers,
                                   cfg.n_experts, cfg.top_k, 99);
  const cache::Placement initial = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469,
      cache::calibrate_activation_counts(calib, 4));
  const data::TraceGenerator gen(data::sharegpt_calibration(), cfg.n_layers,
                                 cfg.n_experts, cfg.top_k, 7);

  sim::Timeline tl;
  ContinuousBatchingScheduler::Options sopt;
  sopt.max_concurrent = 3;
  ContinuousBatchingScheduler sched(*engine, tl, initial, sopt);
  for (int i = 0; i < 8; ++i) {
    ContinuousBatchingScheduler::Request req;
    req.id = i;
    req.arrival = 0.1 * i;
    req.trace = gen.generate(i, 12, 8);
    sched.enqueue(std::move(req));
  }
  const auto outcomes = sched.run();
  ASSERT_EQ(outcomes.size(), 8U);
  for (int i = 0; i < 8; ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(outcomes[i].id, i);
    EXPECT_TRUE(outcomes[i].served);
    EXPECT_GE(outcomes[i].start, outcomes[i].arrival);
    EXPECT_GT(outcomes[i].end, outcomes[i].start);
    EXPECT_EQ(outcomes[i].result.generated_tokens, 8);
  }
  // With 3 slots and 8 requests, later requests must have waited for a
  // slot: request 7 cannot start before the earliest completion.
  double earliest_end = outcomes[0].end;
  for (const auto& o : outcomes) earliest_end = std::min(earliest_end, o.end);
  EXPECT_GE(outcomes[7].start, earliest_end);
}

TEST(ContinuousBatching, RejectsNonMonotonicArrivals) {
  const auto cfg = daop::testing::small_mixtral();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);
  auto engine = make_engine(EngineKind::Fiddler, costs);
  cache::Placement pl(cfg.n_layers, cfg.n_experts);
  sim::Timeline tl;
  ContinuousBatchingScheduler sched(*engine, tl, pl, {});
  const data::TraceGenerator gen(data::sharegpt_calibration(), cfg.n_layers,
                                 cfg.n_experts, cfg.top_k, 7);
  ContinuousBatchingScheduler::Request a;
  a.id = 0;
  a.arrival = 2.0;
  a.trace = gen.generate(0, 8, 4);
  sched.enqueue(std::move(a));
  ContinuousBatchingScheduler::Request b;
  b.id = 1;
  b.arrival = 1.0;  // out of order
  b.trace = gen.generate(1, 8, 4);
  EXPECT_THROW(sched.enqueue(std::move(b)), CheckError);
}

}  // namespace
}  // namespace daop::eval
