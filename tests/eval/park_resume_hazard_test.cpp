// Deterministic-resume regression: park/resume (preemption) interleaved
// with pending-migration hazards must be bit-reproducible. A preempted
// session releases its pins while its in-flight migrations keep their
// hazard draws; on resume the schedule must replay identically — any
// hidden ordering dependence (map iteration, pointer keys, consumed-RNG
// coupling) shows up as cross-run drift here.
#include <gtest/gtest.h>

#include <cstdint>

#include "../testing/helpers.hpp"
#include "cache/expert_cache.hpp"
#include "eval/serving.hpp"
#include "sim/fault_model.hpp"

namespace daop::eval {
namespace {

ServingOptions chaos_preempt_options(std::uint64_t seed) {
  ServingOptions opt;
  opt.arrival_rate_rps = 2.0;
  opt.n_requests = 18;
  opt.min_prompt = 16;
  opt.max_prompt = 32;
  opt.min_gen = 16;
  opt.max_gen = 32;
  opt.calibration_seqs = 4;
  opt.max_concurrent = 3;
  opt.seed = seed;
  // Hazard storm: migration retries/aborts and stalls land while sessions
  // are parked and resumed.
  opt.hazards = sim::make_hazard_scenario("all", 0.6);
  // Deadline-critical arrivals preempt in-flight sessions.
  opt.overload.admission = AdmissionPolicy::kDeadlineEdf;
  opt.overload.deadline_s = 1e6;
  opt.overload.preempt = true;
  opt.priority_every = 3;
  opt.priority_deadline_s = 40.0;
  return opt;
}

ServingResult run(EngineKind kind, const ServingOptions& opt) {
  return run_serving_eval(kind, daop::testing::small_mixtral(),
                          sim::a6000_i9_platform(),
                          data::sharegpt_calibration(), opt);
}

TEST(ParkResumeHazard, ResumeScheduleIsBitIdenticalAcrossSeeds) {
  bool any_preempted = false;
  for (const std::uint64_t seed : {99ull, 1337ull, 777777ull}) {
    const auto opt = chaos_preempt_options(seed);
    const ServingResult a = run(EngineKind::Daop, opt);
    const ServingResult b = run(EngineKind::Daop, opt);

    // Bit-identity, not tolerance: every client-visible time and counter.
    EXPECT_EQ(a.served, b.served) << "seed " << seed;
    EXPECT_EQ(a.shed, b.shed) << "seed " << seed;
    EXPECT_EQ(a.makespan_s, b.makespan_s) << "seed " << seed;
    EXPECT_EQ(a.ttft_s.mean, b.ttft_s.mean) << "seed " << seed;
    EXPECT_EQ(a.ttft_s.p99, b.ttft_s.p99) << "seed " << seed;
    EXPECT_EQ(a.latency_s.mean, b.latency_s.mean) << "seed " << seed;
    EXPECT_EQ(a.throughput_tps, b.throughput_tps) << "seed " << seed;
    EXPECT_EQ(a.counters.preemptions, b.counters.preemptions)
        << "seed " << seed;
    EXPECT_EQ(a.counters.preempt_resumes, b.counters.preempt_resumes)
        << "seed " << seed;
    EXPECT_EQ(a.counters.migration_retries, b.counters.migration_retries)
        << "seed " << seed;
    EXPECT_EQ(a.counters.migration_aborts, b.counters.migration_aborts)
        << "seed " << seed;
    EXPECT_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s)
        << "seed " << seed;
    ASSERT_EQ(a.request_log.size(), b.request_log.size());
    for (std::size_t i = 0; i < a.request_log.size(); ++i) {
      EXPECT_EQ(a.request_log[i].outcome, b.request_log[i].outcome)
          << "seed " << seed << " request " << i;
      EXPECT_EQ(a.request_log[i].preempted, b.request_log[i].preempted)
          << "seed " << seed << " request " << i;
    }
    // Every parked session must be resumed (conservation of preemption).
    EXPECT_EQ(a.counters.preemptions, a.counters.preempt_resumes)
        << "seed " << seed;
    if (a.counters.preemptions > 0) any_preempted = true;
  }
  // The regression is vacuous if no seed ever preempts under the storm.
  EXPECT_TRUE(any_preempted)
      << "no seed exercised park/resume x hazard interleaving";
}

TEST(ParkResumeHazard, DynamicCachePoliciesStayBitIdentical) {
  // Same storm, with the dynamic expert cache re-migrating mid-decode:
  // cache scans interleave with parks, resumes, and hazard-retried
  // migrations, and the whole schedule must still replay bit-identically.
  // `frozen` rides along as the control: its runs must also match each
  // other AND commit zero cache activity.
  for (const cache::CachePolicy policy :
       {cache::CachePolicy::kFrozen, cache::CachePolicy::kLru,
        cache::CachePolicy::kReusePredictor}) {
    for (const std::uint64_t seed : {99ull, 1337ull}) {
      auto opt = chaos_preempt_options(seed);
      opt.cache.policy = policy;
      opt.cache.realloc_interval = 2;
      SCOPED_TRACE(std::string(cache::cache_policy_name(policy)) + " seed " +
                   std::to_string(seed));
      const ServingResult a = run(EngineKind::Daop, opt);
      const ServingResult b = run(EngineKind::Daop, opt);

      EXPECT_EQ(a.served, b.served);
      EXPECT_EQ(a.makespan_s, b.makespan_s);
      EXPECT_EQ(a.ttft_s.mean, b.ttft_s.mean);
      EXPECT_EQ(a.latency_s.mean, b.latency_s.mean);
      EXPECT_EQ(a.throughput_tps, b.throughput_tps);
      EXPECT_EQ(a.counters.preemptions, b.counters.preemptions);
      EXPECT_EQ(a.counters.migration_retries, b.counters.migration_retries);
      EXPECT_EQ(a.counters.hazard_stall_s, b.counters.hazard_stall_s);
      EXPECT_EQ(a.cache_fills, b.cache_fills);
      EXPECT_EQ(a.cache_evictions, b.cache_evictions);
      EXPECT_EQ(a.cache_refusals, b.cache_refusals);
      EXPECT_EQ(a.cache_aborts, b.cache_aborts);
      ASSERT_EQ(a.request_log.size(), b.request_log.size());
      for (std::size_t i = 0; i < a.request_log.size(); ++i) {
        EXPECT_EQ(a.request_log[i].outcome, b.request_log[i].outcome)
            << "request " << i;
      }
      if (policy == cache::CachePolicy::kFrozen) {
        EXPECT_EQ(a.cache_fills, 0);
        EXPECT_EQ(a.cache_evictions, 0);
      }
    }
  }
}

}  // namespace
}  // namespace daop::eval
