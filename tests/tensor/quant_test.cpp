#include "tensor/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace daop {
namespace {

TEST(Quant, RoundTripWithinScaleQuantum) {
  Rng rng(1);
  const Tensor w = Tensor::randn(16, 128, rng, 0.5F);
  const QuantSpec spec{8, 64};
  const Tensor deq = QuantizedTensor::quantize(w, spec).dequantize();
  const int qmax = 127;
  for (std::int64_t r = 0; r < w.rows(); ++r) {
    for (std::int64_t c = 0; c < w.cols(); ++c) {
      // Error bounded by half a quantization step of the group's scale.
      // The scale is at most group_absmax / qmax <= row_absmax / qmax.
      float absmax = 0.0F;
      for (std::int64_t cc = 0; cc < w.cols(); ++cc) {
        absmax = std::max(absmax, std::abs(w.at(r, cc)));
      }
      EXPECT_NEAR(deq.at(r, c), w.at(r, c), absmax / qmax * 0.51F);
    }
  }
}

TEST(Quant, FewerBitsMoreError) {
  Rng rng(2);
  const Tensor w = Tensor::randn(8, 256, rng, 1.0F);
  double prev = 0.0;
  for (int bits : {8, 6, 4, 3, 2}) {
    const double err = quantization_rms_error(w, QuantSpec{bits, 64});
    EXPECT_GT(err, prev) << bits;
    prev = err;
  }
  // int8 grouped error is small, 2-bit error is large.
  EXPECT_LT(quantization_rms_error(w, (QuantSpec{8, 64})), 0.01);
  EXPECT_GT(quantization_rms_error(w, (QuantSpec{2, 64})), 0.15);
}

TEST(Quant, SmallerGroupsLowerError) {
  Rng rng(3);
  const Tensor w = Tensor::randn(8, 256, rng, 1.0F);
  EXPECT_LE(quantization_rms_error(w, (QuantSpec{4, 16})),
            quantization_rms_error(w, (QuantSpec{4, 256})));
}

TEST(Quant, MatvecMatchesDequantizedMatvec) {
  Rng rng(4);
  const Tensor w = Tensor::randn(24, 100, rng, 0.3F);  // non-multiple group
  const QuantSpec spec{6, 32};
  const QuantizedTensor qt = QuantizedTensor::quantize(w, spec);
  const Tensor deq = qt.dequantize();
  std::vector<float> x(100);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> y_quant(24);
  std::vector<float> y_ref(24);
  qt.matvec(x, y_quant);
  matvec(deq, x, y_ref);
  for (int r = 0; r < 24; ++r) {
    EXPECT_NEAR(y_quant[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)], 1e-3F);
  }
}

TEST(Quant, ZeroMatrixIsExact) {
  const Tensor w(4, 32);
  EXPECT_EQ(quantization_rms_error(w, (QuantSpec{4, 16})), 0.0);
  const Tensor deq = QuantizedTensor::quantize(w, (QuantSpec{4, 16})).dequantize();
  for (std::int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(deq.data()[i], 0.0F);
}

TEST(Quant, BytesPerWeightAccounting) {
  EXPECT_NEAR((QuantSpec{8, 64}).bytes_per_weight(), 1.0 + 2.0 / 64, 1e-12);
  EXPECT_NEAR((QuantSpec{4, 64}).bytes_per_weight(), 0.5 + 2.0 / 64, 1e-12);
  // 4-bit grouped weights are ~3.8x smaller than fp16.
  EXPECT_LT((QuantSpec{4, 64}).bytes_per_weight() / 2.0, 0.27);
}

TEST(Quant, RejectsBadSpecs) {
  Rng rng(5);
  const Tensor w = Tensor::randn(2, 8, rng, 1.0F);
  EXPECT_THROW(QuantizedTensor::quantize(w, (QuantSpec{1, 8})), CheckError);
  EXPECT_THROW(QuantizedTensor::quantize(w, (QuantSpec{9, 8})), CheckError);
  EXPECT_THROW(QuantizedTensor::quantize(w, (QuantSpec{4, 0})), CheckError);
  const Tensor v(8);  // rank 1
  EXPECT_THROW(QuantizedTensor::quantize(v, (QuantSpec{4, 8})), CheckError);
}

TEST(Quant, MatvecShapeChecked) {
  Rng rng(6);
  const Tensor w = Tensor::randn(4, 8, rng, 1.0F);
  const QuantizedTensor qt = QuantizedTensor::quantize(w, (QuantSpec{8, 4}));
  std::vector<float> x(7);
  std::vector<float> y(4);
  EXPECT_THROW(qt.matvec(x, y), CheckError);
}

}  // namespace
}  // namespace daop
