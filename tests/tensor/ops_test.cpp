#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace daop {
namespace {

TEST(Ops, MatvecSmallKnownValues) {
  Tensor w(2, 3);
  // [[1 2 3], [4 5 6]]
  for (int i = 0; i < 6; ++i) w.data()[i] = static_cast<float>(i + 1);
  const std::vector<float> x = {1.0F, 0.0F, -1.0F};
  std::vector<float> y(2);
  matvec(w, x, y);
  EXPECT_FLOAT_EQ(y[0], -2.0F);
  EXPECT_FLOAT_EQ(y[1], -2.0F);
}

TEST(Ops, MatvecTransposedMatchesExplicit) {
  Rng rng(1);
  const Tensor w = Tensor::randn(5, 7, rng, 1.0F);
  std::vector<float> x(5);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> y(7);
  matvec_transposed(w, x, y);
  for (int c = 0; c < 7; ++c) {
    float expect = 0.0F;
    for (int r = 0; r < 5; ++r) expect += w.at(r, c) * x[static_cast<std::size_t>(r)];
    EXPECT_NEAR(y[static_cast<std::size_t>(c)], expect, 1e-5F);
  }
}

TEST(Ops, MatmulMatchesNaive) {
  Rng rng(2);
  const Tensor a = Tensor::randn(7, 5, rng, 1.0F);
  const Tensor b = Tensor::randn(5, 9, rng, 1.0F);
  Tensor c(7, 9);
  matmul(a, b, c);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 9; ++j) {
      float expect = 0.0F;
      for (int k = 0; k < 5; ++k) expect += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), expect, 1e-4F);
    }
  }
}

TEST(Ops, MatmulShapeChecked) {
  Tensor a(2, 3);
  Tensor b(4, 2);  // mismatched inner dim
  Tensor c(2, 2);
  EXPECT_THROW(matmul(a, b, c), CheckError);
}

TEST(Ops, ElementwiseHelpers) {
  std::vector<float> a = {1.0F, 2.0F};
  const std::vector<float> b = {3.0F, -1.0F};
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a[0], 4.0F);
  EXPECT_FLOAT_EQ(a[1], 1.0F);
  scale_inplace(a, 2.0F);
  EXPECT_FLOAT_EQ(a[0], 8.0F);
  axpy_inplace(a, 0.5F, b);
  EXPECT_FLOAT_EQ(a[0], 9.5F);
  EXPECT_FLOAT_EQ(a[1], 1.5F);
}

TEST(Ops, DotAndNorm) {
  const std::vector<float> a = {3.0F, 4.0F};
  EXPECT_FLOAT_EQ(dot(a, a), 25.0F);
  EXPECT_FLOAT_EQ(l2_norm(a), 5.0F);
}

TEST(Ops, CosineSimilarityProperties) {
  const std::vector<float> a = {1.0F, 0.0F};
  const std::vector<float> b = {0.0F, 1.0F};
  const std::vector<float> c = {2.0F, 0.0F};
  const std::vector<float> zero = {0.0F, 0.0F};
  EXPECT_NEAR(cosine_similarity(std::span<const float>(a), b), 0.0, 1e-9);
  EXPECT_NEAR(cosine_similarity(std::span<const float>(a), c), 1.0, 1e-9);
  EXPECT_EQ(cosine_similarity(std::span<const float>(a), zero), 0.0);
}

TEST(Ops, SoftmaxNormalizesAndOrders) {
  std::vector<float> x = {1.0F, 3.0F, 2.0F};
  softmax_inplace(x);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0F, 1e-6F);
  EXPECT_GT(x[1], x[2]);
  EXPECT_GT(x[2], x[0]);
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable) {
  std::vector<float> a = {1000.0F, 1001.0F};
  softmax_inplace(a);
  std::vector<float> b = {0.0F, 1.0F};
  softmax_inplace(b);
  EXPECT_NEAR(a[0], b[0], 1e-6F);
  EXPECT_NEAR(a[1], b[1], 1e-6F);
}

TEST(Ops, SoftmaxSubsetMatchesManual) {
  const std::vector<float> logits = {1.0F, 5.0F, 2.0F, 4.0F};
  const std::vector<int> idx = {1, 3};
  std::vector<float> out(2);
  softmax_subset(logits, idx, out);
  const float z = std::exp(5.0F) + std::exp(4.0F);
  EXPECT_NEAR(out[0], std::exp(5.0F) / z, 1e-6F);
  EXPECT_NEAR(out[1], std::exp(4.0F) / z, 1e-6F);
}

TEST(Ops, RmsnormUnitGainGivesUnitRms) {
  Rng rng(3);
  std::vector<float> x(64);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 3.0));
  std::vector<float> gain(64, 1.0F);
  std::vector<float> out(64);
  rmsnorm(x, gain, 1e-6F, out);
  double ss = 0.0;
  for (float v : out) ss += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(ss / 64.0), 1.0, 1e-3);
}

TEST(Ops, RmsnormAppliesGain) {
  const std::vector<float> x = {2.0F, 2.0F};
  const std::vector<float> gain = {1.0F, 3.0F};
  std::vector<float> out(2);
  rmsnorm(x, gain, 0.0F, out);
  EXPECT_NEAR(out[1], 3.0F * out[0], 1e-5F);
}

TEST(Ops, SiluKnownValues) {
  EXPECT_NEAR(silu(0.0F), 0.0F, 1e-7F);
  EXPECT_NEAR(silu(10.0F), 10.0F, 1e-3F);   // approximately identity
  EXPECT_NEAR(silu(-10.0F), 0.0F, 1e-3F);   // approximately zero
}

TEST(Ops, RopePreservesNormAndIsPositionDependent) {
  Rng rng(4);
  std::vector<float> x(32);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  const std::vector<float> orig = x;

  std::vector<float> x0 = orig;
  rope_inplace(x0, 2, 16, 0, 1e4F);
  EXPECT_EQ(x0, orig);  // position 0 is identity

  std::vector<float> x5 = orig;
  rope_inplace(x5, 2, 16, 5, 1e4F);
  EXPECT_NE(x5, orig);
  EXPECT_NEAR(l2_norm(x5), l2_norm(std::span<const float>(orig)), 1e-4F);
}

TEST(Ops, RopeRelativePhaseProperty) {
  // <rope(q, m), rope(k, n)> depends only on m - n for single-pair vectors.
  std::vector<float> q = {1.0F, 0.5F};
  std::vector<float> k = {0.3F, -0.7F};
  auto dotted = [&](int m, int n) {
    std::vector<float> qm = q;
    std::vector<float> kn = k;
    rope_inplace(qm, 1, 2, m, 1e4F);
    rope_inplace(kn, 1, 2, n, 1e4F);
    return dot(qm, kn);
  };
  EXPECT_NEAR(dotted(3, 1), dotted(7, 5), 1e-5F);
  EXPECT_NEAR(dotted(10, 0), dotted(12, 2), 1e-5F);
}

TEST(Ops, TopkOrderedDescendingDeterministicTies) {
  const std::vector<float> x = {1.0F, 5.0F, 5.0F, 0.0F, 4.0F};
  const auto top3 = topk_indices(x, 3);
  ASSERT_EQ(top3.size(), 3U);
  EXPECT_EQ(top3[0], 1);  // tie broken by lower index
  EXPECT_EQ(top3[1], 2);
  EXPECT_EQ(top3[2], 4);
}

TEST(Ops, TopkFullAndEmpty) {
  const std::vector<float> x = {2.0F, 1.0F};
  EXPECT_TRUE(topk_indices(x, 0).empty());
  const auto all = topk_indices(x, 2);
  EXPECT_EQ(all, (std::vector<int>{0, 1}));
  EXPECT_THROW(topk_indices(x, 3), CheckError);
}

TEST(Ops, Argmax) {
  const std::vector<float> x = {0.5F, -1.0F, 3.0F, 3.0F};
  EXPECT_EQ(argmax(x), 2);  // first of equal maxima
}

// Property sweep: matmul equals matvec row-by-row across shapes.
class MatmulShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapeTest, AgreesWithMatvecPerRow) {
  const auto [m, k, n] = GetParam();
  Rng rng(17);
  const Tensor a = Tensor::randn(m, k, rng, 1.0F);
  const Tensor bt = Tensor::randn(n, k, rng, 1.0F);  // rows = output dims
  Tensor b(k, n);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) b.at(i, j) = bt.at(j, i);
  }
  Tensor c(m, n);
  matmul(a, b, c);
  std::vector<float> y(static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    matvec(bt, a.row(i), y);
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(c.at(i, j), y[static_cast<std::size_t>(j)], 1e-4F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapeTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(1, 8, 3),
                                           std::make_tuple(4, 4, 4),
                                           std::make_tuple(16, 3, 1),
                                           std::make_tuple(9, 17, 5)));

}  // namespace
}  // namespace daop
