#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace daop {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, Rank1ZeroInitialized) {
  Tensor t(5);
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.numel(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, Rank2ShapeAndIndexing) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  t.at(2, 3) = 7.0F;
  EXPECT_EQ(t.at(2, 3), 7.0F);
  // Row-major layout: (2,3) is the last element.
  EXPECT_EQ(t.data()[11], 7.0F);
}

TEST(Tensor, RowView) {
  Tensor t(2, 3);
  t.at(1, 0) = 1.0F;
  t.at(1, 2) = 3.0F;
  const auto r = t.row(1);
  ASSERT_EQ(r.size(), 3U);
  EXPECT_EQ(r[0], 1.0F);
  EXPECT_EQ(r[2], 3.0F);
}

TEST(Tensor, FromInitializerList) {
  const Tensor t = Tensor::from({1.0F, 2.0F, 3.0F});
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.at(1), 2.0F);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng r1(5);
  Rng r2(5);
  const Tensor a = Tensor::randn(4, 4, r1, 1.0F);
  const Tensor b = Tensor::randn(4, 4, r2, 1.0F);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.at(i / 4, i % 4), b.at(i / 4, i % 4));
}

TEST(Tensor, RandnStddevScales) {
  Rng rng(6);
  const Tensor t = Tensor::randn(100, 100, rng, 0.5F);
  double sq = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    sq += static_cast<double>(t.data()[i]) * t.data()[i];
  }
  EXPECT_NEAR(std::sqrt(sq / t.numel()), 0.5, 0.02);
}

TEST(Tensor, Fill) {
  Tensor t(2, 2);
  t.fill(3.0F);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 3.0F);
}

TEST(Tensor, BoundsChecked) {
  Tensor t(2, 2);
  EXPECT_THROW(t.at(2, 0), CheckError);
  EXPECT_THROW(t.at(0, 2), CheckError);
  EXPECT_THROW(t.at(-1), CheckError);
  EXPECT_THROW(t.row(2), CheckError);
}

TEST(Tensor, RowsColsRequireRank2) {
  Tensor t(4);
  EXPECT_THROW(t.rows(), CheckError);
  EXPECT_THROW(t.at(0, 0), CheckError);
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(Tensor(3, 4).shape_str(), "[3, 4]");
  EXPECT_EQ(Tensor(5).shape_str(), "[5]");
}

}  // namespace
}  // namespace daop
