// Extension bench: per-dataset inference speed. The paper reports speed on
// a single traffic mix; routing statistics differ per dataset (§III, §VI-B)
// and those statistics are exactly what DAOP exploits, so its margin over
// Fiddler is workload-dependent: widest where prefill predicts decode well,
// narrowest under GSM8K-style in-sequence drift.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();

  std::printf(
      "Per-dataset speed (extension) — %s, ECR 46.9%%, in/out 256\n\n",
      cfg.name.c_str());

  TextTable t({"dataset", "Fiddler (tok/s)", "DAOP (tok/s)", "DAOP margin"});
  for (const auto& spec : data::all_eval_workloads()) {
    eval::SpeedEvalOptions opt;
    opt.prompt_len = 256;
    opt.gen_len = 256;
    opt.ecr = 0.469;
    const auto rf =
        eval::run_speed_eval(eval::EngineKind::Fiddler, cfg, platform, spec, opt);
    const auto rd =
        eval::run_speed_eval(eval::EngineKind::Daop, cfg, platform, spec, opt);
    t.add_row({spec.name, fmt_f(rf.tokens_per_s, 2), fmt_f(rd.tokens_per_s, 2),
               "+" + fmt_pct(rd.tokens_per_s / rf.tokens_per_s - 1.0)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "shape: Fiddler is workload-insensitive (static placement ~= chance\n"
      "everywhere), while DAOP's margin tracks prefill->decode\n"
      "transferability: widest on stable TriviaQA, narrowest where decode\n"
      "departs from prefill most (C4's large phase shift; GSM8K's §VI-B\n"
      "drift erodes it late in the sequence).\n");
  return 0;
}
