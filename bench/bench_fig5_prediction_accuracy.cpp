// Reproduces paper Fig. 5: layer-wise expert prediction accuracy for
// Mixtral 8x7B, one layer ahead, during decode, averaged over Alpaca, MATH
// and C4. Paper: low in the first few layers, stable afterwards, overall
// average 84.11%; DAOP therefore starts predicting at block >= 4.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_generator.hpp"
#include "eval/similarity.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const int n_seqs = 128;

  const std::vector<data::WorkloadSpec> specs = {data::alpaca(),
                                                 data::math_ds(), data::c4()};

  std::vector<std::vector<double>> per_spec;
  for (const auto& spec : specs) {
    const data::TraceGenerator gen(spec, cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, 2024);
    per_spec.push_back(eval::prediction_accuracy_by_layer(gen, n_seqs));
  }

  std::printf(
      "Fig. 5 — layer-wise expert prediction accuracy (%%), one layer ahead,\n"
      "decode phase, Mixtral 8x7B (paper avg across datasets: 84.11%%)\n\n");

  TextTable t({"layer", "Alpaca", "MATH", "C4", "mean"});
  double grand = 0.0;
  int grand_n = 0;
  for (int l = 1; l < cfg.n_layers; ++l) {
    double mean = 0.0;
    std::vector<std::string> row = {std::to_string(l)};
    for (const auto& acc : per_spec) {
      const double v = acc[static_cast<std::size_t>(l)] * 100.0;
      row.push_back(fmt_f(v, 1));
      mean += v;
    }
    mean /= static_cast<double>(per_spec.size());
    row.push_back(fmt_f(mean, 1));
    if (l % 2 == 1 || l < 6) t.add_row(row);
    grand += mean;
    ++grand_n;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("average over layers 1..%d: %.2f%% (paper: 84.11%%)\n",
              cfg.n_layers - 1, grand / grand_n);

  // Bar chart of the mean curve (the figure's visual shape).
  std::vector<std::string> labels;
  std::vector<double> values;
  for (int l = 1; l < cfg.n_layers; l += 2) {
    labels.push_back("L" + std::to_string(l));
    double mean = 0.0;
    for (const auto& acc : per_spec) mean += acc[static_cast<std::size_t>(l)];
    values.push_back(mean / static_cast<double>(per_spec.size()) * 100.0);
  }
  std::printf("\n%s", render_bar_chart(labels, values, "%").c_str());
  return 0;
}
