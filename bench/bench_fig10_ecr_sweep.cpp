// Reproduces paper Fig. 10: DAOP vs Fiddler inference speed across expert
// cache ratios, input/output length 256.
//
// Paper reference: DAOP consistently above Fiddler, average improvement
// 35.4%; at ECR 25% DAOP reaches 3.23 tok/s (Mixtral) / 5.03 tok/s (Phi).
#include <cstdio>

#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  const std::vector<double> ecrs = {0.25, 0.375, 0.469, 0.625, 0.75};

  std::printf(
      "Fig. 10 — DAOP vs Fiddler across expert cache ratios, in/out 256\n"
      "(paper: average improvement 35.4%%)\n\n");

  double improvement_sum = 0.0;
  int improvement_n = 0;
  for (const model::ModelConfig& cfg :
       {model::mixtral_8x7b(), model::phi35_moe()}) {
    std::printf("== %s ==\n", cfg.name.c_str());
    TextTable t({"ECR", "Fiddler (tok/s)", "DAOP (tok/s)", "improvement"});
    for (double ecr : ecrs) {
      eval::SpeedEvalOptions opt;
      opt.prompt_len = 256;
      opt.gen_len = 256;
      opt.ecr = ecr;
      // Per-sequence rates give dispersion across inputs (error bars).
      auto rates_of = [&](eval::EngineKind kind) {
        std::vector<double> rates;
        for (const auto& r : eval::run_speed_eval_per_sequence(
                 kind, cfg, platform, data::c4(), opt)) {
          rates.push_back(r.tokens_per_s);
        }
        return summarize(rates);
      };
      const Summary sf = rates_of(eval::EngineKind::Fiddler);
      const Summary sd = rates_of(eval::EngineKind::Daop);
      const double imp = sd.mean / sf.mean - 1.0;
      improvement_sum += imp;
      ++improvement_n;
      t.add_row({fmt_pct(ecr),
                 fmt_f(sf.mean, 2) + " +-" + fmt_f(sf.ci95, 2),
                 fmt_f(sd.mean, 2) + " +-" + fmt_f(sd.ci95, 2),
                 "+" + fmt_pct(imp)});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf("average DAOP-over-Fiddler improvement: +%s (paper: +35.4%%)\n",
              fmt_pct(improvement_sum / improvement_n).c_str());
  return 0;
}
