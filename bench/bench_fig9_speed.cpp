// Reproduces paper Fig. 9: end-to-end inference speed (generated tokens per
// second, prefill included) of DAOP vs baselines on the A6000 + i9 platform,
// with full GPU memory utilization, across input/output length configs.
//
// Paper reference points (Mixtral 8x7B): MoE-OnDemand, DeepSpeed-MII and
// Mixtral-Offloading each < 1 token/s; Fiddler ~3.2; DAOP 4.52 @ [256,512]
// (+40.4% over Fiddler). Phi-3.5 MoE: DAOP 8.21 @ [256,512].
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  struct LenCfg {
    int in, out;
  };
  const std::vector<LenCfg> lens = {{128, 128}, {128, 256}, {256, 256},
                                    {256, 512}};

  struct ModelCase {
    model::ModelConfig cfg;
    double ecr;
  };
  const std::vector<ModelCase> models = {
      {model::mixtral_8x7b(), 0.469},  // paper's full-GPU-memory ECR
      {model::phi35_moe(), 0.469},    // paper states one full-memory ECR
  };

  std::printf(
      "Fig. 9 — inference speed (tokens/s, end-to-end) with full GPU memory\n"
      "utilization, A6000 + i9-10980XE\n\n");

  for (const ModelCase& mc : models) {
    std::printf("== %s (ECR %s) ==\n", mc.cfg.name.c_str(),
                fmt_pct(mc.ecr).c_str());
    std::vector<std::string> header = {"engine"};
    for (const LenCfg& lc : lens) {
      header.push_back("[" + std::to_string(lc.in) + "," +
                       std::to_string(lc.out) + "]");
    }
    TextTable t(header);

    std::vector<double> daop_tps(lens.size(), 0.0);
    std::vector<double> fiddler_tps(lens.size(), 0.0);
    for (eval::EngineKind kind : eval::paper_baseline_engines()) {
      std::vector<std::string> row = {eval::engine_kind_name(kind)};
      for (std::size_t i = 0; i < lens.size(); ++i) {
        eval::SpeedEvalOptions opt;
        opt.prompt_len = lens[i].in;
        opt.gen_len = lens[i].out;
        opt.ecr = mc.ecr;
        const auto r = eval::run_speed_eval(kind, mc.cfg, platform,
                                            data::c4(), opt);
        row.push_back(fmt_f(r.tokens_per_s, 2));
        if (kind == eval::EngineKind::Daop) daop_tps[i] = r.tokens_per_s;
        if (kind == eval::EngineKind::Fiddler) fiddler_tps[i] = r.tokens_per_s;
      }
      t.add_row(row);
    }
    std::printf("%s", t.render().c_str());
    for (std::size_t i = 0; i < lens.size(); ++i) {
      std::printf("  [%d,%d]: DAOP over Fiddler: +%s\n", lens[i].in,
                  lens[i].out,
                  fmt_pct(daop_tps[i] / fiddler_tps[i] - 1.0).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: caching/prefetch baselines < 1 tok/s on Mixtral; DAOP\n"
      "beats Fiddler by ~40%% at [256,512] and Phi rates ~2x Mixtral rates.\n");
  return 0;
}
