// Micro-bench: Timeline::schedule hot-path cost across the tag/recording/
// fault matrix. The simulator's inner loop is schedule() calls, so the
// refactor's contract — zero string work when interval recording is off,
// one interning per distinct tag when it is on — is measured here directly:
//
//   - Untagged               recording off, no tag (the decode hot path)
//   - TaggedRecordOff        recording off, string_view tag: must cost the
//                            same as Untagged (the tag is never touched)
//   - TaggedRecordOn         recording on, string_view tag: binary-search
//                            intern per call + SoA push_back
//   - PreInternedRecordOn    recording on, TagId from intern_tag(): the
//                            fast path for tight tagged loops
//   - FaultModel variants    hazard perturbation attached, with recording
//                            off and on
//   - TimeSeries variants    the obs::TimeSeriesRecorder hook cost around a
//                            scheduler-loop-shaped tick: disabled recorders
//                            must be structural no-ops (asserted, not just
//                            measured), enabled ones pay only per-tick
//                            registry work
//
// Run: ./build/bench/bench_micro_timeline [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "common/check.hpp"
#include "obs/timeseries.hpp"
#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace {
using namespace daop;

constexpr int kOpsPerIter = 1000;

// Alternates GPU / CPU ops like a decode step: a dependent chain on the GPU
// stream plus an independent CPU-pool op per link.
template <typename Tag>
void run_schedule_loop(sim::Timeline& tl, Tag gpu_tag, Tag cpu_tag) {
  double ready = 0.0;
  for (int i = 0; i < kOpsPerIter / 2; ++i) {
    ready = tl.schedule(sim::Res::GpuStream, ready, 1e-3, gpu_tag);
    tl.schedule(sim::Res::CpuPool, ready, 2e-3, cpu_tag);
  }
  benchmark::DoNotOptimize(tl.span());
}

void BM_ScheduleUntagged(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    run_schedule_loop(tl, std::string_view{}, std::string_view{});
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleUntagged);

void BM_ScheduleTaggedRecordOff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;  // recording defaults to off: tags must be free
    run_schedule_loop(tl, std::string_view("attn fwd"),
                      std::string_view("expert cpu"));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleTaggedRecordOff);

void BM_ScheduleTaggedRecordOn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    tl.set_record_intervals(true);
    run_schedule_loop(tl, std::string_view("attn fwd"),
                      std::string_view("expert cpu"));
    benchmark::DoNotOptimize(tl.interval_count());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleTaggedRecordOn);

void BM_SchedulePreInternedRecordOn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    tl.set_record_intervals(true);
    const sim::TagId gpu = tl.intern_tag("attn fwd");
    const sim::TagId cpu = tl.intern_tag("expert cpu");
    run_schedule_loop(tl, gpu, cpu);
    benchmark::DoNotOptimize(tl.interval_count());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_SchedulePreInternedRecordOn);

void BM_ScheduleFaultModel(benchmark::State& state) {
  const sim::HazardScenario scenario = sim::make_hazard_scenario("all", 1.0);
  for (auto _ : state) {
    sim::FaultModel fm(scenario, 42);
    sim::Timeline tl;
    tl.set_fault_model(&fm);
    run_schedule_loop(tl, std::string_view{}, std::string_view{});
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleFaultModel);

void BM_ScheduleFaultModelRecordOn(benchmark::State& state) {
  const sim::HazardScenario scenario = sim::make_hazard_scenario("all", 1.0);
  for (auto _ : state) {
    sim::FaultModel fm(scenario, 42);
    sim::Timeline tl;
    tl.set_fault_model(&fm);
    tl.set_record_intervals(true);
    run_schedule_loop(tl, std::string_view("attn fwd"),
                      std::string_view("expert cpu"));
    benchmark::DoNotOptimize(tl.interval_count());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleFaultModelRecordOn);

// ---------------------------------------------------------------------------
// obs::TimeSeriesRecorder hook cost. The harness hot loops consult the
// recorder once per scheduling decision, so the hook pattern benchmarked
// here is one advance() plus a small burst of count/gauge/observe calls —
// the shape of ClusterRouter::ts_tick.

// Drives one scheduler-loop-shaped pass: schedule work on the timeline,
// tick the recorder with the decision time as the CB/cluster hooks do.
void run_recorder_loop(sim::Timeline& tl, obs::TimeSeriesRecorder& rec) {
  double ready = 0.0;
  for (int i = 0; i < kOpsPerIter / 2; ++i) {
    ready = tl.schedule(sim::Res::GpuStream, ready, 1e-3, std::string_view{});
    tl.schedule(sim::Res::CpuPool, ready, 2e-3, std::string_view{});
    rec.advance(0, ready);
    rec.count(0, "daop_serving_requests_total", "h");
    rec.gauge_set(0, "daop_queue_depth", "h", static_cast<double>(i & 7));
    rec.observe(0, "daop_serving_ttft_seconds", "h", ready);
  }
  benchmark::DoNotOptimize(tl.span());
}

void BM_TimeSeriesRecorderOff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    obs::TimeSeriesRecorder rec(obs::TimeSeriesOptions{}, {});  // disabled
    run_recorder_loop(tl, rec);
    rec.finalize(tl.span());
    // Perf-gate guard, not just a timing: a disabled recorder must do ZERO
    // structural work. No channels, no windows, no series families, and no
    // effect on the timeline's interval recording.
    DAOP_CHECK_EQ(rec.n_channels(), 0);
    DAOP_CHECK_EQ(rec.n_windows(), 0);
    DAOP_CHECK(rec.aggregate().empty());
    DAOP_CHECK_EQ(tl.interval_count(), 0);
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_TimeSeriesRecorderOff);

void BM_TimeSeriesRecorderOn(benchmark::State& state) {
  obs::TimeSeriesOptions opt;
  opt.window_s = 0.05;  // many window seals across the ~1.5 s simulated span
  for (auto _ : state) {
    sim::Timeline tl;
    obs::TimeSeriesRecorder rec(opt, {"node0"});
    run_recorder_loop(tl, rec);
    rec.finalize(tl.span());
    DAOP_CHECK_GE(rec.n_windows(), 2);
    benchmark::DoNotOptimize(rec.n_windows());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_TimeSeriesRecorderOn);

}  // namespace

BENCHMARK_MAIN();
