// Micro-bench: Timeline::schedule hot-path cost across the tag/recording/
// fault matrix. The simulator's inner loop is schedule() calls, so the
// refactor's contract — zero string work when interval recording is off,
// one interning per distinct tag when it is on — is measured here directly:
//
//   - Untagged               recording off, no tag (the decode hot path)
//   - TaggedRecordOff        recording off, string_view tag: must cost the
//                            same as Untagged (the tag is never touched)
//   - TaggedRecordOn         recording on, string_view tag: binary-search
//                            intern per call + SoA push_back
//   - PreInternedRecordOn    recording on, TagId from intern_tag(): the
//                            fast path for tight tagged loops
//   - FaultModel variants    hazard perturbation attached, with recording
//                            off and on
//
// Run: ./build/bench/bench_micro_timeline [--benchmark_filter=...]
#include <benchmark/benchmark.h>

#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace {
using namespace daop;

constexpr int kOpsPerIter = 1000;

// Alternates GPU / CPU ops like a decode step: a dependent chain on the GPU
// stream plus an independent CPU-pool op per link.
template <typename Tag>
void run_schedule_loop(sim::Timeline& tl, Tag gpu_tag, Tag cpu_tag) {
  double ready = 0.0;
  for (int i = 0; i < kOpsPerIter / 2; ++i) {
    ready = tl.schedule(sim::Res::GpuStream, ready, 1e-3, gpu_tag);
    tl.schedule(sim::Res::CpuPool, ready, 2e-3, cpu_tag);
  }
  benchmark::DoNotOptimize(tl.span());
}

void BM_ScheduleUntagged(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    run_schedule_loop(tl, std::string_view{}, std::string_view{});
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleUntagged);

void BM_ScheduleTaggedRecordOff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;  // recording defaults to off: tags must be free
    run_schedule_loop(tl, std::string_view("attn fwd"),
                      std::string_view("expert cpu"));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleTaggedRecordOff);

void BM_ScheduleTaggedRecordOn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    tl.set_record_intervals(true);
    run_schedule_loop(tl, std::string_view("attn fwd"),
                      std::string_view("expert cpu"));
    benchmark::DoNotOptimize(tl.interval_count());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleTaggedRecordOn);

void BM_SchedulePreInternedRecordOn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    tl.set_record_intervals(true);
    const sim::TagId gpu = tl.intern_tag("attn fwd");
    const sim::TagId cpu = tl.intern_tag("expert cpu");
    run_schedule_loop(tl, gpu, cpu);
    benchmark::DoNotOptimize(tl.interval_count());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_SchedulePreInternedRecordOn);

void BM_ScheduleFaultModel(benchmark::State& state) {
  const sim::HazardScenario scenario = sim::make_hazard_scenario("all", 1.0);
  for (auto _ : state) {
    sim::FaultModel fm(scenario, 42);
    sim::Timeline tl;
    tl.set_fault_model(&fm);
    run_schedule_loop(tl, std::string_view{}, std::string_view{});
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleFaultModel);

void BM_ScheduleFaultModelRecordOn(benchmark::State& state) {
  const sim::HazardScenario scenario = sim::make_hazard_scenario("all", 1.0);
  for (auto _ : state) {
    sim::FaultModel fm(scenario, 42);
    sim::Timeline tl;
    tl.set_fault_model(&fm);
    tl.set_record_intervals(true);
    run_schedule_loop(tl, std::string_view("attn fwd"),
                      std::string_view("expert cpu"));
    benchmark::DoNotOptimize(tl.interval_count());
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIter);
}
BENCHMARK(BM_ScheduleFaultModelRecordOn);

}  // namespace

BENCHMARK_MAIN();
