// Reproduces paper Fig. 4: layer-wise expert activation pattern of
// Mixtral 8x7B on C4 — activation probability is near-uniform (~1/8 per
// expert) at every layer when aggregated across the dataset, even though
// individual sequences are strongly skewed (observation ①).
#include <algorithm>
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_generator.hpp"
#include "eval/similarity.hpp"
#include "model/config.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const int n_seqs = 512;
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 99);

  const auto marg = eval::marginal_activation(gen, n_seqs);

  std::printf(
      "Fig. 4 — layer-wise expert activation pattern, Mixtral 8x7B on C4\n"
      "(dataset-aggregate probabilities; uniform would be %.4f)\n\n",
      1.0 / cfg.n_experts);

  std::vector<std::string> header = {"layer"};
  for (int e = 0; e < cfg.n_experts; ++e) header.push_back("E" + std::to_string(e));
  header.push_back("max/min");
  TextTable t(header);
  for (int l = 0; l < cfg.n_layers; l += 4) {
    std::vector<std::string> row = {std::to_string(l)};
    const auto& probs = marg[static_cast<std::size_t>(l)];
    const double mx = *std::max_element(probs.begin(), probs.end());
    const double mn = *std::min_element(probs.begin(), probs.end());
    for (double p : probs) row.push_back(fmt_f(p, 4));
    row.push_back(fmt_f(mx / mn, 2));
    t.add_row(row);
  }
  std::printf("%s\n", t.render().c_str());

  // Contrast: per-sequence skew. The same dataset, one sequence at a time.
  double seq_maxmin = 0.0;
  const int sample = 32;
  for (int s = 0; s < sample; ++s) {
    const auto counts = gen.generate(s).activation_counts(data::Phase::Decode);
    double ratio = 0.0;
    for (const auto& layer : counts) {
      const double mx = *std::max_element(layer.begin(), layer.end());
      const double mn =
          std::max(1.0, *std::min_element(layer.begin(), layer.end()));
      ratio += mx / mn;
    }
    seq_maxmin += ratio / static_cast<double>(counts.size());
  }
  std::printf(
      "observation ①: dataset-level activation is near-uniform, but within a\n"
      "single sequence the avg layer max/min activation ratio is %.1fx\n"
      "(%d-sequence sample) — dominant experts vary with the input.\n",
      seq_maxmin / sample, sample);
  return 0;
}
