// Reproduces paper Table I: execution times (ms) for transformer-block
// operations and expert migration in Mixtral 8x7B, measured by the authors
// on an A100 GPU + Xeon Gold 6326 CPU over PCIe 4.0 (64 GB/s), decode stage,
// input/output length 256.
//
// Paper reference row:
//   block on CPU = 8.02   block on GPU = 1.24
//   expert migration (CPU->GPU) = 39.87   activation transition = 0.02
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "model/op_costs.hpp"
#include "sim/device.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const sim::CostModel cm(sim::a100_xeon_platform());
  const model::OpCosts costs(cfg, cm);

  const int ctx = 256;  // decode stage with input/output length 256
  const double cpu_block_ms = costs.full_block_cpu(ctx) * 1e3;
  const double gpu_block_ms = costs.full_block_gpu(ctx) * 1e3;
  const double migration_ms = costs.expert_migration() * 1e3;
  const double act_ms =
      0.5 * (costs.activations_h2d(1) + costs.activations_d2h(1)) * 1e3;

  std::printf("Table I — execution times (ms) for transformer-block ops and\n");
  std::printf("expert migration, Mixtral 8x7B, decode @ len 256, A100 + Xeon\n\n");

  TextTable t({"operation", "paper (ms)", "simulated (ms)", "ratio"});
  auto row = [&](const char* op, double paper, double sim_v) {
    t.add_row({op, fmt_f(paper, 2), fmt_f(sim_v, 2), fmt_f(sim_v / paper, 2)});
  };
  row("transformer block on CPU", 8.02, cpu_block_ms);
  row("transformer block on GPU", 1.24, gpu_block_ms);
  row("expert migration CPU->GPU", 39.87, migration_ms);
  row("expert activation transition", 0.02, act_ms);
  std::printf("%s\n", t.render().c_str());

  std::printf("derived: migration / GPU block = %.1fx (paper: ~32x)\n",
              migration_ms / gpu_block_ms);
  std::printf("expert weights: %s fp16; hidden state: %s\n",
              fmt_bytes(cfg.expert_bytes()).c_str(),
              fmt_bytes(cfg.hidden_state_bytes()).c_str());
  return 0;
}
