// Google-benchmark microbenchmarks of the library's own hot paths: tensor
// kernels used by the functional plane and the timeline scheduler used by
// the performance plane. These measure THIS library (not the paper's
// hardware) and guard against performance regressions.
#include <benchmark/benchmark.h>

#include "cache/placement.hpp"
#include "common/rng.hpp"
#include "data/trace_generator.hpp"
#include "eval/accuracy.hpp"
#include "model/functional_model.hpp"
#include "sim/timeline.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace daop;

void BM_Matvec(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  const Tensor w = Tensor::randn(n, n, rng, 0.02F);
  std::vector<float> x(static_cast<std::size_t>(n), 1.0F);
  std::vector<float> y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    matvec(w, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Matvec)->Arg(64)->Arg(256)->Arg(1024);

void BM_Softmax(benchmark::State& state) {
  std::vector<float> x(static_cast<std::size_t>(state.range(0)));
  Rng rng(2);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    std::vector<float> y = x;
    softmax_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(8)->Arg(4096);

void BM_ExpertForward(benchmark::State& state) {
  const model::ModelConfig cfg = model::tiny_mixtral();
  const model::FunctionalModel fm(cfg, 7);
  std::vector<float> h(static_cast<std::size_t>(cfg.d_model), 0.1F);
  std::vector<float> out(static_cast<std::size_t>(cfg.d_model));
  for (auto _ : state) {
    fm.expert_forward(0, 0, h, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ExpertForward);

void BM_TimelineSchedule(benchmark::State& state) {
  for (auto _ : state) {
    sim::Timeline tl;
    double ready = 0.0;
    for (int i = 0; i < 1000; ++i) {
      ready = tl.schedule(sim::Res::GpuStream, ready, 1e-3);
      tl.schedule(sim::Res::CpuPool, ready, 2e-3);
    }
    benchmark::DoNotOptimize(tl.span());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_TimelineSchedule);

void BM_TraceGeneration(benchmark::State& state) {
  const model::ModelConfig cfg = model::mixtral_8x7b();
  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 5);
  int s = 0;
  for (auto _ : state) {
    const auto tr = gen.generate(s++, 64, 64);
    benchmark::DoNotOptimize(tr.decode.size());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_Rouge2(benchmark::State& state) {
  Rng rng(3);
  std::vector<int> a(64);
  std::vector<int> b(64);
  for (auto& v : a) v = rng.uniform_int(0, 50);
  for (auto& v : b) v = rng.uniform_int(0, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daop::eval::rouge_n(a, b, 2));
  }
}

BENCHMARK(BM_Rouge2);

}  // namespace

BENCHMARK_MAIN();
