// Extension bench: EdgeMoE-style quantized CPU expert execution inside
// DAOP (DaopConfig::cpu_quant_bits). The CPU path is memory-bound, so
// quantization buys decode speed; this bench quantifies the speed/fidelity
// trade-off across bit-widths on both planes.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/accuracy.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"
#include "tensor/quant.hpp"

int main() {
  using namespace daop;

  const std::vector<int> bit_options = {0, 8, 6, 4, 3};

  std::printf(
      "DAOP + quantized CPU experts (extension) — speed on simulated\n"
      "Mixtral/A6000 @ECR 46.9%%, fidelity on the functional tiny model\n"
      "@ECR 37.5%% (teacher-forced agreement with the official model)\n\n");

  // Functional fidelity.
  const model::FunctionalModel fm(model::tiny_mixtral(), 0xDA0Full);
  const auto calib = eval::calibrate_functional_counts(
      fm, data::sharegpt_calibration(), 8, 24, 24, 0x5eedULL);

  TextTable t({"CPU weights", "tokens/s (sim)", "vs fp16 CPU", "agreement (%)",
               "quantized execs"});
  double fp_tps = 0.0;
  for (int bits : bit_options) {
    core::DaopConfig dc;
    dc.cpu_quant_bits = bits;

    eval::SpeedEvalOptions sopt;
    sopt.prompt_len = 256;
    sopt.gen_len = 256;
    sopt.ecr = 0.469;
    sopt.daop_config = dc;
    const auto sr = eval::run_speed_eval(eval::EngineKind::Daop,
                                         model::mixtral_8x7b(),
                                         sim::a6000_i9_platform(),
                                         data::c4(), sopt);
    if (bits == 0) fp_tps = sr.tokens_per_s;

    eval::AccuracyEvalOptions aopt;
    aopt.n_episodes = 16;
    aopt.prompt_len = 24;
    aopt.gen_len = 32;
    aopt.calib_counts = &calib;
    const auto ar =
        eval::evaluate_daop_accuracy(fm, data::c4(), dc, 0.375, aopt);

    t.add_row({bits == 0 ? "fp (off)" : ("int" + std::to_string(bits)),
               fmt_f(sr.tokens_per_s, 2),
               "+" + fmt_pct(sr.tokens_per_s / fp_tps - 1.0),
               fmt_f(ar.token_agreement * 100.0, 2),
               std::to_string(ar.stats.quantized_execs)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "shape: int8/int6 are nearly free fidelity-wise and buy a solid\n"
      "decode speedup; below int4 the fidelity cost becomes visible —\n"
      "matching EdgeMoE's expert-wise bit-width adaptation argument.\n");
  return 0;
}
