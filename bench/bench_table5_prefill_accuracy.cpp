// Reproduces paper Table V: impact of DAOP on accuracy for downstream tasks
// that depend on the PREFILL stage (first generated token), ECR 25%.
//
// Paper reference: DAOP matches the official model within eval noise on all
// six tasks (e.g. Mixtral MMLU 70.60 -> 70.47). Mechanically this is
// because §IV-B allocation only RELOCATES experts during prefill — the math
// is unchanged — and the first token is produced before any decode-phase
// approximation. Our proxy therefore reports first-token agreement with the
// exact official model, which should be ~100%.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/accuracy.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  // Six prefill-scored task stand-ins (commonsense/aggregate suites).
  const std::vector<data::WorkloadSpec> tasks = {
      data::c4(),  data::alpaca(),     data::triviaqa(),
      data::bbh(), data::truthfulqa(), data::math_ds()};

  std::printf(
      "Table V — prefill-dependent task accuracy proxy, ECR 25%%\n"
      "(first-token agreement of DAOP vs the exact official model, %%)\n\n");

  for (const model::ModelConfig& cfg :
       {model::tiny_mixtral(), model::tiny_phi()}) {
    const model::FunctionalModel fm(cfg, 0xDA0Full);
    std::printf("== %s ==\n", cfg.name.c_str());
    TextTable t({"task", "official (%)", "DAOP @ECR 25% (%)"});
    for (const auto& task : tasks) {
      eval::AccuracyEvalOptions opt;
      opt.n_episodes = 32;
      opt.prompt_len = 24;
      opt.gen_len = 1;  // the first output token decides these tasks
      const auto m =
          eval::evaluate_daop_accuracy(fm, task, core::DaopConfig{}, 0.25, opt);
      t.add_row({task.name, "100.00", fmt_f(m.exact_match * 100.0, 2)});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf(
      "paper shape: 'ours' indistinguishable from 'official' on\n"
      "prefill-dependent tasks at ECR 25%%.\n");
  return 0;
}
