// Extension bench: decode-phase re-allocation (the fix the paper's §VI-B
// limitation discussion implies as future work). GSM8K-style workloads
// drift within a sequence, so the cache frozen at prefill decays; re-running
// Algorithm 1 every N decode tokens over a trailing window lets the cache
// follow. This bench quantifies the effect on the drift-heavy workload and
// on a stable control (TriviaQA), on both planes.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/accuracy.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const std::vector<int> intervals = {0, 32, 16, 8};

  std::printf(
      "DAOP decode re-allocation (extension) — frozen cache vs re-running\n"
      "Algorithm 1 every N decode tokens\n\n");

  // Functional plane: exact-execution fraction + fidelity.
  const model::FunctionalModel fm(model::tiny_mixtral(), 0xDA0Full);
  const auto calib = eval::calibrate_functional_counts(
      fm, data::sharegpt_calibration(), 8, 24, 24, 0x5eedULL);

  for (const auto& task : {data::gsm8k(), data::triviaqa()}) {
    std::printf("== %s @ECR 37.5%% (functional, tiny model) ==\n",
                task.name.c_str());
    TextTable t({"realloc interval", "exact-exec (%)", "agreement (%)",
                 "decode swaps"});
    for (int n : intervals) {
      core::DaopConfig dc;
      dc.decode_realloc_interval = n;
      eval::AccuracyEvalOptions opt;
      opt.n_episodes = 16;
      opt.prompt_len = 24;
      opt.gen_len = 48;
      opt.calib_counts = &calib;
      const auto m = eval::evaluate_daop_accuracy(fm, task, dc, 0.375, opt);
      const double exact_frac = static_cast<double>(m.stats.exact_execs) /
                                static_cast<double>(m.stats.decode_expert_uses);
      t.add_row({n == 0 ? "frozen (paper)" : ("every " + std::to_string(n)),
                 fmt_f(exact_frac * 100.0, 1),
                 fmt_f(m.token_agreement * 100.0, 2),
                 std::to_string(m.stats.decode_swaps)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // Performance plane: does following the drift pay for the migrations?
  std::printf("== Mixtral 8x7B @ECR 46.9%% (simulated A6000+i9, in/out 256) ==\n");
  TextTable t({"workload", "realloc interval", "tokens/s", "decode swaps"});
  for (const auto& workload : {data::gsm8k(), data::triviaqa()}) {
    for (int n : intervals) {
      core::DaopConfig dc;
      dc.decode_realloc_interval = n;
      eval::SpeedEvalOptions opt;
      opt.prompt_len = 256;
      opt.gen_len = 256;
      opt.ecr = 0.469;
      opt.daop_config = dc;
      const auto r = eval::run_speed_eval(eval::EngineKind::Daop,
                                          model::mixtral_8x7b(),
                                          sim::a6000_i9_platform(), workload,
                                          opt);
      t.add_row({workload.name,
                 n == 0 ? "frozen (paper)" : ("every " + std::to_string(n)),
                 fmt_f(r.tokens_per_s, 2),
                 std::to_string(r.counters.decode_swaps)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "shape: re-allocation recovers exact executions — about twice the\n"
      "gain on the drift-heavy GSM8K as on stable TriviaQA — improving\n"
      "fidelity where the paper's §VI-B limitation bites. In the speed\n"
      "plane every decode swap costs a ~40 ms migration, which mean-\n"
      "reverting drift does not amortize: re-allocation is a fidelity\n"
      "knob for drifting workloads, not a throughput knob.\n");
  return 0;
}
