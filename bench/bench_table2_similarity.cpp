// Reproduces paper Table II: average cosine similarity (Eq. 1) between
// prefill- and decode-phase expert activation matrices of Mixtral 8x7B,
// 512 sequences per dataset.
//
// Paper reference: C4 90.05, MATH 90.37, GSM8K 91.74, average 90.72 (%).
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_generator.hpp"
#include "eval/similarity.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const int n_seqs = 512;

  struct Row {
    data::WorkloadSpec spec;
    double paper_pct;
  };
  const std::vector<Row> rows = {
      {data::c4(), 90.05}, {data::math_ds(), 90.37}, {data::gsm8k(), 91.74}};

  std::printf(
      "Table II — prefill/decode expert-activation-matrix similarity (%%),\n"
      "Mixtral 8x7B, %d sequences per dataset (Eq. 1)\n\n",
      n_seqs);

  TextTable t({"dataset", "paper (%)", "simulated (%)"});
  double paper_avg = 0.0;
  double sim_avg = 0.0;
  for (const Row& r : rows) {
    const data::TraceGenerator gen(r.spec, cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, 1234);
    const double sim = eval::avg_prefill_decode_similarity(gen, n_seqs) * 100.0;
    t.add_row({r.spec.name, fmt_f(r.paper_pct, 2), fmt_f(sim, 2)});
    paper_avg += r.paper_pct;
    sim_avg += sim;
  }
  t.add_rule();
  t.add_row({"average", fmt_f(paper_avg / rows.size(), 2),
             fmt_f(sim_avg / rows.size(), 2)});
  std::printf("%s\n", t.render().c_str());
  std::printf("(paper's overall average across datasets: 90.72%%)\n");
  return 0;
}
