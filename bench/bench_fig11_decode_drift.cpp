// Reproduces the paper's §VI-B limitation analysis: expert-activation
// variation during decode measured with a 15-token window. The paper
// reports GSM8K's windowed cosine similarity 3.43% LOWER than TriviaQA's,
// explaining why a small frozen expert cache fails on GSM8K (Table VI).
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_generator.hpp"
#include "eval/similarity.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const int n_seqs = 128;
  const int window = 15;  // paper's window size

  std::printf(
      "§VI-B — decode-phase activation drift, %d-token windows, %d seqs\n\n",
      window, n_seqs);

  TextTable t({"dataset", "windowed similarity (%)"});
  double trivia = 0.0;
  double gsm = 0.0;
  for (const auto& spec : {data::triviaqa(), data::c4(), data::math_ds(),
                           data::gsm8k()}) {
    const data::TraceGenerator gen(spec, cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, 31337);
    const double sim =
        eval::avg_decode_window_similarity(gen, n_seqs, window) * 100.0;
    t.add_row({spec.name, fmt_f(sim, 2)});
    if (spec.name == "TriviaQA") trivia = sim;
    if (spec.name == "GSM8K") gsm = sim;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "GSM8K vs TriviaQA: %.2f%% lower windowed similarity "
      "(paper: 3.43%% lower)\n",
      trivia - gsm);
  return 0;
}
