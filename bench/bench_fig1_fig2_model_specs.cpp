// Reproduces paper Fig. 1 (average parameter distribution in Mixtral 8x7B:
// only ~27.4% of parameters are activated per sequence) and Fig. 2 (the
// A6000 evaluation platform's specifications), both derived from the model
// configs and platform presets rather than measured — they document the
// problem setup every other experiment builds on.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "model/config.hpp"
#include "model/op_costs.hpp"
#include "sim/device.hpp"

int main() {
  using namespace daop;

  std::printf("Fig. 1 — parameter distribution per input sequence\n\n");
  TextTable t({"model", "total", "non-MoE", "activated experts",
               "idle experts", "activated fraction"});
  for (const model::ModelConfig& cfg :
       {model::mixtral_8x7b(), model::phi35_moe()}) {
    const double total = static_cast<double>(cfg.total_params());
    const double experts = static_cast<double>(cfg.expert_params_total());
    const double nonmoe = total - experts;
    const double active_experts =
        static_cast<double>(cfg.n_layers) * cfg.top_k * cfg.expert_params();
    t.add_row({cfg.name, fmt_f(total / 1e9, 1) + "B",
               fmt_f(nonmoe / 1e9, 1) + "B",
               fmt_f(active_experts / 1e9, 1) + "B",
               fmt_f((experts - active_experts) / 1e9, 1) + "B",
               fmt_pct((nonmoe + active_experts) / total)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(paper: 27.4%% of Mixtral 8x7B parameters activated per "
              "sequence)\n\n");

  std::printf("Fig. 2 — evaluation platform specifications\n\n");
  const sim::PlatformSpec p = sim::a6000_i9_platform();
  TextTable t2({"component", "spec"});
  t2.add_row({"GPU", p.gpu.name});
  t2.add_row({"GPU memory", fmt_bytes(p.gpu.mem_capacity_bytes)});
  t2.add_row({"GPU memory bandwidth",
              fmt_f(p.gpu.mem_bw_bytes_per_s / 1e9, 0) + " GB/s"});
  t2.add_row({"CPU", p.cpu.name});
  t2.add_row({"host memory", fmt_bytes(p.cpu.mem_capacity_bytes)});
  t2.add_row({"PCIe", p.pcie_h2d.name + ", " +
                          fmt_f(p.pcie_h2d.bw_bytes_per_s / 1e9, 0) + " GB/s"});
  std::printf("%s", t2.render().c_str());

  // The memory-wall arithmetic that motivates the whole paper.
  const model::ModelConfig cfg = model::mixtral_8x7b();
  std::printf(
      "\nmemory wall: %s of fp16 Mixtral expert weights vs %s of GPU\n"
      "memory -> max expert cache ratio %s (the paper's 'full GPU memory\n"
      "utilization' operating point).\n",
      fmt_bytes(cfg.expert_params_total() * cfg.bytes_per_param).c_str(),
      fmt_bytes(p.gpu.mem_capacity_bytes).c_str(),
      fmt_pct(model::max_expert_cache_ratio(cfg, p)).c_str());
  return 0;
}
