// Ablation bench (beyond the paper's tables): isolates the contribution of
// each DAOP design choice called out in DESIGN.md —
//   (a) sequence-specific allocation (§IV-B),
//   (b) predictive pre-calculation (§IV-C),
//   (c) graceful degradation (§IV-C(b)),
//   (d) mispredict policy (GracefulFallback vs RecomputeExact),
//   (e) SwapInOut threshold sweep.
// Reported on Mixtral 8x7B, in/out 256, ECR 46.9%, C4-like workload.
#include <cstdio>

#include "cache/calibration.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/daop_engine.hpp"
#include "data/trace_generator.hpp"
#include "eval/speed.hpp"
#include "model/op_costs.hpp"
#include "model/config.hpp"

namespace {

daop::engines::RunResult run_cfg(const daop::core::DaopConfig& dc) {
  using namespace daop;
  eval::SpeedEvalOptions opt;
  opt.prompt_len = 256;
  opt.gen_len = 256;
  opt.ecr = 0.469;
  opt.daop_config = dc;
  return eval::run_speed_eval(eval::EngineKind::Daop, model::mixtral_8x7b(),
                              sim::a6000_i9_platform(), data::c4(), opt);
}

}  // namespace

int main() {
  using namespace daop;

  std::printf(
      "DAOP ablations — Mixtral 8x7B, in/out 256, ECR 46.9%%, A6000 + i9\n\n");

  TextTable t({"variant", "tokens/s", "CPU execs", "degradations",
               "mispredicts", "swaps"});
  auto add = [&](const char* label, const core::DaopConfig& dc) {
    const auto r = run_cfg(dc);
    t.add_row({label, fmt_f(r.tokens_per_s, 2),
               std::to_string(r.counters.cpu_expert_execs),
               std::to_string(r.counters.degradations),
               std::to_string(r.counters.mispredictions),
               std::to_string(r.counters.prefill_swaps)});
    return r.tokens_per_s;
  };

  core::DaopConfig full;
  const double full_tps = add("DAOP (full)", full);

  core::DaopConfig no_alloc = full;
  no_alloc.enable_seq_allocation = false;
  add("- seq allocation", no_alloc);

  core::DaopConfig no_precalc = full;
  no_precalc.enable_precalc = false;
  add("- pre-calculation", no_precalc);

  core::DaopConfig no_degrade = full;
  no_degrade.enable_degradation = false;
  add("- graceful degradation", no_degrade);

  core::DaopConfig fallback = full;
  fallback.mispredict_policy = core::MispredictPolicy::GracefulFallback;
  add("mispredict: GPU fallback (fast, approx.)", fallback);

  core::DaopConfig none = full;
  none.enable_seq_allocation = false;
  none.enable_precalc = false;
  none.enable_degradation = false;
  const double base_tps = add("all mechanisms off", none);

  t.add_rule();
  t.add_row({"full vs all-off", "+" + fmt_pct(full_tps / base_tps - 1.0), "",
             "", "", ""});
  std::printf("%s\n", t.render().c_str());

  std::printf("SwapInOut threshold sweep (full DAOP):\n");
  TextTable t2({"SwapInOut", "tokens/s", "swaps"});
  for (double thr : {1.0, 1.05, 1.25, 1.5, 2.0, 4.0}) {
    core::DaopConfig dc;
    dc.swap_in_out = thr;
    const auto r = run_cfg(dc);
    t2.add_row({fmt_f(thr, 2), fmt_f(r.tokens_per_s, 2),
                std::to_string(r.counters.prefill_swaps)});
  }
  std::printf("%s\n", t2.render().c_str());

  std::printf(
      "Adaptive top-1 skipping sweep (AdapMoE-style extension; fidelity\n"
      "cost measured in bench_ext_quantization-style runs):\n");
  TextTable t3({"skip margin", "tokens/s", "experts skipped"});
  for (double margin : {0.0, 0.9, 0.8, 0.7, 0.6}) {
    core::DaopConfig dc;
    dc.skip_top1_margin = margin;
    const auto r = run_cfg(dc);
    t3.add_row({margin == 0.0 ? "off" : fmt_f(margin, 2),
                fmt_f(r.tokens_per_s, 2),
                std::to_string(r.counters.skipped_experts)});
  }
  std::printf("%s\n", t3.render().c_str());

  std::printf(
      "Initial-placement policy (§IV-A ablation): per-layer standardized\n"
      "cache (paper) vs global-greedy slot assignment:\n");
  {
    const model::ModelConfig cfg = model::mixtral_8x7b();
    const sim::CostModel cm(sim::a6000_i9_platform());
    const model::OpCosts costs(cfg, cm);
    const data::TraceGenerator calib_gen(data::sharegpt_calibration(),
                                         cfg.n_layers, cfg.n_experts,
                                         cfg.top_k, 7 ^ 0xCA11Bu);
    const auto calib = cache::calibrate_activation_counts(calib_gen, 32);
    const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                   cfg.top_k, 7);
    TextTable t4({"init policy", "tokens/s"});
    for (bool greedy : {false, true}) {
      const cache::Placement placement =
          greedy ? cache::init_placement_global_greedy(
                       cfg.n_layers, cfg.n_experts, 0.469, calib)
                 : cache::init_placement_calibrated(cfg.n_layers,
                                                    cfg.n_experts, 0.469,
                                                    calib);
      auto engine = core::make_daop(costs);
      std::vector<engines::RunResult> results;
      for (int s = 0; s < 4; ++s) {
        results.push_back(engine->run(gen.generate(s, 256, 256), placement));
      }
      const auto agg = engines::aggregate_results(engine->name(), results);
      t4.add_row({greedy ? "global greedy" : "standardized (paper)",
                  fmt_f(agg.tokens_per_s, 2)});
    }
    std::printf("%s", t4.render().c_str());
  }
  return 0;
}
