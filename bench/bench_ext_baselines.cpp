// Extension bench (beyond the paper's Fig. 9 set): compares DAOP against
// ALL the related-work systems the paper discusses in §II-B, including the
// ones it excluded from its own evaluation — Pre-gated MoE (excluded for
// needing fine-tuning at this scale), EdgeMoE (quantized predictive
// preloading) and MoE-Infinity (activation-aware prefetching). All run on
// identical traces, placement and cost model.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"

int main(int argc, char** argv) {
  using namespace daop;
  const FlagParser flags(argc, argv);

  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  const model::ModelConfig cfg = model::mixtral_8x7b();

  std::printf(
      "Extended baseline comparison — %s, in/out 256, ECR 46.9%%, A6000+i9\n"
      "(paper Fig. 9 engines + the §II-B related work it discusses)\n\n",
      cfg.name.c_str());

  eval::SpeedEvalOptions opt;
  opt.prompt_len = 256;
  opt.gen_len = 256;
  opt.ecr = 0.469;
  obs::MetricsRegistry reg;
  opt.metrics = &reg;

  TextTable t({"engine", "tokens/s", "tokens/kJ", "migrations", "CPU execs",
               "prefetch hits"});
  for (eval::EngineKind kind : eval::extended_baseline_engines()) {
    const auto r = eval::run_speed_eval(kind, cfg, platform, data::c4(), opt);
    t.add_row({eval::engine_kind_name(kind), fmt_f(r.tokens_per_s, 2),
               fmt_f(r.tokens_per_kj, 2),
               std::to_string(r.counters.expert_migrations),
               std::to_string(r.counters.cpu_expert_execs),
               std::to_string(r.counters.prefetch_hits)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "takeaway: every weight-fetching strategy — however clever its\n"
      "prefetcher or quantizer — stays migration-bound (Table I: 40 ms per\n"
      "expert vs ~1 ms per block). Only the CPU-executing engines (Fiddler,\n"
      "DAOP) escape, and DAOP's prediction + allocation add ~40%% on top.\n");
  return benchutil::write_metrics_snapshot(flags, reg);
}
