// Extension bench: interactive serving under load. The paper reports
// single-stream throughput; a chatbot operator cares about latency at a
// given request rate. This bench sweeps the Poisson arrival rate and shows
// where each engine saturates (queue blow-up) on the A6000 + i9 platform.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/serving.hpp"
#include "model/config.hpp"

int main(int argc, char** argv) {
  using namespace daop;
  const FlagParser flags(argc, argv);
  obs::MetricsRegistry reg;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  const std::vector<double> rates = {0.005, 0.01, 0.02, 0.04};

  std::printf(
      "Serving under load (extension) — %s, ECR 46.9%%, FCFS queue,\n"
      "Poisson arrivals, ShareGPT-like request mix (%d requests/point)\n\n",
      cfg.name.c_str(), 24);

  TextTable t({"engine", "rate (req/s)", "TTFT mean (s)", "latency mean (s)",
               "queue wait (s)", "busy"});
  for (auto kind : {eval::EngineKind::MixtralOffloading,
                    eval::EngineKind::Fiddler, eval::EngineKind::Daop}) {
    for (double rate : rates) {
      eval::ServingOptions opt;
      opt.arrival_rate_rps = rate;
      opt.n_requests = 24;
      opt.ecr = 0.469;
      opt.metrics = &reg;
      const auto r = eval::run_serving_eval(kind, cfg, platform,
                                            data::sharegpt_calibration(), opt);
      t.add_row({r.engine, fmt_f(rate, 3), fmt_f(r.ttft_s.mean, 1),
                 fmt_f(r.latency_s.mean, 1), fmt_f(r.queue_wait_s.mean, 1),
                 fmt_pct(r.busy_fraction)});
    }
    t.add_rule();
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "shape: the migration-bound engine saturates almost immediately\n"
      "(queue wait explodes); Fiddler sustains moderate load; DAOP's ~40%%\n"
      "higher single-stream rate translates into a ~40%% higher sustainable\n"
      "request rate at equal latency.\n");
  return benchutil::write_metrics_snapshot(flags, reg);
}
