// Reproduces paper Table VI: impact of DAOP on accuracy for tasks that
// depend on the ENTIRE inference (full generation), across ECRs.
//
// Paper reference shape (Mixtral): TriviaQA/BBH/TruthfulQA barely move from
// ECR 100% -> 25% (71.6 -> 69.1 EM on TriviaQA), while GSM8K degrades
// steadily (58.9 -> 33.5) because its expert activations drift within a
// sequence, defeating a small frozen cache (§VI-B).
//
// Our proxy scores DAOP generations against the exact official model:
// token agreement ~ ExactMatch analogue; ROUGE-1/2 for the
// generation-scored task (TruthfulQA analogue).
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/accuracy.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const std::vector<double> ecrs = {1.0, 0.625, 0.50, 0.375, 0.25};
  const std::vector<data::WorkloadSpec> tasks = {
      data::triviaqa(), data::bbh(), data::truthfulqa(), data::gsm8k()};

  std::printf(
      "Table VI — whole-inference accuracy proxy across ECRs\n"
      "(token agreement with the exact official model, %%; ROUGE-1/2 for\n"
      "the generation task)\n\n");

  for (const model::ModelConfig& cfg :
       {model::tiny_mixtral(), model::tiny_phi()}) {
    const model::FunctionalModel fm(cfg, 0xDA0Full);

    // One calibration pass (ShareGPT-like), reused across the ECR sweep.
    const auto calib = eval::calibrate_functional_counts(
        fm, data::sharegpt_calibration(), 8, 24, 24, 0x5eedULL);

    std::printf("== %s ==\n", cfg.name.c_str());
    TextTable t({"ECR", "TriviaQA agr", "BBH agr", "TruthfulQA R1", "R2",
                 "GSM8K agr"});
    std::vector<std::string> exact_frac_row = {"exact-exec% @25%"};
    for (double ecr : ecrs) {
      std::vector<std::string> row = {fmt_pct(ecr)};
      for (const auto& task : tasks) {
        eval::AccuracyEvalOptions opt;
        opt.n_episodes = 24;
        opt.prompt_len = 24;
        opt.gen_len = 40;
        opt.calib_counts = &calib;
        const auto m = eval::evaluate_daop_accuracy(fm, task,
                                                    core::DaopConfig{}, ecr, opt);
        if (task.name == "TruthfulQA") {
          row.push_back(fmt_f(m.rouge1 * 100.0, 2));
          row.push_back(fmt_f(m.rouge2 * 100.0, 2));
        } else {
          row.push_back(fmt_f(m.token_agreement * 100.0, 2));
        }
        if (ecr == 0.25) {
          const double exact_frac =
              static_cast<double>(m.stats.exact_execs) /
              static_cast<double>(m.stats.decode_expert_uses);
          exact_frac_row.push_back(fmt_f(exact_frac * 100.0, 1));
          if (task.name == "TruthfulQA") exact_frac_row.push_back("");
        }
      }
      t.add_row(row);
    }
    t.add_rule();
    t.add_row(exact_frac_row);
    std::printf("%s\n", t.render().c_str());
  }
  std::printf(
      "paper shape: ECR 100%% is exact; accuracy holds as the cache shrinks.\n"
      "The bottom row shows the fraction of decode expert executions that\n"
      "ran exactly (true expert, true input). Workloads whose decode-phase\n"
      "routing departs from the prefill pattern — GSM8K through §VI-B's\n"
      "in-sequence drift, BBH through a large prefill->decode shift — have\n"
      "the most approximated executions: the mechanism behind the paper's\n"
      "Table VI degradations. (A tiny random-weight model has no brittle\n"
      "math skill to lose, so GSM8K's task-level collapse does not\n"
      "reproduce in final-token agreement; the mechanism does.)\n");
  return 0;
}
