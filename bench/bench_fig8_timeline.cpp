// Reproduces paper Fig. 8: decode-stage execution timelines of
// MoE-OnDemand, Pre-gated MoE, Fiddler and DAOP over two consecutive
// transformer blocks — experts A,B activated in the first block and C,D in
// the second, with A,B,C initially GPU-cached.
//
// The paper's qualitative picture: fetch-based engines serialize block
// compute behind ~40 ms expert migrations; Fiddler avoids migration but
// serializes CPU expert execution inside the layer; DAOP pre-calculates the
// CPU expert one layer early so CPU and GPU overlap.
//
// The critical-path profiler turns that picture into numbers: each case
// prints its attribution report, and the bench *asserts* the mechanism —
// DAOP's exposed (critical-path) CPU-expert time in the decode phase must be
// strictly below Fiddler's on the same trace, because pre-calculation hides
// the CPU expert behind GPU work that Fiddler serializes after. Exits
// non-zero when the claim does not hold.
#include <cstdio>

#include "cache/placement.hpp"
#include "common/strings.hpp"
#include "core/daop_engine.hpp"
#include "data/routing_trace.hpp"
#include "engines/fetch_engine.hpp"
#include "engines/fiddler.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"
#include "model/op_costs.hpp"
#include "obs/attribution.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace daop;

// Builds a two-block micro-trace: block 0 activates {A=0, B=1}, block 1
// activates {C=2, D=3}; predictions are perfect. A short one-token prompt
// keeps prefill out of the interesting window.
data::SequenceTrace micro_trace(const model::ModelConfig& cfg) {
  data::SequenceTrace tr;
  tr.n_experts = cfg.n_experts;
  tr.top_k = 2;
  tr.prompt_len = 1;
  tr.gen_len = 1;
  tr.prefill.resize(static_cast<std::size_t>(cfg.n_layers));
  tr.decode.resize(static_cast<std::size_t>(cfg.n_layers));
  for (int l = 0; l < cfg.n_layers; ++l) {
    data::TokenRouting dec;
    dec.scores.assign(static_cast<std::size_t>(cfg.n_experts), 0.0F);
    if (l % 2 == 0) {
      dec.scores[0] = 2.0F;  // A
      dec.scores[1] = 1.5F;  // B
    } else {
      dec.scores[2] = 2.0F;  // C
      dec.scores[3] = 1.5F;  // D
    }
    if (l >= 1) dec.pred_scores = dec.scores;  // perfect prediction
    tr.decode[static_cast<std::size_t>(l)].tokens = {dec};
    // Prefill routes like decode so the figure's initial cache state
    // (A, B, C resident) survives the prefill phase for every engine.
    data::TokenRouting pre;
    pre.scores = dec.scores;
    tr.prefill[static_cast<std::size_t>(l)].tokens = {pre};
  }
  return tr;
}

}  // namespace

int main() {
  // Two-block model so the whole decode step fits one gantt window.
  model::ModelConfig cfg = model::mixtral_8x7b();
  cfg.n_layers = 2;

  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);

  // Initial cache: A, B, C on GPU; D on CPU (per the figure's setup).
  cache::Placement placement(cfg.n_layers, cfg.n_experts);
  placement.set_capacity(0, 2);
  placement.move_to_gpu(0, 0);  // A
  placement.move_to_gpu(0, 1);  // B
  placement.set_capacity(1, 1);
  placement.move_to_gpu(1, 2);  // C  (D = expert 3 stays on CPU)

  const data::SequenceTrace tr = micro_trace(cfg);

  std::printf(
      "Fig. 8 — decode timeline, two blocks; block0 -> experts A,B (cached),\n"
      "block1 -> experts C (cached), D (on CPU)\n\n");

  struct Case {
    const char* label;
    std::unique_ptr<engines::Engine> engine;
  };
  std::vector<Case> cases;
  cases.push_back({"MoE-OnDemand", engines::make_moe_ondemand(costs)});
  cases.push_back({"Pre-gated MoE", engines::make_pregated_moe(costs)});
  cases.push_back({"Fiddler", engines::make_fiddler(costs)});
  core::DaopConfig dc;
  dc.min_predict_layer = 1;  // the figure's two-block excerpt predicts from block 0
  dc.enable_seq_allocation = false;  // isolate the decode-phase mechanism
  cases.push_back({"DAOP", core::make_daop(costs, dc)});

  double fiddler_cpu_exposed_ms = -1.0;
  double daop_cpu_exposed_ms = -1.0;
  for (auto& c : cases) {
    obs::Profiler prof;
    c.engine->set_profiler(&prof);
    sim::Timeline tl;
    tl.set_record_intervals(true);
    const auto r = c.engine->run(tr, placement, &tl);
    std::printf("---- %s ----\n", c.label);
    std::printf("decode step time: %s ms\n",
                daop::fmt_f(r.decode_s * 1e3, 2).c_str());
    std::printf("%s\n",
                sim::render_gantt(tl, r.prefill_s, r.total_s, 90).c_str());
    // Critical-path attribution of the same run: where the decode step's
    // wall time actually went, and how much work each engine hid.
    std::printf("%s\n", prof.to_text().c_str());
    if (!prof.runs().empty()) {
      const obs::AttrBreakdown& dec = prof.runs().front().decode;
      const double cpu_exposed_ms =
          dec.exposed(obs::AttrCategory::CpuExpert) * 1e3;
      if (std::string(c.label) == "Fiddler") {
        fiddler_cpu_exposed_ms = cpu_exposed_ms;
      } else if (std::string(c.label) == "DAOP") {
        daop_cpu_exposed_ms = cpu_exposed_ms;
      }
    }
  }

  std::printf("exposed CPU-expert time in decode: Fiddler %s ms, DAOP %s ms\n",
              daop::fmt_f(fiddler_cpu_exposed_ms, 3).c_str(),
              daop::fmt_f(daop_cpu_exposed_ms, 3).c_str());
  if (fiddler_cpu_exposed_ms < 0.0 || daop_cpu_exposed_ms < 0.0) {
    std::fprintf(stderr,
                 "FAIL: attribution profiles missing for Fiddler or DAOP\n");
    return 1;
  }
  if (daop_cpu_exposed_ms >= fiddler_cpu_exposed_ms) {
    std::fprintf(stderr,
                 "FAIL: DAOP's exposed CPU-expert decode time (%.4f ms) is "
                 "not below Fiddler's (%.4f ms) — pre-calculation did not "
                 "hide the CPU expert\n",
                 daop_cpu_exposed_ms, fiddler_cpu_exposed_ms);
    return 1;
  }
  std::printf(
      "OK: DAOP hides the CPU expert behind GPU compute (Fig. 8 mechanism)\n");
  return 0;
}
