// Reproduces paper Table IV: energy efficiency (tokens/kJ) of DAOP vs
// baselines, input/output length 256, full GPU memory utilization.
//
// Paper reference (tokens/kJ):
//   Mixtral 8x7B : OnDemand 2.63, DeepSpeed-MII 0.59, Mixtral-Offloading
//                  2.13, Fiddler 10.06, DAOP 14.37  (DAOP = 1.43x Fiddler)
//   Phi-3.5 MoE  : OnDemand 6.94, Fiddler 17.15, DAOP 27.07
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"

int main() {
  using namespace daop;

  const sim::PlatformSpec platform = sim::a6000_i9_platform();

  struct ModelCase {
    model::ModelConfig cfg;
    double ecr;
  };
  const std::vector<ModelCase> models = {{model::mixtral_8x7b(), 0.469},
                                         {model::phi35_moe(), 0.469}};

  std::printf(
      "Table IV — energy efficiency (tokens/kJ), in/out 256, full GPU\n"
      "memory utilization, whole-platform power\n\n");

  TextTable t({"model", "engine", "tokens/s", "avg power (W)", "tokens/kJ"});
  for (const ModelCase& mc : models) {
    double fiddler = 0.0;
    double daop = 0.0;
    for (eval::EngineKind kind : eval::paper_baseline_engines()) {
      eval::SpeedEvalOptions opt;
      opt.prompt_len = 256;
      opt.gen_len = 256;
      opt.ecr = mc.ecr;
      const auto r =
          eval::run_speed_eval(kind, mc.cfg, platform, data::c4(), opt);
      t.add_row({mc.cfg.name, eval::engine_kind_name(kind),
                 fmt_f(r.tokens_per_s, 2), fmt_f(r.energy.avg_power_w, 0),
                 fmt_f(r.tokens_per_kj, 2)});
      if (kind == eval::EngineKind::Fiddler) fiddler = r.tokens_per_kj;
      if (kind == eval::EngineKind::Daop) daop = r.tokens_per_kj;
    }
    t.add_row({mc.cfg.name, "DAOP / Fiddler", "", "",
               fmt_f(daop / fiddler, 2) + "x"});
    t.add_rule();
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "paper shape: DAOP most efficient; Fiddler second; GPU-only\n"
      "offloaders an order of magnitude behind (DeepSpeed-MII worst);\n"
      "DAOP/Fiddler ~1.5x average.\n");
  return 0;
}
