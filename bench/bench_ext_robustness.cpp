// Extension bench: throughput under injected hazards. The paper evaluates
// on a calm device; real edge deployments see PCIe contention, CPU-pool
// competition from co-located processes, and thermal throttling. This bench
// sweeps hazard scenario x intensity for each engine and reports the
// throughput retained relative to the calm run, plus the graceful-
// degradation counters (migration retries / deadline aborts / stale
// pre-calc discards) that show DAOP's robustness policies firing.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"
#include "sim/fault_model.hpp"

int main(int argc, char** argv) {
  using namespace daop;
  const FlagParser flags(argc, argv);
  obs::MetricsRegistry reg;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  const data::WorkloadSpec workload = data::c4();

  const std::vector<std::string> scenarios = {"pcie", "cpu", "thermal",
                                              "expert-load", "all"};
  const std::vector<double> intensities = {0.25, 0.5, 1.0};
  const std::vector<eval::EngineKind> engines = {
      eval::EngineKind::MixtralOffloading, eval::EngineKind::Fiddler,
      eval::EngineKind::Daop};

  // DAOP runs with its graceful-degradation policies armed so the bench
  // shows them firing; the baselines have no equivalent knobs.
  core::DaopConfig robust;
  robust.migration_deadline_factor = 2.0;
  robust.max_migration_retries = 2;
  robust.stale_precalc_factor = 1.5;

  std::printf(
      "Throughput under injected hazards (extension) — %s on %s,\n"
      "C4 traffic, ECR 46.9%%, 4 sequences/point. 'retained' is tokens/s\n"
      "relative to the same engine on a calm device.\n\n",
      cfg.name.c_str(), platform.name.c_str());

  for (auto kind : engines) {
    eval::SpeedEvalOptions opt;
    opt.n_seqs = 4;
    opt.prompt_len = 128;
    opt.gen_len = 96;
    opt.metrics = &reg;
    if (kind == eval::EngineKind::Daop) opt.daop_config = robust;
    const auto calm =
        eval::run_speed_eval(kind, cfg, platform, workload, opt);

    TextTable t({"hazard", "intensity", "tokens/s", "retained", "stall (s)",
                 "retries", "aborts", "stale", "degraded"});
    for (const auto& scenario : scenarios) {
      for (double intensity : intensities) {
        opt.hazards = sim::make_hazard_scenario(scenario, intensity);
        const auto r =
            eval::run_speed_eval(kind, cfg, platform, workload, opt);
        t.add_row({scenario, fmt_f(intensity, 2), fmt_f(r.tokens_per_s, 2),
                   fmt_pct(r.tokens_per_s / calm.tokens_per_s),
                   fmt_f(r.counters.hazard_stall_s, 3),
                   std::to_string(r.counters.migration_retries),
                   std::to_string(r.counters.migration_aborts),
                   std::to_string(r.counters.stale_precalcs),
                   std::to_string(r.counters.degradations)});
      }
      t.add_rule();
    }
    std::printf("%s — calm baseline %s tokens/s\n%s\n", calm.engine.c_str(),
                fmt_f(calm.tokens_per_s, 2).c_str(), t.render().c_str());
  }

  std::printf(
      "shape: PCIe hazards hit the migration-bound engine hardest; CPU\n"
      "contention hits Fiddler's CPU-compute path; DAOP degrades most\n"
      "gracefully because deadline aborts + stale-pre-calc discards convert\n"
      "would-be stalls into (cheaper) degraded substitutions.\n");
  return benchutil::write_metrics_snapshot(flags, reg);
}
