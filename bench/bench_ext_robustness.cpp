// Extension bench: throughput under injected hazards. The paper evaluates
// on a calm device; real edge deployments see PCIe contention, CPU-pool
// competition from co-located processes, and thermal throttling. This bench
// sweeps hazard scenario x intensity for each engine and reports the
// throughput retained relative to the calm run, plus the graceful-
// degradation counters (migration retries / deadline aborts / stale
// pre-calc discards) that show DAOP's robustness policies firing.
//
// The sweep's 48 cells run on eval::ParallelSweepRunner (--threads N, 0 =
// shared pool): shared calibration/trace precomputation plus thread fan-out,
// with results and the metrics registry merged in deterministic cell order —
// every output byte is identical to the serial loop at any thread count.
// --throughput-out PATH records the wall-clock simulated-requests/sec for
// the ratchet-up perf gate (bench/baselines/throughput_robustness.json).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/parallel_sweep.hpp"
#include "model/config.hpp"
#include "sim/fault_model.hpp"

int main(int argc, char** argv) {
  using namespace daop;
  const FlagParser flags(argc, argv);
  obs::MetricsRegistry reg;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  const data::WorkloadSpec workload = data::c4();

  const std::vector<std::string> scenarios = {"pcie", "cpu", "thermal",
                                              "expert-load", "all"};
  const std::vector<double> intensities = {0.25, 0.5, 1.0};
  const std::vector<eval::EngineKind> engines = {
      eval::EngineKind::MixtralOffloading, eval::EngineKind::Fiddler,
      eval::EngineKind::Daop};

  // DAOP runs with its graceful-degradation policies armed so the bench
  // shows them firing; the baselines have no equivalent knobs.
  core::DaopConfig robust;
  robust.migration_deadline_factor = 2.0;
  robust.max_migration_retries = 2;
  robust.stale_precalc_factor = 1.5;

  std::printf(
      "Throughput under injected hazards (extension) — %s on %s,\n"
      "C4 traffic, ECR 46.9%%, 4 sequences/point. 'retained' is tokens/s\n"
      "relative to the same engine on a calm device.\n\n",
      cfg.name.c_str(), platform.name.c_str());

  // One grid cell per (engine, scenario-or-calm, intensity), in the exact
  // order the former serial loop ran them: calm first, then scenario-major.
  std::vector<eval::SpeedGridCell> cells;
  for (auto kind : engines) {
    eval::SpeedGridCell cell;
    cell.kind = kind;
    cell.model = cfg;
    cell.platform = platform;
    cell.workload = workload;
    cell.options.n_seqs = 4;
    cell.options.prompt_len = 128;
    cell.options.gen_len = 96;
    if (kind == eval::EngineKind::Daop) cell.options.daop_config = robust;
    cell.label = "calm";
    cells.push_back(cell);
    for (const auto& scenario : scenarios) {
      for (double intensity : intensities) {
        cell.options.hazards = sim::make_hazard_scenario(scenario, intensity);
        cell.label = scenario;
        cells.push_back(cell);
      }
    }
  }

  const eval::ParallelSweepRunner runner(
      static_cast<unsigned>(flags.get_int("threads", 0)));
  const auto t0 = std::chrono::steady_clock::now();
  const auto grid = runner.run_speed_grid(cells, &reg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const std::size_t per_engine = 1 + scenarios.size() * intensities.size();
  long long requests = 0;
  for (const auto& cell : grid) {
    requests += static_cast<long long>(cell.per_sequence.size());
  }

  for (std::size_t e = 0; e < engines.size(); ++e) {
    const std::size_t base = e * per_engine;
    const auto& calm = grid[base].aggregate;
    TextTable t({"hazard", "intensity", "tokens/s", "retained", "stall (s)",
                 "retries", "aborts", "stale", "degraded"});
    std::size_t i = base + 1;
    for (const auto& scenario : scenarios) {
      for (double intensity : intensities) {
        const auto& r = grid[i++].aggregate;
        t.add_row({scenario, fmt_f(intensity, 2), fmt_f(r.tokens_per_s, 2),
                   fmt_pct(r.tokens_per_s / calm.tokens_per_s),
                   fmt_f(r.counters.hazard_stall_s, 3),
                   std::to_string(r.counters.migration_retries),
                   std::to_string(r.counters.migration_aborts),
                   std::to_string(r.counters.stale_precalcs),
                   std::to_string(r.counters.degradations)});
      }
      t.add_rule();
    }
    std::printf("%s — calm baseline %s tokens/s\n%s\n", calm.engine.c_str(),
                fmt_f(calm.tokens_per_s, 2).c_str(), t.render().c_str());
  }

  std::printf(
      "shape: PCIe hazards hit the migration-bound engine hardest; CPU\n"
      "contention hits Fiddler's CPU-compute path; DAOP degrades most\n"
      "gracefully because deadline aborts + stale-pre-calc discards convert\n"
      "would-be stalls into (cheaper) degraded substitutions.\n");
  if (const int rc = benchutil::write_throughput_profile(
          flags, "bench_ext_robustness", requests, wall_s, runner.threads())) {
    return rc;
  }
  return benchutil::write_metrics_snapshot(flags, reg);
}
