// Extension bench: acceptance gate for the dynamic expert cache
// (src/cache/expert_cache.hpp). The DAOP paper freezes placement after
// prefill; this bench measures what sequence-level routing drift leaves on
// the table, on the two workload shapes the cache targets:
//
//   A. drift-heavy single-tenant decode (GSM8K-like traffic, low ECR, long
//      generations): per-sequence speed eval, decode seconds summed.
//   B. multi-tenant mixed traffic (interleaved C4 + GSM8K requests through
//      the continuous-batching scheduler): per-request decode seconds.
//
// Every dynamic policy runs the identical plan as frozen DAOP; the
// fig8-style attribution table shows where each policy's decode delta came
// from (fills, evictions, refusals, aborts, bytes moved). Acceptance: at
// least one dynamic policy must beat frozen on decode latency on BOTH
// workloads, frozen must commit zero cache activity, ledgers must stay
// paired, and the winning policy must be bit-reproducible. Any failure
// exits nonzero (registered in ctest as bench_ext_cache_acceptance).
//
// --baseline-out PATH writes a daop-profile/1-shaped report of workload A
// for scripts/perf_gate.py, gated in CI against
// bench/baselines/cache_tiny_gsm8k.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cache/calibration.hpp"
#include "cache/expert_cache.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_generator.hpp"
#include "eval/continuous_batching.hpp"
#include "eval/parallel_sweep.hpp"
#include "eval/speed.hpp"
#include "model/config.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

// Round-trip float formatting for the perf-gate profile JSON.
std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct PolicyRun {
  double decode_s = 0.0;  ///< total decode seconds across the plan
  long long fills = 0;
  long long evictions = 0;
  long long refusals = 0;
  long long aborts = 0;
  double bytes_moved = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace daop;
  const FlagParser flags(argc, argv);
  obs::MetricsRegistry reg;

  const model::ModelConfig cfg = model::tiny_mixtral();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  constexpr std::uint64_t kSeed = 7;
  // Low ECR + long generations: the regime where prefill-frozen placement
  // drifts furthest from decode routing (paper Fig. 10/11).
  constexpr double kEcr = 0.3;

  const std::vector<cache::CachePolicy> policies = cache::all_cache_policies();

  std::printf(
      "Dynamic expert cache acceptance (extension) — %s on %s, ECR %s.\n"
      "Frozen DAOP placement vs dynamic policies on the identical plan.\n\n",
      cfg.name.c_str(), platform.name.c_str(), fmt_pct(kEcr).c_str());

  // ---- Workload A: drift-heavy single-tenant decode (GSM8K-like) ----
  auto run_drift = [&](cache::CachePolicy policy) {
    eval::SpeedEvalOptions opt;
    opt.n_seqs = 4;
    opt.prompt_len = 24;
    opt.gen_len = 64;
    opt.ecr = kEcr;
    opt.seed = kSeed;
    opt.calibration_seqs = 4;
    opt.cache.policy = policy;
    opt.cache.realloc_interval = 4;
    const auto results = eval::run_speed_eval_per_sequence(
        eval::EngineKind::Daop, cfg, platform, data::gsm8k(), opt);
    PolicyRun out;
    for (const auto& r : results) {
      out.decode_s += r.decode_s;
      // In the dynamic session path every decode swap is a cache fill;
      // frozen keeps DAOP's decode realloc off, so this stays 0 there.
      out.fills += r.counters.decode_swaps;
      out.evictions += r.counters.decode_swaps;
      out.refusals += r.counters.pin_refusals;
      out.aborts += r.counters.migration_aborts;
    }
    out.bytes_moved = static_cast<double>(out.fills) * cfg.expert_bytes();
    return out;
  };

  // ---- Workload B: multi-tenant mixed traffic (C4 + GSM8K interleaved) ----
  auto run_mixed = [&](cache::CachePolicy policy) {
    const sim::CostModel cm(platform);
    const model::OpCosts costs(cfg, cm);
    const data::TraceGenerator calib(data::sharegpt_calibration(),
                                     cfg.n_layers, cfg.n_experts, cfg.top_k,
                                     kSeed ^ 0xCA11Bu);
    const cache::Placement initial = cache::init_placement_calibrated(
        cfg.n_layers, cfg.n_experts, kEcr,
        cache::calibrate_activation_counts(calib, 4));
    const data::TraceGenerator gen_c4(data::c4(), cfg.n_layers, cfg.n_experts,
                                      cfg.top_k, kSeed);
    const data::TraceGenerator gen_gsm(data::gsm8k(), cfg.n_layers,
                                       cfg.n_experts, cfg.top_k, kSeed);
    auto engine = eval::make_engine(eval::EngineKind::Daop, costs);
    eval::ContinuousBatchingScheduler::Options opt;
    opt.max_concurrent = 4;
    opt.cache.policy = policy;
    opt.cache.realloc_interval = 4;
    sim::Timeline tl;
    eval::ContinuousBatchingScheduler sched(*engine, tl, initial, opt);
    // Two tenants interleaved: even requests draft C4 prose, odd requests
    // GSM8K reasoning — contending demand over the same GPU slots.
    for (int i = 0; i < 6; ++i) {
      eval::ContinuousBatchingScheduler::Request req;
      req.id = i;
      req.arrival = 0.02 * i;
      const auto& gen = (i % 2 == 0) ? gen_c4 : gen_gsm;
      req.trace = gen.generate(i, /*prompt=*/20, /*gen=*/96);
      sched.enqueue(std::move(req));
    }
    PolicyRun out;
    for (const auto& o : sched.run()) {
      out.decode_s += o.result.decode_s;
      out.fills += o.result.counters.decode_swaps;
      out.refusals += o.result.counters.pin_refusals;
      out.aborts += o.result.counters.migration_aborts;
    }
    if (const cache::ExpertCache* ec = sched.expert_cache()) {
      out.fills = ec->fills();
      out.evictions = ec->evictions();
      out.refusals = static_cast<long long>(ec->refusals().size());
      out.aborts = ec->aborts();
    }
    out.bytes_moved = static_cast<double>(out.fills) * cfg.expert_bytes();
    return out;
  };

  // Each policy cell is independent (own engine, timeline, cache, RNG
  // streams), so the matrix fans out on the sweep runner; slot-indexed
  // writes keep the merge deterministic at any thread count.
  const eval::ParallelSweepRunner runner(
      static_cast<unsigned>(flags.get_int("threads", 0)));
  std::vector<PolicyRun> drift(policies.size());
  std::vector<PolicyRun> mixed(policies.size());
  const auto t0 = std::chrono::steady_clock::now();
  runner.run_cells(static_cast<std::int64_t>(policies.size() * 2),
                   [&](std::int64_t i) {
                     const std::size_t p = static_cast<std::size_t>(i) / 2;
                     if (i % 2 == 0) {
                       drift[p] = run_drift(policies[p]);
                     } else {
                       mixed[p] = run_mixed(policies[p]);
                     }
                   });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const PolicyRun& drift_frozen = drift[0];
  const PolicyRun& mixed_frozen = mixed[0];

  // Fig8-style attribution: where each policy's decode delta came from.
  const auto print_attribution = [&](const char* wl_name,
                                     const std::vector<PolicyRun>& runs,
                                     const PolicyRun& frozen) {
    TextTable t({"policy", "decode (s)", "vs frozen", "fills", "evicts",
                 "refusals", "aborts", "moved"});
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const PolicyRun& r = runs[i];
      const double delta = r.decode_s - frozen.decode_s;
      t.add_row({cache::cache_policy_name(policies[i]),
                 fmt_f(r.decode_s, 4),
                 i == 0 ? "-"
                        : (delta <= 0.0 ? "-" : "+") +
                              fmt_f(std::abs(delta), 4),
                 std::to_string(r.fills), std::to_string(r.evictions),
                 std::to_string(r.refusals), std::to_string(r.aborts),
                 fmt_bytes(r.bytes_moved)});
    }
    std::printf("workload %s\n%s\n", wl_name, t.render().c_str());
  };
  print_attribution("A: drift-heavy gsm8k", drift, drift_frozen);
  print_attribution("B: multi-tenant c4+gsm8k", mixed, mixed_frozen);

  std::printf("acceptance:\n");
  // Frozen is the byte-identical control: zero cache activity.
  check(drift_frozen.fills == 0 && mixed_frozen.fills == 0,
        "frozen policy commits zero cache activity");
  // Ledger pairing survives both harnesses.
  bool paired = true;
  for (std::size_t i = 1; i < policies.size(); ++i) {
    paired = paired && drift[i].fills == drift[i].evictions &&
             mixed[i].fills == mixed[i].evictions;
  }
  check(paired, "every dynamic fill has exactly one paired eviction");
  bool any_active = false;
  for (std::size_t i = 1; i < policies.size(); ++i) {
    any_active = any_active || drift[i].fills > 0 || mixed[i].fills > 0;
  }
  check(any_active, "at least one dynamic policy re-migrated experts");

  // The acceptance criterion proper: one policy must beat frozen on decode
  // latency on BOTH workload shapes.
  std::size_t best = 0;
  double best_delta = 0.0;
  for (std::size_t i = 1; i < policies.size(); ++i) {
    const double d = (drift_frozen.decode_s - drift[i].decode_s) +
                     (mixed_frozen.decode_s - mixed[i].decode_s);
    const bool wins_both = drift[i].decode_s < drift_frozen.decode_s &&
                           mixed[i].decode_s < mixed_frozen.decode_s;
    if (wins_both && d > best_delta) {
      best = i;
      best_delta = d;
    }
  }
  check(best != 0,
        best != 0
            ? std::string("policy ") + cache::cache_policy_name(policies[best]) +
                  " beats frozen on both workloads (drift " +
                  fmt_f(drift_frozen.decode_s - drift[best].decode_s, 4) +
                  " s, mixed " +
                  fmt_f(mixed_frozen.decode_s - mixed[best].decode_s, 4) +
                  " s saved)"
            : "no dynamic policy beats frozen decode latency on both "
              "workloads");

  // Determinism: the winning policy's runs must be bit-reproducible.
  if (best != 0) {
    const PolicyRun d2 = run_drift(policies[best]);
    const PolicyRun m2 = run_mixed(policies[best]);
    check(d2.decode_s == drift[best].decode_s && d2.fills == drift[best].fills &&
              m2.decode_s == mixed[best].decode_s &&
              m2.fills == mixed[best].fills &&
              m2.refusals == mixed[best].refusals,
          "winning policy is bit-identical on re-run");
  }

  const std::string baseline_out = flags.get("baseline-out", "");
  if (!baseline_out.empty()) {
    std::ofstream f(baseline_out);
    f << "{\"schema\":\"daop-profile/1\",\"bench\":\"bench_ext_cache\","
      << "\"aggregate\":{";
    bool first = true;
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const char* name = cache::cache_policy_name(policies[i]);
      f << (first ? "" : ",") << "\"" << name << "\":{"
        << "\"drift_decode_s\":" << fmt_g(drift[i].decode_s)
        << ",\"drift_fills\":" << drift[i].fills
        << ",\"drift_refusals\":" << drift[i].refusals
        << ",\"drift_aborts\":" << drift[i].aborts
        << ",\"mixed_decode_s\":" << fmt_g(mixed[i].decode_s)
        << ",\"mixed_fills\":" << mixed[i].fills
        << ",\"mixed_refusals\":" << mixed[i].refusals
        << ",\"mixed_aborts\":" << mixed[i].aborts << "}";
      first = false;
    }
    f << ",\"best_policy_index\":" << best << "}}\n";
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", baseline_out.c_str());
      return 1;
    }
    std::printf("\nbaseline profile written to %s\n", baseline_out.c_str());
  }

  // Workload A simulates opt.n_seqs sequences and workload B 6 requests
  // per policy cell.
  const long long requests = static_cast<long long>(policies.size()) * (4 + 6);
  if (const int rc = benchutil::write_throughput_profile(
          flags, "bench_ext_cache", requests, wall_s, runner.threads())) {
    return rc;
  }
  if (const int rc = benchutil::write_metrics_snapshot(flags, reg)) return rc;
  std::printf("\n%s\n", g_failures == 0 ? "cache acceptance PASSED"
                                        : "cache acceptance FAILED");
  return g_failures == 0 ? 0 : 1;
}
