// Extension bench: chaos acceptance for the fault-tolerant cluster
// (src/cluster/). Drives a 4-node replica cluster at 2x the measured
// per-node saturation rate, crashes one node mid-run, and checks that
// health-checked failover (a) keeps the served p99 TTFT within the SLO
// and (b) beats a naive no-health-check round-robin cluster on SLO
// violation rate. The thresholds self-calibrate against the measured
// saturation point of this model/platform pair (same probe pattern as
// tests/eval/overload_test.cpp), so the bench is a real acceptance gate
// rather than a magic-number check: any assertion failure exits nonzero.
//
// --baseline-out PATH additionally writes a daop-profile/1-shaped report
// of the health-checked chaos run for scripts/perf_gate.py, gated in CI
// against bench/baselines/cluster_tiny_c4.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/serving.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "eval/parallel_sweep.hpp"
#include "model/config.hpp"
#include "sim/fault_model.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

// Round-trip float formatting for the perf-gate profile JSON.
std::string fmt_g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Nearest-rank p99 over a recovery-latency sample (matches
// tests/recovery/warm_restart_test.cpp).
double p99(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i =
      static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(v.size()))) -
      1;
  return v[std::min(i, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace daop;
  const FlagParser flags(argc, argv);
  obs::MetricsRegistry reg;

  const model::ModelConfig cfg = model::tiny_mixtral();
  const sim::PlatformSpec platform = sim::a6000_i9_platform();
  const data::WorkloadSpec workload = data::c4();
  const eval::EngineKind kind = eval::EngineKind::Daop;
  constexpr int kNodes = 4;
  constexpr int kCrashNode = 1;

  cluster::ClusterServingOptions base;
  base.base.n_requests = 16;
  base.base.min_prompt = 16;
  base.base.max_prompt = 32;
  base.base.min_gen = 16;
  base.base.max_gen = 32;
  base.base.calibration_seqs = 4;
  base.base.seed = 7;
  base.n_nodes = 1;
  base.cluster.max_concurrent_per_node = 4;
  base.cluster.dispatch = cluster::DispatchPolicy::kRoundRobin;

  std::printf(
      "Cluster chaos acceptance (extension) — %s on %s, C4 traffic,\n"
      "%d nodes, node %d crashing mid-run at 2x per-node saturation.\n\n",
      cfg.name.c_str(), platform.name.c_str(), kNodes, kCrashNode);

  const eval::ParallelSweepRunner runner(
      static_cast<unsigned>(flags.get_int("threads", 0)));
  long long sim_requests = 0;
  const auto bench_t0 = std::chrono::steady_clock::now();

  // Capacity probe: burst arrivals on a single node measure the
  // full-concurrency drain rate.
  auto probe = base;
  probe.base.arrival_rate_rps = 1000.0;
  const auto cap = cluster::run_cluster_serving_eval(kind, cfg, platform,
                                                     workload, probe);
  check(cap.served == probe.base.n_requests, "capacity probe serves all");
  const double sat_rps = probe.base.n_requests / cap.makespan_s;

  // Calm probe: p99 TTFT with empty queues calibrates the service
  // estimate (with contention headroom) and the first-token SLO.
  auto solo = base;
  solo.base.arrival_rate_rps = sat_rps / 8.0;
  const auto calm = cluster::run_cluster_serving_eval(kind, cfg, platform,
                                                      workload, solo);
  check(calm.served == solo.base.n_requests, "calm probe serves all");
  const double service_est = 4.0 * calm.ttft_s.p99;
  const double slo_ttft = 3.0 * service_est;
  std::printf(
      "\ncalibration: per-node saturation %s rps, service estimate %s s,\n"
      "TTFT SLO %s s\n\n",
      fmt_f(sat_rps, 2).c_str(), fmt_f(service_est, 4).c_str(),
      fmt_f(slo_ttft, 4).c_str());

  // The chaos plan: 4 nodes, 2x PER-NODE saturation (half the healthy
  // cluster's capacity, two thirds after the crash — survivable, so the
  // acceptance question is purely how routing handles the dead replica).
  cluster::ClusterServingOptions chaos = base;
  chaos.n_nodes = kNodes;
  chaos.base.n_requests = 256;
  chaos.base.arrival_rate_rps = 2.0 * sat_rps;
  chaos.base.slo_ttft_s = slo_ttft;
  chaos.cluster.service_estimate_s = service_est;
  chaos.cluster.failover_budget = 1;
  // A copy sent to an already-dead node is only discovered lost after a
  // timeout — modelled at 3x the service estimate. This is the recurring
  // cost naive routing pays for every post-crash dispatch into the dead
  // replica; health-checked routing pays it at most once before ejection.
  chaos.cluster.failover_backoff_s = 3.0 * service_est;
  chaos.cluster.crash_node = kCrashNode;

  // Naive baseline: round-robin that never health-checks, so it keeps
  // dispatching into the dead node until each request's failover budget
  // burns down. Also calibrates the crash instant: scan the arrival
  // window for a crash that catches node 1 mid-request (the trajectory up
  // to the crash is identical with and without health checking, so the
  // scanned instant is fair to both clusters).
  auto naive = chaos;
  naive.cluster.health.enabled = false;
  const double window =
      chaos.base.n_requests / chaos.base.arrival_rate_rps;
  // The candidate instants are independent cluster runs (each builds its
  // own nodes, timelines, and RNG streams), so the scan fans out on the
  // sweep runner; picking the first acceptable candidate in list order
  // reproduces the serial early-exit scan's choice exactly.
  const std::vector<double> fracs = {0.40, 0.45, 0.50, 0.35, 0.55, 0.30,
                                     0.60};
  std::vector<cluster::ClusterServingResult> scan(fracs.size());
  runner.run_cells(
      static_cast<std::int64_t>(fracs.size()), [&](std::int64_t i) {
        auto candidate = naive;
        candidate.cluster.crash_time_s =
            fracs[static_cast<std::size_t>(i)] * window;
        scan[static_cast<std::size_t>(i)] = cluster::run_cluster_serving_eval(
            kind, cfg, platform, workload, candidate);
      });
  sim_requests += static_cast<long long>(fracs.size()) * naive.base.n_requests;
  // 1-2 in-flight victims: enough to exercise failover replay, few
  // enough that the served-TTFT p99 (which excludes the top two of 256
  // samples) measures steady-state routing rather than the victims.
  std::size_t pick = fracs.size() - 1;
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    if (scan[i].cluster.replayed_tokens > 0 &&
        scan[i].cluster.failovers_node_crash <= 2) {
      pick = i;
      break;
    }
  }
  naive.cluster.crash_time_s = fracs[pick] * window;
  const cluster::ClusterServingResult naive_r = scan[pick];
  check(naive_r.cluster.replayed_tokens > 0 &&
            naive_r.cluster.failovers_node_crash <= 2,
        "found a crash instant catching 1-2 in-flight requests on node " +
            std::to_string(kCrashNode));
  chaos.cluster.crash_time_s = naive.cluster.crash_time_s;

  // Health-checked cluster on the identical request plan.
  auto checked = chaos;
  checked.cluster.health.enabled = true;
  checked.cluster.health.probe_interval_s = service_est / 2.0;
  checked.cluster.health.eject_after = 2;
  checked.cluster.health.readmit_after = 2;
  checked.base.metrics = &reg;
  const auto r = cluster::run_cluster_serving_eval(kind, cfg, platform,
                                                   workload, checked);

  TextTable t({"cluster", "served", "shed", "p99 TTFT (s)", "SLO viol.",
               "failovers", "dead disp.", "ejected"});
  t.add_row({"naive round-robin", std::to_string(naive_r.served),
             std::to_string(naive_r.shed), fmt_f(naive_r.ttft_s.p99, 4),
             fmt_pct(naive_r.slo_violation_rate),
             std::to_string(naive_r.cluster.failovers_total()),
             std::to_string(naive_r.cluster.failovers_dead_dispatch),
             std::to_string(naive_r.cluster.ejections)});
  t.add_row({"health-checked", std::to_string(r.served),
             std::to_string(r.shed), fmt_f(r.ttft_s.p99, 4),
             fmt_pct(r.slo_violation_rate),
             std::to_string(r.cluster.failovers_total()),
             std::to_string(r.cluster.failovers_dead_dispatch),
             std::to_string(r.cluster.ejections)});
  std::printf("%s\n", t.render().c_str());

  std::printf("acceptance:\n");
  // The crash actually happened and cost in-flight work.
  check(r.cluster.crashes == 1 && naive_r.cluster.crashes == 1,
        "node " + std::to_string(kCrashNode) + " crashed in both runs");
  check(r.cluster.node_final_state[kCrashNode] == 0,
        "crashed node reported down in final telemetry");
  check(r.cluster.failovers_total() > 0 && r.cluster.replayed_tokens > 0,
        "failover re-dispatched in-flight work and accounted replayed "
        "tokens (" +
            std::to_string(r.cluster.replayed_tokens) + ")");
  // Health checking detected the crash; the naive cluster never did, and
  // kept paying dead-dispatch detection delays for the rest of the run.
  check(r.cluster.ejections >= 1, "health checker ejected the dead node");
  check(naive_r.cluster.ejections == 0 &&
            naive_r.cluster.failovers_dead_dispatch >
                r.cluster.failovers_dead_dispatch,
        "naive cluster kept dead-dispatching (" +
            std::to_string(naive_r.cluster.failovers_dead_dispatch) + " vs " +
            std::to_string(r.cluster.failovers_dead_dispatch) + ")");
  // Conservation (also DAOP_CHECKed inside the harness).
  check(r.served + r.shed == chaos.base.n_requests &&
            naive_r.served + naive_r.shed == chaos.base.n_requests,
        "served + shed == requests in both runs");
  // The acceptance criteria proper.
  check(r.ttft_s.p99 <= slo_ttft,
        "health-checked served p99 TTFT " + fmt_f(r.ttft_s.p99, 4) +
            " s within SLO " + fmt_f(slo_ttft, 4) + " s");
  check(r.slo_violation_rate < naive_r.slo_violation_rate,
        "health-checked SLO violation rate " +
            fmt_pct(r.slo_violation_rate) + " beats naive " +
            fmt_pct(naive_r.slo_violation_rate));

  // Determinism: the chaos run must be bit-reproducible.
  const auto again = cluster::run_cluster_serving_eval(kind, cfg, platform,
                                                       workload, checked);
  check(again.served == r.served && again.shed == r.shed &&
            again.makespan_s == r.makespan_s &&
            again.ttft_s.p99 == r.ttft_s.p99 &&
            again.cluster.dispatches == r.cluster.dispatches &&
            again.cluster.failovers_total() == r.cluster.failovers_total() &&
            again.cluster.replayed_tokens == r.cluster.replayed_tokens,
        "chaos run is bit-identical on re-run");

  // Warm-restart recovery: the identical chaos plan with crash-consistent
  // checkpointing enabled (every decode step, durable writes priced on
  // each node's timeline). The checkpoint-off run above recovers every
  // loss episode by replaying prefill from scratch; the checkpointed run
  // must warm-restore mid-decode instead, regenerating strictly fewer
  // tokens and closing its loss episodes strictly faster.
  auto warm = checked;
  warm.base.metrics = nullptr;
  warm.cluster.checkpoint.every_steps = 1;
  const auto w = cluster::run_cluster_serving_eval(kind, cfg, platform,
                                                   workload, warm);
  sim_requests += chaos.base.n_requests;

  const double rec_p99_replay = p99(r.recovery.recovery_latency_s);
  const double rec_p99_warm = p99(w.recovery.recovery_latency_s);
  const double rec_speedup =
      rec_p99_warm > 0.0 ? rec_p99_replay / rec_p99_warm : 0.0;
  TextTable rt({"recovery", "lost", "restored", "replayed", "shed",
                "replayed tok", "p99 latency (s)"});
  rt.add_row({"prefill replay", std::to_string(r.recovery.lost_sessions),
              std::to_string(r.recovery.recovered_restored),
              std::to_string(r.recovery.recovered_replayed),
              std::to_string(r.recovery.recovered_shed),
              std::to_string(r.cluster.replayed_tokens),
              fmt_f(rec_p99_replay, 4)});
  rt.add_row({"warm restart", std::to_string(w.recovery.lost_sessions),
              std::to_string(w.recovery.recovered_restored),
              std::to_string(w.recovery.recovered_replayed),
              std::to_string(w.recovery.recovered_shed),
              std::to_string(w.cluster.replayed_tokens),
              fmt_f(rec_p99_warm, 4)});
  std::printf("\n%s\n", rt.render().c_str());

  std::printf("recovery acceptance:\n");
  check(r.recovery.checkpoints_written == 0 && r.recovery.restores == 0,
        "checkpoint-off run performed zero checkpoint work");
  check(w.recovery.checkpoints_written > 0 && w.recovery.restores >= 1,
        "checkpointed run wrote snapshots and warm-restored at least one "
        "lost session (" +
            std::to_string(w.recovery.restores) + ")");
  check(w.recovery.lost_sessions == w.recovery.recovered_restored +
                                        w.recovery.recovered_replayed +
                                        w.recovery.recovered_shed &&
            r.recovery.lost_sessions == r.recovery.recovered_replayed +
                                            r.recovery.recovered_shed,
        "every lost session resolved exactly once (restored|replayed|shed)");
  check(w.cluster.replayed_tokens < r.cluster.replayed_tokens,
        "warm restart regenerates fewer tokens (" +
            std::to_string(w.cluster.replayed_tokens) + " vs " +
            std::to_string(r.cluster.replayed_tokens) + ")");
  check(rec_p99_warm < rec_p99_replay,
        "warm restart beats prefill replay on p99 recovery latency (" +
            fmt_f(rec_p99_warm, 4) + " s vs " + fmt_f(rec_p99_replay, 4) +
            " s, " + fmt_f(rec_speedup, 2) + "x)");

  const std::string baseline_out = flags.get("baseline-out", "");
  if (!baseline_out.empty()) {
    std::ofstream f(baseline_out);
    f << "{\"schema\":\"daop-profile/1\",\"bench\":\"bench_ext_cluster\","
      << "\"aggregate\":{"
      << "\"requests\":" << r.requests << ",\"served\":" << r.served
      << ",\"shed_node_lost\":" << r.shed_node_lost
      << ",\"ttft_p99_s\":" << fmt_g(r.ttft_s.p99)
      << ",\"slo_violation_rate\":" << fmt_g(r.slo_violation_rate)
      << ",\"throughput_tps\":" << fmt_g(r.throughput_tps)
      << ",\"makespan_s\":" << fmt_g(r.makespan_s) << ",\"cluster\":{"
      << "\"dispatches\":" << r.cluster.dispatches
      << ",\"failovers_node_crash\":" << r.cluster.failovers_node_crash
      << ",\"failovers_dead_dispatch\":" << r.cluster.failovers_dead_dispatch
      << ",\"replayed_tokens\":" << r.cluster.replayed_tokens
      << ",\"crashes\":" << r.cluster.crashes
      << ",\"ejections\":" << r.cluster.ejections
      << ",\"readmissions\":" << r.cluster.readmissions << "},\"naive\":{"
      << "\"served\":" << naive_r.served
      << ",\"slo_violation_rate\":" << fmt_g(naive_r.slo_violation_rate)
      << "},\"recovery\":{"
      << "\"checkpoints_written\":" << w.recovery.checkpoints_written
      << ",\"torn_writes\":" << w.recovery.torn_writes
      << ",\"torn_rejected\":" << w.recovery.torn_rejected
      << ",\"lost_sessions\":" << w.recovery.lost_sessions
      << ",\"restored\":" << w.recovery.recovered_restored
      << ",\"replayed\":" << w.recovery.recovered_replayed
      << ",\"shed\":" << w.recovery.recovered_shed
      << ",\"restored_tokens\":" << w.recovery.restored_tokens
      << ",\"warm_replayed_tokens\":" << w.cluster.replayed_tokens
      << ",\"replay_replayed_tokens\":" << r.cluster.replayed_tokens
      << ",\"warm_p99_latency_s\":" << fmt_g(rec_p99_warm)
      << ",\"replay_p99_latency_s\":" << fmt_g(rec_p99_replay)
      << ",\"latency_speedup\":" << fmt_g(rec_speedup) << "}}}\n";
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", baseline_out.c_str());
      return 1;
    }
    std::printf("\nbaseline profile written to %s\n", baseline_out.c_str());
  }

  sim_requests += 2 * probe.base.n_requests +  // capacity + calm probes
                  2 * chaos.base.n_requests;   // checked run + re-run
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - bench_t0)
                            .count();
  if (const int rc = benchutil::write_throughput_profile(
          flags, "bench_ext_cluster", sim_requests, wall_s,
          runner.threads())) {
    return rc;
  }
  if (const int rc = benchutil::write_metrics_snapshot(flags, reg)) return rc;
  std::printf("\n%s\n", g_failures == 0
                            ? "chaos acceptance PASSED"
                            : "chaos acceptance FAILED");
  return g_failures == 0 ? 0 : 1;
}
