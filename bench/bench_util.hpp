// Shared helpers for the extension benches.
//
// Every bench binary stays runnable with zero arguments; passing
// --metrics-out PATH (and optionally --metrics-format prom|json) additionally
// dumps the observability registry the bench accumulated, so CI and operators
// can archive a machine-readable snapshot next to the human-readable table.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "obs/metrics.hpp"

namespace daop::benchutil {

/// Writes `reg` to --metrics-out when given. Returns the process exit code
/// (0 on success or when no snapshot was requested, 1 on I/O failure).
inline int write_metrics_snapshot(const FlagParser& flags,
                                  const obs::MetricsRegistry& reg) {
  const std::string path = flags.get("metrics-out", "");
  const std::string format = flags.get("metrics-format", "prom");
  if (path.empty()) return 0;
  std::ofstream f(path);
  if (f) f << (format == "json" ? reg.to_json() : reg.to_prometheus());
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("metrics snapshot written to %s (%zu families)\n", path.c_str(),
              reg.family_count());
  return 0;
}

}  // namespace daop::benchutil
