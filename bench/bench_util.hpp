// Shared helpers for the extension benches.
//
// Every bench binary stays runnable with zero arguments; passing
// --metrics-out PATH (and optionally --metrics-format prom|json) additionally
// dumps the observability registry the bench accumulated, so CI and operators
// can archive a machine-readable snapshot next to the human-readable table.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hpp"
#include "obs/metrics.hpp"

namespace daop::benchutil {

/// Writes `reg` to --metrics-out when given. Returns the process exit code
/// (0 on success or when no snapshot was requested, 1 on I/O failure).
inline int write_metrics_snapshot(const FlagParser& flags,
                                  const obs::MetricsRegistry& reg) {
  const std::string path = flags.get("metrics-out", "");
  const std::string format = flags.get("metrics-format", "prom");
  if (path.empty()) return 0;
  std::ofstream f(path);
  if (f) f << (format == "json" ? reg.to_json() : reg.to_prometheus());
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("metrics snapshot written to %s (%zu families)\n", path.c_str(),
              reg.family_count());
  return 0;
}

/// Writes a daop-profile/1 throughput report to --throughput-out when given.
/// `requests` is the number of simulated sequences the sweep completed and
/// `wall_s` the wall-clock seconds it took; sim_requests_per_sec is the
/// headline metric, registered in scripts/perf_gate.py baselines with
/// ratchet-up-only semantics (a regression fails, an improvement asks for a
/// baseline refresh). Only "requests" (deterministic) and
/// "sim_requests_per_sec" (ratcheted) live under "aggregate" — wall seconds
/// and the thread count are informational top-level fields the gate ignores.
inline int write_throughput_profile(const FlagParser& flags,
                                    const std::string& bench,
                                    long long requests, double wall_s,
                                    unsigned threads) {
  const double rps = wall_s > 0.0 ? static_cast<double>(requests) / wall_s
                                  : 0.0;
  std::printf(
      "\nthroughput: %lld simulated requests in %.3f s wall = %.1f req/s "
      "(%u worker threads)\n",
      requests, wall_s, rps, threads);
  const std::string path = flags.get("throughput-out", "");
  if (path.empty()) return 0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":\"daop-profile/1\",\"bench\":\"%s\","
                "\"wall_s\":%.6f,\"threads\":%u,\"aggregate\":{"
                "\"requests\":%lld,\"sim_requests_per_sec\":%.6f}}\n",
                bench.c_str(), wall_s, threads, requests, rps);
  std::ofstream f(path);
  if (f) f << buf;
  if (!f) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("throughput profile written to %s\n", path.c_str());
  return 0;
}

}  // namespace daop::benchutil
