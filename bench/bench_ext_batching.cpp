// Extension bench: batched decoding. The paper fixes batch size 1 (§V-A);
// serving stacks batch. Two opposing effects on the hybrid engines:
// amortized weight reads push aggregate throughput up (much faster on the
// GPU than on the bandwidth-bound CPU), while the single shared expert
// cache dilutes DAOP's per-sequence allocation advantage.
#include <cstdio>

#include "cache/calibration.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "data/trace_generator.hpp"
#include "engines/batch.hpp"
#include "model/config.hpp"
#include "model/op_costs.hpp"

int main() {
  using namespace daop;

  const model::ModelConfig cfg = model::mixtral_8x7b();
  const sim::CostModel cm(sim::a6000_i9_platform());
  const model::OpCosts costs(cfg, cm);

  const data::TraceGenerator calib_gen(data::sharegpt_calibration(),
                                       cfg.n_layers, cfg.n_experts, cfg.top_k,
                                       0xCA11Bu);
  const auto calib = cache::calibrate_activation_counts(calib_gen, 32);
  const auto placement = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, 0.469, calib);

  const data::TraceGenerator gen(data::c4(), cfg.n_layers, cfg.n_experts,
                                 cfg.top_k, 7);

  std::printf(
      "Batched decoding (extension) — %s, ECR 46.9%%, in/out 256,\n"
      "A6000 + i9. Aggregate = batch tokens/s; per-seq = one user's rate.\n\n",
      cfg.name.c_str());

  TextTable t({"batch", "Fiddler agg", "Fiddler/seq", "DAOP agg", "DAOP/seq",
               "DAOP edge"});
  for (int b : {1, 2, 4, 8, 16}) {
    std::vector<data::SequenceTrace> traces;
    for (int i = 0; i < b; ++i) traces.push_back(gen.generate(i, 256, 256));
    const auto rf = engines::run_fiddler_batch(costs, traces, placement);
    const auto rd = engines::run_daop_batch(costs, core::DaopConfig{}, traces,
                                            placement);
    const double edge = rd.tokens_per_s / rf.tokens_per_s - 1.0;
    t.add_row({std::to_string(b), fmt_f(rf.tokens_per_s, 2),
               fmt_f(rf.per_seq_tokens_per_s, 2), fmt_f(rd.tokens_per_s, 2),
               fmt_f(rd.per_seq_tokens_per_s, 2),
               (edge >= 0 ? "+" : "") + fmt_pct(edge)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "shape: aggregate throughput grows with batch (weight reads\n"
      "amortize); per-user rate declines; DAOP's edge over Fiddler narrows\n"
      "and eventually inverts as one shared cache must serve the union of\n"
      "the batch's activation patterns and speculative CPU work stops\n"
      "amortizing — the paper's mechanisms are batch-1 (real-time)\n"
      "optimizations, exactly the setting it targets.\n");
  return 0;
}
