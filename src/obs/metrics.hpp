// Observability plane — metrics registry (daop::obs).
//
// A process-local registry of labeled counters, gauges and fixed-bucket
// histograms, exportable as Prometheus text format and as JSON. The registry
// is strictly passive: engines and harnesses record into it after (or
// alongside) scheduling decisions, never as an input to them, so attaching a
// registry can never change a simulated timeline. Export order is fully
// deterministic (families sorted by name, series sorted by label set), which
// lets tests assert byte-identical snapshots across runs.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace daop::obs {

/// Label set attached to one series, e.g. {{"engine","DAOP"},{"device","gpu"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Raw fixed-bucket histogram state. A value type (copyable, mergeable) so
/// results structs can carry snapshots without owning a registry.
struct HistogramData {
  /// Ascending finite bucket upper bounds; an implicit +Inf bucket follows.
  std::vector<double> upper_bounds;
  /// Per-bucket (non-cumulative) observation counts; size upper_bounds + 1,
  /// the last entry being the +Inf overflow bucket.
  std::vector<long long> counts;
  long long total = 0;
  double sum = 0.0;

  HistogramData() = default;
  explicit HistogramData(std::vector<double> bounds);

  void observe(double v);
  /// Adds another histogram's counts; bucket bounds must match exactly.
  void merge(const HistogramData& other);
  bool empty() const { return total == 0; }
  /// Width of the bucket that `v` falls into (+Inf bucket reuses the last
  /// finite bucket's width). Used by tests to bound quantile error.
  double bucket_width(double v) const;
};

/// Quantile estimate (q in [0,1]) by linear interpolation inside the bucket
/// containing the q-th observation, Prometheus histogram_quantile-style.
/// Values landing in the +Inf bucket clamp to the largest finite bound.
/// An empty or unconfigured histogram (zero observations) returns NaN —
/// there is no order statistic to estimate.
double histogram_quantile(const HistogramData& h, double q);

/// Prometheus-style 1/2.5/5 grid from 1 ms to 5000 s — wide enough for
/// TTFT, TPOT and end-to-end request latencies on every simulated platform.
std::vector<double> default_latency_buckets();

// ---- Shared deterministic formatting helpers ----
// Every obs exporter (metrics, time series) prints values the same way so
// cross-format diffs line up byte for byte.

/// Exact integers print without a fractional part (stable counter exports);
/// everything else uses %.10g.
std::string format_metric_value(double v);
/// JSON string escaping: control characters escaped, UTF-8 passes through.
std::string json_escape_string(const std::string& s);
/// Serialized label set, e.g. {engine="DAOP",device="gpu"}; "" when empty.
/// Labels keep their given order (callers use a fixed order per family).
std::string serialize_label_set(const Labels& labels);

/// One immutable, copyable view of a registry's entire state, taken by
/// MetricsRegistry::snapshot(). This is the time-series recorder's
/// primitive: two snapshots subtract into a windowed delta, but it is
/// independently useful anywhere a results struct wants to carry registry
/// state without owning the registry.
struct MetricsSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    /// Counter/gauge series values, keyed by the serialized label set
    /// (deterministic iteration order, same convention as the registry).
    std::map<std::string, double> values;
    /// Histogram series, keyed by the serialized label set.
    std::map<std::string, HistogramData> histograms;
    /// Original labels per serialized key.
    std::map<std::string, Labels> label_sets;
  };
  std::map<std::string, Family> families;

  /// True when nothing non-zero is recorded: every counter/gauge value is 0
  /// and every histogram holds zero observations.
  bool zero() const;

  /// Windowed view of what happened since `prev`: counters subtract
  /// (monotonicity is CHECKed), gauges keep THIS snapshot's last value,
  /// histograms subtract bucket-wise. Series absent from `prev` (created
  /// inside the window) subtract against zero.
  MetricsSnapshot delta(const MetricsSnapshot& prev) const;
};

class Counter {
 public:
  void inc(double d = 1.0);
  double value() const;

 private:
  mutable std::mutex mu_;
  double v_ = 0.0;
};

class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  mutable std::mutex mu_;
  double v_ = 0.0;
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : data_(std::move(bounds)) {}

  void observe(double v);
  void merge(const HistogramData& other);
  HistogramData snapshot() const;

 private:
  mutable std::mutex mu_;
  HistogramData data_;
};

/// Registry of metric families. Thread-safe: instrument lookup and updates
/// may race freely; integer-valued counter increments stay exact (and thus
/// export byte-identically) regardless of thread interleaving.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Re-registering a name with a different instrument type
  /// (or a histogram with different buckets) is a hard error.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds,
                       const Labels& labels = {});

  /// Prometheus text exposition format (# HELP / # TYPE / series lines).
  std::string to_prometheus() const;
  /// JSON export: {"families":[{name,type,help,series:[...]}]}.
  std::string to_json() const;

  /// Copyable point-in-time view of every family/series. O(registry size);
  /// cheap at simulator scale (the registry holds aggregates, not samples).
  MetricsSnapshot snapshot() const;

  std::size_t family_count() const;
  bool empty() const { return family_count() == 0; }
  void clear();

 private:
  enum class Type { Counter, Gauge, Histogram };

  struct Family {
    Type type;
    std::string help;
    std::vector<double> bounds;  ///< histogram families only
    /// Keyed by the serialized label set for deterministic export order.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    /// Original labels per serialized key (for JSON export).
    std::map<std::string, Labels> label_sets;
  };

  Family& family(const std::string& name, const std::string& help, Type type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace daop::obs
