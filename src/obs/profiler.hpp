// Post-run profiler: collects per-run critical-path attribution, the
// overlap ledger, per-step breakdowns and per-(layer, expert) utilization
// heatmap data, and renders a deterministic profile report (JSON or aligned
// text tables).
//
// Strictly passive, like the rest of the observability plane: the profiler
// only ever reads already-recorded timeline intervals and already-computed
// times at session teardown, so a profiled run is bit-identical (times,
// energy, counters, trace bytes) to an unprofiled one — locked down by
// tests/obs/obs_determinism_test.cpp. The only side effect of attaching a
// profiler is that sessions turn on Timeline interval recording, which by
// contract never changes a scheduling decision.
//
// Report consumers: `daop_cli --profile-out`, `bench_fig8_timeline`, and
// scripts/perf_gate.py (which compares the JSON against checked-in
// baselines in bench/baselines/ with per-metric tolerances).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/attribution.hpp"
#include "sim/timeline.hpp"

namespace daop::obs {

/// One expert execution noted by a session (passive: times are the already
/// scheduled start/end). Feeds the per-layer × per-expert heatmap.
struct ExpertExec {
  int layer = 0;
  int expert = 0;
  bool on_gpu = false;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Aggregated utilization of one (layer, expert, device) cell.
struct HeatmapCell {
  int layer = 0;
  int expert = 0;
  bool on_gpu = false;
  long long execs = 0;
  double busy_s = 0.0;
};

/// One decode step's window and attribution.
struct ProfileStep {
  double start_s = 0.0;
  double end_s = 0.0;
  AttrBreakdown attr;
};

/// Everything the profiler derived from one run (or one shared-timeline
/// serving window, for which the per-phase/step/heatmap detail is absent).
struct RunProfile {
  std::string label;
  long long request = -1;
  double start_s = 0.0;
  double prefill_end_s = 0.0;
  double end_s = 0.0;
  /// Whole-window attribution ([start_s, end_s]).
  AttrBreakdown total;
  /// Prefill/decode phase splits; only when has_phases (per-run records).
  bool has_phases = false;
  AttrBreakdown prefill;
  AttrBreakdown decode;
  /// Per-decode-step attribution, capped at Options::max_steps_per_run.
  std::vector<ProfileStep> steps;
  int steps_omitted = 0;
  /// Sorted by (layer, expert, gpu-before-cpu).
  std::vector<HeatmapCell> heatmap;
  /// Engine counters as (name, value), in a fixed order
  /// (engines::counter_profile_metrics).
  std::vector<std::pair<std::string, double>> counters;
};

class Profiler {
 public:
  struct Options {
    /// Keep at most this many per-step breakdowns per run; further steps
    /// are still attributed in the phase totals but omitted from `steps`
    /// (steps_omitted counts them).
    int max_steps_per_run = 512;
  };

  Profiler() = default;
  explicit Profiler(const Options& options) : options_(options) {}

  /// Records one finished single-sequence run. `intervals` / `hazards` are
  /// the run timeline's recorded state; `step_windows` are the decode
  /// tokens' [start, end) windows in scheduling order.
  void record_run(std::string label, long long request,
                  const std::vector<sim::Interval>& intervals,
                  const std::vector<sim::Interval>& hazards, double start_s,
                  double prefill_end_s, double end_s,
                  const std::vector<std::pair<double, double>>& step_windows,
                  const std::vector<ExpertExec>& expert_execs,
                  std::vector<std::pair<std::string, double>> counters);

  /// Records a whole shared-timeline window (continuous-batching serving),
  /// where per-session phases/steps are not attributable to one run.
  void record_window(std::string label,
                     const std::vector<sim::Interval>& intervals,
                     const std::vector<sim::Interval>& hazards, double t0,
                     double t1);

  const std::vector<RunProfile>& runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }
  void clear() { runs_.clear(); }

  /// Attribution summed over all recorded runs' whole windows.
  AttrBreakdown aggregate() const;

  /// Deterministic JSON report (schema "daop-profile/1"): per-run windows,
  /// attribution, steps, heatmap and counters plus the aggregate. Two
  /// exports of the same state are byte-identical.
  std::string to_json() const;

  /// Aligned text tables (common/table): aggregate attribution + overlap
  /// ledger, then one row per run.
  std::string to_text() const;

 private:
  Options options_;
  std::vector<RunProfile> runs_;
};

}  // namespace daop::obs
