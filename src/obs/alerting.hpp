// Observability plane — SLO burn-rate alerting + incident correlation
// (daop::obs).
//
// Declarative SLO rules are evaluated per sealed window over a
// TimeSeriesRecorder's cluster-aggregate series, SRE multiwindow
// multi-burn-rate style: an alert opens at the first window end where BOTH
// the fast-window and slow-window burn rates exceed their thresholds, and
// closes when the fast window clears. Burn rate is
//     (bad fraction over the lookback) / (1 - objective)
// so burn == 1 consumes the error budget exactly at the sustainable rate.
// Detection latency is measured on the simulated clock: alert open time
// minus the start of the run of consecutive budget-burning windows
// (single-window burn >= 1) that led to it.
//
// The incident correlator then joins each alert episode against the
// recorder's causal event log (crashes, health ejections, degradation-ladder
// moves, loss episodes, sheds) and per-window signal spikes (hazard stall,
// shed counts) into a causal chain like
//     "hazard burst -> degrade L2 -> shed spike -> recovered".
//
// Everything here is a pure function of sealed recorder state — evaluation
// can never perturb a simulation.
#pragma once

#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace daop::obs {

struct SloRule {
  std::string name;

  enum class Kind {
    /// Good = histogram observations completing within `target_s`; the
    /// signal is a latency histogram family (e.g. daop_serving_ttft_seconds).
    kLatency,
    /// Good = total - bad; `signal` is the bad-event counter family and
    /// `total` the traffic counter family. All label sets sum together.
    kRatio,
  };
  Kind kind = Kind::kLatency;

  /// Histogram family (kLatency) or bad-event counter family (kRatio).
  std::string signal;
  /// Traffic counter family (kRatio only).
  std::string total;
  /// Latency threshold defining "good" (kLatency only). Snapped to a bucket
  /// bound at evaluation time (counts are only known per bucket).
  double target_s = 0.0;
  /// SLO objective: required good fraction, e.g. 0.95. Error budget is
  /// 1 - objective.
  double objective = 0.95;

  /// Multiwindow burn thresholds: the alert needs the burn rate over the
  /// last `fast_windows` windows >= fast_burn AND over the last
  /// `slow_windows` windows >= slow_burn. Fast catches pages quickly; slow
  /// suppresses blips.
  int fast_windows = 1;
  int slow_windows = 6;
  double fast_burn = 6.0;
  double slow_burn = 3.0;

  void validate() const;
};

/// Parses a rule spec: rules separated by ';', fields by ',', each field
/// `key=value`. Keys: name, kind (latency|ratio), signal, total, target,
/// objective, fast, slow, fast-burn, slow-burn. Example:
///   name=ttft,kind=latency,signal=daop_serving_ttft_seconds,target=2.5,
///   objective=0.9,fast=2,slow=6,fast-burn=4,slow-burn=2
std::vector<SloRule> parse_slo_rules(const std::string& spec);

/// The stock rule set used when --slo-rules is not given: TTFT and e2e
/// latency SLOs plus a shed-ratio SLO, tuned so a calm in-budget run stays
/// silent and saturation/chaos runs page.
std::vector<SloRule> default_slo_rules();

/// One open or close decision, timestamped at a window end.
struct AlertEvent {
  std::string rule;
  double time = 0.0;
  bool open = false;  ///< true = alert opened, false = closed
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

/// One contiguous alert episode (open .. close, or open .. end of run).
struct AlertEpisode {
  std::string rule;
  double open_time = 0.0;
  double close_time = 0.0;
  bool closed = false;
  /// Simulated seconds from the start of the consecutive budget-burning
  /// window run to the open decision.
  double detection_latency_s = 0.0;
  double peak_fast_burn = 0.0;
};

struct AlertReport {
  std::vector<SloRule> rules;
  std::vector<AlertEvent> events;
  std::vector<AlertEpisode> episodes;
};

/// Evaluates rules over the recorder's cluster-aggregate windows. The
/// recorder must be finalized.
AlertReport evaluate_slo_rules(const std::vector<SloRule>& rules,
                               const TimeSeriesRecorder& rec);

/// One correlated incident: an alert episode joined with the causal events
/// and signal spikes observed in [open - lookback, close].
struct Incident {
  std::string rule;
  double open_time = 0.0;
  double close_time = 0.0;
  bool closed = false;
  double detection_latency_s = 0.0;
  /// Chronological contributing causes, e.g. "t=4.00 cluster crash node 1".
  std::vector<std::string> causes;
  /// Deduplicated causal chain, e.g.
  /// "crash -> eject -> degrade -> shed spike -> recovered".
  std::string chain;
};

std::vector<Incident> correlate_incidents(const AlertReport& report,
                                          const TimeSeriesRecorder& rec,
                                          double lookback_s);

/// Sealed `daop-tseries/1` JSON export: schema header, per-channel and
/// aggregate dense series arrays, causal event log, alert report and
/// incidents. Deterministic byte-for-byte for a given recorder state (map
/// ordering + shared format_metric_value printing). `report` and
/// `incidents` may be empty.
std::string to_tseries_json(const TimeSeriesRecorder& rec,
                            const AlertReport& report,
                            const std::vector<Incident>& incidents);

/// Human-oriented text report: per-channel sparklines for every counter
/// series and histogram p90, plus alert-episode and incident tables.
std::string to_tseries_text(const TimeSeriesRecorder& rec,
                            const AlertReport& report,
                            const std::vector<Incident>& incidents);

}  // namespace daop::obs
