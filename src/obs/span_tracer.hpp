// Observability plane — per-request span tracing (daop::obs).
//
// A SpanTracer collects request-scoped logical events (gate decisions,
// per-device expert executions, migrations, prediction issues, pre-calc
// start/commit/discard, serving queue waits, ...) on named tracks, plus flow
// events linking cause to effect (a prediction to the pre-calculations it
// triggered, a pre-calculation to the execution that consumed it). Spans are
// recorded from times the engines already computed — tracing is strictly
// passive and can never perturb a simulated schedule.
//
// sim/trace_export renders a tracer's tracks and flows into the Chrome trace
// alongside the timeline's resource lanes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace daop::obs {

struct TraceSpan {
  std::uint32_t track = 0;  ///< index into SpanTracer::tracks()
  std::string name;
  double start = 0.0;       ///< seconds; start == end makes an instant event
  double end = 0.0;
  long long request = -1;   ///< serving request id; -1 outside serving
  std::uint64_t id = 0;     ///< 1-based; referenced by flows
};

/// Directed arrow between two recorded spans (by span id).
struct TraceFlow {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::string name;
};

class SpanTracer {
 public:
  /// Get-or-create a named track; returns its stable index.
  std::uint32_t track(const std::string& name);

  /// Records a span on `track`; returns its id (always non-zero).
  std::uint64_t span(std::uint32_t track, std::string name, double start,
                     double end);
  /// Zero-duration span (rendered as an instant event).
  std::uint64_t instant(std::uint32_t track, std::string name, double t) {
    return span(track, std::move(name), t, t);
  }
  /// Links two previously recorded spans with a flow arrow.
  void flow(std::uint64_t from, std::uint64_t to, std::string name = {});

  /// Request scope: every subsequent span carries this id (serving sets it
  /// per request; -1 clears it).
  void set_request(long long id) { request_ = id; }
  long long request() const { return request_; }

  /// Time offset added to every recorded span; the serving harness sets it
  /// to each request's service-start time so engine-local spans (which start
  /// at t=0) land on the serving clock.
  void set_time_offset(double s) { offset_ = s; }
  double time_offset() const { return offset_; }

  const std::vector<std::string>& tracks() const { return track_names_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceFlow>& flows() const { return flows_; }

  void clear();

 private:
  std::vector<std::string> track_names_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceFlow> flows_;
  long long request_ = -1;
  double offset_ = 0.0;
};

/// RAII request scope: applies a request id (and optionally a time offset)
/// to a tracer for the duration of a block, restoring the previous values on
/// exit — including via exception, so a thrown or aborted request cannot
/// leak its id/offset into spans recorded afterwards. A null tracer makes
/// the scope an exact no-op.
class RequestScope {
 public:
  RequestScope(SpanTracer* tracer, long long request) : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    prev_request_ = tracer_->request();
    prev_offset_ = tracer_->time_offset();
    tracer_->set_request(request);
  }
  RequestScope(SpanTracer* tracer, long long request, double time_offset)
      : RequestScope(tracer, request) {
    if (tracer_ != nullptr) tracer_->set_time_offset(time_offset);
  }
  ~RequestScope() {
    if (tracer_ == nullptr) return;
    tracer_->set_request(prev_request_);
    tracer_->set_time_offset(prev_offset_);
  }

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  SpanTracer* tracer_;
  long long prev_request_ = -1;
  double prev_offset_ = 0.0;
};

}  // namespace daop::obs
