#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace daop::obs {
namespace {

/// Deterministic shortest-ish double formatting for the JSON report. %.12g
/// round-trips every value the simulator produces at the tolerances the
/// perf gate uses, and prints integers without a fractional part.
std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_attr_json(std::string& out, const AttrBreakdown& a) {
  out += "{\"window_s\":" + fmt_num(a.window_s) +
         ",\"idle_s\":" + fmt_num(a.idle_s) +
         ",\"exposed_total_s\":" + fmt_num(a.exposed_total_s()) +
         ",\"serialized_s\":" + fmt_num(a.serialized_s()) +
         ",\"hidden_total_s\":" + fmt_num(a.hidden_total_s()) +
         ",\"categories\":{";
  for (int c = 0; c < kNumAttrCategories; ++c) {
    const auto cat = static_cast<AttrCategory>(c);
    if (c != 0) out += ",";
    out += std::string("\"") + attr_category_name(cat) + "\":{\"busy_s\":" +
           fmt_num(a.busy(cat)) + ",\"exposed_s\":" + fmt_num(a.exposed(cat)) +
           ",\"hidden_s\":" + fmt_num(a.hidden(cat)) + "}";
  }
  out += "}}";
}

void append_counters_json(
    std::string& out, const std::vector<std::pair<std::string, double>>& cs) {
  out += "{";
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(cs[i].first) + "\":" + fmt_num(cs[i].second);
  }
  out += "}";
}

}  // namespace

void Profiler::record_run(
    std::string label, long long request,
    const std::vector<sim::Interval>& intervals,
    const std::vector<sim::Interval>& hazards, double start_s,
    double prefill_end_s, double end_s,
    const std::vector<std::pair<double, double>>& step_windows,
    const std::vector<ExpertExec>& expert_execs,
    std::vector<std::pair<std::string, double>> counters) {
  DAOP_CHECK_GE(prefill_end_s, start_s);
  DAOP_CHECK_GE(end_s, prefill_end_s);
  RunProfile p;
  p.label = std::move(label);
  p.request = request;
  p.start_s = start_s;
  p.prefill_end_s = prefill_end_s;
  p.end_s = end_s;
  p.total = attribute_window(intervals, hazards, start_s, end_s);
  p.has_phases = true;
  p.prefill = attribute_window(intervals, hazards, start_s, prefill_end_s);
  p.decode = attribute_window(intervals, hazards, prefill_end_s, end_s);
  for (const auto& [s, e] : step_windows) {
    if (static_cast<int>(p.steps.size()) >= options_.max_steps_per_run) {
      ++p.steps_omitted;
      continue;
    }
    ProfileStep step;
    step.start_s = s;
    step.end_s = e;
    step.attr = attribute_window(intervals, hazards, s, e);
    p.steps.push_back(std::move(step));
  }
  // (layer, expert, device) -> utilization. std::map keeps the report
  // ordering deterministic; gpu (false key) sorts before cpu via !on_gpu.
  std::map<std::tuple<int, int, bool>, HeatmapCell> cells;
  for (const ExpertExec& x : expert_execs) {
    HeatmapCell& cell = cells[{x.layer, x.expert, !x.on_gpu}];
    cell.layer = x.layer;
    cell.expert = x.expert;
    cell.on_gpu = x.on_gpu;
    ++cell.execs;
    cell.busy_s += x.end_s - x.start_s;
  }
  p.heatmap.reserve(cells.size());
  for (auto& [key, cell] : cells) p.heatmap.push_back(cell);
  p.counters = std::move(counters);
  runs_.push_back(std::move(p));
}

void Profiler::record_window(std::string label,
                             const std::vector<sim::Interval>& intervals,
                             const std::vector<sim::Interval>& hazards,
                             double t0, double t1) {
  RunProfile p;
  p.label = std::move(label);
  p.start_s = t0;
  p.prefill_end_s = t0;
  p.end_s = t1;
  p.total = attribute_window(intervals, hazards, t0, t1);
  p.has_phases = false;
  runs_.push_back(std::move(p));
}

AttrBreakdown Profiler::aggregate() const {
  AttrBreakdown agg;
  for (const RunProfile& p : runs_) agg.add(p.total);
  return agg;
}

std::string Profiler::to_json() const {
  std::string out = "{\"schema\":\"daop-profile/1\",\"runs\":[";
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const RunProfile& p = runs_[i];
    if (i != 0) out += ",";
    out += "{\"label\":\"" + json_escape(p.label) +
           "\",\"request\":" + fmt_num(static_cast<double>(p.request)) +
           ",\"window\":{\"start_s\":" + fmt_num(p.start_s) +
           ",\"prefill_end_s\":" + fmt_num(p.prefill_end_s) +
           ",\"end_s\":" + fmt_num(p.end_s) +
           ",\"makespan_s\":" + fmt_num(p.end_s - p.start_s) + "}";
    out += ",\"attribution\":{\"total\":";
    append_attr_json(out, p.total);
    if (p.has_phases) {
      out += ",\"prefill\":";
      append_attr_json(out, p.prefill);
      out += ",\"decode\":";
      append_attr_json(out, p.decode);
    }
    out += "}";
    out += ",\"steps\":[";
    for (std::size_t s = 0; s < p.steps.size(); ++s) {
      if (s != 0) out += ",";
      out += "{\"start_s\":" + fmt_num(p.steps[s].start_s) +
             ",\"end_s\":" + fmt_num(p.steps[s].end_s) + ",\"attribution\":";
      append_attr_json(out, p.steps[s].attr);
      out += "}";
    }
    out += "],\"steps_omitted\":" +
           fmt_num(static_cast<double>(p.steps_omitted));
    out += ",\"heatmap\":[";
    for (std::size_t h = 0; h < p.heatmap.size(); ++h) {
      const HeatmapCell& c = p.heatmap[h];
      if (h != 0) out += ",";
      out += "{\"layer\":" + fmt_num(c.layer) +
             ",\"expert\":" + fmt_num(c.expert) + ",\"device\":\"" +
             (c.on_gpu ? "gpu" : "cpu") +
             "\",\"execs\":" + fmt_num(static_cast<double>(c.execs)) +
             ",\"busy_s\":" + fmt_num(c.busy_s) + "}";
    }
    out += "],\"counters\":";
    append_counters_json(out, p.counters);
    out += "}";
  }
  out += "],\"aggregate\":{\"runs\":" +
         fmt_num(static_cast<double>(runs_.size()));
  const AttrBreakdown agg = aggregate();
  out += ",\"makespan_s\":" + fmt_num(agg.window_s) + ",\"attribution\":";
  append_attr_json(out, agg);
  // Counters summed by name over runs, emitted in first-seen order (all
  // session runs share engines::counter_profile_metrics' fixed order).
  std::vector<std::pair<std::string, double>> totals;
  for (const RunProfile& p : runs_) {
    for (const auto& [name, value] : p.counters) {
      auto it = std::find_if(totals.begin(), totals.end(),
                             [&](const auto& kv) { return kv.first == name; });
      if (it == totals.end()) {
        totals.emplace_back(name, value);
      } else {
        it->second += value;
      }
    }
  }
  out += ",\"counters\":";
  append_counters_json(out, totals);
  out += "}}\n";
  return out;
}

std::string Profiler::to_text() const {
  const AttrBreakdown agg = aggregate();
  std::string out = "Profile: " + std::to_string(runs_.size()) +
                    " run(s), makespan " + fmt_f(agg.window_s, 4) + " s\n\n";

  TextTable attr({"category", "busy s", "exposed s", "hidden s",
                  "% of makespan"});
  for (int c = 0; c < kNumAttrCategories; ++c) {
    const auto cat = static_cast<AttrCategory>(c);
    attr.add_row({attr_category_name(cat), fmt_f(agg.busy(cat), 4),
                  fmt_f(agg.exposed(cat), 4), fmt_f(agg.hidden(cat), 4),
                  agg.window_s > 0.0
                      ? fmt_pct(agg.exposed(cat) / agg.window_s)
                      : fmt_pct(0.0)});
  }
  attr.add_rule();
  attr.add_row({"idle", "", fmt_f(agg.idle_s, 4), "",
                agg.window_s > 0.0 ? fmt_pct(agg.idle_s / agg.window_s)
                                   : fmt_pct(0.0)});
  attr.add_row({"critical path", "", fmt_f(agg.exposed_total_s(), 4), "", ""});
  attr.add_row({"serialized bound", fmt_f(agg.serialized_s(), 4), "", "", ""});
  attr.add_row(
      {"overlap saved", "", "", fmt_f(agg.hidden_total_s(), 4), ""});
  out += attr.render();

  TextTable per_run({"run", "label", "window s", "critical s", "idle s",
                     "gpu expert s", "cpu expert s", "pcie s", "hazard s",
                     "hidden s"});
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    const RunProfile& p = runs_[i];
    per_run.add_row(
        {std::to_string(i), p.label, fmt_f(p.total.window_s, 4),
         fmt_f(p.total.exposed_total_s(), 4), fmt_f(p.total.idle_s, 4),
         fmt_f(p.total.exposed(AttrCategory::GpuExpert), 4),
         fmt_f(p.total.exposed(AttrCategory::CpuExpert), 4),
         fmt_f(p.total.exposed(AttrCategory::PcieMigration), 4),
         fmt_f(p.total.exposed(AttrCategory::HazardStall), 4),
         fmt_f(p.total.hidden_total_s(), 4)});
  }
  out += "\n" + per_run.render();
  return out;
}

}  // namespace daop::obs
