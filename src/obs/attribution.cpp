#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace daop::obs {
namespace {

bool tag_contains(const std::string& tag, const char* needle) {
  return tag.find(needle) != std::string::npos;
}

/// One interval clipped to the attribution window.
struct Seg {
  double start = 0.0;
  double end = 0.0;
  AttrCategory cat = AttrCategory::GateAttn;
};

}  // namespace

const char* attr_category_name(AttrCategory c) {
  switch (c) {
    case AttrCategory::GpuExpert: return "gpu_expert";
    case AttrCategory::GateAttn: return "gate_attn";
    case AttrCategory::CpuExpert: return "cpu_expert";
    case AttrCategory::PcieMigration: return "pcie_migration";
    case AttrCategory::HazardStall: return "hazard_stall";
  }
  return "?";
}

AttrCategory attribute_category(const sim::Interval& iv) {
  switch (iv.res) {
    case sim::Res::GpuStream:
      // Engines tag expert FFN work "... expert ..." / "... fallback";
      // everything else on the stream is attention/gate/shared compute.
      return tag_contains(iv.tag, "expert") || tag_contains(iv.tag, "fallback")
                 ? AttrCategory::GpuExpert
                 : AttrCategory::GateAttn;
    case sim::Res::CpuPool:
      return AttrCategory::CpuExpert;
    case sim::Res::PcieH2D:
    case sim::Res::PcieD2H:
      return AttrCategory::PcieMigration;
  }
  return AttrCategory::GateAttn;
}

double AttrBreakdown::exposed_total_s() const {
  double s = 0.0;
  for (double v : exposed_s) s += v;
  return s;
}

double AttrBreakdown::serialized_s() const {
  double s = 0.0;
  for (double v : busy_s) s += v;
  return s;
}

void AttrBreakdown::add(const AttrBreakdown& o) {
  for (int i = 0; i < kNumAttrCategories; ++i) {
    busy_s[static_cast<std::size_t>(i)] +=
        o.busy_s[static_cast<std::size_t>(i)];
    exposed_s[static_cast<std::size_t>(i)] +=
        o.exposed_s[static_cast<std::size_t>(i)];
  }
  idle_s += o.idle_s;
  window_s += o.window_s;
}

AttrBreakdown attribute_window(const std::vector<sim::Interval>& intervals,
                               const std::vector<sim::Interval>& hazards,
                               double t0, double t1) {
  DAOP_CHECK_MSG(std::isfinite(t0) && std::isfinite(t1),
                 "attribution window must be finite");
  DAOP_CHECK_MSG(t1 >= t0, "attribution window must not be inverted");
  AttrBreakdown out;
  out.window_s = t1 - t0;
  if (t1 <= t0) return out;

  // Clip each occupancy / hazard interval to the window, bucketed per
  // resource. Within one resource the Timeline schedules back-to-front
  // monotonically, but clipping + defensive sorting keeps the sweep correct
  // for any caller-assembled interval set too.
  std::array<std::vector<Seg>, sim::kNumRes> occ;
  std::array<std::vector<Seg>, sim::kNumRes> haz;
  auto clip_into = [&](const std::vector<sim::Interval>& src,
                       std::array<std::vector<Seg>, sim::kNumRes>& dst,
                       bool classify) {
    for (const sim::Interval& iv : src) {
      const double s = std::max(iv.start, t0);
      const double e = std::min(iv.end, t1);
      if (e <= s) continue;
      Seg seg;
      seg.start = s;
      seg.end = e;
      if (classify) seg.cat = attribute_category(iv);
      dst[static_cast<std::size_t>(iv.res)].push_back(seg);
    }
  };
  clip_into(intervals, occ, /*classify=*/true);
  clip_into(hazards, haz, /*classify=*/false);
  auto by_start = [](const Seg& a, const Seg& b) { return a.start < b.start; };
  for (int r = 0; r < sim::kNumRes; ++r) {
    std::stable_sort(occ[static_cast<std::size_t>(r)].begin(),
                     occ[static_cast<std::size_t>(r)].end(), by_start);
    std::stable_sort(haz[static_cast<std::size_t>(r)].begin(),
                     haz[static_cast<std::size_t>(r)].end(), by_start);
  }

  // Elementary segments: between two consecutive boundary points no
  // interval starts or ends, so each resource's state is constant and can
  // be probed at the segment midpoint with exact comparisons.
  std::vector<double> pts;
  pts.reserve(2 * (intervals.size() + hazards.size()) + 2);
  pts.push_back(t0);
  pts.push_back(t1);
  for (const auto& per_res : {std::cref(occ), std::cref(haz)}) {
    for (const auto& segs : per_res.get()) {
      for (const Seg& s : segs) {
        pts.push_back(s.start);
        pts.push_back(s.end);
      }
    }
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

  std::array<std::size_t, sim::kNumRes> cur{};
  std::array<std::size_t, sim::kNumRes> cur_h{};
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    const double a = pts[i];
    const double b = pts[i + 1];
    const double len = b - a;
    if (len <= 0.0) continue;
    const double mid = a + len * 0.5;
    // Resources in upstream-first order (enum order): the critical path at
    // this instant belongs to the first busy one.
    bool exposed_charged = false;
    for (int r = 0; r < sim::kNumRes; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      auto& segs = occ[ri];
      std::size_t& c = cur[ri];
      while (c < segs.size() && segs[c].end <= mid) ++c;
      if (c >= segs.size() || segs[c].start > mid) continue;  // idle resource
      auto& hsegs = haz[ri];
      std::size_t& ch = cur_h[ri];
      while (ch < hsegs.size() && hsegs[ch].end <= mid) ++ch;
      const bool in_hazard_tail =
          ch < hsegs.size() && hsegs[ch].start <= mid;
      const AttrCategory cat =
          in_hazard_tail ? AttrCategory::HazardStall : segs[c].cat;
      out.busy_s[static_cast<std::size_t>(cat)] += len;
      if (!exposed_charged) {
        out.exposed_s[static_cast<std::size_t>(cat)] += len;
        exposed_charged = true;
      }
    }
    if (!exposed_charged) out.idle_s += len;
  }
  return out;
}

}  // namespace daop::obs
