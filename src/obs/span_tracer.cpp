#include "obs/span_tracer.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::obs {

std::uint32_t SpanTracer::track(const std::string& name) {
  const auto it =
      std::find(track_names_.begin(), track_names_.end(), name);
  if (it != track_names_.end()) {
    return static_cast<std::uint32_t>(it - track_names_.begin());
  }
  track_names_.push_back(name);
  return static_cast<std::uint32_t>(track_names_.size() - 1);
}

std::uint64_t SpanTracer::span(std::uint32_t track, std::string name,
                               double start, double end) {
  DAOP_CHECK_MSG(track < track_names_.size(),
                 "span on unregistered track " << track);
  DAOP_CHECK_MSG(end >= start, "span '" << name << "' ends before it starts");
  TraceSpan s;
  s.track = track;
  s.name = std::move(name);
  s.start = start + offset_;
  s.end = end + offset_;
  s.request = request_;
  s.id = static_cast<std::uint64_t>(spans_.size()) + 1;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void SpanTracer::flow(std::uint64_t from, std::uint64_t to, std::string name) {
  const auto n = static_cast<std::uint64_t>(spans_.size());
  DAOP_CHECK_MSG(from >= 1 && from <= n && to >= 1 && to <= n,
                 "flow references unknown span ids " << from << " -> " << to);
  flows_.push_back(TraceFlow{from, to, std::move(name)});
}

void SpanTracer::clear() {
  track_names_.clear();
  spans_.clear();
  flows_.clear();
  request_ = -1;
  offset_ = 0.0;
}

}  // namespace daop::obs
