// Critical-path time attribution over recorded timeline intervals.
//
// The paper's speed claim is an overlap argument: DAOP wins because CPU
// expert execution and PCIe traffic hide under GPU compute (§IV-C, Fig. 8).
// This module turns a finished run's recorded sim::Interval occupancy into a
// per-category breakdown that makes that argument measurable:
//
//   - busy_s[cat]     total seconds resource(s) spent on category work
//   - exposed_s[cat]  seconds the category sat on the critical path (it was
//                     the most-upstream busy resource at that instant)
//   - hidden          busy - exposed: work fully overlapped under something
//                     more critical — the seconds pre-calculation/prefetch
//                     actually saved versus running the same ops serialized
//   - idle_s          wall time inside the window with every resource idle
//
// Attribution is a sweep over the elementary segments induced by interval
// boundaries, so conservation holds exactly: sum(exposed) + idle == window.
// Strictly passive: inputs are copies of already-recorded state; nothing
// here can perturb a schedule.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "sim/timeline.hpp"

namespace daop::obs {

/// Work categories a recorded interval is attributed to. HazardStall is
/// never produced by classify_interval — it is the reassignment applied to
/// the fault-injected tail of a perturbed op (Timeline::hazard_intervals),
/// so stalls are charged to the hazard, not to the op that suffered it.
enum class AttrCategory : int {
  GpuExpert = 0,   ///< expert FFN compute on the GPU stream
  GateAttn,        ///< non-MoE GPU work: attention, gate, shared layers
  CpuExpert,       ///< expert execution on the CPU pool (incl. pre-calc)
  PcieMigration,   ///< weight and activation traffic, either direction
  HazardStall,     ///< fault-injected delay tails
};

inline constexpr int kNumAttrCategories = 5;

/// Stable snake_case name used in reports and perf-gate baselines.
const char* attr_category_name(AttrCategory c);

/// Maps one recorded interval to its category from its resource + tag.
AttrCategory attribute_category(const sim::Interval& iv);

/// Per-window attribution result. All seconds are clipped to the window.
struct AttrBreakdown {
  std::array<double, kNumAttrCategories> busy_s{};
  std::array<double, kNumAttrCategories> exposed_s{};
  double idle_s = 0.0;
  double window_s = 0.0;

  double busy(AttrCategory c) const {
    return busy_s[static_cast<std::size_t>(c)];
  }
  double exposed(AttrCategory c) const {
    return exposed_s[static_cast<std::size_t>(c)];
  }
  /// Seconds of category work fully overlapped under more-critical work.
  double hidden(AttrCategory c) const { return busy(c) - exposed(c); }

  /// Sum of exposed seconds == critical-path (active) time in the window.
  double exposed_total_s() const;
  /// Sum of busy seconds: the same-run serialized lower bound — what this
  /// window would cost if no two resources ever overlapped.
  double serialized_s() const;
  /// Overlap ledger: seconds saved versus the serialized lower bound.
  double hidden_total_s() const { return serialized_s() - exposed_total_s(); }

  void add(const AttrBreakdown& o);
};

/// Attributes the window [t0, t1] (t1 >= t0) of a recorded timeline.
/// `intervals` / `hazards` are Timeline::intervals() / hazard_intervals();
/// intervals on one resource must be non-overlapping (the Timeline
/// guarantees this). At each instant the critical path is charged to the
/// most-upstream busy resource (GPU stream > CPU pool > PCIe H2D > PCIe
/// D2H); if that resource is inside a hazard tail at the instant, the
/// exposure is charged to HazardStall. Busy time is accounted for every
/// active resource, so hidden(cat) = busy - exposed is the overlap credit.
AttrBreakdown attribute_window(const std::vector<sim::Interval>& intervals,
                               const std::vector<sim::Interval>& hazards,
                               double t0, double t1);

}  // namespace daop::obs
