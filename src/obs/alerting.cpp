#include "obs/alerting.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"

namespace daop::obs {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

double parse_num(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  DAOP_CHECK_MSG(end != nullptr && *end == '\0' && !v.empty(),
                 "slo rule field '" << key << "': bad number '" << v << "'");
  return x;
}

/// Per-window bad/total pair for one rule.
struct WindowSignal {
  double bad = 0.0;
  double total = 0.0;
};

WindowSignal rule_signal(const SloRule& rule, const SeriesWindow& w) {
  WindowSignal s;
  const auto it = w.delta.families.find(rule.signal);
  if (rule.kind == SloRule::Kind::kLatency) {
    if (it == w.delta.families.end()) return s;
    for (const auto& [key, h] : it->second.histograms) {
      s.total += static_cast<double>(h.total);
      // "Good" = observations in buckets whose upper bound fits the target;
      // the target is effectively snapped down to a bucket bound.
      long long good = 0;
      for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
        if (h.upper_bounds[i] <= rule.target_s + 1e-12) {
          good += h.counts[i];
        } else {
          break;
        }
      }
      s.bad += static_cast<double>(h.total - good);
    }
    return s;
  }
  if (it != w.delta.families.end()) {
    for (const auto& [key, v] : it->second.values) s.bad += v;
  }
  const auto tit = w.delta.families.find(rule.total);
  if (tit != w.delta.families.end()) {
    for (const auto& [key, v] : tit->second.values) s.total += v;
  }
  return s;
}

/// Burn rate over signals[i-k+1 .. i] (clipped at 0): bad-fraction divided
/// by the error budget. Zero traffic burns nothing.
double burn_over(const std::vector<WindowSignal>& sig, std::size_t i,
                 int k, double objective) {
  double bad = 0.0, total = 0.0;
  const std::size_t lo = i + 1 >= static_cast<std::size_t>(k)
                             ? i + 1 - static_cast<std::size_t>(k)
                             : 0;
  for (std::size_t j = lo; j <= i; ++j) {
    bad += sig[j].bad;
    total += sig[j].total;
  }
  if (total <= 0.0) return 0.0;
  const double budget = 1.0 - objective;
  return (bad / total) / budget;
}

std::string jstr(const std::string& s) {
  return "\"" + json_escape_string(s) + "\"";
}

std::string num(double v) {
  if (std::isnan(v)) return "null";
  return format_metric_value(v);
}

std::string fmt2(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void append_rule_json(std::string& out, const SloRule& r) {
  out += "{\"name\":" + jstr(r.name) + ",\"kind\":" +
         jstr(r.kind == SloRule::Kind::kLatency ? "latency" : "ratio") +
         ",\"signal\":" + jstr(r.signal);
  if (r.kind == SloRule::Kind::kRatio) out += ",\"total\":" + jstr(r.total);
  if (r.kind == SloRule::Kind::kLatency) {
    out += ",\"target_s\":" + num(r.target_s);
  }
  out += ",\"objective\":" + num(r.objective) +
         ",\"fast_windows\":" + num(r.fast_windows) +
         ",\"slow_windows\":" + num(r.slow_windows) +
         ",\"fast_burn\":" + num(r.fast_burn) +
         ",\"slow_burn\":" + num(r.slow_burn) + "}";
}

void append_channel_json(std::string& out, const std::string& name,
                         const std::vector<SeriesWindow>& windows) {
  out += "{\"name\":" + jstr(name) + ",\"windows\":[";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"index\":" + num(static_cast<double>(windows[i].index)) +
           ",\"start\":" + num(windows[i].start) +
           ",\"end\":" + num(windows[i].end) + "}";
  }
  out += "],";
  const auto index = TimeSeriesRecorder::series_index(windows);
  auto value_at = [&](const SeriesWindow& w, const std::string& family,
                      const std::string& key) {
    const auto it = w.delta.families.find(family);
    if (it == w.delta.families.end()) return 0.0;
    const auto vit = it->second.values.find(key);
    return vit == it->second.values.end() ? 0.0 : vit->second;
  };
  auto hist_at = [&](const SeriesWindow& w, const std::string& family,
                     const std::string& key) -> const HistogramData* {
    const auto it = w.delta.families.find(family);
    if (it == w.delta.families.end()) return nullptr;
    const auto hit = it->second.histograms.find(key);
    return hit == it->second.histograms.end() ? nullptr : &hit->second;
  };
  auto emit_scalar = [&](MetricsSnapshot::Kind kind, const char* section) {
    out += std::string("\"") + section + "\":[";
    bool first = true;
    for (const auto& s : index) {
      if (s.kind != kind) continue;
      for (const std::string& key : s.keys) {
        if (!first) out += ",";
        first = false;
        out += "{\"name\":" + jstr(s.family) + ",\"labels\":" + jstr(key) +
               ",\"values\":[";
        for (std::size_t i = 0; i < windows.size(); ++i) {
          if (i != 0) out += ",";
          out += num(value_at(windows[i], s.family, key));
        }
        out += "]}";
      }
    }
    out += "]";
  };
  emit_scalar(MetricsSnapshot::Kind::kCounter, "counters");
  out += ",";
  emit_scalar(MetricsSnapshot::Kind::kGauge, "gauges");
  out += ",\"histograms\":[";
  bool first = true;
  for (const auto& s : index) {
    if (s.kind != MetricsSnapshot::Kind::kHistogram) continue;
    for (const std::string& key : s.keys) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":" + jstr(s.family) + ",\"labels\":" + jstr(key);
      auto emit_stat = [&](const char* stat, auto fn) {
        out += std::string(",\"") + stat + "\":[";
        for (std::size_t i = 0; i < windows.size(); ++i) {
          if (i != 0) out += ",";
          const HistogramData* h = hist_at(windows[i], s.family, key);
          out += fn(h);
        }
        out += "]";
      };
      emit_stat("count", [&](const HistogramData* h) {
        return num(h == nullptr ? 0.0 : static_cast<double>(h->total));
      });
      emit_stat("sum", [&](const HistogramData* h) {
        return num(h == nullptr ? 0.0 : h->sum);
      });
      for (double q : {0.5, 0.9, 0.99}) {
        char stat[16];
        std::snprintf(stat, sizeof(stat), "p%g", q * 100.0);
        emit_stat(stat, [&](const HistogramData* h) {
          return num(h == nullptr
                         ? std::numeric_limits<double>::quiet_NaN()
                         : histogram_quantile(*h, q));
        });
      }
      out += "}";
    }
  }
  out += "]}";
}

/// Sparkline over values normalized to their max; NaN renders as a space.
std::string sparkline(const std::vector<double>& values) {
  static const char* kGlyphs[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double mx = 0.0;
  for (double v : values) {
    if (std::isfinite(v)) mx = std::max(mx, v);
  }
  std::string out;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += " ";
      continue;
    }
    int level = 0;
    if (mx > 0.0) {
      level = static_cast<int>(v / mx * 7.0 + 0.5);
      level = std::max(0, std::min(7, level));
    }
    out += kGlyphs[level];
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Rules

void SloRule::validate() const {
  DAOP_CHECK_MSG(!name.empty(), "slo rule needs a name");
  DAOP_CHECK_MSG(!signal.empty(),
                 "slo rule '" << name << "' needs a signal family");
  if (kind == Kind::kRatio) {
    DAOP_CHECK_MSG(!total.empty(),
                   "ratio rule '" << name << "' needs a total family");
  } else {
    DAOP_CHECK_MSG(target_s > 0.0,
                   "latency rule '" << name << "' needs target > 0");
  }
  DAOP_CHECK_MSG(objective > 0.0 && objective < 1.0,
                 "slo rule '" << name << "': objective must be in (0,1)");
  DAOP_CHECK_MSG(fast_windows >= 1 && slow_windows >= fast_windows,
                 "slo rule '" << name << "': need slow >= fast >= 1 windows");
  DAOP_CHECK_MSG(fast_burn > 0.0 && slow_burn > 0.0,
                 "slo rule '" << name << "': burn thresholds must be > 0");
}

std::vector<SloRule> parse_slo_rules(const std::string& spec) {
  std::vector<SloRule> rules;
  for (const std::string& raw : split(spec, ';')) {
    const std::string rule_s = trim(raw);
    if (rule_s.empty()) continue;
    SloRule r;
    for (const std::string& raw_field : split(rule_s, ',')) {
      const std::string field = trim(raw_field);
      if (field.empty()) continue;
      const std::size_t eq = field.find('=');
      DAOP_CHECK_MSG(eq != std::string::npos,
                     "slo rule field '" << field << "' is not key=value");
      const std::string key = trim(field.substr(0, eq));
      const std::string value = trim(field.substr(eq + 1));
      if (key == "name") {
        r.name = value;
      } else if (key == "kind") {
        if (value == "latency") {
          r.kind = SloRule::Kind::kLatency;
        } else if (value == "ratio") {
          r.kind = SloRule::Kind::kRatio;
        } else {
          DAOP_CHECK_MSG(false, "slo rule kind '" << value
                                                  << "' (latency|ratio)");
        }
      } else if (key == "signal") {
        r.signal = value;
      } else if (key == "total") {
        r.total = value;
      } else if (key == "target") {
        r.target_s = parse_num(key, value);
      } else if (key == "objective") {
        r.objective = parse_num(key, value);
      } else if (key == "fast") {
        r.fast_windows = static_cast<int>(parse_num(key, value));
      } else if (key == "slow") {
        r.slow_windows = static_cast<int>(parse_num(key, value));
      } else if (key == "fast-burn") {
        r.fast_burn = parse_num(key, value);
      } else if (key == "slow-burn") {
        r.slow_burn = parse_num(key, value);
      } else {
        DAOP_CHECK_MSG(false, "unknown slo rule key '" << key << "'");
      }
    }
    r.validate();
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<SloRule> default_slo_rules() {
  std::vector<SloRule> rules;
  {
    // 90% of first tokens within 10 s. The target leaves headroom over the
    // intrinsic short-prompt prefill time (~2.5 s simulated for 64 tokens)
    // so an in-budget run never pages on service time alone; queueing
    // delay, crash failover and degraded replicas are what breach it. Fast
    // window pages when >= 40% of recent traffic breaches, gated by a
    // sustained slow window. Operators with longer prompts calibrate their
    // own target via --slo-rules.
    SloRule r;
    r.name = "ttft-burn";
    r.kind = SloRule::Kind::kLatency;
    r.signal = "daop_serving_ttft_seconds";
    r.target_s = 10.0;
    r.objective = 0.9;
    r.fast_windows = 2;
    r.slow_windows = 6;
    r.fast_burn = 4.0;
    r.slow_burn = 2.0;
    rules.push_back(std::move(r));
  }
  {
    // 99% of requests not shed. A >= 10% shed fraction in the fast window
    // (10x budget) with sustained slow-window burn pages.
    SloRule r;
    r.name = "shed-burn";
    r.kind = SloRule::Kind::kRatio;
    r.signal = "daop_requests_shed_total";
    r.total = "daop_serving_requests_total";
    r.objective = 0.99;
    r.fast_windows = 1;
    r.slow_windows = 4;
    r.fast_burn = 10.0;
    r.slow_burn = 5.0;
    rules.push_back(std::move(r));
  }
  for (const SloRule& r : rules) r.validate();
  return rules;
}

// ---------------------------------------------------------------------------
// Evaluation

AlertReport evaluate_slo_rules(const std::vector<SloRule>& rules,
                               const TimeSeriesRecorder& rec) {
  AlertReport report;
  report.rules = rules;
  if (!rec.enabled()) return report;
  DAOP_CHECK_MSG(rec.finalized(),
                 "evaluate_slo_rules needs a finalized recorder");
  const std::vector<SeriesWindow> agg = rec.aggregate();
  if (agg.empty()) return report;
  for (const SloRule& rule : rules) {
    rule.validate();
    std::vector<WindowSignal> sig(agg.size());
    for (std::size_t i = 0; i < agg.size(); ++i) {
      sig[i] = rule_signal(rule, agg[i]);
    }
    bool open = false;
    AlertEpisode episode;
    for (std::size_t i = 0; i < agg.size(); ++i) {
      const double fast = burn_over(sig, i, rule.fast_windows,
                                    rule.objective);
      const double slow = burn_over(sig, i, rule.slow_windows,
                                    rule.objective);
      const double t = agg[i].end;
      if (!open && fast >= rule.fast_burn && slow >= rule.slow_burn) {
        open = true;
        episode = AlertEpisode{};
        episode.rule = rule.name;
        episode.open_time = t;
        episode.peak_fast_burn = fast;
        // Detection latency: from the start of the consecutive run of
        // budget-burning windows (single-window burn >= 1) ending here.
        std::size_t first_bad = i;
        while (first_bad > 0 &&
               burn_over(sig, first_bad - 1, 1, rule.objective) >= 1.0) {
          --first_bad;
        }
        if (burn_over(sig, first_bad, 1, rule.objective) < 1.0 &&
            first_bad < i) {
          ++first_bad;
        }
        episode.detection_latency_s = t - agg[first_bad].start;
        report.events.push_back(
            AlertEvent{rule.name, t, true, fast, slow});
      } else if (open) {
        episode.peak_fast_burn = std::max(episode.peak_fast_burn, fast);
        if (fast < rule.fast_burn) {
          open = false;
          episode.close_time = t;
          episode.closed = true;
          report.events.push_back(
              AlertEvent{rule.name, t, false, fast, slow});
          report.episodes.push_back(episode);
        }
      }
    }
    if (open) {
      episode.close_time = agg.back().end;
      episode.closed = false;
      report.episodes.push_back(episode);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Incident correlation

std::vector<Incident> correlate_incidents(const AlertReport& report,
                                          const TimeSeriesRecorder& rec,
                                          double lookback_s) {
  std::vector<Incident> incidents;
  if (!rec.enabled()) return incidents;
  struct Cause {
    double time;
    std::string kind;
    std::string text;
  };
  // Per-window signal spikes become synthetic causes alongside the causal
  // event log entries.
  std::vector<Cause> spikes;
  for (const SeriesWindow& w : rec.aggregate()) {
    const auto hz = w.delta.families.find("daop_hazard_stall_seconds_total");
    if (hz != w.delta.families.end()) {
      double stall = 0.0;
      for (const auto& [key, v] : hz->second.values) stall += v;
      if (stall > 0.05 * rec.window_s()) {
        spikes.push_back(Cause{w.start, "hazard burst",
                               "hazard burst (stall " + fmt2(stall) +
                                   "s in window " +
                                   std::to_string(w.index) + ")"});
      }
    }
    const auto sh = w.delta.families.find("daop_requests_shed_total");
    if (sh != w.delta.families.end()) {
      double shed = 0.0;
      for (const auto& [key, v] : sh->second.values) shed += v;
      if (shed > 0.0) {
        spikes.push_back(Cause{w.start, "shed spike",
                               "shed spike (" + format_metric_value(shed) +
                                   " in window " + std::to_string(w.index) +
                                   ")"});
      }
    }
  }
  for (const AlertEpisode& ep : report.episodes) {
    Incident inc;
    inc.rule = ep.rule;
    inc.open_time = ep.open_time;
    inc.close_time = ep.close_time;
    inc.closed = ep.closed;
    inc.detection_latency_s = ep.detection_latency_s;
    const double lo = ep.open_time - lookback_s;
    const double hi = ep.close_time;
    std::vector<Cause> causes;
    for (const TimeSeriesEvent& ev : rec.events()) {
      if (ev.time < lo || ev.time > hi) continue;
      causes.push_back(Cause{ev.time, ev.kind,
                             rec.channel_name(ev.channel) + " " + ev.kind +
                                 " " + ev.detail});
    }
    for (const Cause& s : spikes) {
      if (s.time < lo || s.time > hi) continue;
      causes.push_back(s);
    }
    std::stable_sort(causes.begin(), causes.end(),
                     [](const Cause& a, const Cause& b) {
                       return a.time < b.time;
                     });
    std::vector<std::string> chain;
    for (const Cause& c : causes) {
      inc.causes.push_back("t=" + fmt2(c.time) + " " + c.text);
      if (std::find(chain.begin(), chain.end(), c.kind) == chain.end()) {
        chain.push_back(c.kind);
      }
    }
    if (ep.closed) chain.push_back("recovered");
    std::string joined;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i != 0) joined += " -> ";
      joined += chain[i];
    }
    inc.chain = joined;
    incidents.push_back(std::move(inc));
  }
  return incidents;
}

// ---------------------------------------------------------------------------
// Renderers

std::string to_tseries_json(const TimeSeriesRecorder& rec,
                            const AlertReport& report,
                            const std::vector<Incident>& incidents) {
  std::string out = "{\"schema\":\"daop-tseries/1\"";
  out += ",\"window_s\":" + num(rec.window_s());
  out += ",\"n_windows\":" + num(static_cast<double>(rec.n_windows()));
  out += ",\"channels\":[";
  if (rec.enabled()) {
    for (int ch = 0; ch < rec.n_channels(); ++ch) {
      if (ch != 0) out += ",";
      append_channel_json(out, rec.channel_name(ch), rec.windows(ch));
    }
    out += ",";
    append_channel_json(out, "aggregate", rec.aggregate());
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < rec.events().size(); ++i) {
    const TimeSeriesEvent& ev = rec.events()[i];
    if (i != 0) out += ",";
    out += "{\"t\":" + num(ev.time) +
           ",\"channel\":" + jstr(rec.channel_name(ev.channel)) +
           ",\"kind\":" + jstr(ev.kind) + ",\"detail\":" + jstr(ev.detail) +
           "}";
  }
  out += "],\"alerts\":{\"rules\":[";
  for (std::size_t i = 0; i < report.rules.size(); ++i) {
    if (i != 0) out += ",";
    append_rule_json(out, report.rules[i]);
  }
  out += "],\"events\":[";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const AlertEvent& ev = report.events[i];
    if (i != 0) out += ",";
    out += "{\"rule\":" + jstr(ev.rule) + ",\"t\":" + num(ev.time) +
           ",\"type\":" + jstr(ev.open ? "open" : "close") +
           ",\"fast_burn\":" + num(ev.fast_burn) +
           ",\"slow_burn\":" + num(ev.slow_burn) + "}";
  }
  out += "],\"episodes\":[";
  for (std::size_t i = 0; i < report.episodes.size(); ++i) {
    const AlertEpisode& ep = report.episodes[i];
    if (i != 0) out += ",";
    out += "{\"rule\":" + jstr(ep.rule) + ",\"open\":" + num(ep.open_time) +
           ",\"close\":" + num(ep.close_time) +
           ",\"closed\":" + (ep.closed ? "true" : "false") +
           ",\"detection_latency_s\":" + num(ep.detection_latency_s) +
           ",\"peak_fast_burn\":" + num(ep.peak_fast_burn) + "}";
  }
  out += "]},\"episode_count\":" +
         num(static_cast<double>(report.episodes.size()));
  out += ",\"incidents\":[";
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const Incident& inc = incidents[i];
    if (i != 0) out += ",";
    out += "{\"rule\":" + jstr(inc.rule) + ",\"open\":" +
           num(inc.open_time) + ",\"close\":" + num(inc.close_time) +
           ",\"closed\":" + (inc.closed ? "true" : "false") +
           ",\"detection_latency_s\":" + num(inc.detection_latency_s) +
           ",\"chain\":" + jstr(inc.chain) + ",\"causes\":[";
    for (std::size_t j = 0; j < inc.causes.size(); ++j) {
      if (j != 0) out += ",";
      out += jstr(inc.causes[j]);
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

std::string to_tseries_text(const TimeSeriesRecorder& rec,
                            const AlertReport& report,
                            const std::vector<Incident>& incidents) {
  std::string out;
  out += "daop time series (window " + num(rec.window_s()) + "s, " +
         num(static_cast<double>(rec.n_windows())) + " windows, " +
         num(static_cast<double>(rec.n_channels())) + " channels)\n";
  auto render_channel = [&](const std::string& name,
                            const std::vector<SeriesWindow>& windows) {
    out += "\nchannel " + name + "\n";
    const auto index = TimeSeriesRecorder::series_index(windows);
    for (const auto& s : index) {
      for (const std::string& key : s.keys) {
        std::vector<double> values;
        values.reserve(windows.size());
        double total = 0.0, mx = 0.0;
        bool any = false;
        for (const SeriesWindow& w : windows) {
          const auto it = w.delta.families.find(s.family);
          if (s.kind == MetricsSnapshot::Kind::kHistogram) {
            double p90 = std::numeric_limits<double>::quiet_NaN();
            if (it != w.delta.families.end()) {
              const auto hit = it->second.histograms.find(key);
              if (hit != it->second.histograms.end()) {
                p90 = histogram_quantile(hit->second, 0.9);
              }
            }
            values.push_back(p90);
            if (std::isfinite(p90)) {
              mx = std::max(mx, p90);
              any = true;
            }
            continue;
          }
          double v = 0.0;
          if (it != w.delta.families.end()) {
            const auto vit = it->second.values.find(key);
            if (vit != it->second.values.end()) v = vit->second;
          }
          values.push_back(v);
          total += v;
          mx = std::max(mx, v);
          any = any || v != 0.0;
        }
        if (!any) continue;  // keep the report focused on live series
        std::string label = "  " + s.family + key;
        if (s.kind == MetricsSnapshot::Kind::kHistogram) label += " p90";
        char buf[160];
        if (s.kind == MetricsSnapshot::Kind::kCounter) {
          std::snprintf(buf, sizeof(buf), "%-58s %s total %s\n",
                        label.c_str(), sparkline(values).c_str(),
                        format_metric_value(total).c_str());
        } else {
          std::snprintf(buf, sizeof(buf), "%-58s %s max %s\n", label.c_str(),
                        sparkline(values).c_str(),
                        format_metric_value(mx).c_str());
        }
        out += buf;
      }
    }
  };
  if (rec.enabled()) {
    render_channel("aggregate", rec.aggregate());
    for (int ch = 0; ch < rec.n_channels(); ++ch) {
      render_channel(rec.channel_name(ch), rec.windows(ch));
    }
  }
  out += "\nalerts (" + num(static_cast<double>(report.episodes.size())) +
         " episodes)\n";
  if (!report.episodes.empty()) {
    out += "  rule                 open      close     detect_s  peak_burn\n";
    for (const AlertEpisode& ep : report.episodes) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "  %-20s %-9s %-9s %-9s %s\n",
                    ep.rule.c_str(), fmt2(ep.open_time).c_str(),
                    (ep.closed ? fmt2(ep.close_time) : "open").c_str(),
                    fmt2(ep.detection_latency_s).c_str(),
                    fmt2(ep.peak_fast_burn).c_str());
      out += buf;
    }
  }
  out += "\nincidents (" + num(static_cast<double>(incidents.size())) +
         ")\n";
  for (const Incident& inc : incidents) {
    out += "  [" + inc.rule + "] open " + fmt2(inc.open_time) + " .. " +
           (inc.closed ? fmt2(inc.close_time) : "open") +
           "  chain: " + inc.chain + "\n";
    for (const std::string& c : inc.causes) {
      out += "    " + c + "\n";
    }
  }
  return out;
}

}  // namespace daop::obs
