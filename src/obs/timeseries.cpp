#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.hpp"

namespace daop::obs {

void TimeSeriesOptions::validate() const {
  if (window_s != 0.0) {
    DAOP_CHECK_MSG(window_s > 0.0 && std::isfinite(window_s),
                   "tseries window must be positive and finite");
  }
}

TimeSeriesRecorder::TimeSeriesRecorder(const TimeSeriesOptions& options,
                                       std::vector<std::string> channels)
    : options_(options) {
  options_.validate();
  if (!options_.enabled()) return;  // disabled: allocate nothing
  DAOP_CHECK_MSG(!channels.empty(), "recorder needs at least one channel");
  channels_ = std::move(channels);
  for (const std::string& name : channels_) {
    state_.push_back(std::make_unique<Channel>());
    state_.back()->name = name;
  }
}

const std::string& TimeSeriesRecorder::channel_name(int ch) const {
  DAOP_CHECK(ch >= 0 && ch < n_channels());
  return channels_[static_cast<std::size_t>(ch)];
}

TimeSeriesRecorder::Channel& TimeSeriesRecorder::chan(int ch) {
  DAOP_CHECK_MSG(ch >= 0 && ch < n_channels(),
                 "tseries channel " << ch << " out of range");
  return *state_[static_cast<std::size_t>(ch)];
}

void TimeSeriesRecorder::count(int ch, const std::string& name,
                               const std::string& help, double d,
                               const Labels& labels) {
  if (!enabled()) return;
  DAOP_CHECK_MSG(!finalized_, "recording into a finalized recorder");
  chan(ch).live.counter(name, help, labels).inc(d);
}

void TimeSeriesRecorder::count_total(int ch, const std::string& name,
                                     const std::string& help, double total,
                                     const Labels& labels) {
  if (!enabled()) return;
  DAOP_CHECK_MSG(!finalized_, "recording into a finalized recorder");
  Channel& c = chan(ch);
  const std::string key = name + serialize_label_set(labels);
  double& last = c.last_totals[key];
  DAOP_CHECK_MSG(total >= last - 1e-12,
                 "cumulative total '" << key << "' moved backwards");
  if (total > last) {
    c.live.counter(name, help, labels).inc(total - last);
    last = total;
  }
}

void TimeSeriesRecorder::gauge_set(int ch, const std::string& name,
                                   const std::string& help, double v,
                                   const Labels& labels) {
  if (!enabled()) return;
  DAOP_CHECK_MSG(!finalized_, "recording into a finalized recorder");
  chan(ch).live.gauge(name, help, labels).set(v);
}

void TimeSeriesRecorder::observe(int ch, const std::string& name,
                                 const std::string& help, double v,
                                 const Labels& labels) {
  if (!enabled()) return;
  DAOP_CHECK_MSG(!finalized_, "recording into a finalized recorder");
  chan(ch)
      .live.histogram(name, help, default_latency_buckets(), labels)
      .observe(v);
}

void TimeSeriesRecorder::merge_hist(int ch, const std::string& name,
                                    const std::string& help,
                                    const HistogramData& data,
                                    const Labels& labels) {
  if (!enabled()) return;
  DAOP_CHECK_MSG(!finalized_, "recording into a finalized recorder");
  if (data.empty()) return;
  chan(ch).live.histogram(name, help, data.upper_bounds, labels).merge(data);
}

void TimeSeriesRecorder::record_registry_totals(int ch,
                                                const MetricsRegistry& reg,
                                                double t) {
  if (!enabled()) return;
  advance(ch, t);
  const MetricsSnapshot snap = reg.snapshot();
  for (const auto& [name, f] : snap.families) {
    for (const auto& [key, v] : f.values) {
      const Labels& labels = f.label_sets.at(key);
      if (f.kind == MetricsSnapshot::Kind::kGauge) {
        gauge_set(ch, name, f.help, v, labels);
      } else {
        count(ch, name, f.help, v, labels);
      }
    }
    for (const auto& [key, h] : f.histograms) {
      merge_hist(ch, name, f.help, h, f.label_sets.at(key));
    }
  }
}

void TimeSeriesRecorder::seal(Channel& c, double end) {
  MetricsSnapshot snap = c.live.snapshot();
  SeriesWindow w;
  w.index = c.next_index;
  w.start = static_cast<double>(c.next_index) * options_.window_s;
  w.end = end;
  w.delta = snap.delta(c.prev);
  c.windows.push_back(std::move(w));
  c.prev = std::move(snap);
  ++c.next_index;
}

void TimeSeriesRecorder::advance(int ch, double now) {
  if (!enabled() || finalized_) return;
  Channel& c = chan(ch);
  c.clock = std::max(c.clock, now);
  const double w = options_.window_s;
  while (static_cast<double>(c.next_index + 1) * w <= c.clock) {
    seal(c, static_cast<double>(c.next_index + 1) * w);
  }
}

void TimeSeriesRecorder::record_event(double time, int ch, std::string kind,
                                      std::string detail) {
  if (!enabled() || finalized_) return;
  DAOP_CHECK(ch >= 0 && ch < n_channels());
  events_.push_back(
      TimeSeriesEvent{time, ch, std::move(kind), std::move(detail)});
}

void TimeSeriesRecorder::finalize(double end) {
  if (!enabled() || finalized_) return;
  const double w = options_.window_s;
  for (auto& cp : state_) {
    Channel& c = *cp;
    c.clock = std::max(c.clock, end);
    while (static_cast<double>(c.next_index + 1) * w <= c.clock) {
      seal(c, static_cast<double>(c.next_index + 1) * w);
    }
    const double open_start = static_cast<double>(c.next_index) * w;
    if (c.clock > open_start) {
      seal(c, c.clock);  // final partial window
    } else {
      // Content recorded exactly at the final grid boundary still needs a
      // home: seal a zero-width window only when it is non-empty.
      MetricsSnapshot snap = c.live.snapshot();
      if (!snap.delta(c.prev).zero()) seal(c, c.clock);
    }
  }
  finalized_ = true;
}

const std::vector<SeriesWindow>& TimeSeriesRecorder::windows(int ch) const {
  DAOP_CHECK(ch >= 0 && ch < n_channels());
  return state_[static_cast<std::size_t>(ch)]->windows;
}

long long TimeSeriesRecorder::n_windows() const {
  long long n = 0;
  for (const auto& c : state_) {
    n = std::max(n, static_cast<long long>(c->windows.size()));
  }
  return n;
}

std::vector<SeriesWindow> TimeSeriesRecorder::aggregate() const {
  std::vector<SeriesWindow> out;
  const long long n = n_windows();
  out.reserve(static_cast<std::size_t>(n));
  for (long long idx = 0; idx < n; ++idx) {
    SeriesWindow w;
    w.index = idx;
    w.start = static_cast<double>(idx) * options_.window_s;
    w.end = w.start;
    for (const auto& c : state_) {
      if (idx >= static_cast<long long>(c->windows.size())) continue;
      const SeriesWindow& cw = c->windows[static_cast<std::size_t>(idx)];
      w.end = std::max(w.end, cw.end);
      for (const auto& [name, f] : cw.delta.families) {
        auto& mf = w.delta.families[name];
        mf.kind = f.kind;
        mf.help = f.help;
        for (const auto& [key, labels] : f.label_sets) {
          mf.label_sets[key] = labels;
        }
        // Counters and gauges both sum across channels: summed depth /
        // occupancy / level gauges are the fleet-level reading.
        for (const auto& [key, v] : f.values) mf.values[key] += v;
        for (const auto& [key, h] : f.histograms) {
          mf.histograms[key].merge(h);
        }
      }
    }
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<TimeSeriesRecorder::SeriesIndex> TimeSeriesRecorder::series_index(
    const std::vector<SeriesWindow>& windows) {
  std::map<std::string, SeriesIndex> by_family;
  std::map<std::string, std::set<std::string>> keys;
  for (const SeriesWindow& w : windows) {
    for (const auto& [name, f] : w.delta.families) {
      auto& e = by_family[name];
      e.family = name;
      e.kind = f.kind;
      for (const auto& [key, v] : f.values) keys[name].insert(key);
      for (const auto& [key, h] : f.histograms) keys[name].insert(key);
    }
  }
  std::vector<SeriesIndex> out;
  out.reserve(by_family.size());
  for (auto& [name, e] : by_family) {
    e.keys.assign(keys[name].begin(), keys[name].end());
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace daop::obs
