// Observability plane — time-series recorder (daop::obs).
//
// A TimeSeriesRecorder turns the end-of-run MetricsRegistry view into a
// windowed one over SIMULATED time: harness event loops (continuous-batching
// scheduler, cluster router, recovery plane) record counters/gauges/latency
// observations into per-channel live registries as decisions resolve, and
// the recorder seals fixed-width windows on a global grid [k*w, (k+1)*w) by
// snapshot/delta (see MetricsSnapshot). Channels map to nodes (plus a
// "cluster" channel for router-level client-observed series); an aggregate
// across channels is computed at export time.
//
// The recorder is strictly passive: it is consulted only through
// null-pointer / enabled() gates after scheduling decisions are made, so
// attaching one can never change a simulated timeline — tests enforce
// byte-identical results and metric exports with and without it.
//
// Window attribution: hooks call advance(channel, t) with the decision time
// BEFORE recording the events that resolve at t. Decision times are monotone
// per channel, so every recording lands in the grid window containing its
// decision time. Observations whose logical timestamp differs from the
// decision time that surfaced them (e.g. a session whose last token landed
// slightly before the scheduler noticed) are attributed to the decision
// window — slop is bounded by one scheduling decision, never a full run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace daop::obs {

struct TimeSeriesOptions {
  /// Window width in simulated seconds; <= 0 disables the recorder (every
  /// call becomes a no-op and nothing is allocated beyond the struct).
  double window_s = 0.0;

  bool enabled() const { return window_s > 0.0; }
  void validate() const;
};

/// One sealed window of one channel: the delta of everything recorded with
/// a decision time in [start, end). The final window of a run may be
/// partial (end < (index+1)*window_s).
struct SeriesWindow {
  long long index = 0;  ///< global grid index; windows are consecutive from 0
  double start = 0.0;
  double end = 0.0;
  MetricsSnapshot delta;
};

/// One entry in the causal event log consumed by the incident correlator:
/// crashes, health ejections/readmissions, degradation-ladder moves,
/// loss-episode lifecycle, shed decisions.
struct TimeSeriesEvent {
  double time = 0.0;
  int channel = 0;
  std::string kind;    ///< e.g. "crash", "eject", "degrade", "shed"
  std::string detail;  ///< human-readable, deterministic
};

class TimeSeriesRecorder {
 public:
  /// `channels` names each recording channel (e.g. {"node0","node1",
  /// "cluster"}). With disabled options the channel list is not even stored.
  TimeSeriesRecorder(const TimeSeriesOptions& options,
                     std::vector<std::string> channels);

  bool enabled() const { return options_.enabled(); }
  double window_s() const { return options_.window_s; }
  int n_channels() const { return static_cast<int>(channels_.size()); }
  const std::string& channel_name(int ch) const;

  // ---- Recording (all no-ops when disabled) ----
  // Values land in the currently-open window of the channel; callers
  // advance() to the decision time first.

  void count(int ch, const std::string& name, const std::string& help,
             double d = 1.0, const Labels& labels = {});
  /// Feeds a cumulative external total (e.g. Timeline::hazard_stall_s());
  /// the recorder increments an internal counter by the delta since the
  /// last call for the same series. Totals must be non-decreasing.
  void count_total(int ch, const std::string& name, const std::string& help,
                   double total, const Labels& labels = {});
  void gauge_set(int ch, const std::string& name, const std::string& help,
                 double v, const Labels& labels = {});
  /// Latency observation into a default-bucket histogram.
  void observe(int ch, const std::string& name, const std::string& help,
               double v, const Labels& labels = {});
  /// Merges a pre-bucketed histogram (its own bounds) into the open window.
  void merge_hist(int ch, const std::string& name, const std::string& help,
                  const HistogramData& data, const Labels& labels = {});

  /// Seals every grid window of `ch` that ends at or before `now`.
  /// Non-monotone times clamp (the channel clock never moves backwards).
  void advance(int ch, double now);

  /// Appends to the causal event log (for the incident correlator and the
  /// export's events array). Does not need advance() first.
  void record_event(double time, int ch, std::string kind,
                    std::string detail);

  /// Seals the final (possibly partial) window of every channel at
  /// max(channel clock, end) and freezes the recorder. Harnesses call this
  /// once with the run makespan; later calls are no-ops.
  void finalize(double end);
  bool finalized() const { return finalized_; }

  // ---- Read side (valid after finalize) ----

  const std::vector<SeriesWindow>& windows(int ch) const;
  const std::vector<TimeSeriesEvent>& events() const { return events_; }
  /// Max window count across channels (channels seal consecutively from 0).
  long long n_windows() const;
  /// Cross-channel aggregate per grid index: counters and gauges sum,
  /// histograms merge. Gauge sums are the natural fleet reading for depth /
  /// occupancy gauges (the dominant use); per-node level gauges remain
  /// available on their own channels.
  std::vector<SeriesWindow> aggregate() const;

  /// Union of series in a window list: {family -> (kind, help, keys)}.
  /// Used by exporters to emit dense per-series arrays across windows.
  struct SeriesIndex {
    std::string family;
    MetricsSnapshot::Kind kind = MetricsSnapshot::Kind::kCounter;
    std::vector<std::string> keys;  ///< serialized label sets, sorted
  };
  static std::vector<SeriesIndex> series_index(
      const std::vector<SeriesWindow>& windows);

  /// Replays an end-of-run registry's totals into channel `ch` at time `t`
  /// (counters counted, gauges set, histograms merged). Lets batch modes
  /// without a streaming event loop (speed, compare, timeline) still export
  /// a — degenerate, single-window — daop-tseries series of their final
  /// metrics. Call before finalize().
  void record_registry_totals(int ch, const MetricsRegistry& reg, double t);

 private:
  struct Channel {
    std::string name;
    MetricsRegistry live;
    MetricsSnapshot prev;
    std::map<std::string, double> last_totals;  ///< count_total state
    long long next_index = 0;  ///< next grid window to seal
    double clock = 0.0;
    std::vector<SeriesWindow> windows;
  };

  Channel& chan(int ch);
  void seal(Channel& c, double end);

  TimeSeriesOptions options_;
  std::vector<std::string> channels_;
  /// unique_ptr because MetricsRegistry is pinned (owns a mutex).
  std::vector<std::unique_ptr<Channel>> state_;
  std::vector<TimeSeriesEvent> events_;
  bool finalized_ = false;
};

}  // namespace daop::obs
