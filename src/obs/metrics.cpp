#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.hpp"

namespace daop::obs {
namespace {

std::string fmt_value(double v) { return format_metric_value(v); }

std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label_key(const Labels& labels) {
  return serialize_label_set(labels);
}

/// Like label_key but with an extra label appended (histogram "le" series).
std::string label_key_with(const Labels& labels, const std::string& extra_k,
                           const std::string& extra_v) {
  Labels l = labels;
  l.emplace_back(extra_k, extra_v);
  return label_key(l);
}

std::string json_escape(const std::string& s) { return json_escape_string(s); }

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return !(name[0] >= '0' && name[0] <= '9');
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared formatting helpers

std::string format_metric_value(double v) {
  // Exact integers print without a fractional part so counter exports are
  // stable and human-friendly; everything else uses %.10g.
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string json_escape_string(const std::string& s) {
  // Any UTF-8 byte >= 0x20 passes through untouched (JSON strings are
  // UTF-8), but all control characters are escaped so the export is always
  // parseable no matter what a caller puts in a label value.
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string serialize_label_set(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    out += labels[i].first + "=\"" + escape_label(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

bool MetricsSnapshot::zero() const {
  for (const auto& [name, f] : families) {
    for (const auto& [key, v] : f.values) {
      if (v != 0.0) return false;
    }
    for (const auto& [key, h] : f.histograms) {
      if (h.total != 0) return false;
    }
  }
  return true;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& prev) const {
  MetricsSnapshot out;
  for (const auto& [name, f] : families) {
    Family d;
    d.kind = f.kind;
    d.help = f.help;
    d.label_sets = f.label_sets;
    const auto pit = prev.families.find(name);
    const Family* pf = pit == prev.families.end() ? nullptr : &pit->second;
    if (pf != nullptr) {
      DAOP_CHECK_MSG(pf->kind == f.kind,
                     "snapshot family '" << name << "' changed kind");
    }
    for (const auto& [key, v] : f.values) {
      if (f.kind == Kind::kGauge) {
        d.values[key] = v;  // gauges report their last value, not a delta
        continue;
      }
      double base = 0.0;
      if (pf != nullptr) {
        const auto vit = pf->values.find(key);
        if (vit != pf->values.end()) base = vit->second;
      }
      DAOP_CHECK_MSG(v >= base,
                     "counter '" << name << key << "' moved backwards");
      d.values[key] = v - base;
    }
    for (const auto& [key, h] : f.histograms) {
      const HistogramData* ph = nullptr;
      if (pf != nullptr) {
        const auto hit = pf->histograms.find(key);
        if (hit != pf->histograms.end()) ph = &hit->second;
      }
      if (ph == nullptr || ph->counts.empty()) {
        d.histograms[key] = h;
        continue;
      }
      DAOP_CHECK_MSG(ph->upper_bounds == h.upper_bounds,
                     "histogram '" << name << key << "' changed buckets");
      HistogramData w(h.upper_bounds);
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        DAOP_CHECK_MSG(h.counts[i] >= ph->counts[i],
                       "histogram '" << name << key << "' moved backwards");
        w.counts[i] = h.counts[i] - ph->counts[i];
      }
      w.total = h.total - ph->total;
      w.sum = h.sum - ph->sum;
      d.histograms[key] = w;
    }
    out.families[name] = std::move(d);
  }
  return out;
}

// ---------------------------------------------------------------------------
// HistogramData

HistogramData::HistogramData(std::vector<double> bounds)
    : upper_bounds(std::move(bounds)),
      counts(upper_bounds.size() + 1, 0) {
  DAOP_CHECK_MSG(std::is_sorted(upper_bounds.begin(), upper_bounds.end()),
                 "histogram bucket bounds must be ascending");
  for (double b : upper_bounds) {
    DAOP_CHECK_MSG(std::isfinite(b), "histogram bucket bounds must be finite");
  }
}

void HistogramData::observe(double v) {
  DAOP_CHECK_MSG(!counts.empty(), "observe() on an unconfigured histogram");
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), v);
  ++counts[static_cast<std::size_t>(it - upper_bounds.begin())];
  ++total;
  sum += v;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.counts.empty()) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  DAOP_CHECK_MSG(upper_bounds == other.upper_bounds,
                 "cannot merge histograms with different buckets");
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
}

double HistogramData::bucket_width(double v) const {
  DAOP_CHECK(!upper_bounds.empty());
  const auto it =
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), v);
  const std::size_t i =
      std::min(static_cast<std::size_t>(it - upper_bounds.begin()),
               upper_bounds.size() - 1);
  const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
  return upper_bounds[i] - lo;
}

double histogram_quantile(const HistogramData& h, double q) {
  DAOP_CHECK(q >= 0.0 && q <= 1.0);
  // An empty (or unconfigured) histogram has no order statistics: any
  // number would be garbage, so the answer is NaN — same convention as
  // PromQL's histogram_quantile over an empty range vector.
  if (h.counts.empty() || h.total <= 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double rank = q * static_cast<double>(h.total);
  long long cum = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    cum += h.counts[i];
    if (static_cast<double>(cum) >= rank && h.counts[i] > 0) {
      if (i >= h.upper_bounds.size()) {
        // +Inf bucket: clamp to the largest finite bound.
        return h.upper_bounds.empty() ? 0.0 : h.upper_bounds.back();
      }
      const double lo = i == 0 ? 0.0 : h.upper_bounds[i - 1];
      const double hi = h.upper_bounds[i];
      const double in_bucket =
          rank - static_cast<double>(cum - h.counts[i]);
      return lo + (hi - lo) * in_bucket / static_cast<double>(h.counts[i]);
    }
  }
  return h.upper_bounds.empty() ? 0.0 : h.upper_bounds.back();
}

std::vector<double> default_latency_buckets() {
  std::vector<double> b;
  for (double decade : {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    b.push_back(decade);
    b.push_back(decade * 2.5);
    b.push_back(decade * 5.0);
  }
  return b;  // 0.001 .. 5000 s
}

// ---------------------------------------------------------------------------
// Instruments

void Counter::inc(double d) {
  DAOP_CHECK_MSG(d >= 0.0, "counters only move forward");
  std::lock_guard<std::mutex> lock(mu_);
  v_ += d;
}

double Counter::value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return v_;
}

void Gauge::set(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  v_ = v;
}

double Gauge::value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return v_;
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.observe(v);
}

void Histogram::merge(const HistogramData& other) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.merge(other);
}

HistogramData Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 Type type) {
  DAOP_CHECK_MSG(valid_metric_name(name),
                 "invalid metric name '" << name << "'");
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  } else {
    DAOP_CHECK_MSG(it->second.type == type,
                   "metric '" << name
                              << "' re-registered with a different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, help, Type::Counter);
  const std::string key = label_key(labels);
  auto [it, inserted] = f.counters.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Counter>();
    f.label_sets[key] = labels;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, help, Type::Gauge);
  const std::string key = label_key(labels);
  auto [it, inserted] = f.gauges.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Gauge>();
    f.label_sets[key] = labels;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::vector<double>& bounds,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, help, Type::Histogram);
  if (f.histograms.empty()) {
    f.bounds = bounds;
  } else {
    DAOP_CHECK_MSG(f.bounds == bounds,
                   "histogram '" << name
                                 << "' re-registered with different buckets");
  }
  const std::string key = label_key(labels);
  auto [it, inserted] = f.histograms.try_emplace(key);
  if (inserted) {
    it->second = std::make_unique<Histogram>(bounds);
    f.label_sets[key] = labels;
  }
  return *it->second;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, f] : families_) {
    out += "# HELP " + name + " " + f.help + "\n";
    out += "# TYPE " + name + " ";
    switch (f.type) {
      case Type::Counter: out += "counter\n"; break;
      case Type::Gauge: out += "gauge\n"; break;
      case Type::Histogram: out += "histogram\n"; break;
    }
    for (const auto& [key, c] : f.counters) {
      out += name + key + " " + fmt_value(c->value()) + "\n";
    }
    for (const auto& [key, g] : f.gauges) {
      out += name + key + " " + fmt_value(g->value()) + "\n";
    }
    for (const auto& [key, h] : f.histograms) {
      const HistogramData d = h->snapshot();
      const Labels& base = f.label_sets.at(key);
      long long cum = 0;
      for (std::size_t i = 0; i < d.counts.size(); ++i) {
        cum += d.counts[i];
        const std::string le = i < d.upper_bounds.size()
                                   ? fmt_value(d.upper_bounds[i])
                                   : "+Inf";
        out += name + "_bucket" + label_key_with(base, "le", le) + " " +
               fmt_value(static_cast<double>(cum)) + "\n";
      }
      out += name + "_sum" + key + " " + fmt_value(d.sum) + "\n";
      out += name + "_count" + key + " " +
             fmt_value(static_cast<double>(d.total)) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"families\":[";
  bool first_family = true;
  for (const auto& [name, f] : families_) {
    if (!first_family) out += ",";
    first_family = false;
    out += "{\"name\":\"" + json_escape(name) + "\",\"type\":\"";
    switch (f.type) {
      case Type::Counter: out += "counter"; break;
      case Type::Gauge: out += "gauge"; break;
      case Type::Histogram: out += "histogram"; break;
    }
    out += "\",\"help\":\"" + json_escape(f.help) + "\",\"series\":[";
    bool first_series = true;
    auto emit_labels = [&](const std::string& key) {
      out += "\"labels\":{";
      const Labels& labels = f.label_sets.at(key);
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i != 0) out += ",";
        out += "\"" + json_escape(labels[i].first) + "\":\"" +
               json_escape(labels[i].second) + "\"";
      }
      out += "}";
    };
    for (const auto& [key, c] : f.counters) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{";
      emit_labels(key);
      out += ",\"value\":" + fmt_value(c->value()) + "}";
    }
    for (const auto& [key, g] : f.gauges) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{";
      emit_labels(key);
      out += ",\"value\":" + fmt_value(g->value()) + "}";
    }
    for (const auto& [key, h] : f.histograms) {
      if (!first_series) out += ",";
      first_series = false;
      const HistogramData d = h->snapshot();
      out += "{";
      emit_labels(key);
      out += ",\"count\":" + fmt_value(static_cast<double>(d.total)) +
             ",\"sum\":" + fmt_value(d.sum) + ",\"buckets\":[";
      for (std::size_t i = 0; i < d.counts.size(); ++i) {
        if (i != 0) out += ",";
        const std::string le = i < d.upper_bounds.size()
                                   ? fmt_value(d.upper_bounds[i])
                                   : "\"+Inf\"";
        out += "{\"le\":" + le + ",\"count\":" +
               fmt_value(static_cast<double>(d.counts[i])) + "}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, f] : families_) {
    MetricsSnapshot::Family sf;
    switch (f.type) {
      case Type::Counter: sf.kind = MetricsSnapshot::Kind::kCounter; break;
      case Type::Gauge: sf.kind = MetricsSnapshot::Kind::kGauge; break;
      case Type::Histogram: sf.kind = MetricsSnapshot::Kind::kHistogram; break;
    }
    sf.help = f.help;
    sf.label_sets = f.label_sets;
    for (const auto& [key, c] : f.counters) sf.values[key] = c->value();
    for (const auto& [key, g] : f.gauges) sf.values[key] = g->value();
    for (const auto& [key, h] : f.histograms) {
      sf.histograms[key] = h->snapshot();
    }
    snap.families[name] = std::move(sf);
  }
  return snap;
}

std::size_t MetricsRegistry::family_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return families_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
}

}  // namespace daop::obs
