// Overload-control plane for the serving scheduler (daop::eval).
//
// A production on-device server cannot answer overload with "queue forever"
// or leave hazard storms to client-side timeouts. This module adds the three
// active responses, layered on the continuous-batching scheduler
// (eval/continuous_batching.hpp):
//
//  - ADMISSION CONTROL: a bounded queue with a configurable policy (`fifo`,
//    `lifo-shed`, `deadline-edf`) that rejects or sheds requests when the
//    queue overflows or a request's projected time-to-first-token exceeds
//    its deadline budget. Every shed is labeled with a ShedReason and
//    surfaces as `daop_requests_shed_total{reason=...}`.
//  - SESSION PREEMPTION: under `deadline-edf` with preemption enabled, a
//    deadline-critical arrival may park the in-flight session with the
//    LATEST deadline (releasing its PlacementArbiter pins so the shared
//    cache unfreezes), take its slot, and let the victim resume when a slot
//    frees. Every parked session is resumed and completed — conservation is
//    DAOP_CHECKed by the scheduler.
//  - HAZARD-ADAPTIVE DEGRADATION: a DegradationController watches a sliding
//    window of fault-plane telemetry (hazard stall seconds, migration
//    aborts/retries) and steps the serving stack down a degradation ladder,
//    circuit-breaker style with hysteresis:
//
//        L0 normal
//        L1 disable speculative work (DAOP pre-calc, fetch-engine prefetch)
//        L2 additionally disable placement migrations (Algorithm-1 swaps,
//           decode re-allocation; demand fetches still run)
//        L3 additionally cap concurrency at half the configured bound
//        L4 additionally shed aggressively (halved deadline budget, tight
//           queue cap)
//
//    and steps back up one level at a time after a calm window.
//
// Everything here is deterministic and, with a default-constructed
// OverloadOptions, a strict no-op: the scheduler runs its legacy loop and
// serving output stays bit-identical to the pre-overload goldens
// (tests/golden/serving_runs.golden).
#pragma once

#include <string>
#include <vector>

namespace daop::eval {

/// How the waiting queue orders and sheds requests.
enum class AdmissionPolicy {
  /// Strict arrival order; sheds only on queue overflow (newest rejected)
  /// or when a deadline budget is configured.
  kFifo,
  /// Newest-first service: under overload the freshest requests (whose
  /// clients are still waiting) are served and the stalest are shed first
  /// on overflow.
  kLifoShed,
  /// Earliest-deadline-first service; requests whose projected TTFT exceeds
  /// their deadline budget are shed instead of admitted, and (optionally)
  /// deadline-critical arrivals preempt the latest-deadline session.
  kDeadlineEdf,
};

const char* admission_policy_name(AdmissionPolicy policy);
/// Parses "fifo" | "lifo-shed" | "deadline-edf"; CHECK-fails with a message
/// listing the valid names otherwise.
AdmissionPolicy parse_admission_policy(const std::string& name);

/// Why a request was shed by admission control (never admitted; distinct
/// from `dropped`, which is the client abandoning after timeouts).
enum class ShedReason {
  kQueueFull,  ///< bounded queue overflowed
  kDeadline,   ///< projected TTFT exceeded the deadline budget
  kDegraded,   ///< aggressive shedding at the top of the degradation ladder
  kNodeLost,   ///< cluster plane (src/cluster): every copy of the request
               ///< was lost to node crashes and its failover retry budget
               ///< is exhausted (or no replica was left to fail over to)
};
inline constexpr int kNumShedReasons = 4;

const char* shed_reason_name(ShedReason reason);

/// Degradation-ladder levels (see the file comment). Levels are cumulative:
/// L3 implies L1 and L2's restrictions.
enum class DegradeLevel {
  kNormal = 0,
  kNoSpeculation = 1,
  kNoMigrations = 2,
  kCapConcurrency = 3,
  kShedAggressively = 4,
};

const char* degrade_level_name(DegradeLevel level);

/// Circuit-breaker configuration for the DegradationController. Defaults
/// are disabled; `enabled = true` activates the ladder with the documented
/// thresholds.
struct DegradationOptions {
  bool enabled = false;
  /// Sliding telemetry window the trip conditions are evaluated over.
  double window_s = 5.0;
  /// Step DOWN when hazard stall seconds within the window exceed this
  /// fraction of the window length...
  double stall_trip_fraction = 0.10;
  /// ...or when this many migration aborts landed within the window.
  long long abort_trip = 4;
  /// Minimum dwell time between consecutive level changes (hysteresis).
  double min_dwell_s = 1.0;
  /// Step UP one level after this long with no trip condition firing.
  double calm_window_s = 3.0;
  /// Deepest level the controller may reach.
  int max_level = static_cast<int>(DegradeLevel::kShedAggressively);

  void validate() const;
};

/// One controller level change, for spans/offline inspection.
struct DegradationEvent {
  double time = 0.0;
  int level = 0;   ///< level AFTER the change
  bool down = false;  ///< true = stepped down (degraded), false = recovered
};

/// Watches cumulative fault-plane telemetry and walks the degradation
/// ladder. Deterministic: level transitions depend only on the observed
/// (time, totals) sequence. `observe` must be called with nondecreasing
/// times (the scheduler's decision times); non-monotone inputs are clamped.
class DegradationController {
 public:
  explicit DegradationController(const DegradationOptions& options);

  /// Cumulative (monotone) telemetry totals as of simulated time `now`.
  struct Signals {
    double hazard_stall_s = 0.0;
    long long migration_aborts = 0;
    long long migration_retries = 0;
  };

  /// Feeds one telemetry sample and applies at most one level change.
  void observe(double now, const Signals& totals);

  int level() const { return level_; }
  int peak_level() const { return peak_level_; }
  long long steps_down() const { return steps_down_; }
  long long steps_up() const { return steps_up_; }
  const std::vector<DegradationEvent>& events() const { return events_; }

  /// Ladder directives at the current level.
  bool no_speculation() const {
    return level_ >= static_cast<int>(DegradeLevel::kNoSpeculation);
  }
  bool no_migrations() const {
    return level_ >= static_cast<int>(DegradeLevel::kNoMigrations);
  }
  bool cap_concurrency() const {
    return level_ >= static_cast<int>(DegradeLevel::kCapConcurrency);
  }
  bool shed_aggressively() const {
    return level_ >= static_cast<int>(DegradeLevel::kShedAggressively);
  }

 private:
  struct Sample {
    double time = 0.0;
    Signals totals;
  };

  DegradationOptions options_;
  std::vector<Sample> window_;  ///< samples within [now - window_s, now]
  int level_ = 0;
  int peak_level_ = 0;
  double last_change_ = 0.0;
  double last_hot_ = 0.0;
  double last_now_ = 0.0;
  long long steps_down_ = 0;
  long long steps_up_ = 0;
  std::vector<DegradationEvent> events_;
};

/// Overload-control configuration carried by the scheduler / serving
/// options. Default-constructed it is fully disabled and the scheduler's
/// behaviour is bit-identical to the pre-overload code.
struct OverloadOptions {
  AdmissionPolicy admission = AdmissionPolicy::kFifo;
  /// Bounded waiting queue: when more requests than this are waiting at an
  /// admission decision, the overflow is shed (`fifo`/`deadline-edf` shed
  /// the newest arrivals, `lifo-shed` the stalest). 0 = unbounded.
  int queue_capacity = 0;
  /// Per-request time-to-first-token deadline budget, measured from the
  /// ORIGINAL arrival. A request whose projected TTFT (admission wait +
  /// `service_estimate_s`) exceeds it is shed instead of admitted. 0 = no
  /// deadline (no deadline shedding, no EDF ordering signal beyond FIFO).
  double deadline_s = 0.0;
  /// Projected admission-to-first-token service time used by the deadline
  /// shed rule (operators calibrate it from a calm-run prefill estimate).
  double service_estimate_s = 0.0;
  /// Allow `deadline-edf` to preempt the latest-deadline in-flight session
  /// for a deadline-critical arrival (each session is preempted at most
  /// once, so preemption can never livelock).
  bool preempt = false;
  DegradationOptions degrade;

  /// True when any option deviates from the strict no-op defaults (the
  /// scheduler then runs the overload-aware loop).
  bool enabled() const;
  void validate() const;
};

/// Scheduler-side overload telemetry, aggregated over one run.
struct OverloadStats {
  long long shed_by_reason[kNumShedReasons] = {};
  long long shed_total = 0;
  long long preemptions = 0;
  long long preempt_resumes = 0;
  long long degrade_steps_down = 0;
  long long degrade_steps_up = 0;
  int degrade_final_level = 0;
  int degrade_peak_level = 0;
  std::vector<DegradationEvent> degrade_events;
};

}  // namespace daop::eval
