// Routing-statistics metrics from the paper's observation section:
//   Eq. 1   activation-matrix similarity (Table II)
//   Fig. 4  layer-wise marginal activation pattern
//   Fig. 5  one-layer-ahead prediction accuracy by layer
//   §VI-B   decode-phase windowed activation drift
#pragma once

#include <vector>

#include "data/routing_trace.hpp"
#include "data/trace_generator.hpp"

namespace daop::eval {

/// Eq. 1: mean over layers of the cosine similarity between corresponding
/// rows of two L x E activation matrices.
double matrix_similarity(const std::vector<std::vector<double>>& p,
                         const std::vector<std::vector<double>>& d);

/// Similarity between one sequence's prefill and decode activation matrices.
double prefill_decode_similarity(const data::SequenceTrace& trace);

/// Average of prefill_decode_similarity over `n_seqs` sequences (Table II).
double avg_prefill_decode_similarity(const data::TraceGenerator& gen,
                                     int n_seqs);

/// Dataset-level activation probabilities, out[layer][expert] normalized to
/// sum to 1 per layer (Fig. 4's heatmap values), decode phase.
std::vector<std::vector<double>> marginal_activation(
    const data::TraceGenerator& gen, int n_seqs);

/// Fig. 5: per-layer fraction of correctly predicted experts (size of the
/// intersection of predicted and true top-k sets over k), averaged over
/// decode tokens of `n_seqs` sequences. Entry 0 (layer 0, unpredictable) is
/// reported as 0.
std::vector<double> prediction_accuracy_by_layer(
    const data::TraceGenerator& gen, int n_seqs);

/// Mean of prediction_accuracy_by_layer over layers >= 1.
double avg_prediction_accuracy(const data::TraceGenerator& gen, int n_seqs);

/// §VI-B: average Eq.-1 similarity between activation matrices of
/// consecutive decode windows of `window` tokens.
double decode_window_similarity(const data::SequenceTrace& trace, int window);

/// Average of decode_window_similarity over sequences.
double avg_decode_window_similarity(const data::TraceGenerator& gen,
                                    int n_seqs, int window);

}  // namespace daop::eval
