#include "eval/overload.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::eval {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kLifoShed:
      return "lifo-shed";
    case AdmissionPolicy::kDeadlineEdf:
      return "deadline-edf";
  }
  DAOP_CHECK_MSG(false, "unreachable admission policy");
  return "";
}

AdmissionPolicy parse_admission_policy(const std::string& name) {
  if (name == "fifo") return AdmissionPolicy::kFifo;
  if (name == "lifo-shed") return AdmissionPolicy::kLifoShed;
  if (name == "deadline-edf") return AdmissionPolicy::kDeadlineEdf;
  DAOP_CHECK_MSG(false, "unknown admission policy '"
                            << name
                            << "' (valid: fifo, lifo-shed, deadline-edf)");
  return AdmissionPolicy::kFifo;
}

const char* shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kDegraded:
      return "degraded";
    case ShedReason::kNodeLost:
      return "node_lost";
  }
  DAOP_CHECK_MSG(false, "unreachable shed reason");
  return "";
}

const char* degrade_level_name(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNormal:
      return "normal";
    case DegradeLevel::kNoSpeculation:
      return "no-speculation";
    case DegradeLevel::kNoMigrations:
      return "no-migrations";
    case DegradeLevel::kCapConcurrency:
      return "cap-concurrency";
    case DegradeLevel::kShedAggressively:
      return "shed-aggressively";
  }
  DAOP_CHECK_MSG(false, "unreachable degrade level");
  return "";
}

void DegradationOptions::validate() const {
  DAOP_CHECK_GT(window_s, 0.0);
  DAOP_CHECK_GT(stall_trip_fraction, 0.0);
  DAOP_CHECK_GE(abort_trip, 1);
  DAOP_CHECK_GE(min_dwell_s, 0.0);
  DAOP_CHECK_GT(calm_window_s, 0.0);
  DAOP_CHECK_GE(max_level, 1);
  DAOP_CHECK_LE(max_level, static_cast<int>(DegradeLevel::kShedAggressively));
}

bool OverloadOptions::enabled() const {
  return admission != AdmissionPolicy::kFifo || queue_capacity > 0 ||
         deadline_s > 0.0 || preempt || degrade.enabled;
}

void OverloadOptions::validate() const {
  DAOP_CHECK_GE(queue_capacity, 0);
  DAOP_CHECK_GE(deadline_s, 0.0);
  DAOP_CHECK_GE(service_estimate_s, 0.0);
  if (service_estimate_s > 0.0) {
    DAOP_CHECK_MSG(deadline_s > 0.0,
                   "service_estimate_s needs a deadline budget to act on");
  }
  if (preempt) {
    DAOP_CHECK_MSG(admission == AdmissionPolicy::kDeadlineEdf,
                   "preemption requires the deadline-edf admission policy");
    DAOP_CHECK_MSG(deadline_s > 0.0, "preemption requires a deadline budget");
  }
  if (degrade.enabled) degrade.validate();
}

DegradationController::DegradationController(const DegradationOptions& options)
    : options_(options) {
  if (options_.enabled) options_.validate();
}

void DegradationController::observe(double now, const Signals& totals) {
  if (!options_.enabled) return;
  // The scheduler's decision times are nondecreasing, but preemption can
  // re-evaluate at an already-seen time; clamp so window pruning is stable.
  now = std::max(now, last_now_);
  last_now_ = now;
  window_.push_back(Sample{now, totals});
  const double horizon = now - options_.window_s;
  while (window_.size() > 1 && window_.front().time < horizon) {
    window_.erase(window_.begin());
  }

  // Windowed deltas between the oldest retained sample and the newest.
  const Signals& oldest = window_.front().totals;
  const double stall_delta = totals.hazard_stall_s - oldest.hazard_stall_s;
  const long long abort_delta =
      totals.migration_aborts - oldest.migration_aborts;
  const bool hot = stall_delta >
                       options_.stall_trip_fraction * options_.window_s ||
                   abort_delta >= options_.abort_trip;
  if (hot) last_hot_ = now;

  if (hot && level_ < options_.max_level &&
      now - last_change_ >= options_.min_dwell_s) {
    ++level_;
    peak_level_ = std::max(peak_level_, level_);
    last_change_ = now;
    ++steps_down_;
    events_.push_back(DegradationEvent{now, level_, true});
    // A fresh window after stepping: the telemetry that tripped this level
    // must not immediately trip the next one.
    window_.erase(window_.begin(), window_.end() - 1);
    return;
  }
  if (!hot && level_ > 0 && now - last_hot_ >= options_.calm_window_s &&
      now - last_change_ >= options_.min_dwell_s) {
    --level_;
    last_change_ = now;
    ++steps_up_;
    events_.push_back(DegradationEvent{now, level_, false});
  }
}

}  // namespace daop::eval
