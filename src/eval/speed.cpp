#include "eval/speed.hpp"

#include "cache/arbiter.hpp"
#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "core/daop_engine.hpp"
#include "data/trace_generator.hpp"
#include "engines/fetch_engine.hpp"
#include "engines/fiddler.hpp"
#include "engines/run_metrics.hpp"
#include "engines/session.hpp"
#include "model/op_costs.hpp"

namespace daop::eval {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::MoEOnDemand:       return "MoE-OnDemand";
    case EngineKind::DeepSpeedMII:      return "DeepSpeed-MII";
    case EngineKind::MixtralOffloading: return "Mixtral-Offloading";
    case EngineKind::PreGatedMoE:       return "Pre-gated MoE";
    case EngineKind::Fiddler:           return "Fiddler";
    case EngineKind::Daop:              return "DAOP (ours)";
    case EngineKind::EdgeMoE:           return "EdgeMoE";
    case EngineKind::MoEInfinity:       return "MoE-Infinity";
  }
  return "?";
}

std::vector<EngineKind> paper_baseline_engines() {
  return {EngineKind::MoEOnDemand, EngineKind::DeepSpeedMII,
          EngineKind::MixtralOffloading, EngineKind::Fiddler,
          EngineKind::Daop};
}

std::vector<EngineKind> extended_baseline_engines() {
  return {EngineKind::MoEOnDemand,  EngineKind::DeepSpeedMII,
          EngineKind::MixtralOffloading, EngineKind::PreGatedMoE,
          EngineKind::EdgeMoE,      EngineKind::MoEInfinity,
          EngineKind::Fiddler,      EngineKind::Daop};
}

std::unique_ptr<engines::Engine> make_engine(
    EngineKind kind, const model::OpCosts& costs,
    const core::DaopConfig& daop_config) {
  switch (kind) {
    case EngineKind::MoEOnDemand:
      return engines::make_moe_ondemand(costs);
    case EngineKind::DeepSpeedMII:
      return engines::make_deepspeed_mii(costs);
    case EngineKind::MixtralOffloading:
      return engines::make_mixtral_offloading(costs);
    case EngineKind::PreGatedMoE:
      return engines::make_pregated_moe(costs);
    case EngineKind::Fiddler:
      return engines::make_fiddler(costs);
    case EngineKind::Daop:
      return core::make_daop(costs, daop_config);
    case EngineKind::EdgeMoE:
      return engines::make_edgemoe(costs);
    case EngineKind::MoEInfinity:
      return engines::make_moe_infinity(costs);
  }
  DAOP_CHECK_MSG(false, "unknown engine kind");
  return nullptr;
}

cache::Placement calibrated_initial_placement(
    const model::ModelConfig& model_cfg, const SpeedEvalOptions& options) {
  // §IV-A calibration on the ShareGPT-like distribution.
  const data::TraceGenerator calib_gen(data::sharegpt_calibration(),
                                       model_cfg.n_layers, model_cfg.n_experts,
                                       model_cfg.top_k,
                                       options.seed ^ 0xCA11Bu);
  const auto calib_counts = cache::calibrate_activation_counts(
      calib_gen, options.calibration_seqs);
  return cache::init_placement_calibrated(model_cfg.n_layers,
                                          model_cfg.n_experts, options.ecr,
                                          calib_counts);
}

std::vector<data::SequenceTrace> generate_eval_traces(
    const model::ModelConfig& model_cfg, const data::WorkloadSpec& workload,
    const SpeedEvalOptions& options) {
  const data::TraceGenerator gen(workload, model_cfg.n_layers,
                                 model_cfg.n_experts, model_cfg.top_k,
                                 options.seed);
  std::vector<data::SequenceTrace> traces;
  traces.reserve(static_cast<std::size_t>(options.n_seqs));
  for (int s = 0; s < options.n_seqs; ++s) {
    traces.push_back(gen.generate(s, options.prompt_len, options.gen_len));
  }
  return traces;
}

engines::RunResult run_speed_eval(EngineKind kind,
                                  const model::ModelConfig& model_cfg,
                                  const sim::PlatformSpec& platform,
                                  const data::WorkloadSpec& workload,
                                  const SpeedEvalOptions& options) {
  const auto results =
      run_speed_eval_per_sequence(kind, model_cfg, platform, workload, options);
  return engines::aggregate_results(results[0].engine, results);
}

std::vector<engines::RunResult> run_speed_eval_per_sequence(
    EngineKind kind, const model::ModelConfig& model_cfg,
    const sim::PlatformSpec& platform, const data::WorkloadSpec& workload,
    const SpeedEvalOptions& options) {
  DAOP_CHECK_GT(options.n_seqs, 0);
  const sim::CostModel cm(platform);
  const model::OpCosts costs(model_cfg, cm);

  // Calibration and trace generation are pure functions of the options, so
  // a grid runner may hand in hoisted copies; either way the values — and
  // every downstream scheduling decision — are identical.
  std::unique_ptr<cache::Placement> computed_initial;
  if (options.initial_placement == nullptr) {
    computed_initial = std::make_unique<cache::Placement>(
        calibrated_initial_placement(model_cfg, options));
  }
  const cache::Placement& initial = options.initial_placement != nullptr
                                        ? *options.initial_placement
                                        : *computed_initial;
  std::vector<data::SequenceTrace> computed_traces;
  if (options.traces == nullptr) {
    computed_traces = generate_eval_traces(model_cfg, workload, options);
  } else {
    DAOP_CHECK_GE(static_cast<int>(options.traces->size()), options.n_seqs);
  }
  const std::vector<data::SequenceTrace>& traces =
      options.traces != nullptr ? *options.traces : computed_traces;

  auto engine = make_engine(kind, costs, options.daop_config);
  // The fault model is shared across the eval's sequences (one continuous
  // deterministic hazard environment) and must outlive every run.
  sim::FaultModel fault(options.hazards, options.seed ^ 0xFA017ULL);
  if (fault.enabled()) engine->set_fault_model(&fault);
  if (options.profiler != nullptr) engine->set_profiler(options.profiler);
  options.cache.validate();
  // One dynamic cache across the whole eval: demand learned on early
  // sequences steers later ones. Policy `frozen` constructs no cache and
  // keeps the exact engine->run() path below.
  std::unique_ptr<cache::ExpertCache> ecache;
  if (options.cache.enabled()) {
    ecache = std::make_unique<cache::ExpertCache>(
        options.cache, model_cfg.n_layers, model_cfg.n_experts);
  }
  std::vector<engines::RunResult> results;
  results.reserve(static_cast<std::size_t>(options.n_seqs));
  for (int s = 0; s < options.n_seqs; ++s) {
    const data::SequenceTrace& trace = traces[static_cast<std::size_t>(s)];
    if (ecache != nullptr) {
      // Each sequence starts from the calibrated placement (comparable to
      // the frozen baseline) but may re-migrate during decode; the arbiter
      // scopes those moves to this sequence's private placement copy.
      cache::PlacementArbiter arbiter(initial);
      engines::SessionEnv env;
      env.request_id = s;
      env.arbiter = &arbiter;
      env.cache = ecache.get();
      auto session = engine->open_session(trace, arbiter.placement(), env);
      session->prefill();
      while (session->decode_step()) {
      }
      results.push_back(session->close());
      DAOP_CHECK_EQ(arbiter.total_pin_count(), 0);
    } else {
      results.push_back(engine->run(trace, initial));
    }
    if (options.metrics != nullptr) {
      engines::record_run_metrics(*options.metrics, results.back());
    }
  }
  if (ecache != nullptr && options.cache_report != nullptr) {
    *options.cache_report = ecache->report();
  }
  return results;
}

}  // namespace daop::eval
