// Accuracy-proxy harness for the functional plane (Tables V & VI).
//
// The paper evaluates downstream-task accuracy of real Mixtral/Phi models.
// With synthetic weights there is no external task skill to measure, so the
// proxy scores DAOP's generations against the exact official model on the
// SAME conditioned inputs:
//   - exact_match: fraction of episodes whose full generation matches
//     (the paper's ExactMatch analogue),
//   - token_agreement: per-token greedy agreement,
//   - rouge1/rouge2: unigram/bigram overlap F1 (the paper's R1/R2 analogue
//     for generation-scored tasks).
// Official-vs-official is 1.0 by construction; the paper's claim
// "DAOP ≈ official, degrading only for GSM8K at small ECR" maps to these
// ratios staying near 1.0 and dropping for drift-heavy workloads.
#pragma once

#include <cstdint>

#include "cache/placement.hpp"
#include "core/daop_config.hpp"
#include "core/daop_executor.hpp"
#include "data/workload.hpp"
#include "model/functional_model.hpp"

namespace daop::eval {

struct AccuracyMetrics {
  double exact_match = 0.0;
  double token_agreement = 0.0;
  double rouge1 = 0.0;
  double rouge2 = 0.0;
  int episodes = 0;
  core::FunctionalRunStats stats;  ///< summed over episodes
};

/// ROUGE-N F1 over token sequences (order-free n-gram overlap).
double rouge_n(std::span<const int> reference, std::span<const int> candidate,
               int n);

/// Decodes `n_seqs` calibration episodes with the official model under
/// `spec` conditioning and accumulates decode-phase activation counts
/// (functional-plane §IV-A calibration).
std::vector<std::vector<double>> calibrate_functional_counts(
    const model::FunctionalModel& model, const data::WorkloadSpec& spec,
    int n_seqs, int prompt_len, int gen_len, std::uint64_t seed);

struct AccuracyEvalOptions {
  int n_episodes = 16;
  int prompt_len = 24;
  int gen_len = 32;
  std::uint64_t seed = 42;
  int calibration_seqs = 8;
  /// Optional precomputed calibration counts (callers sweeping ECR reuse
  /// one calibration, like the paper's single ShareGPT pass). When null the
  /// harness calibrates internally.
  const std::vector<std::vector<double>>* calib_counts = nullptr;
};

/// Runs official vs DAOP generations episode by episode and scores them.
AccuracyMetrics evaluate_daop_accuracy(const model::FunctionalModel& model,
                                       const data::WorkloadSpec& spec,
                                       const core::DaopConfig& config,
                                       double ecr,
                                       const AccuracyEvalOptions& options);

}  // namespace daop::eval
