// Speed/energy evaluation harness for the performance plane.
//
// Wires together model config + platform + workload + ECR, builds the
// §IV-A calibrated initial placement from the calibration workload, runs an
// engine over a batch of sequences and aggregates (Figs. 9/10, Table IV).
#pragma once

#include <cstdint>
#include <memory>

#include "cache/expert_cache.hpp"
#include "core/daop_config.hpp"
#include "data/routing_trace.hpp"
#include "data/workload.hpp"
#include "engines/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/device.hpp"
#include "sim/fault_model.hpp"

namespace daop::eval {

enum class EngineKind {
  MoEOnDemand,
  DeepSpeedMII,
  MixtralOffloading,
  PreGatedMoE,
  Fiddler,
  Daop,
  EdgeMoE,       ///< related work (§II-B), beyond the paper's Fig. 9 set
  MoEInfinity,   ///< related work (§II-B), beyond the paper's Fig. 9 set
};

const char* engine_kind_name(EngineKind kind);

/// All engines the paper's Fig. 9 / Table IV compare.
std::vector<EngineKind> paper_baseline_engines();

/// Fig. 9 set plus the §II-B related-work engines (Pre-gated MoE, EdgeMoE,
/// MoE-Infinity) — used by the extended comparison bench.
std::vector<EngineKind> extended_baseline_engines();

std::unique_ptr<engines::Engine> make_engine(
    EngineKind kind, const model::OpCosts& costs,
    const core::DaopConfig& daop_config = {});

struct SpeedEvalOptions {
  int n_seqs = 6;
  int prompt_len = 256;
  int gen_len = 256;
  double ecr = 0.469;  ///< paper's full-GPU-memory ECR for Mixtral
  int calibration_seqs = 32;
  std::uint64_t seed = 7;
  core::DaopConfig daop_config;
  /// Hazard environment injected into every run (default: calm device —
  /// bit-identical to an eval without a fault plane).
  sim::HazardScenario hazards;
  /// Optional observability sink: each sequence's result is recorded into it
  /// (labeled by engine). Strictly passive — timing results are bit-identical
  /// with or without a registry. nullptr (the default) disables.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional critical-path profiler: each sequence records its attribution
  /// profile into it at close. Strictly passive like the registry.
  obs::Profiler* profiler = nullptr;
  /// Dynamic expert-cache policy (cache/expert_cache.hpp). Policy `frozen`
  /// (the default) runs the classic engine->run() path, bit-identical to
  /// the pre-cache eval. A dynamic policy drives each sequence through an
  /// arbitrated session sharing ONE ExpertCache across the whole eval, so
  /// demand statistics learned on early sequences steer later ones.
  cache::ExpertCacheOptions cache;
  /// When non-null and the cache is enabled, receives the cache's
  /// attribution report after the eval (`--cache-report`).
  std::string* cache_report = nullptr;

  // ---- Shared-precomputation hooks (eval/parallel_sweep.hpp). Both are
  // pure functions of other option fields, so supplying them is bit-identical
  // to the default in-eval computation — the grid runner hoists them so N
  // cells with the same key pay for one calibration / trace-generation pass
  // instead of N (the dominant cost of large sweeps; see docs/PERFORMANCE.md).
  /// Precomputed §IV-A calibrated placement; must equal what
  /// calibrated_initial_placement() returns for these options. nullptr
  /// (the default) computes it in-eval.
  const cache::Placement* initial_placement = nullptr;
  /// Pregenerated per-sequence routing traces (size >= n_seqs); must equal
  /// what generate_eval_traces() returns for these options. nullptr (the
  /// default) generates them in-eval.
  const std::vector<data::SequenceTrace>* traces = nullptr;
};

/// The §IV-A calibrated initial placement exactly as run_speed_eval computes
/// it from `options` (calibration workload, seed ^ 0xCA11B, ECR).
cache::Placement calibrated_initial_placement(
    const model::ModelConfig& model_cfg, const SpeedEvalOptions& options);

/// The eval's per-sequence routing traces exactly as run_speed_eval
/// generates them (sequence ids 0..n_seqs-1 from `options.seed`).
std::vector<data::SequenceTrace> generate_eval_traces(
    const model::ModelConfig& model_cfg, const data::WorkloadSpec& workload,
    const SpeedEvalOptions& options);

/// Runs `kind` over `n_seqs` sequences of `workload` and aggregates.
engines::RunResult run_speed_eval(EngineKind kind,
                                  const model::ModelConfig& model_cfg,
                                  const sim::PlatformSpec& platform,
                                  const data::WorkloadSpec& workload,
                                  const SpeedEvalOptions& options);

/// Same run, but returning every per-sequence result (for dispersion /
/// error-bar reporting in the bench harness).
std::vector<engines::RunResult> run_speed_eval_per_sequence(
    EngineKind kind, const model::ModelConfig& model_cfg,
    const sim::PlatformSpec& platform, const data::WorkloadSpec& workload,
    const SpeedEvalOptions& options);

}  // namespace daop::eval
