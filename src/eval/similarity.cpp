#include "eval/similarity.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace daop::eval {

double matrix_similarity(const std::vector<std::vector<double>>& p,
                         const std::vector<std::vector<double>>& d) {
  DAOP_CHECK_EQ(p.size(), d.size());
  DAOP_CHECK(!p.empty());
  double total = 0.0;
  for (std::size_t l = 0; l < p.size(); ++l) {
    DAOP_CHECK_EQ(p[l].size(), d[l].size());
    total += cosine_similarity(std::span<const double>(p[l]),
                               std::span<const double>(d[l]));
  }
  return total / static_cast<double>(p.size());
}

double prefill_decode_similarity(const data::SequenceTrace& trace) {
  return matrix_similarity(trace.activation_counts(data::Phase::Prefill),
                           trace.activation_counts(data::Phase::Decode));
}

double avg_prefill_decode_similarity(const data::TraceGenerator& gen,
                                     int n_seqs) {
  DAOP_CHECK_GT(n_seqs, 0);
  double total = 0.0;
  for (int s = 0; s < n_seqs; ++s) {
    total += prefill_decode_similarity(gen.generate(s));
  }
  return total / n_seqs;
}

std::vector<std::vector<double>> marginal_activation(
    const data::TraceGenerator& gen, int n_seqs) {
  DAOP_CHECK_GT(n_seqs, 0);
  std::vector<std::vector<double>> total;
  for (int s = 0; s < n_seqs; ++s) {
    const auto counts = gen.generate(s).activation_counts(data::Phase::Decode);
    if (total.empty()) {
      total.assign(counts.size(), std::vector<double>(counts[0].size(), 0.0));
    }
    for (std::size_t l = 0; l < counts.size(); ++l) {
      for (std::size_t e = 0; e < counts[l].size(); ++e) {
        total[l][e] += counts[l][e];
      }
    }
  }
  for (auto& row : total) {
    double sum = 0.0;
    for (double v : row) sum += v;
    if (sum > 0.0) {
      for (auto& v : row) v /= sum;
    }
  }
  return total;
}

std::vector<double> prediction_accuracy_by_layer(
    const data::TraceGenerator& gen, int n_seqs) {
  DAOP_CHECK_GT(n_seqs, 0);
  std::vector<double> correct;
  std::vector<double> total;
  for (int s = 0; s < n_seqs; ++s) {
    const data::SequenceTrace tr = gen.generate(s);
    if (correct.empty()) {
      correct.assign(static_cast<std::size_t>(tr.n_layers()), 0.0);
      total.assign(static_cast<std::size_t>(tr.n_layers()), 0.0);
    }
    for (int l = 1; l < tr.n_layers(); ++l) {
      for (int t = 0; t < tr.gen_len; ++t) {
        const std::vector<int> pred = tr.predicted(l, t);
        if (pred.empty()) continue;
        const std::vector<int> truth = tr.selected(data::Phase::Decode, l, t);
        for (int e : truth) {
          total[static_cast<std::size_t>(l)] += 1.0;
          if (std::find(pred.begin(), pred.end(), e) != pred.end()) {
            correct[static_cast<std::size_t>(l)] += 1.0;
          }
        }
      }
    }
  }
  std::vector<double> acc(correct.size(), 0.0);
  for (std::size_t l = 0; l < correct.size(); ++l) {
    if (total[l] > 0.0) acc[l] = correct[l] / total[l];
  }
  return acc;
}

double avg_prediction_accuracy(const data::TraceGenerator& gen, int n_seqs) {
  const auto acc = prediction_accuracy_by_layer(gen, n_seqs);
  DAOP_CHECK_GT(acc.size(), 1U);
  double total = 0.0;
  for (std::size_t l = 1; l < acc.size(); ++l) total += acc[l];
  return total / static_cast<double>(acc.size() - 1);
}

double decode_window_similarity(const data::SequenceTrace& trace,
                                int window) {
  DAOP_CHECK_GT(window, 0);
  const int n_windows = trace.gen_len / window;
  if (n_windows < 2) return 1.0;
  double total = 0.0;
  int pairs = 0;
  auto prev = trace.decode_window_counts(0, window);
  for (int w = 1; w < n_windows; ++w) {
    auto cur = trace.decode_window_counts(w * window, (w + 1) * window);
    total += matrix_similarity(prev, cur);
    ++pairs;
    prev = std::move(cur);
  }
  return total / pairs;
}

double avg_decode_window_similarity(const data::TraceGenerator& gen,
                                    int n_seqs, int window) {
  DAOP_CHECK_GT(n_seqs, 0);
  double total = 0.0;
  for (int s = 0; s < n_seqs; ++s) {
    total += decode_window_similarity(gen.generate(s), window);
  }
  return total / n_seqs;
}

}  // namespace daop::eval
