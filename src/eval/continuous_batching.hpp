// Continuous-batching serving scheduler (iteration-level scheduling).
//
// The sequential server runs each request to completion on a private
// timeline, so concurrent requests never contend for PCIe or the CPU pool
// and decode bubbles can never be filled by another request's work. This
// scheduler instead admits Poisson arrivals up to a concurrency bound onto
// ONE shared sim::Timeline and interleaves decode steps across the in-flight
// engines::SequenceSessions: at every scheduling decision it either admits
// the head of the FIFO queue (when a slot is free and the admission time is
// no later than every in-flight session's frontier) or advances the
// least-advanced session by one token. All sessions schedule against one
// cache::PlacementArbiter-owned expert placement — the cache is a device
// resource, not a per-request one — with reference-counted pins so one
// request's migration can never evict an expert a concurrent request is
// computing with (see cache/arbiter.hpp).
//
// Deterministic and single-threaded like the rest of the simulation:
// "concurrent" sessions are interleaved by this scheduler, never by threads.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "cache/arbiter.hpp"
#include "cache/expert_cache.hpp"
#include "data/routing_trace.hpp"
#include "engines/engine.hpp"
#include "engines/session.hpp"
#include "eval/overload.hpp"
#include "obs/timeseries.hpp"

namespace daop::eval {

class ContinuousBatchingScheduler {
 public:
  struct Options {
    /// Maximum simultaneously in-flight sessions (admission bound).
    int max_concurrent = 4;
    /// Client-side queue-wait timeout / retry / backoff, with the same
    /// semantics as the sequential server (ServingOptions): a request whose
    /// admission would start more than `request_timeout_s` after its
    /// (re-)arrival is abandoned and retries after a backoff, up to
    /// `max_request_retries` re-queues; then it is dropped without ever
    /// occupying a slot. 0 = clients wait forever.
    double request_timeout_s = 0.0;
    int max_request_retries = 0;
    double retry_backoff_s = 0.5;
    /// Overload-control plane (eval/overload.hpp). Default-constructed it
    /// is disabled and the scheduler runs its original loop, bit-identical
    /// to the pre-overload code; any non-default option switches to the
    /// overload-aware loop (admission policies, bounded queue, deadline
    /// shedding, preemption, hazard-adaptive degradation).
    OverloadOptions overload;
    /// Dynamic expert-cache policy (cache/expert_cache.hpp). Policy
    /// `frozen` (the default) constructs no cache and leaves every session
    /// on the prefill-frozen placement — bit-identical to the pre-cache
    /// scheduler. A dynamic policy shares ONE ExpertCache across all
    /// sessions of this scheduler, scoring unpinned GPU slots by aggregate
    /// demand and re-migrating during decode.
    cache::ExpertCacheOptions cache;
    /// Receives scheduler-level overload instants (sheds, degradation
    /// ladder steps); session-level spans come from the engine's own
    /// tracer. nullptr (the default) disables them.
    obs::SpanTracer* tracer = nullptr;
    /// Windowed time-series recorder (obs/timeseries.hpp). Strictly
    /// passive: consulted only AFTER each scheduling decision, behind a
    /// null-pointer gate, so attaching one never changes the run. nullptr
    /// (the default) records nothing.
    obs::TimeSeriesRecorder* tseries = nullptr;
    /// Recorder channel this scheduler records into (the cluster node
    /// index; 0 for single-node serving).
    int tseries_channel = 0;
  };

  struct Request {
    long long id = 0;
    double arrival = 0.0;  ///< client arrival time (serving clock)
    /// Per-request deadline budget override for the overload plane: this
    /// request's first token is due `deadline_s` after `arrival`. 0 uses
    /// OverloadOptions::deadline_s. A TIGHTER budget than the in-flight
    /// sessions' makes the request deadline-critical (it is served first
    /// under `deadline-edf`, preempting if allowed).
    double deadline_s = 0.0;
    data::SequenceTrace trace;
  };

  /// One request's client-observed outcome. Exactly one of
  /// served/dropped/shed holds for every enqueued request (conservation is
  /// DAOP_CHECKed).
  struct Outcome {
    long long id = 0;
    double arrival = 0.0;
    bool served = false;
    bool shed = false;          ///< rejected by admission control
    ShedReason shed_reason = ShedReason::kQueueFull;  ///< valid when shed
    double start = 0.0;         ///< admission (service start) time
    double end = 0.0;           ///< completion time (served only)
    long long retries = 0;      ///< client re-queues before admission/drop
    long long preemptions = 0;  ///< times this request's session was parked
    engines::RunResult result;  ///< session result (served only); times are
                                ///< relative to `start`
  };

  /// The engine, timeline, and initial placement must outlive the
  /// scheduler. The scheduler copies `initial` into its arbiter; every
  /// session it opens schedules on `timeline` and arbitrates that copy.
  ContinuousBatchingScheduler(engines::Engine& engine, sim::Timeline& timeline,
                              const cache::Placement& initial,
                              const Options& options);

  /// Enqueues one request. Requests must be enqueued in nondecreasing
  /// arrival order (FIFO admission is by queue order).
  void enqueue(Request request);

  /// Drives every enqueued request to served, dropped, or shed and returns
  /// the outcomes sorted by request id.
  std::vector<Outcome> run();

  const cache::PlacementArbiter& arbiter() const { return arbiter_; }
  /// The shared dynamic cache, or nullptr under policy `frozen`.
  const cache::ExpertCache* expert_cache() const { return cache_.get(); }
  /// Overload telemetry for the completed run (all-zero when the overload
  /// plane is disabled).
  const OverloadStats& overload_stats() const { return overload_stats_; }

 private:
  struct Pending {
    Request request;
    double eff_arrival = 0.0;  ///< arrival, pushed forward by retries
    int attempts = 0;
  };
  struct Active {
    long long id = 0;
    double arrival = 0.0;
    double start = 0.0;
    double deadline = 0.0;  ///< absolute first-token deadline (0 = none)
    long long retries = 0;
    long long preemptions = 0;
    std::unique_ptr<engines::SequenceSession> session;
  };

  /// The original loop, preserved verbatim: runs when the overload plane is
  /// disabled so default-option serving stays bit-identical to the
  /// pre-overload goldens.
  std::vector<Outcome> run_legacy();
  /// Overload-aware loop: admission policies, bounded queue, deadline
  /// shedding, preemption/resume, degradation ladder.
  std::vector<Outcome> run_overload();

  engines::Engine& engine_;
  sim::Timeline& tl_;
  cache::PlacementArbiter arbiter_;
  /// Shared dynamic expert cache; null under policy `frozen` so every
  /// SessionEnv::cache stays nullptr (the exact pre-cache no-op).
  std::unique_ptr<cache::ExpertCache> cache_;
  Options options_;
  std::deque<Pending> pending_;
  std::vector<Active> active_;
  /// Preempted sessions waiting for a slot to resume in (overload loop
  /// only), in park order.
  std::deque<Active> parked_;
  /// Times at which currently-unoccupied slots became free (size is always
  /// max_concurrent - active_.size(); a parked session holds no slot — its
  /// preemptor does).
  std::vector<double> free_slots_;
  std::vector<Outcome> outcomes_;
  OverloadStats overload_stats_;
};

}  // namespace daop::eval
