// Continuous-batching serving scheduler (iteration-level scheduling).
//
// The sequential server runs each request to completion on a private
// timeline, so concurrent requests never contend for PCIe or the CPU pool
// and decode bubbles can never be filled by another request's work. This
// scheduler instead admits Poisson arrivals up to a concurrency bound onto
// ONE shared sim::Timeline and interleaves decode steps across the in-flight
// engines::SequenceSessions: at every scheduling decision it either admits
// the head of the FIFO queue (when a slot is free and the admission time is
// no later than every in-flight session's frontier) or advances the
// least-advanced session by one token. All sessions schedule against one
// cache::PlacementArbiter-owned expert placement — the cache is a device
// resource, not a per-request one — with reference-counted pins so one
// request's migration can never evict an expert a concurrent request is
// computing with (see cache/arbiter.hpp).
//
// Deterministic and single-threaded like the rest of the simulation:
// "concurrent" sessions are interleaved by this scheduler, never by threads.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "cache/arbiter.hpp"
#include "data/routing_trace.hpp"
#include "engines/engine.hpp"
#include "engines/session.hpp"

namespace daop::eval {

class ContinuousBatchingScheduler {
 public:
  struct Options {
    /// Maximum simultaneously in-flight sessions (admission bound).
    int max_concurrent = 4;
    /// Client-side queue-wait timeout / retry / backoff, with the same
    /// semantics as the sequential server (ServingOptions): a request whose
    /// admission would start more than `request_timeout_s` after its
    /// (re-)arrival is abandoned and retries after a backoff, up to
    /// `max_request_retries` re-queues; then it is dropped without ever
    /// occupying a slot. 0 = clients wait forever.
    double request_timeout_s = 0.0;
    int max_request_retries = 0;
    double retry_backoff_s = 0.5;
  };

  struct Request {
    long long id = 0;
    double arrival = 0.0;  ///< client arrival time (serving clock)
    data::SequenceTrace trace;
  };

  /// One request's client-observed outcome. Exactly one of served/dropped
  /// holds for every enqueued request (conservation is DAOP_CHECKed).
  struct Outcome {
    long long id = 0;
    double arrival = 0.0;
    bool served = false;
    double start = 0.0;         ///< admission (service start) time
    double end = 0.0;           ///< completion time (served only)
    long long retries = 0;      ///< client re-queues before admission/drop
    engines::RunResult result;  ///< session result (served only); times are
                                ///< relative to `start`
  };

  /// The engine, timeline, and initial placement must outlive the
  /// scheduler. The scheduler copies `initial` into its arbiter; every
  /// session it opens schedules on `timeline` and arbitrates that copy.
  ContinuousBatchingScheduler(engines::Engine& engine, sim::Timeline& timeline,
                              const cache::Placement& initial,
                              const Options& options);

  /// Enqueues one request. Requests must be enqueued in nondecreasing
  /// arrival order (FIFO admission is by queue order).
  void enqueue(Request request);

  /// Drives every enqueued request to served or dropped and returns the
  /// outcomes sorted by request id.
  std::vector<Outcome> run();

  const cache::PlacementArbiter& arbiter() const { return arbiter_; }

 private:
  struct Pending {
    Request request;
    double eff_arrival = 0.0;  ///< arrival, pushed forward by retries
    int attempts = 0;
  };
  struct Active {
    long long id = 0;
    double arrival = 0.0;
    double start = 0.0;
    long long retries = 0;
    std::unique_ptr<engines::SequenceSession> session;
  };

  engines::Engine& engine_;
  sim::Timeline& tl_;
  cache::PlacementArbiter arbiter_;
  Options options_;
  std::deque<Pending> pending_;
  std::vector<Active> active_;
  /// Times at which currently-unoccupied slots became free (size is always
  /// max_concurrent - active_.size()).
  std::vector<double> free_slots_;
  std::vector<Outcome> outcomes_;
};

}  // namespace daop::eval
