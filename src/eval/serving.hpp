// Interactive-serving simulation: a single-device FCFS queue of chat
// requests with Poisson arrivals, served by one inference engine.
//
// The paper evaluates single-stream throughput (batch size 1, §V-A(c));
// this harness extends the evaluation to the deployment question a chatbot
// operator actually has: at a given request rate, what time-to-first-token
// and end-to-end latency does each engine deliver, and where does it
// saturate?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/expert_cache.hpp"
#include "common/stats.hpp"
#include "eval/overload.hpp"
#include "eval/speed.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span_tracer.hpp"
#include "obs/timeseries.hpp"

namespace daop::eval {

struct ServingOptions {
  /// Mean request arrival rate (requests/second, Poisson process).
  double arrival_rate_rps = 0.02;
  int n_requests = 24;
  int min_prompt = 64;
  int max_prompt = 320;
  int min_gen = 48;
  int max_gen = 256;
  double ecr = 0.469;
  int calibration_seqs = 32;
  std::uint64_t seed = 99;
  core::DaopConfig daop_config;

  /// Maximum simultaneously in-flight requests. 1 (the default) is the
  /// sequential FCFS server — bit-identical to the pre-scheduler harness.
  /// >= 2 switches to the continuous-batching scheduler
  /// (eval/continuous_batching.hpp): in-flight sessions share one timeline
  /// and one arbitrated expert placement, and decode steps interleave at
  /// iteration level. Same request plan, timeout and SLO semantics either
  /// way, so the two modes are directly comparable on one seed.
  int max_concurrent = 1;

  /// Hazard environment injected into every served request (default: calm
  /// device — bit-identical to serving without a fault plane).
  sim::HazardScenario hazards;

  /// Client-side queue-wait timeout: a request still unserved this long
  /// after (re-)arriving is abandoned by its client. 0 = clients wait
  /// forever (the pre-fault-plane behaviour).
  double request_timeout_s = 0.0;
  /// How many times an abandoned request re-enters the queue before it is
  /// dropped for good.
  int max_request_retries = 0;
  /// Client backoff between abandoning and retrying.
  double retry_backoff_s = 0.5;

  /// SLO thresholds for violation accounting; 0 disables the corresponding
  /// check.
  double slo_ttft_s = 0.0;
  double slo_latency_s = 0.0;

  /// Overload-control plane (eval/overload.hpp): admission policy, bounded
  /// queue, deadline shedding, preemption, hazard-adaptive degradation.
  /// Default-constructed it is disabled and serving is bit-identical to the
  /// pre-overload harness. Requires max_concurrent >= 2 (it layers on the
  /// continuous-batching scheduler).
  OverloadOptions overload;
  /// Deadline-critical request mix: every `priority_every`-th request
  /// (indices priority_every-1, 2*priority_every-1, ...) carries the
  /// tighter `priority_deadline_s` first-token budget instead of
  /// overload.deadline_s — the interactive traffic class that exercises
  /// `deadline-edf` ordering and preemption. 0 = uniform deadlines.
  int priority_every = 0;
  double priority_deadline_s = 0.0;

  /// Dynamic expert-cache policy (cache/expert_cache.hpp). Policy `frozen`
  /// (the default) keeps DAOP's prefill-frozen placement and is
  /// bit-identical to the pre-cache harness. A dynamic policy requires
  /// max_concurrent >= 2 — the cache scores aggregate demand across the
  /// continuous-batching scheduler's live sessions.
  cache::ExpertCacheOptions cache;
  /// When non-null and the cache is enabled, receives the cache's
  /// fig8-style attribution report after the run (`--cache-report`).
  std::string* cache_report = nullptr;

  // ---- Observability (both default off) ----
  // Attaching either is strictly passive: the simulated schedule, queue
  // decisions and all timing results stay bit-identical.
  /// Receives serving latency histograms, request outcome counters and the
  /// summed engine counters.
  obs::MetricsRegistry* metrics = nullptr;
  /// Receives per-request spans (queue wait, request service, first-token
  /// instant) plus the engine's own spans shifted onto the serving clock.
  obs::SpanTracer* tracer = nullptr;
  /// Receives critical-path attribution profiles (obs/profiler.hpp). In the
  /// sequential mode every served request records its own per-run profile;
  /// in continuous-batching mode the shared timeline's whole window is
  /// profiled once (per-request phases are not attributable to one session).
  obs::Profiler* profiler = nullptr;
  /// Receives windowed time series over simulated time
  /// (obs/timeseries.hpp), recorded on channel 0 as scheduling decisions
  /// resolve and finalized at the run makespan. Strictly passive like the
  /// other sinks.
  obs::TimeSeriesRecorder* tseries = nullptr;
};

struct ServingResult {
  std::string engine;
  int requests = 0;
  Summary ttft_s;          ///< arrival -> first output token (served only)
  Summary latency_s;       ///< arrival -> request complete (served only)
  Summary queue_wait_s;    ///< arrival -> service start (served only)
  Summary tpot_s;          ///< mean time per output token (served only)
  /// Bucketed latency distributions (default_latency_buckets), observed per
  /// served request. histogram_quantile over these agrees with the exact
  /// Summary percentiles to within one bucket width.
  obs::HistogramData ttft_hist;
  obs::HistogramData tpot_hist;
  obs::HistogramData latency_hist;
  double throughput_tps = 0.0;  ///< generated tokens / makespan
  double makespan_s = 0.0;
  /// Fraction of the makespan the server spent serving (1.0 ≈ saturated).
  double busy_fraction = 0.0;

  // ---- Robustness telemetry ----
  int served = 0;                 ///< requests that completed service
  int dropped = 0;                ///< abandoned after exhausting retries
  long long request_retries = 0;  ///< client re-queues after timeouts
  /// Served requests breaching an SLO threshold, plus dropped and shed
  /// requests.
  int slo_violations = 0;
  double slo_violation_rate = 0.0;  ///< slo_violations / requests
  /// Engine counters summed over served requests (migration retries,
  /// aborts, stale pre-calcs, hazard stall time, ...).
  engines::EngineCounters counters;

  // ---- Overload-control telemetry (all zero when the plane is off) ----
  int shed = 0;  ///< rejected by admission control (conservation:
                 ///< served + dropped + shed == requests, DAOP_CHECKed)
  long long shed_queue_full = 0;
  long long shed_deadline = 0;
  long long shed_degraded = 0;
  /// Cluster-only reason (failover budget exhausted after node crashes);
  /// always 0 in single-node serving, populated by cluster/serving.
  long long shed_node_lost = 0;
  long long preemptions = 0;  ///< sessions parked for deadline-critical work
  long long degrade_steps_down = 0;
  long long degrade_steps_up = 0;
  int degrade_peak_level = 0;
  int degrade_final_level = 0;

  // ---- Dynamic-cache telemetry (all zero under policy `frozen`) ----
  long long cache_fills = 0;      ///< experts promoted to the GPU
  long long cache_evictions = 0;  ///< experts demoted (== fills: swaps)
  long long cache_refusals = 0;   ///< evictions refused (victim pinned)
  long long cache_aborts = 0;     ///< swap migrations abandoned
  double cache_bytes_moved = 0.0; ///< fills × per-expert weight bytes (PCIe)

  /// Per-request outcome log, in request-id order, for offline inspection
  /// (`daop_cli serve --out-json` embeds it as `daopRequests`). Populated
  /// by both serving modes.
  struct RequestLogEntry {
    long long id = 0;
    double arrival = 0.0;
    /// "served", "dropped" (client timeout), or "shed:<reason>" with reason
    /// one of queue_full / deadline / degraded.
    std::string outcome;
    long long retries = 0;
    long long preempted = 0;  ///< times this request's session was parked
    /// Loss episodes recovered via warm restore (cluster mode only).
    long long restores = 0;
    /// How the last loss episode resolved — "restored" | "replayed" |
    /// "shed" — or "none" when the request never lost all its copies
    /// (always "none" outside cluster mode).
    std::string recovery = "none";
  };
  std::vector<RequestLogEntry> request_log;
};

/// Simulates `options.n_requests` requests through a FCFS queue served by
/// `kind`. Deterministic in the options' seed.
ServingResult run_serving_eval(EngineKind kind,
                               const model::ModelConfig& model_cfg,
                               const sim::PlatformSpec& platform,
                               const data::WorkloadSpec& workload,
                               const ServingOptions& options);

}  // namespace daop::eval
