// Deterministic parallel execution of speed-eval sweep grids.
//
// A sweep grid is a list of independent (engine × workload × options) cells
// — independent because each cell owns its engine, fault model, timeline,
// and RNG streams (per-cell RNG isolation: every random draw a cell makes is
// seeded from that cell's own options, never from shared mutable state). The
// runner exploits that independence two ways:
//
//  1. Shared precomputation: the §IV-A calibrated placement and the
//     per-sequence routing traces are pure functions of a cell's options, so
//     cells with equal keys share one computation. On robustness-scale grids
//     (48 cells over one workload) this removes ~95% of the trace-generation
//     work — the dominant cost — with bit-identical values.
//  2. Thread-pool fan-out with a deterministic ordered merge: cells run
//     concurrently into pre-allocated index slots; metrics are recorded into
//     the caller's registry on the calling thread afterwards, in cell-then-
//     sequence order — exactly the order a serial loop would have produced.
//
// Contract (locked down by tests/eval/parallel_sweep_test.cpp): the results,
// metrics snapshot, and trace bytes are byte-identical to running every cell
// serially in index order, for any thread count, hazards included.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "eval/speed.hpp"

namespace daop::eval {

/// One independent cell of a speed-eval sweep grid.
struct SpeedGridCell {
  EngineKind kind = EngineKind::Daop;
  model::ModelConfig model;
  sim::PlatformSpec platform;
  data::WorkloadSpec workload;
  /// Cell-local options. `metrics` and `profiler` must be null — passive
  /// sinks are not thread-safe, so the runner records metrics itself in the
  /// ordered merge (see run_speed_grid).
  SpeedEvalOptions options;
  /// Caller-side identification (scenario name etc.); unused by the runner.
  std::string label;
};

/// Everything one cell produced.
struct SpeedGridCellResult {
  std::vector<engines::RunResult> per_sequence;
  engines::RunResult aggregate;
  /// Cache attribution report, when the cell ran with a dynamic cache.
  std::string cache_report;
};

class ParallelSweepRunner {
 public:
  /// threads == 0 shares ThreadPool::global(); any other value runs on a
  /// private pool of that many workers (1 executes inline — fully serial).
  /// The thread count never changes any output byte, only wall-clock time.
  explicit ParallelSweepRunner(unsigned threads = 0) : threads_(threads) {}

  /// Runs every cell and returns their results in cell order. When
  /// `metrics` is non-null, each per-sequence result is recorded into it
  /// after the parallel section, in cell-then-sequence order — the exact
  /// registry a serial loop over the cells would have built.
  std::vector<SpeedGridCellResult> run_speed_grid(
      const std::vector<SpeedGridCell>& cells,
      obs::MetricsRegistry* metrics = nullptr) const;

  /// Generic deterministic fan-out for custom cells (cache policies,
  /// cluster probe runs): executes fn(i) for i in [0, n) on the configured
  /// pool. fn must write only to its own index's slot; callers merge slots
  /// in index order afterwards.
  void run_cells(std::int64_t n,
                 const std::function<void(std::int64_t)>& fn) const;

  unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

}  // namespace daop::eval
