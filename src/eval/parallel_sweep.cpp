#include "eval/parallel_sweep.hpp"

#include <cstdio>
#include <map>
#include <memory>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "engines/run_metrics.hpp"

namespace daop::eval {

namespace {

// Round-trip double formatting for precomputation cache keys: two cells
// share a precomputed value only when the inputs are bit-equal.
void append_g(std::string& s, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g|", v);
  s += buf;
}

void append_i(std::string& s, long long v) {
  s += std::to_string(v);
  s += '|';
}

// Everything calibrated_initial_placement() reads. The calibration workload
// itself is the fixed sharegpt_calibration() preset, so it needs no key.
std::string placement_key(const SpeedGridCell& c) {
  std::string k = "p|";
  k += c.model.name;
  k += '|';
  append_i(k, c.model.n_layers);
  append_i(k, c.model.n_experts);
  append_i(k, c.model.top_k);
  append_g(k, c.options.ecr);
  append_i(k, c.options.calibration_seqs);
  append_i(k, static_cast<long long>(c.options.seed));
  return k;
}

// Everything generate_eval_traces() reads: the workload's full statistical
// spec plus the generator dimensions and per-eval sequence parameters.
std::string traces_key(const SpeedGridCell& c) {
  std::string k = "t|";
  k += c.workload.name;
  k += '|';
  append_g(k, c.workload.seq_skew_sigma);
  append_g(k, c.workload.token_noise_sigma);
  append_g(k, c.workload.phase_shift_sigma);
  append_g(k, c.workload.drift_sigma);
  append_g(k, c.workload.drift_rho);
  append_g(k, c.workload.layer_rho);
  append_g(k, c.workload.pred_noise_early);
  append_g(k, c.workload.pred_noise_late);
  append_i(k, c.model.n_layers);
  append_i(k, c.model.n_experts);
  append_i(k, c.model.top_k);
  append_i(k, static_cast<long long>(c.options.seed));
  append_i(k, c.options.n_seqs);
  append_i(k, c.options.prompt_len);
  append_i(k, c.options.gen_len);
  return k;
}

}  // namespace

void ParallelSweepRunner::run_cells(
    std::int64_t n, const std::function<void(std::int64_t)>& fn) const {
  if (threads_ == 0) {
    ThreadPool::global().parallel_for(n, fn);
    return;
  }
  ThreadPool pool(threads_);
  pool.parallel_for(n, fn);
}

std::vector<SpeedGridCellResult> ParallelSweepRunner::run_speed_grid(
    const std::vector<SpeedGridCell>& cells,
    obs::MetricsRegistry* metrics) const {
  // Shared precomputation: one calibration / trace-generation pass per
  // distinct key, computed concurrently (each value is a pure function of
  // its key's inputs, so order cannot matter).
  std::map<std::string, std::unique_ptr<cache::Placement>> placements;
  std::map<std::string, std::unique_ptr<std::vector<data::SequenceTrace>>>
      trace_sets;
  std::vector<std::function<void()>> jobs;
  for (const SpeedGridCell& c : cells) {
    DAOP_CHECK_MSG(c.options.metrics == nullptr,
                   "grid cells must not carry a metrics registry; pass it to "
                   "run_speed_grid for the ordered merge");
    DAOP_CHECK_MSG(c.options.profiler == nullptr,
                   "grid cells must not carry a profiler");
    if (c.options.initial_placement == nullptr) {
      auto [it, fresh] = placements.try_emplace(placement_key(c), nullptr);
      if (fresh) {
        jobs.emplace_back([&c, &slot = it->second] {
          slot = std::make_unique<cache::Placement>(
              calibrated_initial_placement(c.model, c.options));
        });
      }
    }
    if (c.options.traces == nullptr) {
      auto [it, fresh] = trace_sets.try_emplace(traces_key(c), nullptr);
      if (fresh) {
        jobs.emplace_back([&c, &slot = it->second] {
          slot = std::make_unique<std::vector<data::SequenceTrace>>(
              generate_eval_traces(c.model, c.workload, c.options));
        });
      }
    }
  }
  run_cells(static_cast<std::int64_t>(jobs.size()),
            [&](std::int64_t i) { jobs[static_cast<std::size_t>(i)](); });

  // Parallel phase: each cell runs fully isolated into its index slot.
  std::vector<SpeedGridCellResult> results(cells.size());
  run_cells(static_cast<std::int64_t>(cells.size()), [&](std::int64_t i) {
    const SpeedGridCell& c = cells[static_cast<std::size_t>(i)];
    SpeedGridCellResult& out = results[static_cast<std::size_t>(i)];
    SpeedEvalOptions opt = c.options;
    if (opt.initial_placement == nullptr) {
      opt.initial_placement = placements.at(placement_key(c)).get();
    }
    if (opt.traces == nullptr) {
      opt.traces = trace_sets.at(traces_key(c)).get();
    }
    if (opt.cache.enabled()) opt.cache_report = &out.cache_report;
    out.per_sequence =
        run_speed_eval_per_sequence(c.kind, c.model, c.platform, c.workload,
                                    opt);
    out.aggregate = engines::aggregate_results(out.per_sequence[0].engine,
                                               out.per_sequence);
  });

  // Ordered merge: the registry sees results in cell-then-sequence order on
  // the calling thread — byte-identical to the serial loop's registry.
  if (metrics != nullptr) {
    for (const SpeedGridCellResult& cell : results) {
      for (const engines::RunResult& r : cell.per_sequence) {
        engines::record_run_metrics(*metrics, r);
      }
    }
  }
  return results;
}

}  // namespace daop::eval
