#include "eval/continuous_batching.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace daop::eval {

ContinuousBatchingScheduler::ContinuousBatchingScheduler(
    engines::Engine& engine, sim::Timeline& timeline,
    const cache::Placement& initial, const Options& options)
    : engine_(engine),
      tl_(timeline),
      arbiter_(initial),
      options_(options),
      free_slots_(static_cast<std::size_t>(options.max_concurrent), 0.0) {
  DAOP_CHECK_GE(options_.max_concurrent, 1);
  DAOP_CHECK_GE(options_.request_timeout_s, 0.0);
  DAOP_CHECK_GE(options_.max_request_retries, 0);
  DAOP_CHECK_GE(options_.retry_backoff_s, 0.0);
}

void ContinuousBatchingScheduler::enqueue(Request request) {
  DAOP_CHECK_GE(request.arrival, 0.0);
  if (!pending_.empty()) {
    DAOP_CHECK_GE(request.arrival, pending_.back().request.arrival);
  }
  Pending p;
  p.eff_arrival = request.arrival;
  p.request = std::move(request);
  pending_.push_back(std::move(p));
}

std::vector<ContinuousBatchingScheduler::Outcome>
ContinuousBatchingScheduler::run() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t total = pending_.size() + outcomes_.size();

  while (!pending_.empty() || !active_.empty()) {
    // Candidate admission: the FIFO head starts at the later of its
    // (re-)arrival and the earliest free slot.
    double t_admit = kInf;
    std::size_t slot = 0;
    if (!pending_.empty() && !free_slots_.empty()) {
      slot = static_cast<std::size_t>(
          std::min_element(free_slots_.begin(), free_slots_.end()) -
          free_slots_.begin());
      t_admit = std::max(pending_.front().eff_arrival, free_slots_[slot]);
    }
    // Candidate decode step: the least-advanced in-flight session. Ties go
    // to the earliest-admitted (lowest request id) — active_ is kept in
    // admission order, so the first strict minimum wins.
    std::size_t si = active_.size();
    double t_step = kInf;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double r = active_[i].session->ready_time();
      if (r < t_step) {
        t_step = r;
        si = i;
      }
    }

    if (t_admit <= t_step) {
      Pending& head = pending_.front();
      if (options_.request_timeout_s > 0.0 &&
          t_admit - head.eff_arrival > options_.request_timeout_s) {
        if (head.attempts < options_.max_request_retries) {
          ++head.attempts;
          head.eff_arrival +=
              options_.request_timeout_s + options_.retry_backoff_s;
          continue;
        }
        Outcome o;
        o.id = head.request.id;
        o.arrival = head.request.arrival;
        o.retries = head.attempts;
        outcomes_.push_back(std::move(o));
        pending_.pop_front();
        continue;
      }
      engines::SessionEnv env;
      env.timeline = &tl_;
      env.start_time = t_admit;
      env.request_id = head.request.id;
      env.arbiter = &arbiter_;
      env.shared = true;
      Active a;
      a.id = head.request.id;
      a.arrival = head.request.arrival;
      a.start = t_admit;
      a.retries = head.attempts;
      a.session =
          engine_.open_session(head.request.trace, arbiter_.placement(), env);
      a.session->prefill();
      free_slots_.erase(free_slots_.begin() +
                        static_cast<std::ptrdiff_t>(slot));
      active_.push_back(std::move(a));
      pending_.pop_front();
      continue;
    }

    Active& a = active_[si];
    if (a.session->decode_step()) continue;
    // All tokens scheduled: close the session, free its slot at the
    // completion time, and record the outcome.
    engines::RunResult r = a.session->close();
    Outcome o;
    o.id = a.id;
    o.arrival = a.arrival;
    o.served = true;
    o.start = a.start;
    o.end = a.start + r.total_s;
    o.retries = a.retries;
    o.result = std::move(r);
    free_slots_.push_back(o.end);
    outcomes_.push_back(std::move(o));
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(si));
  }

  DAOP_CHECK_EQ(outcomes_.size(), total);
  std::sort(outcomes_.begin(), outcomes_.end(),
            [](const Outcome& x, const Outcome& y) { return x.id < y.id; });
  return std::move(outcomes_);
}

}  // namespace daop::eval
