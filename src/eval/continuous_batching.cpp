#include "eval/continuous_batching.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace daop::eval {

ContinuousBatchingScheduler::ContinuousBatchingScheduler(
    engines::Engine& engine, sim::Timeline& timeline,
    const cache::Placement& initial, const Options& options)
    : engine_(engine),
      tl_(timeline),
      arbiter_(initial),
      options_(options),
      free_slots_(static_cast<std::size_t>(options.max_concurrent), 0.0) {
  DAOP_CHECK_GE(options_.max_concurrent, 1);
  DAOP_CHECK_GE(options_.request_timeout_s, 0.0);
  DAOP_CHECK_GE(options_.max_request_retries, 0);
  DAOP_CHECK_GE(options_.retry_backoff_s, 0.0);
  options_.cache.validate();
  if (options_.cache.enabled()) {
    cache_ = std::make_unique<cache::ExpertCache>(
        options_.cache, initial.n_layers(), initial.n_experts());
  }
}

void ContinuousBatchingScheduler::enqueue(Request request) {
  DAOP_CHECK_GE(request.arrival, 0.0);
  if (!pending_.empty()) {
    DAOP_CHECK_GE(request.arrival, pending_.back().request.arrival);
  }
  Pending p;
  p.eff_arrival = request.arrival;
  p.request = std::move(request);
  pending_.push_back(std::move(p));
}

std::vector<ContinuousBatchingScheduler::Outcome>
ContinuousBatchingScheduler::run() {
  options_.overload.validate();
  return options_.overload.enabled() ? run_overload() : run_legacy();
}

std::vector<ContinuousBatchingScheduler::Outcome>
ContinuousBatchingScheduler::run_legacy() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t total = pending_.size() + outcomes_.size();

  while (!pending_.empty() || !active_.empty()) {
    // Candidate admission: the FIFO head starts at the later of its
    // (re-)arrival and the earliest free slot.
    double t_admit = kInf;
    std::size_t slot = 0;
    if (!pending_.empty() && !free_slots_.empty()) {
      slot = static_cast<std::size_t>(
          std::min_element(free_slots_.begin(), free_slots_.end()) -
          free_slots_.begin());
      t_admit = std::max(pending_.front().eff_arrival, free_slots_[slot]);
    }
    // Candidate decode step: the least-advanced in-flight session. Ties go
    // to the earliest-admitted (lowest request id) — active_ is kept in
    // admission order, so the first strict minimum wins.
    std::size_t si = active_.size();
    double t_step = kInf;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double r = active_[i].session->ready_time();
      if (r < t_step) {
        t_step = r;
        si = i;
      }
    }

    if (t_admit <= t_step) {
      Pending& head = pending_.front();
      if (options_.request_timeout_s > 0.0 &&
          t_admit - head.eff_arrival > options_.request_timeout_s) {
        if (head.attempts < options_.max_request_retries) {
          ++head.attempts;
          head.eff_arrival +=
              options_.request_timeout_s + options_.retry_backoff_s;
          continue;
        }
        Outcome o;
        o.id = head.request.id;
        o.arrival = head.request.arrival;
        o.retries = head.attempts;
        outcomes_.push_back(std::move(o));
        pending_.pop_front();
        continue;
      }
      engines::SessionEnv env;
      env.timeline = &tl_;
      env.start_time = t_admit;
      env.request_id = head.request.id;
      env.arbiter = &arbiter_;
      env.cache = cache_.get();
      env.shared = true;
      Active a;
      a.id = head.request.id;
      a.arrival = head.request.arrival;
      a.start = t_admit;
      a.retries = head.attempts;
      a.session =
          engine_.open_session(head.request.trace, arbiter_.placement(), env);
      a.session->prefill();
      free_slots_.erase(free_slots_.begin() +
                        static_cast<std::ptrdiff_t>(slot));
      active_.push_back(std::move(a));
      pending_.pop_front();
      continue;
    }

    Active& a = active_[si];
    if (a.session->decode_step()) continue;
    // All tokens scheduled: close the session, free its slot at the
    // completion time, and record the outcome.
    engines::RunResult r = a.session->close();
    Outcome o;
    o.id = a.id;
    o.arrival = a.arrival;
    o.served = true;
    o.start = a.start;
    o.end = a.start + r.total_s;
    o.retries = a.retries;
    o.result = std::move(r);
    free_slots_.push_back(o.end);
    outcomes_.push_back(std::move(o));
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(si));
  }

  DAOP_CHECK_EQ(outcomes_.size(), total);
  std::sort(outcomes_.begin(), outcomes_.end(),
            [](const Outcome& x, const Outcome& y) { return x.id < y.id; });
  return std::move(outcomes_);
}

// Overload-aware loop. Same event structure as run_legacy() — each
// iteration performs the earliest of {resume, admit, step} — plus the
// overload plane's decisions layered on top:
//  - the admission candidate is chosen by the configured policy instead of
//    always being the FIFO head;
//  - a bounded queue sheds overflow, and a deadline budget sheds requests
//    whose projected first token would land past their deadline;
//  - under deadline-edf with preemption, a deadline-critical arrival may
//    park the latest-deadline in-flight session (at most once per session)
//    and take its slot; parked sessions resume, in park order, as slots
//    free;
//  - a DegradationController observes fault-plane telemetry at every
//    decision time; its directives apply from the next decision on.
// Determinism: every choice is a pure function of (enqueue order, per-seed
// engine behaviour), with the same tie-breaks as the legacy loop.
std::vector<ContinuousBatchingScheduler::Outcome>
ContinuousBatchingScheduler::run_overload() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  const OverloadOptions& ov = options_.overload;
  const std::size_t total = pending_.size() + outcomes_.size();
  DegradationController degrade(ov.degrade);
  obs::SpanTracer* const tracer = options_.tracer;
  const std::uint32_t ov_track =
      tracer != nullptr ? tracer->track("Overload") : 0;

  // Counter totals of already-closed sessions, so the controller's signals
  // stay cumulative across session lifetimes.
  long long closed_aborts = 0;
  long long closed_retries = 0;
  const auto live_signals = [&] {
    DegradationController::Signals s;
    s.hazard_stall_s = tl_.hazard_stall_s();
    s.migration_aborts = closed_aborts;
    s.migration_retries = closed_retries;
    for (const Active& a : active_) {
      s.migration_aborts += a.session->counters().migration_aborts;
      s.migration_retries += a.session->counters().migration_retries;
    }
    for (const Active& a : parked_) {
      s.migration_aborts += a.session->counters().migration_aborts;
      s.migration_retries += a.session->counters().migration_retries;
    }
    return s;
  };

  const auto budget_of = [&](const Pending& p) {
    return p.request.deadline_s > 0.0 ? p.request.deadline_s : ov.deadline_s;
  };
  // Absolute first-token deadline, anchored on the ORIGINAL arrival so
  // retries never extend a client's budget. kInf = no deadline.
  const auto deadline_of = [&](const Pending& p) {
    const double b = budget_of(p);
    return b > 0.0 ? p.request.arrival + b : kInf;
  };

  const auto shed = [&](std::size_t idx, ShedReason reason, double t) {
    Pending& p = pending_[idx];
    Outcome o;
    o.id = p.request.id;
    o.arrival = p.request.arrival;
    o.shed = true;
    o.shed_reason = reason;
    o.retries = p.attempts;
    ++overload_stats_.shed_by_reason[static_cast<int>(reason)];
    ++overload_stats_.shed_total;
    if (tracer != nullptr) {
      const obs::RequestScope scope(tracer, o.id);
      tracer->instant(ov_track,
                      std::string("shed (") + shed_reason_name(reason) + ")",
                      t);
    }
    outcomes_.push_back(std::move(o));
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(idx));
  };

  // Policy choice among the waiting queue: which pending request the next
  // free slot (available at `t_free`) should go to. "Arrived" means
  // eff_arrival <= t_free; when nothing has arrived yet every policy waits
  // for the earliest next arrival.
  const auto pick_candidate = [&](double t_free) {
    if (ov.admission == AdmissionPolicy::kFifo) return std::size_t{0};
    std::size_t best = kNone;
    if (ov.admission == AdmissionPolicy::kLifoShed) {
      // Newest arrived first (ties -> highest index: latest enqueued).
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].eff_arrival > t_free) continue;
        if (best == kNone ||
            pending_[i].eff_arrival >= pending_[best].eff_arrival) {
          best = i;
        }
      }
    } else {  // deadline-edf: earliest deadline among arrived.
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].eff_arrival > t_free) continue;
        if (best == kNone ||
            deadline_of(pending_[i]) < deadline_of(pending_[best])) {
          best = i;
        }
      }
    }
    if (best != kNone) return best;
    // Nothing has arrived by t_free: take the next to arrive.
    best = 0;
    for (std::size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i].eff_arrival < pending_[best].eff_arrival) best = i;
    }
    return best;
  };

  // Latest-deadline in-flight session with a deadline strictly after the
  // candidate's, never preempted before (once per session, so preemption
  // cannot livelock). Ties -> latest admitted.
  const auto pick_victim = [&](double cand_deadline) {
    std::size_t best = kNone;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const Active& a = active_[i];
      if (a.preemptions > 0 || a.session->decode_done()) continue;
      if (a.deadline <= cand_deadline) continue;
      if (best == kNone || a.deadline >= active_[best].deadline) best = i;
    }
    return best;
  };

  while (!pending_.empty() || !active_.empty() || !parked_.empty()) {
    const int mc_eff = degrade.cap_concurrency()
                           ? std::max(1, options_.max_concurrent / 2)
                           : options_.max_concurrent;
    const bool slot_ok =
        !free_slots_.empty() && static_cast<int>(active_.size()) < mc_eff;

    // Candidate resume: the longest-parked session, once a slot frees.
    double t_resume = kInf;
    std::size_t slot_r = 0;
    if (!parked_.empty() && slot_ok) {
      slot_r = static_cast<std::size_t>(
          std::min_element(free_slots_.begin(), free_slots_.end()) -
          free_slots_.begin());
      t_resume = std::max(free_slots_[slot_r],
                          parked_.front().session->ready_time());
    }

    // Candidate admission: policy-chosen request into the earliest free
    // slot — or, when every slot is busy, a preemptive admission for a
    // deadline-critical request.
    double t_admit = kInf;
    std::size_t slot_a = 0;
    std::size_t cand = kNone;
    std::size_t victim = kNone;
    if (!pending_.empty()) {
      if (slot_ok) {
        slot_a = static_cast<std::size_t>(
            std::min_element(free_slots_.begin(), free_slots_.end()) -
            free_slots_.begin());
        cand = pick_candidate(free_slots_[slot_a]);
        t_admit = std::max(pending_[cand].eff_arrival, free_slots_[slot_a]);
      } else if (ov.preempt &&
                 ov.admission == AdmissionPolicy::kDeadlineEdf) {
        const std::size_t c = pick_candidate(kInf);
        const std::size_t v = pick_victim(deadline_of(pending_[c]));
        if (v != kNone) {
          cand = c;
          victim = v;
          t_admit =
              std::max(pending_[cand].eff_arrival, active_[victim].start);
        }
      }
    }

    // Candidate decode step: the least-advanced running session (parked
    // sessions do not step). Ties -> earliest admitted, as in run_legacy.
    double t_step = kInf;
    std::size_t si = active_.size();
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const double r = active_[i].session->ready_time();
      if (r < t_step) {
        t_step = r;
        si = i;
      }
    }

    const double t_dec = std::min({t_resume, t_admit, t_step});
    DAOP_CHECK_LT(t_dec, kInf);
    degrade.observe(t_dec, live_signals());

    // Bounded queue: shed overflow among the requests waiting at this
    // decision time. fifo/deadline-edf shed the newest arrivals (their
    // clients waited least); lifo-shed sheds the stalest (its whole point
    // is serving the freshest). At the top of the degradation ladder the
    // cap tightens to 2x the effective slots.
    long long cap = ov.queue_capacity;
    if (degrade.shed_aggressively()) {
      const long long tight = 2LL * mc_eff;
      cap = cap > 0 ? std::min(cap, tight) : tight;
    }
    if (cap > 0) {
      bool shed_any = false;
      for (;;) {
        std::size_t oldest = kNone;
        std::size_t newest = kNone;
        long long waiting = 0;
        for (std::size_t i = 0; i < pending_.size(); ++i) {
          if (pending_[i].eff_arrival > t_dec) continue;
          ++waiting;
          if (oldest == kNone) oldest = i;
          newest = i;
        }
        if (waiting <= cap) break;
        const ShedReason reason =
            (ov.queue_capacity > 0 && waiting > ov.queue_capacity)
                ? ShedReason::kQueueFull
                : ShedReason::kDegraded;
        shed(ov.admission == AdmissionPolicy::kLifoShed ? oldest : newest,
             reason, t_dec);
        shed_any = true;
      }
      // Shedding may have removed the admission candidate; recompute.
      if (shed_any) continue;
    }

    if (t_resume <= t_admit && t_resume <= t_step) {
      Active a = std::move(parked_.front());
      parked_.pop_front();
      a.session->resume(t_resume);
      ++overload_stats_.preempt_resumes;
      if (tracer != nullptr) {
        const obs::RequestScope scope(tracer, a.id);
        tracer->instant(ov_track, "resume req " + std::to_string(a.id),
                        t_resume);
      }
      free_slots_.erase(free_slots_.begin() +
                        static_cast<std::ptrdiff_t>(slot_r));
      active_.push_back(std::move(a));
      continue;
    }

    if (t_admit <= t_step && cand != kNone) {
      Pending& head = pending_[cand];
      // Client-side timeout: identical semantics to the legacy loop.
      if (options_.request_timeout_s > 0.0 &&
          t_admit - head.eff_arrival > options_.request_timeout_s) {
        if (head.attempts < options_.max_request_retries) {
          ++head.attempts;
          head.eff_arrival +=
              options_.request_timeout_s + options_.retry_backoff_s;
          continue;
        }
        Outcome o;
        o.id = head.request.id;
        o.arrival = head.request.arrival;
        o.retries = head.attempts;
        outcomes_.push_back(std::move(o));
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(cand));
        continue;
      }
      // Deadline shedding: a request whose projected first token would land
      // past its deadline is shed instead of admitted — the slot goes to a
      // request that can still be served in time. Aggressive degradation
      // halves the budget; a request that only the halved budget rejects is
      // labeled degraded, not deadline.
      const double b = budget_of(head);
      if (b > 0.0) {
        const double dl_full = head.request.arrival + b;
        const double dl_eff = degrade.shed_aggressively()
                                  ? head.request.arrival + 0.5 * b
                                  : dl_full;
        const double projected = t_admit + ov.service_estimate_s;
        if (projected > dl_eff) {
          shed(cand,
               projected > dl_full ? ShedReason::kDeadline
                                   : ShedReason::kDegraded,
               t_admit);
          continue;
        }
      }
      if (victim != kNone) {
        // Preemptive admission: park the latest-deadline session, release
        // its pins (park() does), and hand its slot to the candidate.
        Active v = std::move(active_[victim]);
        active_.erase(active_.begin() +
                      static_cast<std::ptrdiff_t>(victim));
        v.session->park(t_admit);
        ++v.preemptions;
        ++overload_stats_.preemptions;
        if (tracer != nullptr) {
          const obs::RequestScope scope(tracer, v.id);
          tracer->instant(ov_track,
                          "preempt req " + std::to_string(v.id) + " for req " +
                              std::to_string(head.request.id),
                          t_admit);
        }
        free_slots_.push_back(t_admit);
        parked_.push_back(std::move(v));
        slot_a = static_cast<std::size_t>(
            std::min_element(free_slots_.begin(), free_slots_.end()) -
            free_slots_.begin());
      }
      engines::SessionEnv env;
      env.timeline = &tl_;
      env.start_time = t_admit;
      env.request_id = head.request.id;
      env.arbiter = &arbiter_;
      env.cache = cache_.get();
      env.shared = true;
      env.degrade_no_speculation = degrade.no_speculation();
      env.degrade_no_migrations = degrade.no_migrations();
      Active a;
      a.id = head.request.id;
      a.arrival = head.request.arrival;
      a.start = t_admit;
      a.deadline = deadline_of(head);
      a.retries = head.attempts;
      a.session =
          engine_.open_session(head.request.trace, arbiter_.placement(), env);
      a.session->prefill();
      free_slots_.erase(free_slots_.begin() +
                        static_cast<std::ptrdiff_t>(slot_a));
      active_.push_back(std::move(a));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(cand));
      continue;
    }

    Active& a = active_[si];
    if (a.session->decode_step()) continue;
    engines::RunResult r = a.session->close();
    closed_aborts += r.counters.migration_aborts;
    closed_retries += r.counters.migration_retries;
    Outcome o;
    o.id = a.id;
    o.arrival = a.arrival;
    o.served = true;
    o.start = a.start;
    o.end = a.start + r.total_s;
    o.retries = a.retries;
    o.preemptions = a.preemptions;
    o.result = std::move(r);
    free_slots_.push_back(o.end);
    outcomes_.push_back(std::move(o));
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(si));
  }

  // Degradation telemetry + ladder-step instants (emitted once, after the
  // run, from the controller's deterministic event log).
  overload_stats_.degrade_steps_down = degrade.steps_down();
  overload_stats_.degrade_steps_up = degrade.steps_up();
  overload_stats_.degrade_final_level = degrade.level();
  overload_stats_.degrade_peak_level = degrade.peak_level();
  overload_stats_.degrade_events = degrade.events();
  if (tracer != nullptr) {
    for (const DegradationEvent& e : degrade.events()) {
      tracer->instant(ov_track,
                      std::string(e.down ? "degrade -> " : "recover -> ") +
                          degrade_level_name(
                              static_cast<DegradeLevel>(e.level)),
                      e.time);
    }
  }

  // Conservation: every enqueued request ends as exactly one of
  // served/shed/dropped, every preempted session resumed and completed, and
  // no session leaked arbiter pins.
  DAOP_CHECK_MSG(parked_.empty(), "parked sessions leaked without resume");
  DAOP_CHECK_EQ(outcomes_.size(), total);
  std::size_t served = 0;
  std::size_t shed_n = 0;
  std::size_t dropped = 0;
  for (const Outcome& o : outcomes_) {
    DAOP_CHECK_MSG(!(o.served && o.shed), "outcome both served and shed");
    if (o.served) {
      ++served;
    } else if (o.shed) {
      ++shed_n;
    } else {
      ++dropped;
    }
  }
  DAOP_CHECK_EQ(served + shed_n + dropped, total);
  DAOP_CHECK_EQ(shed_n, static_cast<std::size_t>(overload_stats_.shed_total));
  DAOP_CHECK_EQ(overload_stats_.preemptions, overload_stats_.preempt_resumes);
  DAOP_CHECK_EQ(arbiter_.total_pin_count(), 0);
  std::sort(outcomes_.begin(), outcomes_.end(),
            [](const Outcome& x, const Outcome& y) { return x.id < y.id; });
  return std::move(outcomes_);
}

}  // namespace daop::eval
