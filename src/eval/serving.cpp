#include "eval/serving.hpp"

#include <algorithm>
#include <cmath>

#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/trace_generator.hpp"
#include "model/op_costs.hpp"

namespace daop::eval {

ServingResult run_serving_eval(EngineKind kind,
                               const model::ModelConfig& model_cfg,
                               const sim::PlatformSpec& platform,
                               const data::WorkloadSpec& workload,
                               const ServingOptions& options) {
  DAOP_CHECK_GT(options.arrival_rate_rps, 0.0);
  DAOP_CHECK_GT(options.n_requests, 0);
  DAOP_CHECK_LE(options.min_prompt, options.max_prompt);
  DAOP_CHECK_LE(options.min_gen, options.max_gen);

  const sim::CostModel cm(platform);
  const model::OpCosts costs(model_cfg, cm);

  const data::TraceGenerator calib_gen(
      data::sharegpt_calibration(), model_cfg.n_layers, model_cfg.n_experts,
      model_cfg.top_k, options.seed ^ 0xCA11Bu);
  const auto calib_counts =
      cache::calibrate_activation_counts(calib_gen, options.calibration_seqs);
  const cache::Placement initial = cache::init_placement_calibrated(
      model_cfg.n_layers, model_cfg.n_experts, options.ecr, calib_counts);

  const data::TraceGenerator gen(workload, model_cfg.n_layers,
                                 model_cfg.n_experts, model_cfg.top_k,
                                 options.seed);
  auto engine = make_engine(kind, costs, options.daop_config);

  Rng rng(options.seed ^ 0x5e7511e5ULL);
  double arrival = 0.0;
  double server_free = 0.0;
  double busy = 0.0;
  long long tokens = 0;

  std::vector<double> ttft;
  std::vector<double> latency;
  std::vector<double> wait;
  double makespan = 0.0;

  for (int i = 0; i < options.n_requests; ++i) {
    // Poisson arrivals: exponential inter-arrival gaps.
    arrival += -std::log(std::max(rng.uniform(), 1e-12)) /
               options.arrival_rate_rps;
    const int prompt = rng.uniform_int(options.min_prompt, options.max_prompt);
    const int gen_len = rng.uniform_int(options.min_gen, options.max_gen);

    const data::SequenceTrace trace = gen.generate(i, prompt, gen_len);
    const engines::RunResult r = engine->run(trace, initial);

    const double start = std::max(arrival, server_free);
    const double end = start + r.total_s;
    server_free = end;
    busy += r.total_s;
    tokens += r.generated_tokens;
    makespan = end;

    wait.push_back(start - arrival);
    ttft.push_back(start - arrival + r.prefill_s);
    latency.push_back(end - arrival);
  }

  ServingResult out;
  out.engine = engine->name();
  out.requests = options.n_requests;
  out.ttft_s = summarize(ttft);
  out.latency_s = summarize(latency);
  out.queue_wait_s = summarize(wait);
  out.makespan_s = makespan;
  if (makespan > 0.0) {
    out.throughput_tps = static_cast<double>(tokens) / makespan;
    out.busy_fraction = std::min(1.0, busy / makespan);
  }
  return out;
}

}  // namespace daop::eval
