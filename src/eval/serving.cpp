#include "eval/serving.hpp"

#include <algorithm>
#include <cmath>

#include <string>

#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/trace_generator.hpp"
#include "engines/run_metrics.hpp"
#include "eval/continuous_batching.hpp"
#include "model/op_costs.hpp"

namespace daop::eval {

ServingResult run_serving_eval(EngineKind kind,
                               const model::ModelConfig& model_cfg,
                               const sim::PlatformSpec& platform,
                               const data::WorkloadSpec& workload,
                               const ServingOptions& options) {
  DAOP_CHECK_GT(options.arrival_rate_rps, 0.0);
  DAOP_CHECK_GT(options.n_requests, 0);
  DAOP_CHECK_LE(options.min_prompt, options.max_prompt);
  DAOP_CHECK_LE(options.min_gen, options.max_gen);
  DAOP_CHECK_GE(options.request_timeout_s, 0.0);
  DAOP_CHECK_GE(options.max_request_retries, 0);
  DAOP_CHECK_GE(options.retry_backoff_s, 0.0);
  DAOP_CHECK_GE(options.slo_ttft_s, 0.0);
  DAOP_CHECK_GE(options.slo_latency_s, 0.0);
  DAOP_CHECK_GE(options.max_concurrent, 1);
  options.overload.validate();
  DAOP_CHECK_MSG(!options.overload.enabled() || options.max_concurrent >= 2,
                 "the overload plane layers on the continuous-batching "
                 "scheduler; it needs max_concurrent >= 2");
  options.cache.validate();
  DAOP_CHECK_MSG(!options.cache.enabled() || options.max_concurrent >= 2,
                 "dynamic cache policies score aggregate demand across the "
                 "continuous-batching scheduler's live sessions; they need "
                 "max_concurrent >= 2 (policy frozen is the sequential mode)");
  DAOP_CHECK_GE(options.priority_every, 0);
  DAOP_CHECK_GE(options.priority_deadline_s, 0.0);
  if (options.priority_every > 0) {
    DAOP_CHECK_MSG(options.priority_deadline_s > 0.0,
                   "priority_every needs a priority_deadline_s budget");
  }

  const sim::CostModel cm(platform);
  const model::OpCosts costs(model_cfg, cm);

  const data::TraceGenerator calib_gen(
      data::sharegpt_calibration(), model_cfg.n_layers, model_cfg.n_experts,
      model_cfg.top_k, options.seed ^ 0xCA11Bu);
  const auto calib_counts =
      cache::calibrate_activation_counts(calib_gen, options.calibration_seqs);
  const cache::Placement initial = cache::init_placement_calibrated(
      model_cfg.n_layers, model_cfg.n_experts, options.ecr, calib_counts);

  const data::TraceGenerator gen(workload, model_cfg.n_layers,
                                 model_cfg.n_experts, model_cfg.top_k,
                                 options.seed);
  auto engine = make_engine(kind, costs, options.daop_config);
  sim::FaultModel fault(options.hazards, options.seed ^ 0xFA017ULL);
  if (fault.enabled()) engine->set_fault_model(&fault);
  if (options.tracer != nullptr) engine->set_tracer(options.tracer);
  // Sequential serving runs each request on a private timeline, so the
  // engine-attached profiler records one profile per served request. The
  // continuous-batching branch profiles its shared timeline once instead
  // (sessions on a shared timeline skip per-run recording by contract).
  if (options.profiler != nullptr) engine->set_profiler(options.profiler);

  Rng rng(options.seed ^ 0x5e7511e5ULL);
  double arrival = 0.0;
  double server_free = 0.0;
  double busy = 0.0;
  long long tokens = 0;

  std::vector<double> ttft;
  std::vector<double> latency;
  std::vector<double> wait;
  std::vector<double> tpot;
  obs::HistogramData ttft_hist(obs::default_latency_buckets());
  obs::HistogramData tpot_hist(obs::default_latency_buckets());
  obs::HistogramData latency_hist(obs::default_latency_buckets());
  obs::HistogramData wait_hist(obs::default_latency_buckets());
  double makespan = 0.0;

  ServingResult out;

  // Shared per-served-request bookkeeping: both serving modes record the
  // same client-observed metrics with the same formulas, so sequential and
  // continuous-batching results are directly comparable.
  auto record_served = [&](long long id, double req_arrival, double start,
                           double end, const engines::RunResult& r) {
    busy += r.total_s;
    tokens += r.generated_tokens;
    makespan = std::max(makespan, end);
    ++out.served;
    // Client-observed metrics count from the ORIGINAL arrival, so retry
    // waiting shows up in the latency distribution.
    const double w = start - req_arrival;
    const double first_tok = w + r.prefill_s;
    const double lat = end - req_arrival;
    const double per_tok =
        r.generated_tokens > 0 ? r.decode_s / r.generated_tokens : 0.0;
    wait.push_back(w);
    ttft.push_back(first_tok);
    latency.push_back(lat);
    tpot.push_back(per_tok);
    ttft_hist.observe(first_tok);
    tpot_hist.observe(per_tok);
    latency_hist.observe(lat);
    wait_hist.observe(w);
    if ((options.slo_ttft_s > 0.0 && first_tok > options.slo_ttft_s) ||
        (options.slo_latency_s > 0.0 && lat > options.slo_latency_s)) {
      ++out.slo_violations;
    }
    out.counters.add(r.counters);
    if (options.tracer != nullptr) {
      obs::SpanTracer& tr = *options.tracer;
      const obs::RequestScope scope(&tr, id);
      const std::uint32_t q_track = tr.track("Queue");
      const std::uint32_t req_track = tr.track("Request");
      tr.span(q_track, "queue wait", req_arrival, start);
      tr.span(req_track, "request " + std::to_string(id), start, end);
      tr.instant(req_track, "first token", start + r.prefill_s);
    }
  };

  if (options.max_concurrent > 1) {
    // ---- Continuous batching: shared timeline, arbitrated placement ----
    ContinuousBatchingScheduler::Options sched_opt;
    sched_opt.max_concurrent = options.max_concurrent;
    sched_opt.request_timeout_s = options.request_timeout_s;
    sched_opt.max_request_retries = options.max_request_retries;
    sched_opt.retry_backoff_s = options.retry_backoff_s;
    sched_opt.overload = options.overload;
    sched_opt.cache = options.cache;
    sched_opt.tracer = options.tracer;
    sched_opt.tseries = options.tseries;
    sched_opt.tseries_channel = 0;
    sim::Timeline tl;
    // Attribution needs the shared timeline's interval record; recording is
    // passive and never changes a scheduling decision.
    if (options.profiler != nullptr) tl.set_record_intervals(true);
    ContinuousBatchingScheduler sched(*engine, tl, initial, sched_opt);
    // Identical RNG draw order to the sequential mode (gap, prompt, gen per
    // request), so both modes serve the same request plan on one seed.
    for (int i = 0; i < options.n_requests; ++i) {
      arrival += -std::log(std::max(rng.uniform(), 1e-12)) /
                 options.arrival_rate_rps;
      const int prompt =
          rng.uniform_int(options.min_prompt, options.max_prompt);
      const int gen_len = rng.uniform_int(options.min_gen, options.max_gen);
      ContinuousBatchingScheduler::Request req;
      req.id = i;
      req.arrival = arrival;
      if (options.priority_every > 0 &&
          (i + 1) % options.priority_every == 0) {
        req.deadline_s = options.priority_deadline_s;
      }
      req.trace = gen.generate(i, prompt, gen_len);
      sched.enqueue(std::move(req));
    }
    for (const auto& o : sched.run()) {
      out.request_retries += o.retries;
      out.preemptions += o.preemptions;
      ServingResult::RequestLogEntry log;
      log.id = o.id;
      log.arrival = o.arrival;
      log.retries = o.retries;
      log.preempted = o.preemptions;
      if (o.shed) {
        // Rejected by admission control: the operator chose not to serve
        // it, which is an SLO violation like any other unserved request.
        log.outcome = std::string("shed:") + shed_reason_name(o.shed_reason);
        ++out.shed;
        ++out.slo_violations;
        switch (o.shed_reason) {
          case ShedReason::kQueueFull:
            ++out.shed_queue_full;
            break;
          case ShedReason::kDeadline:
            ++out.shed_deadline;
            break;
          case ShedReason::kDegraded:
            ++out.shed_degraded;
            break;
          case ShedReason::kNodeLost:
            // Single-node admission control never sheds for node loss; the
            // cluster harness (cluster/serving.cpp) accounts it there.
            ++out.shed_node_lost;
            break;
        }
      } else if (!o.served) {
        // A request the operator failed to serve is an SLO violation too.
        log.outcome = "dropped";
        ++out.dropped;
        ++out.slo_violations;
      } else {
        log.outcome = "served";
        record_served(o.id, o.arrival, o.start, o.end, o.result);
      }
      out.request_log.push_back(std::move(log));
    }
    if (const cache::ExpertCache* ec = sched.expert_cache()) {
      out.cache_fills = ec->fills();
      out.cache_evictions = ec->evictions();
      out.cache_refusals = static_cast<long long>(ec->refusals().size());
      out.cache_aborts = ec->aborts();
      // Each fill moves one expert's weights over PCIe H2D; the paired
      // eviction is a drop from GPU memory and moves nothing.
      out.cache_bytes_moved =
          static_cast<double>(ec->fills()) * model_cfg.expert_bytes();
      if (options.cache_report != nullptr) *options.cache_report = ec->report();
    }
    const OverloadStats& ov_stats = sched.overload_stats();
    out.degrade_steps_down = ov_stats.degrade_steps_down;
    out.degrade_steps_up = ov_stats.degrade_steps_up;
    out.degrade_peak_level = ov_stats.degrade_peak_level;
    out.degrade_final_level = ov_stats.degrade_final_level;
    // Conservation: admission control may refuse work but never lose it.
    DAOP_CHECK_EQ(out.served + out.dropped + out.shed, options.n_requests);
    // Shared-timeline sessions report no per-session hazard attribution;
    // the stall total belongs to the whole run and is accounted once here.
    out.counters.hazard_stall_s = tl.hazard_stall_s();
    if (options.profiler != nullptr) {
      options.profiler->record_window(
          engine->name() + " [continuous batching]", tl.intervals(),
          tl.hazard_intervals(), 0.0, std::max(makespan, tl.span()));
    }
  } else {
    // ---- Sequential FCFS: each request runs alone on a private timeline ----
    for (int i = 0; i < options.n_requests; ++i) {
      // Poisson arrivals: exponential inter-arrival gaps.
      arrival += -std::log(std::max(rng.uniform(), 1e-12)) /
                 options.arrival_rate_rps;
      const int prompt =
          rng.uniform_int(options.min_prompt, options.max_prompt);
      const int gen_len = rng.uniform_int(options.min_gen, options.max_gen);

      // Client-side timeout loop: a request whose queue wait exceeds the
      // timeout is abandoned at (re-arrival + timeout) and retries after a
      // backoff, up to max_request_retries re-queues; then it is dropped
      // without ever occupying the server.
      double eff_arrival = arrival;
      bool dropped = false;
      int attempts = 0;
      obs::TimeSeriesRecorder* const rec = options.tseries;
      for (;;) {
        const double start = std::max(eff_arrival, server_free);
        if (options.request_timeout_s > 0.0 &&
            start - eff_arrival > options.request_timeout_s) {
          if (attempts < options.max_request_retries) {
            ++attempts;
            ++out.request_retries;
            eff_arrival +=
                options.request_timeout_s + options.retry_backoff_s;
            continue;
          }
          if (rec != nullptr) {
            rec->advance(0, eff_arrival + options.request_timeout_s);
            rec->count(0, "daop_serving_requests_total",
                       "Request resolutions.", 1.0,
                       {{"outcome", "dropped"}});
          }
          dropped = true;
          break;
        }
        const data::SequenceTrace trace = gen.generate(i, prompt, gen_len);
        const engines::RunResult r = [&] {
          // Engine-local spans start at t=0; shift them onto the serving
          // clock and stamp them with this request's id. RAII scope so a
          // throwing engine cannot leak the id/offset into later spans.
          const obs::RequestScope scope(options.tracer, i, start);
          return engine->run(trace, initial, nullptr, i);
        }();
        const double end = start + r.total_s;
        server_free = end;
        if (rec != nullptr) {
          // Same window-attribution convention as the CB scheduler:
          // admission-time observations at the service start, resolution
          // observations at completion. Both clocks are monotone here.
          rec->advance(0, start);
          rec->observe(0, "daop_serving_queue_wait_seconds",
                       "Admission queue wait per served request.",
                       start - arrival);
          rec->observe(0, "daop_serving_ttft_seconds",
                       "Time to first token (arrival to end of prefill).",
                       (start - arrival) + r.prefill_s);
          rec->advance(0, end);
          rec->count(0, "daop_serving_requests_total", "Request resolutions.",
                     1.0, {{"outcome", "served"}});
          rec->count(0, "daop_serving_generated_tokens_total",
                     "Decode tokens generated by served requests.",
                     static_cast<double>(r.generated_tokens));
          rec->observe(0, "daop_serving_latency_seconds",
                       "End-to-end latency (arrival to completion).",
                       end - arrival);
          if (r.generated_tokens > 0) {
            rec->observe(0, "daop_serving_tpot_seconds",
                         "Mean time per generated token.",
                         r.decode_s / static_cast<double>(r.generated_tokens));
          }
          if (r.counters.hazard_stall_s > 0.0) {
            rec->count(0, "daop_hazard_stall_seconds_total",
                       "Simulated seconds lost to injected hazard stalls.",
                       r.counters.hazard_stall_s);
          }
        }
        record_served(i, arrival, start, end, r);
        break;
      }
      if (dropped) {
        // A request the operator failed to serve is an SLO violation too.
        ++out.dropped;
        ++out.slo_violations;
      }
      ServingResult::RequestLogEntry log;
      log.id = i;
      log.arrival = arrival;
      log.outcome = dropped ? "dropped" : "served";
      log.retries = attempts;
      out.request_log.push_back(std::move(log));
    }
  }

  // Seal the final (possibly partial) time-series window at the makespan.
  if (options.tseries != nullptr) options.tseries->finalize(makespan);

  out.engine = engine->name();
  out.requests = options.n_requests;
  if (!latency.empty()) {
    out.ttft_s = summarize(ttft);
    out.latency_s = summarize(latency);
    out.queue_wait_s = summarize(wait);
    out.tpot_s = summarize(tpot);
  }
  out.ttft_hist = ttft_hist;
  out.tpot_hist = tpot_hist;
  out.latency_hist = latency_hist;
  out.makespan_s = makespan;
  out.slo_violation_rate =
      static_cast<double>(out.slo_violations) / options.n_requests;
  if (makespan > 0.0) {
    out.throughput_tps = static_cast<double>(tokens) / makespan;
    out.busy_fraction = std::min(1.0, busy / makespan);
  }

  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    const obs::Labels labels{{"engine", out.engine}};
    const std::vector<double> buckets = obs::default_latency_buckets();
    reg.counter("daop_serving_requests_total", "Requests by final outcome.",
                obs::Labels{{"engine", out.engine}, {"outcome", "served"}})
        .inc(static_cast<double>(out.served));
    reg.counter("daop_serving_requests_total", "Requests by final outcome.",
                obs::Labels{{"engine", out.engine}, {"outcome", "dropped"}})
        .inc(static_cast<double>(out.dropped));
    reg.counter("daop_serving_request_retries_total",
                "Client re-queues after queue-wait timeouts.", labels)
        .inc(static_cast<double>(out.request_retries));
    reg.counter("daop_serving_slo_violations_total",
                "Served requests breaching an SLO, plus dropped requests.",
                labels)
        .inc(static_cast<double>(out.slo_violations));
    reg.counter("daop_serving_generated_tokens_total",
                "Tokens generated across served requests.", labels)
        .inc(static_cast<double>(tokens));
    reg.histogram("daop_serving_ttft_seconds",
                  "Arrival to first output token.", buckets, labels)
        .merge(ttft_hist);
    reg.histogram("daop_serving_tpot_seconds",
                  "Mean time per output token per request.", buckets, labels)
        .merge(tpot_hist);
    reg.histogram("daop_serving_latency_seconds",
                  "Arrival to request completion.", buckets, labels)
        .merge(latency_hist);
    reg.histogram("daop_serving_queue_wait_seconds",
                  "Arrival to service start.", buckets, labels)
        .merge(wait_hist);
    reg.gauge("daop_serving_throughput_tokens_per_second",
              "Generated tokens per second of makespan.", labels)
        .set(out.throughput_tps);
    reg.gauge("daop_serving_makespan_seconds",
              "Last request completion time.", labels)
        .set(out.makespan_s);
    reg.gauge("daop_serving_busy_fraction",
              "Fraction of the makespan the server spent serving.", labels)
        .set(out.busy_fraction);
    engines::record_counter_metrics(reg, out.counters, labels);
    // Overload-plane families only exist when the plane is on, so the
    // default-option metrics text stays bit-identical to the pre-overload
    // harness (tests/golden/serving_runs.golden hashes it).
    if (options.overload.enabled()) {
      const auto shed_counter = [&](const char* reason, long long n) {
        reg.counter("daop_requests_shed_total",
                    "Requests rejected by admission control, by reason.",
                    obs::Labels{{"engine", out.engine}, {"reason", reason}})
            .inc(static_cast<double>(n));
      };
      shed_counter("queue_full", out.shed_queue_full);
      shed_counter("deadline", out.shed_deadline);
      shed_counter("degraded", out.shed_degraded);
      reg.counter("daop_session_preemptions_total",
                  "Sessions parked for deadline-critical requests.", labels)
          .inc(static_cast<double>(out.counters.preemptions));
      reg.counter("daop_session_preempt_resumes_total",
                  "Parked sessions resumed.", labels)
          .inc(static_cast<double>(out.counters.preempt_resumes));
      reg.counter("daop_degraded_sessions_total",
                  "Sessions opened under a degradation directive.", labels)
          .inc(static_cast<double>(out.counters.degraded_sessions));
      reg.counter("daop_degrade_steps_total",
                  "Degradation-ladder transitions by direction.",
                  obs::Labels{{"engine", out.engine}, {"direction", "down"}})
          .inc(static_cast<double>(out.degrade_steps_down));
      reg.counter("daop_degrade_steps_total",
                  "Degradation-ladder transitions by direction.",
                  obs::Labels{{"engine", out.engine}, {"direction", "up"}})
          .inc(static_cast<double>(out.degrade_steps_up));
      reg.gauge("daop_degrade_level",
                "Degradation-ladder level at end of run.", labels)
          .set(static_cast<double>(out.degrade_final_level));
      reg.gauge("daop_degrade_peak_level",
                "Deepest degradation-ladder level reached.", labels)
          .set(static_cast<double>(out.degrade_peak_level));
    }
    // Dynamic-cache families only exist when a dynamic policy is on, so
    // frozen-policy metrics text stays bit-identical to the pre-cache
    // harness.
    if (options.cache.enabled()) {
      const char* policy = cache::cache_policy_name(options.cache.policy);
      const auto cache_counter = [&](const char* kind, double n) {
        reg.counter("daop_cache_migrations_total",
                    "Dynamic expert-cache placement changes, by kind.",
                    obs::Labels{{"engine", out.engine},
                                {"kind", kind},
                                {"policy", policy}})
            .inc(n);
      };
      cache_counter("fill", static_cast<double>(out.cache_fills));
      cache_counter("evict", static_cast<double>(out.cache_evictions));
      const obs::Labels clabels{{"engine", out.engine}, {"policy", policy}};
      reg.counter("daop_cache_pin_refusals_total",
                  "Cache evictions refused because the victim was pinned by "
                  "another session.",
                  clabels)
          .inc(static_cast<double>(out.cache_refusals));
      reg.counter("daop_cache_migration_aborts_total",
                  "Cache swap migrations abandoned by the retry/deadline "
                  "discipline.",
                  clabels)
          .inc(static_cast<double>(out.cache_aborts));
      reg.counter("daop_cache_bytes_moved_total",
                  "Expert weight bytes moved over PCIe by cache fills.",
                  clabels)
          .inc(out.cache_bytes_moved);
    }
  }
  return out;
}

}  // namespace daop::eval
