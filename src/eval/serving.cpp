#include "eval/serving.hpp"

#include <algorithm>
#include <cmath>

#include "cache/calibration.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "data/trace_generator.hpp"
#include "model/op_costs.hpp"

namespace daop::eval {

ServingResult run_serving_eval(EngineKind kind,
                               const model::ModelConfig& model_cfg,
                               const sim::PlatformSpec& platform,
                               const data::WorkloadSpec& workload,
                               const ServingOptions& options) {
  DAOP_CHECK_GT(options.arrival_rate_rps, 0.0);
  DAOP_CHECK_GT(options.n_requests, 0);
  DAOP_CHECK_LE(options.min_prompt, options.max_prompt);
  DAOP_CHECK_LE(options.min_gen, options.max_gen);
  DAOP_CHECK_GE(options.request_timeout_s, 0.0);
  DAOP_CHECK_GE(options.max_request_retries, 0);
  DAOP_CHECK_GE(options.retry_backoff_s, 0.0);
  DAOP_CHECK_GE(options.slo_ttft_s, 0.0);
  DAOP_CHECK_GE(options.slo_latency_s, 0.0);

  const sim::CostModel cm(platform);
  const model::OpCosts costs(model_cfg, cm);

  const data::TraceGenerator calib_gen(
      data::sharegpt_calibration(), model_cfg.n_layers, model_cfg.n_experts,
      model_cfg.top_k, options.seed ^ 0xCA11Bu);
  const auto calib_counts =
      cache::calibrate_activation_counts(calib_gen, options.calibration_seqs);
  const cache::Placement initial = cache::init_placement_calibrated(
      model_cfg.n_layers, model_cfg.n_experts, options.ecr, calib_counts);

  const data::TraceGenerator gen(workload, model_cfg.n_layers,
                                 model_cfg.n_experts, model_cfg.top_k,
                                 options.seed);
  auto engine = make_engine(kind, costs, options.daop_config);
  sim::FaultModel fault(options.hazards, options.seed ^ 0xFA017ULL);
  if (fault.enabled()) engine->set_fault_model(&fault);

  Rng rng(options.seed ^ 0x5e7511e5ULL);
  double arrival = 0.0;
  double server_free = 0.0;
  double busy = 0.0;
  long long tokens = 0;

  std::vector<double> ttft;
  std::vector<double> latency;
  std::vector<double> wait;
  double makespan = 0.0;

  ServingResult out;
  for (int i = 0; i < options.n_requests; ++i) {
    // Poisson arrivals: exponential inter-arrival gaps.
    arrival += -std::log(std::max(rng.uniform(), 1e-12)) /
               options.arrival_rate_rps;
    const int prompt = rng.uniform_int(options.min_prompt, options.max_prompt);
    const int gen_len = rng.uniform_int(options.min_gen, options.max_gen);

    // Client-side timeout loop: a request whose queue wait exceeds the
    // timeout is abandoned at (re-arrival + timeout) and retries after a
    // backoff, up to max_request_retries re-queues; then it is dropped
    // without ever occupying the server.
    double eff_arrival = arrival;
    bool dropped = false;
    int attempts = 0;
    for (;;) {
      const double start = std::max(eff_arrival, server_free);
      if (options.request_timeout_s > 0.0 &&
          start - eff_arrival > options.request_timeout_s) {
        if (attempts < options.max_request_retries) {
          ++attempts;
          ++out.request_retries;
          eff_arrival +=
              options.request_timeout_s + options.retry_backoff_s;
          continue;
        }
        dropped = true;
        break;
      }
      const data::SequenceTrace trace = gen.generate(i, prompt, gen_len);
      const engines::RunResult r = engine->run(trace, initial);
      const double end = start + r.total_s;
      server_free = end;
      busy += r.total_s;
      tokens += r.generated_tokens;
      makespan = end;
      ++out.served;

      // Client-observed metrics count from the ORIGINAL arrival, so retry
      // waiting shows up in the latency distribution.
      const double w = start - arrival;
      const double first_tok = w + r.prefill_s;
      const double lat = end - arrival;
      wait.push_back(w);
      ttft.push_back(first_tok);
      latency.push_back(lat);
      if ((options.slo_ttft_s > 0.0 && first_tok > options.slo_ttft_s) ||
          (options.slo_latency_s > 0.0 && lat > options.slo_latency_s)) {
        ++out.slo_violations;
      }
      out.counters.expert_migrations += r.counters.expert_migrations;
      out.counters.migration_retries += r.counters.migration_retries;
      out.counters.migration_aborts += r.counters.migration_aborts;
      out.counters.stale_precalcs += r.counters.stale_precalcs;
      out.counters.degradations += r.counters.degradations;
      out.counters.mispredictions += r.counters.mispredictions;
      out.counters.cache_hits += r.counters.cache_hits;
      out.counters.cache_misses += r.counters.cache_misses;
      out.counters.hazard_stall_s += r.counters.hazard_stall_s;
      break;
    }
    if (dropped) {
      // A request the operator failed to serve is an SLO violation too.
      ++out.dropped;
      ++out.slo_violations;
    }
  }

  out.engine = engine->name();
  out.requests = options.n_requests;
  if (!latency.empty()) {
    out.ttft_s = summarize(ttft);
    out.latency_s = summarize(latency);
    out.queue_wait_s = summarize(wait);
  }
  out.makespan_s = makespan;
  out.slo_violation_rate =
      static_cast<double>(out.slo_violations) / options.n_requests;
  if (makespan > 0.0) {
    out.throughput_tps = static_cast<double>(tokens) / makespan;
    out.busy_fraction = std::min(1.0, busy / makespan);
  }
  return out;
}

}  // namespace daop::eval
