#include "eval/accuracy.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "data/gate_bias.hpp"

namespace daop::eval {

double rouge_n(std::span<const int> reference, std::span<const int> candidate,
               int n) {
  DAOP_CHECK_GT(n, 0);
  const auto count_ngrams = [n](std::span<const int> seq) {
    std::map<std::vector<int>, int> grams;
    if (static_cast<int>(seq.size()) >= n) {
      for (std::size_t i = 0; i + static_cast<std::size_t>(n) <= seq.size();
           ++i) {
        std::vector<int> g(seq.begin() + static_cast<std::ptrdiff_t>(i),
                           seq.begin() + static_cast<std::ptrdiff_t>(i) + n);
        ++grams[g];
      }
    }
    return grams;
  };
  const auto ref = count_ngrams(reference);
  const auto cand = count_ngrams(candidate);
  if (ref.empty() && cand.empty()) return 1.0;
  if (ref.empty() || cand.empty()) return 0.0;

  long long overlap = 0;
  long long ref_total = 0;
  long long cand_total = 0;
  for (const auto& [g, c] : ref) ref_total += c;
  for (const auto& [g, c] : cand) cand_total += c;
  for (const auto& [g, c] : ref) {
    const auto it = cand.find(g);
    if (it != cand.end()) overlap += std::min(c, it->second);
  }
  if (overlap == 0) return 0.0;
  const double recall = static_cast<double>(overlap) / ref_total;
  const double precision = static_cast<double>(overlap) / cand_total;
  return 2.0 * precision * recall / (precision + recall);
}

std::vector<std::vector<double>> calibrate_functional_counts(
    const model::FunctionalModel& model, const data::WorkloadSpec& spec,
    int n_seqs, int prompt_len, int gen_len, std::uint64_t seed) {
  DAOP_CHECK_GT(n_seqs, 0);
  const model::ModelConfig& cfg = model.config();
  std::vector<std::vector<double>> counts(
      static_cast<std::size_t>(cfg.n_layers),
      std::vector<double>(static_cast<std::size_t>(cfg.n_experts), 0.0));

  const model::OfficialDecoder official(model);
  for (int s = 0; s < n_seqs; ++s) {
    const auto prompt = data::make_prompt(cfg.vocab_size, prompt_len, seed, s);
    const auto bias =
        data::make_gate_bias(spec, cfg.n_layers, cfg.n_experts, seed, s,
                             prompt_len, prompt_len + gen_len + 1);
    const auto observer = [&](int layer, int /*pos*/, bool is_prefill,
                              std::span<const float> /*logits*/,
                              const model::RouteDecision& d) {
      if (is_prefill) return;
      for (int e : d.experts) {
        counts[static_cast<std::size_t>(layer)][static_cast<std::size_t>(e)] +=
            1.0;
      }
    };
    official.generate(prompt, gen_len, bias, observer);
  }
  return counts;
}

AccuracyMetrics evaluate_daop_accuracy(const model::FunctionalModel& model,
                                       const data::WorkloadSpec& spec,
                                       const core::DaopConfig& config,
                                       double ecr,
                                       const AccuracyEvalOptions& options) {
  DAOP_CHECK_GT(options.n_episodes, 0);
  const model::ModelConfig& cfg = model.config();

  // §IV-A: calibrate the initial cache on the (ShareGPT-like) calibration
  // distribution, never on the evaluated workload.
  std::vector<std::vector<double>> local_calib;
  if (!options.calib_counts) {
    local_calib = calibrate_functional_counts(
        model, data::sharegpt_calibration(), options.calibration_seqs,
        options.prompt_len, options.gen_len, options.seed ^ 0x5ca1ab1eULL);
  }
  const auto& calib_counts =
      options.calib_counts ? *options.calib_counts : local_calib;
  const cache::Placement initial = cache::init_placement_calibrated(
      cfg.n_layers, cfg.n_experts, ecr, calib_counts);

  const model::OfficialDecoder official(model);
  const core::DaopFunctionalExecutor daop(model, config);

  AccuracyMetrics m;
  double token_match = 0.0;
  double token_total = 0.0;
  for (int s = 0; s < options.n_episodes; ++s) {
    const auto prompt =
        data::make_prompt(cfg.vocab_size, options.prompt_len, options.seed, s);
    const auto bias = data::make_gate_bias(
        spec, cfg.n_layers, cfg.n_experts, options.seed, s, options.prompt_len,
        options.prompt_len + options.gen_len + 1);

    const std::vector<int> ref = official.generate(prompt, options.gen_len, bias);

    // Free-running generation: the paper's ExactMatch / ROUGE setting.
    core::FunctionalRunStats stats;
    const std::vector<int> cand =
        daop.generate(prompt, options.gen_len, initial, bias, &stats);

    // Teacher-forced pass: per-step agreement without compounding
    // divergence (primary Table VI proxy).
    const std::vector<int> forced = daop.generate(
        prompt, options.gen_len, initial, bias, nullptr, ref);

    DAOP_CHECK_EQ(ref.size(), cand.size());
    DAOP_CHECK_EQ(ref.size(), forced.size());
    if (ref == cand) m.exact_match += 1.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      token_total += 1.0;
      if (ref[i] == forced[i]) token_match += 1.0;
    }
    m.rouge1 += rouge_n(ref, cand, 1);
    m.rouge2 += rouge_n(ref, cand, 2);

    m.stats.decode_expert_uses += stats.decode_expert_uses;
    m.stats.exact_execs += stats.exact_execs;
    m.stats.stale_input_execs += stats.stale_input_execs;
    m.stats.degradations += stats.degradations;
    m.stats.mispredict_fallbacks += stats.mispredict_fallbacks;
    m.stats.mispredict_recomputes += stats.mispredict_recomputes;
    m.stats.prefill_swaps += stats.prefill_swaps;
    m.stats.decode_swaps += stats.decode_swaps;
    m.stats.quantized_execs += stats.quantized_execs;
    m.stats.skipped_experts += stats.skipped_experts;
  }
  m.episodes = options.n_episodes;
  m.exact_match /= options.n_episodes;
  m.rouge1 /= options.n_episodes;
  m.rouge2 /= options.n_episodes;
  m.token_agreement = token_total > 0.0 ? token_match / token_total : 1.0;
  return m;
}

}  // namespace daop::eval
