#include "engines/fetch_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace daop::engines {
namespace {

/// Per-run mutable state shared by prefill and decode scheduling.
struct FetchState {
  cache::Placement placement;
  /// Monotonic use counter per (layer, expert) for LRU eviction.
  std::vector<long long> last_use;
  long long use_clock = 0;
  /// Completion time of an in-flight (or done) transfer per (layer, expert);
  /// negative when none.
  std::vector<double> fetch_ready;
  /// Set while a *prefetch* (speculative fetch issued ahead of need) is
  /// outstanding and has not yet been credited as a prefetch hit. A single
  /// prefetch is credited at most once, on its first use; demand fetches
  /// never set this.
  std::vector<char> prefetch_pending;
  /// Tracing: span id of the last fetch per (layer, expert); 0 when none.
  std::vector<std::uint64_t> fetch_span;

  explicit FetchState(const cache::Placement& initial)
      : placement(initial),
        last_use(static_cast<std::size_t>(initial.n_layers()) *
                     initial.n_experts(),
                 0),
        fetch_ready(static_cast<std::size_t>(initial.n_layers()) *
                        initial.n_experts(),
                    -1.0),
        prefetch_pending(fetch_ready.size(), 0),
        fetch_span(fetch_ready.size(), 0) {}

  std::size_t idx(int l, int e) const {
    return static_cast<std::size_t>(l) *
               static_cast<std::size_t>(placement.n_experts()) +
           static_cast<std::size_t>(e);
  }

  void touch(int l, int e) { last_use[idx(l, e)] = ++use_clock; }

  /// LRU victim among residents of `layer` that are not in `protect`.
  int victim(int layer, const std::unordered_set<int>& protect) const {
    int best = -1;
    long long best_use = 0;
    for (int e = 0; e < placement.n_experts(); ++e) {
      if (!placement.on_gpu(layer, e) || protect.count(e) != 0) continue;
      const long long u = last_use[idx(layer, e)];
      if (best < 0 || u < best_use) {
        best = e;
        best_use = u;
      }
    }
    return best;
  }
};

}  // namespace

FetchBasedEngine::FetchBasedEngine(const model::OpCosts& costs,
                                   FetchPolicy policy)
    : Engine(costs), policy_(std::move(policy)) {
  DAOP_CHECK_GT(policy_.weight_bytes_factor, 0.0);
}

RunResult FetchBasedEngine::run(const data::SequenceTrace& trace,
                                const cache::Placement& initial,
                                sim::Timeline* external_tl) {
  sim::Timeline local_tl;
  sim::Timeline& tl = external_tl ? *external_tl : local_tl;
  tl.set_fault_model(fault_model_);
  const double stall0 = tl.hazard_stall_s();

  const model::ModelConfig& cfg = costs_.config();
  DAOP_CHECK_EQ(initial.n_layers(), cfg.n_layers);
  DAOP_CHECK_EQ(initial.n_experts(), cfg.n_experts);
  const int L = cfg.n_layers;
  const double mig_time =
      costs_.cost_model().h2d_time(cfg.expert_bytes() *
                                   policy_.weight_bytes_factor);

  FetchState st(initial);
  if (policy_.ignore_initial_cache) {
    for (int l = 0; l < L; ++l) {
      for (int e = 0; e < cfg.n_experts; ++e) st.placement.move_to_cpu(l, e);
    }
  }
  EngineCounters counters;

  // Ensures room for `expert` on the GPU, evicting an LRU resident if
  // needed, and marks it resident. Returns false if it could not be cached
  // (zero capacity) — the expert is then streamed without residency.
  auto make_resident = [&](int l, int e,
                           const std::unordered_set<int>& protect) -> bool {
    if (st.placement.capacity(l) == 0) return false;
    if (st.placement.gpu_count(l) >= st.placement.capacity(l)) {
      const int v = st.victim(l, protect);
      if (v < 0) return false;
      st.placement.move_to_cpu(l, v);
      st.fetch_ready[st.idx(l, v)] = -1.0;
      // An evicted prefetch was never used, so it can no longer be a hit.
      st.prefetch_pending[st.idx(l, v)] = 0;
    }
    st.placement.move_to_gpu(l, e);
    return true;
  };

  // Fetches `e`'s weights, honoring the overlap policy. `issue` is the
  // earliest time routing knowledge allows the fetch; `serial_after` is the
  // previous dependent op for synchronous mode.
  auto fetch = [&](int l, int e, double issue, double serial_after) -> double {
    const double ready = policy_.overlap_fetch
                             ? issue
                             : std::max(issue, serial_after);
    double done =
        tl.schedule(sim::Res::PcieH2D, ready, mig_time, "fetch expert");
    const double fetch_start = tl.last_start();
    ++counters.expert_migrations;
    // Transient expert-load failures (fault plane): a GPU-centric engine
    // has no CPU execution path to degrade to, so it must re-stream the
    // weights — bounded retries with exponential backoff, after which the
    // load is assumed to go through.
    if (fault_model_ != nullptr && fault_model_->enabled()) {
      const sim::HazardScenario& sc = fault_model_->scenario();
      double backoff = sc.retry_backoff_s;
      int attempts = 0;
      while (attempts < sc.max_transfer_retries &&
             fault_model_->expert_load_fails()) {
        ++attempts;
        ++counters.migration_retries;
        done = tl.schedule(sim::Res::PcieH2D, done + backoff, mig_time,
                           "refetch expert");
        ++counters.expert_migrations;
        backoff *= 2.0;
      }
    }
    st.fetch_ready[st.idx(l, e)] = done;
    // A re-stream always supersedes any previous fetch of this expert.
    st.prefetch_pending[st.idx(l, e)] = 0;
    if (tracing()) {
      st.fetch_span[st.idx(l, e)] = tspan(
          tracks::kMigration, "fetch L" + std::to_string(l) + " E" +
                                  std::to_string(e),
          fetch_start, done);
    }
    return done;
  };

  // ---- Prefill ----
  double ready = 0.0;
  const auto prefill_counts = trace.activation_counts(data::Phase::Prefill);
  {
    const int np = trace.prompt_len;
    const auto& counts = prefill_counts;
    for (int l = 0; l < L; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs_.nonmoe_gpu_prefill(np),
          "prefill non-MoE");
      // Activated experts, most-loaded first so heavy work starts earliest.
      std::vector<int> active;
      for (int e = 0; e < cfg.n_experts; ++e) {
        if (counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] >
            0.0) {
          active.push_back(e);
        }
      }
      std::stable_sort(active.begin(), active.end(), [&](int a, int b) {
        return counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(a)] >
               counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(b)];
      });
      std::unordered_set<int> protect(active.begin(), active.end());

      double layer_end = nonmoe_end;
      double prev_exec_end = nonmoe_end;
      for (int e : active) {
        const int tok = static_cast<int>(
            counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]);
        double exec_ready = nonmoe_end;
        if (!st.placement.on_gpu(l, e)) {
          ++counters.cache_misses;
          const double done = fetch(l, e, nonmoe_end, prev_exec_end);
          exec_ready = done;
          if (!policy_.reuse_cache || !make_resident(l, e, protect)) {
            st.fetch_ready[st.idx(l, e)] = -1.0;
          }
        } else {
          ++counters.cache_hits;
        }
        const double exec_end =
            tl.schedule(sim::Res::GpuStream, exec_ready,
                        costs_.expert_gpu_prefill(tok), "prefill expert");
        ++counters.gpu_expert_execs;
        if (tracing()) {
          tspan(tracks::kExpertGpu, "prefill expert", tl.last_start(),
                exec_end);
        }
        st.touch(l, e);
        prev_exec_end = exec_end;
        layer_end = std::max(layer_end, exec_end);
      }
      ready = layer_end;
    }
  }
  const double prefill_end = ready;
  if (tracing()) tspan(tracks::kToken, "prefill", 0.0, prefill_end);

  // ---- Decode ----
  // Sequence-pattern prefetches (MoE-Infinity) are issued once per
  // (layer, expert): the pattern is static for the sequence, so re-issuing
  // it every token would only thrash the cache.
  std::vector<bool> pattern_prefetched(
      static_cast<std::size_t>(L) * cfg.n_experts, false);
  for (int t = 0; t < trace.gen_len; ++t) {
    const int ctx = trace.prompt_len + t;
    const double token_start = ready;
    for (int l = 0; l < L; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs_.nonmoe_gpu(ctx), "non-MoE");
      const std::vector<int> selected = trace.selected(data::Phase::Decode, l, t);
      std::unordered_set<int> protect(selected.begin(), selected.end());
      if (tracing()) {
        tinstant(tracks::kGate, "gate L" + std::to_string(l), nonmoe_end);
      }

      // Issue next-layer prefetches as soon as this layer's gate resolves.
      if (policy_.prefetch_next_layer && l + 1 < L) {
        std::vector<int> guess;
        std::uint64_t pred_span = 0;
        if (policy_.prefetch_uses_sequence_pattern) {
          // MoE-Infinity: prefetch the next layer's sequence-level dominant
          // experts (prefill activation pattern).
          std::vector<float> scores(
              prefill_counts[static_cast<std::size_t>(l + 1)].begin(),
              prefill_counts[static_cast<std::size_t>(l + 1)].end());
          guess = topk_indices(scores, cfg.top_k);
        } else if (policy_.prefetch_uses_prediction) {
          guess = trace.predicted(l + 1, t);
          if (!guess.empty()) {
            ++counters.predictions;
            if (tracing()) {
              pred_span = tinstant(tracks::kPrediction,
                                   "predict L" + std::to_string(l + 1),
                                   nonmoe_end);
            }
          }
        } else {
          guess = selected;  // assume expert reuse across layers
        }
        for (int e : guess) {
          const std::size_t i = st.idx(l + 1, e);
          if (st.placement.on_gpu(l + 1, e) || st.fetch_ready[i] >= 0.0) {
            continue;
          }
          if (policy_.prefetch_uses_sequence_pattern) {
            if (pattern_prefetched[i]) continue;
            pattern_prefetched[i] = true;
          }
          fetch(l + 1, e, nonmoe_end, nonmoe_end);
          st.prefetch_pending[i] = 1;
          tflow(pred_span, st.fetch_span[i], "prefetch");
          if (policy_.reuse_cache) {
            make_resident(l + 1, e, std::unordered_set<int>(guess.begin(),
                                                            guess.end()));
          }
        }
      }

      double layer_end = nonmoe_end;
      double prev_exec_end = nonmoe_end;
      for (int e : selected) {
        double exec_ready = nonmoe_end;
        const std::size_t i = st.idx(l, e);
        bool consumed_prefetch = false;
        if (st.placement.on_gpu(l, e)) {
          ++counters.cache_hits;
          consumed_prefetch = st.prefetch_pending[i] != 0;
          // May still be in-flight from a prefetch.
          if (st.fetch_ready[i] > exec_ready) {
            exec_ready = st.fetch_ready[i];
          }
        } else {
          ++counters.cache_misses;
          if (st.fetch_ready[i] >= 0.0) {
            // An earlier fetch is in flight (or landed without a free
            // slot); consume it instead of re-streaming the weights.
            exec_ready = std::max(nonmoe_end, st.fetch_ready[i]);
            consumed_prefetch = st.prefetch_pending[i] != 0;
          } else {
            exec_ready = fetch(l, e, nonmoe_end, prev_exec_end);
          }
          // Streamed weights are discarded after use unless a cache slot
          // absorbs them.
          if (!policy_.reuse_cache || !make_resident(l, e, protect)) {
            st.fetch_ready[i] = -1.0;
          }
        }
        if (consumed_prefetch) {
          // Credit each speculative prefetch at most once, on first use.
          st.prefetch_pending[i] = 0;
          ++counters.prefetch_hits;
        }
        const double exec_end = tl.schedule(
            sim::Res::GpuStream, exec_ready, costs_.expert_gpu(), "expert");
        if (tracing()) {
          const std::uint64_t x = tspan(tracks::kExpertGpu, "expert",
                                        tl.last_start(), exec_end);
          if (consumed_prefetch) tflow(st.fetch_span[i], x, "prefetched");
        }
        ++counters.gpu_expert_execs;
        st.touch(l, e);
        prev_exec_end = exec_end;
        layer_end = std::max(layer_end, exec_end);
      }
      ready = layer_end;
    }
    if (tracing()) {
      tspan(tracks::kToken, "token " + std::to_string(t), token_start, ready);
    }
  }

  return finalize(policy_.name, trace, tl, prefill_end, ready, counters,
                  stall0);
}

std::unique_ptr<Engine> make_moe_ondemand(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "MoE-OnDemand";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_deepspeed_mii(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "DeepSpeed-MII";
  p.reuse_cache = false;
  p.overlap_fetch = false;
  p.ignore_initial_cache = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_mixtral_offloading(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "Mixtral-Offloading";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_prediction = false;
  p.weight_bytes_factor = 0.5;  // mixed quantization
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_pregated_moe(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "Pre-gated MoE";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_prediction = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_edgemoe(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "EdgeMoE";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_prediction = true;
  // Expert-wise bit-width adaptation: ~4-bit experts plus per-group scales.
  p.weight_bytes_factor = 0.3;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_moe_infinity(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "MoE-Infinity";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_sequence_pattern = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

}  // namespace daop::engines
