#include "engines/fetch_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "cache/arbiter.hpp"
#include "common/check.hpp"
#include "engines/session.hpp"
#include "tensor/ops.hpp"

namespace daop::engines {
namespace {

/// Fetch-based session: policy decides WHAT to fetch/prefetch and WHEN;
/// the session base supplies the migration/retry and tracing mechanics.
class FetchSession final : public SequenceSession {
 public:
  FetchSession(const model::OpCosts& costs, const FetchPolicy& policy,
               const data::SequenceTrace& trace, const SessionEnv& env,
               sim::FaultModel* fault, obs::SpanTracer* tracer,
               obs::Profiler* profiler, const cache::Placement& initial)
      : SequenceSession(policy.name, costs, trace, env, fault, tracer,
                        profiler),
        policy_(policy),
        placement_(initial),
        mig_time_(costs.cost_model().h2d_time(costs.config().expert_bytes() *
                                              policy.weight_bytes_factor)),
        prefill_counts_(this->trace().activation_counts(data::Phase::Prefill)),
        last_use_(static_cast<std::size_t>(initial.n_layers()) *
                      initial.n_experts(),
                  0),
        fetch_ready_(last_use_.size(), -1.0),
        prefetch_pending_(last_use_.size(), 0),
        fetch_span_(last_use_.size(), 0),
        pattern_prefetched_(last_use_.size(), false) {
    if (policy_.ignore_initial_cache) {
      // DeepSpeed-MII has no expert offloading mechanism (§V-C): every
      // expert streams from host memory on every use. Under a shared
      // placement this clears residency for the whole device, which is
      // exactly what running such an engine on the device means.
      cache::Placement& p = placement();
      for (int l = 0; l < p.n_layers(); ++l) {
        for (int e = 0; e < p.n_experts(); ++e) p.move_to_cpu(l, e);
      }
    }
  }

 private:
  /// The shared placement under an arbiter, a private copy otherwise.
  cache::Placement& placement() {
    return arbiter() != nullptr ? arbiter()->placement() : placement_;
  }

  std::size_t idx(int l, int e) const {
    return static_cast<std::size_t>(l) *
               static_cast<std::size_t>(placement_.n_experts()) +
           static_cast<std::size_t>(e);
  }

  void touch(int l, int e) { last_use_[idx(l, e)] = ++use_clock_; }

  /// LRU victim among residents of `layer` that are not in `protect` and —
  /// under an arbiter — not pinned by another session. When only pins stand
  /// between the caller and a victim, the refusal is counted.
  int victim(int layer, const std::unordered_set<int>& protect) {
    int best = -1;
    long long best_use = 0;
    bool pin_blocked = false;
    for (int e = 0; e < placement().n_experts(); ++e) {
      if (!placement().on_gpu(layer, e) || protect.count(e) != 0) continue;
      if (arbiter() != nullptr &&
          arbiter()->pinned_by_other(layer, e, request_id())) {
        pin_blocked = true;
        continue;
      }
      const long long u = last_use_[idx(layer, e)];
      if (best < 0 || u < best_use) {
        best = e;
        best_use = u;
      }
    }
    if (best < 0 && pin_blocked) ++counters_.pin_refusals;
    return best;
  }

  // Ensures room for `expert` on the GPU, evicting an LRU resident if
  // needed, and marks it resident. Returns false if it could not be cached
  // (zero capacity, or every candidate victim pinned by another session) —
  // the expert is then streamed without residency.
  bool make_resident(int l, int e, const std::unordered_set<int>& protect) {
    if (placement().capacity(l) == 0) return false;
    if (placement().gpu_count(l) >= placement().capacity(l)) {
      const int v = victim(l, protect);
      if (v < 0) return false;
      placement().move_to_cpu(l, v);
      fetch_ready_[idx(l, v)] = -1.0;
      // An evicted prefetch was never used, so it can no longer be a hit.
      prefetch_pending_[idx(l, v)] = 0;
    }
    placement().move_to_gpu(l, e);
    return true;
  }

  // Fetches `e`'s weights, honoring the overlap policy. `issue` is the
  // earliest time routing knowledge allows the fetch; `serial_after` is the
  // previous dependent op for synchronous mode.
  double fetch(int l, int e, double issue, double serial_after) {
    const double ready =
        policy_.overlap_fetch ? issue : std::max(issue, serial_after);
    // A GPU-centric engine has no CPU execution path to degrade to, so a
    // transient load failure means re-streaming the weights: bounded
    // retries, after which the load is assumed to go through.
    const int max_retries =
        fault() != nullptr && fault()->enabled()
            ? fault()->scenario().max_transfer_retries
            : 0;
    const MigrationOutcome m = migrate_with_retry(
        ready, mig_time_, "fetch expert", "refetch expert",
        SpanName{"fetch L", " E", l, e}, max_retries, 0.0,
        /*abort_when_exhausted=*/false);
    fetch_ready_[idx(l, e)] = m.done;
    // A re-stream always supersedes any previous fetch of this expert.
    prefetch_pending_[idx(l, e)] = 0;
    fetch_span_[idx(l, e)] = m.span;
    publish_weight_ready(l, e, m.done);
    return m.done;
  }

  void run_prefill() override {
    const model::ModelConfig& cfg = costs_.config();
    const int np = trace().prompt_len;
    const auto& counts = prefill_counts_;
    for (int l = 0; l < cfg.n_layers; ++l) {
      const double nonmoe_end = tl().schedule(
          sim::Res::GpuStream, ready_, costs_.nonmoe_gpu_prefill(np),
          "prefill non-MoE");
      // Activated experts, most-loaded first so heavy work starts earliest.
      std::vector<int> active;
      for (int e = 0; e < cfg.n_experts; ++e) {
        if (counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] >
            0.0) {
          active.push_back(e);
        }
      }
      std::stable_sort(active.begin(), active.end(), [&](int a, int b) {
        return counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(a)] >
               counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(b)];
      });
      std::unordered_set<int> protect(active.begin(), active.end());

      double layer_end = nonmoe_end;
      double prev_exec_end = nonmoe_end;
      for (int e : active) {
        const int tok = static_cast<int>(
            counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]);
        double exec_ready = nonmoe_end;
        if (!placement().on_gpu(l, e)) {
          ++counters_.cache_misses;
          const double done = fetch(l, e, nonmoe_end, prev_exec_end);
          exec_ready = done;
          if (!policy_.reuse_cache || !make_resident(l, e, protect)) {
            fetch_ready_[idx(l, e)] = -1.0;
          }
        } else {
          ++counters_.cache_hits;
          exec_ready = shared_weight_gate(l, e, exec_ready);
        }
        const double exec_end =
            tl().schedule(sim::Res::GpuStream, exec_ready,
                          costs_.expert_gpu_prefill(tok), "prefill expert");
        ++counters_.gpu_expert_execs;
        if (tracing()) {
          tspan(tracks::kExpertGpu, "prefill expert", tl().last_start(),
                exec_end);
        }
        note_expert_exec(l, e, /*on_gpu=*/true, tl().last_start(), exec_end);
        touch(l, e);
        prev_exec_end = exec_end;
        layer_end = std::max(layer_end, exec_end);
      }
      ready_ = layer_end;
    }
    prefill_end_ = ready_;
  }

  void run_decode_token(int t) override {
    const model::ModelConfig& cfg = costs_.config();
    const int ctx = trace().prompt_len + t;
    for (int l = 0; l < cfg.n_layers; ++l) {
      const double nonmoe_end = tl().schedule(
          sim::Res::GpuStream, ready_, costs_.nonmoe_gpu(ctx), "non-MoE");
      const std::vector<int> selected =
          trace().selected(data::Phase::Decode, l, t);
      std::unordered_set<int> protect(selected.begin(), selected.end());
      if (tracing()) {
        tinstant(tracks::kGate, "gate L" + std::to_string(l), nonmoe_end);
      }

      // Issue next-layer prefetches as soon as this layer's gate resolves.
      if (policy_.prefetch_next_layer && l + 1 < cfg.n_layers) {
        std::vector<int> guess;
        std::uint64_t pred_span = 0;
        if (policy_.prefetch_uses_sequence_pattern) {
          // MoE-Infinity: prefetch the next layer's sequence-level dominant
          // experts (prefill activation pattern).
          std::vector<float> scores(
              prefill_counts_[static_cast<std::size_t>(l + 1)].begin(),
              prefill_counts_[static_cast<std::size_t>(l + 1)].end());
          guess = topk_indices(scores, cfg.top_k);
        } else if (policy_.prefetch_uses_prediction) {
          guess = trace().predicted(l + 1, t);
          if (!guess.empty()) {
            ++counters_.predictions;
            if (tracing()) {
              pred_span = tinstant(tracks::kPrediction,
                                   "predict L" + std::to_string(l + 1),
                                   nonmoe_end);
            }
          }
        } else {
          guess = selected;  // assume expert reuse across layers
        }
        for (int e : guess) {
          const std::size_t i = idx(l + 1, e);
          if (placement().on_gpu(l + 1, e) || fetch_ready_[i] >= 0.0) {
            continue;
          }
          if (policy_.prefetch_uses_sequence_pattern) {
            if (pattern_prefetched_[i]) continue;
            pattern_prefetched_[i] = true;
          }
          fetch(l + 1, e, nonmoe_end, nonmoe_end);
          prefetch_pending_[i] = 1;
          tflow(pred_span, fetch_span_[i], "prefetch");
          if (policy_.reuse_cache) {
            make_resident(l + 1, e, std::unordered_set<int>(guess.begin(),
                                                            guess.end()));
          }
        }
      }

      double layer_end = nonmoe_end;
      double prev_exec_end = nonmoe_end;
      for (int e : selected) {
        double exec_ready = nonmoe_end;
        const std::size_t i = idx(l, e);
        bool consumed_prefetch = false;
        if (placement().on_gpu(l, e)) {
          ++counters_.cache_hits;
          pin_shared(l, e);
          consumed_prefetch = prefetch_pending_[i] != 0;
          // May still be in-flight from a prefetch (possibly another
          // session's, under a shared placement).
          if (fetch_ready_[i] > exec_ready) {
            exec_ready = fetch_ready_[i];
          }
          exec_ready = shared_weight_gate(l, e, exec_ready);
        } else {
          ++counters_.cache_misses;
          if (fetch_ready_[i] >= 0.0) {
            // An earlier fetch is in flight (or landed without a free
            // slot); consume it instead of re-streaming the weights.
            exec_ready = std::max(nonmoe_end, fetch_ready_[i]);
            consumed_prefetch = prefetch_pending_[i] != 0;
          } else {
            exec_ready = fetch(l, e, nonmoe_end, prev_exec_end);
          }
          // Streamed weights are discarded after use unless a cache slot
          // absorbs them.
          if (!policy_.reuse_cache || !make_resident(l, e, protect)) {
            fetch_ready_[i] = -1.0;
          }
        }
        if (consumed_prefetch) {
          // Credit each speculative prefetch at most once, on first use.
          prefetch_pending_[i] = 0;
          ++counters_.prefetch_hits;
        }
        const double exec_end = tl().schedule(
            sim::Res::GpuStream, exec_ready, costs_.expert_gpu(), "expert");
        if (tracing()) {
          const std::uint64_t x = tspan(tracks::kExpertGpu, "expert",
                                        tl().last_start(), exec_end);
          if (consumed_prefetch) tflow(fetch_span_[i], x, "prefetched");
        }
        note_expert_exec(l, e, /*on_gpu=*/true, tl().last_start(), exec_end);
        ++counters_.gpu_expert_execs;
        touch(l, e);
        prev_exec_end = exec_end;
        layer_end = std::max(layer_end, exec_end);
      }
      ready_ = layer_end;
    }
  }

  // ---- Warm-restart checkpointing: the LRU clock, per-expert in-flight
  // transfer gates (-1 sentinel preserved across the time rebase), prefetch
  // credit flags, trace span ids (valid when restoring under the same
  // tracer; cosmetic otherwise), and the once-per-expert pattern-prefetch
  // marks.
  bool save_policy_state(recovery::ByteWriter& w) const override {
    w.i32(placement_.n_layers());
    w.i32(placement_.n_experts());
    w.i64(use_clock_);
    for (const long long v : last_use_) w.i64(v);
    for (const double v : fetch_ready_) w.f64(v);
    for (const char v : prefetch_pending_) {
      w.u8(static_cast<std::uint8_t>(v));
    }
    for (const std::uint64_t v : fetch_span_) w.u64(v);
    for (std::size_t i = 0; i < pattern_prefetched_.size(); ++i) {
      w.u8(pattern_prefetched_[i] ? 1 : 0);
    }
    return true;
  }

  bool load_policy_state(recovery::ByteReader& r, double shift) override {
    const int L = r.i32();
    const int E = r.i32();
    if (!r.ok() || L != placement_.n_layers() || E != placement_.n_experts())
      return false;
    const long long clock = r.i64();
    std::vector<long long> last_use(last_use_.size());
    for (long long& v : last_use) v = r.i64();
    std::vector<double> fetch_ready(fetch_ready_.size());
    for (double& v : fetch_ready) {
      v = r.f64();
      if (v >= 0.0) v += shift;  // negative = nothing in flight, keep as-is
    }
    std::vector<char> pending(prefetch_pending_.size());
    for (char& v : pending) v = static_cast<char>(r.u8());
    std::vector<std::uint64_t> spans(fetch_span_.size());
    for (std::uint64_t& v : spans) v = r.u64();
    std::vector<bool> pattern(pattern_prefetched_.size());
    for (std::size_t i = 0; i < pattern.size(); ++i) pattern[i] = r.u8() != 0;
    if (!r.ok()) return false;
    use_clock_ = clock;
    last_use_ = std::move(last_use);
    fetch_ready_ = std::move(fetch_ready);
    prefetch_pending_ = std::move(pending);
    fetch_span_ = std::move(spans);
    pattern_prefetched_ = std::move(pattern);
    return true;
  }

  const cache::Placement* effective_placement() const override {
    return arbiter() != nullptr ? &arbiter()->placement() : &placement_;
  }

  cache::Placement* private_placement() override { return &placement_; }

  /// By value: open_session may hand each session a per-session variant of
  /// the policy (degradation directives disable prefetching for one session
  /// without touching the engine).
  const FetchPolicy policy_;
  cache::Placement placement_;
  const double mig_time_;
  const std::vector<std::vector<double>> prefill_counts_;
  /// Monotonic use counter per (layer, expert) for LRU eviction.
  std::vector<long long> last_use_;
  long long use_clock_ = 0;
  /// Completion time of an in-flight (or done) transfer per (layer,
  /// expert); negative when none.
  std::vector<double> fetch_ready_;
  /// Set while a *prefetch* (speculative fetch issued ahead of need) is
  /// outstanding and has not yet been credited as a prefetch hit. A single
  /// prefetch is credited at most once, on its first use; demand fetches
  /// never set this.
  std::vector<char> prefetch_pending_;
  /// Tracing: span id of the last fetch per (layer, expert); 0 when none.
  std::vector<std::uint64_t> fetch_span_;
  /// Sequence-pattern prefetches (MoE-Infinity) are issued once per
  /// (layer, expert): the pattern is static for the sequence, so
  /// re-issuing it every token would only thrash the cache.
  std::vector<bool> pattern_prefetched_;
};

}  // namespace

FetchBasedEngine::FetchBasedEngine(const model::OpCosts& costs,
                                   FetchPolicy policy)
    : Engine(costs), policy_(std::move(policy)) {
  DAOP_CHECK_GT(policy_.weight_bytes_factor, 0.0);
}

std::unique_ptr<SequenceSession> FetchBasedEngine::open_session(
    const data::SequenceTrace& trace, const cache::Placement& initial,
    const SessionEnv& env) {
  const model::ModelConfig& cfg = costs_.config();
  DAOP_CHECK_EQ(initial.n_layers(), cfg.n_layers);
  DAOP_CHECK_EQ(initial.n_experts(), cfg.n_experts);
  // Degradation directives (overload plane) narrow THIS session's policy;
  // demand fetches are load-bearing and stay on regardless.
  FetchPolicy session_policy = policy_;
  if (env.degrade_no_speculation) session_policy.prefetch_next_layer = false;
  return std::make_unique<FetchSession>(costs_, session_policy, trace, env,
                                        fault_model_, tracer_, profiler_,
                                        initial);
}

std::unique_ptr<Engine> make_moe_ondemand(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "MoE-OnDemand";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_deepspeed_mii(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "DeepSpeed-MII";
  p.reuse_cache = false;
  p.overlap_fetch = false;
  p.ignore_initial_cache = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_mixtral_offloading(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "Mixtral-Offloading";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_prediction = false;
  p.weight_bytes_factor = 0.5;  // mixed quantization
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_pregated_moe(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "Pre-gated MoE";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_prediction = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_edgemoe(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "EdgeMoE";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_prediction = true;
  // Expert-wise bit-width adaptation: ~4-bit experts plus per-group scales.
  p.weight_bytes_factor = 0.3;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

std::unique_ptr<Engine> make_moe_infinity(const model::OpCosts& costs) {
  FetchPolicy p;
  p.name = "MoE-Infinity";
  p.reuse_cache = true;
  p.overlap_fetch = true;
  p.prefetch_next_layer = true;
  p.prefetch_uses_sequence_pattern = true;
  return std::make_unique<FetchBasedEngine>(costs, p);
}

}  // namespace daop::engines
