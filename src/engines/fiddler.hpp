// Fiddler baseline (Kamahori et al.): when a selected expert is not GPU-
// resident, execute it on the CPU instead of migrating weights — activations
// are ~4 orders of magnitude smaller than expert weights. Within a layer,
// CPU experts run concurrently with GPU experts, but there is no cross-layer
// lookahead, no prediction, and the calibrated placement is static.
#pragma once

#include "engines/engine.hpp"

namespace daop::engines {

class FiddlerEngine : public Engine {
 public:
  explicit FiddlerEngine(const model::OpCosts& costs) : Engine(costs) {}

  std::string name() const override { return "Fiddler"; }

  std::unique_ptr<SequenceSession> open_session(
      const data::SequenceTrace& trace, const cache::Placement& initial,
      const SessionEnv& env) override;
};

std::unique_ptr<Engine> make_fiddler(const model::OpCosts& costs);

}  // namespace daop::engines
