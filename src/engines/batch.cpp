#include "engines/batch.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/allocation.hpp"
#include "engines/session.hpp"
#include "sim/energy.hpp"
#include "tensor/ops.hpp"

namespace daop::engines {
namespace {

void check_batch(std::span<const data::SequenceTrace> traces,
                 const model::ModelConfig& cfg,
                 const cache::Placement& initial) {
  DAOP_CHECK(!traces.empty());
  DAOP_CHECK_EQ(initial.n_layers(), cfg.n_layers);
  DAOP_CHECK_EQ(initial.n_experts(), cfg.n_experts);
  for (std::size_t b = 0; b < traces.size(); ++b) {
    const auto& tr = traces[b];
    DAOP_CHECK_EQ(tr.n_layers(), cfg.n_layers);
    DAOP_CHECK_EQ(tr.n_experts, cfg.n_experts);
    // The batched engines fuse per-layer work across sequences, so every
    // sequence must share one prompt length and one generation length (see
    // docs/API.md). Name the offender: a bare equality check is useless when
    // the batch came from a workload sampler.
    DAOP_CHECK_MSG(tr.prompt_len == traces[0].prompt_len,
                   "batched engines require equal-length sequences: sequence "
                       << b << " has prompt_len " << tr.prompt_len
                       << " but sequence 0 has prompt_len "
                       << traces[0].prompt_len);
    DAOP_CHECK_MSG(tr.gen_len == traces[0].gen_len,
                   "batched engines require equal-length sequences: sequence "
                       << b << " has gen_len " << tr.gen_len
                       << " but sequence 0 has gen_len " << traces[0].gen_len);
  }
}

/// Summed per-expert prefill token counts across the batch.
std::vector<std::vector<double>> batch_prefill_counts(
    std::span<const data::SequenceTrace> traces) {
  auto total = traces[0].activation_counts(data::Phase::Prefill);
  for (std::size_t b = 1; b < traces.size(); ++b) {
    const auto counts = traces[b].activation_counts(data::Phase::Prefill);
    for (std::size_t l = 0; l < counts.size(); ++l) {
      for (std::size_t e = 0; e < counts[l].size(); ++e) {
        total[l][e] += counts[l][e];
      }
    }
  }
  return total;
}

BatchResult finalize_batch(const std::string& name,
                           const model::OpCosts& costs, int batch,
                           int gen_len, const sim::Timeline& tl,
                           double prefill_end, double end,
                           const EngineCounters& counters) {
  BatchResult r;
  r.engine = name;
  r.batch = batch;
  r.tokens_generated = batch * gen_len;
  r.prefill_s = prefill_end;
  r.total_s = end;
  if (end > 0.0) {
    r.tokens_per_s = r.tokens_generated / end;
    r.per_seq_tokens_per_s = static_cast<double>(gen_len) / end;
  }
  r.energy = sim::compute_energy(costs.cost_model().platform(), tl,
                                 std::max(end, tl.span()));
  if (r.energy.total_j > 0.0) {
    r.tokens_per_kj = r.tokens_generated / (r.energy.total_j / 1000.0);
  }
  r.counters = counters;
  r.counters.hazard_stall_s = tl.hazard_stall_s();
  return r;
}

/// Batched CPU-expert round trip: the shared session helper priced with the
/// batched CPU execution cost.
double cpu_expert_batch(sim::Timeline& tl, const model::OpCosts& costs,
                        double start, int n_tokens, EngineCounters& counters) {
  return cpu_expert_roundtrip(tl, costs, start, n_tokens,
                              costs.expert_cpu_batch(n_tokens), counters)
      .result_arrival;
}

/// Hybrid prefill shared by both batched engines: every expert executes
/// where it lives, with the batch's summed token counts.
double hybrid_prefill(sim::Timeline& tl, const model::OpCosts& costs,
                      const cache::Placement& placement,
                      const std::vector<std::vector<double>>& counts,
                      int batch_prompt_tokens, EngineCounters& counters) {
  const model::ModelConfig& cfg = costs.config();
  double ready = 0.0;
  for (int l = 0; l < cfg.n_layers; ++l) {
    const double nonmoe_end =
        tl.schedule(sim::Res::GpuStream, ready,
                    costs.nonmoe_gpu_prefill(batch_prompt_tokens),
                    "prefill non-MoE");
    double layer_end = nonmoe_end;
    for (int e = 0; e < cfg.n_experts; ++e) {
      const int tok = static_cast<int>(
          counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]);
      if (tok == 0) continue;
      if (placement.on_gpu(l, e)) {
        ++counters.cache_hits;
        ++counters.gpu_expert_execs;
        layer_end = std::max(
            layer_end, tl.schedule(sim::Res::GpuStream, nonmoe_end,
                                   costs.expert_gpu_prefill(tok),
                                   "prefill expert"));
      } else {
        ++counters.cache_misses;
        layer_end = std::max(
            layer_end, cpu_expert_batch(tl, costs, nonmoe_end, tok, counters));
      }
    }
    ready = layer_end;
  }
  return ready;
}

}  // namespace

BatchResult run_fiddler_batch(const model::OpCosts& costs,
                              std::span<const data::SequenceTrace> traces,
                              const cache::Placement& initial,
                              sim::FaultModel* fault) {
  const model::ModelConfig& cfg = costs.config();
  check_batch(traces, cfg, initial);
  const int B = static_cast<int>(traces.size());
  const int gen_len = traces[0].gen_len;
  const int prompt_len = traces[0].prompt_len;

  sim::Timeline tl;
  tl.set_fault_model(fault);
  EngineCounters counters;
  const auto prefill_counts = batch_prefill_counts(traces);
  double ready = hybrid_prefill(tl, costs, initial, prefill_counts,
                                B * prompt_len, counters);
  const double prefill_end = ready;

  std::vector<int> expert_tokens(static_cast<std::size_t>(cfg.n_experts));
  for (int t = 0; t < gen_len; ++t) {
    const int ctx = prompt_len + t;
    for (int l = 0; l < cfg.n_layers; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs.nonmoe_gpu_batch(B, ctx),
          "non-MoE");
      std::fill(expert_tokens.begin(), expert_tokens.end(), 0);
      for (const auto& tr : traces) {
        for (int e : tr.selected(data::Phase::Decode, l, t)) {
          ++expert_tokens[static_cast<std::size_t>(e)];
        }
      }
      double layer_end = nonmoe_end;
      for (int e = 0; e < cfg.n_experts; ++e) {
        const int tok = expert_tokens[static_cast<std::size_t>(e)];
        if (tok == 0) continue;
        if (initial.on_gpu(l, e)) {
          counters.cache_hits += tok;
          ++counters.gpu_expert_execs;
          layer_end = std::max(
              layer_end, tl.schedule(sim::Res::GpuStream, nonmoe_end,
                                     costs.expert_gpu_batch(tok),
                                     "GPU expert"));
        } else {
          counters.cache_misses += tok;
          layer_end = std::max(
              layer_end, cpu_expert_batch(tl, costs, nonmoe_end, tok, counters));
        }
      }
      ready = layer_end;
    }
  }
  return finalize_batch("Fiddler (batched)", costs, B, gen_len, tl,
                        prefill_end, ready, counters);
}

BatchResult run_daop_batch(const model::OpCosts& costs,
                           const core::DaopConfig& config,
                           std::span<const data::SequenceTrace> traces,
                           const cache::Placement& initial,
                           sim::FaultModel* fault) {
  const model::ModelConfig& cfg = costs.config();
  check_batch(traces, cfg, initial);
  core::validate_config(config);
  const int B = static_cast<int>(traces.size());
  const int gen_len = traces[0].gen_len;
  const int prompt_len = traces[0].prompt_len;
  const int E = cfg.n_experts;

  sim::Timeline tl;
  tl.set_fault_model(fault);
  EngineCounters counters;
  cache::Placement placement = initial;

  // Prefill executes at the initial placement; Algorithm 1 runs once on the
  // batch's summed counts (one shared cache for everyone) with migrations
  // riding PCIe underneath.
  const auto prefill_counts = batch_prefill_counts(traces);
  double ready = hybrid_prefill(tl, costs, placement, prefill_counts,
                                B * prompt_len, counters);
  const double prefill_end = ready;
  if (config.enable_seq_allocation) {
    double last_swap_end = 0.0;
    for (int l = 0; l < cfg.n_layers; ++l) {
      const auto swaps = core::sequence_specific_swaps(
          prefill_counts[static_cast<std::size_t>(l)], placement, l,
          config.swap_in_out);
      core::apply_swaps(placement, l, swaps);
      for (std::size_t s = 0; s < swaps.size(); ++s) {
        last_swap_end = std::max(
            last_swap_end, tl.schedule(sim::Res::PcieH2D, 0.0,
                                       costs.expert_migration(), "swap-in"));
        ++counters.expert_migrations;
        ++counters.prefill_swaps;
      }
    }
    ready = std::max(ready, last_swap_end);
  }

  // Per-layer plan carried to layer l+1.
  struct Plan {
    bool active = false;
    std::vector<double> arrival;            ///< per expert; < 0 = none
    std::vector<std::vector<int>> sub;      ///< [seq][expert] substitute
    std::vector<std::vector<char>> covered; ///< [seq][expert] pre-calculated
                                            ///< for THIS sequence's token
    explicit Plan(int n_experts, int batch)
        : arrival(static_cast<std::size_t>(n_experts), -1.0),
          sub(static_cast<std::size_t>(batch),
              std::vector<int>(static_cast<std::size_t>(n_experts), -1)),
          covered(static_cast<std::size_t>(batch),
                  std::vector<char>(static_cast<std::size_t>(n_experts), 0)) {}
  };

  std::vector<int> gpu_tokens(static_cast<std::size_t>(E));
  std::vector<int> cpu_exact_tokens(static_cast<std::size_t>(E));
  for (int t = 0; t < gen_len; ++t) {
    const int ctx = prompt_len + t;
    Plan plan(E, B);
    for (int l = 0; l < cfg.n_layers; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs.nonmoe_gpu_batch(B, ctx),
          "non-MoE");

      // Classify each sequence's selections.
      std::fill(gpu_tokens.begin(), gpu_tokens.end(), 0);
      std::fill(cpu_exact_tokens.begin(), cpu_exact_tokens.end(), 0);
      double precalc_wait = nonmoe_end;
      for (int b = 0; b < B; ++b) {
        const auto& tok = traces[static_cast<std::size_t>(b)].at(
            data::Phase::Decode, l, t);
        // Charged at most once per sequence per plan: the counter means
        // "this sequence's predicted set missed a used expert", matching
        // the single-sequence engine's per-plan semantics.
        bool missed = false;
        for (int e : topk_indices(tok.scores, cfg.top_k)) {
          const auto ei = static_cast<std::size_t>(e);
          if (placement.on_gpu(l, e)) {
            ++counters.cache_hits;
            ++gpu_tokens[ei];
            continue;
          }
          ++counters.cache_misses;
          if (plan.active && plan.covered[static_cast<std::size_t>(b)][ei] &&
              plan.arrival[ei] >= 0.0) {
            precalc_wait = std::max(precalc_wait, plan.arrival[ei]);
          } else if (plan.active &&
                     plan.sub[static_cast<std::size_t>(b)][ei] >= 0) {
            ++gpu_tokens[static_cast<std::size_t>(
                plan.sub[static_cast<std::size_t>(b)][ei])];
          } else if (plan.active) {
            if (!missed) {
              missed = true;
              ++counters.mispredictions;
            }
            ++cpu_exact_tokens[ei];  // RecomputeExact semantics in batch
          } else {
            ++cpu_exact_tokens[ei];  // early layers: in-place hybrid
          }
        }
      }

      double layer_end = precalc_wait;
      for (int e = 0; e < E; ++e) {
        if (gpu_tokens[static_cast<std::size_t>(e)] > 0) {
          ++counters.gpu_expert_execs;
          layer_end = std::max(
              layer_end,
              tl.schedule(sim::Res::GpuStream, nonmoe_end,
                          costs.expert_gpu_batch(
                              gpu_tokens[static_cast<std::size_t>(e)]),
                          "GPU expert"));
        }
        if (cpu_exact_tokens[static_cast<std::size_t>(e)] > 0) {
          layer_end = std::max(
              layer_end,
              cpu_expert_batch(tl, costs, nonmoe_end,
                               cpu_exact_tokens[static_cast<std::size_t>(e)],
                               counters));
        }
      }

      // Plan for layer l+1 from this layer's hidden states.
      plan = Plan(E, B);
      const int nl = l + 1;
      if (config.enable_precalc && nl < cfg.n_layers &&
          nl >= config.min_predict_layer) {
        std::vector<int> pre_tokens(static_cast<std::size_t>(E), 0);
        bool any_pred = false;
        for (int b = 0; b < B; ++b) {
          const auto& ntok = traces[static_cast<std::size_t>(b)].at(
              data::Phase::Decode, nl, t);
          if (ntok.pred_scores.empty()) continue;
          any_pred = true;
          std::vector<int> predicted = topk_indices(ntok.pred_scores, cfg.top_k);
          std::vector<int> pred_cpu;
          for (int e : predicted) {
            if (!placement.on_gpu(nl, e)) pred_cpu.push_back(e);
          }
          if (config.enable_degradation &&
              static_cast<int>(pred_cpu.size()) == cfg.top_k &&
              cfg.top_k >= 2) {
            // Drop this sequence's lower-scored CPU expert for the best
            // GPU-resident one (by its own predicted scores).
            int best = -1;
            float best_score = 0.0F;
            for (int e = 0; e < E; ++e) {
              if (!placement.on_gpu(nl, e)) continue;
              const float s =
                  ntok.pred_scores[static_cast<std::size_t>(e)];
              if (best < 0 || s > best_score) {
                best = e;
                best_score = s;
              }
            }
            if (best >= 0) {
              plan.sub[static_cast<std::size_t>(b)]
                      [static_cast<std::size_t>(pred_cpu.back())] = best;
              pred_cpu.pop_back();
              ++counters.degradations;
            }
          }
          for (int e : pred_cpu) {
            ++pre_tokens[static_cast<std::size_t>(e)];
            plan.covered[static_cast<std::size_t>(b)]
                        [static_cast<std::size_t>(e)] = 1;
          }
        }
        if (any_pred) {
          plan.active = true;
          ++counters.predictions;
          for (int e = 0; e < E; ++e) {
            const int tok = pre_tokens[static_cast<std::size_t>(e)];
            if (tok == 0) continue;
            plan.arrival[static_cast<std::size_t>(e)] =
                cpu_expert_batch(tl, costs, nonmoe_end, tok, counters);
          }
        }
      }
      ready = layer_end;
    }
  }
  return finalize_batch("DAOP (batched)", costs, B, gen_len, tl, prefill_end,
                        ready, counters);
}

}  // namespace daop::engines
