// Inference-engine interface for the performance-simulation plane.
//
// An Engine schedules one sequence (prefill + autoregressive decode) onto a
// sim::Timeline using the per-op costs of a model/platform pair, maintaining
// its own expert-placement policy. Engines never invent costs: all timing
// flows through model::OpCosts so every engine prices identical work
// identically, and differences in tokens/s are purely scheduling policy —
// exactly the quantity the paper compares.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/placement.hpp"
#include "data/routing_trace.hpp"
#include "model/op_costs.hpp"
#include "obs/span_tracer.hpp"
#include "sim/energy.hpp"
#include "sim/fault_model.hpp"
#include "sim/timeline.hpp"

namespace daop::obs {
class Profiler;
}  // namespace daop::obs

namespace daop::engines {

/// Canonical span-track names shared by all engines, so traces from
/// different engines line up in the same viewer rows.
namespace tracks {
inline constexpr const char* kGate = "Gate";
inline constexpr const char* kToken = "Token";
inline constexpr const char* kExpertGpu = "Expert GPU";
inline constexpr const char* kExpertCpu = "Expert CPU";
inline constexpr const char* kMigration = "Migration";
inline constexpr const char* kPrediction = "Prediction";
inline constexpr const char* kPrecalc = "Pre-calc";
}  // namespace tracks

struct EngineCounters {
  long long expert_migrations = 0;   ///< CPU->GPU weight transfers
  long long gpu_expert_execs = 0;
  long long cpu_expert_execs = 0;
  long long cache_hits = 0;          ///< selected expert already on GPU
  long long cache_misses = 0;
  long long prefetch_hits = 0;       ///< prefetched expert actually used
  long long predictions = 0;         ///< gate-ahead predictions issued
  long long mispredictions = 0;      ///< predicted set missed a used expert
  long long degradations = 0;        ///< graceful-degradation substitutions
  long long prefill_swaps = 0;       ///< Algorithm 1 swaps
  long long decode_swaps = 0;        ///< decode-phase re-allocation swaps
                                     ///< (DAOP extension, off by default)
  long long skipped_experts = 0;     ///< experts skipped by the adaptive
                                     ///< top-1 margin (extension)

  // ---- Hazard / degradation telemetry (fault plane) ----
  long long migration_retries = 0;   ///< expert-load attempts retried after
                                     ///< a transient failure
  long long migration_aborts = 0;    ///< migrations abandoned (deadline
                                     ///< exceeded or retries exhausted)
  long long stale_precalcs = 0;      ///< pre-calculated results discarded
                                     ///< because they arrived too late
  long long pin_refusals = 0;        ///< placement swaps refused because the
                                     ///< eviction victim was pinned by a
                                     ///< concurrent session

  // ---- Overload-control telemetry (eval/overload.hpp) ----
  long long preemptions = 0;         ///< times this session was parked for a
                                     ///< deadline-critical request
  long long preempt_resumes = 0;     ///< times it resumed from a park
  long long degraded_sessions = 0;   ///< sessions opened under a degradation
                                     ///< directive (no-speculation and/or
                                     ///< no-migrations)
  double hazard_stall_s = 0.0;       ///< total hazard delay injected into
                                     ///< this run's scheduled ops

  /// Accumulates another run's counters into this one. Every aggregation
  /// path (multi-sequence averaging, serving) goes through this so a newly
  /// added counter can never be silently dropped by one of them.
  void add(const EngineCounters& o);
};

struct RunResult {
  std::string engine;
  int prompt_tokens = 0;
  int generated_tokens = 0;
  double prefill_s = 0.0;
  double decode_s = 0.0;
  double total_s = 0.0;
  /// The paper's end-to-end metric: generated tokens / total wall time.
  double tokens_per_s = 0.0;
  /// Decode-only rate (excludes prefill).
  double decode_tokens_per_s = 0.0;
  sim::EnergyBreakdown energy;
  /// The paper's Table IV metric.
  double tokens_per_kj = 0.0;
  EngineCounters counters;
};

class SequenceSession;
struct SessionEnv;

class Engine {
 public:
  explicit Engine(const model::OpCosts& costs) : costs_(costs) {}
  virtual ~Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  virtual std::string name() const = 0;

  /// Simulates one sequence starting from `initial` expert placement
  /// (typically the §IV-A calibrated placement). When `tl` is non-null the
  /// engine records into it (with interval recording as configured by the
  /// caller, e.g. for gantt rendering); otherwise a private timeline is
  /// used. Thin wrapper: opens a session and drives it to completion.
  /// `request_id` (when >= 0) labels the run in session spans and profiler
  /// records — purely observational, never a scheduling input.
  RunResult run(const data::SequenceTrace& trace,
                const cache::Placement& initial, sim::Timeline* tl = nullptr,
                long long request_id = -1);

  /// Opens a resumable session for one sequence (see engines/session.hpp).
  /// The engine supplies policy; `env` supplies where the session runs
  /// (timeline, start time, request id, placement arbiter). The session
  /// captures the engine's fault model and tracer at open time; the engine,
  /// trace, and env-referenced objects must outlive the session.
  virtual std::unique_ptr<SequenceSession> open_session(
      const data::SequenceTrace& trace, const cache::Placement& initial,
      const SessionEnv& env) = 0;

  /// The per-op cost table this engine schedules with. Recovery-plane
  /// helpers (placement reconciliation before a warm restart) price their
  /// transfers through this so restored work costs exactly what the engine
  /// itself would pay.
  const model::OpCosts& costs() const { return costs_; }

  /// Attaches a hazard-injection fault model (see sim/fault_model.hpp);
  /// every subsequent run() schedules through it. The model must outlive
  /// the engine's runs. nullptr (the default) restores calm-device
  /// behaviour, bit-identical to an engine that never had a fault model.
  void set_fault_model(sim::FaultModel* fm) { fault_model_ = fm; }
  sim::FaultModel* fault_model() const { return fault_model_; }

  /// Attaches a span tracer; subsequent runs record gate / expert-exec /
  /// migration / prediction / pre-calculation spans into it. Tracing is
  /// strictly passive — spans are derived from times the schedule already
  /// produced, so the timeline is bit-identical with or without a tracer.
  /// nullptr (the default) disables tracing.
  void set_tracer(obs::SpanTracer* tracer) { tracer_ = tracer; }
  obs::SpanTracer* tracer() const { return tracer_; }

  /// Attaches a critical-path profiler (obs/profiler.hpp); each subsequent
  /// non-shared session records its attribution/heatmap profile into it at
  /// close(). Like tracing this is strictly passive — the only effect on
  /// the run is that the session timeline records intervals, which never
  /// changes a scheduling decision (a profiled run is bit-identical to an
  /// unprofiled one). nullptr (the default) disables profiling.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

 protected:
  const model::OpCosts& costs_;
  sim::FaultModel* fault_model_ = nullptr;
  obs::SpanTracer* tracer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
};

/// Averages results over multiple sequences (rates are recomputed from the
/// summed times/tokens, not averaged, matching how the paper aggregates).
RunResult aggregate_results(const std::string& name,
                            const std::vector<RunResult>& results);

}  // namespace daop::engines
