#include "engines/fiddler.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::engines {

RunResult FiddlerEngine::run(const data::SequenceTrace& trace,
                             const cache::Placement& initial,
                             sim::Timeline* external_tl) {
  sim::Timeline local_tl;
  sim::Timeline& tl = external_tl ? *external_tl : local_tl;
  tl.set_fault_model(fault_model_);
  const double stall0 = tl.hazard_stall_s();

  const model::ModelConfig& cfg = costs_.config();
  DAOP_CHECK_EQ(initial.n_layers(), cfg.n_layers);
  const int L = cfg.n_layers;
  EngineCounters counters;

  // Runs one CPU-resident expert: ship activations out, execute, ship the
  // result back. Returns the time the result is available on the GPU.
  auto cpu_expert = [&](double start, int n_tokens, double exec_cost) {
    const double out = tl.schedule(sim::Res::PcieD2H, start,
                                   costs_.activations_d2h(n_tokens),
                                   "acts to CPU");
    const double exec =
        tl.schedule(sim::Res::CpuPool, out, exec_cost, "CPU expert");
    ++counters.cpu_expert_execs;
    if (tracing()) {
      tspan(tracks::kExpertCpu, "CPU expert", tl.last_start(), exec);
    }
    return tl.schedule(sim::Res::PcieH2D, exec,
                       costs_.activations_h2d(n_tokens), "acts to GPU");
  };

  // ---- Prefill: experts execute wherever they live ----
  double ready = 0.0;
  {
    const int np = trace.prompt_len;
    const auto counts = trace.activation_counts(data::Phase::Prefill);
    for (int l = 0; l < L; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs_.nonmoe_gpu_prefill(np),
          "prefill non-MoE");
      double layer_end = nonmoe_end;
      for (int e = 0; e < cfg.n_experts; ++e) {
        const int tok = static_cast<int>(
            counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]);
        if (tok == 0) continue;
        if (initial.on_gpu(l, e)) {
          ++counters.cache_hits;
          ++counters.gpu_expert_execs;
          const double exec_end =
              tl.schedule(sim::Res::GpuStream, nonmoe_end,
                          costs_.expert_gpu_prefill(tok), "prefill expert");
          if (tracing()) {
            tspan(tracks::kExpertGpu, "prefill expert", tl.last_start(),
                  exec_end);
          }
          layer_end = std::max(layer_end, exec_end);
        } else {
          ++counters.cache_misses;
          layer_end = std::max(
              layer_end,
              cpu_expert(nonmoe_end, tok, costs_.expert_cpu_prefill(tok)));
        }
      }
      ready = layer_end;
    }
  }
  const double prefill_end = ready;
  if (tracing()) tspan(tracks::kToken, "prefill", 0.0, prefill_end);

  // ---- Decode: per-layer synchronous hybrid execution ----
  for (int t = 0; t < trace.gen_len; ++t) {
    const int ctx = trace.prompt_len + t;
    const double token_start = ready;
    for (int l = 0; l < L; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs_.nonmoe_gpu(ctx), "non-MoE");
      if (tracing()) {
        tinstant(tracks::kGate, "gate L" + std::to_string(l), nonmoe_end);
      }
      double layer_end = nonmoe_end;
      for (int e : trace.selected(data::Phase::Decode, l, t)) {
        if (initial.on_gpu(l, e)) {
          ++counters.cache_hits;
          ++counters.gpu_expert_execs;
          const double exec_end = tl.schedule(sim::Res::GpuStream, nonmoe_end,
                                              costs_.expert_gpu(),
                                              "GPU expert");
          if (tracing()) {
            tspan(tracks::kExpertGpu, "GPU expert", tl.last_start(), exec_end);
          }
          layer_end = std::max(layer_end, exec_end);
        } else {
          ++counters.cache_misses;
          layer_end =
              std::max(layer_end, cpu_expert(nonmoe_end, 1, costs_.expert_cpu()));
        }
      }
      ready = layer_end;
    }
    if (tracing()) {
      tspan(tracks::kToken, "token " + std::to_string(t), token_start, ready);
    }
  }

  return finalize(name(), trace, tl, prefill_end, ready, counters, stall0);
}

std::unique_ptr<Engine> make_fiddler(const model::OpCosts& costs) {
  return std::make_unique<FiddlerEngine>(costs);
}

}  // namespace daop::engines
