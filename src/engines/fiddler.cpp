#include "engines/fiddler.hpp"

#include <algorithm>

#include "cache/arbiter.hpp"
#include "common/check.hpp"
#include "engines/session.hpp"

namespace daop::engines {
namespace {

/// Fiddler is pure policy-free hybrid execution: the calibrated placement is
/// static, selected experts run wherever they live. All mechanics come from
/// the session base.
class FiddlerSession final : public SequenceSession {
 public:
  FiddlerSession(const model::OpCosts& costs, const data::SequenceTrace& trace,
                 const SessionEnv& env, sim::FaultModel* fault,
                 obs::SpanTracer* tracer, obs::Profiler* profiler,
                 const cache::Placement& initial)
      : SequenceSession("Fiddler", costs, trace, env, fault, tracer, profiler),
        placement_(initial) {}

 private:
  /// The shared placement under an arbiter, a private copy otherwise.
  const cache::Placement& placement() const {
    return arbiter() != nullptr ? arbiter()->placement() : placement_;
  }

  void run_prefill() override {
    const model::ModelConfig& cfg = costs_.config();
    const int np = trace().prompt_len;
    const auto counts = trace().activation_counts(data::Phase::Prefill);
    for (int l = 0; l < cfg.n_layers; ++l) {
      const double nonmoe_end = tl().schedule(
          sim::Res::GpuStream, ready_, costs_.nonmoe_gpu_prefill(np),
          "prefill non-MoE");
      double layer_end = nonmoe_end;
      for (int e = 0; e < cfg.n_experts; ++e) {
        const int tok = static_cast<int>(
            counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]);
        if (tok == 0) continue;
        if (placement().on_gpu(l, e)) {
          ++counters_.cache_hits;
          ++counters_.gpu_expert_execs;
          const double eready = shared_weight_gate(l, e, nonmoe_end);
          const double exec_end =
              tl().schedule(sim::Res::GpuStream, eready,
                            costs_.expert_gpu_prefill(tok), "prefill expert");
          if (tracing()) {
            tspan(tracks::kExpertGpu, "prefill expert", tl().last_start(),
                  exec_end);
          }
          note_expert_exec(l, e, /*on_gpu=*/true, tl().last_start(), exec_end);
          layer_end = std::max(layer_end, exec_end);
        } else {
          ++counters_.cache_misses;
          layer_end = std::max(
              layer_end,
              cpu_expert(nonmoe_end, tok, costs_.expert_cpu_prefill(tok), l,
                         e));
        }
      }
      ready_ = layer_end;
    }
    prefill_end_ = ready_;
  }

  void run_decode_token(int t) override {
    const model::ModelConfig& cfg = costs_.config();
    const int ctx = trace().prompt_len + t;
    for (int l = 0; l < cfg.n_layers; ++l) {
      const double nonmoe_end = tl().schedule(
          sim::Res::GpuStream, ready_, costs_.nonmoe_gpu(ctx), "non-MoE");
      if (tracing()) {
        tinstant(tracks::kGate, "gate L" + std::to_string(l), nonmoe_end);
      }
      double layer_end = nonmoe_end;
      for (int e : trace().selected(data::Phase::Decode, l, t)) {
        if (placement().on_gpu(l, e)) {
          ++counters_.cache_hits;
          ++counters_.gpu_expert_execs;
          pin_shared(l, e);
          const double eready = shared_weight_gate(l, e, nonmoe_end);
          const double exec_end = tl().schedule(sim::Res::GpuStream, eready,
                                                costs_.expert_gpu(),
                                                "GPU expert");
          if (tracing()) {
            tspan(tracks::kExpertGpu, "GPU expert", tl().last_start(),
                  exec_end);
          }
          note_expert_exec(l, e, /*on_gpu=*/true, tl().last_start(), exec_end);
          layer_end = std::max(layer_end, exec_end);
        } else {
          ++counters_.cache_misses;
          layer_end = std::max(
              layer_end, cpu_expert(nonmoe_end, 1, costs_.expert_cpu(), l, e));
        }
      }
      ready_ = layer_end;
    }
  }

  // Fiddler has no policy state beyond its placement, which the session
  // base snapshots/restores; the hooks just opt in to checkpointing.
  bool save_policy_state(recovery::ByteWriter& w) const override {
    (void)w;
    return true;
  }
  bool load_policy_state(recovery::ByteReader& r, double shift) override {
    (void)r;
    (void)shift;
    return true;
  }
  const cache::Placement* effective_placement() const override {
    return &placement();
  }
  cache::Placement* private_placement() override { return &placement_; }

  cache::Placement placement_;
};

}  // namespace

std::unique_ptr<SequenceSession> FiddlerEngine::open_session(
    const data::SequenceTrace& trace, const cache::Placement& initial,
    const SessionEnv& env) {
  DAOP_CHECK_EQ(initial.n_layers(), costs_.config().n_layers);
  return std::make_unique<FiddlerSession>(costs_, trace, env, fault_model_,
                                          tracer_, profiler_, initial);
}

std::unique_ptr<Engine> make_fiddler(const model::OpCosts& costs) {
  return std::make_unique<FiddlerEngine>(costs);
}

}  // namespace daop::engines
