// Batched decoding — extension beyond the paper.
//
// The paper pins batch size to 1 ("simulate real-time inference", §V-A(c)).
// Serving deployments batch: B sequences advance one decode step together,
// sharing every weight read. Batching changes the economics of both hybrid
// engines in opposite directions:
//  - expert reads amortize over the batch's tokens, helping the GPU far
//    more than the bandwidth-bound CPU (CPU time grows ~linearly with
//    assigned tokens, §IV-B's own observation);
//  - the expert cache must serve the UNION of the batch's sequences, so
//    DAOP's per-sequence allocation advantage dilutes as B grows.
// run_*_batch quantify both effects on the simulated platform.
#pragma once

#include <span>

#include "cache/placement.hpp"
#include "core/daop_config.hpp"
#include "data/routing_trace.hpp"
#include "engines/engine.hpp"
#include "model/op_costs.hpp"

namespace daop::engines {

struct BatchResult {
  std::string engine;
  int batch = 0;
  int tokens_generated = 0;   ///< summed over the batch
  double prefill_s = 0.0;
  double total_s = 0.0;
  /// Aggregate throughput: all generated tokens / wall time.
  double tokens_per_s = 0.0;
  /// Per-sequence rate (what one user experiences).
  double per_seq_tokens_per_s = 0.0;
  sim::EnergyBreakdown energy;
  double tokens_per_kj = 0.0;
  EngineCounters counters;
};

/// Batched Fiddler: per layer, resident experts execute on the GPU with
/// their batch token counts; missing experts on the CPU. All traces must
/// share prompt_len/gen_len/topology. A non-null `fault` injects hazards
/// into every scheduled op (see sim/fault_model.hpp).
BatchResult run_fiddler_batch(const model::OpCosts& costs,
                              std::span<const data::SequenceTrace> traces,
                              const cache::Placement& initial,
                              sim::FaultModel* fault = nullptr);

/// Batched DAOP: Algorithm 1 runs on the batch's summed prefill counts
/// (one cache serves everyone); gate-ahead pre-calculation and graceful
/// degradation apply per sequence, with CPU work aggregated per expert.
/// A non-null `fault` injects hazards into every scheduled op.
BatchResult run_daop_batch(const model::OpCosts& costs,
                           const core::DaopConfig& config,
                           std::span<const data::SequenceTrace> traces,
                           const cache::Placement& initial,
                           sim::FaultModel* fault = nullptr);

}  // namespace daop::engines
