// Bridges engine results into the observability plane: one call records a
// RunResult's timing, energy and counters as Prometheus-style metric
// families in a MetricsRegistry. Recording is write-only — nothing in the
// engines reads the registry back, so metrics can never influence a
// simulated schedule.
#pragma once

#include <utility>
#include <vector>

#include "engines/engine.hpp"
#include "obs/metrics.hpp"

namespace daop::engines {

/// Records one run (timing, tokens, energy, counters) into `reg`. `labels`
/// (typically {{"engine", r.engine}}) is attached to every series; some
/// families add their own dimension on top (device, result, phase).
void record_run_metrics(obs::MetricsRegistry& reg, const RunResult& r,
                        const obs::Labels& labels);

/// Overload that labels every series with the run's engine name.
void record_run_metrics(obs::MetricsRegistry& reg, const RunResult& r);

/// Counter-only subset, shared with the batch and serving paths (which
/// aggregate counters without a per-sequence RunResult).
void record_counter_metrics(obs::MetricsRegistry& reg,
                            const EngineCounters& c, const obs::Labels& labels);

/// Flattens EngineCounters into (name, value) pairs for the profiler's
/// report — one entry per struct field, in declaration order, so a profile's
/// counters section is complete by construction. Completeness (every field
/// of the struct appears exactly once, consistent with add()) is enforced by
/// tests/engines/engine_counters_test.cpp; a new counter that bypasses this
/// list fails that test.
std::vector<std::pair<std::string, double>> counter_profile_metrics(
    const EngineCounters& c);

}  // namespace daop::engines
