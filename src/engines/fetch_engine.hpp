// GPU-centric baselines: experts always execute on the GPU; missing experts
// are fetched over PCIe. One parameterized engine covers the family the
// paper compares against, differing only in caching/prefetch policy:
//
//   MoE-OnDemand        fetch on miss, LRU cache, fetch/compute overlap
//   DeepSpeed-MII       fetch on miss, NO expert cache management, fully
//                       synchronous transfers (the library has no expert
//                       offloading mechanism; §V-C)
//   Mixtral-Offloading  LRU cache + speculative prefetch (reuse heuristic) +
//                       mixed quantization (≈half-size expert transfers)
//   Pre-gated MoE       LRU cache + predictive prefetch of the next layer's
//                       experts (gate-ahead), fetch on mispredict
#pragma once

#include "engines/engine.hpp"

namespace daop::engines {

struct FetchPolicy {
  std::string name;
  /// Keep fetched experts resident (LRU eviction). When false every miss
  /// re-streams the expert and placement never changes.
  bool reuse_cache = true;
  /// Pipeline weight transfers with GPU compute. When false the GPU blocks
  /// for each transfer (synchronous cudaMemcpy style).
  bool overlap_fetch = true;
  /// Prefetch (predicted) next-layer experts during the current layer.
  bool prefetch_next_layer = false;
  /// Prefetch target: true = gate-ahead predictions from the trace
  /// (Pre-gated MoE); false = assume the next layer reuses the current
  /// layer's expert ids (speculative reuse heuristic).
  bool prefetch_uses_prediction = false;
  /// Prefetch target override: use the SEQUENCE-LEVEL activation pattern
  /// observed during prefill (top-k experts of the next layer by prefill
  /// token counts) — MoE-Infinity's activation-aware prefetching.
  bool prefetch_uses_sequence_pattern = false;
  /// Fraction of fp16 expert bytes actually transferred (mixed
  /// quantization in Mixtral-Offloading ≈ 0.5).
  double weight_bytes_factor = 1.0;
  /// Start with NO experts resident on the GPU: DeepSpeed-MII lacks an
  /// expert offloading/caching mechanism (§V-C), so every expert streams
  /// from host memory on every use.
  bool ignore_initial_cache = false;
};

class FetchBasedEngine : public Engine {
 public:
  FetchBasedEngine(const model::OpCosts& costs, FetchPolicy policy);

  std::string name() const override { return policy_.name; }

  std::unique_ptr<SequenceSession> open_session(
      const data::SequenceTrace& trace, const cache::Placement& initial,
      const SessionEnv& env) override;

 private:
  FetchPolicy policy_;
};

std::unique_ptr<Engine> make_moe_ondemand(const model::OpCosts& costs);
std::unique_ptr<Engine> make_deepspeed_mii(const model::OpCosts& costs);
std::unique_ptr<Engine> make_mixtral_offloading(const model::OpCosts& costs);
std::unique_ptr<Engine> make_pregated_moe(const model::OpCosts& costs);
/// EdgeMoE (Yi et al.): expert-wise ~4-bit quantization + predictive
/// compute-I/O preloading pipeline.
std::unique_ptr<Engine> make_edgemoe(const model::OpCosts& costs);
/// MoE-Infinity (Xue et al.): activation-aware prefetching driven by
/// sequence-level expert activation patterns.
std::unique_ptr<Engine> make_moe_infinity(const model::OpCosts& costs);

}  // namespace daop::engines
