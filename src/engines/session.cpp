#include "engines/session.hpp"

#include <algorithm>

#include "cache/arbiter.hpp"
#include "common/check.hpp"
#include "engines/run_metrics.hpp"
#include "recovery/reconcile.hpp"

namespace daop::engines {

std::string SpanName::str() const {
  std::string s(prefix);
  if (a >= 0) s += std::to_string(a);
  if (b >= 0) {
    s += mid;
    s += std::to_string(b);
  }
  return s;
}

namespace {
// Thread-local free list of session buffers. Sized for the deepest
// plausible nesting of live sessions per worker (a continuous-batching
// scheduler holds max_concurrent sessions open at once).
thread_local std::vector<std::unique_ptr<SessionBuffers>> t_buffer_pool;
}  // namespace

std::unique_ptr<SessionBuffers> SessionBuffers::acquire() {
  if (t_buffer_pool.empty()) return std::make_unique<SessionBuffers>();
  std::unique_ptr<SessionBuffers> b = std::move(t_buffer_pool.back());
  t_buffer_pool.pop_back();
  return b;
}

void SessionBuffers::release(std::unique_ptr<SessionBuffers> b) {
  if (b == nullptr) return;
  b->step_windows.clear();
  b->expert_execs.clear();
  b->step_pins.clear();
  if (t_buffer_pool.size() < 32) t_buffer_pool.push_back(std::move(b));
}

CpuExpertTimes cpu_expert_roundtrip(sim::Timeline& tl,
                                    const model::OpCosts& costs, double start,
                                    int n_tokens, double exec_cost,
                                    EngineCounters& counters,
                                    const CpuExpertTags& tags) {
  CpuExpertTimes t;
  const double out = tl.schedule(sim::Res::PcieD2H, start,
                                 costs.activations_d2h(n_tokens),
                                 tags.acts_out);
  t.acts_out_start = tl.last_start();
  t.cpu_end = tl.schedule(sim::Res::CpuPool, out, exec_cost, tags.exec);
  t.cpu_start = tl.last_start();
  ++counters.cpu_expert_execs;
  t.result_arrival = tl.schedule(sim::Res::PcieH2D, t.cpu_end,
                                 costs.activations_h2d(n_tokens),
                                 tags.acts_back);
  return t;
}

SequenceSession::SequenceSession(std::string engine_name,
                                 const model::OpCosts& costs,
                                 const data::SequenceTrace& trace,
                                 const SessionEnv& env, sim::FaultModel* fault,
                                 obs::SpanTracer* tracer,
                                 obs::Profiler* profiler)
    : costs_(costs),
      name_(std::move(engine_name)),
      trace_(trace),
      owned_tl_(env.timeline != nullptr ? nullptr
                                        : std::make_unique<sim::Timeline>()),
      tl_(env.timeline != nullptr ? env.timeline : owned_tl_.get()),
      start_time_(env.start_time),
      request_id_(env.request_id),
      arbiter_(env.arbiter),
      cache_(env.cache),
      shared_(env.shared),
      fault_(fault),
      tracer_(tracer),
      profiler_(profiler),
      bufs_(SessionBuffers::acquire()) {
  DAOP_CHECK_GE(start_time_, 0.0);
  tl_->set_fault_model(fault_);
  stall0_ = tl_->hazard_stall_s();
  ready_ = start_time_;
  // Attribution needs the timeline's interval record. Turning recording on
  // is the profiler's only touch on the run and never changes a scheduling
  // decision (timing-neutrality is locked down by obs_determinism_test).
  if (profiling()) tl_->set_record_intervals(true);
  if (env.degrade_no_speculation || env.degrade_no_migrations) {
    ++counters_.degraded_sessions;
  }
  replay_tokens_ = env.failover_replay_tokens;
  DAOP_CHECK_GE(replay_tokens_, 0);
  // Register this sequence's prefill routing as its reuse signature; the
  // dynamic cache aggregates demand across all live sessions.
  if (cache_ != nullptr) cache_->note_session_open(request_id_, trace_);
  if (replay_tokens_ > 0 && tracing()) {
    tinstant(tracks::kToken,
             "failover replay (re-running prefill, " +
                 std::to_string(replay_tokens_) + " tokens lost)",
             start_time_);
  }
}

SequenceSession::~SequenceSession() {
  // RAII pin guard: a session destroyed without close() — the cluster
  // crash-failover path tears down in-flight sessions of a dead node this
  // way — must not leak its arbiter pins, or the shared cache would stay
  // frozen for every surviving session. Normal close()/abandon() already
  // released them (unpin_session is idempotent per session).
  if (phase_ != Phase::kClosed && arbiter_ != nullptr) {
    arbiter_->unpin_session(request_id_);
  }
  // Same guard for the dynamic cache: a torn-down session's reuse signature
  // must stop contributing to aggregate demand (idempotent).
  if (phase_ != Phase::kClosed && cache_ != nullptr) {
    cache_->note_session_close(request_id_);
  }
  SessionBuffers::release(std::move(bufs_));
}

void SequenceSession::prefill() {
  DAOP_CHECK_MSG(phase_ == Phase::kOpened,
                 "prefill() must be called exactly once, before decode");
  run_prefill();
  DAOP_CHECK_GE(prefill_end_, start_time_);
  DAOP_CHECK_GE(ready_, prefill_end_);
  phase_ = Phase::kDecoding;
  if (tracing()) {
    tspan(tracks::kToken, "prefill", start_time_, prefill_end_);
  }
}

bool SequenceSession::decode_step() {
  DAOP_CHECK_MSG(phase_ == Phase::kDecoding,
                 (phase_ == Phase::kOpened ? "call prefill() first"
                                           : "session is closed"));
  DAOP_CHECK_MSG(!parked_, "decode_step() on a parked session");
  if (next_token_ >= trace_.gen_len) return false;
  // The previous token is done computing by now; its experts stop being
  // this session's active working set and become fair eviction candidates.
  release_step_pins();
  const int t = next_token_;
  const double token_start = ready_;
  run_decode_token(t);
  if (profiling()) bufs_->step_windows.emplace_back(token_start, ready_);
  if (tracing()) {
    tspan(tracks::kToken, "token " + std::to_string(t), token_start, ready_);
  }
  post_token(t);
  maybe_cache_realloc(t);
  ++next_token_;
  return true;
}

void SequenceSession::maybe_cache_realloc(int t) {
  if (cache_ == nullptr || arbiter_ == nullptr) return;
  const cache::ExpertCacheOptions& opt = cache_->options();
  if ((t + 1) % opt.realloc_interval != 0) return;
  const std::vector<cache::PlannedSwap> plan =
      cache_->plan(arbiter_->placement(), arbiter_, request_id_);
  for (const cache::PlannedSwap& s : plan) {
    // Re-check at execution time: another session may have pinned the
    // victim since planning. Pinned working sets are inviolable — record a
    // refusal naming the contending sessions instead of evicting.
    if (arbiter_->pinned_by_other(s.layer, s.expert_out, request_id_)) {
      ++counters_.pin_refusals;
      cache_->record_refusal(
          s, request_id_, ready_,
          arbiter_->pinning_sessions(s.layer, s.expert_out));
      continue;
    }
    // The swap is an ordinary migration: priced by the cost model, exposed
    // to the hazard plane, aborted by the same retry/deadline discipline as
    // DAOP's own reallocations. It overlaps decode — the weight-ready gate
    // (not the frontier) makes later tokens wait for the arriving expert.
    const MigrationOutcome m = migrate_with_retry(
        ready_, costs_.expert_migration(), "cache swap-in", "cache swap retry",
        SpanName{"cache swap-in L", " e", s.layer, s.expert_in},
        opt.max_migration_retries, opt.migration_deadline_factor,
        /*abort_when_exhausted=*/true);
    if (m.aborted) {
      ++counters_.migration_aborts;
      cache_->record_abort(s, request_id_, m.done);
      continue;
    }
    // Audit the victim's foreign pin count into the ledger (invariantly 0 —
    // the pre-check above and try_swap both refuse pinned victims).
    int victim_other_pins = 0;
    for (const long long holder :
         arbiter_->pinning_sessions(s.layer, s.expert_out)) {
      if (holder != request_id_) ++victim_other_pins;
    }
    if (!arbiter_->try_swap(s.layer, s.expert_in, s.expert_out,
                            request_id_)) {
      ++counters_.pin_refusals;
      cache_->record_refusal(
          s, request_id_, m.done,
          arbiter_->pinning_sessions(s.layer, s.expert_out));
      continue;
    }
    publish_weight_ready(s.layer, s.expert_in, m.done);
    cache_->commit(s, request_id_, m.done, victim_other_pins,
                   arbiter_->placement());
    ++counters_.decode_swaps;
  }
}

void SequenceSession::park(double now) {
  DAOP_CHECK_MSG(phase_ == Phase::kDecoding, "park() outside decode");
  DAOP_CHECK_MSG(!parked_, "park() on an already-parked session");
  DAOP_CHECK_GE(now, 0.0);
  // The last scheduled step completes regardless (work already on the
  // timeline cannot be unscheduled), but its experts stop being this
  // session's active working set: drop the pins so the preempting session's
  // migrations are not refused against a parked victim.
  release_step_pins();
  parked_ = true;
  ++counters_.preemptions;
  if (tracing()) tinstant(tracks::kToken, "preempted (parked)", now);
}

void SequenceSession::resume(double now) {
  DAOP_CHECK_MSG(parked_, "resume() on a session that is not parked");
  parked_ = false;
  // Decode continues once the slot is ours again AND the session's own
  // frontier has passed — whichever is later.
  ready_ = std::max(ready_, now);
  ++counters_.preempt_resumes;
  if (tracing()) tinstant(tracks::kToken, "resumed", ready_);
}

void SequenceSession::abandon(double now) {
  DAOP_CHECK_MSG(phase_ == Phase::kDecoding,
                 (phase_ == Phase::kOpened ? "abandon() before prefill()"
                                           : "session already closed"));
  DAOP_CHECK_GE(now, 0.0);
  phase_ = Phase::kClosed;
  parked_ = false;
  if (arbiter_ != nullptr) arbiter_->unpin_session(request_id_);
  if (cache_ != nullptr) cache_->note_session_close(request_id_);
  if (tracing()) tinstant(tracks::kToken, "cancelled (hedge lost)", now);
}

RunResult SequenceSession::close() {
  DAOP_CHECK_MSG(phase_ == Phase::kDecoding,
                 (phase_ == Phase::kOpened ? "close() before prefill()"
                                           : "session already closed"));
  DAOP_CHECK_MSG(!parked_, "close() on a parked session (resume it first)");
  phase_ = Phase::kClosed;
  if (arbiter_ != nullptr) arbiter_->unpin_session(request_id_);
  if (cache_ != nullptr) cache_->note_session_close(request_id_);
  const double decode_end = ready_;
  DAOP_CHECK_GE(decode_end, prefill_end_);

  RunResult r;
  r.engine = name_;
  r.prompt_tokens = trace_.prompt_len;
  r.generated_tokens = next_token_;
  r.prefill_s = prefill_end_ - start_time_;
  r.decode_s = decode_end - prefill_end_;
  r.total_s = decode_end - start_time_;
  if (r.total_s > 0.0) r.tokens_per_s = r.generated_tokens / r.total_s;
  if (r.decode_s > 0.0) {
    r.decode_tokens_per_s = r.generated_tokens / r.decode_s;
  }
  if (!shared_) {
    // Speculative work (prefetches, pre-calculations) may still be draining
    // when the last token is emitted; it burned energy regardless.
    r.energy = sim::compute_energy(costs_.cost_model().platform(), *tl_,
                                   std::max(decode_end, tl_->span()));
    if (r.energy.total_j > 0.0) {
      r.tokens_per_kj = r.generated_tokens / (r.energy.total_j / 1000.0);
    }
  }
  r.counters = counters_;
  // Hazard stall time is accumulated by the timeline (the single place all
  // engines schedule through). On a private timeline, subtracting the
  // session's starting baseline keeps the counter per-run; on a shared
  // timeline stalls are not attributable to one session, so the scheduler
  // accounts them once for the whole run.
  r.counters.hazard_stall_s =
      shared_ ? 0.0 : tl_->hazard_stall_s() - stall0_;
  if (profiling()) {
    profiler_->record_run(name_, request_id_, tl_->intervals(),
                          tl_->hazard_intervals(), start_time_, prefill_end_,
                          decode_end, bufs_->step_windows, bufs_->expert_execs,
                          counter_profile_metrics(r.counters));
  }
  return r;
}

namespace {

// `daop-ckpt/1` payload revision. Bump when the field layout below changes;
// unseal() already guards the outer frame version.
constexpr std::uint32_t kPayloadVersion = 1;

// Tripwire: a counter added to EngineCounters must also be added to the
// fixed serialization order below (and to counter_profile_metrics, which
// tests/engines/engine_counters_test.cpp enforces). 19 long long + 1 double,
// no padding.
static_assert(sizeof(EngineCounters) ==
                  19 * sizeof(long long) + sizeof(double),
              "EngineCounters changed: update snapshot (de)serialization");

void write_counters(recovery::ByteWriter& w, const EngineCounters& c) {
  w.i64(c.expert_migrations);
  w.i64(c.gpu_expert_execs);
  w.i64(c.cpu_expert_execs);
  w.i64(c.cache_hits);
  w.i64(c.cache_misses);
  w.i64(c.prefetch_hits);
  w.i64(c.predictions);
  w.i64(c.mispredictions);
  w.i64(c.degradations);
  w.i64(c.prefill_swaps);
  w.i64(c.decode_swaps);
  w.i64(c.skipped_experts);
  w.i64(c.migration_retries);
  w.i64(c.migration_aborts);
  w.i64(c.stale_precalcs);
  w.i64(c.pin_refusals);
  w.i64(c.preemptions);
  w.i64(c.preempt_resumes);
  w.i64(c.degraded_sessions);
  w.f64(c.hazard_stall_s);
}

EngineCounters read_counters(recovery::ByteReader& r) {
  EngineCounters c;
  c.expert_migrations = r.i64();
  c.gpu_expert_execs = r.i64();
  c.cpu_expert_execs = r.i64();
  c.cache_hits = r.i64();
  c.cache_misses = r.i64();
  c.prefetch_hits = r.i64();
  c.predictions = r.i64();
  c.mispredictions = r.i64();
  c.degradations = r.i64();
  c.prefill_swaps = r.i64();
  c.decode_swaps = r.i64();
  c.skipped_experts = r.i64();
  c.migration_retries = r.i64();
  c.migration_aborts = r.i64();
  c.stale_precalcs = r.i64();
  c.pin_refusals = r.i64();
  c.preemptions = r.i64();
  c.preempt_resumes = r.i64();
  c.degraded_sessions = r.i64();
  c.hazard_stall_s = r.f64();
  return c;
}

void write_rng_state(recovery::ByteWriter& w, const Rng::State& s) {
  for (const std::uint64_t v : s.s) w.u64(v);
  w.u64(s.seed);
  w.u8(s.has_cached_normal ? 1 : 0);
  w.f64(s.cached_normal);
}

Rng::State read_rng_state(recovery::ByteReader& r) {
  Rng::State s;
  for (std::uint64_t& v : s.s) v = r.u64();
  s.seed = r.u64();
  s.has_cached_normal = r.u8() != 0;
  s.cached_normal = r.f64();
  return s;
}

}  // namespace

std::vector<std::uint8_t> SequenceSession::checkpoint() const {
  DAOP_CHECK_MSG(phase_ == Phase::kDecoding,
                 "checkpoint() is only valid mid-decode");
  DAOP_CHECK_MSG(!parked_, "checkpoint() on a parked session");
  recovery::ByteWriter policy;
  if (!save_policy_state(policy)) return {};

  recovery::ByteWriter w;
  w.u32(kPayloadVersion);
  w.str(name_);
  w.i64(request_id_);
  w.i32(trace_.prompt_len);
  w.i32(trace_.gen_len);
  w.i32(next_token_);
  w.i32(replay_tokens_);
  w.f64(start_time_);
  w.f64(prefill_end_);
  w.f64(ready_);
  // Hazard stalls this session accumulated so far, so close() after a
  // restore reports pre-crash + post-restore stalls like an uninterrupted
  // run would.
  w.f64(tl_->hazard_stall_s() - stall0_);
  write_counters(w, counters_);
  w.u32(static_cast<std::uint32_t>(bufs_->step_pins.size()));
  for (const auto& [layer, expert] : bufs_->step_pins) {
    w.i32(layer);
    w.i32(expert);
  }
  const cache::Placement* placement = effective_placement();
  w.u8(placement != nullptr ? 1 : 0);
  if (placement != nullptr) {
    recovery::write_placement_image(w,
                                    recovery::capture_placement(*placement));
  }
  w.u8(fault_ != nullptr ? 1 : 0);
  if (fault_ != nullptr) {
    const sim::FaultModel::StreamCursor cursor = fault_->stream_cursor();
    write_rng_state(w, cursor.transfer);
    write_rng_state(w, cursor.load);
  }
  w.u32(static_cast<std::uint32_t>(policy.data().size()));
  w.bytes(policy.data().data(), policy.data().size());
  return recovery::seal(w.data());
}

bool SequenceSession::restore(const std::vector<std::uint8_t>& sealed,
                              const RestoreOptions& opts) {
  DAOP_CHECK_MSG(phase_ == Phase::kOpened,
                 "restore() replaces prefill() on a fresh session");
  const std::optional<std::vector<std::uint8_t>> payload =
      recovery::unseal(sealed);
  if (!payload.has_value()) return false;
  recovery::ByteReader r(payload->data(), payload->size());
  if (r.u32() != kPayloadVersion) return false;

  // Decode everything into locals first: state is only mutated once the
  // whole snapshot validated, so a rejected restore leaves the session
  // usable for the prefill-replay fallback.
  const std::string engine = r.str();
  const long long request_id = r.i64();
  const int prompt_len = r.i32();
  const int gen_len = r.i32();
  const int step = r.i32();
  const int replay = r.i32();
  const double start_time = r.f64();
  const double prefill_end = r.f64();
  const double ready = r.f64();
  const double stall_so_far = r.f64();
  const EngineCounters counters = read_counters(r);
  const std::uint32_t n_pins = r.u32();
  if (!r.ok() || n_pins > r.remaining() / 8) return false;
  std::vector<std::pair<int, int>> pins;
  pins.reserve(n_pins);
  for (std::uint32_t i = 0; i < n_pins; ++i) {
    const int layer = r.i32();
    const int expert = r.i32();
    pins.emplace_back(layer, expert);
  }
  const bool has_placement = r.u8() != 0;
  recovery::PlacementImage image;
  if (has_placement && !recovery::read_placement_image(r, &image)) {
    return false;
  }
  const bool has_rng = r.u8() != 0;
  sim::FaultModel::StreamCursor cursor;
  if (has_rng) {
    cursor.transfer = read_rng_state(r);
    cursor.load = read_rng_state(r);
  }
  const std::uint32_t policy_len = r.u32();
  if (!r.ok() || policy_len != r.remaining()) return false;

  if (engine != name_ || request_id != request_id_ ||
      prompt_len != trace_.prompt_len || gen_len != trace_.gen_len) {
    return false;
  }
  if (step < 0 || step > gen_len || replay < 0 || start_time < 0.0 ||
      prefill_end < start_time || ready < prefill_end) {
    return false;
  }

  const double shift = std::max(0.0, opts.resume_floor - ready);
  recovery::ByteReader pr(payload->data() + (payload->size() - policy_len),
                          policy_len);
  if (!load_policy_state(pr, shift) || !pr.ok()) return false;
  if (has_placement && arbiter_ == nullptr) {
    cache::Placement* mine = private_placement();
    if (mine != nullptr && !recovery::apply_placement_image(image, *mine)) {
      return false;
    }
  }

  // Point of no return: apply the validated base state.
  counters_ = counters;
  next_token_ = step;
  replay_tokens_ = replay;
  start_time_ = start_time + shift;
  prefill_end_ = prefill_end + shift;
  ready_ = ready + shift;
  stall0_ = tl_->hazard_stall_s() - stall_so_far;
  for (const auto& [layer, expert] : pins) pin_shared(layer, expert);
  if (opts.apply_rng_cursor && fault_ != nullptr && has_rng) {
    fault_->set_stream_cursor(cursor);
  }
  phase_ = Phase::kDecoding;
  parked_ = false;
  if (tracing()) {
    tinstant(tracks::kToken,
             "warm restart (resumed at token " + std::to_string(step) + ")",
             ready_);
  }
  return true;
}

std::optional<SessionSnapshotInfo> SequenceSession::peek(
    const std::vector<std::uint8_t>& sealed) {
  const std::optional<std::vector<std::uint8_t>> payload =
      recovery::unseal(sealed);
  if (!payload.has_value()) return std::nullopt;
  recovery::ByteReader r(payload->data(), payload->size());
  if (r.u32() != kPayloadVersion) return std::nullopt;
  SessionSnapshotInfo info;
  info.engine = r.str();
  info.request_id = r.i64();
  info.prompt_len = r.i32();
  info.gen_len = r.i32();
  info.step = r.i32();
  r.i32();  // replay tokens
  r.f64();  // start time
  r.f64();  // prefill end
  info.ready = r.f64();
  r.f64();  // stalls so far
  read_counters(r);
  const std::uint32_t n_pins = r.u32();
  if (!r.ok() || n_pins > r.remaining() / 8) return std::nullopt;
  for (std::uint32_t i = 0; i < n_pins; ++i) {
    r.i32();
    r.i32();
  }
  info.has_placement = r.u8() != 0;
  if (info.has_placement && !recovery::read_placement_image(r, &info.placement))
    return std::nullopt;
  if (!r.ok()) return std::nullopt;
  return info;
}

SequenceSession::MigrationOutcome SequenceSession::migrate_with_retry(
    double issue, double cost, const char* tag, const char* retry_tag,
    const SpanName& span_name, int max_retries, double deadline_factor,
    bool abort_when_exhausted) {
  MigrationOutcome out;
  out.done = tl().schedule(sim::Res::PcieH2D, issue, cost, tag);
  out.start = tl().last_start();
  ++counters_.expert_migrations;
  // PCIe queueing counts against the deadline (measured from `issue`), so a
  // congested link aborts swaps instead of stalling decode.
  const double deadline =
      deadline_factor > 0.0 ? issue + deadline_factor * cost : 0.0;
  if (fault_ != nullptr && fault_->enabled()) {
    double backoff = fault_->scenario().retry_backoff_s;
    int attempts = 0;
    for (;;) {
      if (!abort_when_exhausted && attempts >= max_retries) break;
      if (!fault_->expert_load_fails()) break;
      if (abort_when_exhausted &&
          (attempts >= max_retries ||
           (deadline > 0.0 && out.done > deadline))) {
        if (tracing()) {
          out.span = tspan(tracks::kMigration, span_name.str() + " (aborted)",
                           out.start, out.done);
        }
        out.aborted = true;
        return out;
      }
      ++attempts;
      ++counters_.migration_retries;
      out.done = tl().schedule(sim::Res::PcieH2D, out.done + backoff, cost,
                               retry_tag);
      ++counters_.expert_migrations;
      backoff *= 2.0;
    }
  }
  if (abort_when_exhausted && deadline > 0.0 && out.done > deadline) {
    if (tracing()) {
      out.span = tspan(tracks::kMigration, span_name.str() + " (aborted)",
                       out.start, out.done);
    }
    out.aborted = true;
    return out;
  }
  if (tracing()) {
    out.span = tspan(tracks::kMigration, span_name.str(), out.start, out.done);
  }
  return out;
}

double SequenceSession::cpu_expert(double start, int n_tokens,
                                   double exec_cost, int layer, int expert) {
  const CpuExpertTimes t = cpu_expert_roundtrip(tl(), costs_, start, n_tokens,
                                                exec_cost, counters_);
  if (tracing()) {
    tspan(tracks::kExpertCpu, "CPU expert", t.cpu_start, t.cpu_end);
  }
  if (layer >= 0) {
    note_expert_exec(layer, expert, /*on_gpu=*/false, t.cpu_start, t.cpu_end);
  }
  return t.result_arrival;
}

void SequenceSession::pin_shared(int layer, int expert) {
  if (arbiter_ == nullptr) return;
  arbiter_->pin(layer, expert, request_id_);
  bufs_->step_pins.emplace_back(layer, expert);
}

void SequenceSession::release_step_pins() {
  if (arbiter_ != nullptr) {
    for (const auto& [layer, expert] : bufs_->step_pins) {
      arbiter_->unpin(layer, expert, request_id_);
    }
  }
  bufs_->step_pins.clear();
}

double SequenceSession::shared_weight_gate(int layer, int expert,
                                           double t) const {
  if (arbiter_ == nullptr) return t;
  return std::max(t, arbiter_->weight_ready(layer, expert));
}

void SequenceSession::publish_weight_ready(int layer, int expert, double t) {
  if (arbiter_ != nullptr) arbiter_->set_weight_ready(layer, expert, t);
}

std::uint64_t SequenceSession::tspan(const char* track, std::string name,
                                     double start, double end) {
  if (tracer_ == nullptr) return 0;
  if (request_id_ < 0) {
    return tracer_->span(tracer_->track(track), std::move(name), start, end);
  }
  const obs::RequestScope scope(tracer_, request_id_);
  return tracer_->span(tracer_->track(track), std::move(name), start, end);
}

std::uint64_t SequenceSession::tinstant(const char* track, std::string name,
                                        double t) {
  if (tracer_ == nullptr) return 0;
  if (request_id_ < 0) {
    return tracer_->instant(tracer_->track(track), std::move(name), t);
  }
  const obs::RequestScope scope(tracer_, request_id_);
  return tracer_->instant(tracer_->track(track), std::move(name), t);
}

void SequenceSession::tflow(std::uint64_t from, std::uint64_t to,
                            std::string name) {
  if (tracer_ == nullptr || from == 0 || to == 0) return;
  tracer_->flow(from, to, std::move(name));
}

}  // namespace daop::engines
