// Resumable per-sequence engine sessions.
//
// A SequenceSession is one sequence's scheduling state machine:
//
//   open (engine->open_session) -> prefill() -> decode_step()* -> close()
//
// Engine::run() drives a session to completion in one call — the classic
// single-sequence path — while a serving scheduler can interleave
// decode_step() calls across many open sessions on one shared timeline
// (continuous batching). The base class owns the mechanics every engine
// shares: timeline/fault wiring, migration-with-retry disciplines, the
// CPU-expert round trip, token/prefill span bookkeeping, counters, and the
// RunResult arithmetic. Engine subclasses supply only policy by overriding
// run_prefill() / run_decode_token().
//
// Determinism contract: driving a session to completion through the base
// lifecycle reproduces the pre-session monolithic run() loops bit-for-bit
// (times, energy, counters, trace bytes) — enforced by
// tests/engines/session_determinism_test.cpp against committed goldens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <optional>

#include "cache/expert_cache.hpp"
#include "engines/engine.hpp"
#include "obs/profiler.hpp"
#include "recovery/snapshot.hpp"

namespace daop::cache {
class PlacementArbiter;
}  // namespace daop::cache

namespace daop::engines {

/// Where and how a session runs. Default-constructed: private timeline,
/// t = 0, no request id — exactly Engine::run()'s single-sequence setting.
struct SessionEnv {
  /// Timeline to schedule onto; nullptr gives the session a private one.
  sim::Timeline* timeline = nullptr;
  /// Simulation time the sequence starts at (admission time under a
  /// scheduler). All RunResult times are reported relative to this.
  double start_time = 0.0;
  /// Serving request id stamped onto every span this session records;
  /// -1 leaves the tracer's ambient request scope untouched.
  long long request_id = -1;
  /// Shared-placement arbiter for multi-session serving; nullptr means the
  /// session works on its own private copy of the initial placement.
  cache::PlacementArbiter* arbiter = nullptr;
  /// Dynamic expert cache (cache/expert_cache.hpp). When set, the session
  /// feeds every expert execution into the cache's demand statistics and
  /// runs a cache reallocation scan every `realloc_interval` decode tokens,
  /// executing planned swaps as ordinary migrations through the arbiter.
  /// nullptr (policy `frozen`) is an exact no-op on every path.
  cache::ExpertCache* cache = nullptr;
  /// True when `timeline` is shared with other sessions. A shared session
  /// reports no per-run energy and no hazard-stall attribution (both are
  /// properties of the whole timeline, accounted once by the scheduler).
  bool shared = false;

  // ---- Degradation directives (overload-control plane, eval/overload.hpp).
  // Set by the serving scheduler when its DegradationController has stepped
  // down the ladder; engines honor them at open_session time by disabling
  // the corresponding policy features for this session only. Both default
  // off — a default SessionEnv opens a full-policy session.
  /// Disable speculative work: DAOP pre-calculation, fetch-engine prefetch.
  bool degrade_no_speculation = false;
  /// Disable placement migrations beyond demand fetches: Algorithm-1
  /// prefill swaps and decode re-allocation.
  bool degrade_no_migrations = false;

  /// Failover-replay accounting (cluster plane, src/cluster): tokens an
  /// earlier attempt of this request generated on a crashed node before it
  /// died. This session restarts the request from its recorded routing
  /// trace (prefill re-runs, every token is regenerated); the count is
  /// purely observational — exposed via failover_replay_tokens() and traced
  /// as a "failover replay" instant — and never a scheduling input, so a
  /// zero value (the default) is byte-identical to pre-cluster behaviour.
  int failover_replay_tokens = 0;
};

/// Timing of one CPU-resident expert round trip (activations D2H, CPU
/// execution, result H2D).
struct CpuExpertTimes {
  double acts_out_start = 0.0;  ///< activations D2H transfer start
  double cpu_start = 0.0;       ///< CPU execution start
  double cpu_end = 0.0;         ///< CPU execution end
  double result_arrival = 0.0;  ///< result available on the GPU
};

/// Timeline interval tags for a CPU-expert round trip. The defaults are the
/// synchronous-execution tags; DAOP's speculative pre-calculation uses its
/// own so exported traces distinguish the two kinds of CPU work.
struct CpuExpertTags {
  const char* acts_out = "acts to CPU";
  const char* exec = "CPU expert";
  const char* acts_back = "acts to GPU";
};

/// Lazily formatted span name of the shape "<prefix><a><mid><b>" (numeric
/// parts skipped while negative). Untraced sessions pass these through
/// migrate_with_retry without ever materializing a std::string — span-name
/// formatting only happens when a tracer is attached.
struct SpanName {
  const char* prefix = "";
  const char* mid = "";
  int a = -1;
  int b = -1;
  std::string str() const;
};

/// Reusable per-session bookkeeping buffers: profiler decode-step windows,
/// expert-execution heatmap entries, and the working-set pin list. Sessions
/// acquire a pooled instance on open and return it (cleared, capacity kept)
/// on destruction, so a sweep running thousands of back-to-back sequences
/// reuses the same heap blocks instead of reallocating per sequence. The
/// pool is thread_local: lock-free, and each parallel sweep worker recycles
/// its own buffers.
struct SessionBuffers {
  std::vector<std::pair<double, double>> step_windows;
  std::vector<obs::ExpertExec> expert_execs;
  std::vector<std::pair<int, int>> step_pins;

  static std::unique_ptr<SessionBuffers> acquire();
  static void release(std::unique_ptr<SessionBuffers> b);
};

/// Ships `n_tokens` activations to the CPU, executes an expert over them
/// (`exec_cost` seconds), and ships the result back; bumps
/// `counters.cpu_expert_execs`. Shared by the per-sequence sessions and the
/// batched engines so every CPU-expert round trip prices identically.
CpuExpertTimes cpu_expert_roundtrip(sim::Timeline& tl,
                                    const model::OpCosts& costs, double start,
                                    int n_tokens, double exec_cost,
                                    EngineCounters& counters,
                                    const CpuExpertTags& tags = {});

/// How a snapshot is applied to a freshly opened session (see
/// SequenceSession::restore).
struct RestoreOptions {
  /// Earliest time the restored session may resume. The snapshot's times
  /// are shifted forward by max(0, resume_floor - snapshot.ready); a floor
  /// at or before the snapshot frontier restores with zero shift, which is
  /// the bit-identity case.
  double resume_floor = 0.0;
  /// Restore the fault model's expert-load/transfer stream cursor saved in
  /// the snapshot. Only meaningful when the restoring session's FaultModel
  /// is fresh and private (same scenario + seed as the snapshotting run);
  /// a cluster peer keeps its own mid-run streams and leaves this false.
  bool apply_rng_cursor = false;
};

/// Header fields of a sealed snapshot, decodable without a session (the
/// cluster router uses this to reconcile placement and account restored
/// tokens before opening the session).
struct SessionSnapshotInfo {
  std::string engine;
  long long request_id = -1;
  int prompt_len = 0;
  int gen_len = 0;
  int step = 0;        ///< decode tokens completed at snapshot time
  double ready = 0.0;  ///< snapshot-time scheduling frontier
  bool has_placement = false;
  recovery::PlacementImage placement;
};

class SequenceSession {
 public:
  SequenceSession(std::string engine_name, const model::OpCosts& costs,
                  const data::SequenceTrace& trace, const SessionEnv& env,
                  sim::FaultModel* fault, obs::SpanTracer* tracer,
                  obs::Profiler* profiler = nullptr);
  virtual ~SequenceSession();

  SequenceSession(const SequenceSession&) = delete;
  SequenceSession& operator=(const SequenceSession&) = delete;

  /// Schedules the prompt. Must be called exactly once, before any
  /// decode_step(). On return ready_time() is when decode may start.
  void prefill();

  /// Schedules one decode token. Returns false (without scheduling) once
  /// the sequence has generated all of its tokens. Must not be called while
  /// the session is parked.
  bool decode_step();

  /// Finalizes and returns the run's result. The session cannot be used
  /// afterwards.
  RunResult close();

  /// Cancels a decoding session without recording a result: arbiter pins
  /// are released and the session is closed for good. Work its steps
  /// already placed on the timeline keeps its cost (scheduled ops cannot be
  /// unscheduled) — `now` only labels the cancellation instant in traces.
  /// Used by the cluster router to cancel the losing copy of a hedged
  /// dispatch; close() and abandon() are mutually exclusive.
  void abandon(double now);

  /// Preempts the session mid-decode at time `now` (>= nothing in
  /// particular — the scheduler parks at the session's own frontier): the
  /// previous step's arbiter pins are released so the shared cache
  /// unfreezes, and decode_step() is forbidden until resume(). Only valid
  /// while decoding; a parked session holds no pins.
  void park(double now);
  /// Resumes a parked session: decode may continue no earlier than `now`
  /// (the frontier is pushed to max(ready_time, now) — the preempting
  /// session's work occupied the slot in between).
  void resume(double now);
  bool parked() const { return parked_; }

  /// Serializes everything needed to resume this session mid-decode into a
  /// sealed `daop-ckpt/1` blob: lifecycle state, counters, working-set
  /// pins, effective placement, fault-stream cursor, and the engine's
  /// policy state. Only valid while decoding and not parked. Returns an
  /// empty vector when the engine does not support checkpointing (the
  /// caller falls back to prefill replay).
  std::vector<std::uint8_t> checkpoint() const;

  /// Applies a sealed snapshot to a freshly opened session (before
  /// prefill()), replacing the prefill+decode prefix the snapshot already
  /// paid for. Validates the frame checksum and every decoded field before
  /// mutating any state: on rejection it returns false and the session
  /// remains usable for the ordinary prefill() replay path. On success the
  /// session is decoding, its frontier is at the (possibly shifted)
  /// snapshot frontier, and the snapshot's working-set pins are re-pinned
  /// on this session's arbiter.
  bool restore(const std::vector<std::uint8_t>& sealed,
               const RestoreOptions& opts);

  /// Decodes a snapshot's header without a session. nullopt when the blob
  /// fails validation.
  static std::optional<SessionSnapshotInfo> peek(
      const std::vector<std::uint8_t>& sealed);

  const std::string& engine_name() const { return name_; }
  const data::SequenceTrace& trace() const { return trace_; }
  long long request_id() const { return request_id_; }
  /// Tokens generated so far.
  int tokens_generated() const { return next_token_; }
  /// True once every decode token has been scheduled.
  bool decode_done() const { return next_token_ >= trace_.gen_len; }
  /// Time the session's next step would start at: start_time before
  /// prefill, the running decode frontier afterwards.
  double ready_time() const { return ready_; }
  double prefill_end() const { return prefill_end_; }
  double start_time() const { return start_time_; }
  const EngineCounters& counters() const { return counters_; }
  /// Tokens a crashed predecessor of this request generated and lost (from
  /// SessionEnv::failover_replay_tokens; 0 outside the failover path).
  int failover_replay_tokens() const { return replay_tokens_; }

 protected:
  /// Schedules the whole prompt. Must set prefill_end_ (end of prompt
  /// compute) and ready_ (earliest decode start, >= prefill_end_ when
  /// weights are still in flight).
  virtual void run_prefill() = 0;
  /// Schedules decode token `t` (0-based), advancing ready_.
  virtual void run_decode_token(int t) = 0;
  /// Runs after token `t`'s span is recorded (e.g. DAOP's periodic decode
  /// re-allocation, whose migrations happen between tokens).
  virtual void post_token(int t) { (void)t; }

  // ---- Checkpoint hooks. Engines that support warm restart serialize
  // their policy state (windows, readiness gates, LRU clocks — everything
  // run_decode_token consults) through these; the default "unsupported"
  // makes checkpoint() return empty and the caller fall back to replay.
  /// Appends the engine's policy state to the snapshot payload. Returns
  /// false when this engine cannot checkpoint.
  virtual bool save_policy_state(recovery::ByteWriter& w) const {
    (void)w;
    return false;
  }
  /// Restores policy state written by save_policy_state. `shift` is the
  /// time-rebase applied to the snapshot (0 in the bit-identity case);
  /// engines must shift their own absolute times by it while preserving
  /// sentinel values. Runs after the base fields are applied; returning
  /// false rejects the restore.
  virtual bool load_policy_state(recovery::ByteReader& r, double shift) {
    (void)r;
    (void)shift;
    return false;
  }
  /// The placement this session is decoding against (private copy or the
  /// arbiter's shared one); null when the engine has no placement state.
  /// Captured into snapshots so a surviving node can rebuild residency.
  virtual const cache::Placement* effective_placement() const {
    return nullptr;
  }
  /// The session-private placement copy to overwrite on restore; null when
  /// the engine has none. Only consulted when no arbiter is attached — a
  /// shared placement belongs to the device, and the restoring scheduler
  /// reconciles it (recovery::reconcile_placement) before restore().
  virtual cache::Placement* private_placement() { return nullptr; }

  sim::Timeline& tl() { return *tl_; }
  sim::FaultModel* fault() const { return fault_; }
  cache::PlacementArbiter* arbiter() const { return arbiter_; }
  bool shared() const { return shared_; }

  /// One expert-weight migration over PCIe under a retry discipline.
  struct MigrationOutcome {
    double done = 0.0;        ///< weight-arrival time (last attempt's end)
    double start = 0.0;       ///< first attempt's transfer start
    std::uint64_t span = 0;   ///< Migration-track span id (0 untraced)
    bool aborted = false;     ///< abandoned (deadline / retries exhausted)
  };

  /// Schedules the transfer at `issue` and, when a fault model is active,
  /// replays transient expert-load failures with exponential backoff.
  ///
  /// `abort_when_exhausted` selects between the two retry disciplines the
  /// engines use — they consume fault-model randomness in different orders,
  /// and that order is part of each engine's deterministic behavior:
  ///  - true (DAOP): draw the failure first, then abort if the retry budget
  ///    (`max_retries`) is spent or the running finish time exceeds
  ///    `issue + deadline_factor * cost` (deadline_factor 0 = no deadline).
  ///    The Migration span is traced as "`span_name` (aborted)".
  ///  - false (fetch engines): stop drawing once `max_retries` attempts were
  ///    made and assume the final load goes through; never aborts.
  MigrationOutcome migrate_with_retry(double issue, double cost,
                                      const char* tag, const char* retry_tag,
                                      const SpanName& span_name,
                                      int max_retries, double deadline_factor,
                                      bool abort_when_exhausted);

  /// Traced CPU-expert round trip; returns the result-arrival time. When
  /// `layer`/`expert` are given (>= 0) the execution also feeds the
  /// profiler's utilization heatmap.
  double cpu_expert(double start, int n_tokens, double exec_cost,
                    int layer = -1, int expert = -1);

  // ---- Shared-placement conveniences: exact no-ops without an arbiter
  // (the single-sequence path), so private-session behavior is untouched.
  /// Pins (layer, expert) as part of this session's ACTIVE working set: the
  /// experts its current step computes with. Pins are held while other
  /// sessions interleave and released when this session's next step begins
  /// (and unconditionally in close()), so concurrent migrations can never
  /// evict an in-use expert but the shared cache never freezes solid.
  void pin_shared(int layer, int expert);
  /// Latest of `t` and the cross-session weight-arrival gate.
  double shared_weight_gate(int layer, int expert, double t) const;
  /// Publishes a weight-arrival time for other sessions to gate on.
  void publish_weight_ready(int layer, int expert, double t);

  // ---- Tracing: exact no-ops without a tracer; spans carry this
  // session's request id when one was assigned. ----
  bool tracing() const { return tracer_ != nullptr; }
  std::uint64_t tspan(const char* track, std::string name, double start,
                      double end);
  std::uint64_t tinstant(const char* track, std::string name, double t);
  void tflow(std::uint64_t from, std::uint64_t to, std::string name = {});

  // ---- Profiling: exact no-ops without a profiler. Shared-timeline
  // sessions never record per-run profiles (the window belongs to the whole
  // schedule; the serving scheduler profiles it once). ----
  bool profiling() const { return profiler_ != nullptr && !shared_; }
  /// Notes an already-scheduled expert execution for the per-layer ×
  /// per-expert utilization heatmap. Passive: `start`/`end` are times the
  /// schedule already produced.
  void note_expert_exec(int layer, int expert, bool on_gpu, double start,
                        double end) {
    if (cache_ != nullptr) cache_->note_use(layer, expert, request_id_, end);
    if (profiling()) {
      bufs_->expert_execs.push_back({layer, expert, on_gpu, start, end});
    }
  }

  const model::OpCosts& costs_;
  EngineCounters counters_;
  /// Scheduling frontier: when the next layer/token may start.
  double ready_ = 0.0;
  double prefill_end_ = 0.0;

 private:
  enum class Phase { kOpened, kDecoding, kClosed };

  /// Drops the previous step's working-set pins (see pin_shared).
  void release_step_pins();
  /// Runs a dynamic-cache reallocation scan after token `t` when a cache is
  /// attached and `t` lands on its cadence; executes each planned swap as a
  /// migration under the retry discipline, then commits it through the
  /// arbiter (pinned victims become refusals, never evictions).
  void maybe_cache_realloc(int t);

  std::string name_;
  data::SequenceTrace trace_;
  std::unique_ptr<sim::Timeline> owned_tl_;
  sim::Timeline* tl_;
  double start_time_;
  long long request_id_;
  cache::PlacementArbiter* arbiter_;
  cache::ExpertCache* cache_;
  bool shared_;
  sim::FaultModel* fault_;
  obs::SpanTracer* tracer_;
  obs::Profiler* profiler_;
  /// Pooled bookkeeping buffers (decode-step windows and expert executions
  /// for the profiler, current-step pins for release_step_pins). Never
  /// null between construction and destruction.
  std::unique_ptr<SessionBuffers> bufs_;
  double stall0_ = 0.0;
  Phase phase_ = Phase::kOpened;
  bool parked_ = false;
  int next_token_ = 0;
  int replay_tokens_ = 0;
};

}  // namespace daop::engines
