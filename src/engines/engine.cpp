#include "engines/engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::engines {

RunResult Engine::finalize(const std::string& name,
                           const data::SequenceTrace& trace,
                           const sim::Timeline& tl, double prefill_end,
                           double decode_end,
                           const EngineCounters& counters) const {
  DAOP_CHECK_GE(decode_end, prefill_end);
  RunResult r;
  r.engine = name;
  r.prompt_tokens = trace.prompt_len;
  r.generated_tokens = trace.gen_len;
  r.prefill_s = prefill_end;
  r.decode_s = decode_end - prefill_end;
  r.total_s = decode_end;
  if (r.total_s > 0.0) r.tokens_per_s = trace.gen_len / r.total_s;
  if (r.decode_s > 0.0) r.decode_tokens_per_s = trace.gen_len / r.decode_s;
  // Speculative work (prefetches, pre-calculations) may still be draining
  // when the last token is emitted; it burned energy regardless.
  r.energy = sim::compute_energy(costs_.cost_model().platform(), tl,
                                 std::max(decode_end, tl.span()));
  if (r.energy.total_j > 0.0) {
    r.tokens_per_kj = trace.gen_len / (r.energy.total_j / 1000.0);
  }
  r.counters = counters;
  // Hazard stall time is accumulated by the timeline (the single place all
  // engines schedule through), not by engine code.
  r.counters.hazard_stall_s = tl.hazard_stall_s();
  return r;
}

RunResult aggregate_results(const std::string& name,
                            const std::vector<RunResult>& results) {
  DAOP_CHECK(!results.empty());
  RunResult agg;
  agg.engine = name;
  double energy_j = 0.0;
  for (const RunResult& r : results) {
    agg.prompt_tokens += r.prompt_tokens;
    agg.generated_tokens += r.generated_tokens;
    agg.prefill_s += r.prefill_s;
    agg.decode_s += r.decode_s;
    agg.total_s += r.total_s;
    energy_j += r.energy.total_j;
    agg.counters.expert_migrations += r.counters.expert_migrations;
    agg.counters.gpu_expert_execs += r.counters.gpu_expert_execs;
    agg.counters.cpu_expert_execs += r.counters.cpu_expert_execs;
    agg.counters.cache_hits += r.counters.cache_hits;
    agg.counters.cache_misses += r.counters.cache_misses;
    agg.counters.prefetch_hits += r.counters.prefetch_hits;
    agg.counters.predictions += r.counters.predictions;
    agg.counters.mispredictions += r.counters.mispredictions;
    agg.counters.degradations += r.counters.degradations;
    agg.counters.prefill_swaps += r.counters.prefill_swaps;
    agg.counters.decode_swaps += r.counters.decode_swaps;
    agg.counters.skipped_experts += r.counters.skipped_experts;
    agg.counters.migration_retries += r.counters.migration_retries;
    agg.counters.migration_aborts += r.counters.migration_aborts;
    agg.counters.stale_precalcs += r.counters.stale_precalcs;
    agg.counters.hazard_stall_s += r.counters.hazard_stall_s;
  }
  agg.energy.total_j = energy_j;
  if (agg.total_s > 0.0) {
    agg.tokens_per_s = agg.generated_tokens / agg.total_s;
    agg.energy.avg_power_w = energy_j / agg.total_s;
  }
  if (agg.decode_s > 0.0) {
    agg.decode_tokens_per_s = agg.generated_tokens / agg.decode_s;
  }
  if (energy_j > 0.0) {
    agg.tokens_per_kj = agg.generated_tokens / (energy_j / 1000.0);
  }
  return agg;
}

}  // namespace daop::engines
