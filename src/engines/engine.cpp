#include "engines/engine.hpp"

#include "common/check.hpp"
#include "engines/session.hpp"

namespace daop::engines {

void EngineCounters::add(const EngineCounters& o) {
  expert_migrations += o.expert_migrations;
  gpu_expert_execs += o.gpu_expert_execs;
  cpu_expert_execs += o.cpu_expert_execs;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  prefetch_hits += o.prefetch_hits;
  predictions += o.predictions;
  mispredictions += o.mispredictions;
  degradations += o.degradations;
  prefill_swaps += o.prefill_swaps;
  decode_swaps += o.decode_swaps;
  skipped_experts += o.skipped_experts;
  migration_retries += o.migration_retries;
  migration_aborts += o.migration_aborts;
  stale_precalcs += o.stale_precalcs;
  pin_refusals += o.pin_refusals;
  preemptions += o.preemptions;
  preempt_resumes += o.preempt_resumes;
  degraded_sessions += o.degraded_sessions;
  hazard_stall_s += o.hazard_stall_s;
}

RunResult Engine::run(const data::SequenceTrace& trace,
                      const cache::Placement& initial, sim::Timeline* tl,
                      long long request_id) {
  SessionEnv env;
  env.timeline = tl;
  env.request_id = request_id;
  const std::unique_ptr<SequenceSession> session =
      open_session(trace, initial, env);
  session->prefill();
  while (session->decode_step()) {
  }
  return session->close();
}

RunResult aggregate_results(const std::string& name,
                            const std::vector<RunResult>& results) {
  DAOP_CHECK(!results.empty());
  RunResult agg;
  agg.engine = name;
  double energy_j = 0.0;
  for (const RunResult& r : results) {
    agg.prompt_tokens += r.prompt_tokens;
    agg.generated_tokens += r.generated_tokens;
    agg.prefill_s += r.prefill_s;
    agg.decode_s += r.decode_s;
    agg.total_s += r.total_s;
    energy_j += r.energy.total_j;
    agg.counters.add(r.counters);
  }
  agg.energy.total_j = energy_j;
  if (agg.total_s > 0.0) {
    agg.tokens_per_s = agg.generated_tokens / agg.total_s;
    agg.energy.avg_power_w = energy_j / agg.total_s;
  }
  if (agg.decode_s > 0.0) {
    agg.decode_tokens_per_s = agg.generated_tokens / agg.decode_s;
  }
  if (energy_j > 0.0) {
    agg.tokens_per_kj = agg.generated_tokens / (energy_j / 1000.0);
  }
  return agg;
}

}  // namespace daop::engines
