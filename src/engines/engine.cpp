#include "engines/engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace daop::engines {

void EngineCounters::add(const EngineCounters& o) {
  expert_migrations += o.expert_migrations;
  gpu_expert_execs += o.gpu_expert_execs;
  cpu_expert_execs += o.cpu_expert_execs;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  prefetch_hits += o.prefetch_hits;
  predictions += o.predictions;
  mispredictions += o.mispredictions;
  degradations += o.degradations;
  prefill_swaps += o.prefill_swaps;
  decode_swaps += o.decode_swaps;
  skipped_experts += o.skipped_experts;
  migration_retries += o.migration_retries;
  migration_aborts += o.migration_aborts;
  stale_precalcs += o.stale_precalcs;
  hazard_stall_s += o.hazard_stall_s;
}

RunResult Engine::finalize(const std::string& name,
                           const data::SequenceTrace& trace,
                           const sim::Timeline& tl, double prefill_end,
                           double decode_end, const EngineCounters& counters,
                           double hazard_stall_baseline_s) const {
  DAOP_CHECK_GE(decode_end, prefill_end);
  RunResult r;
  r.engine = name;
  r.prompt_tokens = trace.prompt_len;
  r.generated_tokens = trace.gen_len;
  r.prefill_s = prefill_end;
  r.decode_s = decode_end - prefill_end;
  r.total_s = decode_end;
  if (r.total_s > 0.0) r.tokens_per_s = trace.gen_len / r.total_s;
  if (r.decode_s > 0.0) r.decode_tokens_per_s = trace.gen_len / r.decode_s;
  // Speculative work (prefetches, pre-calculations) may still be draining
  // when the last token is emitted; it burned energy regardless.
  r.energy = sim::compute_energy(costs_.cost_model().platform(), tl,
                                 std::max(decode_end, tl.span()));
  if (r.energy.total_j > 0.0) {
    r.tokens_per_kj = trace.gen_len / (r.energy.total_j / 1000.0);
  }
  r.counters = counters;
  // Hazard stall time is accumulated by the timeline (the single place all
  // engines schedule through), not by engine code. Subtracting the run's
  // starting baseline keeps the counter per-run even on a reused timeline.
  r.counters.hazard_stall_s = tl.hazard_stall_s() - hazard_stall_baseline_s;
  return r;
}

std::uint64_t Engine::tspan(const char* track, std::string name, double start,
                            double end) const {
  if (tracer_ == nullptr) return 0;
  return tracer_->span(tracer_->track(track), std::move(name), start, end);
}

std::uint64_t Engine::tinstant(const char* track, std::string name,
                               double t) const {
  if (tracer_ == nullptr) return 0;
  return tracer_->instant(tracer_->track(track), std::move(name), t);
}

void Engine::tflow(std::uint64_t from, std::uint64_t to,
                   std::string name) const {
  if (tracer_ == nullptr || from == 0 || to == 0) return;
  tracer_->flow(from, to, std::move(name));
}

RunResult aggregate_results(const std::string& name,
                            const std::vector<RunResult>& results) {
  DAOP_CHECK(!results.empty());
  RunResult agg;
  agg.engine = name;
  double energy_j = 0.0;
  for (const RunResult& r : results) {
    agg.prompt_tokens += r.prompt_tokens;
    agg.generated_tokens += r.generated_tokens;
    agg.prefill_s += r.prefill_s;
    agg.decode_s += r.decode_s;
    agg.total_s += r.total_s;
    energy_j += r.energy.total_j;
    agg.counters.add(r.counters);
  }
  agg.energy.total_j = energy_j;
  if (agg.total_s > 0.0) {
    agg.tokens_per_s = agg.generated_tokens / agg.total_s;
    agg.energy.avg_power_w = energy_j / agg.total_s;
  }
  if (agg.decode_s > 0.0) {
    agg.decode_tokens_per_s = agg.generated_tokens / agg.decode_s;
  }
  if (energy_j > 0.0) {
    agg.tokens_per_kj = agg.generated_tokens / (energy_j / 1000.0);
  }
  return agg;
}

}  // namespace daop::engines
