#include "engines/run_metrics.hpp"

namespace daop::engines {
namespace {

obs::Labels with(const obs::Labels& base, const std::string& key,
                 const std::string& value) {
  obs::Labels out = base;
  out.emplace_back(key, value);
  return out;
}

}  // namespace

void record_counter_metrics(obs::MetricsRegistry& reg,
                            const EngineCounters& c,
                            const obs::Labels& labels) {
  reg.counter("daop_expert_execs_total", "Expert executions by device.",
              with(labels, "device", "gpu"))
      .inc(static_cast<double>(c.gpu_expert_execs));
  reg.counter("daop_expert_execs_total", "Expert executions by device.",
              with(labels, "device", "cpu"))
      .inc(static_cast<double>(c.cpu_expert_execs));
  reg.counter("daop_expert_cache_lookups_total",
              "Selected-expert GPU cache lookups by result.",
              with(labels, "result", "hit"))
      .inc(static_cast<double>(c.cache_hits));
  reg.counter("daop_expert_cache_lookups_total",
              "Selected-expert GPU cache lookups by result.",
              with(labels, "result", "miss"))
      .inc(static_cast<double>(c.cache_misses));
  reg.counter("daop_expert_migrations_total",
              "CPU-to-GPU expert weight transfers.", labels)
      .inc(static_cast<double>(c.expert_migrations));
  reg.counter("daop_expert_migration_retries_total",
              "Expert-load attempts retried after transient failures.",
              labels)
      .inc(static_cast<double>(c.migration_retries));
  reg.counter("daop_expert_migration_aborts_total",
              "Migrations abandoned (deadline exceeded or retries exhausted).",
              labels)
      .inc(static_cast<double>(c.migration_aborts));
  reg.counter("daop_prefetch_hits_total",
              "Prefetched or pre-fetched experts that were actually used.",
              labels)
      .inc(static_cast<double>(c.prefetch_hits));
  reg.counter("daop_predictions_total", "Gate-ahead predictions issued.",
              labels)
      .inc(static_cast<double>(c.predictions));
  reg.counter("daop_mispredictions_total",
              "Predictions whose expert set missed a used expert.", labels)
      .inc(static_cast<double>(c.mispredictions));
  reg.counter("daop_degradations_total",
              "Graceful-degradation expert substitutions.", labels)
      .inc(static_cast<double>(c.degradations));
  reg.counter("daop_swaps_total", "Expert placement swaps by phase.",
              with(labels, "phase", "prefill"))
      .inc(static_cast<double>(c.prefill_swaps));
  reg.counter("daop_swaps_total", "Expert placement swaps by phase.",
              with(labels, "phase", "decode"))
      .inc(static_cast<double>(c.decode_swaps));
  reg.counter("daop_skipped_experts_total",
              "Experts skipped by the adaptive top-1 margin.", labels)
      .inc(static_cast<double>(c.skipped_experts));
  reg.counter("daop_stale_precalcs_total",
              "Pre-calculated results discarded for arriving too late.",
              labels)
      .inc(static_cast<double>(c.stale_precalcs));
  reg.counter("daop_pin_refusals_total",
              "Placement swaps/evictions refused because the victim was "
              "pinned by a concurrent session.",
              labels)
      .inc(static_cast<double>(c.pin_refusals));
  reg.counter("daop_hazard_stall_seconds_total",
              "Total hazard delay injected into scheduled ops.", labels)
      .inc(c.hazard_stall_s);
}

std::vector<std::pair<std::string, double>> counter_profile_metrics(
    const EngineCounters& c) {
  return {
      {"expert_migrations", static_cast<double>(c.expert_migrations)},
      {"gpu_expert_execs", static_cast<double>(c.gpu_expert_execs)},
      {"cpu_expert_execs", static_cast<double>(c.cpu_expert_execs)},
      {"cache_hits", static_cast<double>(c.cache_hits)},
      {"cache_misses", static_cast<double>(c.cache_misses)},
      {"prefetch_hits", static_cast<double>(c.prefetch_hits)},
      {"predictions", static_cast<double>(c.predictions)},
      {"mispredictions", static_cast<double>(c.mispredictions)},
      {"degradations", static_cast<double>(c.degradations)},
      {"prefill_swaps", static_cast<double>(c.prefill_swaps)},
      {"decode_swaps", static_cast<double>(c.decode_swaps)},
      {"skipped_experts", static_cast<double>(c.skipped_experts)},
      {"migration_retries", static_cast<double>(c.migration_retries)},
      {"migration_aborts", static_cast<double>(c.migration_aborts)},
      {"stale_precalcs", static_cast<double>(c.stale_precalcs)},
      {"pin_refusals", static_cast<double>(c.pin_refusals)},
      {"preemptions", static_cast<double>(c.preemptions)},
      {"preempt_resumes", static_cast<double>(c.preempt_resumes)},
      {"degraded_sessions", static_cast<double>(c.degraded_sessions)},
      {"hazard_stall_s", c.hazard_stall_s},
  };
}

void record_run_metrics(obs::MetricsRegistry& reg, const RunResult& r,
                        const obs::Labels& labels) {
  reg.counter("daop_engine_runs_total", "Sequences simulated.", labels).inc();
  reg.counter("daop_engine_prompt_tokens_total", "Prompt tokens processed.",
              labels)
      .inc(static_cast<double>(r.prompt_tokens));
  reg.counter("daop_engine_generated_tokens_total", "Tokens generated.",
              labels)
      .inc(static_cast<double>(r.generated_tokens));
  reg.counter("daop_engine_phase_seconds_total",
              "Simulated wall time by phase.",
              with(labels, "phase", "prefill"))
      .inc(r.prefill_s);
  reg.counter("daop_engine_phase_seconds_total",
              "Simulated wall time by phase.", with(labels, "phase", "decode"))
      .inc(r.decode_s);
  reg.counter("daop_engine_energy_joules_total",
              "Simulated energy consumed across runs.", labels)
      .inc(r.energy.total_j);
  record_counter_metrics(reg, r.counters, labels);
}

void record_run_metrics(obs::MetricsRegistry& reg, const RunResult& r) {
  record_run_metrics(reg, r, obs::Labels{{"engine", r.engine}});
}

}  // namespace daop::engines
