// DAOP engine configuration (§IV) with ablation switches.
#pragma once

namespace daop::core {

/// What to do when a decode-phase expert turns out to be CPU-resident but
/// was not pre-calculated (gate-ahead misprediction).
enum class MispredictPolicy {
  /// Substitute the next-best GPU-resident expert by true gate score
  /// (extends the paper's graceful-degradation rule to mispredictions;
  /// fastest, approximate). Default.
  GracefulFallback,
  /// Execute the true expert on the CPU with the exact input
  /// (stalls the pipeline, exact numerics). Ablation alternative.
  RecomputeExact,
};

struct DaopConfig {
  /// Algorithm 1 comparison threshold: a CPU expert must beat the GPU
  /// candidate's token count by this factor to trigger a swap.
  double swap_in_out = 1.05;

  /// Prediction applies to block i+1 computed from block i's hidden states
  /// for i >= 4 (paper §IV-C(a)); blocks below this index use the original
  /// gate with in-place execution.
  int min_predict_layer = 5;

  // ---- Ablation switches (all on = paper's DAOP) ----

  /// §IV-B sequence-specific expert allocation during prefill.
  bool enable_seq_allocation = true;
  /// §IV-C prediction-based pre-calculation during decode.
  bool enable_precalc = true;
  /// §IV-C(b) graceful degradation (both-predicted-on-CPU substitution).
  bool enable_degradation = true;

  MispredictPolicy mispredict_policy = MispredictPolicy::RecomputeExact;

  // ---- Extensions beyond the paper (defaults keep them off) ----

  /// EdgeMoE-style quantized CPU execution: when > 0, CPU-resident expert
  /// executions (pre-calculations, recomputes, early-layer in-place runs)
  /// use symmetric grouped quantization at this bit-width. Speeds up the
  /// memory-bound CPU path at a measurable fidelity cost. 0 = fp precision.
  int cpu_quant_bits = 0;
  /// Group size for cpu_quant_bits.
  int cpu_quant_group = 64;

  /// §VI-B future work: re-run Algorithm 1 every N decode tokens over the
  /// trailing N-token activation window, letting the cache follow
  /// within-sequence drift (GSM8K). 0 = paper behaviour (placement frozen
  /// after prefill).
  int decode_realloc_interval = 0;

  /// AdapMoE-style adaptive expert skipping (related work [8]): during
  /// decode, when the top-1 expert's renormalized gate weight reaches this
  /// margin the remaining expert is skipped entirely — less work at a
  /// fidelity cost concentrated on low-confidence tokens. 0 disables;
  /// sensible values are in [0.6, 0.95].
  double skip_top1_margin = 0.0;

  // ---- Robustness / graceful-degradation policies (defaults off) ----
  // These matter under the sim::FaultModel hazard plane but are pure
  // policies: they also apply on a calm device if enabled.

  /// Migration deadline-abort: an expert swap whose weights have not
  /// arrived within this multiple of the unperturbed migration time
  /// (measured from issue, so PCIe queueing counts against the budget) is
  /// abandoned — the expert stays on the CPU and decode proceeds instead
  /// of stalling. 0 disables (always wait).
  double migration_deadline_factor = 0.0;

  /// Bounded retries per migration after a transient expert-load failure;
  /// one more failure aborts the migration (see migration_aborts).
  int max_migration_retries = 2;

  /// Stale pre-calculation discard: a CPU pre-calc whose result would land
  /// later than (GPU need time + this factor * one GPU expert execution)
  /// is dropped in favour of the best GPU-resident substitute — counted in
  /// stale_precalcs, never waited on. 0 disables (always wait).
  double stale_precalc_factor = 0.0;
};

/// CHECKs every DaopConfig field's range with an explanatory message
/// (rejects swap_in_out < 1, min_predict_layer < 1, cpu_quant_bits outside
/// {0,2,4,8}, negative intervals/retries/factors, skip_top1_margin outside
/// [0,1]). Called by every consumer of a DaopConfig at construction so a
/// bad config fails loudly instead of producing silently nonsensical
/// results.
void validate_config(const DaopConfig& config);

}  // namespace daop::core
