#include "core/daop_executor.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/allocation.hpp"
#include "tensor/ops.hpp"

namespace daop::core {
namespace {

int best_gpu_expert(const cache::Placement& placement, int layer,
                    std::span<const float> scores,
                    const std::vector<int>& exclude) {
  int best = -1;
  float best_score = 0.0F;
  for (int e = 0; e < placement.n_experts(); ++e) {
    if (!placement.on_gpu(layer, e)) continue;
    if (std::find(exclude.begin(), exclude.end(), e) != exclude.end()) continue;
    const float s = scores[static_cast<std::size_t>(e)];
    if (best < 0 || s > best_score) {
      best = e;
      best_score = s;
    }
  }
  return best;
}

/// Pre-calculation plan carried from layer l to layer l+1.
struct Plan {
  bool active = false;
  /// Pre-calculated outputs (stale input) per expert; empty vector = none.
  std::vector<std::vector<float>> precalc;
  std::vector<int> substitute;

  explicit Plan(int n_experts)
      : precalc(static_cast<std::size_t>(n_experts)),
        substitute(static_cast<std::size_t>(n_experts), -1) {}
};

}  // namespace

DaopFunctionalExecutor::DaopFunctionalExecutor(
    const model::FunctionalModel& model, DaopConfig config)
    : model_(model), config_(config) {
  validate_config(config_);
  if (config_.cpu_quant_bits > 0) {
    quantized_ = std::make_unique<model::QuantizedExpertSet>(
        model_, QuantSpec{config_.cpu_quant_bits, config_.cpu_quant_group});
  }
}

void DaopFunctionalExecutor::run_expert(int layer, int expert, bool on_cpu,
                                        std::span<const float> h,
                                        std::span<float> out,
                                        FunctionalRunStats& stats) const {
  if (on_cpu && quantized_) {
    quantized_->forward(layer, expert, h, out);
    ++stats.quantized_execs;
  } else {
    model_.expert_forward(layer, expert, h, out);
  }
}

std::vector<int> DaopFunctionalExecutor::generate(
    std::span<const int> prompt, int n_gen, const cache::Placement& initial,
    const model::GateBias& bias, FunctionalRunStats* stats,
    std::span<const int> teacher) const {
  DAOP_CHECK(!prompt.empty());
  DAOP_CHECK_GE(n_gen, 0);
  DAOP_CHECK(teacher.empty() ||
             static_cast<int>(teacher.size()) >= n_gen);
  const model::ModelConfig& cfg = model_.config();
  DAOP_CHECK_EQ(initial.n_layers(), cfg.n_layers);
  DAOP_CHECK_EQ(initial.n_experts(), cfg.n_experts);
  const int L = cfg.n_layers;
  const int E = cfg.n_experts;
  const auto D = static_cast<std::size_t>(cfg.d_model);

  cache::Placement placement = initial;
  FunctionalRunStats local_stats;
  FunctionalRunStats& st = stats ? *stats : local_stats;

  const int total = static_cast<int>(prompt.size()) + n_gen;
  model::KvCache kv(cfg, total);

  std::vector<float> x(D);
  std::vector<float> vocab_logits(static_cast<std::size_t>(cfg.vocab_size));
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n_gen));

  // ---- Prefill: exact numerics; collect per-layer expert token counts ----
  std::vector<std::vector<double>> counts(
      static_cast<std::size_t>(L),
      std::vector<double>(static_cast<std::size_t>(E), 0.0));
  int next_token = -1;
  for (int pos = 0; pos < static_cast<int>(prompt.size()); ++pos) {
    model_.embed(prompt[static_cast<std::size_t>(pos)], x);
    for (int l = 0; l < L; ++l) {
      const model::RouteDecision d = model_.official_block(l, x, kv, pos, bias);
      for (int e : d.experts) {
        counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] += 1.0;
      }
    }
    kv.advance();
  }
  model_.lm_logits(x, vocab_logits);
  next_token = argmax(vocab_logits);  // first output token (prefill-exact)

  // Algorithm 1: adjust placement for the decode phase.
  if (config_.enable_seq_allocation) {
    for (int l = 0; l < L; ++l) {
      const auto swaps = sequence_specific_swaps(
          counts[static_cast<std::size_t>(l)], placement, l,
          config_.swap_in_out);
      apply_swaps(placement, l, swaps);
      st.prefill_swaps += static_cast<long long>(swaps.size());
    }
  }

  // ---- Decode under DAOP approximations ----
  std::vector<float> h(D);
  std::vector<float> expert_out(D);
  std::vector<float> gate_logits(static_cast<std::size_t>(E));
  std::vector<float> pred_logits(static_cast<std::size_t>(E));

  // Decode re-allocation extension: trailing-window activation counts.
  std::vector<std::vector<double>> window(
      static_cast<std::size_t>(L),
      std::vector<double>(static_cast<std::size_t>(E), 0.0));

  for (int g = 0; g < n_gen; ++g) {
    if (static_cast<int>(out.size()) < n_gen) out.push_back(next_token);
    if (static_cast<int>(out.size()) == n_gen && g == n_gen - 1) {
      // Last token recorded; still run the step only if its output is
      // needed — it is not, so stop here.
      break;
    }
    const int pos = static_cast<int>(prompt.size()) + g;
    const int consumed =
        teacher.empty() ? next_token : teacher[static_cast<std::size_t>(g)];
    model_.embed(consumed, x);

    Plan plan(E);
    for (int l = 0; l < L; ++l) {
      model_.attention_block(l, x, kv, pos);
      model_.ffn_input(l, x, h);
      model_.gate(l, h, gate_logits);
      if (bias) bias(l, pos, gate_logits);
      model::RouteDecision sel = model_.route(gate_logits);
      // Adaptive expert skipping (extension): confident tokens keep only
      // their top-1 expert.
      if (config_.skip_top1_margin > 0.0 && sel.experts.size() >= 2 &&
          sel.weights[0] >= config_.skip_top1_margin) {
        st.skipped_experts += static_cast<long long>(sel.experts.size()) - 1;
        sel.experts.resize(1);
        sel.weights.assign(1, 1.0F);
      }

      // Decide the executed expert set.
      struct Exec {
        int expert;                      ///< id used for gate weighting
        const std::vector<float>* precomputed = nullptr;
        bool on_cpu = false;             ///< executes on the CPU (may be
                                         ///< quantized under the extension)
      };
      std::vector<Exec> execs;
      std::vector<int> used = sel.experts;
      for (int e : sel.experts) {
        window[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] += 1.0;
        ++st.decode_expert_uses;
        const auto ei = static_cast<std::size_t>(e);
        if (placement.on_gpu(l, e) || !plan.active) {
          // GPU-resident, or an early/in-place layer: true expert, true
          // input. In-place CPU execution is exact in fp, quantized only
          // under the cpu_quant_bits extension.
          ++st.exact_execs;
          execs.push_back({e, nullptr, !placement.on_gpu(l, e)});
        } else if (!plan.precalc[ei].empty()) {
          ++st.stale_input_execs;
          execs.push_back({e, &plan.precalc[ei], true});
        } else if (plan.substitute[ei] >= 0) {
          ++st.degradations;
          used.push_back(plan.substitute[ei]);
          execs.push_back({plan.substitute[ei], nullptr, false});
        } else {
          // Misprediction on a CPU-resident expert.
          int fb = -1;
          if (config_.mispredict_policy == MispredictPolicy::GracefulFallback) {
            fb = best_gpu_expert(placement, l, gate_logits, used);
          }
          if (fb >= 0) {
            ++st.mispredict_fallbacks;
            used.push_back(fb);
            execs.push_back({fb, nullptr, false});
          } else {
            ++st.mispredict_recomputes;
            execs.push_back({e, nullptr, true});
          }
        }
      }

      // Renormalize gate weights over the experts actually executed.
      std::vector<int> exec_ids;
      exec_ids.reserve(execs.size());
      for (const Exec& ex : execs) exec_ids.push_back(ex.expert);
      std::vector<float> weights(execs.size());
      softmax_subset(gate_logits, exec_ids, weights);

      for (std::size_t i = 0; i < execs.size(); ++i) {
        if (execs[i].precomputed) {
          axpy_inplace(x, weights[i], *execs[i].precomputed);
        } else {
          run_expert(l, execs[i].expert, execs[i].on_cpu, h, expert_out, st);
          axpy_inplace(x, weights[i], expert_out);
        }
      }

      // Plan pre-calculation for layer l+1 from this layer's hidden state.
      plan = Plan(E);
      const int nl = l + 1;
      if (config_.enable_precalc && nl < L &&
          nl >= config_.min_predict_layer) {
        plan.active = true;
        model_.gate(nl, h, pred_logits);
        if (bias) bias(nl, pos, pred_logits);
        model::RouteDecision pred = model_.route(pred_logits);
        // Under adaptive skipping, confident predictions only need their
        // top-1 expert pre-calculated.
        if (config_.skip_top1_margin > 0.0 && pred.experts.size() >= 2 &&
            pred.weights[0] >= config_.skip_top1_margin) {
          pred.experts.resize(1);
        }

        std::vector<int> pred_cpu;
        for (int e : pred.experts) {
          if (!placement.on_gpu(nl, e)) pred_cpu.push_back(e);
        }
        if (config_.enable_degradation &&
            static_cast<int>(pred_cpu.size()) == cfg.top_k && cfg.top_k >= 2) {
          const int drop = pred_cpu.back();
          const int sub =
              best_gpu_expert(placement, nl, pred_logits, pred.experts);
          if (sub >= 0) {
            plan.substitute[static_cast<std::size_t>(drop)] = sub;
            pred_cpu.pop_back();
          }
        }
        for (int e : pred_cpu) {
          auto& dst = plan.precalc[static_cast<std::size_t>(e)];
          dst.assign(D, 0.0F);
          // Stale input: this layer's non-MoE hidden state stands in for
          // the next layer's (residual-stream approximation, §IV-C).
          run_expert(nl, e, /*on_cpu=*/true, h, dst, st);
        }
      }
    }
    kv.advance();
    model_.lm_logits(x, vocab_logits);
    next_token = argmax(vocab_logits);

    // Decode re-allocation (extension): let the cache follow drift.
    if (config_.decode_realloc_interval > 0 &&
        (g + 1) % config_.decode_realloc_interval == 0) {
      for (int l = 0; l < L; ++l) {
        const auto swaps = sequence_specific_swaps(
            window[static_cast<std::size_t>(l)], placement, l,
            config_.swap_in_out);
        apply_swaps(placement, l, swaps);
        st.decode_swaps += static_cast<long long>(swaps.size());
        std::fill(window[static_cast<std::size_t>(l)].begin(),
                  window[static_cast<std::size_t>(l)].end(), 0.0);
      }
    }
  }
  if (static_cast<int>(out.size()) < n_gen) out.push_back(next_token);
  return out;
}

}  // namespace daop::core
