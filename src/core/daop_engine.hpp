// DAOP inference engine — performance-simulation plane (§IV).
//
// Prefill: Fiddler-style in-place hybrid execution, plus Algorithm 1
// sequence-specific swaps whose migrations ride the PCIe link underneath the
// remaining prefill compute (decode starts once both finish).
//
// Decode: per layer i >= min_predict_layer-1, the gate of layer i+1 is
// applied to layer i's non-MoE hidden states; predicted CPU-resident experts
// are pre-calculated on the CPU (activations ship D2H, result ships back
// H2D) while the GPU proceeds — CPU and GPU execute in parallel. Graceful
// degradation replaces the lower-scored of two predicted CPU experts with
// the best GPU-resident expert. Mispredicted CPU experts follow
// DaopConfig::mispredict_policy.
#pragma once

#include "core/daop_config.hpp"
#include "engines/engine.hpp"

namespace daop::core {

class DaopEngine : public engines::Engine {
 public:
  explicit DaopEngine(const model::OpCosts& costs, DaopConfig config = {});

  std::string name() const override;

  std::unique_ptr<engines::SequenceSession> open_session(
      const data::SequenceTrace& trace, const cache::Placement& initial,
      const engines::SessionEnv& env) override;

  const DaopConfig& config() const { return config_; }

 private:
  DaopConfig config_;
};

std::unique_ptr<engines::Engine> make_daop(const model::OpCosts& costs,
                                           DaopConfig config = {});

}  // namespace daop::core
