#include "core/daop_engine.hpp"

#include <algorithm>
#include <cstdint>

#include "common/check.hpp"
#include "core/allocation.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace daop::core {
namespace {

/// Pre-calculation plan produced at layer i for layer i+1.
struct NextLayerPlan {
  bool active = false;
  /// Whether this plan has already been charged a misprediction (the counter
  /// means "the predicted set missed a used expert", so it is charged at
  /// most once per plan even when several selected experts were missed).
  bool mispredicted = false;
  /// Result-arrival time (on GPU) per pre-calculated CPU expert; < 0 when
  /// the expert was not pre-calculated.
  std::vector<double> precalc_arrival;
  /// Graceful-degradation substitute per dropped CPU expert; -1 when none.
  std::vector<int> substitute;
  /// Tracing: span id of the prediction instant and of each expert's
  /// pre-calculation span (0 when tracing is off / not pre-calculated).
  std::uint64_t pred_span = 0;
  std::vector<std::uint64_t> precalc_span;

  explicit NextLayerPlan(int n_experts)
      : precalc_arrival(static_cast<std::size_t>(n_experts), -1.0),
        substitute(static_cast<std::size_t>(n_experts), -1),
        precalc_span(static_cast<std::size_t>(n_experts), 0) {}
};

/// Best GPU-resident expert by `scores`, excluding `exclude`; -1 if none.
int best_gpu_expert(const cache::Placement& placement, int layer,
                    std::span<const float> scores,
                    const std::vector<int>& exclude) {
  int best = -1;
  float best_score = 0.0F;
  for (int e = 0; e < placement.n_experts(); ++e) {
    if (!placement.on_gpu(layer, e)) continue;
    if (std::find(exclude.begin(), exclude.end(), e) != exclude.end()) continue;
    const float s = scores[static_cast<std::size_t>(e)];
    if (best < 0 || s > best_score) {
      best = e;
      best_score = s;
    }
  }
  return best;
}

}  // namespace

DaopEngine::DaopEngine(const model::OpCosts& costs, DaopConfig config)
    : Engine(costs), config_(config) {
  validate_config(config_);
}

std::string DaopEngine::name() const {
  if (config_.enable_seq_allocation && config_.enable_precalc &&
      config_.enable_degradation) {
    return "DAOP";
  }
  std::string n = "DAOP[";
  n += config_.enable_seq_allocation ? "alloc," : "-alloc,";
  n += config_.enable_precalc ? "precalc," : "-precalc,";
  n += config_.enable_degradation ? "degrade]" : "-degrade]";
  return n;
}

engines::RunResult DaopEngine::run(const data::SequenceTrace& trace,
                                   const cache::Placement& initial,
                                   sim::Timeline* external_tl) {
  sim::Timeline local_tl;
  sim::Timeline& tl = external_tl ? *external_tl : local_tl;
  tl.set_fault_model(fault_model_);
  const double stall0 = tl.hazard_stall_s();

  const model::ModelConfig& cfg = costs_.config();
  DAOP_CHECK_EQ(initial.n_layers(), cfg.n_layers);
  DAOP_CHECK_EQ(initial.n_experts(), cfg.n_experts);
  const int L = cfg.n_layers;
  const int E = cfg.n_experts;

  cache::Placement placement = initial;
  engines::EngineCounters counters;

  // Decode-phase CPU expert cost; quantized when the EdgeMoE-style
  // extension is enabled (the CPU path is memory-bound).
  const double cpu_expert_cost =
      config_.cpu_quant_bits > 0
          ? costs_.expert_cpu_scaled(
                QuantSpec{config_.cpu_quant_bits, config_.cpu_quant_group}
                    .bytes_per_weight() /
                cfg.bytes_per_param)
          : costs_.expert_cpu();

  // CPU-resident expert execution with exact (current) activations.
  auto cpu_expert_sync = [&](double start, int n_tokens, double exec_cost) {
    const double out = tl.schedule(sim::Res::PcieD2H, start,
                                   costs_.activations_d2h(n_tokens),
                                   "acts to CPU");
    const double exec =
        tl.schedule(sim::Res::CpuPool, out, exec_cost, "CPU expert");
    ++counters.cpu_expert_execs;
    if (tracing()) {
      tspan(engines::tracks::kExpertCpu, "CPU expert", tl.last_start(), exec);
    }
    return tl.schedule(sim::Res::PcieH2D, exec,
                       costs_.activations_h2d(n_tokens), "acts to GPU");
  };

  // One expert migration under the robustness policies: bounded retries
  // after transient load failures (fault plane) and a deadline budget
  // measured from `issue` — PCIe queueing counts against it, so a congested
  // link aborts swaps instead of stalling decode. Returns the weight-arrival
  // time, or a negative value when the migration was aborted (the caller
  // must then leave the expert on the CPU).
  const double mig_cost = costs_.expert_migration();
  auto migrate = [&](double issue, const char* tag) -> double {
    double done = tl.schedule(sim::Res::PcieH2D, issue, mig_cost, tag);
    const double mig_start = tl.last_start();
    ++counters.expert_migrations;
    const double deadline =
        config_.migration_deadline_factor > 0.0
            ? issue + config_.migration_deadline_factor * mig_cost
            : 0.0;
    if (fault_model_ != nullptr && fault_model_->enabled()) {
      double backoff = fault_model_->scenario().retry_backoff_s;
      int attempts = 0;
      while (fault_model_->expert_load_fails()) {
        if (attempts >= config_.max_migration_retries ||
            (deadline > 0.0 && done > deadline)) {
          if (tracing()) {
            tspan(engines::tracks::kMigration, std::string(tag) + " (aborted)",
                  mig_start, done);
          }
          return -1.0;
        }
        ++attempts;
        ++counters.migration_retries;
        done = tl.schedule(sim::Res::PcieH2D, done + backoff, mig_cost, tag);
        ++counters.expert_migrations;
        backoff *= 2.0;
      }
    }
    if (deadline > 0.0 && done > deadline) {
      if (tracing()) {
        tspan(engines::tracks::kMigration, std::string(tag) + " (aborted)",
              mig_start, done);
      }
      return -1.0;
    }
    if (tracing()) tspan(engines::tracks::kMigration, tag, mig_start, done);
    return done;
  };

  // ---- Prefill: in-place hybrid execution + Algorithm 1 swaps ----
  double ready = 0.0;
  double last_swap_end = 0.0;
  {
    const int np = trace.prompt_len;
    const auto counts = trace.activation_counts(data::Phase::Prefill);
    for (int l = 0; l < L; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs_.nonmoe_gpu_prefill(np),
          "prefill non-MoE");

      // Execute this layer where experts currently live; swaps adjust the
      // cache for the decode phase and ride the PCIe link concurrently.
      std::vector<bool> exec_on_gpu(static_cast<std::size_t>(E));
      for (int e = 0; e < E; ++e) exec_on_gpu[static_cast<std::size_t>(e)] = placement.on_gpu(l, e);

      if (config_.enable_seq_allocation) {
        const auto swaps = sequence_specific_swaps(
            counts[static_cast<std::size_t>(l)], placement, l,
            config_.swap_in_out);
        for (const SwapDecision& s : swaps) {
          const double done = migrate(nonmoe_end, "swap-in expert");
          if (done < 0.0) {
            // Deadline-abort / retries exhausted: the expert stays on the
            // CPU and decode degrades gracefully instead of stalling.
            ++counters.migration_aborts;
            continue;
          }
          apply_swaps(placement, l, {s});
          last_swap_end = std::max(last_swap_end, done);
          ++counters.prefill_swaps;
        }
      }

      double layer_end = nonmoe_end;
      for (int e = 0; e < E; ++e) {
        const int tok = static_cast<int>(
            counts[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)]);
        if (tok == 0) continue;
        if (exec_on_gpu[static_cast<std::size_t>(e)]) {
          ++counters.cache_hits;
          ++counters.gpu_expert_execs;
          const double exec_end =
              tl.schedule(sim::Res::GpuStream, nonmoe_end,
                          costs_.expert_gpu_prefill(tok), "prefill expert");
          if (tracing()) {
            tspan(engines::tracks::kExpertGpu, "prefill expert",
                  tl.last_start(), exec_end);
          }
          layer_end = std::max(layer_end, exec_end);
        } else {
          ++counters.cache_misses;
          layer_end = std::max(
              layer_end,
              cpu_expert_sync(nonmoe_end, tok, costs_.expert_cpu_prefill(tok)));
        }
      }
      ready = layer_end;
    }
  }
  const double prefill_end = ready;
  if (tracing()) {
    tspan(engines::tracks::kToken, "prefill", 0.0, prefill_end);
  }
  // The decode configuration requires all swapped-in weights to be resident.
  ready = std::max(ready, last_swap_end);

  // ---- Decode: predictive pre-calculation + graceful degradation ----
  // Decode re-allocation extension state (inactive unless configured):
  // trailing-window activation counts and per-expert weight-arrival gates
  // for experts swapped in mid-decode.
  std::vector<double> swap_ready(static_cast<std::size_t>(L) * E, 0.0);
  std::vector<std::vector<double>> window(
      static_cast<std::size_t>(L),
      std::vector<double>(static_cast<std::size_t>(E), 0.0));
  auto sidx = [E](int l, int e) {
    return static_cast<std::size_t>(l) * static_cast<std::size_t>(E) +
           static_cast<std::size_t>(e);
  };

  for (int t = 0; t < trace.gen_len; ++t) {
    const int ctx = trace.prompt_len + t;
    const double token_start = ready;
    NextLayerPlan plan(E);  // produced at layer l-1 for layer l
    for (int l = 0; l < L; ++l) {
      const double nonmoe_end = tl.schedule(
          sim::Res::GpuStream, ready, costs_.nonmoe_gpu(ctx), "non-MoE");

      const data::TokenRouting& tok = trace.at(data::Phase::Decode, l, t);
      std::vector<int> selected = topk_indices(tok.scores, cfg.top_k);
      if (tracing()) {
        tinstant(engines::tracks::kGate, "gate L" + std::to_string(l),
                 nonmoe_end);
      }
      // Adaptive expert skipping (extension): confident tokens keep only
      // their top-1 expert.
      if (config_.skip_top1_margin > 0.0 && selected.size() >= 2) {
        std::vector<float> w(selected.size());
        softmax_subset(tok.scores, selected, w);
        if (w[0] >= config_.skip_top1_margin) {
          counters.skipped_experts +=
              static_cast<long long>(selected.size()) - 1;
          selected.resize(1);
        }
      }

      double layer_end = nonmoe_end;
      std::vector<int> exclude = selected;  // fallbacks must be fresh experts
      for (int e : selected) {
        window[static_cast<std::size_t>(l)][static_cast<std::size_t>(e)] += 1.0;
        if (placement.on_gpu(l, e)) {
          ++counters.cache_hits;
          ++counters.gpu_expert_execs;
          // Experts swapped in mid-decode are usable once their weights
          // arrive (no-op when decode re-allocation is off).
          const double eready = std::max(nonmoe_end, swap_ready[sidx(l, e)]);
          const double exec_end = tl.schedule(sim::Res::GpuStream, eready,
                                              costs_.expert_gpu(),
                                              "GPU expert");
          if (tracing()) {
            tspan(engines::tracks::kExpertGpu, "GPU expert", tl.last_start(),
                  exec_end);
          }
          layer_end = std::max(layer_end, exec_end);
          continue;
        }
        ++counters.cache_misses;
        const auto ei = static_cast<std::size_t>(e);
        if (plan.active && plan.precalc_arrival[ei] >= 0.0) {
          // Pre-calculated on CPU from the previous layer's hidden states;
          // normally just wait for the result (usually already arrived).
          // Under the stale-discard policy a result landing too late (e.g.
          // the CPU pool was stolen by a co-running app) is dropped in
          // favour of the best GPU-resident substitute with exact inputs.
          const double arrival = plan.precalc_arrival[ei];
          int fb = -1;
          if (config_.stale_precalc_factor > 0.0 &&
              arrival > nonmoe_end + config_.stale_precalc_factor *
                                         costs_.expert_gpu()) {
            fb = best_gpu_expert(placement, l, tok.scores, exclude);
          }
          if (fb >= 0) {
            ++counters.stale_precalcs;
            ++counters.degradations;
            ++counters.gpu_expert_execs;
            exclude.push_back(fb);
            if (tracing()) {
              const std::uint64_t d = tinstant(
                  engines::tracks::kPrecalc,
                  "pre-calc discard E" + std::to_string(e), nonmoe_end);
              tflow(plan.precalc_span[ei], d, "stale");
            }
            const double exec_end =
                tl.schedule(sim::Res::GpuStream, nonmoe_end,
                            costs_.expert_gpu(), "stale fallback");
            if (tracing()) {
              tspan(engines::tracks::kExpertGpu, "stale fallback",
                    tl.last_start(), exec_end);
            }
            layer_end = std::max(layer_end, exec_end);
          } else {
            if (tracing()) {
              const std::uint64_t c = tinstant(
                  engines::tracks::kPrecalc,
                  "pre-calc commit E" + std::to_string(e), arrival);
              tflow(plan.precalc_span[ei], c, "commit");
            }
            layer_end = std::max(layer_end, arrival);
          }
        } else if (plan.active && plan.substitute[ei] >= 0) {
          // Graceful degradation planned at prediction time: the GPU
          // substitute executes with exact current inputs.
          ++counters.gpu_expert_execs;
          exclude.push_back(plan.substitute[ei]);
          const double exec_end =
              tl.schedule(sim::Res::GpuStream, nonmoe_end, costs_.expert_gpu(),
                          "substitute expert");
          if (tracing()) {
            tspan(engines::tracks::kExpertGpu, "substitute expert",
                  tl.last_start(), exec_end);
          }
          layer_end = std::max(layer_end, exec_end);
        } else if (plan.active) {
          // Misprediction: a selected CPU expert was not pre-calculated.
          // Charged once per plan — the counter's unit is "predicted set
          // missed a used expert", not "missed expert", so a top-k gate
          // missing both experts is still one misprediction.
          if (!plan.mispredicted) {
            plan.mispredicted = true;
            ++counters.mispredictions;
          }
          int fb = -1;
          if (config_.mispredict_policy == MispredictPolicy::GracefulFallback) {
            fb = best_gpu_expert(placement, l, tok.scores, exclude);
          }
          if (fb >= 0) {
            ++counters.degradations;
            ++counters.gpu_expert_execs;
            exclude.push_back(fb);
            const double exec_end =
                tl.schedule(sim::Res::GpuStream, nonmoe_end,
                            costs_.expert_gpu(), "fallback expert");
            if (tracing()) {
              tspan(engines::tracks::kExpertGpu, "fallback expert",
                    tl.last_start(), exec_end);
            }
            layer_end = std::max(layer_end, exec_end);
          } else {
            layer_end = std::max(
                layer_end, cpu_expert_sync(nonmoe_end, 1, cpu_expert_cost));
          }
        } else {
          // Early layers (or precalc disabled): in-place hybrid execution.
          layer_end = std::max(
              layer_end, cpu_expert_sync(nonmoe_end, 1, cpu_expert_cost));
        }
      }

      // ---- Plan pre-calculation for layer l+1 using this layer's hidden
      // states (available at nonmoe_end). ----
      plan = NextLayerPlan(E);
      const int nl = l + 1;
      if (config_.enable_precalc && nl < L &&
          nl >= config_.min_predict_layer) {
        const data::TokenRouting& ntok = trace.at(data::Phase::Decode, nl, t);
        if (!ntok.pred_scores.empty()) {
          plan.active = true;
          ++counters.predictions;
          if (tracing()) {
            plan.pred_span =
                tinstant(engines::tracks::kPrediction,
                         "predict L" + std::to_string(nl), nonmoe_end);
          }
          std::vector<int> predicted = topk_indices(ntok.pred_scores, cfg.top_k);
          // Under adaptive skipping, confident predictions only need their
          // top-1 expert pre-calculated.
          if (config_.skip_top1_margin > 0.0 && predicted.size() >= 2) {
            std::vector<float> w(predicted.size());
            softmax_subset(ntok.pred_scores, predicted, w);
            if (w[0] >= config_.skip_top1_margin) predicted.resize(1);
          }

          std::vector<int> pred_cpu;
          for (int e : predicted) {
            if (!placement.on_gpu(nl, e)) pred_cpu.push_back(e);
          }

          // Graceful degradation: if every predicted expert sits on the CPU,
          // replace the lowest-scored one with the best GPU-resident expert.
          if (config_.enable_degradation &&
              static_cast<int>(pred_cpu.size()) == cfg.top_k &&
              cfg.top_k >= 2) {
            int drop = pred_cpu.back();  // topk_indices is score-descending
            const int sub = best_gpu_expert(placement, nl, ntok.pred_scores,
                                            predicted);
            if (sub >= 0) {
              plan.substitute[static_cast<std::size_t>(drop)] = sub;
              pred_cpu.pop_back();
              ++counters.degradations;
            }
          }

          // Pre-calculate the remaining predicted CPU experts from this
          // layer's non-MoE hidden states.
          for (int e : pred_cpu) {
            const double out =
                tl.schedule(sim::Res::PcieD2H, nonmoe_end,
                            costs_.activations_d2h(1), "precalc acts");
            const double pstart = tl.last_start();
            const double exec = tl.schedule(sim::Res::CpuPool, out,
                                            cpu_expert_cost,
                                            "precalc CPU expert");
            ++counters.cpu_expert_execs;
            const double arrival =
                tl.schedule(sim::Res::PcieH2D, exec,
                            costs_.activations_h2d(1), "precalc result");
            plan.precalc_arrival[static_cast<std::size_t>(e)] = arrival;
            if (tracing()) {
              const std::uint64_t ps =
                  tspan(engines::tracks::kPrecalc,
                        "pre-calc L" + std::to_string(nl) + " E" +
                            std::to_string(e),
                        pstart, arrival);
              plan.precalc_span[static_cast<std::size_t>(e)] = ps;
              tflow(plan.pred_span, ps, "pre-calc");
            }
          }
        }
      }

      ready = layer_end;
    }
    if (tracing()) {
      tspan(engines::tracks::kToken, "token " + std::to_string(t),
            token_start, ready);
    }

    // Decode re-allocation (extension): every N tokens, re-run Algorithm 1
    // over the trailing window so the cache follows within-sequence drift.
    if (config_.decode_realloc_interval > 0 &&
        (t + 1) % config_.decode_realloc_interval == 0) {
      for (int l = 0; l < L; ++l) {
        const auto swaps = sequence_specific_swaps(
            window[static_cast<std::size_t>(l)], placement, l,
            config_.swap_in_out);
        for (const SwapDecision& s : swaps) {
          const double done = migrate(ready, "decode swap-in");
          if (done < 0.0) {
            ++counters.migration_aborts;
            continue;
          }
          apply_swaps(placement, l, {s});
          swap_ready[sidx(l, s.expert_in)] = done;
          ++counters.decode_swaps;
        }
        std::fill(window[static_cast<std::size_t>(l)].begin(),
                  window[static_cast<std::size_t>(l)].end(), 0.0);
      }
    }
  }

  return finalize(name(), trace, tl, prefill_end, ready, counters, stall0);
}

std::unique_ptr<engines::Engine> make_daop(const model::OpCosts& costs,
                                           DaopConfig config) {
  return std::make_unique<DaopEngine>(costs, config);
}

}  // namespace daop::core
